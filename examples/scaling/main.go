// Scaling: broadcast latency across system sizes. An MPI_Bcast-style
// operation (one source, every other node a destination) is timed on idle
// 16-, 64-, and 256-node systems for hardware and software multicast. The
// bit-string header grows with the system (1, 4, and 16 flits), which the
// model charges, yet hardware broadcast stays within a small constant of the
// unicast latency while the software tree pays log2(N) full round trips of
// network plus host overhead.
package main

import (
	"fmt"
	"log"

	"mdworm"
)

func main() {
	fmt.Printf("%-8s %-10s %14s %14s %10s\n", "nodes", "scheme", "bcast_cycles", "msgs", "phases")
	for _, stages := range []int{2, 3, 4} {
		for _, sc := range []struct {
			name   string
			scheme mdworm.Scheme
		}{
			{"hw", mdworm.HardwareBitString},
			{"sw-umin", mdworm.SoftwareBinomial},
		} {
			cfg := mdworm.DefaultConfig()
			cfg.Stages = stages
			cfg.Scheme = sc.scheme
			cfg.Traffic.OpRate = 0 // idle network; we inject one op by hand

			sim, err := mdworm.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			n := cfg.N()
			dests := make([]int, 0, n-1)
			for d := 1; d < n; d++ {
				dests = append(dests, d)
			}
			lat, op, err := sim.RunOp(0, dests, true, 64, 10_000_000)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8d %-10s %14d %14d %10d\n", n, sc.name, lat, op.MessagesSent, op.Phases)
		}
	}
}
