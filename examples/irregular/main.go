// Irregular: multidestination worms beyond the BMIN. The paper notes its
// schemes apply to networks of workstations with irregular topologies; this
// example builds a random 16-switch tree (up*/down* oriented), prints its
// shape, and compares hardware against software multicast on it — one
// broadcast on the idle fabric, then mixed traffic under load.
package main

import (
	"fmt"
	"log"

	"mdworm"
)

func main() {
	base := mdworm.DefaultConfig()
	base.Topology = mdworm.IrregularTree
	base.Tree = mdworm.TreeSpec{
		Switches:    16,
		MinHosts:    1,
		MaxHosts:    4,
		MaxChildren: 3,
		Seed:        42,
	}
	base.Traffic.Degree = 6

	// Discover the drawn fabric.
	probe, err := mdworm.New(withIdle(base))
	if err != nil {
		log.Fatal(err)
	}
	net := probe.Net()
	fmt.Printf("irregular fabric: %d switches, %d hosts\n", len(net.Switches), net.N)
	for _, sw := range net.Switches {
		hosts := 0
		for _, pn := range sw.DownPorts() {
			if sw.Ports[pn].Proc >= 0 {
				hosts++
			}
		}
		fmt.Printf("  sw%-2d depth-rank=%d ports=%d hosts=%d children=%d\n",
			sw.ID, sw.Stage, sw.NumPorts(), hosts, len(sw.DownPorts())-hosts)
	}

	// Broadcast on the idle fabric.
	dests := make([]int, 0, net.N-1)
	for d := 1; d < net.N; d++ {
		dests = append(dests, d)
	}
	hwLat, _, err := probe.RunOp(0, dests, true, 64, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	swCfg := withIdle(base)
	swCfg.Scheme = mdworm.SoftwareBinomial
	swSim, err := mdworm.New(swCfg)
	if err != nil {
		log.Fatal(err)
	}
	swLat, swOp, err := swSim.RunOp(0, dests, true, 64, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbroadcast to %d hosts: hardware %d cycles (1 worm), software %d cycles (%d messages)\n",
		net.N-1, hwLat, swLat, swOp.MessagesSent)

	// Mixed traffic under load. A tree fabric concentrates cross-subtree
	// traffic at the root, so it saturates at far lower uniform loads than
	// a BMIN of equal size.
	fmt.Printf("\nbimodal load 0.06 on the same fabric:\n")
	for _, sc := range []struct {
		name   string
		scheme mdworm.Scheme
	}{
		{"hw-bitstring", mdworm.HardwareBitString},
		{"sw-binomial", mdworm.SoftwareBinomial},
	} {
		cfg := base
		cfg.Scheme = sc.scheme
		cfg.Traffic.MulticastFraction = 0.1
		cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.06)
		sim, err := mdworm.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		sat := ""
		if res.Saturated {
			sat = " (saturated)"
		}
		fmt.Printf("  %-14s unicast %.0f cycles, multicast %.0f cycles%s\n",
			sc.name, res.Unicast.LastArrival.Mean, res.Multicast.LastArrival.Mean, sat)
	}
}

func withIdle(cfg mdworm.Config) mdworm.Config {
	cfg.Traffic.OpRate = 0
	return cfg
}
