// Bimodal: the paper's headline systems question — how much does each
// multicast implementation perturb the unicast traffic sharing the network?
//
// A 64-node system carries 90% unicast background traffic plus 10%
// 8-destination multicasts. The example runs the same workload three times —
// hardware multicast on the central-buffer switch, hardware multicast on the
// input-buffer switch, and U-MIN software multicast — and prints how the
// background unicast latency degrades under each.
package main

import (
	"fmt"
	"log"

	"mdworm"
)

func main() {
	type contender struct {
		name   string
		apply  func(*mdworm.Config)
		result mdworm.Results
	}
	contenders := []contender{
		{name: "cb-hw (central buffer, hardware multicast)", apply: func(c *mdworm.Config) {
			c.Arch = mdworm.CentralBuffer
			c.Scheme = mdworm.HardwareBitString
		}},
		{name: "ib-hw (input buffer, hardware multicast)", apply: func(c *mdworm.Config) {
			c.Arch = mdworm.InputBuffer
			c.Scheme = mdworm.HardwareBitString
		}},
		{name: "sw-umin (central buffer, software multicast)", apply: func(c *mdworm.Config) {
			c.Arch = mdworm.CentralBuffer
			c.Scheme = mdworm.SoftwareBinomial
		}},
	}

	const load = 0.25
	for i := range contenders {
		cfg := mdworm.DefaultConfig()
		cfg.Traffic.MulticastFraction = 0.1
		cfg.Traffic.Degree = 8
		cfg.Traffic.UniPayloadFlits = 32
		cfg.Traffic.McastPayloadFlits = 64
		cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
		contenders[i].apply(&cfg)

		sim, err := mdworm.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		contenders[i].result = res
	}

	// A lightly loaded pure-unicast run gives the undisturbed baseline.
	base := mdworm.DefaultConfig()
	base.Traffic.MulticastFraction = 0
	base.Traffic.UniPayloadFlits = 32
	base.Traffic.OpRate = base.Traffic.RateForLoad(0.02)
	sim, err := mdworm.New(base)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bimodal traffic at load %.2f (90%% unicast L=32, 10%% multicast d=8 L=64)\n", load)
	fmt.Printf("undisturbed unicast latency (load 0.02): %.1f cycles\n\n", baseline.Unicast.LastArrival.Mean)
	fmt.Printf("%-48s %12s %12s %12s\n", "multicast implementation", "uni_lat", "uni_slowdown", "mcast_lat")
	for _, c := range contenders {
		u := c.result.Unicast.LastArrival.Mean
		sat := ""
		if c.result.Saturated {
			sat = " (saturated)"
		}
		fmt.Printf("%-48s %12.1f %11.2fx %12.1f%s\n",
			c.name, u, u/baseline.Unicast.LastArrival.Mean,
			c.result.Multicast.LastArrival.Mean, sat)
	}
	fmt.Println("\nthe paper's claim: the hardware multicast implementations leave the")
	fmt.Println("background unicast traffic nearly undisturbed, while the software scheme")
	fmt.Println("multiplies every multicast into d unicasts plus host overheads and drags")
	fmt.Println("the whole network toward saturation.")
}
