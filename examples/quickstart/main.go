// Quickstart: build the paper's baseline system (64-node BMIN of 8-port
// central-buffer switches), run a multiple-multicast workload at a moderate
// load, and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"mdworm"
)

func main() {
	cfg := mdworm.DefaultConfig()

	// Every node issues 8-destination multicasts of 64 payload flits;
	// offered load is 0.3 delivered payload flits per node per cycle.
	cfg.Traffic.MulticastFraction = 1.0
	cfg.Traffic.Degree = 8
	cfg.Traffic.McastPayloadFlits = 64
	cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.3)

	sim, err := mdworm.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system: %d nodes, central-buffer switches, hardware bit-string multicast\n", cfg.N())
	fmt.Printf("multicasts completed: %d of %d generated\n",
		res.Multicast.OpsCompleted, res.Multicast.OpsGenerated)
	fmt.Printf("last-arrival latency: %v cycles\n", res.Multicast.LastArrival)
	fmt.Printf("delivered payload throughput: %.3f flits/node/cycle\n",
		res.Multicast.DeliveredPayloadPerNodeCycle)
	fmt.Printf("messages injected per multicast: %.1f (one worm covers all destinations)\n",
		res.Multicast.MessagesPerOp)
	if res.Saturated {
		fmt.Println("note: the network saturated at this load")
	}
}
