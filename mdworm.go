// Package mdworm is the public API of the multidestination-worm simulator,
// a reproduction of Stunkel, Sivaram, and Panda, "Implementing
// Multidestination Worms in Switch-Based Parallel Systems: Architectural
// Alternatives and their Impact" (ISCA 1997).
//
// The library simulates, at flit granularity, bidirectional multistage
// interconnection networks (k-ary n-trees of SP-Switch-class 8-port
// switches) carrying unicast and multidestination wormhole traffic, with
// three multicast implementations under comparison:
//
//   - hardware multicast on a central-buffer switch (CB-HW), where a worm is
//     written once into a shared, chunked central buffer and read out by
//     every requested output port;
//   - hardware multicast on an input-buffer switch (IB-HW), with
//     asynchronous replication at full-packet input buffers; and
//   - software multicast (U-MIN binomial trees or separate addressing) built
//     from unicast worms and host send/receive overheads.
//
// # Quick start
//
//	cfg := mdworm.DefaultConfig()
//	cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.1)
//	sim, err := mdworm.New(cfg)
//	if err != nil { ... }
//	res, err := sim.Run()
//	fmt.Println(res.Multicast.LastArrival)
//
// Multicast latency follows the last-arrival definition of Nupairoj and Ni:
// one sample per collective operation, from creation to the tail flit at the
// last destination.
//
// The paper's full evaluation is reproducible through RunExperiment /
// AllExperiments (or the cmd/mdwbench binary); see DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-versus-measured results.
package mdworm

import (
	"io"

	"mdworm/internal/collective"
	"mdworm/internal/core"
	"mdworm/internal/engine"
	"mdworm/internal/experiments"
	"mdworm/internal/faults"
	"mdworm/internal/obs"
	"mdworm/internal/routing"
	"mdworm/internal/stats"
	"mdworm/internal/topology"
	"mdworm/internal/traffic"
)

// Config describes one simulated system and workload.
type Config = core.Config

// Simulator is a fully wired system instance.
type Simulator = core.Simulator

// Results carries the measurements of one run.
type Results = stats.Results

// TrafficSpec describes a stochastic workload.
type TrafficSpec = traffic.Spec

// SwitchArch selects the switch microarchitecture.
type SwitchArch = core.SwitchArch

// Scheme selects how multicasts are realized.
type Scheme = collective.Scheme

// UpPolicy selects how ascending worms pick among equivalent up ports.
type UpPolicy = routing.UpPolicy

// TopologyKind selects the fabric shape (regular BMIN or irregular tree).
type TopologyKind = core.TopologyKind

// TreeSpec describes a NOW-style irregular tree of switches.
type TreeSpec = topology.TreeSpec

// Topology kinds.
const (
	// KaryTree is the regular BMIN of the paper's evaluation.
	KaryTree = core.KaryTree
	// IrregularTree is a random tree of varying-radix switches.
	IrregularTree = core.IrregularTree
)

// Switch architectures.
const (
	// CentralBuffer selects the SP-Switch-like shared-central-buffer switch.
	CentralBuffer = core.CentralBuffer
	// InputBuffer selects the per-input full-packet-buffer switch.
	InputBuffer = core.InputBuffer
)

// Multicast schemes.
const (
	// HardwareBitString sends one worm with an N-bit bit-string header.
	HardwareBitString = collective.HardwareBitString
	// HardwareMultiport sends one worm per multiport product set.
	HardwareMultiport = collective.HardwareMultiport
	// SoftwareBinomial is the U-MIN binomial-tree software multicast.
	SoftwareBinomial = collective.SoftwareBinomial
	// SoftwareSeparate sends one unicast per destination.
	SoftwareSeparate = collective.SoftwareSeparate
)

// CollectiveSpec describes a phase-structured collective workload driven
// alongside (or instead of) stochastic traffic; set it on Config.Collective.
// The zero value disables the driver.
type CollectiveSpec = collective.Spec

// CollectiveKind selects which collective a CollectiveSpec runs.
type CollectiveKind = collective.Kind

// Collective kinds.
const (
	// CollectiveBarrier combines single-flit tokens up a binomial tree and
	// releases with one multidestination worm (hw) or a unicast tree (sw).
	CollectiveBarrier = collective.Barrier
	// CollectiveBroadcast moves one payload from the root to all.
	CollectiveBroadcast = collective.Broadcast
	// CollectiveAllReduce reduces up a combine tree, then broadcasts.
	CollectiveAllReduce = collective.AllReduce
	// CollectiveAllReduceGather reduces by direct gather worms converging on
	// the root, then broadcasts.
	CollectiveAllReduceGather = collective.AllReduceGather
	// CollectiveScatter distributes personalized payloads from the root.
	CollectiveScatter = collective.Scatter
	// CollectiveGather collects personalized payloads at the root.
	CollectiveGather = collective.Gather
)

// CollectiveKinds lists every collective kind name in declaration order.
func CollectiveKinds() []string { return collective.Kinds() }

// ParseCollectiveKind parses a kind name as printed by CollectiveKind.String
// ("barrier", "broadcast", "all-reduce", "all-reduce-gather", "scatter",
// "gather").
func ParseCollectiveKind(s string) (CollectiveKind, error) { return collective.ParseKind(s) }

// Up-port selection policies.
const (
	// UpHash spreads messages across parents by hashing message identity.
	UpHash = routing.UpHash
	// UpRandom picks a random parent per hop.
	UpRandom = routing.UpRandom
	// UpAdaptive picks the first free parent port.
	UpAdaptive = routing.UpAdaptive
)

// Barrier synchronization schemes (see Simulator.RunBarrier).
const (
	// BarrierSoftware gathers and releases with binomial unicast trees.
	BarrierSoftware = core.BarrierSoftware
	// BarrierHardwareRelease gathers with a binomial tree and releases
	// with one hardware multidestination worm.
	BarrierHardwareRelease = core.BarrierHardwareRelease
	// BarrierHardwareCombining combines single-flit tokens inside the
	// switches along a spanning tree (central-buffer architecture only).
	BarrierHardwareCombining = core.BarrierHardwareCombining
)

// BarrierScheme selects how Simulator.RunBarrier realizes a barrier.
type BarrierScheme = core.BarrierScheme

// FaultPlan is a deterministic fault plan injected through Config.Faults:
// a sorted list of scheduled events applied by the engine's event loop.
type FaultPlan = faults.Plan

// FaultEvent is one scheduled fault of a FaultPlan.
type FaultEvent = faults.Event

// Fault kinds.
const (
	// FaultLinkDown permanently severs both directions of a switch port's
	// link at the next worm boundary.
	FaultLinkDown = faults.LinkDown
	// FaultPortStuck freezes a switch port's outgoing link, permanently or
	// for a bounded window.
	FaultPortStuck = faults.PortStuck
	// FaultCBShrink withdraws central-buffer chunks mid-run.
	FaultCBShrink = faults.CBShrink
	// FaultNICStall pauses a host's injection, permanently or for a window.
	FaultNICStall = faults.NICStall
)

// ParseFaultSpec parses the compact fault-plan grammar, e.g.
// "link-down@1000:sw3.p2;nic-stall@500+200:n5".
func ParseFaultSpec(s string) (FaultPlan, error) { return faults.ParseSpec(s) }

// DeadlockError reports that the watchdog observed no forward progress; the
// structured form names the components still holding work.
type DeadlockError = engine.DeadlockError

// InvariantError reports a model-invariant violation in strict mode (see
// Config.StrictInvariants).
type InvariantError = engine.InvariantError

// Tracer receives message-level simulation events (see Simulator.SetTracer).
type Tracer = engine.Tracer

// TraceEvent is one observation of the simulated system.
type TraceEvent = engine.TraceEvent

// NewWriterTracer returns a tracer that formats one line per event on w.
func NewWriterTracer(w io.Writer) Tracer { return &engine.WriterTracer{W: w} }

// Capture collects a run's observability data — trace events and cycle-
// sampled buffer occupancy — when attached via Simulator.Observe. Set Stream
// to write an ndjson timeline for cmd/mdwtrace; set CaptureEvents for
// in-process analysis (Trace, WritePerfetto).
type Capture = obs.Capture

// Timeline is the analyzable form of a captured run: reconstructed operation
// and message spans, the occupancy time series, and last-arrival critical
// paths with per-phase attribution.
type Timeline = obs.Trace

// OccupancySummary condenses a run's occupancy samples into peaks and means.
type OccupancySummary = obs.Summary

// SweepObserver aggregates occupancy summaries across an experiment sweep;
// attach one through ExperimentOptions.Observer and read SweepStats.Occupancy.
type SweepObserver = obs.SweepObserver

// NewCapture returns a capture that retains events and samples occupancy
// every 64 cycles — the defaults for in-process analysis.
func NewCapture() *Capture { return obs.NewCapture() }

// ReadTimeline parses an ndjson timeline written by a streaming Capture.
func ReadTimeline(r io.Reader) (*Timeline, error) { return obs.ReadTrace(r) }

// WritePerfetto exports a timeline as Perfetto/Chrome trace-event JSON.
func WritePerfetto(w io.Writer, t *Timeline) error { return obs.WritePerfetto(w, t) }

// DefaultConfig returns the experiments' baseline system: a 64-node 3-stage
// BMIN of 8-port central-buffer switches with hardware bit-string multicast.
func DefaultConfig() Config { return core.DefaultConfig() }

// New builds a simulator, raising buffer parameters as the workload needs.
func New(cfg Config) (*Simulator, error) { return core.New(cfg) }

// Restore rebuilds a simulator from a Simulator.Snapshot blob. The restored
// simulator continues the run cycle-exactly: its results are byte-identical
// to those of the uninterrupted original. Corrupt or truncated blobs fail
// with a structured error, never a panic.
func Restore(data []byte) (*Simulator, error) { return core.Restore(data) }

// ExperimentTable is one reproduced figure or table.
type ExperimentTable = experiments.Table

// ExperimentOptions controls experiment runs. Set Workers to fan sweep
// points across a pool (0 = GOMAXPROCS); every worker count renders
// byte-identical tables.
type ExperimentOptions = experiments.Options

// SweepStats summarizes the cost of one resolved experiment batch.
type SweepStats = experiments.SweepStats

// ExperimentIDs lists the available experiment identifiers in definition
// order: e1..e8 for the paper's figures and tables, a1..a11 for the
// design-choice ablations, then c1..c6 for the collective experiments.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment reproduces one experiment by id.
func RunExperiment(id string, o ExperimentOptions) (*ExperimentTable, error) {
	return experiments.Run(id, o)
}

// RunExperiments reproduces the given experiments through one shared worker
// pool and reports the batch cost.
func RunExperiments(ids []string, o ExperimentOptions) ([]*ExperimentTable, SweepStats, error) {
	return experiments.RunIDs(ids, o)
}

// AllExperiments reproduces the full suite in order.
func AllExperiments(o ExperimentOptions) ([]*ExperimentTable, error) {
	return experiments.RunAll(o)
}

// WriteTables formats tables to w, separated by blank lines.
func WriteTables(w io.Writer, tables []*ExperimentTable) {
	for _, t := range tables {
		t.Format(w)
		io.WriteString(w, "\n")
	}
}
