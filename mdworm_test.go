package mdworm_test

import (
	"bytes"
	"strings"
	"testing"

	"mdworm"
)

// TestPublicQuickstart exercises the documented quick-start flow.
func TestPublicQuickstart(t *testing.T) {
	cfg := mdworm.DefaultConfig()
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 3000
	cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.2)
	sim, err := mdworm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Multicast.OpsCompleted == 0 {
		t.Fatal("nothing completed")
	}
	if res.Multicast.LastArrival.Mean <= 0 {
		t.Fatal("no latency measured")
	}
}

// TestPublicSchemesAndArchs builds every contender through the facade.
func TestPublicSchemesAndArchs(t *testing.T) {
	for _, arch := range []mdworm.SwitchArch{mdworm.CentralBuffer, mdworm.InputBuffer} {
		for _, scheme := range []mdworm.Scheme{
			mdworm.HardwareBitString, mdworm.HardwareMultiport,
			mdworm.SoftwareBinomial, mdworm.SoftwareSeparate,
		} {
			cfg := mdworm.DefaultConfig()
			cfg.Arch = arch
			cfg.Scheme = scheme
			cfg.Traffic.OpRate = 0
			sim, err := mdworm.New(cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", arch, scheme, err)
			}
			lat, op, err := sim.RunOp(0, []int{7, 21, 42}, true, 32, 1_000_000)
			if err != nil {
				t.Fatalf("%v/%v: %v", arch, scheme, err)
			}
			if lat <= 0 || !op.Done() {
				t.Fatalf("%v/%v: lat=%d done=%v", arch, scheme, lat, op.Done())
			}
		}
	}
}

func TestPublicExperimentList(t *testing.T) {
	ids := mdworm.ExperimentIDs()
	if len(ids) != 25 {
		t.Fatalf("experiment ids: %v", ids)
	}
	tab, err := mdworm.RunExperiment("e8", mdworm.ExperimentOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	mdworm.WriteTables(&buf, []*mdworm.ExperimentTable{tab})
	if !strings.Contains(buf.String(), "E8") {
		t.Fatal("table output missing id")
	}
}

func TestPublicUpPolicies(t *testing.T) {
	cfg := mdworm.DefaultConfig()
	cfg.UpPolicy = mdworm.UpAdaptive
	cfg.Traffic.OpRate = 0
	sim, err := mdworm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.RunOp(0, []int{63}, false, 16, 100_000); err != nil {
		t.Fatal(err)
	}
}
