package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdworm"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Small, fast operating point shared by the tests below: 16 nodes, short
// windows, light load. Deterministic for a fixed seed.
func smallArgs(extra ...string) []string {
	args := []string{
		"-stages", "2", "-degree", "4",
		"-warmup", "200", "-measure", "800",
		"-load", "0.05", "-seed", "1",
	}
	return append(args, extra...)
}

func TestFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"unknown flag", []string{"-bogus"}, "bogus"},
		{"bad arch", []string{"-arch", "quantum"}, "arch"},
		{"bad scheme", []string{"-scheme", "magic"}, "scheme"},
		{"bad reps", []string{"-reps", "0"}, "-reps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(context.Background(), tc.args, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
		})
	}
}

// TestGoldenSingleRun pins the exact report for one small run. Regenerate
// with: go test ./cmd/mdwsim -run TestGoldenSingleRun -update
func TestGoldenSingleRun(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), smallArgs("-switch-stats"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "single_run.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("output differs from golden (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			stdout.String(), want)
	}
}

// TestGoldenFaultedRun pins the exact report — including the fault-plan
// block — for a small fault-injected run. Regenerate with:
// go test ./cmd/mdwsim -run TestGoldenFaultedRun -update
func TestGoldenFaultedRun(t *testing.T) {
	args := smallArgs("-faults", "link-down@400:sw0.p0;nic-stall@300+200:n3")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	for _, want := range []string{"fault plan:", "destinations dropped:", "invariant violations: 0"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, stdout.String())
		}
	}
	golden := filepath.Join("testdata", "faulted_run.golden")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("output differs from golden (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			stdout.String(), want)
	}
}

// TestFaultedRepsWorkerIndependence: a faulted replicated run renders the
// same bytes at every -workers count.
func TestFaultedRepsWorkerIndependence(t *testing.T) {
	outs := make([]string, 0, 3)
	for _, w := range []string{"1", "2", "4"} {
		var stdout, stderr bytes.Buffer
		args := smallArgs("-faults", "link-down@400:sw0.p0", "-reps", "3", "-workers", w)
		if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
			t.Fatalf("workers=%s: exit %d\n%s", w, code, stderr.String())
		}
		outs = append(outs, stdout.String())
	}
	if outs[0] != outs[1] || outs[0] != outs[2] {
		t.Fatalf("faulted replica output depends on worker count:\n--- w=1 ---\n%s\n--- w=2 ---\n%s\n--- w=4 ---\n%s",
			outs[0], outs[1], outs[2])
	}
}

// TestFaultFlagErrors: malformed and file-based fault specs.
func TestFaultFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), smallArgs("-faults", "flood@10:sw0.p0"), &stdout, &stderr); code != 2 {
		t.Fatalf("bad spec: exit %d\n%s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(context.Background(), smallArgs("-faults", "@/no/such/plan"), &stdout, &stderr); code != 1 {
		t.Fatalf("missing plan file: exit %d\n%s", code, stderr.String())
	}
	path := filepath.Join(t.TempDir(), "plan.txt")
	if err := os.WriteFile(path, []byte("nic-stall@300+200:n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(context.Background(), smallArgs("-faults", "@"+path), &stdout, &stderr); code != 0 {
		t.Fatalf("plan file: exit %d\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fault plan: nic-stall@300+200:n3") {
		t.Fatalf("plan file not applied:\n%s", stdout.String())
	}
}

// TestRepsAggregation: the seed-spread summary must be identical regardless
// of worker count — replicas are independent simulators keyed only by seed.
func TestRepsAggregation(t *testing.T) {
	outs := make([]string, 0, 3)
	for _, w := range []string{"1", "2", "4"} {
		var stdout, stderr bytes.Buffer
		code := run(context.Background(), smallArgs("-reps", "3", "-workers", w), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("workers=%s: exit %d\n%s", w, code, stderr.String())
		}
		outs = append(outs, stdout.String())
	}
	if outs[0] != outs[1] || outs[0] != outs[2] {
		t.Fatalf("replica aggregation depends on worker count:\n--- w=1 ---\n%s\n--- w=2 ---\n%s\n--- w=4 ---\n%s",
			outs[0], outs[1], outs[2])
	}
	if !strings.Contains(outs[0], "seed spread over 3 replicas") {
		t.Fatalf("missing seed-spread summary:\n%s", outs[0])
	}
	// Three data rows plus the mean row under the header.
	rows := 0
	for _, line := range strings.Split(outs[0], "\n") {
		f := strings.Fields(line)
		if len(f) == 4 && (f[0] == "1" || f[0] == "2" || f[0] == "3" || f[0] == "mean") {
			rows++
		}
	}
	if rows != 4 {
		t.Fatalf("expected 3 replica rows + mean, found %d:\n%s", rows, outs[0])
	}
}

// TestCanceledRun: a pre-canceled context (Ctrl-C before the sweep starts)
// exits 130 without printing a report.
func TestCanceledRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	if code := run(ctx, smallArgs("-reps", "4"), &stdout, &stderr); code != 130 {
		t.Fatalf("exit %d, want 130\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("stderr: %s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("partial report printed:\n%s", stdout.String())
	}
}

// TestTraceFlag: -trace writes a non-empty event trace file.
func TestTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), smallArgs("-trace", path), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("trace file is empty")
	}
}

// TestGoldenTrace pins the exact -trace event stream for one small run.
// Regenerate with: go test ./cmd/mdwsim -run TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), smallArgs("-trace", path), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace differs from golden (re-run with -update if intended); got %d bytes, want %d",
			len(got), len(want))
	}
}

// TestTimelineFlag: -timeline writes a parseable ndjson timeline whose spans
// and samples reflect the run, and observing changes nothing about the
// printed report (same config, same seed, same bytes).
func TestTimelineFlag(t *testing.T) {
	var plain, plainErr bytes.Buffer
	if code := run(context.Background(), smallArgs(), &plain, &plainErr); code != 0 {
		t.Fatalf("plain run: exit %d\n%s", code, plainErr.String())
	}

	path := filepath.Join(t.TempDir(), "run.ndjson")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), smallArgs("-timeline", path, "-sample-every", "16"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	if !bytes.Equal(plain.Bytes(), stdout.Bytes()) {
		t.Fatalf("observation perturbed the report:\n--- plain ---\n%s\n--- observed ---\n%s",
			plain.String(), stdout.String())
	}
	if !strings.Contains(stderr.String(), "timeline written to") {
		t.Fatalf("stderr missing timeline note: %s", stderr.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := mdworm.ReadTimeline(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Nodes != 16 || tr.Meta.SampleEvery != 16 {
		t.Fatalf("timeline meta wrong: %+v", tr.Meta)
	}
	if len(tr.Events) == 0 || len(tr.Samples) == 0 {
		t.Fatalf("timeline empty: %d events, %d samples", len(tr.Events), len(tr.Samples))
	}
	if len(tr.Ops()) == 0 {
		t.Fatal("timeline reconstructed no operations")
	}
}

// TestPerfettoFlag: -perfetto writes a JSON trace without requiring -timeline.
func TestPerfettoFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), smallArgs("-perfetto", path), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("perfetto output is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("perfetto trace has no events")
	}
}
