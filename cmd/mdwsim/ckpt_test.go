package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdworm"
)

// smallConfig mirrors smallArgs at the library level, for planting snapshot
// files the CLI then resumes from. restoreSnapshot verifies the mapping, so
// drift between the two fails these tests loudly rather than silently.
func smallConfig() mdworm.Config {
	cfg := mdworm.DefaultConfig()
	cfg.Stages = 2
	cfg.Seed = 1
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 800
	cfg.Traffic.Degree = 4
	cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.05)
	return cfg
}

func TestCheckpointFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"checkpoint with reps", smallArgs("-checkpoint", "x.ckpt", "-reps", "2"), "-reps 1"},
		{"checkpoint with trace", smallArgs("-checkpoint", "x.ckpt", "-trace", "-"), "incompatible"},
		{"every without file", smallArgs("-checkpoint-every", "100"), "-checkpoint FILE"},
		{"negative every", smallArgs("-checkpoint", "x.ckpt", "-checkpoint-every", "-1"), "positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(context.Background(), tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
		})
	}
}

// TestCheckpointedRunOutputUnchanged: a run that checkpoints along the way
// prints the byte-identical report of an unobserved run and cleans up its
// snapshot file on success — zero cost to the normal path's contract.
func TestCheckpointedRunOutputUnchanged(t *testing.T) {
	var plain, plainErr bytes.Buffer
	if code := run(context.Background(), smallArgs(), &plain, &plainErr); code != 0 {
		t.Fatalf("plain run: exit %d\n%s", code, plainErr.String())
	}

	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var ck, ckErr bytes.Buffer
	args := smallArgs("-checkpoint", ckpt, "-checkpoint-every", "250")
	if code := run(context.Background(), args, &ck, &ckErr); code != 0 {
		t.Fatalf("checkpointed run: exit %d\n%s", code, ckErr.String())
	}
	if !bytes.Equal(plain.Bytes(), ck.Bytes()) {
		t.Fatalf("checkpointing changed the report:\n--- plain ---\n%s\n--- checkpointed ---\n%s", plain.String(), ck.String())
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snapshot file survived a completed run (stat: %v)", err)
	}
}

// TestResumeMatchesUninterrupted: a snapshot taken mid-run and resumed via
// -resume renders the byte-identical report of the uninterrupted run.
func TestResumeMatchesUninterrupted(t *testing.T) {
	var want, wantErr bytes.Buffer
	if code := run(context.Background(), smallArgs(), &want, &wantErr); code != 0 {
		t.Fatalf("reference run: exit %d\n%s", code, wantErr.String())
	}

	sim, err := mdworm.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	crash := errors.New("crash")
	var blob []byte
	_, err = sim.RunCheckpointed(250, func(data []byte, cycle int64) error {
		blob = data
		return crash
	})
	if !errors.Is(err, crash) {
		t.Fatalf("run ended with %v before the snapshot", err)
	}
	file := filepath.Join(t.TempDir(), "mid.ckpt")
	if err := os.WriteFile(file, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var got, gotErr bytes.Buffer
	if code := run(context.Background(), smallArgs("-resume", file), &got, &gotErr); code != 0 {
		t.Fatalf("resumed run: exit %d\n%s", code, gotErr.String())
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want.String(), got.String())
	}
}

// TestResumeRejectsMismatchedFlags: resuming under flags that describe a
// different system must fail loudly, not print a report with wrong labels.
func TestResumeRejectsMismatchedFlags(t *testing.T) {
	sim, err := mdworm.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	crash := errors.New("crash")
	var blob []byte
	if _, err := sim.RunCheckpointed(250, func(data []byte, cycle int64) error {
		blob = data
		return crash
	}); !errors.Is(err, crash) {
		t.Fatalf("run ended with %v before the snapshot", err)
	}
	file := filepath.Join(t.TempDir(), "mid.ckpt")
	if err := os.WriteFile(file, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	args := smallArgs("-resume", file, "-seed", "99") // seed disagrees with the blob
	if code := run(context.Background(), args, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "different configuration") {
		t.Fatalf("stderr %q does not explain the mismatch", stderr.String())
	}
}
