// Command mdwsim runs one simulation from command-line flags and prints the
// measured results — the fine-grained companion to mdwbench.
//
// Example: compare hardware and software multicast at one operating point:
//
//	mdwsim -arch cb -scheme hw-bitstring -load 0.2 -degree 8
//	mdwsim -arch cb -scheme sw-binomial  -load 0.2 -degree 8
//
// With -reps N the operating point is replicated over seeds seed..seed+N-1
// (fanned across -workers goroutines, each replica an independent simulator);
// the first replica prints the full report and a seed-spread summary follows.
// Ctrl-C (or SIGTERM) stops cleanly: running replicas finish, pending ones
// are skipped, and the process exits 130.
//
// Long runs survive crashes with -checkpoint FILE -checkpoint-every N: the
// snapshot file is atomically replaced every N simulated cycles and removed
// on success. To resume, rerun the same command plus -resume FILE; the
// report is byte-identical to the uninterrupted run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"

	"mdworm"
	"mdworm/internal/prof"
	"mdworm/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive it: a
// cancellation context (Ctrl-C), argument list, and output streams. It
// returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdwsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		arch     = fs.String("arch", "cb", "switch architecture: cb (central buffer) or ib (input buffer)")
		scheme   = fs.String("scheme", "hw-bitstring", "multicast scheme: hw-bitstring, hw-multiport, sw-binomial, sw-separate")
		stages   = fs.Int("stages", 3, "BMIN stages (nodes = 4^stages)")
		load     = fs.Float64("load", 0.1, "offered load in delivered payload flits per node per cycle")
		frac     = fs.Float64("mcast-fraction", 1.0, "fraction of operations that are multicasts")
		degree   = fs.Int("degree", 8, "multicast destinations per op")
		uniLen   = fs.Int("uni-len", 32, "unicast payload flits")
		mcastLen = fs.Int("mcast-len", 64, "multicast payload flits")
		warmup   = fs.Int64("warmup", 4000, "warmup cycles")
		measure  = fs.Int64("measure", 20000, "measurement cycles")
		seed     = fs.Uint64("seed", 1, "random seed")
		sendOv   = fs.Int("send-overhead", 64, "software send overhead in cycles")
		recvOv   = fs.Int("recv-overhead", 64, "software receive overhead in cycles")
		trace    = fs.String("trace", "", "write a message-level event trace to this file ('-' for stderr)")
		timeline = fs.String("timeline", "", "write an ndjson timeline (events + occupancy samples) for mdwtrace")
		sampleEv = fs.Int64("sample-every", 64, "occupancy sampling period in cycles for -timeline/-perfetto (0 = off)")
		perfetto = fs.String("perfetto", "", "write a Perfetto/Chrome trace-event JSON file for ui.perfetto.dev")
		swStats  = fs.Bool("switch-stats", false, "print aggregated switch counters after the run")
		reps     = fs.Int("reps", 1, "replicate the run over this many consecutive seeds")
		workers  = fs.Int("workers", 0, "concurrent replicas when -reps > 1 (0 = GOMAXPROCS)")
		faultArg = fs.String("faults", "", "fault plan spec like 'link-down@1000:sw3.p2;nic-stall@500+200:n5', or @file holding one")
		collKind = fs.String("collective", "", "drive a phase-structured collective: barrier, broadcast, all-reduce, all-reduce-gather, scatter, gather")
		collPay  = fs.Int("coll-payload", 64, "collective payload flits per step (per node for scatter/gather)")
		collReps = fs.Int("coll-reps", 10, "collective repetitions")
		collSkew = fs.Int64("coll-skew", 0, "max per-node collective arrival skew in cycles (deterministic draws)")
		collGap  = fs.Int64("coll-gap", 100, "idle cycles between collective repetitions")
		collRoot = fs.Int("coll-root", 0, "collective root node")
		strict   = fs.Bool("strict", false, "upgrade model-invariant violations to hard run failures")
		ckptFile = fs.String("checkpoint", "", "write a resumable snapshot to this file (atomic replace) every -checkpoint-every cycles")
		ckptEv   = fs.Int64("checkpoint-every", 0, "checkpoint period in simulated cycles (0 with -checkpoint = 100000)")
		resume   = fs.String("resume", "", "resume from a snapshot written by -checkpoint; rerun with the original flags plus -resume")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, "mdwsim:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "mdwsim:", err)
		}
	}()

	cfg := mdworm.DefaultConfig()
	cfg.Stages = *stages
	cfg.Seed = *seed
	cfg.WarmupCycles = *warmup
	cfg.MeasureCycles = *measure
	cfg.NIC.SendOverhead = *sendOv
	cfg.NIC.RecvOverhead = *recvOv
	cfg.Traffic.MulticastFraction = *frac
	cfg.Traffic.Degree = *degree
	cfg.Traffic.UniPayloadFlits = *uniLen
	cfg.Traffic.McastPayloadFlits = *mcastLen
	cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(*load)

	a, err := service.ParseArch(*arch)
	if err != nil {
		fmt.Fprintln(stderr, "mdwsim:", err)
		return 2
	}
	cfg.Arch = a
	sch, err := service.ParseScheme(*scheme)
	if err != nil {
		fmt.Fprintln(stderr, "mdwsim:", err)
		return 2
	}
	cfg.Scheme = sch
	if *faultArg != "" {
		spec := *faultArg
		if strings.HasPrefix(spec, "@") {
			b, err := os.ReadFile(spec[1:])
			if err != nil {
				fmt.Fprintln(stderr, "mdwsim:", err)
				return 1
			}
			spec = strings.TrimSpace(string(b))
		}
		plan, err := mdworm.ParseFaultSpec(spec)
		if err != nil {
			fmt.Fprintln(stderr, "mdwsim:", err)
			return 2
		}
		cfg.Faults = plan
	}
	if *collKind != "" {
		kind, err := mdworm.ParseCollectiveKind(*collKind)
		if err != nil {
			fmt.Fprintln(stderr, "mdwsim:", err)
			return 2
		}
		cfg.Collective = mdworm.CollectiveSpec{
			Kind:         kind,
			Root:         *collRoot,
			PayloadFlits: *collPay,
			Reps:         *collReps,
			SkewCycles:   *collSkew,
			GapCycles:    *collGap,
		}
	}
	cfg.StrictInvariants = *strict

	if *reps < 1 {
		fmt.Fprintln(stderr, "mdwsim: -reps must be >= 1")
		return 2
	}
	if (*ckptFile != "" || *resume != "") && *reps != 1 {
		fmt.Fprintln(stderr, "mdwsim: -checkpoint/-resume require -reps 1 (a snapshot holds exactly one simulator)")
		return 2
	}
	if *ckptFile != "" && (*trace != "" || *timeline != "" || *perfetto != "") {
		// Snapshot refuses attached observers rather than silently dropping
		// them, so refuse the combination up front with a better message.
		fmt.Fprintln(stderr, "mdwsim: -checkpoint is incompatible with -trace/-timeline/-perfetto")
		return 2
	}
	if *ckptEv < 0 || (*ckptEv > 0 && *ckptFile == "") {
		fmt.Fprintln(stderr, "mdwsim: -checkpoint-every needs -checkpoint FILE and a positive period")
		return 2
	}
	if *ckptFile != "" && *ckptEv == 0 {
		*ckptEv = 100_000
	}
	traceOut := stderr
	if *trace != "" && *trace != "-" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(stderr, "mdwsim:", err)
			return 1
		}
		defer f.Close()
		traceOut = f
	}

	// Observation attaches to replica 0 only (replicas stay independent).
	// The timeline streams to disk as the run progresses; a Perfetto export
	// additionally retains events in memory until the end of the run.
	var capture *mdworm.Capture
	if *timeline != "" || *perfetto != "" {
		capture = &mdworm.Capture{SampleEvery: *sampleEv, CaptureEvents: *perfetto != ""}
		if *timeline != "" {
			f, err := os.Create(*timeline)
			if err != nil {
				fmt.Fprintln(stderr, "mdwsim:", err)
				return 1
			}
			defer f.Close()
			capture.Stream = f
		}
	}

	// Each replica is an independent simulator over a consecutive seed;
	// replica 0 carries the trace and the detailed report. A canceled
	// context skips replicas not yet started (running ones finish — a
	// simulator run is not interruptible mid-cycle).
	type repOut struct {
		sim *mdworm.Simulator
		res mdworm.Results
		err error
	}
	outs := make([]repOut, *reps)
	runRep := func(r int) {
		if ctx.Err() != nil {
			outs[r].err = ctx.Err()
			return
		}
		c := cfg
		c.Seed = *seed + uint64(r)
		var sim *mdworm.Simulator
		var err error
		if r == 0 && *resume != "" {
			sim, err = restoreSnapshot(*resume, c)
		} else {
			sim, err = mdworm.New(c)
		}
		if err != nil {
			outs[r].err = err
			return
		}
		if r == 0 && *trace != "" {
			sim.SetTracer(mdworm.NewWriterTracer(traceOut))
		}
		if r == 0 && capture != nil {
			sim.Observe(capture)
		}
		var res mdworm.Results
		if r == 0 && *ckptEv > 0 {
			// A checkpoint the user asked for that cannot be written is a
			// hard failure — silent loss of durability defeats the flag.
			res, err = sim.RunCheckpointed(*ckptEv, func(data []byte, cycle int64) error {
				if werr := atomicWrite(*ckptFile, data); werr != nil {
					return fmt.Errorf("checkpoint at cycle %d: %w", cycle, werr)
				}
				return nil
			})
		} else {
			res, err = sim.Run()
		}
		outs[r] = repOut{sim: sim, res: res, err: err}
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > *reps {
		w = *reps
	}
	if w <= 1 {
		for r := 0; r < *reps; r++ {
			runRep(r)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(w)
		for i := 0; i < w; i++ {
			go func() {
				defer wg.Done()
				for r := range jobs {
					runRep(r)
				}
			}()
		}
		for r := 0; r < *reps; r++ {
			jobs <- r
		}
		close(jobs)
		wg.Wait()
	}
	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "mdwsim: interrupted, partial results discarded")
		return 130
	}
	if outs[0].err != nil {
		fmt.Fprintln(stderr, "mdwsim:", outs[0].err)
		return 1
	}
	sim, res := outs[0].sim, outs[0].res
	if *ckptFile != "" {
		os.Remove(*ckptFile) // the completed report supersedes the snapshot
	}

	// Observability outputs go to stderr/files only: the stdout report stays
	// byte-identical whether or not the run was observed.
	if capture != nil {
		if err := capture.StreamErr(); err != nil {
			fmt.Fprintln(stderr, "mdwsim:", err)
			return 1
		}
		if *perfetto != "" {
			f, err := os.Create(*perfetto)
			if err == nil {
				err = mdworm.WritePerfetto(f, capture.Trace())
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(stderr, "mdwsim:", err)
				return 1
			}
		}
		if *timeline != "" {
			fmt.Fprintf(stderr, "mdwsim: timeline written to %s (%d samples)\n", *timeline, len(capture.Samples))
		}
		if *perfetto != "" {
			fmt.Fprintf(stderr, "mdwsim: perfetto trace written to %s\n", *perfetto)
		}
	}

	fmt.Fprintf(stdout, "system: %d nodes, %s switches, %s multicast, seed %d\n",
		cfg.N(), *arch, *scheme, *seed)
	fmt.Fprintf(stdout, "offered load: %.4g delivered payload flits/node/cycle (op rate %.6f)\n",
		*load, cfg.Traffic.OpRate)
	fmt.Fprintf(stdout, "saturated: %v (max send queue %d)\n\n", res.Saturated, res.MaxSendQueue)
	fmt.Fprintf(stdout, "multicast: ops=%d/%d phases-scheme=%s\n",
		res.Multicast.OpsCompleted, res.Multicast.OpsGenerated, *scheme)
	fmt.Fprintf(stdout, "  last-arrival latency: %v\n", res.Multicast.LastArrival)
	fmt.Fprintf(stdout, "  mean-arrival latency: %v\n", res.Multicast.MeanArrival)
	fmt.Fprintf(stdout, "  messages per op: %.2f\n", res.Multicast.MessagesPerOp)
	fmt.Fprintf(stdout, "  delivered payload: %.4f flits/node/cycle\n\n", res.Multicast.DeliveredPayloadPerNodeCycle)
	fmt.Fprintf(stdout, "unicast: ops=%d/%d\n", res.Unicast.OpsCompleted, res.Unicast.OpsGenerated)
	fmt.Fprintf(stdout, "  latency: %v\n", res.Unicast.LastArrival)
	fmt.Fprintf(stdout, "  delivered payload: %.4f flits/node/cycle\n\n", res.Unicast.DeliveredPayloadPerNodeCycle)
	// The collective report appears only when a collective was driven, so
	// plain runs keep their historical output byte-identical.
	if c := res.Collective; c != nil {
		fmt.Fprintf(stdout, "collective %s: reps=%d/%d degraded=%d\n",
			c.Kind, c.Completed, c.Started, c.Degraded)
		fmt.Fprintf(stdout, "  last-arrival latency: %v\n", c.LastArrival)
		fmt.Fprintf(stdout, "  final-phase arrival skew: %v\n", c.Skew)
		for i, p := range c.Phases {
			fmt.Fprintf(stdout, "  phase %d latency: %v\n", i+1, p)
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "raw delivered flits (headers included): %.4f /node/cycle\n", res.DeliveredFlitsPerNodeCycle)
	fmt.Fprintf(stdout, "drain: %d cycles\n", res.DrainCycles)
	// The fault report appears only for fault-injected runs, so fault-free
	// output stays byte-identical to earlier releases.
	if !cfg.Faults.Empty() {
		fmt.Fprintf(stdout, "\nfault plan: %s\n", cfg.Faults.Spec())
		fmt.Fprintf(stdout, "degraded ops: %d (fully dropped: %d), destinations dropped: %d\n",
			res.OpsDegraded, res.OpsDropped, res.DestsDropped)
		viol := fmt.Sprintf("invariant violations: %d", res.InvariantViolations)
		if s := sim.Invariants().Summary(); s != "" {
			viol += " (" + s + ")"
		}
		fmt.Fprintln(stdout, viol)
	}

	if *reps > 1 {
		fmt.Fprintf(stdout, "\nseed spread over %d replicas (seeds %d..%d):\n",
			*reps, *seed, *seed+uint64(*reps)-1)
		fmt.Fprintf(stdout, "%8s %12s %12s %14s\n", "seed", "mcast_lat", "uni_lat", "delivered")
		var sumM, sumU, sumT float64
		ok := 0
		for r := 0; r < *reps; r++ {
			if outs[r].err != nil {
				fmt.Fprintf(stdout, "%8d  ERROR: %v\n", *seed+uint64(r), outs[r].err)
				continue
			}
			rr := outs[r].res
			thr := rr.Multicast.DeliveredPayloadPerNodeCycle + rr.Unicast.DeliveredPayloadPerNodeCycle
			fmt.Fprintf(stdout, "%8d %12.4g %12.4g %14.5g\n",
				*seed+uint64(r), rr.Multicast.LastArrival.Mean, rr.Unicast.LastArrival.Mean, thr)
			sumM += rr.Multicast.LastArrival.Mean
			sumU += rr.Unicast.LastArrival.Mean
			sumT += thr
			ok++
		}
		if ok > 0 {
			fmt.Fprintf(stdout, "%8s %12.4g %12.4g %14.5g\n", "mean",
				sumM/float64(ok), sumU/float64(ok), sumT/float64(ok))
		}
	}

	if *swStats {
		printSwitchStats(stdout, sim)
	}
	return 0
}

// restoreSnapshot loads a -checkpoint blob and verifies the command line
// describes the same system the snapshot embeds, so the printed report's
// labels (arch, scheme, load, seed) stay truthful.
func restoreSnapshot(path string, flagCfg mdworm.Config) (*mdworm.Simulator, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sim, err := mdworm.Restore(blob)
	if err != nil {
		return nil, err
	}
	canon, err := flagCfg.Canonicalize()
	if err != nil {
		return nil, err
	}
	want, err := json.Marshal(canon)
	if err != nil {
		return nil, err
	}
	got, err := json.Marshal(sim.Config())
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(want, got) {
		return nil, fmt.Errorf("snapshot %s was taken under a different configuration; rerun with the original flags plus -resume", path)
	}
	return sim, nil
}

// atomicWrite replaces path via temp file, fsync, and rename, so an
// interrupted write never leaves a torn snapshot behind.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".mdwsim-ckpt-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// printSwitchStats aggregates per-switch counters across the fabric.
func printSwitchStats(w io.Writer, sim *mdworm.Simulator) {
	fmt.Fprintln(w, "\nswitch counters (aggregated):")
	if cbs := sim.CBStats(); cbs != nil {
		var bypass, buffer, admits, resWait, uniCB, decodes int64
		maxChunks := 0
		for _, st := range cbs {
			bypass += st.BypassFlits
			buffer += st.BufferFlits
			admits += st.AdmittedMcasts
			resWait += st.ReserveWaitSum
			uniCB += st.UnicastCBEnters
			decodes += st.Decodes
			if st.MaxChunksInUse > maxChunks {
				maxChunks = st.MaxChunksInUse
			}
		}
		fmt.Fprintf(w, "  decodes=%d bypass-flits=%d buffer-flits=%d\n", decodes, bypass, buffer)
		fmt.Fprintf(w, "  multicast admissions=%d (total reservation wait %d cycles)\n", admits, resWait)
		fmt.Fprintf(w, "  unicasts diverted to central buffer=%d; peak chunks in use=%d\n", uniCB, maxChunks)
	}
	if ibs := sim.IBStats(); ibs != nil {
		var grants, hol, decodes int64
		maxOcc := 0
		for _, st := range ibs {
			grants += st.GrantWaitSum
			hol += st.HOLBlockedSum
			decodes += st.Decodes
			if st.MaxBufOccupancy > maxOcc {
				maxOcc = st.MaxBufOccupancy
			}
		}
		fmt.Fprintf(w, "  decodes=%d grant-wait=%d cycles, head-of-line stall=%d cycles\n", decodes, grants, hol)
		fmt.Fprintf(w, "  peak input-buffer occupancy=%d flits\n", maxOcc)
	}
}
