// Command mdwsim runs one simulation from command-line flags and prints the
// measured results — the fine-grained companion to mdwbench.
//
// Example: compare hardware and software multicast at one operating point:
//
//	mdwsim -arch cb -scheme hw-bitstring -load 0.2 -degree 8
//	mdwsim -arch cb -scheme sw-binomial  -load 0.2 -degree 8
//
// With -reps N the operating point is replicated over seeds seed..seed+N-1
// (fanned across -workers goroutines, each replica an independent simulator);
// the first replica prints the full report and a seed-spread summary follows.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"mdworm"
)

func main() {
	var (
		arch     = flag.String("arch", "cb", "switch architecture: cb (central buffer) or ib (input buffer)")
		scheme   = flag.String("scheme", "hw-bitstring", "multicast scheme: hw-bitstring, hw-multiport, sw-binomial, sw-separate")
		stages   = flag.Int("stages", 3, "BMIN stages (nodes = 4^stages)")
		load     = flag.Float64("load", 0.1, "offered load in delivered payload flits per node per cycle")
		frac     = flag.Float64("mcast-fraction", 1.0, "fraction of operations that are multicasts")
		degree   = flag.Int("degree", 8, "multicast destinations per op")
		uniLen   = flag.Int("uni-len", 32, "unicast payload flits")
		mcastLen = flag.Int("mcast-len", 64, "multicast payload flits")
		warmup   = flag.Int64("warmup", 4000, "warmup cycles")
		measure  = flag.Int64("measure", 20000, "measurement cycles")
		seed     = flag.Uint64("seed", 1, "random seed")
		sendOv   = flag.Int("send-overhead", 64, "software send overhead in cycles")
		recvOv   = flag.Int("recv-overhead", 64, "software receive overhead in cycles")
		trace    = flag.String("trace", "", "write a message-level event trace to this file ('-' for stderr)")
		swStats  = flag.Bool("switch-stats", false, "print aggregated switch counters after the run")
		reps     = flag.Int("reps", 1, "replicate the run over this many consecutive seeds")
		workers  = flag.Int("workers", 0, "concurrent replicas when -reps > 1 (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := mdworm.DefaultConfig()
	cfg.Stages = *stages
	cfg.Seed = *seed
	cfg.WarmupCycles = *warmup
	cfg.MeasureCycles = *measure
	cfg.NIC.SendOverhead = *sendOv
	cfg.NIC.RecvOverhead = *recvOv
	cfg.Traffic.MulticastFraction = *frac
	cfg.Traffic.Degree = *degree
	cfg.Traffic.UniPayloadFlits = *uniLen
	cfg.Traffic.McastPayloadFlits = *mcastLen
	cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(*load)

	switch *arch {
	case "cb":
		cfg.Arch = mdworm.CentralBuffer
	case "ib":
		cfg.Arch = mdworm.InputBuffer
	default:
		fmt.Fprintf(os.Stderr, "mdwsim: unknown arch %q\n", *arch)
		os.Exit(2)
	}
	switch *scheme {
	case "hw-bitstring":
		cfg.Scheme = mdworm.HardwareBitString
	case "hw-multiport":
		cfg.Scheme = mdworm.HardwareMultiport
	case "sw-binomial":
		cfg.Scheme = mdworm.SoftwareBinomial
	case "sw-separate":
		cfg.Scheme = mdworm.SoftwareSeparate
	default:
		fmt.Fprintf(os.Stderr, "mdwsim: unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	if *reps < 1 {
		fmt.Fprintln(os.Stderr, "mdwsim: -reps must be >= 1")
		os.Exit(2)
	}
	traceOut := os.Stderr
	if *trace != "" && *trace != "-" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdwsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		traceOut = f
	}

	// Each replica is an independent simulator over a consecutive seed;
	// replica 0 carries the trace and the detailed report.
	type repOut struct {
		sim *mdworm.Simulator
		res mdworm.Results
		err error
	}
	outs := make([]repOut, *reps)
	runRep := func(r int) {
		c := cfg
		c.Seed = *seed + uint64(r)
		sim, err := mdworm.New(c)
		if err != nil {
			outs[r].err = err
			return
		}
		if r == 0 && *trace != "" {
			sim.SetTracer(mdworm.NewWriterTracer(traceOut))
		}
		res, err := sim.Run()
		outs[r] = repOut{sim: sim, res: res, err: err}
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > *reps {
		w = *reps
	}
	if w <= 1 {
		for r := 0; r < *reps; r++ {
			runRep(r)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(w)
		for i := 0; i < w; i++ {
			go func() {
				defer wg.Done()
				for r := range jobs {
					runRep(r)
				}
			}()
		}
		for r := 0; r < *reps; r++ {
			jobs <- r
		}
		close(jobs)
		wg.Wait()
	}
	if outs[0].err != nil {
		fmt.Fprintln(os.Stderr, "mdwsim:", outs[0].err)
		os.Exit(1)
	}
	sim, res := outs[0].sim, outs[0].res

	fmt.Printf("system: %d nodes, %s switches, %s multicast, seed %d\n",
		cfg.N(), *arch, *scheme, *seed)
	fmt.Printf("offered load: %.4g delivered payload flits/node/cycle (op rate %.6f)\n",
		*load, cfg.Traffic.OpRate)
	fmt.Printf("saturated: %v (max send queue %d)\n\n", res.Saturated, res.MaxSendQueue)
	fmt.Printf("multicast: ops=%d/%d phases-scheme=%s\n",
		res.Multicast.OpsCompleted, res.Multicast.OpsGenerated, *scheme)
	fmt.Printf("  last-arrival latency: %v\n", res.Multicast.LastArrival)
	fmt.Printf("  mean-arrival latency: %v\n", res.Multicast.MeanArrival)
	fmt.Printf("  messages per op: %.2f\n", res.Multicast.MessagesPerOp)
	fmt.Printf("  delivered payload: %.4f flits/node/cycle\n\n", res.Multicast.DeliveredPayloadPerNodeCycle)
	fmt.Printf("unicast: ops=%d/%d\n", res.Unicast.OpsCompleted, res.Unicast.OpsGenerated)
	fmt.Printf("  latency: %v\n", res.Unicast.LastArrival)
	fmt.Printf("  delivered payload: %.4f flits/node/cycle\n\n", res.Unicast.DeliveredPayloadPerNodeCycle)
	fmt.Printf("raw delivered flits (headers included): %.4f /node/cycle\n", res.DeliveredFlitsPerNodeCycle)
	fmt.Printf("drain: %d cycles\n", res.DrainCycles)

	if *reps > 1 {
		fmt.Printf("\nseed spread over %d replicas (seeds %d..%d, %d workers):\n",
			*reps, *seed, *seed+uint64(*reps)-1, w)
		fmt.Printf("%8s %12s %12s %14s\n", "seed", "mcast_lat", "uni_lat", "delivered")
		var sumM, sumU, sumT float64
		ok := 0
		for r := 0; r < *reps; r++ {
			if outs[r].err != nil {
				fmt.Printf("%8d  ERROR: %v\n", *seed+uint64(r), outs[r].err)
				continue
			}
			rr := outs[r].res
			thr := rr.Multicast.DeliveredPayloadPerNodeCycle + rr.Unicast.DeliveredPayloadPerNodeCycle
			fmt.Printf("%8d %12.4g %12.4g %14.5g\n",
				*seed+uint64(r), rr.Multicast.LastArrival.Mean, rr.Unicast.LastArrival.Mean, thr)
			sumM += rr.Multicast.LastArrival.Mean
			sumU += rr.Unicast.LastArrival.Mean
			sumT += thr
			ok++
		}
		if ok > 0 {
			fmt.Printf("%8s %12.4g %12.4g %14.5g\n", "mean",
				sumM/float64(ok), sumU/float64(ok), sumT/float64(ok))
		}
	}

	if *swStats {
		printSwitchStats(sim)
	}
}

// printSwitchStats aggregates per-switch counters across the fabric.
func printSwitchStats(sim *mdworm.Simulator) {
	fmt.Println("\nswitch counters (aggregated):")
	if cbs := sim.CBStats(); cbs != nil {
		var bypass, buffer, admits, resWait, uniCB, decodes int64
		maxChunks := 0
		for _, st := range cbs {
			bypass += st.BypassFlits
			buffer += st.BufferFlits
			admits += st.AdmittedMcasts
			resWait += st.ReserveWaitSum
			uniCB += st.UnicastCBEnters
			decodes += st.Decodes
			if st.MaxChunksInUse > maxChunks {
				maxChunks = st.MaxChunksInUse
			}
		}
		fmt.Printf("  decodes=%d bypass-flits=%d buffer-flits=%d\n", decodes, bypass, buffer)
		fmt.Printf("  multicast admissions=%d (total reservation wait %d cycles)\n", admits, resWait)
		fmt.Printf("  unicasts diverted to central buffer=%d; peak chunks in use=%d\n", uniCB, maxChunks)
	}
	if ibs := sim.IBStats(); ibs != nil {
		var grants, hol, decodes int64
		maxOcc := 0
		for _, st := range ibs {
			grants += st.GrantWaitSum
			hol += st.HOLBlockedSum
			decodes += st.Decodes
			if st.MaxBufOccupancy > maxOcc {
				maxOcc = st.MaxBufOccupancy
			}
		}
		fmt.Printf("  decodes=%d grant-wait=%d cycles, head-of-line stall=%d cycles\n", decodes, grants, hol)
		fmt.Printf("  peak input-buffer occupancy=%d flits\n", maxOcc)
	}
}
