package main

import (
	"reflect"
	"testing"
)

func TestExpandGroups(t *testing.T) {
	all, err := expand("all")
	if err != nil || len(all) < 16 {
		t.Fatalf("all: %v %v", all, err)
	}
	paper, err := expand("paper")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range paper {
		if id[0] != 'e' {
			t.Fatalf("paper group contains %q", id)
		}
	}
	abl, err := expand("ablation")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range abl {
		if id[0] != 'a' {
			t.Fatalf("ablation group contains %q", id)
		}
	}
	if len(paper)+len(abl) != len(all) {
		t.Fatalf("groups do not partition: %d + %d != %d", len(paper), len(abl), len(all))
	}
}

func TestExpandExplicitList(t *testing.T) {
	got, err := expand("e1, E3 ,a8")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"e1", "e3", "a8"}) {
		t.Fatalf("got %v", got)
	}
}

func TestExpandErrors(t *testing.T) {
	if _, err := expand("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := expand(" , "); err == nil {
		t.Error("empty list accepted")
	}
}
