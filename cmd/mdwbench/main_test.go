package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mdworm/internal/service"
)

func TestExpandGroups(t *testing.T) {
	all, err := expand("all")
	if err != nil || len(all) < 16 {
		t.Fatalf("all: %v %v", all, err)
	}
	paper, err := expand("paper")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range paper {
		if id[0] != 'e' {
			t.Fatalf("paper group contains %q", id)
		}
	}
	abl, err := expand("ablation")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range abl {
		if id[0] != 'a' {
			t.Fatalf("ablation group contains %q", id)
		}
	}
	coll, err := expand("collective")
	if err != nil {
		t.Fatal(err)
	}
	if len(coll) != 6 {
		t.Fatalf("collective group %v, want c1..c6", coll)
	}
	for _, id := range coll {
		if id[0] != 'c' {
			t.Fatalf("collective group contains %q", id)
		}
	}
	if len(paper)+len(abl)+len(coll) != len(all) {
		t.Fatalf("groups do not partition: %d + %d + %d != %d",
			len(paper), len(abl), len(coll), len(all))
	}
}

func TestBatchFamily(t *testing.T) {
	cases := []struct {
		ids  []string
		want string
	}{
		{[]string{"e1", "e3"}, "paper"},
		{[]string{"a8"}, "ablation"},
		{[]string{"c1", "c4", "c6"}, "collective"},
		{[]string{"e1", "c1"}, "mixed"},
		{nil, ""},
	}
	for _, c := range cases {
		if got := batchFamily(c.ids); got != c.want {
			t.Errorf("batchFamily(%v) = %q, want %q", c.ids, got, c.want)
		}
	}
}

func TestExpandExplicitList(t *testing.T) {
	got, err := expand("e1, E3 ,a8")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"e1", "e3", "a8"}) {
		t.Fatalf("got %v", got)
	}
}

func TestExpandErrors(t *testing.T) {
	if _, err := expand("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := expand(" , "); err == nil {
		t.Error("empty list accepted")
	}
}

// TestBenchHistoryAppend: -bench-out accumulates an array, one entry per run.
func TestBenchHistoryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	for i := 1; i <= 3; i++ {
		n, err := appendBenchHistory(path, benchReport{Timestamp: "t", Points: i})
		if err != nil {
			t.Fatal(err)
		}
		if n != i {
			t.Fatalf("run %d recorded as %d", i, n)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist []benchReport
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatalf("history not a JSON array: %v", err)
	}
	if len(hist) != 3 || hist[2].Points != 3 {
		t.Fatalf("history %+v", hist)
	}
}

// TestBenchHistoryMigratesLegacy: a pre-history single-object file becomes
// the first entry of the array instead of being overwritten, and entries
// written before the family field stay decodable next to ones that have it.
func TestBenchHistoryMigratesLegacy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	legacy := `{"quick":false,"seed":1,"points":314,"wall_seconds":83.0}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := appendBenchHistory(path, benchReport{Timestamp: "now", Points: 7, Family: "collective"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("recorded %d runs, want 2", n)
	}
	data, _ := os.ReadFile(path)
	var hist []benchReport
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	if hist[0].Points != 314 || hist[1].Points != 7 || hist[1].Timestamp != "now" {
		t.Fatalf("history %+v", hist)
	}
	if hist[0].Family != "" || hist[1].Family != "collective" {
		t.Fatalf("family fields %q, %q; want \"\", \"collective\"", hist[0].Family, hist[1].Family)
	}
	if strings.Contains(string(data), `"family":""`) {
		t.Fatalf("pre-family entry grew an empty family field:\n%s", data)
	}
}

func TestBenchHistoryRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := appendBenchHistory(path, benchReport{}); err == nil {
		t.Fatal("garbage file accepted")
	}
}

// TestDaemonModeMatchesLocal: the same experiment through -daemon renders
// the identical table to an in-process run (daemon-side determinism plus
// pass-through rendering).
func TestDaemonModeMatchesLocal(t *testing.T) {
	srv, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var local, remote, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "a8", "-quick"}, &local, &stderr); code != 0 {
		t.Fatalf("local: exit %d\n%s", code, stderr.String())
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-exp", "a8", "-quick", "-daemon", ts.URL}, &remote, &stderr); code != 0 {
		t.Fatalf("daemon: exit %d\n%s", code, stderr.String())
	}
	if local.String() != remote.String() {
		t.Fatalf("daemon output differs from local:\n--- local ---\n%s\n--- daemon ---\n%s",
			local.String(), remote.String())
	}
}

// TestDaemonModeBenchOut: the done event's batch cost feeds -bench-out.
func TestDaemonModeBenchOut(t *testing.T) {
	srv, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-exp", "a8", "-quick", "-daemon", ts.URL, "-bench-out", path, "-v"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	var hist []benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0].Points == 0 || hist[0].SimulatedCycle == 0 || hist[0].Timestamp == "" {
		t.Fatalf("history %+v", hist)
	}
	if hist[0].Family != "ablation" {
		t.Fatalf("family %q, want ablation", hist[0].Family)
	}
	if !strings.Contains(stderr.String(), "x=") {
		t.Fatalf("-v produced no point lines:\n%s", stderr.String())
	}
}

func TestDaemonModeErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(),
		[]string{"-daemon", "http://x", "-format", "csv", "-exp", "a8"}, &stdout, &stderr); code != 2 {
		t.Fatalf("csv over daemon: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run(context.Background(),
		[]string{"-daemon", "http://127.0.0.1:1", "-exp", "a8", "-quick"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unreachable daemon: exit %d, want 1\n%s", code, stderr.String())
	}
}

// TestCanceledSweep: a pre-canceled context (Ctrl-C) exits 130 with no
// partial tables, both locally and through a daemon.
func TestCanceledSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	if code := run(ctx, []string{"-exp", "a8", "-quick"}, &stdout, &stderr); code != 130 {
		t.Fatalf("local: exit %d, want 130\n%s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("partial tables printed:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("stderr: %s", stderr.String())
	}

	srv, err := service.New(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	stdout.Reset()
	stderr.Reset()
	if code := run(ctx, []string{"-exp", "a8", "-quick", "-daemon", ts.URL}, &stdout, &stderr); code != 130 {
		t.Fatalf("daemon: exit %d, want 130\n%s", code, stderr.String())
	}
}
