// Command mdwbench regenerates the paper's evaluation: every figure/table
// (e1..e8) and the design-choice ablations (a1..a6).
//
// Usage:
//
//	mdwbench                 # run the full suite
//	mdwbench -exp e1,e3      # run selected experiments
//	mdwbench -exp ablation   # run a1..a6 only
//	mdwbench -exp paper      # run e1..e8 only
//	mdwbench -quick          # shrunk windows and point counts
//	mdwbench -v              # per-point progress on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mdworm"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids, or all|paper|ablation")
		quick   = flag.Bool("quick", false, "shrink windows and point counts")
		format  = flag.String("format", "text", "output format: text, csv, or plot")
		seed    = flag.Uint64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "per-point progress on stderr")
	)
	flag.Parse()

	opts := mdworm.ExperimentOptions{Quick: *quick, Seed: *seed}
	if *verbose {
		opts.Progress = os.Stderr
	}

	ids, err := expand(*expFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, id := range ids {
		t, err := mdworm.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdwbench: experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "text":
			t.Format(os.Stdout)
			fmt.Println()
		case "csv":
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mdwbench:", err)
				os.Exit(1)
			}
			fmt.Println()
		case "plot":
			t.Plot(os.Stdout)
			fmt.Println()
		default:
			fmt.Fprintf(os.Stderr, "mdwbench: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}

func expand(spec string) ([]string, error) {
	all := mdworm.ExperimentIDs()
	switch spec {
	case "all":
		return all, nil
	case "paper", "ablation":
		var out []string
		for _, id := range all {
			if (spec == "paper") == strings.HasPrefix(id, "e") {
				out = append(out, id)
			}
		}
		return out, nil
	}
	var out []string
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id == "" {
			continue
		}
		found := false
		for _, known := range all {
			if id == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("mdwbench: unknown experiment %q (have %v)", id, all)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mdwbench: no experiments selected")
	}
	return out, nil
}
