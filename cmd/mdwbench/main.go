// Command mdwbench regenerates the paper's evaluation: every figure/table
// (e1..e8), the design-choice ablations (a1..a11), and the collective
// experiments (c1..c6).
//
// Usage:
//
//	mdwbench                 # run the full suite
//	mdwbench -exp e1,e3      # run selected experiments
//	mdwbench -exp ablation   # run a1..a11 only
//	mdwbench -exp paper      # run e1..e8 only
//	mdwbench -exp collective # run c1..c6 only
//	mdwbench -quick          # shrunk windows and point counts
//	mdwbench -workers 8      # sweep-point pool size (0 = GOMAXPROCS)
//	mdwbench -bench-out f    # append batch timing stats to a JSON history
//	mdwbench -daemon URL     # run on an mdwd daemon instead of in-process
//	mdwbench -cpuprofile f   # write a pprof CPU profile of the run
//	mdwbench -memprofile f   # write a pprof heap profile on exit
//	mdwbench -api-key K      # authenticate -daemon requests (mdwd -tenants)
//	mdwbench -load 30s       # open-loop soak of a daemon instead of a sweep
//	mdwbench -v              # per-point progress on stderr
//
// Sweep points are independent simulator instances, so -workers only
// changes wall-clock time: the rendered tables are byte-identical for
// every worker count. Ctrl-C (or SIGTERM) cancels the sweep: pending
// points are skipped and the process exits 130 without partial tables.
//
// With -daemon the experiments execute on a running mdwd server (repeat
// runs are served from its result cache); tables stream back identical to
// the in-process rendering. Only -format text is available remotely. The
// URL may equally point at a cluster coordinator (mdwd -coordinator): the
// API and the rendered tables are identical, with the sweep sharded across
// the coordinator's worker fleet. Against a daemon running with -tenants,
// pass -api-key (sweeps) or -load-keys (soaks) to authenticate.
//
// With -load the tool becomes a load generator: per-tenant open-loop Poisson
// arrivals against -daemon for the given duration, with per-tenant latency
// percentiles and error counts appended to -load-out (BENCH_load.json) and
// optional regression gates -load-fail-5xx and -load-max-p99. See the README
// "Multi-tenancy" section.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mdworm"
	"mdworm/internal/engine"
	"mdworm/internal/prof"
	"mdworm/internal/service"
)

// benchReport is one timing record of a sweep batch. The -bench-out file
// (BENCH_sweep.json) holds a JSON array of these, newest last, so the perf
// trajectory across commits is preserved; see appendBenchHistory.
type benchReport struct {
	Timestamp      string   `json:"timestamp,omitempty"`
	Kernel         string   `json:"kernel,omitempty"`
	GoVersion      string   `json:"go_version,omitempty"`
	Quick          bool     `json:"quick"`
	Seed           uint64   `json:"seed"`
	Experiments    []string `json:"experiments"`
	Family         string   `json:"family,omitempty"`
	Workers        int      `json:"workers"`
	Points         int      `json:"points"`
	SimulatedCycle int64    `json:"simulated_cycles"`
	WallSeconds    float64  `json:"wall_seconds"`
	PointsPerSec   float64  `json:"points_per_sec"`
	CyclesPerSec   float64  `json:"cycles_per_sec"`
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive it.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdwbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag  = fs.String("exp", "all", "comma-separated experiment ids, or all|paper|ablation|collective")
		quick    = fs.Bool("quick", false, "shrink windows and point counts")
		format   = fs.String("format", "text", "output format: text, csv, or plot")
		seed     = fs.Uint64("seed", 1, "random seed")
		workers  = fs.Int("workers", 0, "concurrent sweep points (0 = GOMAXPROCS)")
		benchOut = fs.String("bench-out", "", "append batch timing stats (points/sec, cycles/sec) to this JSON history file")
		daemon   = fs.String("daemon", "", "run experiments on an mdwd daemon at this base URL (e.g. http://localhost:8080)")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
		retries  = fs.Int("retries", 5, "with -daemon: retry a busy, draining, or unreachable daemon this many times (exponential backoff honoring Retry-After)")
		verbose  = fs.Bool("v", false, "per-point progress on stderr")
		apiKey   = fs.String("api-key", "", "with -daemon: authenticate as \"Authorization: Bearer <key>\" (multi-tenant daemons)")

		loadDur     = fs.Duration("load", 0, "soak mode: open-loop load test against -daemon for this duration instead of running experiments")
		loadRate    = fs.Float64("load-rate", 20, "soak: aggregate target arrival rate in req/s (Poisson, split evenly across tenants)")
		loadClients = fs.Int("load-clients", 4, "soak: max in-flight requests per tenant")
		loadKeys    = fs.String("load-keys", "", "soak: comma-separated name=APIkey tenant pairs (empty = one anonymous tenant)")
		loadOut     = fs.String("load-out", "BENCH_load.json", "soak: append per-tenant latency percentiles to this JSON history file (empty = don't record)")
		loadMaxP99  = fs.Duration("load-max-p99", 0, "soak: fail if any tenant's p99 latency exceeds this (0 = no gate)")
		loadFail5xx = fs.Bool("load-fail-5xx", false, "soak: fail on any 5xx or transport error")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *loadDur > 0 {
		if *daemon == "" {
			fmt.Fprintln(stderr, "mdwbench: -load needs -daemon (the soak drives a running mdwd)")
			return 2
		}
		tenants, err := parseLoadKeys(*loadKeys)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		rep, err := runLoad(ctx, loadOpts{
			Base:     *daemon,
			Duration: *loadDur,
			Rate:     *loadRate,
			Clients:  *loadClients,
			Tenants:  tenants,
			Seed:     *seed,
			Verbose:  *verbose,
		}, stderr)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(stderr, "mdwbench: interrupted, soak results discarded")
				return 130
			}
			fmt.Fprintf(stderr, "mdwbench: %v\n", err)
			return 1
		}
		formatLoadReport(stdout, rep)
		if *loadOut != "" {
			n, err := appendLoadHistory(*loadOut, rep)
			if err != nil {
				fmt.Fprintln(stderr, "mdwbench:", err)
				return 1
			}
			fmt.Fprintf(stderr, "mdwbench: soak recorded -> %s (%d runs)\n", *loadOut, n)
		}
		if err := checkLoadGates(rep, *loadFail5xx, *loadMaxP99); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	ids, err := expand(*expFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, "mdwbench:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "mdwbench:", err)
		}
	}()

	var (
		points int
		cycles int64
		wall   float64
		wkrs   int
	)
	if *daemon != "" {
		if *format != "text" {
			fmt.Fprintln(stderr, "mdwbench: -daemon streams pre-rendered tables; only -format text is supported")
			return 2
		}
		points, cycles, wall, err = runRemote(ctx, *daemon, ids, remoteOpts{
			Quick: *quick, Seed: *seed, Workers: *workers, Verbose: *verbose, Retries: *retries,
			APIKey: *apiKey,
		}, stdout, stderr)
		wkrs = *workers
	} else {
		opts := mdworm.ExperimentOptions{Quick: *quick, Seed: *seed, Workers: *workers, Context: ctx}
		if *verbose {
			opts.Progress = stderr
		}
		var tables []*mdworm.ExperimentTable
		var st mdworm.SweepStats
		tables, st, err = mdworm.RunExperiments(ids, opts)
		if err == nil {
			for _, t := range tables {
				switch *format {
				case "text":
					t.Format(stdout)
					fmt.Fprintln(stdout)
				case "csv":
					if err := t.WriteCSV(stdout); err != nil {
						fmt.Fprintln(stderr, "mdwbench:", err)
						return 1
					}
					fmt.Fprintln(stdout)
				case "plot":
					t.Plot(stdout)
					fmt.Fprintln(stdout)
				default:
					fmt.Fprintf(stderr, "mdwbench: unknown format %q\n", *format)
					return 2
				}
			}
		}
		points, cycles, wall, wkrs = st.Points, st.Cycles, st.Wall.Seconds(), st.Workers
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(stderr, "mdwbench: interrupted, partial results discarded")
			return 130
		}
		fmt.Fprintf(stderr, "mdwbench: %v\n", err)
		return 1
	}

	if *benchOut != "" {
		rep := benchReport{
			Timestamp:      time.Now().UTC().Format(time.RFC3339),
			Kernel:         engine.Kernel,
			GoVersion:      runtime.Version(),
			Quick:          *quick,
			Seed:           *seed,
			Experiments:    ids,
			Family:         batchFamily(ids),
			Workers:        wkrs,
			Points:         points,
			SimulatedCycle: cycles,
			WallSeconds:    wall,
		}
		if wall > 0 {
			rep.PointsPerSec = float64(points) / wall
			rep.CyclesPerSec = float64(cycles) / wall
		}
		n, err := appendBenchHistory(*benchOut, rep)
		if err != nil {
			fmt.Fprintln(stderr, "mdwbench:", err)
			return 1
		}
		fmt.Fprintf(stderr, "mdwbench: %d points, %.1fs wall, %.2f points/s, %.3g cycles/s (workers=%d) -> %s (%d runs recorded)\n",
			points, wall, rep.PointsPerSec, rep.CyclesPerSec, wkrs, *benchOut, n)
	}
	return 0
}

// appendBenchHistory appends rep to the JSON array in path, creating the
// file if absent. A legacy file holding a single object (the pre-history
// format) is preserved as the array's first entry. Returns the number of
// recorded runs.
func appendBenchHistory(path string, rep benchReport) (int, error) {
	var hist []benchReport
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return 0, err
	default:
		trimmed := strings.TrimSpace(string(data))
		if strings.HasPrefix(trimmed, "[") {
			if err := json.Unmarshal(data, &hist); err != nil {
				return 0, fmt.Errorf("%s: existing history unreadable: %w", path, err)
			}
		} else if trimmed != "" {
			var legacy benchReport
			if err := json.Unmarshal(data, &legacy); err != nil {
				return 0, fmt.Errorf("%s: existing report unreadable: %w", path, err)
			}
			hist = append(hist, legacy)
		}
	}
	hist = append(hist, rep)
	out, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return 0, err
	}
	return len(hist), nil
}

type remoteOpts struct {
	Quick   bool
	Seed    uint64
	Workers int
	Verbose bool
	Retries int
	APIKey  string
}

// runRemote drives each experiment on an mdwd daemon via POST /v1/experiment,
// consuming the chunked JSON-lines stream: point events go to stderr under
// -v, rendered tables to stdout, and the done event carries the batch cost.
// A stream cut mid-sweep (daemon restart, network fault) is resumed: the
// reconnect carries the stream token from the start event and the highest
// delivered seq as the cursor, so no completed point is re-delivered.
func runRemote(ctx context.Context, base string, ids []string, o remoteOpts, stdout, stderr io.Writer) (points int, cycles int64, wall float64, err error) {
	base = strings.TrimRight(base, "/")
	client := &http.Client{} // no timeout: experiments stream for minutes
	for _, id := range ids {
		p, c, w, err := runExperiment(ctx, client, base, id, o, stdout, stderr)
		if err != nil {
			if ctx.Err() != nil {
				return points, cycles, wall, ctx.Err()
			}
			return points, cycles, wall, err
		}
		points += p
		cycles += c
		wall += w
	}
	return points, cycles, wall, nil
}

// runExperiment streams one experiment to its done event, reconnecting with
// the resume cursor when the stream is cut or the daemon reports a retryable
// error. Reconnect backoff doubles from 1s, capped at a minute, jittered,
// and honors ctx cancellation.
func runExperiment(ctx context.Context, client *http.Client, base, id string, o remoteOpts, stdout, stderr io.Writer) (points int, cycles int64, wall float64, err error) {
	req := service.ExperimentRequest{ID: id, Quick: o.Quick, Seed: o.Seed, Workers: o.Workers}
	backoff := time.Second
	tablesPrinted := 0 // tables already written to stdout across resume attempts
	for resumes := 0; ; resumes++ {
		reqBody, err := json.Marshal(req)
		if err != nil {
			return 0, 0, 0, err
		}
		resp, err := postWithRetry(ctx, client, base+"/v1/experiment", string(reqBody), o.APIKey, o.Retries, o.Verbose, stderr)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("%s: %w", id, err)
		}
		st := consumeStream(resp, id, &req, &tablesPrinted, o.Verbose, stdout, stderr)
		resp.Body.Close()
		if st.done {
			return st.points, st.cycles, st.wall, nil
		}
		// Resume only when it can help: the interruption must be transient,
		// the server must have issued a stream token, and the attempt budget
		// must not be spent.
		if !st.retryable || req.Stream == "" || resumes >= o.Retries || ctx.Err() != nil {
			if st.err == nil {
				st.err = fmt.Errorf("%s: stream ended without a done event", id)
			}
			return 0, 0, 0, st.err
		}
		wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		if o.Verbose {
			fmt.Fprintf(stderr, "mdwbench: %s: stream interrupted (%v), resuming after seq %d in %s (attempt %d/%d)\n",
				id, st.err, req.AfterSeq, wait.Round(time.Millisecond), resumes+1, o.Retries)
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return 0, 0, 0, ctx.Err()
		}
		backoff *= 2
		if backoff > time.Minute {
			backoff = time.Minute
		}
	}
}

// postWithRetry posts body to url, retrying an unreachable daemon
// (connection refused while it restarts) and 429/503 backpressure rejections
// with exponential backoff plus jitter, honoring the server's Retry-After
// hint when one is present. Any other response returns to the caller as-is.
func postWithRetry(ctx context.Context, client *http.Client, url, body, apiKey string, retries int, verbose bool, stderr io.Writer) (*http.Response, error) {
	backoff := time.Second
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if apiKey != "" {
			req.Header.Set("Authorization", "Bearer "+apiKey)
		}
		resp, err := client.Do(req)
		wait := time.Duration(0)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			wait = backoff
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			wait = retryWait(resp.Header.Get("Retry-After"), backoff)
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		default:
			return resp, nil
		}
		if attempt >= retries {
			if err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("daemon still rejecting (%s) after %d retries", resp.Status, retries)
		}
		// Full jitter on the upper half of the window keeps a fleet of
		// retrying clients from re-colliding on the same instant.
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1))
		if verbose {
			fmt.Fprintf(stderr, "mdwbench: daemon busy or unreachable, retrying in %s (attempt %d/%d)\n",
				wait.Round(time.Millisecond), attempt+1, retries)
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		backoff *= 2
		if backoff > time.Minute {
			backoff = time.Minute
		}
	}
}

// retryWait picks the pause before a retry: the server's Retry-After hint
// when present, otherwise the client's own backoff — either way capped at a
// minute, so a confused (or hostile) server cannot park the client for an
// hour.
func retryWait(retryAfter string, backoff time.Duration) time.Duration {
	wait := backoff
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
			wait = time.Duration(secs) * time.Second
		}
	}
	return min(wait, time.Minute)
}

// streamState is one consumeStream outcome: either done (the stream reached
// its done event, stats valid), or interrupted (retryable says whether a
// reconnect with the updated cursor in req can finish the job).
type streamState struct {
	points    int
	cycles    int64
	wall      float64
	done      bool
	retryable bool
	err       error
}

// consumeStream reads one /v1/experiment JSON-lines response, advancing the
// resume cursor in req as events arrive: the start event's stream token and
// each point's seq are recorded before the event is acted on, so a cut at
// any byte resumes without re-delivering a consumed point. tablesPrinted is
// the cross-attempt cursor for table events, which carry no seq and are
// re-streamed in full on a resume: the stream is deterministic, so the K-th
// table of the resumed stream is the K-th table of the cut one, and only
// tables past the cursor are printed.
func consumeStream(resp *http.Response, id string, req *service.ExperimentRequest, tablesPrinted *int, verbose bool, stdout, stderr io.Writer) streamState {
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return streamState{err: fmt.Errorf("%s: daemon returned %s: %s", id, resp.Status, strings.TrimSpace(string(body)))}
	}
	var st streamState
	tablesSeen := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // tables are one line each
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev service.StreamEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			st.err = fmt.Errorf("%s: bad stream line %q: %w", id, line, err)
			st.retryable = true // a truncated line is a cut connection
			return st
		}
		switch ev.Type {
		case "start":
			if ev.Stream != "" {
				req.Stream = ev.Stream
			}
			if verbose {
				fmt.Fprintf(stderr, "%s: job %s started\n", id, ev.Job)
			}
		case "point":
			if ev.Seq > req.AfterSeq {
				req.AfterSeq = ev.Seq
			}
			if verbose {
				if ev.Err != "" {
					fmt.Fprintf(stderr, "%s: ERROR: %s\n", ev.Tag, ev.Err)
				} else {
					fmt.Fprintf(stderr, "%s: x=%g mcast=%.4g uni=%.4g thr=%.5g\n",
						ev.Tag, ev.X, ev.McastLat, ev.UniLat, ev.Throughput)
				}
			}
		case "table":
			tablesSeen++
			if tablesSeen > *tablesPrinted {
				fmt.Fprint(stdout, ev.Text)
				fmt.Fprintln(stdout)
				*tablesPrinted = tablesSeen
			}
		case "done":
			st.points, st.cycles, st.wall = ev.Points, ev.Cycles, ev.WallSeconds
			st.done = true
		case "error":
			st.err = fmt.Errorf("%s: daemon: %s", id, ev.Err)
			st.retryable = ev.Retryable
			return st
		}
	}
	if err := sc.Err(); err != nil {
		st.err = fmt.Errorf("%s: stream: %w", id, err)
		st.retryable = !st.done
	} else if !st.done {
		st.retryable = true // clean EOF mid-stream: the server went away
	}
	return st
}

// expFamily names the family an experiment id belongs to, by its registry
// prefix: e = paper figures/tables, a = ablations, c = collectives.
func expFamily(id string) string {
	switch {
	case strings.HasPrefix(id, "e"):
		return "paper"
	case strings.HasPrefix(id, "a"):
		return "ablation"
	case strings.HasPrefix(id, "c"):
		return "collective"
	}
	return "unknown"
}

// batchFamily names the family a batch of ids shares, or "mixed".
func batchFamily(ids []string) string {
	if len(ids) == 0 {
		return ""
	}
	f := expFamily(ids[0])
	for _, id := range ids[1:] {
		if expFamily(id) != f {
			return "mixed"
		}
	}
	return f
}

func expand(spec string) ([]string, error) {
	all := mdworm.ExperimentIDs()
	switch spec {
	case "all":
		return all, nil
	case "paper", "ablation", "collective":
		var out []string
		for _, id := range all {
			if expFamily(id) == spec {
				out = append(out, id)
			}
		}
		return out, nil
	}
	var out []string
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id == "" {
			continue
		}
		found := false
		for _, known := range all {
			if id == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("mdwbench: unknown experiment %q (have %v)", id, all)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mdwbench: no experiments selected")
	}
	return out, nil
}
