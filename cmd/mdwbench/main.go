// Command mdwbench regenerates the paper's evaluation: every figure/table
// (e1..e8) and the design-choice ablations (a1..a11).
//
// Usage:
//
//	mdwbench                 # run the full suite
//	mdwbench -exp e1,e3      # run selected experiments
//	mdwbench -exp ablation   # run a1..a11 only
//	mdwbench -exp paper      # run e1..e8 only
//	mdwbench -quick          # shrunk windows and point counts
//	mdwbench -workers 8      # sweep-point pool size (0 = GOMAXPROCS)
//	mdwbench -bench-out f    # write batch timing stats as JSON
//	mdwbench -v              # per-point progress on stderr
//
// Sweep points are independent simulator instances, so -workers only
// changes wall-clock time: the rendered tables are byte-identical for
// every worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mdworm"
)

// benchReport is the schema of the -bench-out JSON file (BENCH_sweep.json).
type benchReport struct {
	Quick          bool     `json:"quick"`
	Seed           uint64   `json:"seed"`
	Experiments    []string `json:"experiments"`
	Workers        int      `json:"workers"`
	Points         int      `json:"points"`
	SimulatedCycle int64    `json:"simulated_cycles"`
	WallSeconds    float64  `json:"wall_seconds"`
	PointsPerSec   float64  `json:"points_per_sec"`
	CyclesPerSec   float64  `json:"cycles_per_sec"`
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids, or all|paper|ablation")
		quick    = flag.Bool("quick", false, "shrink windows and point counts")
		format   = flag.String("format", "text", "output format: text, csv, or plot")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "concurrent sweep points (0 = GOMAXPROCS)")
		benchOut = flag.String("bench-out", "", "write batch timing stats (points/sec, cycles/sec) to this JSON file")
		verbose  = flag.Bool("v", false, "per-point progress on stderr")
	)
	flag.Parse()

	opts := mdworm.ExperimentOptions{Quick: *quick, Seed: *seed, Workers: *workers}
	if *verbose {
		opts.Progress = os.Stderr
	}

	ids, err := expand(*expFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tables, stats, err := mdworm.RunExperiments(ids, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdwbench: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tables {
		switch *format {
		case "text":
			t.Format(os.Stdout)
			fmt.Println()
		case "csv":
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mdwbench:", err)
				os.Exit(1)
			}
			fmt.Println()
		case "plot":
			t.Plot(os.Stdout)
			fmt.Println()
		default:
			fmt.Fprintf(os.Stderr, "mdwbench: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
	if *benchOut != "" {
		rep := benchReport{
			Quick:          *quick,
			Seed:           *seed,
			Experiments:    ids,
			Workers:        stats.Workers,
			Points:         stats.Points,
			SimulatedCycle: stats.Cycles,
			WallSeconds:    stats.Wall.Seconds(),
			PointsPerSec:   stats.PointsPerSec(),
			CyclesPerSec:   stats.CyclesPerSec(),
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdwbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mdwbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mdwbench: %d points, %.1fs wall, %.2f points/s, %.3g cycles/s (workers=%d) -> %s\n",
			stats.Points, stats.Wall.Seconds(), stats.PointsPerSec(), stats.CyclesPerSec(), stats.Workers, *benchOut)
	}
}

func expand(spec string) ([]string, error) {
	all := mdworm.ExperimentIDs()
	switch spec {
	case "all":
		return all, nil
	case "paper", "ablation":
		var out []string
		for _, id := range all {
			if (spec == "paper") == strings.HasPrefix(id, "e") {
				out = append(out, id)
			}
		}
		return out, nil
	}
	var out []string
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id == "" {
			continue
		}
		found := false
		for _, known := range all {
			if id == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("mdwbench: unknown experiment %q (have %v)", id, all)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mdwbench: no experiments selected")
	}
	return out, nil
}
