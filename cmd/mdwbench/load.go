package main

// The -load soak harness: an open-loop load generator against a running mdwd
// daemon (or cluster coordinator). Each tenant gets an independent Poisson
// arrival process at its share of the target rate; request latency is
// measured from the *scheduled* arrival instant, so local queueing behind the
// per-tenant client cap counts against the daemon the way a real user's wait
// would. Per-tenant percentiles and error counts append to a JSON history
// file (BENCH_load.json), the same trajectory-tracking shape as
// BENCH_sweep.json — load behavior becomes a regression surface, like
// scripts/mdwd_chaos.sh made crash safety one.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// loadTenant is one simulated client population: a display name and the API
// key it authenticates with ("" = no Authorization header).
type loadTenant struct {
	name string
	key  string
}

// parseLoadKeys parses -load-keys: "name=key,name=key". Empty input is one
// anonymous tenant (for daemons running without -tenants).
func parseLoadKeys(spec string) ([]loadTenant, error) {
	if strings.TrimSpace(spec) == "" {
		return []loadTenant{{name: "anonymous"}}, nil
	}
	var out []loadTenant
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, key, ok := strings.Cut(part, "=")
		name, key = strings.TrimSpace(name), strings.TrimSpace(key)
		if !ok || name == "" || key == "" {
			return nil, fmt.Errorf("mdwbench: -load-keys entry %q is not name=key", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("mdwbench: -load-keys repeats tenant %q", name)
		}
		seen[name] = true
		out = append(out, loadTenant{name: name, key: key})
	}
	if len(out) == 0 {
		return nil, errors.New("mdwbench: -load-keys names no tenants")
	}
	return out, nil
}

// loadOpts parameterizes one soak run.
type loadOpts struct {
	Base     string // daemon base URL
	Duration time.Duration
	Rate     float64 // aggregate target arrivals/sec, split evenly across tenants
	Clients  int     // max in-flight requests per tenant
	Tenants  []loadTenant
	Seed     uint64
	Verbose  bool
}

// tenantLoadStats accumulates one tenant's soak outcome.
type tenantLoadStats struct {
	mu        sync.Mutex
	latencies []time.Duration // completed (2xx) requests only
	ok        int
	throttled int // 429 + 503: backpressure, not failure
	clientErr int // other 4xx
	serverErr int // 5xx except 503
	transport int // connection/timeout errors
}

// loadTenantReport is one tenant's row in the published report.
type loadTenantReport struct {
	Tenant          string  `json:"tenant"`
	Requests        int     `json:"requests"`
	OK              int     `json:"ok"`
	Throttled       int     `json:"throttled"`
	ClientErrors    int     `json:"client_errors"`
	ServerErrors    int     `json:"server_errors"`
	TransportErrors int     `json:"transport_errors"`
	AchievedPerSec  float64 `json:"achieved_ok_per_sec"`
	P50Ms           float64 `json:"p50_ms"`
	P95Ms           float64 `json:"p95_ms"`
	P99Ms           float64 `json:"p99_ms"`
	MaxMs           float64 `json:"max_ms"`
}

// loadReport is one BENCH_load.json history entry.
type loadReport struct {
	Timestamp     string             `json:"timestamp"`
	GoVersion     string             `json:"go_version,omitempty"`
	Daemon        string             `json:"daemon"`
	Seconds       float64            `json:"duration_seconds"`
	TargetPerSec  float64            `json:"target_rate_per_sec"`
	ClientsPerTen int                `json:"clients_per_tenant"`
	Seed          uint64             `json:"seed"`
	Tenants       []loadTenantReport `json:"tenants"`
}

// runLoad executes the soak: one Poisson generator plus a bounded worker set
// per tenant, all against o.Base, for o.Duration. It returns the aggregated
// report; transport-level context cancellation (Ctrl-C) surfaces as
// context.Canceled.
func runLoad(ctx context.Context, o loadOpts, stderr io.Writer) (*loadReport, error) {
	if o.Rate <= 0 {
		return nil, errors.New("mdwbench: -load-rate must be > 0")
	}
	if o.Clients < 1 {
		o.Clients = 1
	}
	base := strings.TrimRight(o.Base, "/")
	client := &http.Client{Timeout: 60 * time.Second}
	perTenantRate := o.Rate / float64(len(o.Tenants))

	// Unique seeds per request force cache misses: a soak must measure the
	// scheduler and the simulator, not the result cache.
	var seq atomic.Int64

	stats := make([]*tenantLoadStats, len(o.Tenants))
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(o.Duration)

	for i, tn := range o.Tenants {
		st := &tenantLoadStats{}
		stats[i] = st
		// The arrival queue is the open loop: the generator deposits each
		// arrival at its scheduled instant regardless of completions; workers
		// drain as fast as the daemon lets them. Capacity bounds memory, not
		// the arrival process (a 16k backlog at soak rates means the daemon
		// stopped answering entirely).
		arrivals := make(chan time.Time, 16384)

		wg.Add(1)
		go func(idx int, tn loadTenant) {
			defer wg.Done()
			defer close(arrivals)
			rng := rand.New(rand.NewSource(int64(o.Seed) + int64(idx)*7919))
			next := start
			for {
				// Exponential inter-arrival times make the process Poisson.
				next = next.Add(time.Duration(rng.ExpFloat64() / perTenantRate * float64(time.Second)))
				if next.After(deadline) {
					return
				}
				select {
				case <-time.After(time.Until(next)):
				case <-ctx.Done():
					return
				}
				select {
				case arrivals <- next:
				default:
					// Queue full: record as transport failure rather than
					// blocking the arrival clock.
					st.mu.Lock()
					st.transport++
					st.mu.Unlock()
				}
			}
		}(i, tn)

		for w := 0; w < o.Clients; w++ {
			wg.Add(1)
			go func(tn loadTenant) {
				defer wg.Done()
				for sched := range arrivals {
					doLoadRequest(ctx, client, base, tn, seq.Add(1), sched, st)
				}
			}(tn)
		}
	}
	wg.Wait()
	if ctx.Err() != nil {
		return nil, context.Canceled
	}
	elapsed := time.Since(start)

	rep := &loadReport{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		Daemon:        base,
		Seconds:       elapsed.Seconds(),
		TargetPerSec:  o.Rate,
		ClientsPerTen: o.Clients,
		Seed:          o.Seed,
	}
	for i, tn := range o.Tenants {
		st := stats[i]
		st.mu.Lock()
		row := loadTenantReport{
			Tenant:          tn.name,
			Requests:        st.ok + st.throttled + st.clientErr + st.serverErr + st.transport,
			OK:              st.ok,
			Throttled:       st.throttled,
			ClientErrors:    st.clientErr,
			ServerErrors:    st.serverErr,
			TransportErrors: st.transport,
			P50Ms:           percentileMs(st.latencies, 0.50),
			P95Ms:           percentileMs(st.latencies, 0.95),
			P99Ms:           percentileMs(st.latencies, 0.99),
			MaxMs:           percentileMs(st.latencies, 1.00),
		}
		st.mu.Unlock()
		if sec := elapsed.Seconds(); sec > 0 {
			row.AchievedPerSec = float64(row.OK) / sec
		}
		rep.Tenants = append(rep.Tenants, row)
	}
	return rep, nil
}

// doLoadRequest issues one /v1/run with a unique-seed tiny config and files
// the outcome. Latency runs from the scheduled arrival, not the send.
func doLoadRequest(ctx context.Context, client *http.Client, base string, tn loadTenant, n int64, sched time.Time, st *tenantLoadStats) {
	// A small but real simulation: the same shape the service tests use, so
	// one request costs milliseconds and the soak exercises scheduling, not
	// one long run.
	body := fmt.Sprintf(`{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.001,"seed":%d}}`, n)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/run", strings.NewReader(body))
	if err != nil {
		st.mu.Lock()
		st.transport++
		st.mu.Unlock()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if tn.key != "" {
		req.Header.Set("Authorization", "Bearer "+tn.key)
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return // shutdown, not a daemon failure
		}
		st.mu.Lock()
		st.transport++
		st.mu.Unlock()
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	lat := time.Since(sched)

	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		st.ok++
		st.latencies = append(st.latencies, lat)
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		st.throttled++
	case resp.StatusCode >= 500:
		st.serverErr++
	default:
		st.clientErr++
	}
}

// percentileMs returns the q-quantile (0 < q <= 1) of the latencies in
// milliseconds (0 with no samples). Nearest-rank on a sorted copy.
func percentileMs(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// formatLoadReport renders the per-tenant summary table.
func formatLoadReport(w io.Writer, rep *loadReport) {
	fmt.Fprintf(w, "load soak: %s for %.1fs at %.1f req/s target (%d clients/tenant)\n",
		rep.Daemon, rep.Seconds, rep.TargetPerSec, rep.ClientsPerTen)
	fmt.Fprintf(w, "%-14s %8s %6s %9s %6s %6s %6s %9s %9s %9s\n",
		"tenant", "requests", "ok", "throttled", "4xx", "5xx", "net", "p50(ms)", "p95(ms)", "p99(ms)")
	for _, t := range rep.Tenants {
		fmt.Fprintf(w, "%-14s %8d %6d %9d %6d %6d %6d %9.1f %9.1f %9.1f\n",
			t.Tenant, t.Requests, t.OK, t.Throttled, t.ClientErrors, t.ServerErrors,
			t.TransportErrors, t.P50Ms, t.P95Ms, t.P99Ms)
	}
}

// checkLoadGates applies the regression gates: any 5xx/transport error when
// fail5xx is set, and any tenant p99 above maxP99 when one is set. A tenant
// with zero completed requests trips the p99 gate too — "no data" must not
// read as "fast".
func checkLoadGates(rep *loadReport, fail5xx bool, maxP99 time.Duration) error {
	for _, t := range rep.Tenants {
		if fail5xx && (t.ServerErrors > 0 || t.TransportErrors > 0) {
			return fmt.Errorf("mdwbench: load gate: tenant %s saw %d server errors and %d transport errors",
				t.Tenant, t.ServerErrors, t.TransportErrors)
		}
		if maxP99 > 0 {
			if t.OK == 0 {
				return fmt.Errorf("mdwbench: load gate: tenant %s completed no requests", t.Tenant)
			}
			if p99 := time.Duration(t.P99Ms * float64(time.Millisecond)); p99 > maxP99 {
				return fmt.Errorf("mdwbench: load gate: tenant %s p99 %.1fms exceeds %s",
					t.Tenant, t.P99Ms, maxP99)
			}
		}
	}
	return nil
}

// appendLoadHistory appends rep to the JSON array history at path (created
// if absent), mirroring appendBenchHistory's newest-last trajectory format.
// Returns the number of recorded runs.
func appendLoadHistory(path string, rep *loadReport) (int, error) {
	var hist []json.RawMessage
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return 0, err
	default:
		if trimmed := strings.TrimSpace(string(data)); trimmed != "" {
			if err := json.Unmarshal(data, &hist); err != nil {
				return 0, fmt.Errorf("%s: existing history unreadable: %w", path, err)
			}
		}
	}
	entry, err := json.Marshal(rep)
	if err != nil {
		return 0, err
	}
	hist = append(hist, entry)
	out, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return 0, err
	}
	return len(hist), nil
}
