package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mdworm/internal/service"
)

func TestRetryWaitCapsHint(t *testing.T) {
	cases := []struct {
		ra      string
		backoff time.Duration
		want    time.Duration
	}{
		{"", 2 * time.Second, 2 * time.Second},
		{"3", time.Second, 3 * time.Second},
		{"3600", time.Second, time.Minute}, // hostile hint capped
		{"", 5 * time.Minute, time.Minute}, // runaway backoff capped
		{"garbage", 2 * time.Second, 2 * time.Second},
		{"-5", 2 * time.Second, 2 * time.Second},
	}
	for _, c := range cases {
		if got := retryWait(c.ra, c.backoff); got != c.want {
			t.Errorf("retryWait(%q, %s) = %s, want %s", c.ra, c.backoff, got, c.want)
		}
	}
}

// flakyDaemon fakes an mdwd /v1/experiment endpoint that cuts the stream
// after two points on the first connection, then serves the remainder on a
// resumed connection — recording every request so the test can verify the
// client's cursor.
type flakyDaemon struct {
	mu       sync.Mutex
	requests []service.ExperimentRequest
}

const flakyToken = "00112233445566778899aabbccddeeff"

func (d *flakyDaemon) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req service.ExperimentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d.mu.Lock()
	d.requests = append(d.requests, req)
	n := len(d.requests)
	d.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fl := w.(http.Flusher)
	emit := func(ev service.StreamEvent) {
		enc.Encode(ev)
		fl.Flush()
	}
	point := func(seq int64) service.StreamEvent {
		return service.StreamEvent{Type: "point", Seq: seq, Tag: fmt.Sprintf("p%d", seq), X: float64(seq)}
	}
	emit(service.StreamEvent{Type: "start", ID: req.ID, Stream: flakyToken, Job: "j1"})
	if n == 1 {
		// First connection: two points, then the connection dies mid-stream.
		emit(point(1))
		emit(point(2))
		panic(http.ErrAbortHandler)
	}
	// Resumed connection: only what the cursor asks for.
	for seq := req.AfterSeq + 1; seq <= 4; seq++ {
		emit(point(seq))
	}
	emit(service.StreamEvent{Type: "table", ID: req.ID, Text: "TABLE"})
	emit(service.StreamEvent{Type: "done", ID: req.ID, Points: 4, Cycles: 100, WallSeconds: 0.1})
}

// TestStreamResumeNoDuplicates: a stream cut mid-sweep reconnects with the
// stream token and the last delivered seq, and the union of both connections
// delivers every point exactly once.
func TestStreamResumeNoDuplicates(t *testing.T) {
	d := &flakyDaemon{}
	ts := httptest.NewServer(d)
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	o := remoteOpts{Retries: 3, Verbose: true}
	client := &http.Client{}
	points, cycles, _, err := runExperiment(context.Background(), client, ts.URL, "e1", o, &stdout, &stderr)
	if err != nil {
		t.Fatalf("runExperiment: %v\nstderr: %s", err, stderr.String())
	}
	if points != 4 || cycles != 100 {
		t.Fatalf("done stats: points=%d cycles=%d, want 4/100", points, cycles)
	}

	d.mu.Lock()
	reqs := append([]service.ExperimentRequest(nil), d.requests...)
	d.mu.Unlock()
	if len(reqs) != 2 {
		t.Fatalf("daemon saw %d requests, want 2 (initial + resume)", len(reqs))
	}
	if reqs[0].Stream != "" || reqs[0].AfterSeq != 0 {
		t.Fatalf("first request carried a cursor: %+v", reqs[0])
	}
	if reqs[1].Stream != flakyToken {
		t.Fatalf("resume request stream = %q, want the token from the start event", reqs[1].Stream)
	}
	if reqs[1].AfterSeq != 2 {
		t.Fatalf("resume request after_seq = %d, want 2 (last delivered point)", reqs[1].AfterSeq)
	}

	// Every point was printed to -v stderr exactly once.
	for seq := 1; seq <= 4; seq++ {
		tag := fmt.Sprintf("p%d:", seq)
		if got := strings.Count(stderr.String(), tag); got != 1 {
			t.Errorf("point p%d delivered %d times, want exactly once\nstderr: %s", seq, got, stderr.String())
		}
	}
	if !strings.Contains(stdout.String(), "TABLE") {
		t.Errorf("tables missing from stdout: %q", stdout.String())
	}
}

// TestStreamResumeNoDuplicateTables: tables carry no seq cursor and are
// re-streamed in full on a resume; a stream cut after some tables were
// already printed must not print them again on the reconnect.
func TestStreamResumeNoDuplicateTables(t *testing.T) {
	var mu sync.Mutex
	conns := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req service.ExperimentRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		conns++
		conn := conns
		mu.Unlock()
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		fl := w.(http.Flusher)
		emit := func(ev service.StreamEvent) {
			enc.Encode(ev)
			fl.Flush()
		}
		emit(service.StreamEvent{Type: "start", ID: req.ID, Stream: flakyToken, Job: "j1"})
		for seq := req.AfterSeq + 1; seq <= 2; seq++ {
			emit(service.StreamEvent{Type: "point", Seq: seq, Tag: fmt.Sprintf("p%d", seq)})
		}
		emit(service.StreamEvent{Type: "table", ID: req.ID, Text: "TABLE-A"})
		if conn == 1 {
			// Cut between the tables and the done event: the client has
			// printed TABLE-A but must not trust the stream as complete.
			panic(http.ErrAbortHandler)
		}
		emit(service.StreamEvent{Type: "table", ID: req.ID, Text: "TABLE-B"})
		emit(service.StreamEvent{Type: "done", ID: req.ID, Points: 2, Cycles: 50, WallSeconds: 0.1})
	}))
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	points, _, _, err := runExperiment(context.Background(), &http.Client{}, ts.URL, "e1",
		remoteOpts{Retries: 3}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("runExperiment: %v\nstderr: %s", err, stderr.String())
	}
	if points != 2 {
		t.Fatalf("done stats: points=%d, want 2", points)
	}
	for _, table := range []string{"TABLE-A", "TABLE-B"} {
		if got := strings.Count(stdout.String(), table); got != 1 {
			t.Errorf("%s printed %d times, want exactly once\nstdout: %s", table, got, stdout.String())
		}
	}
}

// TestStreamResumeHonorsContext: cancellation during the reconnect backoff
// returns promptly instead of sleeping out the window.
func TestStreamResumeHonorsContext(t *testing.T) {
	// Every connection dies after the start event, so the client loops.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		json.NewEncoder(w).Encode(service.StreamEvent{Type: "start", ID: "e1", Stream: flakyToken})
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	var stdout, stderr bytes.Buffer
	start := time.Now()
	_, _, _, err := runExperiment(ctx, &http.Client{}, ts.URL, "e1", remoteOpts{Retries: 10}, &stdout, &stderr)
	if err == nil {
		t.Fatal("canceled resume loop returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s to take effect", elapsed)
	}
}

// TestStreamNonRetryableErrorStops: a terminal error event (retryable=false)
// fails immediately without burning the resume budget.
func TestStreamNonRetryableErrorStops(t *testing.T) {
	var hits int
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		enc.Encode(service.StreamEvent{Type: "start", ID: "e1", Stream: flakyToken})
		enc.Encode(service.StreamEvent{Type: "error", ID: "e1", Err: "bad config", Retryable: false})
	}))
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	_, _, _, err := runExperiment(context.Background(), &http.Client{}, ts.URL, "e1", remoteOpts{Retries: 5}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "bad config") {
		t.Fatalf("err = %v, want the daemon's terminal error", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 1 {
		t.Fatalf("daemon hit %d times, want 1 (no retry on a non-retryable error)", hits)
	}
}
