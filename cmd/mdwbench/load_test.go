package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseLoadKeys(t *testing.T) {
	tens, err := parseLoadKeys("")
	if err != nil || len(tens) != 1 || tens[0].name != "anonymous" || tens[0].key != "" {
		t.Fatalf("empty spec = (%+v, %v), want one anonymous tenant", tens, err)
	}
	tens, err = parseLoadKeys("alpha=key-a, beta=key-b")
	if err != nil {
		t.Fatal(err)
	}
	if len(tens) != 2 || tens[0] != (loadTenant{name: "alpha", key: "key-a"}) ||
		tens[1] != (loadTenant{name: "beta", key: "key-b"}) {
		t.Fatalf("parsed %+v", tens)
	}
	for _, bad := range []string{"alpha", "=key", "alpha=", "a=k,a=j", ","} {
		if tens, err := parseLoadKeys(bad); err == nil {
			t.Errorf("parseLoadKeys(%q) = %+v, want error", bad, tens)
		}
	}
}

func TestPercentileMs(t *testing.T) {
	if got := percentileMs(nil, 0.99); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// 1..100 ms: nearest-rank q-quantile of n=100 is simply q*100 ms.
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(100-i) * time.Millisecond // reverse order: must sort
	}
	for _, c := range []struct{ q, want float64 }{{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.00, 100}} {
		if got := percentileMs(lats, c.q); got != c.want {
			t.Errorf("p%v = %v, want %v", c.q*100, got, c.want)
		}
	}
	if got := percentileMs([]time.Duration{7 * time.Millisecond}, 0.99); got != 7 {
		t.Errorf("single-sample p99 = %v, want 7", got)
	}
}

func TestLoadHistoryAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	rep := &loadReport{Daemon: "http://x", Tenants: []loadTenantReport{{Tenant: "a", OK: 1}}}
	if n, err := appendLoadHistory(path, rep); err != nil || n != 1 {
		t.Fatalf("first append = (%d, %v)", n, err)
	}
	if n, err := appendLoadHistory(path, rep); err != nil || n != 2 {
		t.Fatalf("second append = (%d, %v)", n, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), `"daemon"`); got != 2 {
		t.Fatalf("history holds %d entries, want 2:\n%s", got, data)
	}
	// Garbage history must error out, not be clobbered.
	bad := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := appendLoadHistory(bad, rep); err == nil {
		t.Fatal("append over garbage history succeeded")
	}
}

func TestCheckLoadGates(t *testing.T) {
	clean := &loadReport{Tenants: []loadTenantReport{{Tenant: "a", OK: 10, P99Ms: 50}}}
	if err := checkLoadGates(clean, true, 100*time.Millisecond); err != nil {
		t.Fatalf("clean report tripped a gate: %v", err)
	}
	// Throttling is backpressure, not failure.
	throttled := &loadReport{Tenants: []loadTenantReport{{Tenant: "a", OK: 10, Throttled: 50, P99Ms: 50}}}
	if err := checkLoadGates(throttled, true, 100*time.Millisecond); err != nil {
		t.Fatalf("throttled-only report tripped a gate: %v", err)
	}
	fiveXX := &loadReport{Tenants: []loadTenantReport{{Tenant: "a", OK: 10, ServerErrors: 1}}}
	if err := checkLoadGates(fiveXX, true, 0); err == nil {
		t.Fatal("server errors passed the 5xx gate")
	}
	if err := checkLoadGates(fiveXX, false, 0); err != nil {
		t.Fatalf("5xx gate fired while disabled: %v", err)
	}
	slow := &loadReport{Tenants: []loadTenantReport{{Tenant: "a", OK: 10, P99Ms: 500}}}
	if err := checkLoadGates(slow, true, 100*time.Millisecond); err == nil {
		t.Fatal("slow p99 passed the latency gate")
	}
	// Zero completions must not read as zero latency.
	silent := &loadReport{Tenants: []loadTenantReport{{Tenant: "a", OK: 0}}}
	if err := checkLoadGates(silent, true, 100*time.Millisecond); err == nil {
		t.Fatal("zero-completion tenant passed the latency gate")
	}
}

// TestRunLoadAgainstStub soaks a stub daemon for a fraction of a second: the
// keyed tenant is answered 200, the other 429, and the report must attribute
// outcomes (and Bearer keys) to the right tenant.
func TestRunLoadAgainstStub(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/run" {
			http.NotFound(w, r)
			return
		}
		switch r.Header.Get("Authorization") {
		case "Bearer key-a":
			w.Write([]byte(`{"ok":true}`))
		case "Bearer key-b":
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			w.WriteHeader(http.StatusUnauthorized)
		}
	}))
	defer srv.Close()

	rep, err := runLoad(context.Background(), loadOpts{
		Base:     srv.URL,
		Duration: 400 * time.Millisecond,
		Rate:     200, // 100/s per tenant: plenty of arrivals in 400ms
		Clients:  4,
		Tenants:  []loadTenant{{name: "a", key: "key-a"}, {name: "b", key: "key-b"}},
		Seed:     1,
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("report covers %d tenants, want 2", len(rep.Tenants))
	}
	a, b := rep.Tenants[0], rep.Tenants[1]
	if a.Tenant != "a" || b.Tenant != "b" {
		t.Fatalf("tenant order %q, %q", a.Tenant, b.Tenant)
	}
	if a.OK == 0 || a.Throttled != 0 || a.ServerErrors != 0 {
		t.Fatalf("keyed tenant outcome %+v, want only 200s", a)
	}
	if a.P99Ms <= 0 || a.MaxMs < a.P99Ms || a.P50Ms > a.P99Ms {
		t.Fatalf("implausible percentiles: %+v", a)
	}
	if b.Throttled == 0 || b.OK != 0 {
		t.Fatalf("throttled tenant outcome %+v, want only 429s", b)
	}
	if err := checkLoadGates(rep, true, 0); err != nil {
		t.Fatalf("stub soak tripped the 5xx gate: %v", err)
	}
}

// TestRunLoadCanceled: Ctrl-C mid-soak surfaces as context.Canceled, not a
// partial report.
func TestRunLoadCanceled(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	rep, err := runLoad(ctx, loadOpts{
		Base:     srv.URL,
		Duration: 30 * time.Second,
		Rate:     50,
		Clients:  2,
		Tenants:  []loadTenant{{name: "anonymous"}},
		Seed:     1,
	}, os.Stderr)
	if err != context.Canceled || rep != nil {
		t.Fatalf("canceled soak = (%+v, %v), want (nil, context.Canceled)", rep, err)
	}
}

func TestRunLoadRejectsBadRate(t *testing.T) {
	if _, err := runLoad(context.Background(), loadOpts{Base: "http://x", Rate: 0,
		Tenants: []loadTenant{{name: "anonymous"}}}, os.Stderr); err == nil {
		t.Fatal("zero rate accepted")
	}
}
