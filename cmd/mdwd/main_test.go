package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestDaemonLifecycle boots the daemon on a free port, exercises a miss/hit
// pair over real HTTP, then delivers SIGTERM and checks the graceful drain
// exits 0 — the in-process version of the CI smoke script.
func TestDaemonLifecycle(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain-timeout", "10s"},
			&stdout, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-exit:
		t.Fatalf("daemon exited early: %d\n%s%s", code, stdout.String(), stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.001}}`
	var first []byte
	for i, want := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: %d %v %s", i, resp.StatusCode, err, b)
		}
		if got := resp.Header.Get("X-Mdwd-Cache"); got != want {
			t.Fatalf("run %d: cache %q, want %q", i, got, want)
		}
		if i == 0 {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Fatal("cache hit not byte-identical")
		}
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d\n%s%s", code, stdout.String(), stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(stdout.String(), "drained cleanly") {
		t.Fatalf("drain not reported:\n%s", stdout.String())
	}
}

// TestFlagErrors: bad flags fail with exit code 2 before binding a socket.
func TestFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "bogus") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestBindError: an unbindable address is a startup failure, not a hang.
func TestBindError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:99999"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stderr.String())
	}
}

// TestCacheDirFlag: results persist across daemon restarts via -cache-dir.
func TestCacheDirFlag(t *testing.T) {
	dir := t.TempDir()
	body := `{"config":{"stages":2,"warmup_cycles":100,"measure_cycles":400,"drain_cycles":50000,"op_rate":0.001,"seed":5}}`

	boot := func() (string, chan int, *bytes.Buffer) {
		var out bytes.Buffer
		ready := make(chan string, 1)
		exit := make(chan int, 1)
		go func() {
			exit <- run([]string{"-addr", "127.0.0.1:0", "-cache-dir", dir}, &out, &out, ready)
		}()
		select {
		case addr := <-ready:
			return "http://" + addr, exit, &out
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon never ready:\n%s", out.String())
			return "", nil, nil
		}
	}
	stop := func(exit chan int, out *bytes.Buffer) {
		syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		select {
		case code := <-exit:
			if code != 0 {
				t.Fatalf("exit %d\n%s", code, out.String())
			}
		case <-time.After(15 * time.Second):
			t.Fatal("no exit after SIGTERM")
		}
	}

	base, exit, out := boot()
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d", resp.StatusCode)
	}
	stop(exit, out)

	base, exit, out = boot()
	resp, err = http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Mdwd-Cache"); got != "hit" {
		t.Fatalf("after restart: cache %q, want hit (%s)", got, fmt.Sprint(resp.StatusCode))
	}
	stop(exit, out)
}

// syncBuffer is a bytes.Buffer safe to read while the daemon's goroutines
// (the SIGHUP reload loop) are still writing log lines to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTenantsSIGHUP: SIGHUP re-reads the -tenants file in place — new keys
// authenticate, removed keys stop, and an invalid rewrite is rejected with a
// logged error while the previous table stays live.
func TestTenantsSIGHUP(t *testing.T) {
	dir := t.TempDir()
	tf := dir + "/tenants"
	if err := os.WriteFile(tf, []byte("key-old alpha 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out syncBuffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-tenants", tf, "-drain-timeout", "10s"},
			&out, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-exit:
		t.Fatalf("daemon exited early: %d\n%s", code, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	get := func(key string) int {
		req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("key-old"); got != http.StatusOK {
		t.Fatalf("key-old before reload: %d", got)
	}

	// Rewrite and reload: key-new replaces key-old.
	if err := os.WriteFile(tf, []byte("key-new alpha 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for get("key-new") != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatalf("key-new never authenticated after SIGHUP:\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := get("key-old"); got != http.StatusUnauthorized {
		t.Fatalf("removed key-old after reload: %d", got)
	}

	// An invalid rewrite is rejected; the live table is untouched.
	if err := os.WriteFile(tf, []byte("not a valid line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "tenants reload rejected") {
		if time.Now().After(deadline) {
			t.Fatalf("invalid reload never logged:\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := get("key-new"); got != http.StatusOK {
		t.Fatalf("key-new after rejected reload: %d", got)
	}

	syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit %d\n%s", code, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no exit after SIGTERM")
	}
}
