// Command mdwd is the simulation-as-a-service daemon: a long-running HTTP
// server over the mdworm simulator and experiment suite, with a bounded
// worker pool and a content-addressed result cache (deterministic runs make
// results perfectly cacheable — an identical config is served from cache,
// byte-identical to the original computation).
//
// Start it, then drive it with curl or mdwbench -daemon:
//
//	mdwd -addr :8080 -cache-dir /var/cache/mdwd &
//	curl -s localhost:8080/v1/run -d '{"config":{"arch":"cb","load":0.2}}'
//	mdwbench -daemon http://localhost:8080 -exp e1 -quick
//
// Endpoints: POST /v1/run, POST /v1/experiment (streamed JSON lines),
// GET /v1/experiments, GET /v1/jobs, GET /v1/jobs/{id}, GET /healthz,
// GET /metrics. See the README "Run as a service" section for the full
// reference.
//
// SIGINT/SIGTERM drain gracefully: new jobs are rejected, running jobs
// finish (up to -drain-timeout), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mdworm/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main with its environment made explicit; ready (when non-nil)
// receives the listen address once the server is up (tests use it).
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("mdwd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation jobs")
		backlog      = fs.Int("backlog", 0, "queued-job bound (0 = 4*workers)")
		cacheEntries = fs.Int("cache-entries", 1024, "in-memory result cache entries")
		cacheDir     = fs.String("cache-dir", "", "persist results in this directory (survives restarts)")
		maxCycles    = fs.Int64("max-cycles", 5_000_000, "per-request simulated-cycle ceiling (0 = unlimited)")
		runTimeout   = fs.Duration("run-timeout", 2*time.Minute, "how long /v1/run waits before handing the job to the background")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		ckptEvery    = fs.Int64("checkpoint-every", 0, "checkpoint running jobs every N simulated cycles so a restart resumes them (needs -cache-dir; 0 = off)")
		jobDeadline  = fs.Duration("job-deadline", 0, "fail jobs that waited queued longer than this instead of running them (0 = no deadline)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *ckptEvery > 0 && *cacheDir == "" {
		fmt.Fprintln(stderr, "mdwd: -checkpoint-every needs -cache-dir (checkpoints and the job journal live there)")
		return 2
	}
	srv, err := service.New(service.Config{
		Workers:         *workers,
		Backlog:         *backlog,
		CacheEntries:    *cacheEntries,
		CacheDir:        *cacheDir,
		MaxCycles:       *maxCycles,
		RunTimeout:      *runTimeout,
		CheckpointEvery: *ckptEvery,
		JobDeadline:     *jobDeadline,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mdwd:", err)
		return 1
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ln, err := newListener(hs)
	if err != nil {
		fmt.Fprintln(stderr, "mdwd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "mdwd: listening on %s (workers=%d, cache=%d entries, dir=%q)\n",
		ln.Addr(), *workers, *cacheEntries, *cacheDir)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "mdwd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: refuse new jobs immediately, then let in-flight
	// requests (and the jobs they wait on) finish within the grace period.
	fmt.Fprintln(stdout, "mdwd: draining (new jobs rejected)")
	srv.BeginDrain()
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "mdwd: shutdown:", err)
	}
	if srv.Drain(*drainTimeout) {
		fmt.Fprintln(stdout, "mdwd: drained cleanly")
	} else {
		fmt.Fprintln(stderr, "mdwd: drain deadline exceeded, abandoning remaining jobs")
	}
	return 0
}
