// Command mdwd is the simulation-as-a-service daemon: a long-running HTTP
// server over the mdworm simulator and experiment suite, with a bounded
// worker pool and a content-addressed result cache (deterministic runs make
// results perfectly cacheable — an identical config is served from cache,
// byte-identical to the original computation).
//
// Start it, then drive it with curl or mdwbench -daemon:
//
//	mdwd -addr :8080 -cache-dir /var/cache/mdwd &
//	curl -s localhost:8080/v1/run -d '{"config":{"arch":"cb","load":0.2}}'
//	mdwbench -daemon http://localhost:8080 -exp e1 -quick
//
// Endpoints: POST /v1/run, POST /v1/experiment (streamed JSON lines),
// GET /v1/experiments, GET /v1/jobs, GET /v1/jobs/{id}, GET /healthz,
// GET /metrics. See the README "Run as a service" section for the full
// reference.
//
// Cluster mode scales the same API across machines: `mdwd -coordinator
// -peers=http://w1:8080,http://w2:8080` serves /v1/run and /v1/experiment by
// sharding work over the peer worker daemons (consistent hashing on the
// config hash keeps each worker's cache hot on a disjoint key range), while
// plain worker daemons may also announce themselves to a coordinator with
// `-join http://coord:8080`. mdwbench -daemon works unchanged against either
// mode. See the README "Cluster mode" section.
//
// SIGINT/SIGTERM drain gracefully: new jobs are rejected, running jobs
// finish (up to -drain-timeout), and the process exits 0. SIGHUP re-reads
// the -tenants file in place: keys, weights, and quotas change without
// dropping queued jobs, and an invalid file is rejected with a logged error
// while the previous table stays live.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mdworm/internal/chaos"
	"mdworm/internal/cluster"
	"mdworm/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// daemon is the mode-independent surface run needs: both service.Server
// (single node) and cluster.Coordinator satisfy it.
type daemon interface {
	Handler() http.Handler
	BeginDrain()
	Drain(time.Duration) bool
}

// run is main with its environment made explicit; ready (when non-nil)
// receives the listen address once the server is up (tests use it).
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("mdwd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation jobs")
		backlog      = fs.Int("backlog", 0, "queued-job bound (0 = 4*workers)")
		cacheEntries = fs.Int("cache-entries", 1024, "in-memory result cache entries")
		cacheDir     = fs.String("cache-dir", "", "persist results in this directory (survives restarts)")
		maxCycles    = fs.Int64("max-cycles", 5_000_000, "per-request simulated-cycle ceiling (0 = unlimited)")
		runTimeout   = fs.Duration("run-timeout", 2*time.Minute, "how long /v1/run waits before handing the job to the background")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		ckptEvery    = fs.Int64("checkpoint-every", 0, "checkpoint running jobs every N simulated cycles so a restart resumes them (needs -cache-dir; 0 = off)")
		jobDeadline  = fs.Duration("job-deadline", 0, "fail jobs that waited queued longer than this instead of running them (0 = no deadline)")
		journalMax   = fs.Int64("journal-max-bytes", 0, "compact the job journal once it exceeds this size (0 = 8MiB, negative = only at restart)")
		tenantsFile  = fs.String("tenants", "", "multi-tenant mode: tenants file (\"<key> <name> <weight> [priority=N] [max-queued=N] [max-running=N]\" per line); requests must then send \"Authorization: Bearer <key>\"")
		workerKey    = fs.String("worker-key", "", "coordinator: API key presented to workers on shard dispatch (needed when the workers run with -tenants)")

		coordinator = fs.Bool("coordinator", false, "serve as a cluster coordinator sharding work across -peers instead of simulating locally")
		peers       = fs.String("peers", "", "comma-separated worker base URLs for -coordinator (more may join via /v1/cluster/join)")
		join        = fs.String("join", "", "coordinator base URL this worker announces itself to (repeating every -heartbeat)")
		advertise   = fs.String("advertise", "", "base URL the coordinator should dial this worker at (default http://127.0.0.1:<port>)")
		heartbeat   = fs.Duration("heartbeat", time.Second, "peer health-probe and join-announce period")
		hedgeAfter  = fs.Duration("hedge-after", 0, "coordinator: race one extra attempt for a shard still unresolved after this long (0 = off)")

		chaosSpec   = fs.String("chaos", "", `inject seeded network faults: semicolon-separated "kind@at[+dur]:target[*param]" events (kinds: latency, partition, drop, slow-close, corrupt; target: label, "a-b" pair, or "*")`)
		chaosSeed   = fs.Int64("chaos-seed", 1, "seed for chaos fault decisions and breaker jitter (same seed = same schedule)")
		chaosLabel  = fs.String("chaos-label", "", `this node's label in -chaos targets (default "coordinator" or "worker"; a coordinator labels its -peers "worker1".."workerN" in order)`)
		deadlineCPS = fs.Float64("deadline-cycles-per-sec", 0, "convert a client deadline_ms into a deterministic simulated-cycle budget at this rate (0 = deadlines only bound the wall-clock wait)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *ckptEvery > 0 && *cacheDir == "" {
		fmt.Fprintln(stderr, "mdwd: -checkpoint-every needs -cache-dir (checkpoints and the job journal live there)")
		return 2
	}
	if *coordinator && *join != "" {
		fmt.Fprintln(stderr, "mdwd: -coordinator and -join are mutually exclusive (a daemon is either the coordinator or a worker)")
		return 2
	}
	if *workerKey != "" && !*coordinator {
		fmt.Fprintln(stderr, "mdwd: -worker-key only applies to -coordinator (workers accept keys via -tenants)")
		return 2
	}

	var inj *chaos.Injector
	if *chaosSpec != "" {
		label := *chaosLabel
		if label == "" {
			if *coordinator {
				label = "coordinator"
			} else {
				label = "worker"
			}
		}
		in, err := chaos.NewFromSpec(*chaosSpec, *chaosSeed, label)
		if err != nil {
			fmt.Fprintln(stderr, "mdwd:", err)
			return 2
		}
		inj = in
	}

	var tenants *service.TenantSet
	if *tenantsFile != "" {
		ts, err := service.LoadTenants(*tenantsFile)
		if err != nil {
			fmt.Fprintln(stderr, "mdwd:", err)
			return 2
		}
		tenants = ts
	}

	var (
		srv  daemon
		mode string
	)
	if *coordinator {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
				peerList = append(peerList, p)
			}
		}
		// Under -chaos, the coordinator's outbound transport is the fault
		// surface: its -peers are labeled worker1..workerN in flag order, so
		// specs like "partition@1s+3s:coordinator-worker1" name real links.
		var transport http.RoundTripper
		if inj != nil {
			byHost := make(map[string]string, len(peerList))
			for i, p := range peerList {
				if u := strings.TrimPrefix(strings.TrimPrefix(p, "http://"), "https://"); u != "" {
					byHost[u] = fmt.Sprintf("worker%d", i+1)
				}
			}
			transport = inj.Transport(nil, func(r *http.Request) string {
				return byHost[r.URL.Host]
			})
		}
		coord, err := cluster.New(cluster.Config{
			Peers:           peerList,
			CacheDir:        *cacheDir,
			CacheEntries:    *cacheEntries,
			HedgeAfter:      *hedgeAfter,
			HeartbeatEvery:  *heartbeat,
			JournalMaxBytes: *journalMax,
			Tenants:         tenants,
			WorkerKey:       *workerKey,
			Transport:       transport,
			Seed:            *chaosSeed,
		})
		if err != nil {
			fmt.Fprintln(stderr, "mdwd:", err)
			return 1
		}
		defer coord.Close()
		srv = coord
		mode = fmt.Sprintf("coordinator, peers=%d", len(peerList))
	} else {
		s, err := service.New(service.Config{
			Workers:              *workers,
			Backlog:              *backlog,
			CacheEntries:         *cacheEntries,
			CacheDir:             *cacheDir,
			MaxCycles:            *maxCycles,
			RunTimeout:           *runTimeout,
			CheckpointEvery:      *ckptEvery,
			JobDeadline:          *jobDeadline,
			JournalMaxBytes:      *journalMax,
			Tenants:              tenants,
			DeadlineCyclesPerSec: *deadlineCPS,
		})
		if err != nil {
			fmt.Fprintln(stderr, "mdwd:", err)
			return 1
		}
		srv = s
		mode = fmt.Sprintf("workers=%d", *workers)
	}
	if tenants != nil {
		mode += fmt.Sprintf(", tenants=%d", len(tenants.Tenants()))
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ln, err := newListener(hs)
	if err != nil {
		fmt.Fprintln(stderr, "mdwd:", err)
		return 1
	}
	if inj != nil {
		if !*coordinator {
			// Workers take chaos at the accept side: every inbound conn is
			// subject to events targeting this node's label.
			ln = inj.Listener(ln)
		}
		fmt.Fprintf(stdout, "mdwd: chaos enabled (label=%s, seed=%d): %s\n",
			inj.Label(), *chaosSeed, *chaosSpec)
	}
	fmt.Fprintf(stdout, "mdwd: listening on %s (%s, cache=%d entries, dir=%q)\n",
		ln.Addr(), mode, *cacheEntries, *cacheDir)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *tenantsFile != "" {
		if rl, ok := srv.(tenantReloader); ok {
			hup := make(chan os.Signal, 1)
			signal.Notify(hup, syscall.SIGHUP)
			defer signal.Stop(hup)
			go hupLoop(ctx, hup, rl, *tenantsFile, stdout, stderr)
		} else {
			fmt.Fprintln(stderr, "mdwd: note: coordinator mode does not hot-reload -tenants on SIGHUP")
		}
	}

	if *join != "" {
		self := *advertise
		if self == "" {
			self = advertiseURL(ln.Addr())
		}
		go joinLoop(ctx, strings.TrimRight(*join, "/"), self, *heartbeat, stderr)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "mdwd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: refuse new jobs immediately, then let in-flight
	// requests (and the jobs they wait on) finish within the grace period.
	fmt.Fprintln(stdout, "mdwd: draining (new jobs rejected)")
	srv.BeginDrain()
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "mdwd: shutdown:", err)
	}
	if srv.Drain(*drainTimeout) {
		fmt.Fprintln(stdout, "mdwd: drained cleanly")
	} else {
		fmt.Fprintln(stderr, "mdwd: drain deadline exceeded, abandoning remaining jobs")
	}
	return 0
}

// tenantReloader is the daemon capability behind SIGHUP: service.Server
// implements it; the cluster coordinator (whose tenants gate dispatch, not
// queues) does not yet.
type tenantReloader interface {
	ReloadTenants(*service.TenantSet) error
}

// hupLoop re-reads the tenants file on every SIGHUP. A file that fails to
// parse (or validate) is rejected with a logged error and the previous table
// stays live — a bad edit must never lock every client out.
func hupLoop(ctx context.Context, hup <-chan os.Signal, rl tenantReloader, path string, stdout, stderr io.Writer) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-hup:
			ts, err := service.LoadTenants(path)
			if err != nil {
				fmt.Fprintf(stderr, "mdwd: tenants reload rejected, keeping previous table: %v\n", err)
				continue
			}
			if err := rl.ReloadTenants(ts); err != nil {
				fmt.Fprintf(stderr, "mdwd: tenants reload rejected: %v\n", err)
				continue
			}
			fmt.Fprintf(stdout, "mdwd: tenants reloaded from %s (%d tenants)\n", path, len(ts.Tenants()))
		}
	}
}

// advertiseURL derives a dialable base URL from the bound listen address: a
// wildcard host becomes the loopback (right for single-machine clusters and
// CI; multi-machine deployments pass -advertise explicitly).
func advertiseURL(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return "http://" + a.String()
	}
	ip := net.ParseIP(host)
	if host == "" || host == "::" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// joinLoop announces this worker to the coordinator immediately and then on
// every heartbeat — the join doubles as a liveness signal, and a restarted
// coordinator relearns its fleet within one period without configuration.
func joinLoop(ctx context.Context, coord, self string, every time.Duration, stderr io.Writer) {
	if every <= 0 {
		every = time.Second
	}
	client := &http.Client{Timeout: 5 * time.Second}
	body := fmt.Sprintf(`{"peer":%q}`, self)
	announced := false
	post := func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coord+"/v1/cluster/join", bytes.NewReader([]byte(body)))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && !announced {
			announced = true
			fmt.Fprintf(stderr, "mdwd: joined cluster at %s as %s\n", coord, self)
		}
	}
	post()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			post()
		}
	}
}
