package main

import (
	"net"
	"net/http"
)

// newListener binds the server's address; split out so run can report the
// resolved address (":0" in tests) before serving.
func newListener(hs *http.Server) (net.Listener, error) {
	addr := hs.Addr
	if addr == "" {
		addr = ":http"
	}
	return net.Listen("tcp", addr)
}
