// Command mdwtrace analyzes an ndjson timeline captured by mdwsim -timeline
// (or any obs.Capture stream): it reconstructs operation and message spans,
// attributes the last-arrival critical path of an operation to phases
// (host-send, forward, reserve-wait, replication, drain, transfer), and
// exports the timeline for other viewers.
//
// Examples:
//
//	mdwsim -timeline run.ndjson -measure 4000
//	mdwtrace run.ndjson                  # span table + slowest-op critical path
//	mdwtrace -op 17 run.ndjson           # critical path of a specific op
//	mdwtrace -perfetto run.json run.ndjson   # open run.json in ui.perfetto.dev
//	mdwtrace -csv occ.csv run.ndjson     # occupancy samples as CSV
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mdworm/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdwtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: mdwtrace [flags] TIMELINE\n\nTIMELINE is an ndjson file from mdwsim -timeline ('-' reads stdin).\n\nFlags:")
		fs.PrintDefaults()
	}
	var (
		spans    = fs.Int("spans", 10, "operation spans to list (slowest first; 0 = none)")
		opID     = fs.Uint64("op", 0, "attribute this op's critical path (0 = slowest completed op)")
		perfetto = fs.String("perfetto", "", "write a Perfetto/Chrome trace-event JSON file")
		csv      = fs.String("csv", "", "write occupancy samples as CSV")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	var in io.Reader = os.Stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(stderr, "mdwtrace:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	tr, err := obs.ReadTrace(in)
	if err != nil {
		fmt.Fprintln(stderr, "mdwtrace:", err)
		return 1
	}

	printHeader(stdout, tr)
	if *spans > 0 {
		printSpans(stdout, tr, *spans)
	}
	if code := printCriticalPath(stdout, stderr, tr, *opID); code != 0 {
		return code
	}
	if code := printCollectives(stdout, stderr, tr); code != 0 {
		return code
	}
	printPhaseSummary(stdout, tr)
	printOccupancy(stdout, tr)

	if *perfetto != "" {
		if err := writeFile(*perfetto, func(w io.Writer) error { return obs.WritePerfetto(w, tr) }); err != nil {
			fmt.Fprintln(stderr, "mdwtrace:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nperfetto trace written to %s (open in ui.perfetto.dev)\n", *perfetto)
	}
	if *csv != "" {
		if err := writeFile(*csv, func(w io.Writer) error { return obs.WriteCSV(w, tr) }); err != nil {
			fmt.Fprintln(stderr, "mdwtrace:", err)
			return 1
		}
		fmt.Fprintf(stdout, "occupancy samples written to %s\n", *csv)
	}
	return 0
}

func writeFile(name string, write func(io.Writer) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printHeader(w io.Writer, tr *obs.Trace) {
	m := tr.Meta
	fmt.Fprintf(w, "timeline: %d nodes, %s switches, %s multicast (route delay %d, link latency %d)\n",
		m.Nodes, m.Arch, m.Scheme, m.RouteDelay, m.LinkLatency)
	fmt.Fprintf(w, "captured: %d events, %d samples (every %d cycles), %d ops\n",
		len(tr.Events), len(tr.Samples), m.SampleEvery, len(tr.Ops()))
}

// printSpans lists the top-n operation spans, slowest completed first, then
// incomplete ones in start order.
func printSpans(w io.Writer, tr *obs.Trace, n int) {
	ops := tr.Ops()
	if len(ops) == 0 {
		fmt.Fprintln(w, "\nno operations in trace")
		return
	}
	sorted := append([]*obs.OpSpan(nil), ops...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Completed != sorted[j].Completed {
			return sorted[i].Completed
		}
		return sorted[i].Latency > sorted[j].Latency
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	fmt.Fprintf(w, "\nslowest %d of %d operations:\n", n, len(sorted))
	fmt.Fprintf(w, "%8s %6s %6s %6s %10s %10s %10s %s\n",
		"op", "src", "dests", "msgs", "start", "latency", "dropped", "scheme")
	for _, op := range sorted[:n] {
		lat := "-"
		if op.Completed {
			lat = fmt.Sprint(op.Latency)
		}
		fmt.Fprintf(w, "%8d %6d %6d %6d %10d %10s %10d %s\n",
			op.ID, op.Src, op.NumDests, op.Msgs, op.Start, lat, op.Dropped, op.Scheme)
	}
}

// printCriticalPath attributes one op's last-arrival critical path. A trace
// with no completed op is not an error (short captures); a requested op that
// cannot be attributed is.
func printCriticalPath(w, stderr io.Writer, tr *obs.Trace, opID uint64) int {
	if opID == 0 {
		slowest := tr.SlowestOp()
		if slowest == nil {
			fmt.Fprintln(w, "\nno completed operation to attribute")
			return 0
		}
		opID = slowest.ID
	}
	cp, err := tr.CriticalPath(opID)
	if err != nil {
		fmt.Fprintln(stderr, "mdwtrace:", err)
		return 1
	}
	op := tr.Op(opID)
	fmt.Fprintf(w, "\ncritical path of op %d (src %d, %d dests, last-arrival latency %d):\n",
		opID, op.Src, op.NumDests, cp.Latency)
	fmt.Fprintf(w, "  message chain: %v (%d injection(s))\n", cp.Chain, len(cp.Chain))
	fmt.Fprintf(w, "%12s %12s %10s %10s  %s\n", "from", "to", "cycles", "msg", "phase")
	for _, s := range cp.Segments {
		fmt.Fprintf(w, "%12d %12d %10d %10d  %s\n", s.From, s.To, s.Len(), s.Msg, s.Phase)
	}
	fmt.Fprintln(w, "\nphase totals:")
	printPhaseTotals(w, cp.Totals, cp.Latency)
	return 0
}

func printPhaseTotals(w io.Writer, totals map[obs.Phase]int64, denom int64) {
	for _, ph := range obs.Phases {
		v := totals[ph]
		if v == 0 {
			continue
		}
		pct := 0.0
		if denom > 0 {
			pct = 100 * float64(v) / float64(denom)
		}
		fmt.Fprintf(w, "  %-14s %10d cycles  %5.1f%%\n", ph, v, pct)
	}
}

// printCollectives lists every collective rep in the trace with its
// per-phase latency attribution, and validates the tiling invariant: for
// every complete rep the phase latencies must sum exactly to the rep's
// end-to-end last-arrival latency. A violation is an analyzer error.
func printCollectives(w, stderr io.Writer, tr *obs.Trace) int {
	colls := tr.Collectives()
	if len(colls) == 0 {
		return 0
	}
	kind := colls[0].Kind
	fmt.Fprintf(w, "\ncollective %s: %d rep(s)\n", kind, len(colls))
	fmt.Fprintf(w, "%6s %10s %10s %10s %9s  %s\n",
		"rep", "start", "latency", "skew", "degraded", "phase latencies")
	complete := 0
	for _, c := range colls {
		if !c.Done {
			fmt.Fprintf(w, "%6d %10d %10s %10s %9s  (incomplete at end of trace)\n",
				c.Rep, c.Start, "-", "-", "-")
			continue
		}
		complete++
		fmt.Fprintf(w, "%6d %10d %10d %10d %9v  %v\n",
			c.Rep, c.Start, c.Latency, c.Skew, c.Degraded, c.PhaseLatencies())
		if !c.Tiles() {
			fmt.Fprintf(stderr, "mdwtrace: collective rep %d: phase latencies %v do not tile latency %d\n",
				c.Rep, c.PhaseLatencies(), c.Latency)
			return 1
		}
	}
	if complete > 0 {
		fmt.Fprintf(w, "phase tiling: exact across %d complete rep(s)\n", complete)
	}
	return 0
}

func printPhaseSummary(w io.Writer, tr *obs.Trace) {
	totals, attributed, skipped := tr.PhaseSummary()
	if attributed == 0 {
		return
	}
	var sum int64
	for _, v := range totals {
		sum += v
	}
	fmt.Fprintf(w, "\nphase attribution across %d op(s) (%d skipped), %d critical-path cycles total:\n",
		attributed, skipped, sum)
	printPhaseTotals(w, totals, sum)
}

func printOccupancy(w io.Writer, tr *obs.Trace) {
	s := tr.Summary()
	if s.Samples == 0 {
		return
	}
	fmt.Fprintf(w, "\noccupancy (%d samples):\n", s.Samples)
	fmt.Fprintf(w, "  peak link flits in flight:   %d\n", s.PeakLinkFlits)
	fmt.Fprintf(w, "  peak input-queue flits:      %d (deepest single queue %d, mean %.1f)\n",
		s.PeakInputFlits, s.PeakInputQ, s.MeanInputFlits)
	if s.PeakCBChunks > 0 {
		fmt.Fprintf(w, "  peak central-buffer chunks:  %d (mean %.1f, max branch refs %d)\n",
			s.PeakCBChunks, s.MeanCBChunks, s.PeakBranchRefs)
	}
	fmt.Fprintf(w, "  peak NIC send queue:         %d\n", s.PeakNICQueue)
}
