package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdworm/internal/core"
	"mdworm/internal/obs"
)

// writeTimeline runs one observed multicast op on the default system and
// streams its timeline to a file, returning the path and the measured
// last-arrival latency.
func writeTimeline(t *testing.T) (string, int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sim, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := &obs.Capture{SampleEvery: 32, Stream: f}
	sim.Observe(c)
	lat, _, err := sim.RunOp(0, []int{1, 9, 18, 27, 36, 45, 54, 63}, true, 64, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StreamErr(); err != nil {
		t.Fatal(err)
	}
	return path, lat
}

func TestAnalyzeTimeline(t *testing.T) {
	path, lat := writeTimeline(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"timeline: 64 nodes, central-buffer switches, hw-bitstring multicast",
		"critical path of op",
		"last-arrival latency " + itoa(lat),
		"phase totals:",
		"transfer",
		"phase attribution across 1 op(s)",
		"occupancy (",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func itoa(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestExports(t *testing.T) {
	path, _ := writeTimeline(t)
	dir := t.TempDir()
	pf := filepath.Join(dir, "run.json")
	cf := filepath.Join(dir, "occ.csv")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-perfetto", pf, "-csv", cf, path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	b, err := os.ReadFile(pf)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("perfetto export is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("perfetto export has no events")
	}
	cb, err := os.ReadFile(cf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(cb), "cycle,link_flits") {
		t.Fatalf("bad CSV header: %q", string(cb[:40]))
	}
}

func TestStdinInput(t *testing.T) {
	path, _ := writeTimeline(t)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdin = r
	defer func() { os.Stdin = old }()
	go func() {
		w.Write(b)
		w.Close()
	}()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "critical path of op") {
		t.Fatalf("stdin analysis incomplete:\n%s", stdout.String())
	}
}

func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{}, &stdout, &stderr); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
	stderr.Reset()
	if code := run([]string{"-bogus", "x"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	stderr.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "missing.ndjson")}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file: exit %d", code)
	}
	garbage := filepath.Join(t.TempDir(), "bad.ndjson")
	if err := os.WriteFile(garbage, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{garbage}, &stdout, &stderr); code != 1 {
		t.Fatalf("garbage file: exit %d\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "line 1") {
		t.Fatalf("parse error lacks line number: %s", stderr.String())
	}

	// Asking for an op the trace never saw fails cleanly.
	path, _ := writeTimeline(t)
	stderr.Reset()
	if code := run([]string{"-op", "999999", path}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown op: exit %d", code)
	}
}
