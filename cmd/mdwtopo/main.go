// Command mdwtopo inspects the BMIN topology and routing machinery: switch
// wiring and reachability, unicast routes, multidestination branch trees,
// multiport product covers, and binomial software-multicast schedules.
//
// Examples:
//
//	mdwtopo -stages 2 -wiring
//	mdwtopo -route 0:13
//	mdwtopo -mcast 5:1,2,8,9,33 -tree
//	mdwtopo -mcast 5:1,2,8,9,33 -multiport
//	mdwtopo -mcast 5:1,2,8,9,33 -binomial
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mdworm/internal/bitset"
	"mdworm/internal/collective"
	"mdworm/internal/flit"
	"mdworm/internal/routing"
	"mdworm/internal/topology"
)

func main() {
	var (
		arity     = flag.Int("arity", 4, "down/up ports per switch")
		stages    = flag.Int("stages", 3, "switch stages (nodes = arity^stages)")
		irregular = flag.String("irregular", "", "build a random tree instead: switches:maxHosts:maxChildren:seed")
		wiring    = flag.Bool("wiring", false, "print every switch and its wiring")
		route     = flag.String("route", "", "print the unicast route src:dst")
		mcast     = flag.String("mcast", "", "multicast spec src:d1,d2,... for -tree/-multiport/-binomial")
		tree      = flag.Bool("tree", false, "print the hardware multidestination branch tree")
		multiport = flag.Bool("multiport", false, "print the multiport product cover")
		binomial  = flag.Bool("binomial", false, "print the U-MIN binomial schedule")
		repUp     = flag.Bool("replicate-up", true, "replicate on the up path")
	)
	flag.Parse()

	var net *topology.Network
	var err error
	if *irregular != "" {
		spec, perr := parseTreeSpec(*irregular)
		if perr != nil {
			fail(perr)
		}
		net, err = topology.NewRandomTree(spec)
		if err != nil {
			fail(err)
		}
		fmt.Printf("irregular tree: switches=%d hosts=%d depth=%d\n\n",
			len(net.Switches), net.N, net.Stages-1)
	} else {
		net, err = topology.NewKaryTree(*arity, *stages)
		if err != nil {
			fail(err)
		}
		fmt.Printf("k-ary n-tree: arity=%d stages=%d nodes=%d switches=%d\n\n",
			net.Arity, net.Stages, net.N, len(net.Switches))
	}

	router := &routing.Router{Net: net, ReplicateOnUpPath: *repUp, Policy: routing.UpHash}

	if *wiring {
		printWiring(net)
	}
	if *route != "" {
		src, dst := parsePair(*route)
		msg := &flit.Message{ID: 1, Src: src}
		hops, err := router.UnicastHops(src, dst, msg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("unicast %d -> %d: %d switch hops:", src, dst, len(hops))
		for _, h := range hops {
			sw := net.Switches[h]
			fmt.Printf(" sw%d(s%d,%d)", h, sw.Stage, sw.Pos)
		}
		fmt.Println()
	}
	if *mcast != "" {
		src, dests := parseMulticast(*mcast)
		if *tree {
			printTree(net, router, src, dests)
		}
		if *multiport {
			if !net.Kary {
				fail(fmt.Errorf("multiport encoding requires a k-ary tree"))
			}
			printMultiport(net, src, dests)
		}
		if *binomial {
			printBinomial(src, dests)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mdwtopo:", err)
	os.Exit(1)
}

func parseTreeSpec(s string) (topology.TreeSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return topology.TreeSpec{}, fmt.Errorf("expected switches:maxHosts:maxChildren:seed, got %q", s)
	}
	vals := make([]int, 4)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return topology.TreeSpec{}, err
		}
		vals[i] = v
	}
	return topology.TreeSpec{
		Switches:    vals[0],
		MinHosts:    0,
		MaxHosts:    vals[1],
		MaxChildren: vals[2],
		Seed:        uint64(vals[3]),
	}, nil
}

func parsePair(s string) (int, int) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		fail(fmt.Errorf("expected src:dst, got %q", s))
	}
	a, err1 := strconv.Atoi(parts[0])
	b, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		fail(fmt.Errorf("bad src:dst %q", s))
	}
	return a, b
}

func parseMulticast(s string) (int, []int) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		fail(fmt.Errorf("expected src:d1,d2,..., got %q", s))
	}
	src, err := strconv.Atoi(parts[0])
	if err != nil {
		fail(err)
	}
	var dests []int
	for _, d := range strings.Split(parts[1], ",") {
		v, err := strconv.Atoi(strings.TrimSpace(d))
		if err != nil {
			fail(err)
		}
		dests = append(dests, v)
	}
	return src, dests
}

func printWiring(net *topology.Network) {
	for _, sw := range net.Switches {
		fmt.Printf("sw%d stage=%d pos=%d reach=%v\n", sw.ID, sw.Stage, sw.Pos, sw.ReachAll())
		for pn := range sw.Ports {
			pt := &sw.Ports[pn]
			switch {
			case pt.Proc >= 0:
				fmt.Printf("  p%d %-4s -> proc %d\n", pn, pt.Kind, pt.Proc)
			case pt.PeerSwitch >= 0:
				fmt.Printf("  p%d %-4s -> sw%d.p%d  reach=%v\n", pn, pt.Kind, pt.PeerSwitch, pt.PeerPort, pt.Reach)
			default:
				fmt.Printf("  p%d %-4s unconnected\n", pn, pt.Kind)
			}
		}
	}
	fmt.Println()
}

// printTree walks the hardware multidestination worm's branch tree the way
// switches would replicate it, printing one line per hop.
func printTree(net *topology.Network, router *routing.Router, src int, dests []int) {
	fmt.Printf("hardware branch tree from %d to %v (LCA stage %d):\n",
		src, dests, net.LCAStage(src, bitset.FromSlice(net.N, dests)))
	type hop struct {
		sw        int
		dests     bitset.Set
		ascending bool
		depth     int
	}
	swID, _ := net.ProcAttach(src)
	stack := []hop{{sw: swID, dests: bitset.FromSlice(net.N, dests), ascending: true, depth: 0}}
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sw := net.Switches[h.sw]
		dec, err := router.Route(sw, h.dests, h.ascending)
		if err != nil {
			fail(err)
		}
		indent := strings.Repeat("  ", h.depth)
		fmt.Printf("%ssw%d(s%d,%d) dests=%v\n", indent, sw.ID, sw.Stage, sw.Pos, h.dests)
		for _, b := range dec.Down {
			pt := &sw.Ports[b.Port]
			if pt.Proc >= 0 {
				fmt.Printf("%s  deliver -> proc %d\n", indent, pt.Proc)
				continue
			}
			stack = append(stack, hop{sw: pt.PeerSwitch, dests: b.Dests, ascending: false, depth: h.depth + 1})
		}
		if !dec.UpDests.Empty() {
			up := dec.UpCandidates[0]
			stack = append(stack, hop{sw: sw.Ports[up].PeerSwitch, dests: dec.UpDests, ascending: true, depth: h.depth + 1})
		}
	}
}

func printMultiport(net *topology.Network, src int, dests []int) {
	cover, err := routing.MultiportCover(net, src, dests)
	if err != nil {
		fail(err)
	}
	fmt.Printf("multiport cover from %d to %v: %d worm(s)\n", src, dests, len(cover))
	for i, ps := range cover {
		fmt.Printf("  worm %d: lca-stage=%d ports=%v covers %v\n", i, ps.LCAStage, ps.PortSets, ps.Dests(net.Arity))
	}
}

func printBinomial(src int, dests []int) {
	phase, err := collective.ValidateTree(src, dests)
	if err != nil {
		fail(err)
	}
	fmt.Printf("binomial U-MIN schedule from %d to %v (%d phases):\n",
		src, dests, collective.BinomialPhases(len(dests)))
	for _, d := range dests {
		fmt.Printf("  node %d receives in phase %d\n", d, phase[d])
	}
}
