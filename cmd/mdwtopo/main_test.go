package main

import "testing"

func TestParsePair(t *testing.T) {
	a, b := parsePair("3:14")
	if a != 3 || b != 14 {
		t.Fatalf("got %d:%d", a, b)
	}
}

func TestParseMulticast(t *testing.T) {
	src, dests := parseMulticast("5:1, 2,8")
	if src != 5 || len(dests) != 3 || dests[0] != 1 || dests[1] != 2 || dests[2] != 8 {
		t.Fatalf("got %d %v", src, dests)
	}
}

func TestParseTreeSpec(t *testing.T) {
	spec, err := parseTreeSpec("16:4:3:42")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Switches != 16 || spec.MaxHosts != 4 || spec.MaxChildren != 3 || spec.Seed != 42 {
		t.Fatalf("%+v", spec)
	}
	if _, err := parseTreeSpec("16:4:3"); err == nil {
		t.Error("short spec accepted")
	}
	if _, err := parseTreeSpec("a:b:c:d"); err == nil {
		t.Error("non-numeric spec accepted")
	}
}
