// Package chaos defines deterministic, seeded network-fault plans for the
// service layer: a list of timed events (added latency, partitions, dropped
// responses, slow closes, corrupted bytes) applied to the real HTTP traffic
// between mdwd processes — the coordinator↔worker shard dispatch path and
// the client-facing front door. It is the service-layer sibling of
// internal/faults, which injects faults into the *simulated* fabric; chaos
// injects them into the fabric the service itself runs on.
//
// Plans use a compact one-line spec mirroring the faults grammar
// (ParseSpec/Spec), with wall-clock offsets instead of cycles:
//
//	latency@5s+10s:worker1*250ms;partition@8s+2s:coordinator-worker2;drop@1s+4s:*
//
// Each event is kind@at[+dur]:target[*param]. Targets are process labels
// (assigned at injector construction — conventionally "coordinator",
// "worker1", "worker2", ...), "*" for every peer, or an unordered pair
// "a-b" scoping the event to traffic between two specific processes. The
// optional *param is a duration argument: the added delay for latency and
// the close delay for slow-close.
//
// A plan is applied through an Injector (see inject.go), which wraps an
// http.RoundTripper on the client side and a net.Listener on the server
// side. All randomness derives from the injector seed, so a given
// (plan, seed) pair perturbs a run's timing identically across replays;
// the service layer's retry, dedup, and integrity machinery is what turns
// that perturbed timing back into byte-identical results.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind enumerates the network-fault classes.
type Kind uint8

const (
	// Latency delays matching requests by the event's Param (default
	// 200ms) before they are sent, honoring request-context cancellation.
	Latency Kind = iota
	// Partition severs matching traffic for the event window: client-side
	// requests fail immediately with a connection-style error, server-side
	// accepted connections are closed before any byte is served.
	Partition
	// Drop lets a matching request reach the server (side effects happen)
	// but discards the response, so the client sees a connection error.
	// This is the event that exercises at-least-once dedup.
	Drop
	// SlowClose delays closing matching response bodies/connections by the
	// event's Param (default 200ms), holding sockets open past their
	// useful life.
	SlowClose
	// Corrupt deterministically flips bytes in matching response bodies.
	// End-to-end integrity checks (X-Mdwd-Body-SHA256) must detect the
	// damage and retry.
	Corrupt
)

var kindNames = [...]string{"latency", "partition", "drop", "slow-close", "corrupt"}

// String returns the spec-grammar name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind maps a spec-grammar name back to its Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown kind %q (want %s)", s, strings.Join(kindNames[:], ", "))
}

// Event is one timed network fault.
type Event struct {
	Kind Kind
	// At is the wall-clock offset from injector start at which the event
	// becomes active.
	At time.Duration
	// Duration bounds the event window; 0 means active forever.
	Duration time.Duration
	// A and B are the target labels. B is empty for single-label targets;
	// A is "*" for events matching every peer. A pair is unordered:
	// "coordinator-worker2" matches traffic in both directions.
	A, B string
	// Param is the duration argument for Latency (added delay) and
	// SlowClose (close delay); 0 means the 200ms default. Other kinds
	// reject a param.
	Param time.Duration
}

// DefaultParam is the delay used by Latency and SlowClose events that do
// not carry an explicit *param.
const DefaultParam = 200 * time.Millisecond

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
		default:
			return false
		}
	}
	return true
}

// Validate checks the event's internal consistency.
func (e Event) Validate() error {
	if int(e.Kind) >= len(kindNames) {
		return fmt.Errorf("chaos: unknown kind %d", uint8(e.Kind))
	}
	if e.At < 0 {
		return fmt.Errorf("chaos: %s at negative offset %s", e.Kind, e.At)
	}
	if e.Duration < 0 {
		return fmt.Errorf("chaos: %s with negative duration %s", e.Kind, e.Duration)
	}
	if e.Param < 0 {
		return fmt.Errorf("chaos: %s with negative param %s", e.Kind, e.Param)
	}
	switch {
	case e.A == "*":
		if e.B != "" {
			return fmt.Errorf("chaos: %s target '*' cannot be part of a pair", e.Kind)
		}
	case !validLabel(e.A):
		return fmt.Errorf("chaos: %s has bad target label %q (want [a-zA-Z0-9_]+ or '*')", e.Kind, e.A)
	case e.B != "":
		if !validLabel(e.B) {
			return fmt.Errorf("chaos: %s has bad target label %q (want [a-zA-Z0-9_]+)", e.Kind, e.B)
		}
		if e.A == e.B {
			return fmt.Errorf("chaos: %s pair names the same label %q twice", e.Kind, e.A)
		}
	}
	switch e.Kind {
	case Latency, SlowClose:
	default:
		if e.Param != 0 {
			return fmt.Errorf("chaos: %s does not take a *param", e.Kind)
		}
	}
	return nil
}

// ActiveAt reports whether the event window covers the given offset from
// injector start.
func (e Event) ActiveAt(now time.Duration) bool {
	if now < e.At {
		return false
	}
	return e.Duration == 0 || now < e.At+e.Duration
}

// Matches reports whether the event targets traffic between self and peer.
// peer may be empty when unknown (a raw accepted connection on the server
// side); then single labels and pairs match on self alone.
func (e Event) Matches(self, peer string) bool {
	if e.A == "*" {
		return true
	}
	if e.B == "" {
		return e.A == self || (peer != "" && e.A == peer)
	}
	if peer == "" {
		return e.A == self || e.B == self
	}
	return (e.A == self && e.B == peer) || (e.A == peer && e.B == self)
}

// param returns the event's duration argument, defaulted.
func (e Event) param() time.Duration {
	if e.Param > 0 {
		return e.Param
	}
	return DefaultParam
}

// spec renders the event in the compact grammar.
func (e Event) spec() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	fmt.Fprintf(&b, "@%s", e.At)
	if e.Duration > 0 {
		fmt.Fprintf(&b, "+%s", e.Duration)
	}
	b.WriteByte(':')
	b.WriteString(e.A)
	if e.B != "" {
		b.WriteByte('-')
		b.WriteString(e.B)
	}
	if e.Param > 0 {
		fmt.Fprintf(&b, "*%s", e.Param)
	}
	return b.String()
}

// Plan is a deterministic schedule of network-fault events. The zero Plan
// injects nothing.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Validate checks every event.
func (p Plan) Validate() error {
	for i, e := range p.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// less orders events canonically: by time, then kind, then target.
func less(a, b Event) bool {
	switch {
	case a.At != b.At:
		return a.At < b.At
	case a.Kind != b.Kind:
		return a.Kind < b.Kind
	case a.A != b.A:
		return a.A < b.A
	case a.B != b.B:
		return a.B < b.B
	case a.Duration != b.Duration:
		return a.Duration < b.Duration
	default:
		return a.Param < b.Param
	}
}

// Normalized returns a copy of the plan with pair labels and events in
// canonical order, so plans listing the same events any way round render
// (Spec) identically.
func (p Plan) Normalized() Plan {
	if len(p.Events) == 0 {
		return Plan{}
	}
	ev := append([]Event(nil), p.Events...)
	for i := range ev {
		if ev[i].B != "" && ev[i].B < ev[i].A {
			ev[i].A, ev[i].B = ev[i].B, ev[i].A
		}
	}
	sort.SliceStable(ev, func(i, j int) bool { return less(ev[i], ev[j]) })
	return Plan{Events: ev}
}

// Spec renders the plan in the compact one-line grammar, in canonical
// order. ParseSpec(p.Spec()) round-trips.
func (p Plan) Spec() string {
	n := p.Normalized()
	parts := make([]string, len(n.Events))
	for i, e := range n.Events {
		parts[i] = e.spec()
	}
	return strings.Join(parts, ";")
}

// ParseSpec parses the compact grammar: semicolon-separated events of the
// form kind@at[+dur]:target[*param], where at, dur, and param are Go
// durations ("5s", "250ms"), and target is a label, "*", or an unordered
// pair "a-b". Whitespace around events is ignored; an empty string is the
// empty plan. The result is validated and normalized.
func ParseSpec(s string) (Plan, error) {
	var p Plan
	for _, raw := range strings.Split(s, ";") {
		part := strings.TrimSpace(raw)
		if part == "" {
			continue
		}
		e, err := parseEvent(part)
		if err != nil {
			return Plan{}, fmt.Errorf("chaos: %q: %w", part, err)
		}
		p.Events = append(p.Events, e)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p.Normalized(), nil
}

func parseEvent(s string) (Event, error) {
	kindStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Event{}, fmt.Errorf("missing '@' (want kind@at[+dur]:target[*param])")
	}
	kind, err := ParseKind(kindStr)
	if err != nil {
		return Event{}, err
	}
	timing, target, ok := strings.Cut(rest, ":")
	if !ok {
		return Event{}, fmt.Errorf("missing ':' before target")
	}
	e := Event{Kind: kind}
	atStr, durStr, hasDur := strings.Cut(timing, "+")
	if e.At, err = time.ParseDuration(atStr); err != nil {
		return Event{}, fmt.Errorf("bad offset %q (want a duration like 5s)", atStr)
	}
	if hasDur {
		if e.Duration, err = time.ParseDuration(durStr); err != nil {
			return Event{}, fmt.Errorf("bad duration %q", durStr)
		}
		if e.Duration == 0 {
			return Event{}, fmt.Errorf("explicit duration must be > 0 (omit '+0s' for permanent)")
		}
	}
	if target, rest, ok = cutParam(target); ok {
		if e.Param, err = time.ParseDuration(rest); err != nil {
			return Event{}, fmt.Errorf("bad param %q (want a duration like 250ms)", rest)
		}
		if e.Param == 0 {
			return Event{}, fmt.Errorf("explicit param must be > 0 (omit '*0s' for the default)")
		}
	}
	if a, b, pair := strings.Cut(target, "-"); pair {
		e.A, e.B = a, b
	} else {
		e.A = target
	}
	return e, nil
}

// cutParam splits "target*param" on the last '*', leaving a bare "*"
// target (match-all) intact.
func cutParam(s string) (target, param string, ok bool) {
	i := strings.LastIndexByte(s, '*')
	if i <= 0 { // -1: no param; 0: the match-all target itself
		return s, "", false
	}
	return s[:i], s[i+1:], true
}
