package chaos

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSpecRoundTrip: ParseSpec(p.Spec()) is the identity on normalized
// plans, and label pairs canonicalize regardless of order.
func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"latency@5s+10s:worker1*250ms",
		"partition@8s:coordinator-worker2",
		"drop@1s+4s:*",
		"slow-close@0s:worker1",
		"corrupt@2s+1s:worker2;latency@0s:*",
		"",
	}
	for _, s := range specs {
		p, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		p2, err := ParseSpec(p.Spec())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", p.Spec(), err)
		}
		if p2.Spec() != p.Spec() {
			t.Errorf("round-trip of %q: %q != %q", s, p2.Spec(), p.Spec())
		}
	}
	a, err := ParseSpec("partition@1s:worker2-coordinator")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("partition@1s:coordinator-worker2")
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec() != b.Spec() {
		t.Errorf("pair order not canonical: %q vs %q", a.Spec(), b.Spec())
	}
}

// TestSpecErrors: malformed specs are rejected with the offending part in
// the message.
func TestSpecErrors(t *testing.T) {
	bad := []string{
		"latency@5s",                // no target
		"latency:worker1",           // no @
		"teleport@1s:worker1",       // unknown kind
		"latency@x:worker1",         // bad offset
		"latency@1s+0s:worker1",     // zero duration
		"latency@1s:worker1*0s",     // zero param
		"drop@1s:worker1*250ms",     // param on drop
		"partition@1s:w1-w1",        // pair of same label
		"latency@1s:wo rker",        // bad label
		"latency@-5s:worker1",       // negative offset
		"partition@1s:*-worker1",    // '*' in a pair
		"corrupt@1s:worker1*bogus*", // unparsable param
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want failure", s)
		}
	}
}

// TestEventWindowAndMatch: ActiveAt honors the [At, At+Duration) window and
// Matches honors labels, pairs, wildcard, and unknown peers.
func TestEventWindowAndMatch(t *testing.T) {
	e := Event{Kind: Latency, At: 2 * time.Second, Duration: 3 * time.Second, A: "worker1"}
	for _, tc := range []struct {
		at   time.Duration
		want bool
	}{{0, false}, {2 * time.Second, true}, {4 * time.Second, true}, {5 * time.Second, false}} {
		if got := e.ActiveAt(tc.at); got != tc.want {
			t.Errorf("ActiveAt(%s) = %v, want %v", tc.at, got, tc.want)
		}
	}
	perm := Event{Kind: Drop, At: time.Second, A: "*"}
	if !perm.ActiveAt(time.Hour) {
		t.Error("permanent event expired")
	}

	single := Event{A: "worker1"}
	pair := Event{A: "coordinator", B: "worker2"}
	all := Event{A: "*"}
	cases := []struct {
		e          Event
		self, peer string
		want       bool
	}{
		{single, "worker1", "", true},
		{single, "coordinator", "worker1", true},
		{single, "coordinator", "worker2", false},
		{pair, "coordinator", "worker2", true},
		{pair, "worker2", "coordinator", true},
		{pair, "coordinator", "worker1", false},
		{pair, "worker2", "", true}, // unknown peer: match on self
		{pair, "worker1", "", false},
		{all, "anything", "", true},
	}
	for _, tc := range cases {
		if got := tc.e.Matches(tc.self, tc.peer); got != tc.want {
			t.Errorf("Matches(%+v, %q, %q) = %v, want %v", tc.e, tc.self, tc.peer, got, tc.want)
		}
	}
}

// clockAt pins an injector's plan clock for tests.
func clockAt(in *Injector, at time.Duration) { in.SetClock(func() time.Duration { return at }) }

func testServer(t *testing.T, body string, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, c *http.Client, url string) (string, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// TestTransportPartition: an active partition fails the request without it
// reaching the server; outside the window traffic flows.
func TestTransportPartition(t *testing.T) {
	var hits atomic.Int64
	srv := testServer(t, "ok", &hits)
	in, err := NewFromSpec("partition@1s+2s:coordinator-worker1", 1, "coordinator")
	if err != nil {
		t.Fatal(err)
	}
	c := &http.Client{Transport: in.Transport(nil, func(*http.Request) string { return "worker1" })}

	clockAt(in, 2*time.Second)
	if _, err := get(t, c, srv.URL); err == nil {
		t.Fatal("partitioned request succeeded")
	} else if !strings.Contains(err.Error(), "partition") {
		t.Fatalf("want partition error, got %v", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("partitioned request reached the server (%d hits)", hits.Load())
	}

	clockAt(in, 4*time.Second) // window closed
	if body, err := get(t, c, srv.URL); err != nil || body != "ok" {
		t.Fatalf("healed request: %q, %v", body, err)
	}
}

// TestTransportDrop: a dropped response still executes server side effects
// but surfaces as a retryable connection-style error.
func TestTransportDrop(t *testing.T) {
	var hits atomic.Int64
	srv := testServer(t, "ok", &hits)
	in, err := NewFromSpec("drop@0s:worker1", 7, "coordinator")
	if err != nil {
		t.Fatal(err)
	}
	c := &http.Client{Transport: in.Transport(nil, func(*http.Request) string { return "worker1" })}
	clockAt(in, time.Second)
	_, err = get(t, c, srv.URL)
	if err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("want dropped-response error, got %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want 1 (drop must not suppress the request)", hits.Load())
	}
	var pe *PartitionError
	if !asPartition(err, &pe) || !pe.Timeout() {
		t.Fatalf("drop error should be a timeout-reporting PartitionError, got %T", err)
	}
}

func asPartition(err error, out **PartitionError) bool {
	for err != nil {
		if pe, ok := err.(*PartitionError); ok {
			*out = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestTransportLatency: latency delays the request by roughly the param.
func TestTransportLatency(t *testing.T) {
	srv := testServer(t, "ok", nil)
	in, err := NewFromSpec("latency@0s:worker1*150ms", 1, "coordinator")
	if err != nil {
		t.Fatal(err)
	}
	c := &http.Client{Transport: in.Transport(nil, func(*http.Request) string { return "worker1" })}
	clockAt(in, time.Second)
	start := time.Now()
	if body, err := get(t, c, srv.URL); err != nil || body != "ok" {
		t.Fatalf("latency request: %q, %v", body, err)
	}
	if d := time.Since(start); d < 140*time.Millisecond {
		t.Fatalf("request took %s, want >= ~150ms of injected latency", d)
	}
}

// TestTransportCorruptDeterministic: corruption damages the body, the
// damage is identical across replays with the same seed, and differs
// across seeds.
func TestTransportCorruptDeterministic(t *testing.T) {
	body := strings.Repeat("abcdefgh", 256) // 2KiB: several corrupt blocks
	srv := testServer(t, body, nil)
	read := func(seed int64) string {
		in, err := NewFromSpec("corrupt@0s:worker1", seed, "coordinator")
		if err != nil {
			t.Fatal(err)
		}
		clockAt(in, time.Second)
		c := &http.Client{Transport: in.Transport(nil, func(*http.Request) string { return "worker1" })}
		got, err := get(t, c, srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b, c := read(42), read(42), read(43)
	if a == body {
		t.Fatal("corrupt event left the body intact")
	}
	if a != b {
		t.Fatal("same seed produced different corruption")
	}
	if a == c {
		t.Fatal("different seeds produced identical corruption")
	}
}

// TestListenerPartition: an active server-side partition kills accepted
// connections; after the window the listener serves normally.
func TestListenerPartition(t *testing.T) {
	in, err := NewFromSpec("partition@1s+2s:worker1", 1, "worker1")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})}
	go srv.Serve(in.Listener(ln))
	defer srv.Close()
	url := "http://" + ln.Addr().String()

	clockAt(in, 2*time.Second)
	c := &http.Client{Timeout: 2 * time.Second}
	if _, err := get(t, c, url); err == nil {
		t.Fatal("request through partitioned listener succeeded")
	}

	clockAt(in, 4*time.Second)
	// The client may need a fresh conn after the killed one.
	c.CloseIdleConnections()
	if body, err := get(t, c, url); err != nil || body != "ok" {
		t.Fatalf("healed listener: %q, %v", body, err)
	}
}

// TestCorruptHelperDeterministic: the block-flip primitive is a pure
// function of (seed, offset) — chunking the stream differently flips the
// same bytes.
func TestCorruptHelperDeterministic(t *testing.T) {
	in := New(Plan{}, 99, "x")
	orig := bytes.Repeat([]byte{0xAA}, 4096)

	whole := append([]byte(nil), orig...)
	in.corrupt(whole, 0)

	chunked := append([]byte(nil), orig...)
	for off := 0; off < len(chunked); off += 100 {
		end := off + 100
		if end > len(chunked) {
			end = len(chunked)
		}
		in.corrupt(chunked[off:end], int64(off))
	}
	if !bytes.Equal(whole, chunked) {
		t.Fatal("corruption depends on read chunking")
	}
	if bytes.Equal(whole, orig) {
		t.Fatal("corrupt flipped nothing over 8 blocks")
	}
}

// FuzzChaosSpec: any spec that parses must round-trip through Spec, and
// the parser must never panic.
func FuzzChaosSpec(f *testing.F) {
	f.Add("latency@5s+10s:worker1*250ms")
	f.Add("partition@8s:coordinator-worker2")
	f.Add("drop@1s+4s:*;corrupt@0s:w1")
	f.Add("slow-close@1h:a-b*1ms")
	f.Add(";;;")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseSpec(s)
		if err != nil {
			return
		}
		p2, err := ParseSpec(p.Spec())
		if err != nil {
			t.Fatalf("canonical spec %q failed to re-parse: %v", p.Spec(), err)
		}
		if p2.Spec() != p.Spec() {
			t.Fatalf("spec not stable: %q -> %q", p.Spec(), p2.Spec())
		}
	})
}
