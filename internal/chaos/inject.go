package chaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Injector applies a Plan to real traffic. One injector represents one
// process, identified by its label; it wraps the process's outbound HTTP
// transport (Transport) and/or its inbound listener (Listener). The clock
// starts at New, so event offsets are relative to process start.
type Injector struct {
	plan  Plan
	seed  uint64
	self  string
	ctr   atomic.Uint64
	clock atomic.Pointer[func() time.Duration]
}

// New builds an injector for the process labeled self. The plan is
// normalized; the seed drives every byte-level decision (corruption
// positions, sever offsets) so a (plan, seed) pair replays identically.
func New(plan Plan, seed int64, self string) *Injector {
	in := &Injector{
		plan: plan.Normalized(),
		seed: uint64(seed),
		self: self,
	}
	start := time.Now()
	in.SetClock(func() time.Duration { return time.Since(start) })
	return in
}

// SetClock replaces the plan clock — the offset from process start that
// event windows are evaluated against. Tests pin or advance it; the
// default is wall time since New. Safe to call while traffic is flowing.
func (in *Injector) SetClock(elapsed func() time.Duration) {
	in.clock.Store(&elapsed)
}

// Elapsed returns the current plan-clock offset.
func (in *Injector) Elapsed() time.Duration { return (*in.clock.Load())() }

// NewFromSpec is New over ParseSpec.
func NewFromSpec(spec string, seed int64, self string) (*Injector, error) {
	p, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return New(p, seed, self), nil
}

// Label returns the injector's own process label.
func (in *Injector) Label() string { return in.self }

// active returns the events currently in their window that match traffic
// between self and peer (peer may be empty for raw connections).
func (in *Injector) active(peer string) []Event {
	now := in.Elapsed()
	var out []Event
	for _, e := range in.plan.Events {
		if e.ActiveAt(now) && e.Matches(in.self, peer) {
			out = append(out, e)
		}
	}
	return out
}

// decide maps a decision index to a deterministic 64-bit value
// (splitmix64 over seed+n).
func (in *Injector) decide(n uint64) uint64 {
	z := in.seed + n*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// corruptBlock is the granularity of Corrupt events: one deterministic
// byte flip per corruptBlock bytes of stream.
const corruptBlock = 512

// corrupt flips the plan's deterministic byte positions inside p, which
// holds stream bytes [off, off+len(p)).
func (in *Injector) corrupt(p []byte, off int64) {
	end := off + int64(len(p))
	for b := off / corruptBlock; b*corruptBlock < end; b++ {
		pos := b*corruptBlock + int64(in.decide(uint64(b))%corruptBlock)
		if pos >= off && pos < end {
			p[pos-off] ^= 0x20
		}
	}
}

// PartitionError is the error returned for requests suppressed by an
// active partition or drop event; it reports as a timeout so HTTP clients
// treat it like a connection failure rather than a protocol error.
type PartitionError struct{ msg string }

func (e *PartitionError) Error() string   { return e.msg }
func (e *PartitionError) Timeout() bool   { return true }
func (e *PartitionError) Temporary() bool { return true }

// Transport wraps base (nil means http.DefaultTransport) with the
// injector's plan. peer maps each request to the label of the process it
// targets; a nil peer (or an empty label) matches single-label and pair
// events on self alone.
func (in *Injector) Transport(base http.RoundTripper, peer func(*http.Request) string) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{in: in, base: base, peer: peer}
}

type roundTripper struct {
	in   *Injector
	base http.RoundTripper
	peer func(*http.Request) string
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	label := ""
	if rt.peer != nil {
		label = rt.peer(req)
	}
	events := rt.in.active(label)
	var drop, corrupt bool
	var slow time.Duration
	for _, e := range events {
		switch e.Kind {
		case Partition:
			return nil, &PartitionError{msg: fmt.Sprintf("chaos: partition %s->%s", rt.in.self, label)}
		case Latency:
			select {
			case <-time.After(e.param()):
			case <-req.Context().Done():
				return nil, req.Context().Err()
			}
		case Drop:
			drop = true
		case Corrupt:
			corrupt = true
		case SlowClose:
			slow = e.param()
		}
	}
	resp, err := rt.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if drop {
		// The request reached the server — its side effects happened —
		// but the client never learns the outcome.
		resp.Body.Close()
		return nil, &PartitionError{msg: fmt.Sprintf("chaos: dropped response %s->%s", rt.in.self, label)}
	}
	if corrupt {
		resp.Body = &corruptBody{in: rt.in, rc: resp.Body}
	}
	if slow > 0 {
		resp.Body = &slowCloseBody{rc: resp.Body, delay: slow}
	}
	return resp, nil
}

type corruptBody struct {
	in  *Injector
	rc  io.ReadCloser
	off int64
}

func (b *corruptBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	if n > 0 {
		b.in.corrupt(p[:n], b.off)
		b.off += int64(n)
	}
	return n, err
}

func (b *corruptBody) Close() error { return b.rc.Close() }

type slowCloseBody struct {
	rc    io.ReadCloser
	delay time.Duration
}

func (b *slowCloseBody) Read(p []byte) (int, error) { return b.rc.Read(p) }

func (b *slowCloseBody) Close() error {
	time.Sleep(b.delay)
	return b.rc.Close()
}

// Listener wraps ln with the injector's plan. Accepted connections have no
// peer label, so events match on the injector's own label (and "*").
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{in: in, Listener: ln}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &conn{Conn: c, in: l.in, severAt: -1}, nil
}

// conn applies server-side chaos per operation, so an event whose window
// opens mid-connection still bites.
type conn struct {
	net.Conn
	in *Injector

	delayed bool  // latency applied to the first read
	written int64 // bytes written, for drop/corrupt offsets
	severAt int64 // drop: sever the conn at this write offset (-1 unset)
}

func (c *conn) kinds() (partition, latency, drop, corrupt bool, slow, delay time.Duration) {
	for _, e := range c.in.active("") {
		switch e.Kind {
		case Partition:
			partition = true
		case Latency:
			latency, delay = true, e.param()
		case Drop:
			drop = true
		case Corrupt:
			corrupt = true
		case SlowClose:
			slow = e.param()
		}
	}
	return
}

func (c *conn) Read(p []byte) (int, error) {
	partition, latency, _, _, _, delay := c.kinds()
	if partition {
		c.Conn.Close()
		return 0, &PartitionError{msg: "chaos: partitioned (server)"}
	}
	if latency && !c.delayed {
		c.delayed = true
		time.Sleep(delay)
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	partition, _, drop, corrupt, _, _ := c.kinds()
	if partition {
		c.Conn.Close()
		return 0, &PartitionError{msg: "chaos: partitioned (server)"}
	}
	if drop {
		if c.severAt < 0 {
			c.severAt = c.written + int64(256+c.in.decide(c.in.ctr.Add(1))%4096)
		}
		if c.written >= c.severAt {
			c.Conn.Close()
			return 0, &PartitionError{msg: "chaos: response severed (server)"}
		}
	}
	if corrupt {
		buf := append([]byte(nil), p...)
		c.in.corrupt(buf, c.written)
		n, err := c.Conn.Write(buf)
		c.written += int64(n)
		return n, err
	}
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	return n, err
}

func (c *conn) Close() error {
	_, _, _, _, slow, _ := c.kinds()
	if slow > 0 {
		time.Sleep(slow)
	}
	return c.Conn.Close()
}
