// Package plot renders experiment series as ASCII line charts so the
// reproduced figures can be eyeballed directly in a terminal (mdwbench
// -plot). Charts use a log-ish autoscaled y axis when the series span
// orders of magnitude, which latency-vs-load curves routinely do.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// Chart is a set of curves over a shared axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 56)
	Height int // plot area rows (default 16)
	// LogY forces a logarithmic y axis; when false it is chosen
	// automatically (span > 50x).
	LogY   bool
	Series []Series
}

var defaultMarkers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 56
	}
	if height <= 0 {
		height = 16
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.Series {
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			any = true
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if !any {
		fmt.Fprintf(w, "%s\n  (no data)\n", c.Title)
		return
	}
	logY := c.LogY || (ymin > 0 && ymax/math.Max(ymin, 1e-12) > 50)
	ty := func(v float64) float64 {
		if logY {
			return math.Log10(math.Max(v, 1e-12))
		}
		return v
	}
	lo, hi := ty(ymin), ty(ymax)
	if hi == lo {
		hi = lo + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		// Sort points by x for line interpolation.
		type pt struct{ x, y float64 }
		pts := make([]pt, 0, len(s.X))
		for i := range s.X {
			if finite(s.X[i]) && finite(s.Y[i]) {
				pts = append(pts, pt{s.X[i], s.Y[i]})
			}
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
		// Extreme magnitudes can overflow (x-xmin) to Inf and the ratio
		// to NaN; clamp everything onto the grid.
		col := func(x float64) int {
			return clampIdx(math.Round((x-xmin)/(xmax-xmin)*float64(width-1)), width)
		}
		row := func(y float64) int {
			f := (ty(y) - lo) / (hi - lo)
			return (height - 1) - clampIdx(math.Round(f*float64(height-1)), height)
		}
		// Connect consecutive points with interpolated dots, then stamp
		// markers on the data points.
		for i := 1; i < len(pts); i++ {
			c0, r0 := col(pts[i-1].x), row(pts[i-1].y)
			c1, r1 := col(pts[i].x), row(pts[i].y)
			steps := max(abs(c1-c0), abs(r1-r0))
			for st := 0; st <= steps; st++ {
				f := 0.0
				if steps > 0 {
					f = float64(st) / float64(steps)
				}
				cc := c0 + int(math.Round(f*float64(c1-c0)))
				rr := r0 + int(math.Round(f*float64(r1-r0)))
				if grid[rr][cc] == ' ' {
					grid[rr][cc] = '.'
				}
			}
		}
		for _, p := range pts {
			grid[row(p.y)][col(p.x)] = marker
		}
	}

	fmt.Fprintf(w, "%s\n", c.Title)
	axis := "linear"
	if logY {
		axis = "log"
	}
	fmt.Fprintf(w, "%s (%s)\n", c.YLabel, axis)
	inv := func(f float64) float64 {
		v := lo + f*(hi-lo)
		if logY {
			return math.Pow(10, v)
		}
		return v
	}
	for r := 0; r < height; r++ {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%10.4g", inv(1))
		case height / 2:
			label = fmt.Sprintf("%10.4g", inv(0.5))
		case height - 1:
			label = fmt.Sprintf("%10.4g", inv(0))
		default:
			label = strings.Repeat(" ", 10)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-10.4g%s%10.4g   (%s)\n", strings.Repeat(" ", 10),
		xmin, strings.Repeat(" ", max(1, width-22)), xmax, c.XLabel)
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(w, "%s   %c %s\n", strings.Repeat(" ", 10), marker, s.Name)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// clampIdx maps a (possibly NaN or out-of-range) coordinate onto [0, n).
func clampIdx(v float64, n int) int {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > float64(n-1) {
		return n - 1
	}
	return int(v)
}
