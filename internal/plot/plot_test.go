package plot

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{
		Title:  "latency vs load",
		XLabel: "load",
		YLabel: "cycles",
		Series: []Series{
			{Name: "hw", X: []float64{0.1, 0.2, 0.3}, Y: []float64{100, 120, 150}},
			{Name: "sw", X: []float64{0.1, 0.2, 0.3}, Y: []float64{400, 900, 9000}},
		},
	}
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	for _, want := range []string{"latency vs load", "cycles", "(log)", "hw", "sw", "load", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 18 {
		t.Fatalf("chart too short (%d lines)", len(lines))
	}
}

func TestRenderLinearAxis(t *testing.T) {
	c := Chart{
		Title:  "t",
		Series: []Series{{Name: "a", X: []float64{0, 1}, Y: []float64{10, 20}}},
	}
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "(linear)") {
		t.Fatalf("small-span series should use linear axis:\n%s", buf.String())
	}
}

func TestRenderEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty chart not flagged")
	}
}

func TestRenderSinglePointAndFlat(t *testing.T) {
	c := Chart{
		Title: "flat",
		Series: []Series{
			{Name: "p", X: []float64{5}, Y: []float64{7}},
			{Name: "f", X: []float64{1, 2, 3}, Y: []float64{7, 7, 7}},
		},
	}
	var buf bytes.Buffer
	c.Render(&buf) // must not panic or divide by zero
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

// Property: Render never panics and always emits output, for arbitrary
// series contents (including NaN and infinite values).
func TestRenderQuickNeverPanics(t *testing.T) {
	f := func(xs, ys []float64, w, h uint8) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		c := Chart{
			Title:  "fuzz",
			Width:  int(w % 90),
			Height: int(h % 40),
			Series: []Series{{Name: "s", X: xs[:n], Y: ys[:n]}},
		}
		var buf bytes.Buffer
		c.Render(&buf)
		return buf.Len() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
