package cluster

import (
	"net/http"
	"time"

	"mdworm/internal/obs"
)

// handleMetrics reports the coordinator's counters in the Prometheus text
// exposition format (version 0.0.4): the cluster-wide gauges the alerts
// watch (healthy peers, shards in flight, hedge and migration totals) plus
// per-peer health and load broken out by the peer label.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	views := c.peers.Views()
	hits, misses, entries := c.cache.Stats()

	w.Header().Set("Content-Type", obs.PromContentType)
	p := &obs.PromWriter{W: w}
	p.Gauge("mdwd_up_seconds", "Seconds since the coordinator started.", time.Since(c.start).Seconds())
	p.Gauge("mdwd_coordinator", "1 on a cluster coordinator (0 or absent on a worker daemon).", 1)
	p.Gauge("mdwd_peers", "Cluster members on the hash ring, healthy or not.", float64(len(views)))
	p.Gauge("mdwd_peers_healthy", "Cluster members currently passing health probes.", float64(c.peers.HealthyCount()))
	p.Gauge("mdwd_shards_inflight", "Shards currently dispatched and unresolved.", float64(c.shardsInflight.Load()))
	p.Counter("mdwd_shard_hedges_total", "Hedge attempts raced against straggler shards.", float64(c.hedges.Load()))
	p.Counter("mdwd_shard_migrations_total", "Shards migrated off a dead or rejecting peer.", float64(c.migrations.Load()))
	p.Counter("mdwd_cache_hits", "Merged-result cache hits.", float64(hits))
	p.Counter("mdwd_cache_misses", "Merged-result cache misses.", float64(misses))
	p.Gauge("mdwd_cache_entries", "Merged-result cache entries resident in memory.", float64(entries))
	if c.journal != nil {
		p.Gauge("mdwd_journal_bytes", "Size of the coordinator's job journal.", float64(c.journal.Size()))
	}

	healthy := make([]obs.LabeledSample, 0, len(views))
	inflight := make([]obs.LabeledSample, 0, len(views))
	dispatched := make([]obs.LabeledSample, 0, len(views))
	brState := make([]obs.LabeledSample, 0, len(views))
	brOpens := make([]obs.LabeledSample, 0, len(views))
	for _, v := range views {
		labels := [][2]string{{"peer", v.URL}}
		h := 0.0
		if v.Healthy {
			h = 1
		}
		healthy = append(healthy, obs.LabeledSample{Labels: labels, Value: h})
		inflight = append(inflight, obs.LabeledSample{Labels: labels, Value: float64(v.Inflight)})
		dispatched = append(dispatched, obs.LabeledSample{Labels: labels, Value: float64(v.Dispatched)})
		s := 0.0
		switch v.Breaker {
		case "open":
			s = 1
		case "half-open":
			s = 2
		}
		brState = append(brState, obs.LabeledSample{Labels: labels, Value: s})
		brOpens = append(brOpens, obs.LabeledSample{Labels: labels, Value: float64(v.BreakerOpens)})
	}
	p.LabeledGauge("mdwd_peer_healthy", "Per-peer health mark (1 healthy, 0 down).", healthy)
	p.LabeledGauge("mdwd_peer_shards_inflight", "Shards currently dispatched to the peer.", inflight)
	p.LabeledGauge("mdwd_peer_shards_dispatched", "Shards dispatched to the peer over the coordinator's lifetime.", dispatched)
	p.LabeledGauge("mdwd_peer_breaker_state", "Per-peer circuit-breaker state (0 closed, 1 open, 2 half-open).", brState)
	p.LabeledGauge("mdwd_peer_breaker_opens_total", "Circuit-breaker trips per peer over the coordinator's lifetime.", brOpens)

	// Per-tenant front-door accounting, multi-tenant mode only (the
	// single-tenant exposition stays byte-compatible).
	if ts := c.cfg.Tenants; ts != nil {
		c.tmu.Lock()
		counters := make(map[string]tenantCounters, len(c.tenantsSeen))
		for name, tc := range c.tenantsSeen {
			counters[name] = *tc
		}
		c.tmu.Unlock()
		tenants := ts.Tenants()
		sample := func(get func(tc tenantCounters) float64) []obs.LabeledSample {
			out := make([]obs.LabeledSample, 0, len(tenants))
			for _, t := range tenants {
				out = append(out, obs.LabeledSample{
					Labels: [][2]string{{"tenant", t.Name}},
					Value:  get(counters[t.Name]),
				})
			}
			return out
		}
		p.LabeledGauge("mdwd_tenant_runs_total", "Run requests accepted per tenant.",
			sample(func(tc tenantCounters) float64 { return float64(tc.runs) }))
		p.LabeledGauge("mdwd_tenant_experiments_total", "Experiment requests accepted per tenant.",
			sample(func(tc tenantCounters) float64 { return float64(tc.experiments) }))
		p.LabeledGauge("mdwd_tenant_cache_hits", "Merged-result cache hits per tenant.",
			sample(func(tc tenantCounters) float64 { return float64(tc.hits) }))
		p.LabeledGauge("mdwd_tenant_cache_misses", "Merged-result cache misses per tenant.",
			sample(func(tc tenantCounters) float64 { return float64(tc.misses) }))
	}
}
