package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestProbeTimeout: a peer whose /healthz hangs must be marked unhealthy
// within the configured probe timeout, not the transport's (absent) one.
func TestProbeTimeout(t *testing.T) {
	hang := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-hang
	}))
	defer ts.Close()
	defer close(hang) // LIFO: unblock the handler before Close waits on it

	ps := NewPeerSet(nil)
	ps.SetProbeTimeout(100 * time.Millisecond)
	ps.Join(ts.URL)

	start := time.Now()
	ps.ProbeAll(context.Background(), &http.Client{})
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("probe of a hung peer took %s, want ~100ms", elapsed)
	}
	if ps.Healthy(ts.URL) {
		t.Fatal("hung peer still marked healthy after a timed-out probe")
	}
}

// TestProbeFlappingPeer: health marks follow the peer through down→up→down
// transitions, and mere probe failures never touch the dispatch breaker —
// a flapping /healthz must not eat the breaker's half-open trial budget.
func TestProbeFlappingPeer(t *testing.T) {
	var up atomic.Bool
	up.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	}))
	defer ts.Close()

	ps := NewPeerSet([]string{ts.URL})
	client := &http.Client{}
	for i, want := range []bool{true, false, true, false} {
		up.Store(want)
		ps.ProbeAll(context.Background(), client)
		if got := ps.Healthy(ts.URL); got != want {
			t.Fatalf("flap %d: Healthy = %v, want %v", i, got, want)
		}
		if !ps.AllowDispatch(ts.URL) {
			t.Fatalf("flap %d: probe outcomes leaked into the dispatch breaker", i)
		}
		ps.ReportDispatch(ts.URL, true) // close out the Allow
		if views := ps.Views(); views[0].Breaker != "closed" || views[0].BreakerOpens != 0 {
			t.Fatalf("flap %d: breaker %s (opens=%d), want closed/0",
				i, views[0].Breaker, views[0].BreakerOpens)
		}
	}
}

// TestProbeRacesDispatch: health probes running concurrently with dispatch
// accounting, breaker traffic, membership changes, and snapshots must be
// race-free (the -race harness is the assertion) and leave counters sane.
func TestProbeRacesDispatch(t *testing.T) {
	var flip atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if flip.Add(1)%3 == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	}))
	defer ts.Close()

	ps := NewPeerSet([]string{ts.URL})
	ps.SetProbeTimeout(500 * time.Millisecond)
	client := &http.Client{}

	var probes, dispatchers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		probes.Add(1)
		go func() {
			defer probes.Done()
			for {
				select {
				case <-stop:
					return
				default:
					ps.ProbeAll(context.Background(), client)
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		dispatchers.Add(1)
		go func(g int) {
			defer dispatchers.Done()
			for i := 0; i < 200; i++ {
				if ps.AllowDispatch(ts.URL) {
					release := ps.beginShard(ts.URL)
					ps.ReportDispatch(ts.URL, i%5 != 0)
					release()
				}
				ps.Healthy(ts.URL)
				ps.Views()
				ps.Candidates("k")
				if i%50 == 0 {
					ps.Join(ts.URL) // idempotent re-join mid-traffic
				}
			}
		}(g)
	}
	dispatchers.Wait()
	close(stop)
	probes.Wait()

	views := ps.Views()
	if len(views) != 1 {
		t.Fatalf("peer set grew to %d entries from idempotent joins", len(views))
	}
	if views[0].Inflight != 0 {
		t.Fatalf("inflight = %d after all dispatches released", views[0].Inflight)
	}
	if views[0].Dispatched == 0 {
		t.Fatal("no dispatch was admitted during the race")
	}
}
