package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mdworm/internal/core"
	"mdworm/internal/service"
	"mdworm/internal/stats"
)

// The shard dispatcher.
//
// One shard = one canonical configuration = one /v1/run on some worker. The
// consistent-hash ring names the shard's owner; the dispatcher walks the
// owner's ring-successor sequence when the owner is down or dies mid-run
// (migration), optionally races one bounded hedge attempt against a straggler,
// and deduplicates concurrent requests for the same hash through a
// singleflight table. While a shard is in flight its worker's checkpoint blob
// is mirrored into coordinator memory, so a worker killed without warning
// (kill -9 — its disk unreachable) still leaves the coordinator a blob to
// resume the migrated shard from. Determinism makes every path — scratch
// re-run, checkpoint resume, hedge winner — produce byte-identical results.

// shardResult is one resolved shard: the worker's raw response body (for
// forwarding through /v1/run verbatim) plus its decoded measurement.
type shardResult struct {
	body   []byte
	res    stats.Results
	cycles int64
}

// call is one in-flight singleflight entry.
type call struct {
	done chan struct{}
	res  shardResult
	err  error
}

// mirror holds the latest checkpoint blob pulled from a shard's worker.
type mirror struct {
	mu   sync.Mutex
	blob []byte
}

func (m *mirror) set(b []byte) {
	if len(b) == 0 {
		return
	}
	m.mu.Lock()
	m.blob = b
	m.mu.Unlock()
}

func (m *mirror) get() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.blob
}

// retryableError marks a shard failure as infrastructure-transient:
// repeating the identical request (after peers heal or breakers close) can
// succeed. Config-level failures (deadlock, invariant violation, budget)
// are never wrapped in it.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// IsRetryable reports whether err represents a transient cluster condition
// (dead peers, exhausted attempt budgets, timeouts) rather than a property
// of the request itself.
func IsRetryable(err error) bool {
	var re *retryableError
	return errors.As(err, &re) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// resolveShard resolves one canonical config through the cluster: cache,
// then singleflight, then dispatch. ctx is the requesting client's context —
// it bounds this caller's wait, never the shard itself, which (like a
// single-node job whose client hung up) runs to completion and populates the
// cache and journal for whoever asks next. deadlineMillis, when > 0, is the
// originating client's total budget, forwarded verbatim to workers (where
// it can become a deterministic cycle budget); under singleflight the first
// caller's value rides the shard.
func (c *Coordinator) resolveShard(ctx context.Context, hash string, canon core.Config, deadlineMillis int64) (shardResult, error) {
	if body, ok := c.cache.Get(hash); ok {
		return decodeShard(body)
	}
	c.mu.Lock()
	if cl, ok := c.inflight[hash]; ok {
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.res, cl.err
		case <-ctx.Done():
			return shardResult{}, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[hash] = cl
	c.mu.Unlock()

	go func() {
		cl.res, cl.err = c.runShard(hash, canon, deadlineMillis)
		c.mu.Lock()
		delete(c.inflight, hash)
		c.mu.Unlock()
		close(cl.done)
	}()
	select {
	case <-cl.done:
		return cl.res, cl.err
	case <-ctx.Done():
		return shardResult{}, ctx.Err()
	}
}

// runShard executes one shard to completion: primary attempt sequence on the
// ring owner, at most one hedge sequence on the next ring successor after
// HedgeAfter without a result, first success wins. Exactly one done (or
// failed) journal record is written per shard, here and only here — attempt
// sequences write only RecShard dispatch-audit records.
func (c *Coordinator) runShard(hash string, canon core.Config, deadlineMillis int64) (shardResult, error) {
	c.shardsInflight.Add(1)
	defer c.shardsInflight.Add(-1)

	m := &mirror{}
	type outcome struct {
		res shardResult
		err error
	}
	results := make(chan outcome, 2)
	launch := func(start int) {
		go func() {
			res, err := c.attemptFrom(hash, canon, start, m, deadlineMillis)
			results <- outcome{res, err}
		}()
	}
	launch(0)
	outstanding := 1
	var hedge <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	var lastErr error
	for outstanding > 0 {
		select {
		case out := <-results:
			outstanding--
			if out.err == nil {
				c.finishShard(hash, nil)
				c.cache.Put(hash, out.res.body)
				return out.res, nil
			}
			lastErr = out.err
		case <-hedge:
			hedge = nil
			c.hedges.Add(1)
			c.journalAppend(service.JournalRec{Kind: recShardDispatch, Hash: hash,
				JobKind: "shard", Error: "hedge"})
			launch(1)
			outstanding++
		}
	}
	c.finishShard(hash, lastErr)
	return shardResult{}, lastErr
}

// finishShard writes the shard's single terminal journal record (a
// coordinator-private kind, skipped on replay — see coordinator.go).
func (c *Coordinator) finishShard(hash string, err error) {
	rec := service.JournalRec{Kind: recShardDone, Hash: hash, JobKind: "shard"}
	if err != nil {
		rec.Kind = recShardFailed
		rec.Error = err.Error()
	}
	c.journalAppend(rec)
}

// Attempt verdicts.
type verdict int

const (
	vOK      verdict = iota
	vRetry           // transient on this peer (busy, run still in flight): retry same peer
	vMigrate         // peer dead or rejecting: mark down, move to next ring successor
	vFatal           // the config itself fails (deadlock, invariant): stop
)

// attemptFrom walks the shard's candidate sequence starting at the given
// ring-successor offset, retrying transient rejections on the same peer and
// migrating past dead peers with the latest mirrored checkpoint attached.
// Every candidate passes two gates: the health mark (probe liveness) and
// the circuit breaker (dispatch outcomes). A healthy peer behind an open
// breaker is waited out, not routed around permanently — its window will
// admit a half-open trial. With no healthy peer left the shard degrades to
// running locally on the coordinator — never a wrong answer, only a colder
// cache.
func (c *Coordinator) attemptFrom(hash string, canon core.Config, start int, m *mirror, deadlineMillis int64) (shardResult, error) {
	cands := c.peers.Candidates(hash)
	idx := start
	budget := 2*len(cands) + 6 // attempts, not peers: bounded even with retries
	var lastErr error
	breakerBlocked := false // last loop pass found only breaker-open peers
	for attempt := 0; attempt < budget; attempt++ {
		peer := ""
		healthyButOpen := false
		for k := 0; k < len(cands); k++ {
			p := cands[(idx+k)%max(len(cands), 1)]
			if !c.peers.Healthy(p) {
				continue
			}
			if !c.peers.AllowDispatch(p) {
				healthyButOpen = true
				continue
			}
			peer = p
			idx = idx + k
			break
		}
		if peer == "" {
			if !healthyButOpen {
				return c.runLocal(hash, canon)
			}
			// Every healthy candidate is breaker-blocked: the peers are
			// alive, so wait until the earliest window elapses (plus a tick,
			// so the next pass is admitted a half-open trial) rather than
			// burning the budget on blind fixed-delay retries. No running
			// window means a trial is in flight elsewhere — poll for its
			// verdict at the ordinary retry cadence.
			lastErr = fmt.Errorf("all healthy peers breaker-open")
			breakerBlocked = true
			wait := c.peers.BreakerWait(cands)
			if wait <= 0 {
				wait = c.retryDelay()
			}
			select {
			case <-time.After(wait + time.Millisecond):
			case <-c.baseCtx.Done():
				return shardResult{}, &retryableError{err: c.baseCtx.Err()}
			}
			continue
		}
		breakerBlocked = false
		// attempt() reports the dispatch outcome to the peer's breaker on
		// every verdict; only health marks are maintained here.
		res, v, err := c.attempt(peer, hash, canon, m, deadlineMillis)
		switch v {
		case vOK:
			c.peers.markHealth(peer, true)
			return res, nil
		case vRetry:
			// Busy is not an infrastructure failure; the breaker stays closed.
			lastErr = err
			time.Sleep(c.retryDelay())
		case vMigrate:
			lastErr = err
			c.peers.markHealth(peer, false)
			c.migrations.Add(1)
			c.journalAppend(service.JournalRec{Kind: recShardDispatch, Hash: hash,
				JobKind: "shard", Peer: peer, Error: "migrate: " + err.Error()})
			idx++
		case vFatal:
			return shardResult{}, err
		}
	}
	if breakerBlocked {
		// The budget ran out with live peers still behind open breakers.
		// Degrade to a local run — never a wrong answer, only a colder
		// cache — instead of failing a shard mid-sweep over backoff timing.
		return c.runLocal(hash, canon)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("attempt budget exhausted")
	}
	return shardResult{}, &retryableError{err: fmt.Errorf("cluster: shard %s: %w", hash, lastErr)}
}

// retryDelay is the pause before re-asking a busy peer.
func (c *Coordinator) retryDelay() time.Duration {
	if c.cfg.RetryDelay > 0 {
		return c.cfg.RetryDelay
	}
	return 250 * time.Millisecond
}

// attempt dispatches the shard to one peer and classifies the outcome. While
// the request is in flight, the peer's checkpoint blob for this hash is
// polled into the mirror so a later migration can resume mid-run.
//
// Every AllowDispatch admission is answered here, exactly once, before
// attempt returns — otherwise a consumed half-open trial would pin the
// breaker half-open and wedge the peer out of dispatch forever. The mapping:
// an answered request — vOK, vRetry (429/504: busy is healthy), or vFatal
// (an authoritative 4xx) — is breaker Success; vMigrate is Failure; a local
// error before the wire releases the admission without a verdict.
func (c *Coordinator) attempt(peer, hash string, canon core.Config, m *mirror, deadlineMillis int64) (res shardResult, v verdict, err error) {
	answered := false // the peer produced an HTTP response
	defer func() {
		switch {
		case v == vMigrate:
			c.peers.ReportDispatch(peer, false)
		case answered:
			c.peers.ReportDispatch(peer, true)
		default:
			c.peers.ReleaseDispatch(peer)
		}
	}()
	c.journalAppend(service.JournalRec{Kind: recShardDispatch, Hash: hash, JobKind: "shard", Peer: peer})
	release := c.peers.beginShard(peer)
	defer release()

	// Checkpoint mirroring runs for the attempt's lifetime.
	mirrorDone := make(chan struct{})
	defer close(mirrorDone)
	go c.mirrorLoop(peer, hash, m, mirrorDone)

	reqBody, err := json.Marshal(service.RunRequest{RawConfig: &canon, Resume: m.get(),
		DeadlineMillis: deadlineMillis})
	if err != nil {
		return shardResult{}, vFatal, err
	}
	ctx, cancel := context.WithTimeout(c.baseCtx, c.dispatchTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/run", bytes.NewReader(reqBody))
	if err != nil {
		return shardResult{}, vFatal, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.cfg.WorkerKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.cfg.WorkerKey)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return shardResult{}, vMigrate, fmt.Errorf("peer %s: %w", peer, err)
	}
	answered = true
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return shardResult{}, vMigrate, fmt.Errorf("peer %s: %w", peer, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		// End-to-end integrity: the worker stamps a body digest; a mismatch
		// means the path corrupted bytes in flight (or an imposter answered),
		// and the same request is retried elsewhere. The header is mandatory
		// on a 200: in-flight corruption can mangle the header name itself,
		// and a missing digest must read as "unverifiable", never "verified" —
		// corruption that still parses as valid JSON must not poison the cache.
		want := resp.Header.Get("X-Mdwd-Body-SHA256")
		if want == "" {
			return shardResult{}, vMigrate, fmt.Errorf("peer %s: missing body digest header", peer)
		}
		if want != service.BodySHA(body) {
			return shardResult{}, vMigrate, fmt.Errorf("peer %s: body integrity mismatch", peer)
		}
		res, err := decodeShard(body)
		if err != nil {
			return shardResult{}, vMigrate, fmt.Errorf("peer %s: %w", peer, err)
		}
		return res, vOK, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		time.Sleep(retryAfter(resp, c.retryDelay()))
		return shardResult{}, vRetry, fmt.Errorf("peer %s busy", peer)
	case resp.StatusCode == http.StatusGatewayTimeout:
		// The worker's run outlived its wait deadline but continues server-side;
		// re-asking eventually returns its cache hit.
		return shardResult{}, vRetry, fmt.Errorf("peer %s still running %s", peer, hash)
	case resp.StatusCode >= 500:
		return shardResult{}, vMigrate, fmt.Errorf("peer %s: %s: %s", peer, resp.Status, apiErrMsg(body))
	default:
		// 4xx: the configuration itself is rejected (deadlock, invariant
		// violation, budget) — no other peer will disagree.
		return shardResult{}, vFatal, fmt.Errorf("peer %s: %s: %s", peer, resp.Status, apiErrMsg(body))
	}
}

// mirrorLoop polls the peer's checkpoint blob for the shard until done.
func (c *Coordinator) mirrorLoop(peer, hash string, m *mirror, done <-chan struct{}) {
	every := c.cfg.MirrorEvery
	if every <= 0 {
		every = 250 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-c.baseCtx.Done():
			return
		case <-t.C:
			if c.peers.BreakerOpen(peer) {
				// The peer's dispatch path is failing; skip the poll rather
				// than consume its half-open trial on a checkpoint fetch.
				continue
			}
			ctx, cancel := context.WithTimeout(c.baseCtx, every)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet,
				peer+"/v1/cluster/checkpoint/"+hash, nil)
			if err != nil {
				cancel()
				return
			}
			if c.cfg.WorkerKey != "" {
				req.Header.Set("Authorization", "Bearer "+c.cfg.WorkerKey)
			}
			resp, err := c.client.Do(req)
			if err != nil {
				cancel()
				continue
			}
			if resp.StatusCode == http.StatusOK {
				if blob, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20)); err == nil {
					m.set(blob)
				}
			}
			resp.Body.Close()
			cancel()
		}
	}
}

// runLocal is the no-healthy-peers fallback: the coordinator runs the shard
// itself, producing the identical response body a worker would have.
func (c *Coordinator) runLocal(hash string, canon core.Config) (shardResult, error) {
	c.journalAppend(service.JournalRec{Kind: recShardDispatch, Hash: hash,
		JobKind: "shard", Peer: "local"})
	sim, err := core.New(canon)
	if err != nil {
		return shardResult{}, err
	}
	res, err := sim.Run()
	if err != nil {
		return shardResult{}, err
	}
	body, err := json.Marshal(service.RunResponse{Hash: hash, Config: canon,
		Results: res, SimulatedCycles: sim.Now()})
	if err != nil {
		return shardResult{}, err
	}
	return shardResult{body: body, res: res, cycles: sim.Now()}, nil
}

// dispatchTimeout bounds one attempt's POST /v1/run round trip.
func (c *Coordinator) dispatchTimeout() time.Duration {
	if c.cfg.DispatchTimeout > 0 {
		return c.cfg.DispatchTimeout
	}
	return 5 * time.Minute
}

// decodeShard parses a worker's RunResponse body.
func decodeShard(body []byte) (shardResult, error) {
	var rr service.RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		return shardResult{}, fmt.Errorf("cluster: bad run response: %w", err)
	}
	return shardResult{body: body, res: rr.Results, cycles: rr.SimulatedCycles}, nil
}

// retryAfter extracts a bounded Retry-After hint.
func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			d := time.Duration(secs) * time.Second
			if d > 5*time.Second {
				d = 5 * time.Second
			}
			return d
		}
	}
	return fallback
}

// apiErrMsg extracts the message of a structured error body, or echoes the
// raw body truncated.
func apiErrMsg(body []byte) string {
	var e struct {
		Error struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error.Message != "" {
		return e.Error.Message
	}
	if len(body) > 200 {
		body = body[:200]
	}
	return string(bytes.TrimSpace(body))
}
