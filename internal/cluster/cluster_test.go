package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdworm/internal/core"
	"mdworm/internal/experiments"
	"mdworm/internal/service"
)

// startWorker spins up one in-process worker daemon behind httptest.
func startWorker(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(10 * time.Second)
	})
	return s, ts
}

// startCoordinator spins up a coordinator over the given peer URLs.
func startCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 100 * time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

func tinyRunBody(seed uint64) string {
	return fmt.Sprintf(`{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.001,"seed":%d}}`, seed)
}

func postRun(t *testing.T, base, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestClusterRunByteIdentical: a /v1/run through the coordinator returns the
// byte-identical body a worker returns directly, and repeats hit the
// coordinator's cache.
func TestClusterRunByteIdentical(t *testing.T) {
	_, w1 := startWorker(t, service.Config{})
	_, coord := startCoordinator(t, Config{Peers: []string{w1.URL}})

	resp, direct := postRun(t, w1.URL, tinyRunBody(7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct run: %s: %s", resp.Status, direct)
	}
	resp, merged := postRun(t, coord.URL, tinyRunBody(7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinated run: %s: %s", resp.Status, merged)
	}
	if !bytes.Equal(direct, merged) {
		t.Fatalf("coordinator body differs from worker body:\n%s\nvs\n%s", merged, direct)
	}
	resp, again := postRun(t, coord.URL, tinyRunBody(7))
	if resp.Header.Get("X-Mdwd-Cache") != "hit" {
		t.Errorf("second coordinated run: cache = %q, want hit", resp.Header.Get("X-Mdwd-Cache"))
	}
	if !bytes.Equal(direct, again) {
		t.Fatalf("cached coordinator body differs from worker body")
	}
}

// TestClusterRunLocalFallback: with no peers at all the coordinator runs the
// shard itself and still answers byte-identically.
func TestClusterRunLocalFallback(t *testing.T) {
	_, w1 := startWorker(t, service.Config{})
	_, coord := startCoordinator(t, Config{})

	resp, direct := postRun(t, w1.URL, tinyRunBody(9))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct run: %s: %s", resp.Status, direct)
	}
	resp, local := postRun(t, coord.URL, tinyRunBody(9))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback run: %s: %s", resp.Status, local)
	}
	if !bytes.Equal(direct, local) {
		t.Fatalf("local-fallback body differs from worker body")
	}
}

// streamExperiment posts one experiment and returns the ordered point tags,
// the concatenated table text, and the done event.
func streamExperiment(t *testing.T, base, id string) (tags []string, tableText string, done service.StreamEvent) {
	t.Helper()
	body := fmt.Sprintf(`{"id":%q,"quick":true}`, id)
	resp, err := http.Post(base+"/v1/experiment", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var tables strings.Builder
	for sc.Scan() {
		var ev service.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "point":
			if ev.Err != "" {
				t.Fatalf("point %s failed: %s", ev.Tag, ev.Err)
			}
			tags = append(tags, ev.Tag)
		case "table":
			tables.WriteString(ev.Text)
		case "done":
			done = ev
		case "error":
			t.Fatalf("experiment failed: %s", ev.Err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return tags, tables.String(), done
}

// TestClusterExperimentByteIdentical: an experiment sharded across two
// workers renders the byte-identical tables a single daemon renders, and the
// merged point stream arrives in deterministic table order.
func TestClusterExperimentByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep")
	}
	_, single := startWorker(t, service.Config{Workers: 4})
	_, w1 := startWorker(t, service.Config{Workers: 2})
	_, w2 := startWorker(t, service.Config{Workers: 2})
	c, coord := startCoordinator(t, Config{Peers: []string{w1.URL, w2.URL}})

	wantTags, wantTables, wantDone := streamExperiment(t, single.URL, "e1")
	gotTags, gotTables, gotDone := streamExperiment(t, coord.URL, "e1")
	if gotTables != wantTables {
		t.Fatalf("cluster tables differ from single-node tables:\n--- cluster ---\n%s\n--- single ---\n%s", gotTables, wantTables)
	}
	if gotDone.Points != wantDone.Points || gotDone.Cycles != wantDone.Cycles {
		t.Errorf("done event: cluster points=%d cycles=%d, single points=%d cycles=%d",
			gotDone.Points, gotDone.Cycles, wantDone.Points, wantDone.Cycles)
	}
	if len(gotTags) != len(wantTags) {
		t.Fatalf("cluster streamed %d point events, single node %d", len(gotTags), len(wantTags))
	}
	// Deterministic stream order: the merged point order must be exactly the
	// planned table order, independent of shard completion order.
	planned, err := experiments.Plan([]string{"e1"}, experiments.Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := experiments.PlannedTags(planned); !slicesEqual(gotTags, want) {
		t.Fatalf("cluster point order %v, planned order %v", gotTags, want)
	}
	// Both workers should have carried shards: consistent hashing spreads 9
	// distinct config hashes across 2 peers with overwhelming probability.
	views := c.peers.Views()
	for _, v := range views {
		if v.Dispatched == 0 {
			t.Errorf("peer %s never received a shard", v.URL)
		}
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// deadPeer is an endpoint that passes health probes but aborts every
// /v1/run connection — the shape of a worker that dies the moment work
// lands on it.
func deadPeer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Fatal("no hijacker")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}))
	t.Cleanup(ts.Close)
	return ts
}

// seedOwnedBy searches for a tiny-run seed whose config hash the given peer
// owns on a ring of the given members.
func seedOwnedBy(t *testing.T, owner string, members []string) (uint64, string) {
	t.Helper()
	ring := NewRing(0)
	for _, m := range members {
		ring.Add(m)
	}
	for seed := uint64(1); seed < 200; seed++ {
		var req service.RunRequest
		if err := json.Unmarshal([]byte(tinyRunBody(seed)), &req); err != nil {
			t.Fatal(err)
		}
		cfg, err := req.Config.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		hash, _, err := service.Hash(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(hash) == owner {
			return seed, hash
		}
	}
	t.Fatal("no seed found whose shard the peer owns")
	return 0, ""
}

// TestClusterMigration: a shard whose ring owner aborts the connection
// migrates to the surviving peer and still returns the byte-identical
// result.
func TestClusterMigration(t *testing.T) {
	dead := deadPeer(t)
	_, live := startWorker(t, service.Config{})
	c, coord := startCoordinator(t, Config{Peers: []string{dead.URL, live.URL}})

	seed, _ := seedOwnedBy(t, dead.URL, []string{dead.URL, live.URL})
	resp, direct := postRun(t, live.URL, tinyRunBody(seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct run: %s: %s", resp.Status, direct)
	}
	resp, merged := postRun(t, coord.URL, tinyRunBody(seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinated run: %s: %s", resp.Status, merged)
	}
	if !bytes.Equal(direct, merged) {
		t.Fatalf("migrated shard result differs from direct result")
	}
	if c.migrations.Load() == 0 {
		t.Errorf("migration counter is 0 after a dead-owner dispatch")
	}
}

// TestClusterHedge: a shard stuck on a slow owner is hedged onto the next
// ring successor after HedgeAfter, and the hedge's result wins.
func TestClusterHedge(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		time.Sleep(5 * time.Second)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(slow.Close)
	_, live := startWorker(t, service.Config{})
	c, coord := startCoordinator(t, Config{
		Peers:      []string{slow.URL, live.URL},
		HedgeAfter: 100 * time.Millisecond,
	})

	seed, _ := seedOwnedBy(t, slow.URL, []string{slow.URL, live.URL})
	resp, direct := postRun(t, live.URL, tinyRunBody(seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct run: %s: %s", resp.Status, direct)
	}
	start := time.Now()
	resp, merged := postRun(t, coord.URL, tinyRunBody(seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinated run: %s: %s", resp.Status, merged)
	}
	if !bytes.Equal(direct, merged) {
		t.Fatalf("hedged shard result differs from direct result")
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Errorf("hedge did not win: run took %s (slow peer holds for 5s)", elapsed)
	}
	if c.hedges.Load() != 1 {
		t.Errorf("hedge counter = %d, want 1", c.hedges.Load())
	}
}

// TestClusterResumeBlobOverWire: a worker accepts a checkpoint blob in the
// run request and the resumed result is byte-identical to a scratch run —
// the wire form of shard migration. A blob whose embedded config mismatches
// the request degrades to scratch, never a wrong answer.
func TestClusterResumeBlobOverWire(t *testing.T) {
	_, w1 := startWorker(t, service.Config{})

	var req service.RunRequest
	if err := json.Unmarshal([]byte(tinyRunBody(11)), &req); err != nil {
		t.Fatal(err)
	}
	cfg, err := req.Config.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	_, canon, err := service.Hash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := core.New(canon)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	crashed.RunCheckpointed(500, func(data []byte, cycle int64) error {
		blob = data
		return fmt.Errorf("crash")
	})
	if blob == nil {
		t.Fatal("no checkpoint taken")
	}

	resp, scratch := postRun(t, w1.URL, tinyRunBody(11))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scratch run: %s: %s", resp.Status, scratch)
	}

	// A second worker (cold cache) resumes from the blob.
	_, w2 := startWorker(t, service.Config{})
	body, err := json.Marshal(service.RunRequest{RawConfig: &canon, Resume: blob})
	if err != nil {
		t.Fatal(err)
	}
	resp, resumed := postRun(t, w2.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed run: %s: %s", resp.Status, resumed)
	}
	if !bytes.Equal(scratch, resumed) {
		t.Fatalf("resumed result differs from scratch result")
	}

	// Mismatched blob: same blob, different config. Must degrade to scratch.
	var req2 service.RunRequest
	if err := json.Unmarshal([]byte(tinyRunBody(12)), &req2); err != nil {
		t.Fatal(err)
	}
	cfg2, err := req2.Config.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	_, canon2, err := service.Hash(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	resp, direct2 := postRun(t, w1.URL, tinyRunBody(12))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct run 2: %s", resp.Status)
	}
	body2, err := json.Marshal(service.RunRequest{RawConfig: &canon2, Resume: blob})
	if err != nil {
		t.Fatal(err)
	}
	_, w3 := startWorker(t, service.Config{})
	resp, mismatched := postRun(t, w3.URL, string(body2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mismatched-resume run: %s: %s", resp.Status, mismatched)
	}
	if !bytes.Equal(direct2, mismatched) {
		t.Fatalf("mismatched-blob run differs from scratch run (blob was not rejected)")
	}
}

// TestClusterJoinAndStatus: a worker joining at runtime lands on the ring
// and in /v1/cluster/status; bad joins are rejected.
func TestClusterJoinAndStatus(t *testing.T) {
	_, w1 := startWorker(t, service.Config{})
	_, coord := startCoordinator(t, Config{})

	resp, err := http.Post(coord.URL+"/v1/cluster/join", "application/json",
		strings.NewReader(fmt.Sprintf(`{"peer":%q}`, w1.URL)))
	if err != nil {
		t.Fatal(err)
	}
	var jr JoinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jr.Peers) != 1 || jr.Peers[0] != w1.URL {
		t.Fatalf("join response peers = %v, want [%s]", jr.Peers, w1.URL)
	}

	resp, err = http.Get(coord.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.HealthyPeers != 1 || len(st.Peers) != 1 || !st.Peers[0].Healthy {
		t.Fatalf("status after join: %+v", st)
	}

	resp, err = http.Post(coord.URL+"/v1/cluster/join", "application/json",
		strings.NewReader(`{"peer":"not-a-url"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad join: status %d, want 400", resp.StatusCode)
	}
}

// TestCoordinatorJournalExactlyOnce: every shard of a coordinated sweep gets
// exactly one terminal journal record, and the job-level records close out.
func TestCoordinatorJournalExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	_, w1 := startWorker(t, service.Config{})
	_, coord := startCoordinator(t, Config{Peers: []string{w1.URL}, CacheDir: dir})

	resp, body := postRun(t, coord.URL, tinyRunBody(21))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %s: %s", resp.Status, body)
	}
	hash := resp.Header.Get("X-Mdwd-Hash")
	if hash == "" {
		t.Fatal("no X-Mdwd-Hash header")
	}

	recs := readJournal(t, dir)
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Kind+"/"+r.JobKind+"/"+r.Hash]++
	}
	if n := counts[recShardDone+"/shard/"+hash]; n != 1 {
		t.Errorf("shard done records for %s: %d, want 1\njournal: %+v", hash, n, recs)
	}
	if n := counts["done/run/"+hash]; n != 1 {
		t.Errorf("job done records for %s: %d, want 1", hash, n)
	}
}

func readJournal(t *testing.T, dir string) []service.JournalRec {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "journal.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []service.JournalRec
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec service.JournalRec
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out
}
