// Package cluster implements mdwd's coordinator/worker scale-out: a
// coordinator daemon that accepts the unchanged /v1/run and /v1/experiment
// API, shards work across peer worker daemons by consistent hashing on the
// canonical config hash (so each worker's result cache stays hot on a
// disjoint key range), streams merged experiment output in deterministic
// point order, and survives worker death mid-shard by migrating the shard —
// resuming from the last mirrored checkpoint blob — to a healthy peer.
// Determinism end to end keeps the merged output byte-identical to a
// single-node run for any peer count, any failure schedule.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultReplicas is the virtual-node count per peer: enough that the load
// split across a handful of peers stays within a few percent of even, small
// enough that ring rebuilds stay trivial.
const defaultReplicas = 128

// Ring is a consistent-hash ring over peer names with virtual nodes. A key
// is owned by the peer whose nearest clockwise virtual node follows the
// key's point; adding or removing one peer therefore remaps only the keys
// adjacent to that peer's virtual nodes — about 1/N of the space — leaving
// every other worker's cache locality intact.
//
// Ring is not goroutine-safe; PeerSet guards it.
type Ring struct {
	replicas int
	vnodes   []vnode // sorted by point
	peers    map[string]bool
}

type vnode struct {
	point uint64
	peer  string
}

// NewRing builds an empty ring with the given virtual-node count per peer
// (0 = defaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	return &Ring{replicas: replicas, peers: make(map[string]bool)}
}

// ringPoint hashes a string to its position on the ring. sha256 rather than
// a fast non-cryptographic hash: ring placement is computed once per peer
// join and once per shard, and the even distribution matters more than the
// nanoseconds.
func ringPoint(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// Add inserts a peer (idempotent).
func (r *Ring) Add(peer string) {
	if r.peers[peer] {
		return
	}
	r.peers[peer] = true
	for i := 0; i < r.replicas; i++ {
		r.vnodes = append(r.vnodes, vnode{ringPoint(fmt.Sprintf("%s#%d", peer, i)), peer})
	}
	sort.Slice(r.vnodes, func(a, b int) bool { return r.vnodes[a].point < r.vnodes[b].point })
}

// Remove deletes a peer (idempotent). Only the removed peer's keys remap.
func (r *Ring) Remove(peer string) {
	if !r.peers[peer] {
		return
	}
	delete(r.peers, peer)
	live := r.vnodes[:0]
	for _, v := range r.vnodes {
		if v.peer != peer {
			live = append(live, v)
		}
	}
	r.vnodes = live
}

// Len returns the number of peers on the ring.
func (r *Ring) Len() int { return len(r.peers) }

// Peers returns the member names in sorted order.
func (r *Ring) Peers() []string {
	out := make([]string, 0, len(r.peers))
	for p := range r.peers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Owner returns the peer owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	return r.vnodes[r.search(key)].peer
}

// Successors returns up to n distinct peers in ring order starting at the
// key's owner — the failover sequence of a shard: the owner first, then the
// peers that would own the key were the ones before them removed.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.search(key)
	for i := 0; i < len(r.vnodes) && len(out) < n; i++ {
		p := r.vnodes[(start+i)%len(r.vnodes)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// search returns the index of the first virtual node at or clockwise of the
// key's point.
func (r *Ring) search(key string) int {
	pt := ringPoint(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].point >= pt })
	if i == len(r.vnodes) {
		i = 0
	}
	return i
}
