package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdworm/internal/core"
	"mdworm/internal/experiments"
	"mdworm/internal/service"
	"mdworm/internal/stats"
)

// Journal record kinds private to the coordinator. All three are unknown to
// ReplayJournal and deliberately skipped on replay: shard records are the
// fleet's dispatch audit trail ("which peer ran which point, how often"),
// while recoverability rides on the job-level accepted/done records. The
// terminal shard kinds are distinct from "done"/"failed" so a /v1/run job —
// whose job hash equals its single shard's hash — cannot have its pending
// state closed out by its shard's completion record alone.
const (
	recShardDispatch = service.RecShard
	recShardDone     = "shard_done"
	recShardFailed   = "shard_failed"
)

// Config parameterizes a coordinator.
type Config struct {
	// Peers are the initial worker base URLs (e.g. "http://10.0.0.2:7077");
	// more may join at runtime through POST /v1/cluster/join.
	Peers []string
	// CacheDir, when non-empty, persists the coordinator's job journal
	// there, giving the fleet "never lost, never double-run" across
	// coordinator restarts.
	CacheDir string
	// CacheEntries bounds the in-memory merged-result cache (0 = 1024).
	CacheEntries int
	// SweepWorkers bounds how many shards one experiment keeps in flight
	// (0 = 4 per peer + 4, refreshed per sweep).
	SweepWorkers int
	// HedgeAfter, when > 0, races one extra attempt on the next ring
	// successor for a shard that has produced no result after this long —
	// bounded straggler insurance, at most one hedge per shard. 0 disables.
	HedgeAfter time.Duration
	// HeartbeatEvery is the peer health-probe period (0 = 1s).
	HeartbeatEvery time.Duration
	// MirrorEvery is the checkpoint-mirror poll period for in-flight shards
	// (0 = 250ms).
	MirrorEvery time.Duration
	// DispatchTimeout bounds one shard attempt's /v1/run round trip
	// (0 = 5m).
	DispatchTimeout time.Duration
	// RetryDelay is the pause before re-asking a busy peer (0 = 250ms).
	RetryDelay time.Duration
	// JournalMaxBytes mirrors service.Config.JournalMaxBytes for the
	// coordinator's journal (0 = service.DefaultJournalMaxBytes; negative
	// disables size-triggered compaction).
	JournalMaxBytes int64
	// Tenants, when non-nil, requires every job-creating request to
	// authenticate with "Authorization: Bearer <key>" against this set,
	// attributes journal records to tenants, and breaks request counters out
	// per tenant on /metrics. Nil = open front door, exactly as before.
	// Worker-side fair-share scheduling is the workers' own -tenants
	// configuration; the coordinator only authenticates and attributes.
	Tenants *service.TenantSet
	// WorkerKey, when non-empty, is presented as "Authorization: Bearer
	// <key>" on every shard dispatch and checkpoint-mirror request, so the
	// workers themselves may run with -tenants (the coordinator then occupies
	// one configured tenant slot there, typically high-weight).
	WorkerKey string
	// Transport, when non-nil, underlies every outbound request — dispatch,
	// checkpoint mirror, health probe. It is the chaos-injection seam: wrap
	// it with internal/chaos to subject the coordinator's view of the fleet
	// to seeded faults. Nil = http.DefaultTransport.
	Transport http.RoundTripper
	// Seed feeds the per-peer breaker jitter PRNGs (each peer's stream is
	// Seed xor a hash of its URL), making backoff schedules reproducible.
	Seed int64
	// BreakerThreshold is the consecutive dispatch failures that open a
	// peer's circuit breaker (0 = 3); BreakerBaseDelay is the first open
	// window (0 = 500ms), doubling per failed half-open trial up to
	// BreakerMaxDelay (0 = 30s).
	BreakerThreshold int
	BreakerBaseDelay time.Duration
	BreakerMaxDelay  time.Duration
	// ProbeTimeout bounds one peer health probe (0 = 2s).
	ProbeTimeout time.Duration
}

// Coordinator is the cluster front end: the same /v1 API surface as a
// single mdwd daemon, backed by a fleet of them.
type Coordinator struct {
	cfg     Config
	peers   *PeerSet
	cache   *service.Cache
	journal *service.Journal // nil without a cache directory
	client  *http.Client
	mux     *http.ServeMux
	start   time.Time

	baseCtx context.Context
	stop    context.CancelFunc

	mu       sync.Mutex
	inflight map[string]*call

	// tmu guards tenantsSeen, the per-tenant request counters (multi-tenant
	// mode only).
	tmu         sync.Mutex
	tenantsSeen map[string]*tenantCounters

	shardsInflight atomic.Int64
	hedges         atomic.Int64
	migrations     atomic.Int64
	jobSeq         atomic.Int64

	draining atomic.Bool
	jobs     sync.WaitGroup
}

// New builds a coordinator, recovers its journal, and starts the peer
// health-probe loop.
func New(cfg Config) (*Coordinator, error) {
	cache, err := service.NewCache(max(cfg.CacheEntries, 1024), "")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	peers := NewPeerSet(nil)
	peers.ConfigureBreakers(breakerConfig{Threshold: cfg.BreakerThreshold,
		BaseDelay: cfg.BreakerBaseDelay, MaxDelay: cfg.BreakerMaxDelay}, cfg.Seed)
	peers.SetProbeTimeout(cfg.ProbeTimeout)
	for _, u := range cfg.Peers {
		peers.Join(u)
	}
	c := &Coordinator{
		cfg:      cfg,
		peers:    peers,
		cache:    cache,
		client:   &http.Client{Transport: cfg.Transport},
		mux:      http.NewServeMux(),
		start:    time.Now(),
		baseCtx:  ctx,
		stop:     cancel,
		inflight: make(map[string]*call),

		tenantsSeen: make(map[string]*tenantCounters),
	}
	if cfg.CacheDir != "" {
		if err := c.recover(); err != nil {
			cancel()
			return nil, err
		}
	}
	c.mux.HandleFunc("POST /v1/run", c.handleRun)
	c.mux.HandleFunc("POST /v1/experiment", c.handleExperiment)
	c.mux.HandleFunc("GET /v1/experiments", c.handleExperiments)
	c.mux.HandleFunc("POST /v1/cluster/join", c.handleJoin)
	c.mux.HandleFunc("GET /v1/cluster/status", c.handleStatus)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	go c.probeLoop()
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the probe loop and background machinery. In-flight shard
// attempts are cut off at their next context check.
func (c *Coordinator) Close() { c.stop() }

// BeginDrain rejects new job-creating requests with 503 while letting
// in-flight work finish.
func (c *Coordinator) BeginDrain() { c.draining.Store(true) }

// Drain stops intake and waits up to timeout for in-flight requests.
func (c *Coordinator) Drain(timeout time.Duration) bool {
	c.BeginDrain()
	done := make(chan struct{})
	go func() { c.jobs.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// probeLoop keeps peer health marks fresh.
func (c *Coordinator) probeLoop() {
	every := c.cfg.HeartbeatEvery
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
			c.peers.ProbeAll(c.baseCtx, c.client)
		}
	}
}

// journalAppend mirrors service.Server.journalAppend: durability for
// restarts, never a correctness dependency of the running coordinator.
func (c *Coordinator) journalAppend(rec service.JournalRec) {
	if c.journal == nil {
		return
	}
	_ = c.journal.Append(rec)
}

// recover replays the coordinator's journal and closes out what the previous
// process left behind: pending run jobs are re-dispatched in the background
// (worker caches make a re-dispatch of finished-but-unjournaled work a cheap
// cache hit), and pending experiments whose accepted record carries the full
// request are re-resolved headlessly — the sweep re-runs against warm worker
// caches and its completion is journaled, so a client that reconnects with
// the stream token resumes against finished work instead of a failed job.
// Only legacy records with no replayable request are failed outright.
func (c *Coordinator) recover() error {
	pending, err := service.ReplayJournal(c.cfg.CacheDir)
	if err != nil {
		return err
	}
	j, err := service.ResetJournal(c.cfg.CacheDir)
	if err != nil {
		return err
	}
	c.journal = j
	switch {
	case c.cfg.JournalMaxBytes > 0:
		j.SetMaxBytes(c.cfg.JournalMaxBytes)
	case c.cfg.JournalMaxBytes == 0:
		j.SetMaxBytes(service.DefaultJournalMaxBytes)
	}

	for _, p := range pending {
		switch {
		case p.JobKind == "experiment":
			var req service.ExperimentRequest
			if len(p.Config) == 0 || json.Unmarshal(p.Config, &req) != nil || req.ID == "" {
				c.journalAppend(service.JournalRec{Kind: service.RecFailed, Hash: p.Hash,
					JobKind: p.JobKind, Error: "interrupted by coordinator restart"})
				continue
			}
			c.journalAppend(service.JournalRec{Kind: service.RecAccepted, Hash: p.Hash,
				JobKind: "experiment", Config: p.Config})
			c.jobs.Add(1)
			go func() {
				defer c.jobs.Done()
				_, _, err := c.runSweep(c.baseCtx, req, func(service.StreamEvent) {})
				c.finishJob(req.ID, "experiment", err)
			}()
		case len(p.Config) == 0:
			c.journalAppend(service.JournalRec{Kind: service.RecFailed, Hash: p.Hash,
				JobKind: p.JobKind, Error: "journal carries no configuration for this job"})
		default:
			var canon core.Config
			if err := json.Unmarshal(p.Config, &canon); err != nil {
				c.journalAppend(service.JournalRec{Kind: service.RecFailed, Hash: p.Hash,
					JobKind: "run", Error: fmt.Sprintf("journaled config does not parse: %v", err)})
				continue
			}
			c.journalAppend(service.JournalRec{Kind: service.RecAccepted, Hash: p.Hash,
				JobKind: "run", Config: p.Config})
			hash := p.Hash
			c.jobs.Add(1)
			go func() {
				defer c.jobs.Done()
				_, err := c.resolveShard(c.baseCtx, hash, canon, 0)
				c.finishJob(hash, "run", err)
			}()
		}
	}
	return nil
}

// finishJob writes a job-level terminal record.
func (c *Coordinator) finishJob(hash, jobKind string, err error) {
	rec := service.JournalRec{Kind: service.RecDone, Hash: hash, JobKind: jobKind}
	if err != nil {
		rec.Kind = service.RecFailed
		rec.Error = err.Error()
	}
	c.journalAppend(rec)
}

// apiError mirrors the service package's error body so clients cannot tell
// coordinator and single daemon apart.
type apiError struct {
	Code              string `json:"code"`
	Message           string `json:"message"`
	Job               string `json:"job,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
	// Retryable tells clients whether repeating the identical request can
	// succeed — true for infrastructure weather (dead peers, deadlines,
	// draining), false for properties of the request itself.
	Retryable bool `json:"retryable,omitempty"`
}

func writeErr(w http.ResponseWriter, status int, e apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]apiError{"error": e})
}

// rejectDraining answers a job-creating request during shutdown.
func rejectDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusServiceUnavailable, apiError{
		Code: "draining", Message: "coordinator is draining", RetryAfterSeconds: 1,
		Retryable: true})
}

// tenantCounters is one tenant's request accounting at the coordinator
// front door.
type tenantCounters struct{ runs, experiments, hits, misses int64 }

// tenantFor authenticates a request against the coordinator's tenant set,
// mirroring the service-layer semantics: anonymous when no tenants are
// configured, structured 401 otherwise (already written when ok is false).
func (c *Coordinator) tenantFor(w http.ResponseWriter, r *http.Request) (t *service.Tenant, ok bool) {
	if c.cfg.Tenants == nil {
		return service.AnonymousTenant(), true
	}
	unauthorized := func(msg string) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="mdwd"`)
		writeErr(w, http.StatusUnauthorized, apiError{Code: "unauthorized", Message: msg})
	}
	h := r.Header.Get("Authorization")
	if h == "" {
		unauthorized(`missing Authorization header (want "Bearer <key>")`)
		return nil, false
	}
	scheme, key, found := strings.Cut(h, " ")
	key = strings.TrimSpace(key)
	if !found || !strings.EqualFold(scheme, "Bearer") || key == "" {
		unauthorized(`malformed Authorization header (want "Bearer <key>")`)
		return nil, false
	}
	t = c.cfg.Tenants.LookupKey(key)
	if t == nil {
		unauthorized("unknown API key")
		return nil, false
	}
	return t, true
}

// countTenant applies one accounting update for a tenant (multi-tenant mode
// only).
func (c *Coordinator) countTenant(t *service.Tenant, f func(*tenantCounters)) {
	if c.cfg.Tenants == nil {
		return
	}
	c.tmu.Lock()
	defer c.tmu.Unlock()
	tc := c.tenantsSeen[t.Name]
	if tc == nil {
		tc = &tenantCounters{}
		c.tenantsSeen[t.Name] = tc
	}
	f(tc)
}

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		rejectDraining(w)
		return
	}
	tn, ok := c.tenantFor(w, r)
	if !ok {
		return
	}
	var req service.RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_request", Message: err.Error()})
		return
	}
	var cfg core.Config
	if req.RawConfig != nil {
		cfg = *req.RawConfig
	} else {
		resolved, err := req.Config.Resolve()
		if err != nil {
			writeErr(w, http.StatusBadRequest, apiError{Code: "bad_config", Message: err.Error()})
			return
		}
		cfg = resolved
	}
	hash, canon, err := service.Hash(cfg)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, apiError{Code: "invalid_config", Message: err.Error()})
		return
	}

	if body, ok := c.cache.Get(hash); ok {
		c.countTenant(tn, func(tc *tenantCounters) { tc.runs++; tc.hits++ })
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Mdwd-Cache", "hit")
		w.Header().Set("X-Mdwd-Hash", hash)
		w.Header().Set("X-Mdwd-Body-SHA256", service.BodySHA(body))
		w.Write(body)
		return
	}
	c.countTenant(tn, func(tc *tenantCounters) { tc.runs++; tc.misses++ })

	canonJSON, err := json.Marshal(canon)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, apiError{Code: "internal", Message: err.Error()})
		return
	}
	c.jobs.Add(1)
	defer c.jobs.Done()
	c.journalAppend(service.JournalRec{Kind: service.RecAccepted, Hash: hash,
		JobKind: "run", Tenant: tn.Name, Config: canonJSON})
	// The client's deadline bounds how long this handler waits; the original
	// (not remaining) budget is forwarded to workers, where it can become a
	// deterministic cycle budget.
	waitCtx := r.Context()
	if req.DeadlineMillis > 0 {
		var cancel context.CancelFunc
		waitCtx, cancel = context.WithTimeout(waitCtx, time.Duration(req.DeadlineMillis)*time.Millisecond)
		defer cancel()
	}
	res, err := c.resolveShard(waitCtx, hash, canon, req.DeadlineMillis)
	if err != nil {
		if r.Context().Err() != nil {
			// Client gone; the shard continues and its completion will be
			// journaled by whoever owns the singleflight call. The job-level
			// record is closed out by a later identical request or restart
			// re-dispatch — both cache hits.
			return
		}
		if waitCtx.Err() != nil {
			// The client's deadline expired but the shard continues
			// server-side; re-asking eventually lands a cache hit.
			writeErr(w, http.StatusGatewayTimeout, apiError{Code: "timeout",
				Message: fmt.Sprintf("deadline of %dms elapsed; job continues, retry for the cached result", req.DeadlineMillis),
				Retryable: true})
			return
		}
		c.finishJob(hash, "run", err)
		writeErr(w, http.StatusUnprocessableEntity, apiError{Code: "run_failed",
			Message: err.Error(), Retryable: IsRetryable(err)})
		return
	}
	c.finishJob(hash, "run", nil)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Mdwd-Cache", "miss")
	w.Header().Set("X-Mdwd-Hash", hash)
	w.Header().Set("X-Mdwd-Body-SHA256", service.BodySHA(res.body))
	w.Write(res.body)
}

// sweepWorkers returns the shard fan-out bound for one experiment.
func (c *Coordinator) sweepWorkers() int {
	if c.cfg.SweepWorkers > 0 {
		return c.cfg.SweepWorkers
	}
	return 4*max(c.peers.HealthyCount(), 1) + 4
}

func (c *Coordinator) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		rejectDraining(w)
		return
	}
	tn, ok := c.tenantFor(w, r)
	if !ok {
		return
	}
	var req service.ExperimentRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_request", Message: err.Error()})
		return
	}
	known := false
	for _, id := range experiments.IDs() {
		if id == req.ID {
			known = true
			break
		}
	}
	if !known {
		writeErr(w, http.StatusNotFound, apiError{Code: "unknown_experiment",
			Message: fmt.Sprintf("unknown experiment %q (GET /v1/experiments lists ids)", req.ID)})
		return
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Stream != "" && !service.ValidStreamToken(req.Stream) {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_stream",
			Message: fmt.Sprintf("%q is not a stream token", req.Stream)})
		return
	}
	if req.AfterSeq < 0 {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_cursor",
			Message: "after_seq must be >= 0"})
		return
	}
	if req.Stream == "" {
		req.Stream = service.NewStreamToken()
		req.AfterSeq = 0
	}

	c.countTenant(tn, func(tc *tenantCounters) { tc.experiments++ })
	c.jobs.Add(1)
	defer c.jobs.Done()
	reqJSON, _ := json.Marshal(req)
	c.journalAppend(service.JournalRec{Kind: service.RecAccepted, Hash: req.ID,
		JobKind: "experiment", Tenant: tn.Name, Config: reqJSON})

	// The sweep runs on this handler goroutine's pool; only this goroutine
	// writes the response. Events flow: shard completion (any order) →
	// reorder buffer (table order, 1-based seq) → ndjson stream, with
	// seq <= after_seq filtered out on a resume. The sweep itself runs on the
	// coordinator's context, not the client's: a dropped connection stops the
	// stream but the shards keep resolving into caches and the job is still
	// journaled done, so the client's reconnect (same stream token, its last
	// seq as after_seq) replays only what it missed — from cache, cheaply.
	clientCtx := r.Context()
	sweepCtx := c.baseCtx
	if req.DeadlineMillis > 0 {
		var cancel context.CancelFunc
		sweepCtx, cancel = context.WithTimeout(sweepCtx, time.Duration(req.DeadlineMillis)*time.Millisecond)
		defer cancel()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var wmu sync.Mutex
	emitEvent := func(ev service.StreamEvent) {
		if clientCtx.Err() != nil {
			return // client gone: the sweep outlives the stream
		}
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emitEvent(service.StreamEvent{Type: "start", ID: req.ID, Stream: req.Stream,
		Job: fmt.Sprintf("c%d", c.jobSeq.Add(1))})

	st, tables, err := c.runSweep(sweepCtx, req, emitEvent)
	if err != nil {
		c.finishJob(req.ID, "experiment", err)
		emitEvent(service.StreamEvent{Type: "error", ID: req.ID, Err: err.Error(),
			Retryable: IsRetryable(err)})
		return
	}
	for _, t := range tables {
		var buf strings.Builder
		t.Format(&buf)
		emitEvent(service.StreamEvent{Type: "table", ID: t.ID, Text: buf.String()})
	}
	c.finishJob(req.ID, "experiment", nil)
	emitEvent(service.StreamEvent{Type: "done", ID: req.ID, Points: st.Points,
		Cycles: st.Cycles, WallSeconds: st.Wall.Seconds()})
}

// runSweep plans one experiment, resolves its standard points through the
// cluster (custom-harness points run locally; see experiments.Options
// .Resolver), and emits point events in deterministic table order through
// the shared reorder buffer — the same one the single-node daemon streams
// through, so cluster and single-node streams are byte-identical. Points
// with seq <= req.AfterSeq are suppressed: a resumed stream re-runs the
// sweep (cache hits) but re-delivers only what the client has not seen.
func (c *Coordinator) runSweep(ctx context.Context, req service.ExperimentRequest,
	emitEvent func(service.StreamEvent)) (experiments.SweepStats, []*experiments.Table, error) {
	ro := service.NewReorder(nil, func(seq int64, ev experiments.PointEvent) {
		if seq > 0 && seq <= req.AfterSeq {
			return
		}
		out := service.StreamEvent{
			Type: "point", Seq: seq, Tag: ev.Tag, X: ev.X,
			McastLat: ev.McastLatency, UniLat: ev.UniLatency,
			Throughput: ev.Throughput, Saturated: ev.Saturated,
			Dropped: ev.DestsDropped, Violations: ev.Violations,
			Cycles: ev.Cycles,
		}
		if ev.Err != nil {
			out.Err = ev.Err.Error()
		}
		emitEvent(out)
	})
	opts := experiments.Options{
		Quick:   req.Quick,
		Seed:    req.Seed,
		Workers: c.sweepWorkers(),
		Context: ctx,
		OnPoint: func(ev experiments.PointEvent) { ro.Add(ev) },
		Resolver: func(cfg core.Config, tag string) (stats.Results, int64, error) {
			hash, canon, err := service.Hash(cfg)
			if err != nil {
				return stats.Results{}, 0, err
			}
			res, err := c.resolveShard(ctx, hash, canon, req.DeadlineMillis)
			if err != nil {
				return stats.Results{}, 0, err
			}
			return res.res, res.cycles, nil
		},
	}
	tables, err := experiments.Plan([]string{req.ID}, opts)
	if err != nil {
		return experiments.SweepStats{}, nil, err
	}
	// Points only resolve during Finish, so installing the planned order here
	// — between Plan and Finish — races nothing.
	ro.Reindex(experiments.PlannedTags(tables))
	st, err := experiments.Finish([]string{req.ID}, tables, opts)
	ro.Flush()
	return st, tables, err
}

func (c *Coordinator) handleExperiments(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string][]string{"experiments": experiments.IDs()})
}

// JoinRequest is the body of POST /v1/cluster/join.
type JoinRequest struct {
	// Peer is the joining worker's base URL as the coordinator should dial
	// it.
	Peer string `json:"peer"`
}

// JoinResponse acknowledges a join with the current membership.
type JoinResponse struct {
	Peers []string `json:"peers"`
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_request", Message: err.Error()})
		return
	}
	if !strings.HasPrefix(req.Peer, "http://") && !strings.HasPrefix(req.Peer, "https://") {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_peer",
			Message: fmt.Sprintf("peer %q is not an http(s) base URL", req.Peer)})
		return
	}
	c.peers.Join(strings.TrimRight(req.Peer, "/"))
	views := c.peers.Views()
	urls := make([]string, len(views))
	for i, v := range views {
		urls[i] = v.URL
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(JoinResponse{Peers: urls})
}

// StatusResponse is the body of GET /v1/cluster/status.
type StatusResponse struct {
	Peers           []PeerView `json:"peers"`
	HealthyPeers    int        `json:"healthy_peers"`
	ShardsInflight  int64      `json:"shards_inflight"`
	HedgesTotal     int64      `json:"hedges_total"`
	MigrationsTotal int64      `json:"migrations_total"`
	JournalBytes    int64      `json:"journal_bytes,omitempty"`
	Draining        bool       `json:"draining"`
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := StatusResponse{
		Peers:           c.peers.Views(),
		HealthyPeers:    c.peers.HealthyCount(),
		ShardsInflight:  c.shardsInflight.Load(),
		HedgesTotal:     c.hedges.Load(),
		MigrationsTotal: c.migrations.Load(),
		Draining:        c.draining.Load(),
	}
	if c.journal != nil {
		st.JournalBytes = c.journal.Size()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if c.draining.Load() {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
