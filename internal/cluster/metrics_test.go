package cluster

import (
	"bufio"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mdworm/internal/service"
)

// Prometheus text exposition 0.0.4: every non-comment line must be
// `name{label="value",...} float` with legal metric and label names.
var (
	promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|\+Inf|-Inf)$`)
	promLabels = regexp.MustCompile(`^\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}$`)
)

// TestClusterMetricsFormat parses every line of the coordinator's /metrics
// and checks the cluster gauges are present with the right values.
func TestClusterMetricsFormat(t *testing.T) {
	_, w1 := startWorker(t, service.Config{})
	c, coord := startCoordinator(t, Config{Peers: []string{w1.URL}})
	// One resolved shard gives the counters something to show.
	if resp, body := postRun(t, coord.URL, tinyRunBody(31)); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %s: %s", resp.Status, body)
	}
	_ = c

	resp, err := http.Get(coord.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}

	values := map[string]float64{} // name or name{labels} -> value
	helped := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Errorf("malformed comment line %q", line)
				continue
			}
			helped[f[2]] = true
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		if m[2] != "" && !promLabels.MatchString(m[2]) {
			t.Errorf("malformed label set in %q", line)
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Errorf("bad value in %q: %v", line, err)
			continue
		}
		values[m[1]+m[2]] = v
		if !helped[m[1]] {
			t.Errorf("sample %q has no preceding HELP/TYPE header", m[1])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	wantExact := map[string]float64{
		"mdwd_coordinator":            1,
		"mdwd_peers":                  1,
		"mdwd_peers_healthy":          1,
		"mdwd_shards_inflight":        0,
		"mdwd_shard_hedges_total":     0,
		"mdwd_shard_migrations_total": 0,
	}
	for name, want := range wantExact {
		got, ok := values[name]
		if !ok {
			t.Errorf("metric %s missing", name)
		} else if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	peerLabel := `{peer="` + w1.URL + `"}`
	if got, ok := values["mdwd_peer_healthy"+peerLabel]; !ok || got != 1 {
		t.Errorf("mdwd_peer_healthy%s = %v (present=%v), want 1", peerLabel, got, ok)
	}
	if got, ok := values["mdwd_peer_shards_dispatched"+peerLabel]; !ok || got < 1 {
		t.Errorf("mdwd_peer_shards_dispatched%s = %v (present=%v), want >= 1", peerLabel, got, ok)
	}
}
