package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mdworm/internal/chaos"
	"mdworm/internal/experiments"
	"mdworm/internal/service"
)

// chaosTransport builds an Injector-wrapped transport for a coordinator whose
// peers are labeled worker1..workerN in the given order — the same labeling
// mdwd -coordinator -chaos applies.
func chaosTransport(t *testing.T, spec string, seed int64, peerURLs []string) http.RoundTripper {
	t.Helper()
	inj, err := chaos.NewFromSpec(spec, seed, "coordinator")
	if err != nil {
		t.Fatal(err)
	}
	byHost := make(map[string]string, len(peerURLs))
	for i, u := range peerURLs {
		byHost[strings.TrimPrefix(u, "http://")] = fmt.Sprintf("worker%d", i+1)
	}
	return inj.Transport(nil, func(r *http.Request) string {
		return byHost[r.URL.Host]
	})
}

// TestClusterChaosRunByteIdentical: with drops, latency, and a partition
// injected between the coordinator and its workers, every /v1/run still
// returns the byte-identical body a clean worker returns directly — the
// headline guarantee: correct or retryable, never silently wrong.
func TestClusterChaosRunByteIdentical(t *testing.T) {
	_, w1 := startWorker(t, service.Config{})
	_, w2 := startWorker(t, service.Config{})
	peerURLs := []string{w1.URL, w2.URL}
	_, coord := startCoordinator(t, Config{
		Peers: peerURLs,
		Transport: chaosTransport(t,
			"drop@0s+1500ms:worker1; latency@0s+30s:worker2*20ms; partition@500ms+1s:coordinator-worker2",
			42, peerURLs),
		Seed:             42,
		BreakerBaseDelay: 100 * time.Millisecond,
		RetryDelay:       50 * time.Millisecond,
	})

	for seed := uint64(30); seed < 36; seed++ {
		resp, direct := postRun(t, w1.URL, tinyRunBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: direct run: %s: %s", seed, resp.Status, direct)
		}
		resp, merged := postRun(t, coord.URL, tinyRunBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: chaos run: %s: %s", seed, resp.Status, merged)
		}
		if !bytes.Equal(direct, merged) {
			t.Fatalf("seed %d: result under chaos differs from clean result", seed)
		}
	}
}

// TestClusterChaosCorruptDetected: a corrupt window on the only worker's
// responses is caught by the body digest, the poisoned attempt migrates, and
// the answer the client sees is still byte-identical — corruption that
// parses as valid JSON must never reach the cache.
func TestClusterChaosCorruptDetected(t *testing.T) {
	_, w1 := startWorker(t, service.Config{})
	peerURLs := []string{w1.URL}
	c, coord := startCoordinator(t, Config{
		Peers:            peerURLs,
		Transport:        chaosTransport(t, "corrupt@0s:worker1", 7, peerURLs),
		Seed:             7,
		BreakerBaseDelay: 100 * time.Millisecond,
		RetryDelay:       50 * time.Millisecond,
	})

	resp, direct := postRun(t, w1.URL, tinyRunBody(51))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct run: %s: %s", resp.Status, direct)
	}
	resp, merged := postRun(t, coord.URL, tinyRunBody(51))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run through corrupting link: %s: %s", resp.Status, merged)
	}
	if !bytes.Equal(direct, merged) {
		t.Fatalf("corrupted bytes reached the client:\n%s\nvs\n%s", merged, direct)
	}
	if c.migrations.Load() == 0 {
		t.Error("no migration recorded: the integrity check never fired")
	}
}

// streamExperimentFrom posts an experiment request with an explicit resume
// cursor and returns all decoded events.
func streamExperimentFrom(t *testing.T, base string, req service.ExperimentRequest) []service.StreamEvent {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/experiment", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("experiment: %s: %s", resp.Status, b)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var evs []service.StreamEvent
	for sc.Scan() {
		var ev service.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestClusterExperimentStreamResume: a full sweep followed by a resume from
// a mid-stream cursor re-delivers exactly the points after the cursor — no
// duplicates, no gaps — and the resumed tail is byte-identical to the same
// tail of the original stream.
func TestClusterExperimentStreamResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep")
	}
	_, w1 := startWorker(t, service.Config{Workers: 4})
	_, coord := startCoordinator(t, Config{Peers: []string{w1.URL}})

	first := streamExperimentFrom(t, coord.URL, service.ExperimentRequest{ID: "e1", Quick: true})
	if first[0].Type != "start" || !service.ValidStreamToken(first[0].Stream) {
		t.Fatalf("no stream token on the start event: %+v", first[0])
	}
	token := first[0].Stream
	var points []service.StreamEvent
	for _, ev := range first {
		if ev.Type == "point" {
			points = append(points, ev)
		}
	}
	if len(points) < 3 {
		t.Fatalf("sweep produced %d points, need >= 3 to cut meaningfully", len(points))
	}
	for i, ev := range points {
		if ev.Seq != int64(i+1) {
			t.Fatalf("point %d has seq %d, want contiguous 1-based seq", i, ev.Seq)
		}
	}

	// Simulate a client that durably consumed the first half and reconnects.
	cut := int64(len(points) / 2)
	resumed := streamExperimentFrom(t, coord.URL, service.ExperimentRequest{
		ID: "e1", Quick: true, Stream: token, AfterSeq: cut})
	var resumedPoints []service.StreamEvent
	sawDone := false
	for _, ev := range resumed {
		switch ev.Type {
		case "point":
			resumedPoints = append(resumedPoints, ev)
			if ev.Seq <= cut {
				t.Errorf("resume re-delivered seq %d <= cursor %d (tag %s)", ev.Seq, cut, ev.Tag)
			}
		case "done":
			sawDone = true
		case "error":
			t.Fatalf("resume failed: %s", ev.Err)
		}
	}
	if !sawDone {
		t.Fatal("resumed stream ended without a done event")
	}
	want := points[cut:]
	if len(resumedPoints) != len(want) {
		t.Fatalf("resume delivered %d points, want the %d after the cursor", len(resumedPoints), len(want))
	}
	for i := range want {
		a, _ := json.Marshal(want[i])
		b, _ := json.Marshal(resumedPoints[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("resumed point %d differs:\n%s\nvs\n%s", i, b, a)
		}
	}

	// Garbage cursors are rejected up front, not half-streamed.
	for _, bad := range []service.ExperimentRequest{
		{ID: "e1", Quick: true, Stream: "nope"},
		{ID: "e1", Quick: true, Stream: token, AfterSeq: -1},
	} {
		body, _ := json.Marshal(bad)
		resp, err := http.Post(coord.URL+"/v1/experiment", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad cursor %+v: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestCoordinatorRestartResolvesExperiment: an experiment left pending in the
// journal is re-resolved headlessly after a restart when its accepted record
// carries the request, and failed (as before) when it does not.
func TestCoordinatorRestartResolvesExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep")
	}
	dir := t.TempDir()
	_, w1 := startWorker(t, service.Config{Workers: 4})

	// A first coordinator journals one interrupted experiment with a
	// replayable request and one legacy record without.
	c1, err := New(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	reqJSON, err := json.Marshal(service.ExperimentRequest{
		ID: "a8", Quick: true, Seed: 1, Stream: service.NewStreamToken()})
	if err != nil {
		t.Fatal(err)
	}
	c1.journalAppend(service.JournalRec{Kind: service.RecAccepted, Hash: "a8",
		JobKind: "experiment", Config: reqJSON})
	c1.journalAppend(service.JournalRec{Kind: service.RecAccepted, Hash: "e9",
		JobKind: "experiment"})
	c1.Close()

	c2, err := New(Config{CacheDir: dir, Peers: []string{w1.URL}, HeartbeatEvery: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	waited := make(chan struct{})
	go func() { c2.jobs.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(120 * time.Second):
		t.Fatal("re-resolved experiment did not finish in time")
	}

	counts := map[string]int{}
	for _, r := range readJournal(t, dir) {
		counts[r.Kind+"/"+r.JobKind+"/"+r.Hash]++
		if r.Kind == service.RecFailed && r.Hash == "e9" &&
			!strings.Contains(r.Error, "interrupted by coordinator restart") {
			t.Errorf("legacy record failed with %q, want the restart message", r.Error)
		}
	}
	if counts["done/experiment/a8"] != 1 {
		t.Fatalf("re-resolved experiment done records = %d, want 1\ncounts: %v",
			counts["done/experiment/a8"], counts)
	}
	if counts["failed/experiment/e9"] != 1 {
		t.Fatalf("legacy experiment failed records = %d, want 1", counts["failed/experiment/e9"])
	}
}

// TestClusterChaosExperimentByteIdentical is the in-process twin of the CI
// chaos matrix: the same experiment, clean and under a seeded fault schedule,
// must stream byte-identical tables.
func TestClusterChaosExperimentByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick sweeps")
	}
	_, single := startWorker(t, service.Config{Workers: 4})
	_, w1 := startWorker(t, service.Config{Workers: 2})
	_, w2 := startWorker(t, service.Config{Workers: 2})
	peerURLs := []string{w1.URL, w2.URL}
	_, coord := startCoordinator(t, Config{
		Peers: peerURLs,
		Transport: chaosTransport(t,
			"latency@0s+60s:worker1*15ms; drop@1s+1s:worker2; slow-close@0s+60s:worker1*10ms",
			1234, peerURLs),
		Seed:             1234,
		BreakerBaseDelay: 100 * time.Millisecond,
		RetryDelay:       50 * time.Millisecond,
	})

	wantTags, wantTables, wantDone := streamExperiment(t, single.URL, "e1")
	gotTags, gotTables, gotDone := streamExperiment(t, coord.URL, "e1")
	if gotTables != wantTables {
		t.Fatalf("tables under chaos differ from clean tables:\n--- chaos ---\n%s\n--- clean ---\n%s",
			gotTables, wantTables)
	}
	if gotDone.Points != wantDone.Points {
		t.Errorf("points under chaos = %d, clean = %d", gotDone.Points, wantDone.Points)
	}
	planned, err := experiments.Plan([]string{"e1"}, experiments.Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := experiments.PlannedTags(planned); !slicesEqual(gotTags, want) {
		t.Fatalf("chaos point order %v, planned order %v", gotTags, want)
	}
	_ = wantTags
}
