package cluster

import (
	"testing"
	"time"
)

// fakeClock pins a breaker's clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(cfg breakerConfig) (*breaker, *fakeClock) {
	b := newBreaker(cfg, 1)
	c := &fakeClock{t: time.Unix(1000, 0)}
	b.now = c.now
	return b, c
}

// TestBreakerTripAndRecover: threshold consecutive failures trip the
// breaker, the open window refuses traffic, then exactly one half-open
// trial is admitted and its success closes the breaker.
func TestBreakerTripAndRecover(t *testing.T) {
	b, c := testBreaker(breakerConfig{Threshold: 3, BaseDelay: time.Second, MaxDelay: 8 * time.Second})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if b.State() != brClosed {
		t.Fatalf("state after 2 failures = %s, want closed", b.State())
	}
	b.Failure() // third: trips
	if b.State() != brOpen {
		t.Fatalf("state after threshold = %s, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the window")
	}

	c.advance(2 * time.Second) // base 1s, jitter <= 1.25s
	if !b.Allow() {
		t.Fatal("elapsed breaker refused the half-open trial")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	b.Success()
	if b.State() != brClosed || !b.Allow() {
		t.Fatal("trial success did not close the breaker")
	}
}

// TestBreakerBackoffDoubles: a failed half-open trial re-opens with a
// doubled window, capped at MaxDelay; a success resets the ladder.
func TestBreakerBackoffDoubles(t *testing.T) {
	b, c := testBreaker(breakerConfig{Threshold: 1, BaseDelay: time.Second, MaxDelay: 4 * time.Second})
	windows := []time.Duration{}
	for i := 0; i < 4; i++ {
		b.Failure() // threshold 1: trips (or re-opens the half-open trial)
		b.mu.Lock()
		windows = append(windows, b.backoff)
		b.mu.Unlock()
		c.advance(10 * time.Second)
		if !b.Allow() {
			t.Fatalf("round %d: elapsed breaker refused trial", i)
		}
	}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second}
	for i := range want {
		if windows[i] != want[i] {
			t.Fatalf("backoff ladder = %v, want %v", windows, want)
		}
	}
	b.Success()
	b.Failure()
	b.mu.Lock()
	reset := b.backoff
	b.mu.Unlock()
	if reset != time.Second {
		t.Fatalf("backoff after success+failure = %s, want base 1s", reset)
	}
}

// TestBreakerJitterBounds: every open window stays within [0.75, 1.25] of
// the nominal backoff.
func TestBreakerJitterBounds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		b := newBreaker(breakerConfig{Threshold: 1, BaseDelay: time.Second, MaxDelay: time.Second}, seed)
		c := &fakeClock{t: time.Unix(0, 0)}
		b.now = c.now
		b.Failure()
		b.mu.Lock()
		window := b.openUntil.Sub(c.t)
		b.mu.Unlock()
		if window < 750*time.Millisecond || window > 1250*time.Millisecond+time.Millisecond {
			t.Fatalf("seed %d: window %s outside jitter bounds", seed, window)
		}
	}
}

// TestBreakerReleaseReturnsTrial: an admitted half-open trial whose attempt
// dies before reaching the wire is handed back via release, not left
// consumed — a never-reported trial would pin the breaker half-open and
// refuse the peer forever.
func TestBreakerReleaseReturnsTrial(t *testing.T) {
	b, c := testBreaker(breakerConfig{Threshold: 1, BaseDelay: time.Second, MaxDelay: time.Second})
	b.Failure()
	c.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("elapsed breaker refused the half-open trial")
	}
	if b.Allow() {
		t.Fatal("second trial admitted while the first is unreported")
	}
	b.release()
	if !b.Allow() {
		t.Fatal("released trial not re-admitted: the breaker is wedged half-open")
	}
}

// TestBreakerWindowRemaining: the remaining open window is positive and
// jitter-bounded while the breaker is open, zero otherwise.
func TestBreakerWindowRemaining(t *testing.T) {
	b, c := testBreaker(breakerConfig{Threshold: 1, BaseDelay: 4 * time.Second, MaxDelay: 4 * time.Second})
	if d := b.windowRemaining(); d != 0 {
		t.Fatalf("closed breaker reports a running window (%s)", d)
	}
	b.Failure()
	d := b.windowRemaining()
	if d < 3*time.Second || d > 5*time.Second+time.Millisecond {
		t.Fatalf("open window remaining = %s, want 4s ±25%%", d)
	}
	c.advance(d)
	if d := b.windowRemaining(); d != 0 {
		t.Fatalf("elapsed window still reports %s remaining", d)
	}
}

// TestBreakerBusyNotCounted documents the integration contract: vRetry
// verdicts (429 busy) must not call Failure. The breaker itself cannot
// enforce that, but a Success after partial failures must fully reset.
func TestBreakerFailureResetOnSuccess(t *testing.T) {
	b, _ := testBreaker(breakerConfig{Threshold: 3})
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != brClosed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
}
