package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int32

const (
	brClosed   breakerState = iota // traffic flows, failures counted
	brOpen                         // traffic blocked until openUntil
	brHalfOpen                     // one trial request probes recovery
)

func (s breakerState) String() string {
	switch s {
	case brClosed:
		return "closed"
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breakerConfig tunes a breaker. Zero values take the defaults.
type breakerConfig struct {
	// Threshold is the consecutive-failure count that trips a closed
	// breaker open. Default 3.
	Threshold int
	// BaseDelay is the first open window; each consecutive re-open
	// doubles it up to MaxDelay. Defaults 500ms and 30s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (c breakerConfig) withDefaults() breakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 500 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 30 * time.Second
	}
	return c
}

// breaker is a per-peer circuit breaker guarding shard dispatch and
// checkpoint mirroring. Closed: requests flow and consecutive failures are
// counted; Threshold trips it open. Open: requests are refused until the
// backoff window (exponential with ±25% seeded jitter) elapses, then one
// half-open trial is admitted. A trial success closes the breaker and
// resets the backoff; a trial failure re-opens it with a doubled window.
//
// Only *infrastructure* failures (connection errors, 5xx, integrity
// mismatches) should be fed to Failure — a 429 busy peer is healthy, just
// loaded, and must not trip the breaker.
type breaker struct {
	mu        sync.Mutex
	cfg       breakerConfig
	state     breakerState
	failures  int           // consecutive failures while closed
	backoff   time.Duration // current open window
	openUntil time.Time
	trial     bool // half-open probe in flight
	opens     uint64
	rng       *rand.Rand
	now       func() time.Time // test hook
}

// newBreaker builds a breaker whose jitter stream is seeded, so tests and
// chaos replays see the same windows.
func newBreaker(cfg breakerConfig, seed int64) *breaker {
	return &breaker{
		cfg: cfg.withDefaults(),
		rng: rand.New(rand.NewSource(seed)),
		now: time.Now,
	}
}

// Allow reports whether a request may proceed. An open breaker whose
// window has elapsed transitions to half-open and admits exactly one
// trial; further requests are refused until that trial reports.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true
	case brOpen:
		if b.now().Before(b.openUntil) {
			return false
		}
		b.state = brHalfOpen
		b.trial = true
		return true
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// Success reports a request that completed against the peer; it closes
// the breaker and resets the backoff ladder.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = brClosed
	b.failures = 0
	b.backoff = 0
	b.trial = false
}

// release hands back an admitted-but-unreported trial without judging the
// peer: the dispatch died locally before touching the wire, so the attempt
// carries no verdict. A half-open breaker gets its trial slot back so the
// next dispatch can probe; other states are untouched (trial is already
// false there).
func (b *breaker) release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
}

// windowRemaining returns how long the current open window still has to
// run — zero when the breaker is not open or the window has elapsed.
func (b *breaker) windowRemaining() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != brOpen {
		return 0
	}
	if d := b.openUntil.Sub(b.now()); d > 0 {
		return d
	}
	return 0
}

// Failure reports an infrastructure failure. A closed breaker trips after
// Threshold consecutive failures; a half-open trial failure re-opens with
// a doubled window.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.open()
		}
	case brHalfOpen:
		b.open()
	case brOpen:
		// Stragglers from before the trip; the window is already set.
	}
}

// open transitions to the open state, doubling the previous window.
// Callers hold b.mu.
func (b *breaker) open() {
	if b.backoff == 0 {
		b.backoff = b.cfg.BaseDelay
	} else {
		b.backoff *= 2
		if b.backoff > b.cfg.MaxDelay {
			b.backoff = b.cfg.MaxDelay
		}
	}
	// ±25% jitter decorrelates peers that failed together.
	jittered := b.backoff/4*3 + time.Duration(b.rng.Int63n(int64(b.backoff)/2+1))
	b.state = brOpen
	b.trial = false
	b.failures = 0
	b.opens++
	b.openUntil = b.now().Add(jittered)
}

// State returns the current automaton state (for metrics and tests).
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Surface the would-be transition so metrics don't report "open"
	// forever on an idle peer whose window has long elapsed.
	if b.state == brOpen && !b.now().Before(b.openUntil) {
		return brHalfOpen
	}
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
