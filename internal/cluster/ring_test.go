package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Hex-ish strings shaped like config hashes.
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return keys
}

// TestRingDistribution: with virtual nodes, each of a handful of peers owns
// a share of the key space within a modest factor of fair.
func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for _, p := range peers {
		r.Add(p)
	}
	keys := ringKeys(20000)
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(peers))
	for _, p := range peers {
		share := float64(counts[p])
		if share < 0.5*fair || share > 1.5*fair {
			t.Errorf("peer %s owns %d keys, fair share is %.0f (outside [0.5, 1.5]x)", p, counts[p], fair)
		}
	}
}

// TestRingJoinRemapBound: adding one peer to N remaps at most ~1/(N+1) of
// the keys (bounded here at 2/(N+1)) — the consistent-hashing property that
// keeps worker caches hot across membership changes.
func TestRingJoinRemapBound(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		r := NewRing(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("http://w%d:1", i))
		}
		keys := ringKeys(20000)
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = r.Owner(k)
		}
		r.Add("http://new:1")
		moved := 0
		for _, k := range keys {
			owner := r.Owner(k)
			if owner != before[k] {
				moved++
				if owner != "http://new:1" {
					t.Fatalf("N=%d: key moved between surviving peers (%s -> %s) on join", n, before[k], owner)
				}
			}
		}
		bound := 2.0 / float64(n+1) * float64(len(keys))
		if float64(moved) > bound {
			t.Errorf("N=%d: join remapped %d/%d keys, bound is %.0f", n, moved, len(keys), bound)
		}
		if moved == 0 {
			t.Errorf("N=%d: join remapped nothing — the new peer owns no keys", n)
		}
	}
}

// TestRingLeaveMovesOnlyRemovedKeys: removing a peer remaps exactly that
// peer's keys; every other key keeps its owner.
func TestRingLeaveMovesOnlyRemovedKeys(t *testing.T) {
	r := NewRing(0)
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for _, p := range peers {
		r.Add(p)
	}
	keys := ringKeys(20000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	gone := peers[1]
	r.Remove(gone)
	moved := 0
	for _, k := range keys {
		owner := r.Owner(k)
		if before[k] == gone {
			moved++
			if owner == gone {
				t.Fatalf("key still owned by removed peer")
			}
			continue
		}
		if owner != before[k] {
			t.Fatalf("key owned by surviving peer %s moved to %s on unrelated removal", before[k], owner)
		}
	}
	bound := 2.0 / float64(len(peers)) * float64(len(keys))
	if float64(moved) > bound {
		t.Errorf("leave remapped %d/%d keys, bound is %.0f", moved, len(keys), bound)
	}
}

// TestRingSuccessors: the failover sequence starts at the owner, holds
// distinct peers, and never exceeds the membership.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(0)
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	for _, p := range peers {
		r.Add(p)
	}
	for _, k := range ringKeys(100) {
		succ := r.Successors(k, 10)
		if len(succ) != len(peers) {
			t.Fatalf("got %d successors, want %d", len(succ), len(peers))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("successors[0] = %s, owner = %s", succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, p := range succ {
			if seen[p] {
				t.Fatalf("duplicate successor %s", p)
			}
			seen[p] = true
		}
	}
	if got := r.Successors("anything", 0); got != nil {
		t.Errorf("Successors(n=0) = %v, want nil", got)
	}
	empty := NewRing(0)
	if got := empty.Owner("k"); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
}
