package cluster

import (
	"sort"
	"sync"

	"mdworm/internal/experiments"
)

// reorder is the coordinator's point-event merge buffer. Shards complete in
// whatever order the fleet resolves them, but the merged ndjson stream must
// be deterministic — identical for any peer count and any failure schedule —
// so events are buffered by their planned sequence number (table order, from
// experiments.PlannedTags) and released as the contiguous prefix grows.
type reorder struct {
	mu   sync.Mutex
	seq  map[string]int
	buf  map[int]experiments.PointEvent
	next int
	emit func(experiments.PointEvent)
}

// newReorder builds a buffer over the planned tag order. Duplicate tags
// cannot occur: tags embed experiment id, series, and sweep coordinate.
func newReorder(tags []string, emit func(experiments.PointEvent)) *reorder {
	seq := make(map[string]int, len(tags))
	for i, t := range tags {
		seq[t] = i
	}
	return &reorder{seq: seq, buf: make(map[int]experiments.PointEvent), emit: emit}
}

// add accepts one completed point event and emits every event of the now
// contiguous prefix, in order.
func (r *reorder) add(ev experiments.PointEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.seq[ev.Tag]
	if !ok {
		// Not a planned point (cannot happen today); pass it through rather
		// than stall the stream.
		r.emit(ev)
		return
	}
	r.buf[i] = ev
	r.drainLocked()
}

func (r *reorder) drainLocked() {
	for {
		ev, ok := r.buf[r.next]
		if !ok {
			return
		}
		delete(r.buf, r.next)
		r.next++
		r.emit(ev)
	}
}

// flush emits whatever is still buffered, in sequence order — called after
// the sweep finishes, when gaps can exist (a canceled sweep fails points
// without emitting events).
func (r *reorder) flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := make([]int, 0, len(r.buf))
	for i := range r.buf {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		r.emit(r.buf[i])
		delete(r.buf, i)
	}
}
