package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mdworm/internal/core"
	"mdworm/internal/service"
)

// resolveTiny resolves the tinyRunBody config for the given seed.
func resolveTiny(t *testing.T, seed uint64) (string, core.Config) {
	t.Helper()
	var req service.RunRequest
	if err := json.Unmarshal([]byte(tinyRunBody(seed)), &req); err != nil {
		t.Fatal(err)
	}
	cfg, err := req.Config.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	hash, canon, err := service.Hash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return hash, canon
}

// TestDispatchBreakerTrialAlwaysReported: a half-open trial admitted by
// AllowDispatch must be reported back to the breaker whatever the attempt's
// verdict. A 429/504 answer (vRetry) and an authoritative 4xx (vFatal) are
// breaker successes — the peer answered; an unreported trial would pin the
// breaker half-open and wedge the peer out of dispatch until restart.
func TestDispatchBreakerTrialAlwaysReported(t *testing.T) {
	var status atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(int(status.Load()))
	}))
	t.Cleanup(ts.Close)

	c, err := New(Config{
		Peers:            []string{ts.URL},
		RetryDelay:       time.Millisecond,
		BreakerThreshold: 1,
		BreakerBaseDelay: 10 * time.Millisecond,
		BreakerMaxDelay:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	hash, canon := resolveTiny(t, 31)

	for _, code := range []int{http.StatusTooManyRequests, http.StatusGatewayTimeout, http.StatusBadRequest} {
		// Trip the breaker, wait out the window, and spend the half-open
		// trial exactly as attemptFrom does: AllowDispatch, then attempt.
		c.peers.ReportDispatch(ts.URL, false)
		admitted := false
		for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
			if c.peers.AllowDispatch(ts.URL) {
				admitted = true
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if !admitted {
			t.Fatalf("%d: breaker window never admitted the half-open trial", code)
		}
		status.Store(int64(code))
		_, v, _ := c.attempt(ts.URL, hash, canon, &mirror{}, 0)
		want := vRetry
		if code == http.StatusBadRequest {
			want = vFatal
		}
		if v != want {
			t.Fatalf("%d: verdict = %d, want %d", code, v, want)
		}
		if !c.peers.AllowDispatch(ts.URL) {
			t.Fatalf("%d: breaker wedged half-open after the trial's verdict", code)
		}
		c.peers.ReportDispatch(ts.URL, true) // close out the probe Allow
	}
}

// TestClusterMissingDigestMigrates: a 200 whose body-digest header is absent
// (corruption can mangle the header name itself) must read as unverifiable
// and migrate, never be accepted — even when the body still parses as JSON.
func TestClusterMissingDigestMigrates(t *testing.T) {
	imposter := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		// Parseable RunResponse, no X-Mdwd-Body-SHA256 header.
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"hash":"deadbeef","results":{}}`)
	}))
	t.Cleanup(imposter.Close)
	_, live := startWorker(t, service.Config{})
	c, coord := startCoordinator(t, Config{Peers: []string{imposter.URL, live.URL}})

	seed, _ := seedOwnedBy(t, imposter.URL, []string{imposter.URL, live.URL})
	resp, direct := postRun(t, live.URL, tinyRunBody(seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct run: %s: %s", resp.Status, direct)
	}
	resp, merged := postRun(t, coord.URL, tinyRunBody(seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinated run: %s: %s", resp.Status, merged)
	}
	if !bytes.Equal(direct, merged) {
		t.Fatalf("undigested imposter body was accepted:\n%s\nvs\n%s", merged, direct)
	}
	if c.migrations.Load() == 0 {
		t.Error("no migration recorded: the missing digest was not treated as unverifiable")
	}
}

// TestDispatchWaitsOutOpenBreaker: a shard arriving while every healthy
// peer sits behind an open breaker waits for the earliest window to elapse
// (or degrades to a local run) instead of burning its attempt budget on
// blind retries and failing the shard while peers are known-alive.
func TestDispatchWaitsOutOpenBreaker(t *testing.T) {
	_, w1 := startWorker(t, service.Config{})
	c, coord := startCoordinator(t, Config{
		Peers:            []string{w1.URL},
		RetryDelay:       time.Millisecond,
		BreakerThreshold: 1,
		BreakerBaseDelay: 300 * time.Millisecond,
		BreakerMaxDelay:  300 * time.Millisecond,
	})

	resp, direct := postRun(t, w1.URL, tinyRunBody(61))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct run: %s: %s", resp.Status, direct)
	}
	c.peers.ReportDispatch(w1.URL, false) // trip: open for ~300ms
	resp, merged := postRun(t, coord.URL, tinyRunBody(61))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run during open breaker window: %s: %s", resp.Status, merged)
	}
	if !bytes.Equal(direct, merged) {
		t.Fatalf("breaker-delayed shard result differs from direct result")
	}
}
