package cluster

import (
	"context"
	"hash/fnv"
	"net/http"
	"sync"
	"time"
)

// peerState is one worker daemon as the coordinator sees it.
type peerState struct {
	URL     string
	Healthy bool
	// LastSeen is the last successful probe, join, or shard completion.
	LastSeen time.Time
	// Inflight counts shards currently dispatched to the peer; Dispatched
	// counts them over the coordinator's lifetime.
	Inflight   int
	Dispatched int64
	// br is the peer's circuit breaker: health marks say whether the peer
	// answers probes, the breaker says whether dispatching *work* to it
	// has been failing. Both gates must open for a dispatch.
	br *breaker
}

// PeerView is the read-only snapshot of one peer for /v1/cluster/status and
// /metrics.
type PeerView struct {
	URL        string    `json:"url"`
	Healthy    bool      `json:"healthy"`
	LastSeen   time.Time `json:"last_seen"`
	Inflight   int       `json:"inflight"`
	Dispatched int64     `json:"dispatched"`
	// Breaker is the peer's circuit-breaker state ("closed", "open",
	// "half-open"); BreakerOpens counts its trips over the coordinator's
	// lifetime.
	Breaker      string `json:"breaker,omitempty"`
	BreakerOpens uint64 `json:"breaker_opens,omitempty"`
}

// PeerSet tracks cluster membership, health, per-peer dispatch load, and
// per-peer circuit breakers, and owns the consistent-hash ring. The ring
// holds every member — healthy or not — so shard ownership is stable
// across a peer's brief outage (membership changes remap keys, health
// changes only reroute around the owner via ring successors).
type PeerSet struct {
	mu    sync.Mutex
	peers map[string]*peerState
	ring  *Ring

	brCfg  breakerConfig
	brSeed int64
	// probeTimeout bounds one health probe (0 = 2s).
	probeTimeout time.Duration
}

// NewPeerSet builds a peer set over the given worker base URLs, all
// initially presumed healthy until a probe says otherwise.
func NewPeerSet(urls []string) *PeerSet {
	ps := &PeerSet{peers: make(map[string]*peerState), ring: NewRing(0)}
	for _, u := range urls {
		ps.Join(u)
	}
	return ps
}

// ConfigureBreakers sets the breaker tuning and jitter seed for peers that
// join from now on — call it before the first Join (peers already present
// keep their existing breakers).
func (ps *PeerSet) ConfigureBreakers(cfg breakerConfig, seed int64) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.brCfg = cfg
	ps.brSeed = seed
}

// SetProbeTimeout bounds one peer health probe (0 restores the 2s default).
func (ps *PeerSet) SetProbeTimeout(d time.Duration) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.probeTimeout = d
}

// Join adds a peer (idempotent) and marks it healthy — a joining worker just
// proved it is alive.
func (ps *PeerSet) Join(url string) {
	if url == "" {
		return
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.peers[url]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(url))
		p = &peerState{URL: url, br: newBreaker(ps.brCfg, ps.brSeed^int64(h.Sum64()))}
		ps.peers[url] = p
		ps.ring.Add(url)
	}
	p.Healthy = true
	p.LastSeen = time.Now()
}

// markHealth records a probe or dispatch outcome for a peer.
func (ps *PeerSet) markHealth(url string, healthy bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if p, ok := ps.peers[url]; ok {
		p.Healthy = healthy
		if healthy {
			p.LastSeen = time.Now()
		}
	}
}

// beginShard accounts a dispatch to a peer; the returned func closes it out.
func (ps *PeerSet) beginShard(url string) func() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.peers[url]
	if !ok {
		return func() {}
	}
	p.Inflight++
	p.Dispatched++
	return func() {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		if p.Inflight > 0 {
			p.Inflight--
		}
	}
}

// Healthy reports whether the peer is currently marked healthy.
func (ps *PeerSet) Healthy(url string) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.peers[url]
	return ok && p.Healthy
}

// AllowDispatch consults the peer's circuit breaker: false means dispatch
// has been failing and the backoff window is still open (an elapsed window
// admits exactly one half-open trial). Callers must report the attempt's
// outcome through ReportDispatch.
func (ps *PeerSet) AllowDispatch(url string) bool {
	ps.mu.Lock()
	p, ok := ps.peers[url]
	ps.mu.Unlock()
	if !ok {
		return false
	}
	return p.br.Allow()
}

// ReportDispatch feeds a dispatch outcome to the peer's breaker. Only
// infrastructure failures count as false — a busy (429) peer is healthy.
func (ps *PeerSet) ReportDispatch(url string, ok bool) {
	ps.mu.Lock()
	p, found := ps.peers[url]
	ps.mu.Unlock()
	if !found {
		return
	}
	if ok {
		p.br.Success()
	} else {
		p.br.Failure()
	}
}

// ReleaseDispatch hands back a breaker admission that was never reported:
// the dispatch failed locally before reaching the wire, so the attempt says
// nothing about the peer. Without it a consumed half-open trial would pin
// the breaker half-open forever, wedging the peer out of dispatch.
func (ps *PeerSet) ReleaseDispatch(url string) {
	ps.mu.Lock()
	p, ok := ps.peers[url]
	ps.mu.Unlock()
	if ok {
		p.br.release()
	}
}

// BreakerWait returns the time until the earliest open breaker window among
// the given peers (healthy ones only) elapses — the productive pause when
// every healthy candidate is breaker-blocked. Zero means no healthy peer has
// a running open window (some breaker already admits, or a half-open trial
// is in flight elsewhere).
func (ps *PeerSet) BreakerWait(urls []string) time.Duration {
	ps.mu.Lock()
	peers := make([]*peerState, 0, len(urls))
	for _, u := range urls {
		if p, ok := ps.peers[u]; ok && p.Healthy {
			peers = append(peers, p)
		}
	}
	ps.mu.Unlock()
	var wait time.Duration
	for _, p := range peers {
		d := p.br.windowRemaining()
		if d > 0 && (wait == 0 || d < wait) {
			wait = d
		}
	}
	return wait
}

// BreakerOpen reports whether the peer's breaker is open with its window
// still running — the cheap check the mirror loop uses to skip polls
// without consuming a half-open trial.
func (ps *PeerSet) BreakerOpen(url string) bool {
	ps.mu.Lock()
	p, ok := ps.peers[url]
	ps.mu.Unlock()
	return ok && p.br.State() == brOpen
}

// Candidates returns the shard's failover sequence — the key's ring owner
// first, then its distinct ring successors — over all members, healthy or
// not. The dispatcher walks it skipping unhealthy peers, so ownership stays
// stable while a peer is merely slow.
func (ps *PeerSet) Candidates(key string) []string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.ring.Successors(key, ps.ring.Len())
}

// Views returns a snapshot of every peer, sorted by URL.
func (ps *PeerSet) Views() []PeerView {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]PeerView, 0, len(ps.peers))
	for _, u := range ps.ring.Peers() {
		p := ps.peers[u]
		out = append(out, PeerView{URL: p.URL, Healthy: p.Healthy, LastSeen: p.LastSeen,
			Inflight: p.Inflight, Dispatched: p.Dispatched,
			Breaker: p.br.State().String(), BreakerOpens: p.br.Opens()})
	}
	return out
}

// HealthyCount returns how many peers are currently healthy.
func (ps *PeerSet) HealthyCount() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := 0
	for _, p := range ps.peers {
		if p.Healthy {
			n++
		}
	}
	return n
}

// probe checks one peer's /healthz. A draining worker answers 503, which
// counts as unhealthy for new shards without removing it from the ring.
func probe(ctx context.Context, client *http.Client, url string, timeout time.Duration) bool {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ProbeAll probes every member once and updates health marks.
func (ps *PeerSet) ProbeAll(ctx context.Context, client *http.Client) {
	ps.mu.Lock()
	urls := ps.ring.Peers()
	timeout := ps.probeTimeout
	ps.mu.Unlock()
	for _, u := range urls {
		ps.markHealth(u, probe(ctx, client, u, timeout))
	}
}
