package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// peerState is one worker daemon as the coordinator sees it.
type peerState struct {
	URL     string
	Healthy bool
	// LastSeen is the last successful probe, join, or shard completion.
	LastSeen time.Time
	// Inflight counts shards currently dispatched to the peer; Dispatched
	// counts them over the coordinator's lifetime.
	Inflight   int
	Dispatched int64
}

// PeerView is the read-only snapshot of one peer for /v1/cluster/status and
// /metrics.
type PeerView struct {
	URL        string    `json:"url"`
	Healthy    bool      `json:"healthy"`
	LastSeen   time.Time `json:"last_seen"`
	Inflight   int       `json:"inflight"`
	Dispatched int64     `json:"dispatched"`
}

// PeerSet tracks cluster membership, health, and per-peer dispatch load,
// and owns the consistent-hash ring. The ring holds every member — healthy
// or not — so shard ownership is stable across a peer's brief outage
// (membership changes remap keys, health changes only reroute around the
// owner via ring successors).
type PeerSet struct {
	mu    sync.Mutex
	peers map[string]*peerState
	ring  *Ring
}

// NewPeerSet builds a peer set over the given worker base URLs, all
// initially presumed healthy until a probe says otherwise.
func NewPeerSet(urls []string) *PeerSet {
	ps := &PeerSet{peers: make(map[string]*peerState), ring: NewRing(0)}
	for _, u := range urls {
		ps.Join(u)
	}
	return ps
}

// Join adds a peer (idempotent) and marks it healthy — a joining worker just
// proved it is alive.
func (ps *PeerSet) Join(url string) {
	if url == "" {
		return
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.peers[url]
	if !ok {
		p = &peerState{URL: url}
		ps.peers[url] = p
		ps.ring.Add(url)
	}
	p.Healthy = true
	p.LastSeen = time.Now()
}

// markHealth records a probe or dispatch outcome for a peer.
func (ps *PeerSet) markHealth(url string, healthy bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if p, ok := ps.peers[url]; ok {
		p.Healthy = healthy
		if healthy {
			p.LastSeen = time.Now()
		}
	}
}

// beginShard accounts a dispatch to a peer; the returned func closes it out.
func (ps *PeerSet) beginShard(url string) func() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.peers[url]
	if !ok {
		return func() {}
	}
	p.Inflight++
	p.Dispatched++
	return func() {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		if p.Inflight > 0 {
			p.Inflight--
		}
	}
}

// Healthy reports whether the peer is currently marked healthy.
func (ps *PeerSet) Healthy(url string) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.peers[url]
	return ok && p.Healthy
}

// Candidates returns the shard's failover sequence — the key's ring owner
// first, then its distinct ring successors — over all members, healthy or
// not. The dispatcher walks it skipping unhealthy peers, so ownership stays
// stable while a peer is merely slow.
func (ps *PeerSet) Candidates(key string) []string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.ring.Successors(key, ps.ring.Len())
}

// Views returns a snapshot of every peer, sorted by URL.
func (ps *PeerSet) Views() []PeerView {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]PeerView, 0, len(ps.peers))
	for _, u := range ps.ring.Peers() {
		p := ps.peers[u]
		out = append(out, PeerView{URL: p.URL, Healthy: p.Healthy, LastSeen: p.LastSeen,
			Inflight: p.Inflight, Dispatched: p.Dispatched})
	}
	return out
}

// HealthyCount returns how many peers are currently healthy.
func (ps *PeerSet) HealthyCount() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := 0
	for _, p := range ps.peers {
		if p.Healthy {
			n++
		}
	}
	return n
}

// probe checks one peer's /healthz. A draining worker answers 503, which
// counts as unhealthy for new shards without removing it from the ring.
func probe(ctx context.Context, client *http.Client, url string) bool {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ProbeAll probes every member once and updates health marks.
func (ps *PeerSet) ProbeAll(ctx context.Context, client *http.Client) {
	ps.mu.Lock()
	urls := ps.ring.Peers()
	ps.mu.Unlock()
	for _, u := range urls {
		ps.markHealth(u, probe(ctx, client, u))
	}
}
