package collective

import (
	"sort"
	"testing"
	"testing/quick"

	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/topology"
)

type fakeFactory struct{ n uint64 }

func (f *fakeFactory) NewMessage(src int, dests []int, class flit.Class, payload int,
	op *flit.Op, fwd *flit.ForwardStep, now int64) *flit.Message {
	f.n++
	return &flit.Message{
		ID: f.n, Src: src, Dests: dests, Class: class,
		PayloadFlits: payload, HeaderFlits: 1, Created: now, Op: op, Forward: fwd,
	}
}

func TestBinomialPhases(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 15: 4, 63: 6}
	for d, want := range cases {
		if got := BinomialPhases(d); got != want {
			t.Errorf("BinomialPhases(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestBinomialSendsSmall(t *testing.T) {
	// group = holder + 3: holder sends to positions 2 then 1.
	sends := BinomialSends([]int{10, 11, 12, 13})
	if len(sends) != 2 {
		t.Fatalf("sends = %v", sends)
	}
	if sends[0].To != 12 || len(sends[0].Subtree) != 1 || sends[0].Subtree[0] != 13 {
		t.Fatalf("first send wrong: %+v", sends[0])
	}
	if sends[1].To != 11 || len(sends[1].Subtree) != 0 {
		t.Fatalf("second send wrong: %+v", sends[1])
	}
	if BinomialSends([]int{5}) != nil {
		t.Fatal("lone holder has sends")
	}
}

// Property: the recursive binomial tree covers every destination exactly
// once and completes in ceil(log2(d+1)) phases, for any degree.
func TestBinomialTreeQuick(t *testing.T) {
	f := func(dSeed uint8) bool {
		d := int(dSeed)%100 + 1
		dests := make([]int, d)
		for i := range dests {
			dests[i] = i + 1
		}
		phase, err := ValidateTree(0, dests)
		if err != nil {
			return false
		}
		maxPhase := 0
		for _, p := range phase {
			if p > maxPhase {
				maxPhase = p
			}
		}
		return maxPhase == BinomialPhases(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeProperties(t *testing.T) {
	if !HardwareBitString.Hardware() || !HardwareMultiport.Hardware() {
		t.Fatal("hardware schemes not hardware")
	}
	if SoftwareBinomial.Hardware() || SoftwareSeparate.Hardware() {
		t.Fatal("software schemes hardware")
	}
	if HardwareBitString.Encoding() != flit.EncBitString ||
		HardwareMultiport.Encoding() != flit.EncMultiport ||
		SoftwareBinomial.Encoding() != flit.EncUnicast {
		t.Fatal("encodings wrong")
	}
	for _, s := range []Scheme{HardwareBitString, HardwareMultiport, SoftwareBinomial, SoftwareSeparate} {
		if s.String() == "" {
			t.Fatal("empty scheme name")
		}
	}
}

func planEnv(t *testing.T) (*topology.Network, *fakeFactory) {
	t.Helper()
	net, err := topology.NewKaryTree(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	return net, &fakeFactory{}
}

func TestPlanHardwareBitString(t *testing.T) {
	net, fac := planEnv(t)
	op := flit.NewOp(1, flit.ClassMulticast, 0, 3, 0)
	msgs, err := Plan(HardwareBitString, net, fac, 0, []int{1, 9, 33}, 64, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || op.Phases != 1 {
		t.Fatalf("msgs=%d phases=%d", len(msgs), op.Phases)
	}
	if msgs[0].Class != flit.ClassMulticast || len(msgs[0].Dests) != 3 {
		t.Fatalf("message wrong: %+v", msgs[0])
	}
}

func TestPlanHardwareMultiport(t *testing.T) {
	net, fac := planEnv(t)
	op := flit.NewOp(1, flit.ClassMulticast, 0, 4, 0)
	msgs, err := Plan(HardwareMultiport, net, fac, 0, []int{16, 17, 18, 19}, 64, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("full-switch product set needed %d worms", len(msgs))
	}
	// Scattered set needs several worms; union must be exact.
	op2 := flit.NewOp(2, flit.ClassMulticast, 0, 3, 0)
	msgs2, err := Plan(HardwareMultiport, net, fac, 0, []int{1, 21, 42}, 64, op2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op2.Phases != len(msgs2) {
		t.Fatalf("phases %d != worms %d", op2.Phases, len(msgs2))
	}
	var all []int
	for _, m := range msgs2 {
		all = append(all, m.Dests...)
	}
	sort.Ints(all)
	if len(all) != 3 || all[0] != 1 || all[1] != 21 || all[2] != 42 {
		t.Fatalf("cover union = %v", all)
	}
}

func TestPlanSoftwareBinomial(t *testing.T) {
	net, fac := planEnv(t)
	dests := []int{5, 3, 60, 22, 41, 17, 8}
	op := flit.NewOp(1, flit.ClassMulticast, 0, len(dests), 0)
	msgs, err := Plan(SoftwareBinomial, net, fac, 0, dests, 64, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op.Phases != 3 {
		t.Fatalf("phases = %d, want 3", op.Phases)
	}
	// The root's sends plus the forward steps must cover every destination
	// exactly once.
	covered := map[int]bool{}
	var walk func(to int, fwd *flit.ForwardStep)
	walk = func(to int, fwd *flit.ForwardStep) {
		if covered[to] {
			t.Fatalf("destination %d covered twice", to)
		}
		covered[to] = true
		if fwd == nil {
			return
		}
		for _, m := range ForwardPlan(fac, to, fwd.Subtree, 64, op, 0) {
			if m.Class != flit.ClassUnicast || len(m.Dests) != 1 {
				t.Fatal("forward plan produced non-unicast")
			}
			walk(m.Dests[0], m.Forward)
		}
	}
	for _, m := range msgs {
		if m.Class != flit.ClassUnicast || len(m.Dests) != 1 {
			t.Fatal("root plan produced non-unicast")
		}
		walk(m.Dests[0], m.Forward)
	}
	if len(covered) != len(dests) {
		t.Fatalf("covered %d of %d", len(covered), len(dests))
	}
	for _, d := range dests {
		if !covered[d] {
			t.Fatalf("destination %d missed", d)
		}
	}
}

func TestPlanSoftwareSeparate(t *testing.T) {
	net, fac := planEnv(t)
	dests := []int{5, 9, 40}
	op := flit.NewOp(1, flit.ClassMulticast, 0, len(dests), 0)
	msgs, err := Plan(SoftwareSeparate, net, fac, 0, dests, 64, op, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 || op.Phases != 3 {
		t.Fatalf("msgs=%d phases=%d", len(msgs), op.Phases)
	}
	for i, m := range msgs {
		if m.Dests[0] != dests[i] || m.Forward != nil {
			t.Fatalf("message %d wrong: %+v", i, m)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	net, fac := planEnv(t)
	op := flit.NewOp(1, flit.ClassMulticast, 0, 1, 0)
	if _, err := Plan(HardwareBitString, net, fac, 0, nil, 64, op, 0); err == nil {
		t.Error("empty dests accepted")
	}
	if _, err := Plan(HardwareBitString, net, fac, 0, []int{0}, 64, op, 0); err == nil {
		t.Error("source in dests accepted")
	}
	if _, err := Plan(HardwareBitString, net, fac, 0, []int{99}, 64, op, 0); err == nil {
		t.Error("out-of-range dest accepted")
	}
	if _, err := Plan(Scheme(200), net, fac, 0, []int{1}, 64, op, 0); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestValidateTreeRandomSets(t *testing.T) {
	rng := engine.NewRNG(4)
	for trial := 0; trial < 200; trial++ {
		d := rng.Intn(63) + 1
		dests := rng.Sample(64, d, map[int]bool{0: true})
		if _, err := ValidateTree(0, dests); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}
