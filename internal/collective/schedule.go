package collective

import (
	"fmt"
	"sort"
	"strings"
)

// Kind selects a collective operation.
type Kind uint8

const (
	// Barrier synchronizes the participants: a combining gather of 1-flit
	// messages up a binomial tree rooted at Root, then a release broadcast.
	Barrier Kind = iota
	// Broadcast delivers Root's payload to every other participant.
	Broadcast
	// AllReduce reduces to the root over a binomial combining tree
	// (messages stay payload-sized: each hop carries a combined value),
	// then broadcasts the result.
	AllReduce
	// AllReduceGather is the combining variant: every non-root sends its
	// contribution directly toward the root as a gather worm (one phase),
	// the root combines, then broadcasts the result.
	AllReduceGather
	// Scatter delivers a personalized payload from Root to each
	// participant. Hardware mode sends one unicast per participant from
	// the root; software mode splits payload down a binomial tree
	// (intermediate messages carry their whole subtree's data).
	Scatter
	// Gather collects a personalized payload from each participant at
	// Root. Hardware mode sends one direct unicast per participant;
	// software mode combines up a binomial tree (intermediate messages
	// carry their whole subtree's data).
	Gather

	kindCount
)

var kindNames = [kindCount]string{
	Barrier:         "barrier",
	Broadcast:       "broadcast",
	AllReduce:       "all-reduce",
	AllReduceGather: "all-reduce-gather",
	Scatter:         "scatter",
	Gather:          "gather",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a kind name as printed by String.
func ParseKind(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("collective: unknown kind %q (want one of %s)",
		name, strings.Join(kindNames[:], ", "))
}

// Kinds lists every kind name, for CLI help text.
func Kinds() []string {
	return append([]string(nil), kindNames[:]...)
}

// Spec describes a repeated collective workload. The zero value disables
// the workload (Reps == 0 means "no collective").
type Spec struct {
	Kind         Kind
	Root         int // root node id; must be < Participants
	Participants int // nodes 0..Participants-1 take part; 0 = every node
	PayloadFlits int // data payload per element; 0 defaults to 1
	Reps         int // repetitions; 0 disables the collective
	SkewCycles   int64
	GapCycles    int64
}

// Enabled reports whether the spec describes any work.
func (sp Spec) Enabled() bool { return sp.Reps > 0 }

// Normalize applies defaults and validates the spec against a system of n
// nodes. It is a no-op for a disabled spec.
func (sp *Spec) Normalize(n int) error {
	if !sp.Enabled() {
		return nil
	}
	if sp.Kind >= kindCount {
		return fmt.Errorf("collective: unknown kind %d", sp.Kind)
	}
	if sp.Participants == 0 {
		sp.Participants = n
	}
	if sp.Participants < 2 || sp.Participants > n {
		return fmt.Errorf("collective: participants %d out of range [2,%d]", sp.Participants, n)
	}
	if sp.Root < 0 || sp.Root >= sp.Participants {
		return fmt.Errorf("collective: root %d not a participant (0..%d)", sp.Root, sp.Participants-1)
	}
	if sp.PayloadFlits == 0 {
		sp.PayloadFlits = 1
	}
	if sp.PayloadFlits < 0 {
		return fmt.Errorf("collective: negative payload %d", sp.PayloadFlits)
	}
	if sp.SkewCycles < 0 || sp.GapCycles < 0 {
		return fmt.Errorf("collective: negative skew/gap")
	}
	return nil
}

// Step is one point-to-set transmission of a collective schedule. Steps are
// identified by index; Deps lists steps that must complete (deliver to every
// destination) before this one may launch, and always reference lower IDs in
// strictly earlier phases.
type Step struct {
	ID        int
	Src       int
	Dests     []int
	Multicast bool // realized via the configured multicast scheme
	Payload   int  // payload flits
	Phase     int  // 1-based; per-phase latencies tile the whole collective
	Deps      []int
}

// Schedule is a complete dependency-ordered plan for one collective rep.
type Schedule struct {
	Kind   Kind
	Phases int
	Steps  []Step
}

// MaxPayload returns the largest per-step payload in the schedule (used to
// size switch packet buffers).
func (s Schedule) MaxPayload() int {
	max := 0
	for _, st := range s.Steps {
		if st.Payload > max {
			max = st.Payload
		}
	}
	return max
}

// rankOf maps node id to tree rank for a tree rooted at root over p
// participants, and nodeOf inverts it. Rank 0 is always the root, so the
// binomial parent/child arithmetic works for any root.
func rankOf(node, root, p int) int { return (node - root + p) % p }
func nodeOf(rank, root, p int) int { return (rank + root) % p }

// binParent returns the binomial-tree parent of rank r (undefined for 0):
// r with its lowest set bit cleared.
func binParent(r int) int { return r &^ (r & -r) }

// binChildren returns the binomial-tree children of rank r among p ranks,
// in increasing order.
func binChildren(r, p int) []int {
	var kids []int
	for bit := 1; ; bit <<= 1 {
		if r != 0 && bit >= r&-r {
			break
		}
		c := r | bit
		if c >= p {
			break
		}
		kids = append(kids, c)
	}
	return kids
}

// binDepth returns, for every rank, the combining phase at which it sends to
// its parent: leaves send at phase 1, an inner rank one phase after its
// last child. depth[0] is the phase count of the whole combining tree.
func binDepth(p int) []int {
	depth := make([]int, p)
	// Ranks in decreasing order: every child c of r satisfies c > r,
	// so children are finalized before their parent.
	for r := p - 1; r >= 0; r-- {
		d := 0
		for _, c := range binChildren(r, p) {
			if depth[c] > d {
				d = depth[c]
			}
		}
		depth[r] = d + 1
	}
	// Root's "send phase" is really the phase at which it has combined
	// everything; keep the +1 convention so depth[0]-1 phases of sends
	// happened below it.
	return depth
}

// binSubtree returns the size of each rank's binomial subtree (including
// itself).
func binSubtree(p int) []int {
	size := make([]int, p)
	for r := p - 1; r >= 0; r-- {
		size[r] = 1
		for _, c := range binChildren(r, p) {
			size[r] += size[c]
		}
	}
	return size
}

// scheduleBuilder accumulates steps keyed by (phase, src, first dest) and
// resolves dependencies expressed as "the step that rank r sent/received".
type scheduleBuilder struct {
	steps []Step
}

func (b *scheduleBuilder) add(src int, dests []int, multicast bool, payload, phase int, deps []int) int {
	id := len(b.steps)
	b.steps = append(b.steps, Step{
		ID: id, Src: src, Dests: dests, Multicast: multicast,
		Payload: payload, Phase: phase, Deps: deps,
	})
	return id
}

// finish orders steps by (phase, src, first dest), reassigns IDs, and remaps
// dependencies, so schedules are canonical regardless of construction order.
func (b *scheduleBuilder) finish(kind Kind) Schedule {
	order := make([]int, len(b.steps))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, c := b.steps[order[i]], b.steps[order[j]]
		if a.Phase != c.Phase {
			return a.Phase < c.Phase
		}
		if a.Src != c.Src {
			return a.Src < c.Src
		}
		return a.Dests[0] < c.Dests[0]
	})
	remap := make([]int, len(b.steps))
	for newID, oldID := range order {
		remap[oldID] = newID
	}
	steps := make([]Step, len(b.steps))
	phases := 0
	for newID, oldID := range order {
		st := b.steps[oldID]
		st.ID = newID
		deps := make([]int, len(st.Deps))
		for i, d := range st.Deps {
			deps[i] = remap[d]
		}
		sort.Ints(deps)
		st.Deps = deps
		steps[newID] = st
		if st.Phase > phases {
			phases = st.Phase
		}
	}
	return Schedule{Kind: kind, Phases: phases, Steps: steps}
}

// BuildSchedule plans one rep of the collective over n nodes. hw selects the
// hardware-multidestination shapes (direct personalized transfers backed by
// worms) versus the software shapes (binomial splitting/combining trees).
// The same spec and flags always yield the identical schedule.
func BuildSchedule(sp Spec, n int, hw bool) (Schedule, error) {
	s := sp // normalize a copy so callers may pass unnormalized specs
	if !s.Enabled() {
		s.Reps = 1 // allow building previews of disabled specs
	}
	if err := s.Normalize(n); err != nil {
		return Schedule{}, err
	}
	p, root := s.Participants, s.Root
	pay := s.PayloadFlits
	b := &scheduleBuilder{}

	// others lists every participant except the root, in node order.
	others := func() []int {
		out := make([]int, 0, p-1)
		for node := 0; node < p; node++ {
			if node != root {
				out = append(out, node)
			}
		}
		return out
	}

	// combineUp builds the binomial combining tree: one unicast per
	// non-root rank toward its parent, payload per rank given by payloadOf,
	// dependent on the rank's own children. Returns the root's child step
	// IDs and the deepest phase used.
	combineUp := func(payloadOf func(rank int) int) (rootDeps []int, maxPhase int) {
		depth := binDepth(p)
		sent := make([]int, p) // step id that rank r sends (ranks>0)
		for r := p - 1; r >= 1; r-- {
			var deps []int
			for _, c := range binChildren(r, p) {
				deps = append(deps, sent[c])
			}
			ph := depth[r]
			if ph > maxPhase {
				maxPhase = ph
			}
			sent[r] = b.add(nodeOf(r, root, p), []int{nodeOf(binParent(r), root, p)},
				false, payloadOf(r), ph, deps)
		}
		for _, c := range binChildren(0, p) {
			rootDeps = append(rootDeps, sent[c])
		}
		sort.Ints(rootDeps)
		return rootDeps, maxPhase
	}

	switch s.Kind {
	case Barrier:
		deps, ph := combineUp(func(int) int { return 1 })
		b.add(root, others(), true, 1, ph+1, deps)

	case Broadcast:
		b.add(root, others(), true, pay, 1, nil)

	case AllReduce:
		deps, ph := combineUp(func(int) int { return pay })
		b.add(root, others(), true, pay, ph+1, deps)

	case AllReduceGather:
		// Gather worms toward the root: every non-root contributes
		// directly in one phase, then the root broadcasts the result.
		var deps []int
		for _, node := range others() {
			deps = append(deps, b.add(node, []int{root}, false, pay, 1, nil))
		}
		sort.Ints(deps)
		b.add(root, others(), true, pay, 2, deps)

	case Scatter:
		if hw {
			for _, node := range others() {
				b.add(root, []int{node}, false, pay, 1, nil)
			}
		} else {
			// Binomial splitting: each message carries its whole
			// subtree's personalized data.
			size := binSubtree(p)
			recv := make([]int, p)   // step id delivering to rank r
			rdepth := make([]int, p) // phase at which rank r holds data
			// Ranks in increasing order: parents precede children.
			for r := 1; r < p; r++ {
				par := binParent(r)
				var deps []int
				ph := 1
				if par != 0 {
					deps = []int{recv[par]}
					ph = rdepth[par] + 1
				}
				recv[r] = b.add(nodeOf(par, root, p), []int{nodeOf(r, root, p)},
					false, pay*size[r], ph, deps)
				rdepth[r] = ph
			}
		}

	case Gather:
		if hw {
			for _, node := range others() {
				b.add(node, []int{root}, false, pay, 1, nil)
			}
		} else {
			size := binSubtree(p)
			combineUp(func(r int) int { return pay * size[r] })
		}

	default:
		return Schedule{}, fmt.Errorf("collective: unknown kind %d", s.Kind)
	}

	sched := b.finish(s.Kind)
	if err := sched.Validate(n); err != nil {
		return Schedule{}, fmt.Errorf("collective: internal: built invalid schedule: %w", err)
	}
	return sched, nil
}

// Validate checks the structural invariants every schedule must satisfy
// against a system of n nodes: in-range endpoints, no self-sends, no
// duplicate destinations, positive payloads, contiguous 1-based phases, and
// dependencies that reference lower IDs in strictly earlier phases.
func (s Schedule) Validate(n int) error {
	if len(s.Steps) == 0 {
		return fmt.Errorf("empty schedule")
	}
	seenPhase := make([]bool, s.Phases)
	for i, st := range s.Steps {
		if st.ID != i {
			return fmt.Errorf("step %d: ID %d != index", i, st.ID)
		}
		if st.Src < 0 || st.Src >= n {
			return fmt.Errorf("step %d: src %d out of range", i, st.Src)
		}
		if len(st.Dests) == 0 {
			return fmt.Errorf("step %d: no destinations", i)
		}
		seen := map[int]bool{}
		for _, d := range st.Dests {
			if d < 0 || d >= n {
				return fmt.Errorf("step %d: dest %d out of range", i, d)
			}
			if d == st.Src {
				return fmt.Errorf("step %d: self-send at node %d", i, d)
			}
			if seen[d] {
				return fmt.Errorf("step %d: duplicate dest %d", i, d)
			}
			seen[d] = true
		}
		if len(st.Dests) > 1 && !st.Multicast {
			return fmt.Errorf("step %d: multi-destination unicast", i)
		}
		if st.Payload < 1 {
			return fmt.Errorf("step %d: payload %d < 1", i, st.Payload)
		}
		if st.Phase < 1 || st.Phase > s.Phases {
			return fmt.Errorf("step %d: phase %d out of range [1,%d]", i, st.Phase, s.Phases)
		}
		seenPhase[st.Phase-1] = true
		for _, dep := range st.Deps {
			if dep < 0 || dep >= i {
				return fmt.Errorf("step %d: dep %d not a lower ID", i, dep)
			}
			if s.Steps[dep].Phase >= st.Phase {
				return fmt.Errorf("step %d (phase %d): dep %d in phase %d not earlier",
					i, st.Phase, dep, s.Steps[dep].Phase)
			}
		}
	}
	for ph, ok := range seenPhase {
		if !ok {
			return fmt.Errorf("phase %d has no steps", ph+1)
		}
	}
	return nil
}
