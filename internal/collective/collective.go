// Package collective plans multicast operations: it turns (source,
// destination set) into the set of messages each scheme injects — a single
// multidestination worm for hardware bit-string multicast, one worm per
// product set for hardware multiport multicast, a binomial distribution tree
// of unicasts for the software U-MIN scheme of Xu/Gui/Ni, or one unicast per
// destination for separate addressing.
package collective

import (
	"fmt"
	"math/bits"
	"sort"

	"mdworm/internal/flit"
	"mdworm/internal/routing"
	"mdworm/internal/topology"
)

// Scheme selects how a multicast is realized.
type Scheme uint8

const (
	// HardwareBitString sends one multidestination worm with an N-bit
	// bit-string header covering the whole destination set in one phase.
	HardwareBitString Scheme = iota
	// HardwareMultiport sends one multidestination worm per multiport
	// product set covering the destination set.
	HardwareMultiport
	// SoftwareBinomial is the U-MIN binomial-tree software multicast:
	// unicast messages only, ceil(log2(d+1)) phases, destinations sorted
	// for the contention-free ordering.
	SoftwareBinomial
	// SoftwareSeparate sends one unicast per destination from the source.
	SoftwareSeparate
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case HardwareBitString:
		return "hw-bitstring"
	case HardwareMultiport:
		return "hw-multiport"
	case SoftwareBinomial:
		return "sw-binomial"
	case SoftwareSeparate:
		return "sw-separate"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// Hardware reports whether the scheme uses multidestination worms.
func (s Scheme) Hardware() bool {
	return s == HardwareBitString || s == HardwareMultiport
}

// Encoding returns the header encoding the scheme puts on the wire.
func (s Scheme) Encoding() flit.Encoding {
	switch s {
	case HardwareBitString:
		return flit.EncBitString
	case HardwareMultiport:
		return flit.EncMultiport
	default:
		return flit.EncUnicast
	}
}

// Send is one transmission of a binomial distribution tree: the recipient
// and the subtree of further destinations it becomes responsible for.
type Send struct {
	To      int
	Subtree []int
}

// BinomialSends computes the sends the holder of the message must perform
// for the group, where group[0] is the holder and group[1:] the
// destinations it must cover, in schedule order (farthest subtree first, so
// phases overlap). Each recipient then applies BinomialSends to
// [recipient, subtree...].
func BinomialSends(group []int) []Send {
	g := len(group)
	if g <= 1 {
		return nil
	}
	k := 1
	for k*2 < g {
		k *= 2
	}
	var sends []Send
	for ; k >= 1; k /= 2 {
		if k >= g {
			continue
		}
		hi := 2 * k
		if hi > g {
			hi = g
		}
		sends = append(sends, Send{To: group[k], Subtree: group[k+1 : hi]})
	}
	return sends
}

// BinomialPhases returns the phase count of a binomial multicast to d
// destinations: ceil(log2(d+1)).
func BinomialPhases(d int) int {
	if d <= 0 {
		return 0
	}
	return bits.Len(uint(d))
}

// MessageFactory constructs fully-formed messages (the simulator core
// implements it, filling in header sizes and identifiers).
type MessageFactory interface {
	NewMessage(src int, dests []int, class flit.Class, payload int,
		op *flit.Op, fwd *flit.ForwardStep, now int64) *flit.Message
}

// Plan returns the messages the source must inject, in order, to start the
// multicast described by op under the given scheme. For SoftwareBinomial the
// messages carry ForwardSteps that receivers use to continue the tree.
// dests must be non-empty and exclude src. Plan also sets op.Phases.
func Plan(scheme Scheme, net *topology.Network, f MessageFactory,
	src int, dests []int, payload int, op *flit.Op, now int64) ([]*flit.Message, error) {

	if len(dests) == 0 {
		return nil, fmt.Errorf("collective: empty destination set")
	}
	for _, d := range dests {
		if d == src {
			return nil, fmt.Errorf("collective: source %d in destination set", src)
		}
		if d < 0 || d >= net.N {
			return nil, fmt.Errorf("collective: destination %d out of range", d)
		}
	}

	switch scheme {
	case HardwareBitString:
		op.Phases = 1
		m := f.NewMessage(src, append([]int(nil), dests...), flit.ClassMulticast, payload, op, nil, now)
		return []*flit.Message{m}, nil

	case HardwareMultiport:
		cover, err := routing.MultiportCover(net, src, dests)
		if err != nil {
			return nil, err
		}
		op.Phases = len(cover)
		msgs := make([]*flit.Message, len(cover))
		for i, ps := range cover {
			msgs[i] = f.NewMessage(src, ps.Dests(net.Arity), flit.ClassMulticast, payload, op, nil, now)
		}
		return msgs, nil

	case SoftwareBinomial:
		sorted := append([]int(nil), dests...)
		sort.Ints(sorted)
		op.Phases = BinomialPhases(len(dests))
		group := append([]int{src}, sorted...)
		sends := BinomialSends(group)
		msgs := make([]*flit.Message, len(sends))
		for i, snd := range sends {
			var fwd *flit.ForwardStep
			if len(snd.Subtree) > 0 {
				fwd = &flit.ForwardStep{Subtree: append([]int(nil), snd.Subtree...)}
			}
			msgs[i] = f.NewMessage(src, []int{snd.To}, flit.ClassUnicast, payload, op, fwd, now)
		}
		return msgs, nil

	case SoftwareSeparate:
		op.Phases = len(dests)
		msgs := make([]*flit.Message, len(dests))
		for i, d := range dests {
			msgs[i] = f.NewMessage(src, []int{d}, flit.ClassUnicast, payload, op, nil, now)
		}
		return msgs, nil

	default:
		return nil, fmt.Errorf("collective: unknown scheme %d", scheme)
	}
}

// ForwardPlan returns the messages a software-multicast recipient at node
// self must inject to cover its subtree.
func ForwardPlan(f MessageFactory, self int, subtree []int, payload int,
	op *flit.Op, now int64) []*flit.Message {

	group := append([]int{self}, subtree...)
	sends := BinomialSends(group)
	msgs := make([]*flit.Message, len(sends))
	for i, snd := range sends {
		var fwd *flit.ForwardStep
		if len(snd.Subtree) > 0 {
			fwd = &flit.ForwardStep{Subtree: append([]int(nil), snd.Subtree...)}
		}
		msgs[i] = f.NewMessage(self, []int{snd.To}, flit.ClassUnicast, payload, op, fwd, now)
	}
	return msgs
}

// ValidateTree checks that a binomial plan rooted at src covers every
// destination exactly once, returning the per-node receive phase. It is used
// by tests and by the topology inspection tool.
func ValidateTree(src int, dests []int) (map[int]int, error) {
	sorted := append([]int(nil), dests...)
	sort.Ints(sorted)
	phase := map[int]int{}
	type item struct {
		holder  int
		subtree []int
		at      int // phase at which holder acquired the message
	}
	work := []item{{holder: src, subtree: sorted, at: 0}}
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		sends := BinomialSends(append([]int{it.holder}, it.subtree...))
		for i, snd := range sends {
			recvPhase := it.at + i + 1 // the holder's sends are serialized
			if _, dup := phase[snd.To]; dup {
				return nil, fmt.Errorf("collective: node %d covered twice", snd.To)
			}
			phase[snd.To] = recvPhase
			work = append(work, item{holder: snd.To, subtree: snd.Subtree, at: recvPhase})
		}
	}
	if len(phase) != len(dests) {
		return nil, fmt.Errorf("collective: covered %d of %d destinations", len(phase), len(dests))
	}
	for _, d := range dests {
		if _, ok := phase[d]; !ok {
			return nil, fmt.Errorf("collective: destination %d not covered", d)
		}
	}
	return phase, nil
}
