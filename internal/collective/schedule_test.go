package collective

import (
	"reflect"
	"testing"
)

func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted garbage")
	}
}

func TestSpecNormalizeRejects(t *testing.T) {
	cases := []Spec{
		{Kind: kindCount, Reps: 1},
		{Root: 5, Participants: 4, Reps: 1},
		{Participants: 1, Reps: 1},
		{Participants: 99, Reps: 1},
		{PayloadFlits: -1, Reps: 1},
		{SkewCycles: -1, Reps: 1},
	}
	for i, sp := range cases {
		if sp.Reps == 0 {
			sp.Reps = 1
		}
		if err := sp.Normalize(16); err == nil {
			t.Errorf("case %d: Normalize accepted %+v", i, sp)
		}
	}
	var off Spec
	if err := off.Normalize(16); err != nil {
		t.Fatalf("disabled spec rejected: %v", err)
	}
}

// sends/receives count per node over the whole schedule.
func flows(s Schedule) (sends, recvs map[int]int) {
	sends, recvs = map[int]int{}, map[int]int{}
	for _, st := range s.Steps {
		sends[st.Src]++
		for _, d := range st.Dests {
			recvs[d]++
		}
	}
	return
}

func TestBuildScheduleShapes(t *testing.T) {
	sizes := []int{2, 3, 5, 8, 13, 16}
	for k := Kind(0); k < kindCount; k++ {
		for _, p := range sizes {
			for _, root := range []int{0, p - 1, p / 2} {
				for _, hw := range []bool{false, true} {
					sp := Spec{Kind: k, Root: root, Participants: p, PayloadFlits: 3, Reps: 1}
					s, err := BuildSchedule(sp, p, hw)
					if err != nil {
						t.Fatalf("%v p=%d root=%d hw=%v: %v", k, p, root, hw, err)
					}
					if err := s.Validate(p); err != nil {
						t.Fatalf("%v p=%d root=%d hw=%v: invalid: %v", k, p, root, hw, err)
					}
					sends, recvs := flows(s)
					switch k {
					case Barrier, AllReduce, AllReduceGather:
						// Every non-root sends its contribution exactly
						// once and everyone hears the release/result.
						for node := 0; node < p; node++ {
							if node == root {
								continue
							}
							if sends[node] != 1 {
								t.Fatalf("%v p=%d root=%d: node %d sends %d times", k, p, root, node, sends[node])
							}
						}
						last := s.Steps[len(s.Steps)-1]
						if last.Src != root || !last.Multicast || len(last.Dests) != p-1 {
							t.Fatalf("%v p=%d root=%d: bad release step %+v", k, p, root, last)
						}
					case Broadcast:
						if len(s.Steps) != 1 || s.Phases != 1 || len(s.Steps[0].Dests) != p-1 {
							t.Fatalf("broadcast p=%d: %+v", p, s)
						}
					case Scatter:
						for node := 0; node < p; node++ {
							if node == root {
								continue
							}
							if recvs[node] != 1 {
								t.Fatalf("scatter p=%d root=%d hw=%v: node %d receives %d times", p, root, hw, node, recvs[node])
							}
						}
						if hw && (len(s.Steps) != p-1 || s.Phases != 1) {
							t.Fatalf("hw scatter p=%d: want %d phase-1 steps, got %+v", p, p-1, s)
						}
					case Gather:
						for node := 0; node < p; node++ {
							if node == root {
								continue
							}
							if sends[node] != 1 {
								t.Fatalf("gather p=%d root=%d hw=%v: node %d sends %d times", p, root, hw, node, sends[node])
							}
						}
						if hw && (len(s.Steps) != p-1 || s.Phases != 1) {
							t.Fatalf("hw gather p=%d: want %d phase-1 steps, got %+v", p, p-1, s)
						}
					}
				}
			}
		}
	}
}

func TestScatterGatherPayloadConservation(t *testing.T) {
	// Software splitting/combining must move exactly one personalized
	// payload per non-root endpoint: the sum of per-step payloads weighted
	// by nothing (each element travels each tree edge once per subtree
	// member) is pay * sum(subtree sizes), and each non-root's own receive
	// carries pay * its subtree size.
	const pay = 4
	for _, p := range []int{2, 5, 8, 16} {
		size := binSubtree(p)
		for _, k := range []Kind{Scatter, Gather} {
			s, err := BuildSchedule(Spec{Kind: k, Participants: p, PayloadFlits: pay, Reps: 1}, p, false)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for r := 1; r < p; r++ {
				want += pay * size[r]
			}
			got := 0
			for _, st := range s.Steps {
				got += st.Payload
			}
			if got != want {
				t.Fatalf("%v p=%d: total payload %d, want %d", k, p, got, want)
			}
		}
	}
}

func TestBuildScheduleDeterministic(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		sp := Spec{Kind: k, Root: 3, Participants: 13, PayloadFlits: 2, Reps: 5}
		a, err := BuildSchedule(sp, 16, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BuildSchedule(sp, 16, true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: schedules differ between builds", k)
		}
	}
}

func TestBuildScheduleDoesNotMutateSpec(t *testing.T) {
	sp := Spec{Kind: Gather, Reps: 2}
	if _, err := BuildSchedule(sp, 8, false); err != nil {
		t.Fatal(err)
	}
	if sp.Participants != 0 || sp.PayloadFlits != 0 {
		t.Fatalf("BuildSchedule mutated caller's spec: %+v", sp)
	}
}

// FuzzBuildSchedule asserts the builder never panics and that every schedule
// it accepts is structurally valid for the topology it was built against.
func FuzzBuildSchedule(f *testing.F) {
	f.Add(uint8(0), 0, 0, 1, 8, true)
	f.Add(uint8(2), 3, 13, 7, 16, false)
	f.Add(uint8(5), 15, 16, 64, 16, true)
	f.Add(uint8(4), 1, 2, 1, 64, false)
	f.Fuzz(func(t *testing.T, kind uint8, root, participants, payload, n int, hw bool) {
		if n < 2 || n > 256 {
			return
		}
		sp := Spec{
			Kind: Kind(kind), Root: root, Participants: participants,
			PayloadFlits: payload, Reps: 1,
		}
		s, err := BuildSchedule(sp, n, hw)
		if err != nil {
			return
		}
		if err := s.Validate(n); err != nil {
			t.Fatalf("built schedule fails validation: %v\nspec=%+v hw=%v", err, sp, hw)
		}
	})
}
