package routing

import (
	"fmt"
	"sort"
	"strings"

	"mdworm/internal/topology"
)

// Digits returns processor p written in base-arity digits, least significant
// first, padded to the given number of stages. Digit k is the down-port
// index a worm takes at a stage-k switch on its way down to p.
func Digits(p, stages, arity int) []int {
	d := make([]int, stages)
	for i := 0; i < stages; i++ {
		d[i] = p % arity
		p /= arity
	}
	return d
}

// FromDigits reverses Digits.
func FromDigits(d []int, arity int) int {
	p := 0
	for i := len(d) - 1; i >= 0; i-- {
		p = p*arity + d[i]
	}
	return p
}

// ProductSet is a destination set expressible by one multiport worm: from a
// fixed LCA switch, the worm replicates onto the down ports in PortSets[k]
// at every stage-k switch it visits, so it covers exactly the processors
// whose digit k lies in PortSets[k] for every k <= LCAStage (with digits
// above the LCA stage fixed to the source's prefix).
type ProductSet struct {
	LCAStage int
	// PortSets[k] holds the allowed digits at stage k, for k in [0, LCAStage].
	PortSets [][]int
	// Prefix holds the digits above LCAStage (shared with the source).
	Prefix []int
}

// Dests expands the product set into the concrete destination list,
// ascending.
func (ps ProductSet) Dests(arity int) []int {
	out := []int{0}
	// Build digit choices from the most significant covered digit down.
	for k := ps.LCAStage; k >= 0; k-- {
		next := make([]int, 0, len(out)*len(ps.PortSets[k]))
		for _, base := range out {
			for _, v := range ps.PortSets[k] {
				next = append(next, base*arity+v)
			}
		}
		out = next
	}
	scale := 1
	for i := 0; i <= ps.LCAStage; i++ {
		scale *= arity
	}
	hi := FromDigits(ps.Prefix, arity)
	for i := range out {
		out[i] += hi * scale
	}
	sort.Ints(out)
	return out
}

// Size returns the number of destinations covered.
func (ps ProductSet) Size() int {
	n := 1
	for _, s := range ps.PortSets {
		n *= len(s)
	}
	return n
}

// MultiportCover decomposes an arbitrary destination set into the minimal
// number of ProductSets this greedy merge finds, each coverable by a single
// multiport-encoded worm from src. Destinations must all lie below the LCA
// stage of {src} ∪ dests (always true in a full BMIN). The union of the
// returned sets equals dests exactly (no destination is covered twice).
func MultiportCover(net *topology.Network, src int, dests []int) ([]ProductSet, error) {
	if len(dests) == 0 {
		return nil, fmt.Errorf("routing: MultiportCover with no destinations")
	}
	stages, arity := net.Stages, net.Arity
	srcD := Digits(src, stages, arity)
	seen := make(map[int]bool, len(dests))
	// LCA stage: smallest s with all digits above s matching the source's.
	lca := 0
	vecs := make([][]int, 0, len(dests))
	for _, d := range dests {
		if d < 0 || d >= net.N {
			return nil, fmt.Errorf("routing: destination %d out of range", d)
		}
		if seen[d] {
			return nil, fmt.Errorf("routing: duplicate destination %d", d)
		}
		seen[d] = true
		dd := Digits(d, stages, arity)
		for k := stages - 1; k > lca; k-- {
			if dd[k] != srcD[k] {
				lca = k
				break
			}
		}
		vecs = append(vecs, dd)
	}
	// Suffix vectors over digits [0..lca].
	suffixes := make([][]int, len(vecs))
	for i, v := range vecs {
		suffixes[i] = v[:lca+1]
	}
	products := coverSuffixes(suffixes, lca, arity)
	prefix := append([]int(nil), srcD[lca+1:]...)
	out := make([]ProductSet, len(products))
	for i, p := range products {
		out[i] = ProductSet{LCAStage: lca, PortSets: p, Prefix: prefix}
	}
	// Deterministic order: by first destination.
	sort.Slice(out, func(i, j int) bool {
		return out[i].Dests(arity)[0] < out[j].Dests(arity)[0]
	})
	return out, nil
}

// coverSuffixes greedily merges digit groups with identical lower covers.
// Each returned element is PortSets[0..k].
func coverSuffixes(suffixes [][]int, k, arity int) [][][]int {
	if k == 0 {
		vals := uniqueSorted(suffixes, 0)
		return [][][]int{{vals}}
	}
	// Partition by the top digit.
	groups := make(map[int][][]int)
	for _, s := range suffixes {
		groups[s[k]] = append(groups[s[k]], s)
	}
	// Recursive covers per digit value, then merge identical covers.
	type entry struct {
		digits []int
		cover  [][][]int
	}
	byKey := make(map[string]*entry)
	var order []string
	for v := 0; v < arity; v++ {
		g, ok := groups[v]
		if !ok {
			continue
		}
		c := coverSuffixes(g, k-1, arity)
		key := coverKey(c)
		if e, ok := byKey[key]; ok {
			e.digits = append(e.digits, v)
		} else {
			byKey[key] = &entry{digits: []int{v}, cover: c}
			order = append(order, key)
		}
	}
	var out [][][]int
	for _, key := range order {
		e := byKey[key]
		for _, prod := range e.cover {
			full := make([][]int, k+1)
			copy(full, prod)
			full[k] = e.digits
			out = append(out, full)
		}
	}
	return out
}

func uniqueSorted(suffixes [][]int, pos int) []int {
	set := map[int]bool{}
	for _, s := range suffixes {
		set[s[pos]] = true
	}
	vals := make([]int, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

func coverKey(c [][][]int) string {
	var b strings.Builder
	for _, prod := range c {
		for _, set := range prod {
			for _, v := range set {
				fmt.Fprintf(&b, "%d,", v)
			}
			b.WriteByte(';')
		}
		b.WriteByte('|')
	}
	return b.String()
}
