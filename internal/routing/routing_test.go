package routing

import (
	"testing"

	"mdworm/internal/bitset"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/topology"
)

func newRouter(t *testing.T, arity, stages int, repUp bool) *Router {
	t.Helper()
	net, err := topology.NewKaryTree(arity, stages)
	if err != nil {
		t.Fatal(err)
	}
	return &Router{Net: net, ReplicateOnUpPath: repUp, Policy: UpHash}
}

func TestUnicastAllPairs(t *testing.T) {
	r := newRouter(t, 4, 3, true)
	msg := &flit.Message{ID: 99}
	for src := 0; src < r.Net.N; src++ {
		for dst := 0; dst < r.Net.N; dst++ {
			if src == dst {
				continue
			}
			hops, err := r.UnicastHops(src, dst, msg)
			if err != nil {
				t.Fatalf("unicast %d->%d: %v", src, dst, err)
			}
			// Minimal hop count: 2*lca+1 switches.
			lca := r.Net.LCAStage(src, bitset.FromSlice(r.Net.N, []int{dst}))
			if want := 2*lca + 1; len(hops) != want {
				t.Fatalf("unicast %d->%d took %d hops, want %d", src, dst, len(hops), want)
			}
		}
	}
}

func TestUnicastSelfRejected(t *testing.T) {
	r := newRouter(t, 4, 2, true)
	if _, err := r.UnicastHops(3, 3, &flit.Message{}); err == nil {
		t.Fatal("src==dst accepted")
	}
}

func TestRouteEmptyDestsRejected(t *testing.T) {
	r := newRouter(t, 4, 2, true)
	sw := r.Net.Switches[0]
	if _, err := r.Route(sw, bitset.New(r.Net.N), true); err == nil {
		t.Fatal("empty dest set accepted")
	}
}

func TestRouteDescendingUnreachableRejected(t *testing.T) {
	r := newRouter(t, 4, 2, true)
	sw := r.Net.SwitchAt(0, 0) // reaches procs 0..3
	dests := bitset.FromSlice(r.Net.N, []int{9})
	if _, err := r.Route(sw, dests, false); err == nil {
		t.Fatal("descending worm with unreachable dest accepted")
	}
}

// TestRoutePartition: for any destination set at any switch, the branch
// destination subsets are disjoint and their union (down branches plus the
// ascending residue) equals the input set.
func TestRoutePartition(t *testing.T) {
	for _, repUp := range []bool{true, false} {
		r := newRouter(t, 4, 3, repUp)
		rng := engine.NewRNG(77)
		for trial := 0; trial < 500; trial++ {
			sw := r.Net.Switches[rng.Intn(len(r.Net.Switches))]
			k := rng.Intn(10) + 1
			dests := bitset.FromSlice(r.Net.N, rng.Sample(r.Net.N, k, nil))
			ascending := rng.Intn(2) == 0
			if !ascending {
				// Descending worms must stay within reach; clamp.
				dests = dests.And(sw.ReachAll())
				if dests.Empty() {
					continue
				}
			}
			dec, err := r.Route(sw, dests, ascending)
			if err != nil {
				t.Fatal(err)
			}
			union := bitset.New(r.Net.N)
			covered := 0
			for _, b := range dec.Down {
				if union.Intersects(b.Dests) {
					t.Fatalf("overlapping branch subsets at switch %d", sw.ID)
				}
				union.OrIn(b.Dests)
				covered += b.Dests.Count()
				if !b.Dests.And(sw.Ports[b.Port].Reach).Equal(b.Dests) {
					t.Fatalf("branch dests outside port reach at switch %d", sw.ID)
				}
			}
			if !dec.UpDests.Empty() {
				if union.Intersects(dec.UpDests) && repUp {
					t.Fatalf("up residue overlaps down branches at switch %d", sw.ID)
				}
				union.OrIn(dec.UpDests)
			}
			if !union.Equal(dests) {
				t.Fatalf("branch union %v != dests %v at switch %d (repUp=%v)",
					union, dests, sw.ID, repUp)
			}
		}
	}
}

// TestRouteLCAOnlyNoEarlyBranches: with ReplicateOnUpPath disabled, an
// ascending worm with any unreachable destination must produce no down
// branches.
func TestRouteLCAOnlyNoEarlyBranches(t *testing.T) {
	r := newRouter(t, 4, 3, false)
	sw := r.Net.SwitchAt(0, 0) // reaches 0..3
	dests := bitset.FromSlice(r.Net.N, []int{1, 2, 40})
	dec, err := r.Route(sw, dests, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Down) != 0 {
		t.Fatalf("lca-only produced %d early down branches", len(dec.Down))
	}
	if !dec.UpDests.Equal(dests) {
		t.Fatalf("up residue %v, want full set", dec.UpDests)
	}
}

// TestRouteReplicateUpBranchesEarly: the same case with replication on the
// up path must cover 1 and 2 immediately and ascend only for 40.
func TestRouteReplicateUpBranchesEarly(t *testing.T) {
	r := newRouter(t, 4, 3, true)
	sw := r.Net.SwitchAt(0, 0)
	dests := bitset.FromSlice(r.Net.N, []int{1, 2, 40})
	dec, err := r.Route(sw, dests, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Down) != 2 {
		t.Fatalf("got %d down branches, want 2 (procs 1 and 2)", len(dec.Down))
	}
	if got := dec.UpDests.Members(); len(got) != 1 || got[0] != 40 {
		t.Fatalf("up residue = %v, want {40}", got)
	}
}

// TestRouteTurnaround: an ascending worm whose destinations are all within
// reach turns downward with no up branch, even out the arrival subtree.
func TestRouteTurnaround(t *testing.T) {
	for _, repUp := range []bool{true, false} {
		r := newRouter(t, 4, 2, repUp)
		sw := r.Net.SwitchAt(1, 0) // top stage, reaches all 16
		dests := bitset.FromSlice(r.Net.N, []int{0, 5, 10, 15})
		dec, err := r.Route(sw, dests, true)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.UpDests.Empty() {
			t.Fatal("turnaround worm still ascending")
		}
		if len(dec.Down) != 4 {
			t.Fatalf("got %d branches, want 4", len(dec.Down))
		}
	}
}

func TestPickUpPolicies(t *testing.T) {
	r := newRouter(t, 4, 3, true)
	sw := r.Net.SwitchAt(0, 0)
	dests := bitset.FromSlice(r.Net.N, []int{63})
	dec, err := r.Route(sw, dests, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.UpCandidates) != 4 {
		t.Fatalf("up candidates = %v", dec.UpCandidates)
	}
	msg := &flit.Message{ID: 5, Src: 0}

	// Hash: deterministic.
	r.Policy = UpHash
	first := r.PickUp(&dec, msg, nil, engine.NewRNG(1))
	for i := 0; i < 10; i++ {
		if got := r.PickUp(&dec, msg, nil, engine.NewRNG(uint64(i))); got != first {
			t.Fatal("hash policy not deterministic")
		}
	}

	// Random: stays within candidates and varies.
	r.Policy = UpRandom
	rng := engine.NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		got := r.PickUp(&dec, msg, nil, rng)
		found := false
		for _, c := range dec.UpCandidates {
			if c == got {
				found = true
			}
		}
		if !found {
			t.Fatalf("random pick %d not a candidate", got)
		}
		seen[got] = true
	}
	if len(seen) < 2 {
		t.Fatal("random policy never varied")
	}

	// Adaptive: picks the first free port, falls back to hash.
	r.Policy = UpAdaptive
	free := func(p int) bool { return p == dec.UpCandidates[2] }
	if got := r.PickUp(&dec, msg, free, engine.NewRNG(1)); got != dec.UpCandidates[2] {
		t.Fatalf("adaptive picked %d, want %d", got, dec.UpCandidates[2])
	}
	noneFree := func(int) bool { return false }
	if got := r.PickUp(&dec, msg, noneFree, engine.NewRNG(1)); got != first {
		t.Fatalf("adaptive fallback picked %d, want hash choice %d", got, first)
	}
}

func TestPolicyStrings(t *testing.T) {
	if UpHash.String() != "hash" || UpRandom.String() != "random" || UpAdaptive.String() != "adaptive" {
		t.Fatal("policy names wrong")
	}
}
