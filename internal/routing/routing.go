// Package routing computes, for a worm arriving at a switch of a BMIN, the
// set of output branches it must take: upward toward the least common
// ancestor (LCA) stage and/or downward toward destination subtrees. Routing
// is up*/down*-conformant — a worm that has turned downward never ascends —
// which is the deadlock-free base routing the paper's multidestination worms
// conform to.
package routing

import (
	"fmt"

	"mdworm/internal/bitset"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/topology"
)

// UpPolicy selects how a switch picks among its (equivalent) up ports when a
// worm must ascend.
type UpPolicy uint8

const (
	// UpHash picks deterministically by hashing the message id and source,
	// spreading independent messages across parents while keeping a given
	// message's path stable.
	UpHash UpPolicy = iota
	// UpRandom picks uniformly at random per hop.
	UpRandom
	// UpAdaptive picks the first currently-free up port, falling back to
	// the hash choice when none is free.
	UpAdaptive
)

// String names the policy.
func (p UpPolicy) String() string {
	switch p {
	case UpHash:
		return "hash"
	case UpRandom:
		return "random"
	case UpAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("uppolicy(%d)", uint8(p))
	}
}

// Router holds the routing configuration shared by all switches of a run.
type Router struct {
	Net *topology.Network
	// ReplicateOnUpPath, when true, lets an ascending multidestination
	// worm branch downward at every switch on its way to the LCA stage
	// (covering destinations as early as possible). When false the worm
	// ascends undivided to the LCA stage and replicates only on the way
	// down.
	ReplicateOnUpPath bool
	// Policy selects the up-port choice.
	Policy UpPolicy
	// OnDrop, when non-nil, is invoked by switches and NICs when an
	// injected fault forces a worm to abandon destinations: m is the
	// underlying message, ndests the number of op destinations lost
	// (software-multicast forwarding subtrees included), now the cycle.
	// The core simulator uses it to keep per-op accounting consistent so
	// degraded runs drain instead of hanging.
	OnDrop func(m *flit.Message, ndests int, now int64)
}

// Branch is one downward output the worm must take, with the destination
// subset the branch is responsible for.
type Branch struct {
	Port  int
	Dests bitset.Set
}

// Decision is the complete branching plan for a worm at a switch. DownPorts
// lists descending branches; UpDests is the residue that must continue
// ascending through one of UpCandidates (all equivalent by construction).
type Decision struct {
	Down         []Branch
	UpDests      bitset.Set // empty if the worm need not ascend
	UpCandidates []int      // valid up ports, when UpDests is non-empty
}

// NumBranches returns the total branch count once an up port is chosen.
func (d *Decision) NumBranches() int {
	n := len(d.Down)
	if !d.UpDests.Empty() {
		n++
	}
	return n
}

// Route computes the branching plan for a worm with destination set dests
// arriving at switch sw. Ascending reports whether the worm arrived from
// below (on a down port, or injected by a processor); descending worms must
// have all destinations within the switch's subtree.
func (r *Router) Route(sw *topology.Switch, dests bitset.Set, ascending bool) (Decision, error) {
	if dests.Empty() {
		return Decision{}, fmt.Errorf("routing: empty destination set at switch %d", sw.ID)
	}
	var dec Decision

	// covered means no residue above this switch: dests ⊆ ReachAll. The
	// word-wise subset test avoids materializing within/residue sets on the
	// common paths (a descending worm is always covered; an ascending
	// unicast below its LCA never is).
	covered := dests.SubsetOf(sw.ReachAll())
	if !ascending && !covered {
		return Decision{}, fmt.Errorf("routing: descending worm at switch %d has unreachable destinations %v",
			sw.ID, dests.AndNot(sw.ReachAll()).Members())
	}
	within := dests
	if !covered {
		within = dests.And(sw.ReachAll())
	}

	coverDown := ascending && (r.ReplicateOnUpPath || covered) || !ascending
	if coverDown {
		for _, pn := range sw.DownPorts() {
			if !within.Intersects(sw.Ports[pn].Reach) {
				continue
			}
			dec.Down = append(dec.Down, Branch{Port: pn, Dests: within.And(sw.Ports[pn].Reach)})
		}
	}

	switch {
	case covered:
		// Fully covered below; nothing ascends.
	case r.ReplicateOnUpPath:
		dec.UpDests = dests.AndNot(sw.ReachAll())
	default:
		// Ascend undivided; replication happens past the LCA stage.
		dec.UpDests = dests.Clone()
		dec.Down = nil
	}

	if !dec.UpDests.Empty() {
		dec.UpCandidates = append(dec.UpCandidates, sw.UpPorts()...)
		if len(dec.UpCandidates) == 0 {
			return Decision{}, fmt.Errorf("routing: switch %d must ascend for %v but has no up ports",
				sw.ID, dec.UpDests.Members())
		}
	}
	return dec, nil
}

// RouteAvoid computes the branching plan like Route while steering around
// dead output ports, as reported by the dead predicate (nil means fully
// healthy and behaves exactly like Route). Destinations whose only path runs
// through a dead port are returned in the second result for the caller to
// account as dropped: on trees every inter-switch link is a bridge, so a
// dead down port partitions its whole subtree, and a worm that must ascend
// but has lost every up port covers what it can below and abandons the
// residue. The error cases are those of Route (malformed requests), never
// mere degradation.
func (r *Router) RouteAvoid(sw *topology.Switch, dests bitset.Set, ascending bool, dead func(port int) bool) (Decision, bitset.Set, error) {
	if dead == nil {
		dec, err := r.Route(sw, dests, ascending)
		return dec, bitset.Set{}, err
	}
	if dests.Empty() {
		return Decision{}, bitset.Set{}, fmt.Errorf("routing: empty destination set at switch %d", sw.ID)
	}

	covered := dests.SubsetOf(sw.ReachAll())
	if !ascending && !covered {
		return Decision{}, bitset.Set{}, fmt.Errorf("routing: descending worm at switch %d has unreachable destinations %v",
			sw.ID, dests.AndNot(sw.ReachAll()).Members())
	}
	within := dests
	var residue bitset.Set
	if !covered {
		within = dests.And(sw.ReachAll())
		residue = dests.AndNot(sw.ReachAll())
	}

	needUp := !covered
	if needUp && len(sw.UpPorts()) == 0 {
		return Decision{}, bitset.Set{}, fmt.Errorf("routing: switch %d must ascend for %v but has no up ports",
			sw.ID, residue.Members())
	}
	var upAlive []int
	if needUp {
		for _, pn := range sw.UpPorts() {
			if !dead(pn) {
				upAlive = append(upAlive, pn)
			}
		}
	}
	upSevered := needUp && len(upAlive) == 0

	var dec Decision
	dropped := bitset.New(r.Net.N)
	coverDown := !ascending || !needUp || r.ReplicateOnUpPath || upSevered
	if coverDown {
		for _, pn := range sw.DownPorts() {
			if !within.Intersects(sw.Ports[pn].Reach) {
				continue
			}
			sub := within.And(sw.Ports[pn].Reach)
			if dead(pn) {
				dropped.OrIn(sub)
				continue
			}
			dec.Down = append(dec.Down, Branch{Port: pn, Dests: sub})
		}
	}

	switch {
	case !needUp:
		// Fully covered (or dropped) below; nothing ascends.
	case upSevered:
		// Every up port is dead: the residue is unreachable from here.
		dropped.OrIn(residue)
	case r.ReplicateOnUpPath:
		dec.UpDests = residue
	default:
		// Ascend undivided; replication happens past the LCA stage.
		dec.UpDests = dests.Clone()
		dec.Down = nil
	}
	if !dec.UpDests.Empty() {
		dec.UpCandidates = upAlive
	}
	return dec, dropped, nil
}

// PickUp chooses the up port for a decision according to the router policy.
// free reports whether an output port is currently unbound (used by the
// adaptive policy); rng supplies randomness for UpRandom.
func (r *Router) PickUp(dec *Decision, msg *flit.Message, free func(port int) bool, rng *engine.RNG) int {
	cands := dec.UpCandidates
	if len(cands) == 0 {
		panic("routing: PickUp with no candidates")
	}
	switch r.Policy {
	case UpRandom:
		return cands[rng.Intn(len(cands))]
	case UpAdaptive:
		for _, c := range cands {
			if free(c) {
				return c
			}
		}
		fallthrough
	default:
		h := msg.ID*0x9e3779b97f4a7c15 + uint64(msg.Src)*0x85ebca6b
		h ^= h >> 33
		return cands[int(h%uint64(len(cands)))]
	}
}

// UnicastHops returns the switch path (ids) a unicast from src to dst takes
// under the hash up-port policy, for inspection and tests.
func (r *Router) UnicastHops(src, dst int, msg *flit.Message) ([]int, error) {
	if src == dst {
		return nil, fmt.Errorf("routing: src == dst == %d", src)
	}
	dests := bitset.New(r.Net.N)
	dests.Add(dst)
	swID, _ := r.Net.ProcAttach(src)
	var hops []int
	ascending := true
	for {
		sw := r.Net.Switches[swID]
		hops = append(hops, swID)
		if len(hops) > 4*r.Net.Stages {
			return nil, fmt.Errorf("routing: unicast %d->%d did not converge", src, dst)
		}
		dec, err := r.Route(sw, dests, ascending)
		if err != nil {
			return nil, err
		}
		if !dec.UpDests.Empty() {
			up := r.PickUp(&dec, msg, func(int) bool { return true }, engine.NewRNG(1))
			swID = sw.Ports[up].PeerSwitch
			continue
		}
		if len(dec.Down) != 1 {
			return nil, fmt.Errorf("routing: unicast at switch %d produced %d branches", sw.ID, len(dec.Down))
		}
		p := &sw.Ports[dec.Down[0].Port]
		if p.Proc >= 0 {
			if p.Proc != dst {
				return nil, fmt.Errorf("routing: unicast %d->%d delivered to %d", src, dst, p.Proc)
			}
			return hops, nil
		}
		swID = p.PeerSwitch
		ascending = false
	}
}
