package routing

import (
	"reflect"
	"sort"
	"testing"

	"mdworm/internal/engine"
	"mdworm/internal/topology"
)

func TestDigitsRoundTrip(t *testing.T) {
	for p := 0; p < 256; p++ {
		d := Digits(p, 4, 4)
		if got := FromDigits(d, 4); got != p {
			t.Fatalf("Digits/FromDigits(%d) = %d", p, got)
		}
	}
	if got := Digits(27, 3, 4); !reflect.DeepEqual(got, []int{3, 2, 1}) {
		t.Fatalf("Digits(27) = %v", got) // 27 = 1*16 + 2*4 + 3
	}
}

func TestProductSetDests(t *testing.T) {
	ps := ProductSet{
		LCAStage: 1,
		PortSets: [][]int{{0, 2}, {1, 3}}, // digit0 in {0,2}, digit1 in {1,3}
		Prefix:   []int{2},                // digit2 = 2
	}
	got := ps.Dests(4)
	// procs = 2*16 + d1*4 + d0 for d1 in {1,3}, d0 in {0,2}
	want := []int{36, 38, 44, 46}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Dests = %v, want %v", got, want)
	}
	if ps.Size() != 4 {
		t.Fatalf("Size = %d", ps.Size())
	}
}

func coverUnion(t *testing.T, net *topology.Network, cover []ProductSet) []int {
	t.Helper()
	seen := map[int]bool{}
	for _, ps := range cover {
		for _, d := range ps.Dests(net.Arity) {
			if seen[d] {
				t.Fatalf("destination %d covered twice", d)
			}
			seen[d] = true
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

func TestMultiportCoverExact(t *testing.T) {
	net, _ := topology.NewKaryTree(4, 3)
	cases := []struct {
		src       int
		dests     []int
		wantWorms int // -1 for "don't check"
	}{
		{0, []int{1}, 1},
		{0, []int{1, 2, 3}, 1},
		{5, []int{4, 6, 7}, -1},
		{0, []int{16, 17, 18, 19}, 1},           // a full remote switch: one worm
		{0, []int{4, 5, 6, 7, 8, 9, 10, 11}, 1}, // product across two switches
		{0, []int{1, 4}, -1},
		{63, []int{0, 21, 42}, -1},
	}
	for _, c := range cases {
		cover, err := MultiportCover(net, c.src, c.dests)
		if err != nil {
			t.Fatalf("cover %v: %v", c.dests, err)
		}
		want := append([]int(nil), c.dests...)
		sort.Ints(want)
		if got := coverUnion(t, net, cover); !reflect.DeepEqual(got, want) {
			t.Fatalf("cover of %v covers %v", c.dests, got)
		}
		if c.wantWorms >= 0 && len(cover) != c.wantWorms {
			t.Fatalf("cover of %v used %d worms, want %d", c.dests, len(cover), c.wantWorms)
		}
	}
}

func TestMultiportCoverBroadcastOneWorm(t *testing.T) {
	net, _ := topology.NewKaryTree(4, 3)
	dests := make([]int, 0, 63)
	for d := 1; d < 64; d++ {
		dests = append(dests, d)
	}
	cover, err := MultiportCover(net, 0, dests)
	if err != nil {
		t.Fatal(err)
	}
	// Broadcast minus the source is not a perfect product (the source's own
	// stage-0 switch misses proc 0), so a handful of worms is expected —
	// but far fewer than 63.
	if len(cover) > 4 {
		t.Fatalf("broadcast cover used %d worms", len(cover))
	}
	if got := coverUnion(t, net, cover); len(got) != 63 {
		t.Fatalf("broadcast cover covers %d", len(got))
	}
}

// Property: for random destination sets, the cover partitions the set
// exactly and every product set lies within the source's LCA subtree.
func TestMultiportCoverQuick(t *testing.T) {
	net, _ := topology.NewKaryTree(4, 3)
	rng := engine.NewRNG(13)
	for trial := 0; trial < 300; trial++ {
		src := rng.Intn(net.N)
		k := rng.Intn(20) + 1
		dests := rng.Sample(net.N, k, map[int]bool{src: true})
		cover, err := MultiportCover(net, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]int(nil), dests...)
		sort.Ints(want)
		if got := coverUnion(t, net, cover); !reflect.DeepEqual(got, want) {
			t.Fatalf("src %d dests %v: cover covers %v", src, want, got)
		}
		if len(cover) > len(dests) {
			t.Fatalf("cover larger than separate addressing: %d > %d", len(cover), len(dests))
		}
	}
}

func TestMultiportCoverErrors(t *testing.T) {
	net, _ := topology.NewKaryTree(4, 2)
	if _, err := MultiportCover(net, 0, nil); err == nil {
		t.Error("empty dests accepted")
	}
	if _, err := MultiportCover(net, 0, []int{1, 1}); err == nil {
		t.Error("duplicate dests accepted")
	}
	if _, err := MultiportCover(net, 0, []int{99}); err == nil {
		t.Error("out-of-range dest accepted")
	}
}
