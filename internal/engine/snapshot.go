package engine

import (
	"sort"

	"mdworm/internal/ckpt"
	"mdworm/internal/flit"
)

// Checkpoint support: the engine serializes exactly the state that evolves
// at runtime — clock, activity counters, scheduler sleep flags, link queues
// and credits, RNG stream positions — and skips everything fixed at
// construction (names, latencies, capacities, wiring), which the restoring
// process rebuilds from the run configuration.

// State returns the RNG stream position.
func (r *RNG) State() uint64 { return r.state }

// SetState repositions the RNG stream.
func (r *RNG) SetState(s uint64) { r.state = s }

// State returns the last identifier handed out.
func (g *IDGen) State() uint64 { return g.n }

// SetState restores the identifier counter.
func (g *IDGen) SetState(n uint64) { g.n = n }

// at returns the i-th queued element (0 = oldest) without consuming it.
func (r *ring[T]) at(i int) *timed[T] {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

// CollectState adds every worm referenced by the link's queues to the
// checkpoint object graph.
func (l *Link) CollectState(g *ckpt.Graph) {
	for i := 0; i < l.inflight.len(); i++ {
		g.AddWorm(l.inflight.at(i).v.W)
	}
	g.AddWorm(l.expectWorm)
}

// EncodeState writes the link's mutable state.
func (l *Link) EncodeState(e *ckpt.Enc, g *ckpt.Graph) {
	e.Int(l.inflight.len())
	for i := 0; i < l.inflight.len(); i++ {
		f := l.inflight.at(i)
		e.U64(g.WormID(f.v.W))
		e.Int(f.v.Idx)
		e.I64(f.at)
	}
	e.Int(l.creditsQ.len())
	for i := 0; i < l.creditsQ.len(); i++ {
		c := l.creditsQ.at(i)
		e.Int(c.v)
		e.I64(c.at)
	}
	e.Int(l.credits)
	e.I64(l.lastSend)
	e.I64(l.lastTake)
	e.I64(l.carried)
	e.Bool(l.failed)
	e.Bool(l.midWorm)
	e.I64(l.stuckUntil)
	e.U64(g.WormID(l.expectWorm))
	e.Int(l.expectIdx)
}

// DecodeState restores the link's mutable state over a freshly constructed
// link (same name/latency/capacity). Malformed input sets the decoder error.
func (l *Link) DecodeState(d *ckpt.Dec, g *ckpt.Graph) {
	l.inflight = ring[flit.Ref]{}
	nf := d.Count(24)
	for i := 0; i < nf && d.Err() == nil; i++ {
		w := g.WormAt(d, d.U64())
		idx := d.Int()
		at := d.I64()
		if d.Err() != nil {
			return
		}
		if w == nil || idx < 0 || idx >= w.Len() {
			d.Fail("link %s: in-flight flit %d/%d out of range", l.name, i, nf)
			return
		}
		l.inflight.push(timed[flit.Ref]{v: flit.Ref{W: w, Idx: idx}, at: at})
	}
	l.creditsQ = ring[int]{}
	nc := d.Count(16)
	for i := 0; i < nc && d.Err() == nil; i++ {
		v := d.Int()
		at := d.I64()
		l.creditsQ.push(timed[int]{v: v, at: at})
	}
	l.credits = d.Int()
	l.lastSend = d.I64()
	l.lastTake = d.I64()
	l.carried = d.I64()
	l.failed = d.Bool()
	l.midWorm = d.Bool()
	l.stuckUntil = d.I64()
	l.expectWorm = g.WormAt(d, d.U64())
	l.expectIdx = d.Int()
	if d.Err() != nil {
		return
	}
	if l.credits < 0 || l.credits > l.capacity {
		d.Fail("link %s: %d credits outside [0,%d]", l.name, l.credits, l.capacity)
	}
}

// CollectState adds worms held by every link to the graph.
func (s *Simulation) CollectState(g *ckpt.Graph) {
	for _, l := range s.links {
		l.CollectState(g)
	}
}

// EncodeState writes the simulation's clock, activity counters, scheduler
// sleep flags (by registration index), and every registered link's state
// (by registration order).
func (s *Simulation) EncodeState(e *ckpt.Enc, g *ckpt.Graph) {
	e.I64(s.Now)
	e.I64(s.activity)
	e.I64(s.lastActivity)
	e.Int(len(s.comps))
	for i := range s.comps {
		e.Bool(s.comps[i].asleep)
	}
	e.Int(len(s.links))
	for _, l := range s.links {
		l.EncodeState(e, g)
	}
}

// DecodeState restores the simulation over a freshly built twin: the
// component and link counts must match the encoding or the decoder error is
// set (a checkpoint from a different configuration).
func (s *Simulation) DecodeState(d *ckpt.Dec, g *ckpt.Graph) {
	s.Now = d.I64()
	s.activity = d.I64()
	s.lastActivity = d.I64()
	nc := d.Count(1)
	if d.Err() != nil {
		return
	}
	if nc != len(s.comps) {
		d.Fail("simulation: %d components, checkpoint has %d", len(s.comps), nc)
		return
	}
	for i := 0; i < nc; i++ {
		s.comps[i].asleep = d.Bool()
	}
	nl := d.Count(1)
	if d.Err() != nil {
		return
	}
	if nl != len(s.links) {
		d.Fail("simulation: %d links, checkpoint has %d", len(s.links), nl)
		return
	}
	for _, l := range s.links {
		l.DecodeState(d, g)
		if d.Err() != nil {
			return
		}
	}
	// Rebuild the derived scheduler state: the awake bitmap mirrors the
	// asleep flags, the busy-link census mirrors the decoded wires, and the
	// event queue starts empty (DecodeEvents or WakeAll fills in wakes).
	for i := range s.awake {
		s.awake[i] = 0
	}
	s.awakeCount = 0
	for i := range s.comps {
		s.comps[i].wakeAt = noWake
		if !s.comps[i].asleep {
			s.awake[i>>6] |= 1 << uint(i&63)
			s.awakeCount++
		}
	}
	s.busyLinks = 0
	for _, l := range s.links {
		if l.inflight.len() > 0 {
			s.busyLinks++
		}
	}
	s.evq.reset(s.Now)
}

// eventSectionVersion tags the encoding of the kernel's event-queue
// section so future layouts can coexist with old blobs.
const eventSectionVersion = 1

// EncodeEvents writes the kernel's queued wake events — sorted by (cycle,
// component) into a canonical order so restore followed by re-snapshot is
// byte-stable — plus each component's pending-wake marker, which suppresses
// redundant event pushes and must survive the round trip exactly for a
// resumed run to schedule the same events as the original.
func (s *Simulation) EncodeEvents(e *ckpt.Enc) {
	e.Int(eventSectionVersion)
	events := s.evq.collect(nil)
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].comp < events[j].comp
	})
	e.Int(len(events))
	for _, ev := range events {
		e.I64(ev.at)
		e.Int(int(ev.comp))
	}
	e.Int(len(s.comps))
	for i := range s.comps {
		if s.comps[i].wakeAt == noWake {
			e.Bool(false)
		} else {
			e.Bool(true)
			e.I64(s.comps[i].wakeAt)
		}
	}
}

// DecodeEvents restores the event queue and pending-wake markers written by
// EncodeEvents. It must run after DecodeState (it validates against the
// restored clock and component set).
func (s *Simulation) DecodeEvents(d *ckpt.Dec) {
	if v := d.Int(); v != eventSectionVersion {
		d.Fail("events: unsupported section version %d", v)
		return
	}
	s.evq.reset(s.Now)
	n := d.Count(16)
	for i := 0; i < n && d.Err() == nil; i++ {
		at := d.I64()
		comp := d.Int()
		if d.Err() != nil {
			return
		}
		if comp < 0 || comp >= len(s.comps) {
			d.Fail("events: component %d outside [0,%d)", comp, len(s.comps))
			return
		}
		if at < s.Now {
			d.Fail("events: wake at cycle %d before clock %d", at, s.Now)
			return
		}
		s.evq.push(at, int32(comp))
	}
	nc := d.Count(1)
	if d.Err() != nil {
		return
	}
	if nc != len(s.comps) {
		d.Fail("events: %d components, checkpoint has %d", len(s.comps), nc)
		return
	}
	for i := 0; i < nc && d.Err() == nil; i++ {
		if d.Bool() {
			s.comps[i].wakeAt = d.I64()
		} else {
			s.comps[i].wakeAt = noWake
		}
	}
}

// WakeAll clears every component's sleep state and empties the event
// queue. It is the safe fallback when restoring a checkpoint that predates
// the event-queue section: a spuriously awake component steps as a no-op
// and re-sleeps, re-deriving its wake events from link and timer state.
func (s *Simulation) WakeAll() {
	for i := range s.comps {
		s.wakeIdx(int32(i))
	}
	s.evq.reset(s.Now)
}

// EncodeState writes the checker's counters and bounded samples. Strict is
// a configuration bit, not state.
func (inv *Invariants) EncodeState(e *ckpt.Enc) {
	e.I64(inv.total)
	rules := make([]string, 0, len(inv.byRule))
	for r := range inv.byRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	e.Int(len(rules))
	for _, r := range rules {
		e.String(r)
		e.I64(inv.byRule[r])
	}
	e.Int(len(inv.samples))
	for _, v := range inv.samples {
		e.I64(v.Cycle)
		e.String(v.Rule)
		e.String(v.Detail)
	}
}

// DecodeState restores the checker counters.
func (inv *Invariants) DecodeState(d *ckpt.Dec) {
	inv.total = d.I64()
	inv.byRule = make(map[string]int64)
	nr := d.Count(16)
	for i := 0; i < nr && d.Err() == nil; i++ {
		r := d.String()
		inv.byRule[r] = d.I64()
	}
	inv.samples = nil
	ns := d.Count(24)
	if ns > maxViolationSamples {
		d.Fail("invariants: %d samples exceeds bound %d", ns, maxViolationSamples)
		return
	}
	for i := 0; i < ns && d.Err() == nil; i++ {
		inv.samples = append(inv.samples, Violation{Cycle: d.I64(), Rule: d.String(), Detail: d.String()})
	}
}
