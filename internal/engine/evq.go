package engine

import "math/bits"

// The event queue is a calendar queue in the classic two-tier form: a
// timing wheel of wheelSize one-cycle buckets covering the near future,
// backed by a binary min-heap for events beyond the wheel horizon. Events
// are (cycle, component) wake requests — the only event payload the kernel
// needs, because waking a component makes it re-inspect its inputs and
// timers itself. Pushes into the wheel are O(1); the heap only sees the
// rare far-future deadline (fault-plan activations, long probe periods).
//
// Bucket slices are truncated, never freed, and the heap keeps its backing
// array, so a simulation in steady state schedules and dispatches events
// without allocating.

const (
	wheelBits = 8
	wheelSize = 1 << wheelBits // cycles covered by the wheel window
	wheelMask = wheelSize - 1
)

// compEvent schedules component comp to be woken at cycle at.
type compEvent struct {
	at   int64
	comp int32
}

type eventQueue struct {
	// base is the start of the wheel window [base, base+wheelSize); no
	// queued event is earlier than base.
	base int64
	// earliest caches the minimum at over all queued events; valid only
	// while n > 0.
	earliest int64
	n        int

	buckets [wheelSize][]compEvent
	occ     [wheelSize / 64]uint64 // occupancy bitmap over bucket slots
	far     []compEvent            // min-heap on at, beyond the wheel horizon
}

func (q *eventQueue) len() int { return q.n }

// peek returns the earliest queued cycle.
func (q *eventQueue) peek() (int64, bool) {
	if q.n == 0 {
		return 0, false
	}
	return q.earliest, true
}

// push enqueues a wake for comp at cycle at, which must be >= base (the
// kernel rejects past events before calling).
func (q *eventQueue) push(at int64, comp int32) {
	if q.n == 0 || at < q.earliest {
		q.earliest = at
	}
	q.n++
	if at-q.base < wheelSize {
		slot := int(at & wheelMask)
		q.buckets[slot] = append(q.buckets[slot], compEvent{at: at, comp: comp})
		q.occ[slot>>6] |= 1 << uint(slot&63)
		return
	}
	q.farPush(compEvent{at: at, comp: comp})
}

// popDue removes every event with at <= now and hands its component index
// to wake. It advances the wheel window as it drains.
func (q *eventQueue) popDue(now int64, wake func(comp int32)) {
	for q.n > 0 && q.earliest <= now {
		at := q.earliest
		if at-q.base < wheelSize {
			slot := int(at & wheelMask)
			b := q.buckets[slot]
			for _, ev := range b {
				wake(ev.comp)
			}
			q.n -= len(b)
			q.buckets[slot] = b[:0]
			q.occ[slot>>6] &^= 1 << uint(slot&63)
		} else {
			// The wheel is empty (a wheel event would be earlier), so the
			// minimum lives at the top of the heap.
			ev := q.farPop()
			q.n--
			wake(ev.comp)
		}
		q.base = at + 1
		q.refill()
		q.recomputeEarliest()
	}
	if q.base <= now {
		q.base = now + 1
		q.refill()
		if q.n > 0 {
			q.recomputeEarliest()
		}
	}
}

// refill migrates heap events that now fall inside the wheel window.
func (q *eventQueue) refill() {
	for len(q.far) > 0 && q.far[0].at-q.base < wheelSize {
		ev := q.farPop()
		slot := int(ev.at & wheelMask)
		q.buckets[slot] = append(q.buckets[slot], ev)
		q.occ[slot>>6] |= 1 << uint(slot&63)
	}
}

// recomputeEarliest rescans for the minimum queued cycle. Within the wheel
// window slot order from base is time order, so the first occupied slot in
// cyclic order holds the earliest events.
func (q *eventQueue) recomputeEarliest() {
	if q.n == 0 {
		return
	}
	start := int(q.base & wheelMask)
	w, b := start>>6, uint(start&63)
	for i := 0; i <= len(q.occ); i++ {
		word := q.occ[(w+i)%len(q.occ)]
		if i == 0 {
			word &= ^uint64(0) << b
		} else if i == len(q.occ) {
			word &^= ^uint64(0) << b
		}
		if word != 0 {
			slot := ((w+i)%len(q.occ))<<6 + bits.TrailingZeros64(word)
			q.earliest = q.buckets[slot][0].at
			return
		}
	}
	q.earliest = q.far[0].at
}

func (q *eventQueue) farPush(e compEvent) {
	q.far = append(q.far, e)
	i := len(q.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.far[p].at <= q.far[i].at {
			break
		}
		q.far[p], q.far[i] = q.far[i], q.far[p]
		i = p
	}
}

func (q *eventQueue) farPop() compEvent {
	top := q.far[0]
	last := len(q.far) - 1
	q.far[0] = q.far[last]
	q.far = q.far[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && q.far[l].at < q.far[min].at {
			min = l
		}
		if r < last && q.far[r].at < q.far[min].at {
			min = r
		}
		if min == i {
			break
		}
		q.far[i], q.far[min] = q.far[min], q.far[i]
		i = min
	}
	return top
}

// collect appends every queued event to dst (duplicates included) for
// snapshot encoding; callers sort the result into canonical order.
func (q *eventQueue) collect(dst []compEvent) []compEvent {
	for slot := range q.buckets {
		dst = append(dst, q.buckets[slot]...)
	}
	dst = append(dst, q.far...)
	return dst
}

// reset empties the queue and rebases the window at now.
func (q *eventQueue) reset(now int64) {
	for slot := range q.buckets {
		q.buckets[slot] = q.buckets[slot][:0]
	}
	for i := range q.occ {
		q.occ[i] = 0
	}
	q.far = q.far[:0]
	q.n = 0
	q.base = now
}
