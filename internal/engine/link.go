package engine

import (
	"fmt"

	"mdworm/internal/flit"
)

// Link is a unidirectional channel between an output port and an input port
// with a fixed latency in cycles and a bandwidth of one flit per cycle.
// Flow control is credit-based: the sender holds one credit per free slot of
// the receiver's buffer, consumes a credit per flit sent, and regains
// credits (after the same link latency) when the receiver frees buffer
// space. With this discipline the receiver never overflows, so arriving
// flits can always be accepted.
type Link struct {
	name    string
	latency int64

	inflight ring[flit.Ref] // flits on the wire, in send order
	creditsQ ring[int]      // credit returns on the reverse wire
	credits  int            // sender-visible credits (after draining creditsQ)

	lastSend int64 // cycle of most recent Send, for the 1 flit/cycle limit
	lastTake int64 // cycle of most recent TakeArrived

	carried  int64       // flits delivered over the lifetime of the link
	activity *int64      // simulation activity counter
	sim      *Simulation // owning kernel; nil for standalone links
	recv     int32       // receiving component index, -1 if undeclared

	capacity   int   // initial credit count, the overflow ceiling
	failed     bool  // LinkDown fault: refuse new worms at the next boundary
	midWorm    bool  // a worm's head has crossed without its tail
	stuckUntil int64 // PortStuck fault: no sends strictly before this cycle

	inv        *Invariants // checker sink; nil for standalone links
	expectWorm *flit.Worm  // conservation: worm whose next flit must follow
	expectIdx  int
}

type timed[T any] struct {
	v  T
	at int64
}

// ring is an index-based FIFO over a power-of-two backing array. Unlike the
// re-sliced append queue it replaces, pops advance a head index and pushes
// reuse freed slots, so a link in steady state allocates nothing.
type ring[T any] struct {
	buf  []timed[T]
	head int
	n    int
}

func (r *ring[T]) len() int { return r.n }

// front returns the oldest element; the ring must be non-empty.
func (r *ring[T]) front() *timed[T] { return &r.buf[r.head] }

func (r *ring[T]) push(v timed[T]) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *ring[T]) pop() timed[T] {
	e := r.buf[r.head]
	var zero timed[T]
	r.buf[r.head] = zero // drop references so retired worms can be collected
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return e
}

func (r *ring[T]) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 4
	}
	buf := make([]timed[T], size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// NewLink creates a link with the given latency (>= 1) and initial credit
// count (the capacity of the receiver's buffer).
func NewLink(name string, latency, credits int) *Link {
	if latency < 1 {
		panic("engine: link latency must be >= 1")
	}
	if credits < 1 {
		panic("engine: link credits must be >= 1")
	}
	var noop int64
	l := &Link{
		name:     name,
		latency:  int64(latency),
		credits:  credits,
		capacity: credits,
		lastSend: -1,
		lastTake: -1,
		activity: &noop,
		recv:     -1,
	}
	// Credit discipline bounds both rings at the credit capacity, so size
	// them up front instead of growing through the first busy worms.
	size := 4
	for size < credits {
		size *= 2
	}
	l.inflight.buf = make([]timed[flit.Ref], size)
	l.creditsQ.buf = make([]timed[int], size)
	return l
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Carried returns the number of flits delivered so far.
func (l *Link) Carried() int64 { return l.carried }

// InFlight returns the number of flits currently on the wire.
func (l *Link) InFlight() int { return l.inflight.len() }

func (l *Link) drainCredits(now int64) {
	for l.creditsQ.len() > 0 && l.creditsQ.front().at <= now {
		l.credits += l.creditsQ.pop().v
	}
	if l.credits > l.capacity && l.inv != nil {
		l.inv.Violate(now, "credit-overflow",
			"link %s: %d credits exceed capacity %d", l.name, l.credits, l.capacity)
		l.credits = l.capacity
	}
}

// CanSend reports whether the sender may push a flit this cycle: the link is
// not stuck or (at a worm boundary) failed, a credit is available, and the
// per-cycle bandwidth is unused. A failed link still grants the remaining
// flits of a worm whose head already crossed — failure lands at worm
// boundaries so flit conservation holds.
func (l *Link) CanSend(now int64) bool {
	l.drainCredits(now)
	if now < l.stuckUntil {
		return false
	}
	if l.failed && !l.midWorm {
		return false
	}
	return l.credits > 0 && l.lastSend < now
}

// Credits returns the sender-visible credit count.
func (l *Link) Credits(now int64) int {
	l.drainCredits(now)
	return l.credits
}

// Send pushes one flit onto the wire; it arrives at now+latency. It panics
// if called without CanSend — senders must check first.
func (l *Link) Send(now int64, r flit.Ref) {
	if !l.CanSend(now) {
		panic(fmt.Sprintf("engine: link %s: Send without credit/bandwidth at cycle %d", l.name, now))
	}
	l.checkOrder(now, r)
	l.credits--
	l.lastSend = now
	l.midWorm = !r.Tail()
	if l.inflight.len() == 0 && l.sim != nil {
		l.sim.busyLinks++
	}
	l.inflight.push(timed[flit.Ref]{v: r, at: now + l.latency})
	*l.activity++
	if l.recv >= 0 {
		l.sim.noteSend(l.recv, now+l.latency)
	}
}

// checkOrder enforces per-link flit conservation: a worm's flits cross a
// link contiguously (no interleaving with another worm) and in index order,
// head first, tail last. Violations are reported and the tracking state
// resynchronizes to the offending flit.
func (l *Link) checkOrder(now int64, r flit.Ref) {
	if l.inv != nil {
		switch {
		case l.expectWorm == nil:
			if r.Idx != 0 {
				l.inv.Violate(now, "flit-order",
					"link %s: worm %d starts mid-worm at flit %d", l.name, r.W.ID, r.Idx)
			}
		case r.W != l.expectWorm:
			l.inv.Violate(now, "flit-interleave",
				"link %s: worm %d preempts unfinished worm %d", l.name, r.W.ID, l.expectWorm.ID)
		case r.Idx != l.expectIdx:
			l.inv.Violate(now, "flit-order",
				"link %s: worm %d flit %d where flit %d was due", l.name, r.W.ID, r.Idx, l.expectIdx)
		}
	}
	if r.Tail() {
		l.expectWorm = nil
	} else {
		l.expectWorm = r.W
		l.expectIdx = r.Idx + 1
	}
}

// Arrived returns the oldest flit whose arrival time has passed, without
// consuming it. The second result is false if nothing has arrived or the
// receiver already took a flit this cycle.
func (l *Link) Arrived(now int64) (flit.Ref, bool) {
	if l.lastTake >= now || l.inflight.len() == 0 || l.inflight.front().at > now {
		return flit.Ref{}, false
	}
	return l.inflight.front().v, true
}

// TakeArrived consumes the flit returned by Arrived. The receiver is
// responsible for storing it (credit discipline guarantees space) and for
// returning a credit once the space frees.
func (l *Link) TakeArrived(now int64) flit.Ref {
	r, ok := l.Arrived(now)
	if !ok {
		panic(fmt.Sprintf("engine: link %s: TakeArrived with nothing arrived at cycle %d", l.name, now))
	}
	l.inflight.pop()
	if l.inflight.len() == 0 && l.sim != nil {
		l.sim.busyLinks--
	}
	l.lastTake = now
	l.carried++
	return r
}

// ReturnCredit notifies the sender (after the link latency) that n slots of
// the receiver's buffer have been freed.
func (l *Link) ReturnCredit(now int64, n int) {
	if n <= 0 {
		panic("engine: ReturnCredit with non-positive n")
	}
	l.creditsQ.push(timed[int]{v: n, at: now + l.latency})
}

// Quiesced reports whether no flits are on the wire.
func (l *Link) Quiesced() bool { return l.inflight.len() == 0 }

func (l *Link) bindActivity(counter *int64) { l.activity = counter }

// Capacity returns the receiver buffer size the link was created with.
func (l *Link) Capacity() int { return l.capacity }

// Fail marks the link permanently dead at worm granularity (LinkDown fault):
// a worm mid-transfer finishes, after which CanSend refuses new worms.
// In-flight flits are never dropped.
func (l *Link) Fail() { l.failed = true }

// Dead reports whether Fail was applied. Senders and routing use it to drop
// or reroute new worms at a clean boundary instead of waiting forever.
func (l *Link) Dead() bool { return l.failed }

// MidWorm reports whether a worm's head has crossed without its tail, i.e.
// a transfer is committed and must be allowed to finish even on a dead link.
func (l *Link) MidWorm() bool { return l.midWorm }

// StickUntil blocks new sends strictly before the given cycle (PortStuck
// fault); overlapping windows keep the latest deadline.
func (l *Link) StickUntil(cycle int64) {
	if cycle > l.stuckUntil {
		l.stuckUntil = cycle
	}
}
