package engine

import (
	"fmt"

	"mdworm/internal/flit"
)

// Link is a unidirectional channel between an output port and an input port
// with a fixed latency in cycles and a bandwidth of one flit per cycle.
// Flow control is credit-based: the sender holds one credit per free slot of
// the receiver's buffer, consumes a credit per flit sent, and regains
// credits (after the same link latency) when the receiver frees buffer
// space. With this discipline the receiver never overflows, so arriving
// flits can always be accepted.
type Link struct {
	name    string
	latency int64

	inflight []timed[flit.Ref] // flits on the wire, in send order
	creditsQ []timed[int]      // credit returns on the reverse wire
	credits  int               // sender-visible credits (after draining creditsQ)

	lastSend int64 // cycle of most recent Send, for the 1 flit/cycle limit
	lastTake int64 // cycle of most recent TakeArrived

	carried  int64  // flits delivered over the lifetime of the link
	activity *int64 // simulation activity counter
}

type timed[T any] struct {
	v  T
	at int64
}

// NewLink creates a link with the given latency (>= 1) and initial credit
// count (the capacity of the receiver's buffer).
func NewLink(name string, latency, credits int) *Link {
	if latency < 1 {
		panic("engine: link latency must be >= 1")
	}
	if credits < 1 {
		panic("engine: link credits must be >= 1")
	}
	var noop int64
	return &Link{
		name:     name,
		latency:  int64(latency),
		credits:  credits,
		lastSend: -1,
		lastTake: -1,
		activity: &noop,
	}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Carried returns the number of flits delivered so far.
func (l *Link) Carried() int64 { return l.carried }

// InFlight returns the number of flits currently on the wire.
func (l *Link) InFlight() int { return len(l.inflight) }

func (l *Link) drainCredits(now int64) {
	for len(l.creditsQ) > 0 && l.creditsQ[0].at <= now {
		l.credits += l.creditsQ[0].v
		l.creditsQ = l.creditsQ[1:]
	}
}

// CanSend reports whether the sender may push a flit this cycle: a credit is
// available and the per-cycle bandwidth is unused.
func (l *Link) CanSend(now int64) bool {
	l.drainCredits(now)
	return l.credits > 0 && l.lastSend < now
}

// Credits returns the sender-visible credit count.
func (l *Link) Credits(now int64) int {
	l.drainCredits(now)
	return l.credits
}

// Send pushes one flit onto the wire; it arrives at now+latency. It panics
// if called without CanSend — senders must check first.
func (l *Link) Send(now int64, r flit.Ref) {
	if !l.CanSend(now) {
		panic(fmt.Sprintf("engine: link %s: Send without credit/bandwidth at cycle %d", l.name, now))
	}
	l.credits--
	l.lastSend = now
	l.inflight = append(l.inflight, timed[flit.Ref]{v: r, at: now + l.latency})
	*l.activity++
}

// Arrived returns the oldest flit whose arrival time has passed, without
// consuming it. The second result is false if nothing has arrived or the
// receiver already took a flit this cycle.
func (l *Link) Arrived(now int64) (flit.Ref, bool) {
	if l.lastTake >= now || len(l.inflight) == 0 || l.inflight[0].at > now {
		return flit.Ref{}, false
	}
	return l.inflight[0].v, true
}

// TakeArrived consumes the flit returned by Arrived. The receiver is
// responsible for storing it (credit discipline guarantees space) and for
// returning a credit once the space frees.
func (l *Link) TakeArrived(now int64) flit.Ref {
	r, ok := l.Arrived(now)
	if !ok {
		panic(fmt.Sprintf("engine: link %s: TakeArrived with nothing arrived at cycle %d", l.name, now))
	}
	l.inflight = l.inflight[1:]
	l.lastTake = now
	l.carried++
	return r
}

// ReturnCredit notifies the sender (after the link latency) that n slots of
// the receiver's buffer have been freed.
func (l *Link) ReturnCredit(now int64, n int) {
	if n <= 0 {
		panic("engine: ReturnCredit with non-positive n")
	}
	l.creditsQ = append(l.creditsQ, timed[int]{v: n, at: now + l.latency})
}

// Quiesced reports whether no flits are on the wire.
func (l *Link) Quiesced() bool { return len(l.inflight) == 0 }

func (l *Link) bindActivity(counter *int64) { l.activity = counter }
