package engine

// IDGen hands out unique identifiers for messages, worms, and operations
// within one simulation run.
type IDGen struct {
	n uint64
}

// Next returns the next identifier, starting at 1.
func (g *IDGen) Next() uint64 {
	g.n++
	return g.n
}
