package engine

import (
	"strings"
	"testing"

	"mdworm/internal/ckpt"
	"mdworm/internal/flit"
)

// recorder logs the cycle of every step it receives into a shared journal,
// tagged with its name, so tests can assert exact step cycles and exact
// same-cycle ordering across components.
type recorder struct {
	name    string
	in      *Link
	journal *[]string
	cycles  []int64
}

func (r *recorder) Name() string   { return r.name }
func (r *recorder) Quiesced() bool { return true }
func (r *recorder) Step(now int64) {
	r.cycles = append(r.cycles, now)
	if r.journal != nil {
		*r.journal = append(*r.journal, r.name)
	}
	if r.in != nil {
		if _, ok := r.in.Arrived(now); ok {
			r.in.TakeArrived(now)
			r.in.ReturnCredit(now, 1)
		}
	}
}

func TestScheduleWakeAtPastErrors(t *testing.T) {
	sim := NewSimulation(0)
	c := &recorder{name: "c"}
	sim.AddComponent(c)
	sim.DeclareInputs(c) // sleepable, no links
	if err := sim.Run(5); err != nil {
		t.Fatal(err)
	}
	// Scheduling at or before the current cycle must error, not silently
	// reorder time.
	if err := sim.ScheduleWakeAt(c, sim.Now); err == nil {
		t.Fatal("ScheduleWakeAt at the current cycle did not error")
	}
	if err := sim.ScheduleWakeAt(c, sim.Now-3); err == nil {
		t.Fatal("ScheduleWakeAt in the past did not error")
	}
	stranger := &recorder{name: "stranger"}
	if err := sim.ScheduleWakeAt(stranger, sim.Now+10); err == nil {
		t.Fatal("ScheduleWakeAt for an unregistered component did not error")
	}
	// A legal future wake fires at exactly that cycle.
	if err := sim.ScheduleWakeAt(c, sim.Now+7); err != nil {
		t.Fatal(err)
	}
	target := sim.Now + 7
	before := len(c.cycles)
	if err := sim.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(c.cycles) != before+1 || c.cycles[len(c.cycles)-1] != target {
		t.Fatalf("wake at %d produced step cycles %v (had %d before)", target, c.cycles, before)
	}
}

// TestSimultaneousEventsPreserveOrder checks that events due at the same
// cycle wake their components into the normal registration-order sweep:
// dispatch order of the queue must never leak into step order.
func TestSimultaneousEventsPreserveOrder(t *testing.T) {
	sim := NewSimulation(0)
	var journal []string
	comps := make([]*recorder, 4)
	names := []string{"a", "b", "c", "d"}
	for i := range comps {
		comps[i] = &recorder{name: names[i], journal: &journal}
		sim.AddComponent(comps[i])
		sim.DeclareInputs(comps[i])
	}
	if err := sim.Run(3); err != nil { // everyone steps once, then sleeps
		t.Fatal(err)
	}
	journal = journal[:0]
	for _, c := range comps {
		c.cycles = nil
	}
	// Schedule the same cycle in scrambled order.
	at := sim.Now + 10
	for _, i := range []int{2, 0, 3, 1} {
		if err := sim.ScheduleWakeAt(comps[i], at); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(20); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(journal, ""); got != "abcd" {
		t.Fatalf("same-cycle events stepped components in order %q, want abcd", got)
	}
	for _, c := range comps {
		if len(c.cycles) != 1 || c.cycles[0] != at {
			t.Fatalf("component %s stepped at %v, want exactly [%d]", c.name, c.cycles, at)
		}
	}
}

// TestWakeInterleavesWithQueuedEvents checks that an explicit Wake neither
// loses nor duplicates a queued wake event: the component steps immediately,
// goes back to sleep, and the queued event still fires at its cycle (as a
// harmless extra no-op step at worst).
func TestWakeInterleavesWithQueuedEvents(t *testing.T) {
	sim := NewSimulation(0)
	c := &recorder{name: "c"}
	sim.AddComponent(c)
	sim.DeclareInputs(c)
	if err := sim.Run(2); err != nil {
		t.Fatal(err)
	}
	c.cycles = nil
	eventAt := sim.Now + 30
	if err := sim.ScheduleWakeAt(c, eventAt); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(5); err != nil { // jumps: event is far away
		t.Fatal(err)
	}
	if len(c.cycles) != 0 {
		t.Fatalf("component stepped at %v before any stimulus", c.cycles)
	}
	wakeCycle := sim.Now
	sim.Wake(c)
	if err := sim.Run(40); err != nil {
		t.Fatal(err)
	}
	if len(c.cycles) < 2 {
		t.Fatalf("steps %v: want the immediate Wake step and the queued event step", c.cycles)
	}
	if c.cycles[0] != wakeCycle {
		t.Fatalf("Wake stepped at %d, want %d", c.cycles[0], wakeCycle)
	}
	if last := c.cycles[len(c.cycles)-1]; last != eventAt {
		t.Fatalf("queued event stepped at %d, want %d", last, eventAt)
	}
	if len(c.cycles) > 3 {
		t.Fatalf("too many steps %v: stale events must not multiply", c.cycles)
	}
}

// TestClockJumpsOverIdleSpans checks the tentpole behavior: with every
// component asleep, Run crosses a long wire latency in one jump, and the
// receiver still consumes the flit at the exact arrival cycle.
func TestClockJumpsOverIdleSpans(t *testing.T) {
	sim := NewSimulation(0)
	l := sim.NewLink("long-haul", 100, 4)
	c := &recorder{name: "rx", in: l}
	sim.AddComponent(c)
	sim.DeclareInputs(c, l)
	if err := sim.Run(2); err != nil {
		t.Fatal(err)
	}
	c.cycles = nil
	w := testWorm(1)
	l.Send(sim.Now, flit.Ref{W: w, Idx: 0})
	arrive := sim.Now + 100
	if err := sim.Run(300); err != nil {
		t.Fatal(err)
	}
	if !l.Quiesced() {
		t.Fatal("flit never consumed")
	}
	if len(c.cycles) == 0 || c.cycles[0] != arrive {
		t.Fatalf("receiver stepped at %v, want first step at arrival cycle %d", c.cycles, arrive)
	}
	if len(c.cycles) > 2 {
		t.Fatalf("receiver stepped %d times (%v): the idle span was not jumped", len(c.cycles), c.cycles)
	}
}

// timetable is a NextWaker with a fixed deadline list.
type timetable struct {
	recorder
	deadlines []int64
}

func (tt *timetable) NextWake(now int64) (int64, bool) {
	for _, d := range tt.deadlines {
		if d > now {
			return d, true
		}
	}
	return 0, false
}

func (tt *timetable) Step(now int64) {
	for _, d := range tt.deadlines {
		if d == now {
			tt.cycles = append(tt.cycles, now)
		}
	}
}

// TestEventDrivenTimetable checks DeclareEventDriven: a component whose
// stimulus is a deadline list is stepped at every deadline and skipped (and
// jumped over) everywhere else.
func TestEventDrivenTimetable(t *testing.T) {
	sim := NewSimulation(0)
	tt := &timetable{recorder: recorder{name: "tt"}, deadlines: []int64{13, 14, 500, 2000}}
	sim.AddComponent(tt)
	sim.DeclareEventDriven(tt)
	if err := sim.Run(3000); err != nil {
		t.Fatal(err)
	}
	if len(tt.cycles) != 4 || tt.cycles[0] != 13 || tt.cycles[1] != 14 ||
		tt.cycles[2] != 500 || tt.cycles[3] != 2000 {
		t.Fatalf("timetable fired at %v, want [13 14 500 2000]", tt.cycles)
	}
}

// TestEventSchedulingSteadyStateAllocs pins the zero-alloc property of the
// calendar queue itself: a component cycling asleep/awake through scheduled
// wake events must not allocate once the queue's buckets are warm.
func TestEventSchedulingSteadyStateAllocs(t *testing.T) {
	sim := NewSimulation(0)
	l := sim.NewLink("wire", 7, 8)
	c := &recorder{name: "rx", in: l}
	sim.AddComponent(c)
	sim.DeclareInputs(c, l)
	w := testWorm(1)
	send := func() {
		for i := 0; i < 20; i++ {
			if l.CanSend(sim.Now) {
				l.Send(sim.Now, flit.Ref{W: w, Idx: 0})
			}
			if err := sim.Run(16); err != nil {
				t.Fatal(err)
			}
		}
	}
	send() // warm the wheel, the rings, and the journal slices
	c.cycles = c.cycles[:0]
	avg := testing.AllocsPerRun(50, send)
	if avg != 0 {
		t.Fatalf("event scheduling allocates %.2f times per round, want 0", avg)
	}
}

// TestSnapshotRoundTripWithPendingEvents checks that a simulation with a
// non-empty event queue encodes, decodes into a twin, and re-encodes to the
// same bytes, and that the twin fires the restored events at the exact
// original cycles.
func TestSnapshotRoundTripWithPendingEvents(t *testing.T) {
	build := func() (*Simulation, *Link, *recorder) {
		sim := NewSimulation(0)
		l := sim.NewLink("wire", 50, 4)
		c := &recorder{name: "rx", in: l}
		sim.AddComponent(c)
		sim.DeclareInputs(c, l)
		return sim, l, c
	}
	sim, l, _ := build()
	if err := sim.Run(2); err != nil {
		t.Fatal(err)
	}
	w := testWorm(1)
	l.Send(sim.Now, flit.Ref{W: w, Idx: 0})
	arrive := sim.Now + 50
	if err := sim.Run(10); err != nil { // sleeps rx with a pending wake event
		t.Fatal(err)
	}
	if sim.PendingEvents() == 0 {
		t.Fatal("scenario failed to queue an event")
	}

	encode := func(s *Simulation) []byte {
		g := ckpt.NewGraph()
		s.CollectState(g)
		var enc, genc ckpt.Enc
		g.Encode(&genc)
		s.EncodeState(&enc, g)
		s.EncodeEvents(&enc)
		return append(genc.Bytes(), enc.Bytes()...)
	}

	g := ckpt.NewGraph()
	sim.CollectState(g)
	var genc ckpt.Enc
	g.Encode(&genc)
	var enc ckpt.Enc
	sim.EncodeState(&enc, g)
	sim.EncodeEvents(&enc)

	twin, _, tc := build()
	gd := ckpt.NewDec(genc.Bytes())
	g2 := ckpt.DecodeGraph(gd)
	if gd.Err() != nil {
		t.Fatal(gd.Err())
	}
	d := ckpt.NewDec(enc.Bytes())
	twin.DecodeState(d, g2)
	twin.DecodeEvents(d)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if twin.PendingEvents() != sim.PendingEvents() {
		t.Fatalf("twin has %d pending events, original %d", twin.PendingEvents(), sim.PendingEvents())
	}
	if got := encode(twin); string(got) != string(encode(sim)) {
		t.Fatal("re-encoded twin differs from original")
	}
	if err := twin.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(tc.cycles) == 0 || tc.cycles[len(tc.cycles)-1] != arrive {
		t.Fatalf("restored twin stepped at %v, want the arrival cycle %d", tc.cycles, arrive)
	}
}
