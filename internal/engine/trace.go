package engine

import (
	"fmt"
	"io"
)

// TraceKind classifies trace events.
type TraceKind uint8

const (
	// TraceOpStart marks the creation of a collective operation.
	TraceOpStart TraceKind = iota
	// TraceOpDone marks the delivery at the last destination.
	TraceOpDone
	// TraceInject marks the first flit of a message entering the network.
	TraceInject
	// TraceDeliver marks a complete message arriving at a NIC.
	TraceDeliver
	// TraceForward marks a software-multicast forwarding step.
	TraceForward
	// TraceDecode marks a routing decision (with its branch count).
	TraceDecode
	// TraceReserve marks a worm queueing for central-buffer reservation.
	TraceReserve
	// TraceAdmit marks a worm admitted to the central buffer.
	TraceAdmit
	// TraceGrant marks an input-buffer branch acquiring its output port.
	TraceGrant
	// TraceDrop marks destinations abandoned because of an injected fault.
	TraceDrop
)

// String names the kind.
func (k TraceKind) String() string {
	names := [...]string{"op-start", "op-done", "inject", "deliver",
		"forward", "decode", "reserve", "admit", "grant", "drop"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("trace(%d)", uint8(k))
}

// TraceEvent is one observation of the simulated system.
type TraceEvent struct {
	Cycle int64
	Kind  TraceKind
	// Actor names the component that emitted the event.
	Actor string
	// Msg, Worm, and Op carry the identifiers involved (0 when absent).
	Msg, Worm, Op uint64
	// Detail carries event-specific context (branch counts, ports, ...).
	Detail string
}

// String renders the event as one log line.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("%8d %-9s %-14s", e.Cycle, e.Kind, e.Actor)
	if e.Op != 0 {
		s += fmt.Sprintf(" op=%d", e.Op)
	}
	if e.Msg != 0 {
		s += fmt.Sprintf(" msg=%d", e.Msg)
	}
	if e.Worm != 0 {
		s += fmt.Sprintf(" worm=%d", e.Worm)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Tracer receives simulation events. Implementations must be cheap; the
// simulator emits one call per message-level event (never per flit).
type Tracer interface {
	Emit(TraceEvent)
}

// WriterTracer formats each event as a line on w.
type WriterTracer struct {
	W io.Writer
}

// Emit implements Tracer.
func (t *WriterTracer) Emit(e TraceEvent) {
	fmt.Fprintln(t.W, e.String())
}

// CollectTracer accumulates events in memory (for tests and analysis).
type CollectTracer struct {
	Events []TraceEvent
}

// Emit implements Tracer.
func (t *CollectTracer) Emit(e TraceEvent) {
	t.Events = append(t.Events, e)
}

// Count returns how many events of the kind were recorded.
func (t *CollectTracer) Count(kind TraceKind) int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// SetTracer installs (or removes, with nil) the event tracer.
func (s *Simulation) SetTracer(t Tracer) { s.tracer = t }

// Tracing reports whether a tracer is installed; components guard their
// event construction with it.
func (s *Simulation) Tracing() bool { return s.tracer != nil }

// Emit forwards an event to the tracer, stamping the current cycle if the
// event carries none.
func (s *Simulation) Emit(e TraceEvent) {
	if s.tracer == nil {
		return
	}
	if e.Cycle == 0 {
		e.Cycle = s.Now
	}
	s.tracer.Emit(e)
}
