package engine

import (
	"fmt"
	"io"
)

// TraceKind classifies trace events.
type TraceKind uint8

const (
	// TraceOpStart marks the creation of a collective operation.
	TraceOpStart TraceKind = iota
	// TraceOpDone marks the delivery at the last destination.
	TraceOpDone
	// TraceInject marks the first flit of a message entering the network.
	TraceInject
	// TraceDeliver marks a complete message arriving at a NIC.
	TraceDeliver
	// TraceForward marks a software-multicast forwarding step.
	TraceForward
	// TraceDecode marks a routing decision (with its branch count).
	TraceDecode
	// TraceReserve marks a worm queueing for central-buffer reservation.
	TraceReserve
	// TraceAdmit marks a worm admitted to the central buffer.
	TraceAdmit
	// TraceGrant marks an input-buffer branch acquiring its output port.
	TraceGrant
	// TraceDrop marks destinations abandoned because of an injected fault.
	TraceDrop
	// TraceCollStart marks the start of one collective rep.
	TraceCollStart
	// TraceCollPhase marks the completion of one phase of a collective rep.
	TraceCollPhase
	// TraceCollDone marks the completion of a collective rep (its last
	// final-phase delivery).
	TraceCollDone

	// traceKindCount counts the kinds above; keep it last so the name table
	// below is forced to cover every constant.
	traceKindCount
)

// traceKindNames is indexed by kind; a kind added without a name here yields
// "" and is caught by the exhaustiveness test.
var traceKindNames = [traceKindCount]string{
	TraceOpStart:   "op-start",
	TraceOpDone:    "op-done",
	TraceInject:    "inject",
	TraceDeliver:   "deliver",
	TraceForward:   "forward",
	TraceDecode:    "decode",
	TraceReserve:   "reserve",
	TraceAdmit:     "admit",
	TraceGrant:     "grant",
	TraceDrop:      "drop",
	TraceCollStart: "coll-start",
	TraceCollPhase: "coll-phase",
	TraceCollDone:  "coll-done",
}

// String names the kind.
func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) && traceKindNames[k] != "" {
		return traceKindNames[k]
	}
	return fmt.Sprintf("trace(%d)", uint8(k))
}

// TraceKinds lists every defined kind in declaration order.
func TraceKinds() []TraceKind {
	out := make([]TraceKind, traceKindCount)
	for i := range out {
		out[i] = TraceKind(i)
	}
	return out
}

// ParseTraceKind resolves a name produced by TraceKind.String.
func ParseTraceKind(name string) (TraceKind, bool) {
	for k, n := range traceKindNames {
		if n == name {
			return TraceKind(k), true
		}
	}
	return 0, false
}

// TraceEvent is one observation of the simulated system.
type TraceEvent struct {
	Cycle int64
	Kind  TraceKind
	// Actor names the component that emitted the event.
	Actor string
	// Msg, Worm, and Op carry the identifiers involved (0 when absent).
	Msg, Worm, Op uint64
	// Detail carries event-specific context (branch counts, ports, ...).
	Detail string
}

// String renders the event as one log line.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("%8d %-9s %-14s", e.Cycle, e.Kind, e.Actor)
	if e.Op != 0 {
		s += fmt.Sprintf(" op=%d", e.Op)
	}
	if e.Msg != 0 {
		s += fmt.Sprintf(" msg=%d", e.Msg)
	}
	if e.Worm != 0 {
		s += fmt.Sprintf(" worm=%d", e.Worm)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Tracer receives simulation events. Implementations must be cheap; the
// simulator emits one call per message-level event (never per flit).
type Tracer interface {
	Emit(TraceEvent)
}

// WriterTracer formats each event as a line on w.
type WriterTracer struct {
	W io.Writer
}

// Emit implements Tracer.
func (t *WriterTracer) Emit(e TraceEvent) {
	fmt.Fprintln(t.W, e.String())
}

// CollectTracer accumulates events in memory (for tests and analysis).
// With Max unset it grows without bound and Events stays in arrival order;
// with Max > 0 it keeps only the newest Max events as a ring (read them back
// with All) and counts the overwritten ones in Dropped.
type CollectTracer struct {
	// Max caps the retained events; 0 means unbounded.
	Max int
	// Dropped counts events discarded because the cap was reached.
	Dropped int64
	// Events holds the retained events. When Max is 0 it is in arrival
	// order; when the cap has wrapped it is a ring rooted at an internal
	// head, so use All for ordered access.
	Events []TraceEvent

	head int
}

// Emit implements Tracer.
func (t *CollectTracer) Emit(e TraceEvent) {
	if t.Max > 0 && len(t.Events) >= t.Max {
		t.Events[t.head] = e
		t.head++
		if t.head == len(t.Events) {
			t.head = 0
		}
		t.Dropped++
		return
	}
	t.Events = append(t.Events, e)
}

// All returns the retained events in arrival order (oldest first).
func (t *CollectTracer) All() []TraceEvent {
	if t.head == 0 {
		return t.Events
	}
	out := make([]TraceEvent, 0, len(t.Events))
	out = append(out, t.Events[t.head:]...)
	out = append(out, t.Events[:t.head]...)
	return out
}

// Count returns how many events of the kind were recorded.
func (t *CollectTracer) Count(kind TraceKind) int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// MultiTracer fans each event out to every tracer in order.
type MultiTracer []Tracer

// Emit implements Tracer.
func (m MultiTracer) Emit(e TraceEvent) {
	for _, t := range m {
		t.Emit(e)
	}
}

// SetTracer installs (or removes, with nil) the event tracer.
func (s *Simulation) SetTracer(t Tracer) { s.tracer = t }

// Tracing reports whether a tracer is installed; components guard their
// event construction with it.
func (s *Simulation) Tracing() bool { return s.tracer != nil }

// Emit forwards an event to the tracer, stamping the current cycle if the
// event carries none.
func (s *Simulation) Emit(e TraceEvent) {
	if s.tracer == nil {
		return
	}
	if e.Cycle == 0 {
		e.Cycle = s.Now
	}
	s.tracer.Emit(e)
}
