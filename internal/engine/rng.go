// Package engine provides the cycle-driven simulation kernel: deterministic
// random numbers, unidirectional links with latency and credit-based flow
// control, and the simulation loop with a progress watchdog.
package engine

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64).
// Every stochastic decision in the simulator draws from an RNG seeded from
// the run configuration, so identical configurations replay identically.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent stream identified by tag, leaving the parent
// stream untouched. Components fork per-entity streams so that adding a
// component does not perturb the draws of the others.
func (r *RNG) Fork(tag uint64) *RNG {
	mixed := splitmix(r.state + 0x9e3779b97f4a7c15*(tag+1))
	return &RNG{state: mixed}
}

func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("engine: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct uniform values from [0, n) excluding the
// members of excl. It panics if fewer than k values are available.
func (r *RNG) Sample(n, k int, excl map[int]bool) []int {
	avail := n - len(excl)
	if k > avail {
		panic("engine: Sample k exceeds available population")
	}
	// Partial Fisher-Yates over the allowed population.
	pool := make([]int, 0, avail)
	for i := 0; i < n; i++ {
		if !excl[i] {
			pool = append(pool, i)
		}
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		out[i] = pool[i]
	}
	return out
}
