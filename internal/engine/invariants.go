package engine

import (
	"fmt"
	"sort"
	"strings"
)

// maxViolationSamples bounds how many full violation records are retained;
// beyond that only the per-rule counters grow.
const maxViolationSamples = 16

// Violation is one detected break of a model invariant.
type Violation struct {
	Cycle  int64
	Rule   string
	Detail string
}

// String renders the violation as one log line.
func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %s", v.Cycle, v.Rule, v.Detail)
}

// InvariantError is the hard failure raised (via panic) when a violation is
// detected in strict mode; core.Run recovers it into an ordinary error so
// callers see a structured failure instead of a crashed process.
type InvariantError struct {
	Violation
}

// Error formats the failure.
func (e *InvariantError) Error() string {
	return "engine: invariant violated: " + e.Violation.String()
}

// Invariants collects the always-on checker state of one simulation: every
// model component routes detected violations here. In the default (lenient)
// mode a violation increments counters, keeps a bounded sample list, and the
// caller repairs local state so the run can continue; in strict mode the
// first violation panics with an *InvariantError naming the rule.
type Invariants struct {
	// Strict upgrades violations from counters to a panic carrying an
	// *InvariantError. Callers that set it must recover (core.Run does).
	Strict bool

	total   int64
	byRule  map[string]int64
	samples []Violation
}

func newInvariants() *Invariants {
	return &Invariants{byRule: make(map[string]int64)}
}

// Violate records one invariant violation under the given rule name. In
// strict mode it does not return.
func (inv *Invariants) Violate(now int64, rule, format string, args ...any) {
	v := Violation{Cycle: now, Rule: rule, Detail: fmt.Sprintf(format, args...)}
	if inv.Strict {
		panic(&InvariantError{Violation: v})
	}
	inv.total++
	inv.byRule[rule]++
	if len(inv.samples) < maxViolationSamples {
		inv.samples = append(inv.samples, v)
	}
}

// Total returns the number of violations recorded.
func (inv *Invariants) Total() int64 { return inv.total }

// Count returns the number of violations of one rule.
func (inv *Invariants) Count(rule string) int64 { return inv.byRule[rule] }

// Samples returns the first recorded violations (bounded).
func (inv *Invariants) Samples() []Violation { return inv.samples }

// Summary renders per-rule counts as "rule=N rule=N" in rule order, or ""
// when clean.
func (inv *Invariants) Summary() string {
	if inv.total == 0 {
		return ""
	}
	rules := make([]string, 0, len(inv.byRule))
	for r := range inv.byRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = fmt.Sprintf("%s=%d", r, inv.byRule[r])
	}
	return strings.Join(parts, " ")
}
