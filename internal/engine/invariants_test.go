package engine

import (
	"strings"
	"testing"
)

func TestInvariantsLenientCounts(t *testing.T) {
	inv := newInvariants()
	if inv.Total() != 0 || inv.Summary() != "" {
		t.Fatal("fresh checker not clean")
	}
	for i := 0; i < 20; i++ {
		inv.Violate(int64(i), "flit-conservation", "worm %d short", i)
	}
	inv.Violate(99, "credit-underflow", "port went to -1")
	if inv.Total() != 21 {
		t.Fatalf("total = %d, want 21", inv.Total())
	}
	if inv.Count("flit-conservation") != 20 || inv.Count("credit-underflow") != 1 {
		t.Fatalf("per-rule counts wrong: %s", inv.Summary())
	}
	if got := len(inv.Samples()); got != maxViolationSamples {
		t.Fatalf("samples = %d, want bounded at %d", got, maxViolationSamples)
	}
	if s := inv.Summary(); s != "credit-underflow=1 flit-conservation=20" {
		t.Fatalf("summary = %q", s)
	}
	if v := inv.Samples()[0].String(); !strings.Contains(v, "flit-conservation") {
		t.Fatalf("sample line %q does not name the rule", v)
	}
}

func TestInvariantsStrictPanics(t *testing.T) {
	inv := newInvariants()
	inv.Strict = true
	defer func() {
		r := recover()
		ie, ok := r.(*InvariantError)
		if !ok {
			t.Fatalf("recovered %v, want *InvariantError", r)
		}
		if ie.Rule != "chunk-leak" || !strings.Contains(ie.Error(), "chunk-leak") {
			t.Fatalf("error does not carry the rule: %v", ie)
		}
		if inv.Total() != 0 {
			t.Fatal("strict mode also counted the violation")
		}
	}()
	inv.Violate(7, "chunk-leak", "sw3 leaked %d chunks", 2)
	t.Fatal("strict Violate returned")
}
