package engine

import (
	"testing"
	"testing/quick"

	"mdworm/internal/flit"
)

func testWorm(n int) *flit.Worm {
	msg := &flit.Message{ID: 1, PayloadFlits: n - 1, HeaderFlits: 1}
	return &flit.Worm{ID: 1, Msg: msg}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	root := NewRNG(9)
	f1 := root.Fork(1)
	f2 := root.Fork(2)
	f1again := root.Fork(1)
	if f1.Uint64() != f1again.Uint64() {
		t.Fatal("Fork not deterministic in tag")
	}
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("distinct forks collided")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]int{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 7; v++ {
		if seen[v] < 10000/7/2 {
			t.Fatalf("value %d badly underrepresented: %d", v, seen[v])
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d in perm", v)
		}
		seen[v] = true
	}
}

func TestRNGSample(t *testing.T) {
	r := NewRNG(11)
	for trial := 0; trial < 100; trial++ {
		excl := map[int]bool{3: true, 7: true}
		s := r.Sample(20, 5, excl)
		if len(s) != 5 {
			t.Fatalf("sample size %d", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 20 || excl[v] || seen[v] {
				t.Fatalf("bad sample %v", s)
			}
			seen[v] = true
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		v := NewRNG(seed).Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkDelivery(t *testing.T) {
	l := NewLink("t", 3, 4)
	w := testWorm(4)
	if !l.CanSend(0) {
		t.Fatal("fresh link cannot send")
	}
	l.Send(0, flit.Ref{W: w, Idx: 0})
	for now := int64(0); now < 3; now++ {
		if _, ok := l.Arrived(now); ok {
			t.Fatalf("flit visible at cycle %d before latency", now)
		}
	}
	r, ok := l.Arrived(3)
	if !ok || r.Idx != 0 {
		t.Fatalf("flit not delivered at latency: %v %v", r, ok)
	}
	got := l.TakeArrived(3)
	if got.Idx != 0 || l.Carried() != 1 {
		t.Fatalf("TakeArrived wrong: %v carried=%d", got, l.Carried())
	}
}

func TestLinkBandwidthOnePerCycle(t *testing.T) {
	l := NewLink("t", 1, 10)
	w := testWorm(4)
	l.Send(5, flit.Ref{W: w, Idx: 0})
	if l.CanSend(5) {
		t.Fatal("second send allowed in same cycle")
	}
	if !l.CanSend(6) {
		t.Fatal("send not allowed next cycle")
	}
}

func TestLinkCredits(t *testing.T) {
	l := NewLink("t", 1, 2)
	w := testWorm(4)
	l.Send(0, flit.Ref{W: w, Idx: 0})
	l.Send(1, flit.Ref{W: w, Idx: 1})
	if l.CanSend(2) {
		t.Fatal("send allowed with zero credits")
	}
	l.TakeArrived(2) // receiver buffers it...
	if l.CanSend(3) {
		t.Fatal("credit appeared without ReturnCredit")
	}
	l.ReturnCredit(2, 1) // ...and frees the slot at cycle 2
	if l.CanSend(2) {
		t.Fatal("credit visible before reverse latency")
	}
	if !l.CanSend(3) {
		t.Fatal("credit not visible after reverse latency")
	}
}

func TestLinkReceiverOnePerCycle(t *testing.T) {
	l := NewLink("t", 1, 4)
	w := testWorm(4)
	l.Send(0, flit.Ref{W: w, Idx: 0})
	l.Send(1, flit.Ref{W: w, Idx: 1})
	l.TakeArrived(2)
	if _, ok := l.Arrived(2); ok {
		t.Fatal("second take allowed in one cycle")
	}
	if _, ok := l.Arrived(3); !ok {
		t.Fatal("flit lost")
	}
}

func TestLinkSendWithoutCreditPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l := NewLink("t", 1, 1)
	w := testWorm(4)
	l.Send(0, flit.Ref{W: w, Idx: 0})
	l.Send(1, flit.Ref{W: w, Idx: 1})
}

// pipe is a minimal component that forwards flits from one link to another.
type pipe struct {
	name    string
	in, out *Link
	held    []flit.Ref
	cap     int
}

func (p *pipe) Name() string   { return p.name }
func (p *pipe) Quiesced() bool { return len(p.held) == 0 }
func (p *pipe) Step(now int64) {
	if len(p.held) > 0 && p.out != nil && p.out.CanSend(now) {
		p.out.Send(now, p.held[0])
		p.held = p.held[1:]
		p.in.ReturnCredit(now, 1)
	}
	if _, ok := p.in.Arrived(now); ok && len(p.held) < p.cap {
		p.held = append(p.held, p.in.TakeArrived(now))
	}
}

// sink consumes flits and records arrival cycles.
type sink struct {
	in       *Link
	arrivals []int64
}

func (s *sink) Name() string   { return "sink" }
func (s *sink) Quiesced() bool { return true }
func (s *sink) Step(now int64) {
	if _, ok := s.in.Arrived(now); ok {
		s.in.TakeArrived(now)
		s.in.ReturnCredit(now, 1)
		s.arrivals = append(s.arrivals, now)
	}
}

func TestSimulationPipeline(t *testing.T) {
	sim := NewSimulation(1000)
	l1 := sim.NewLink("l1", 1, 2)
	l2 := sim.NewLink("l2", 1, 2)
	p := &pipe{name: "p", in: l1, out: l2, cap: 2}
	snk := &sink{in: l2}
	sim.AddComponent(p)
	sim.AddComponent(snk)

	w := testWorm(3)
	for i := 0; i < 3; i++ {
		if !l1.CanSend(sim.Now) {
			sim.Step()
		}
		l1.Send(sim.Now, flit.Ref{W: w, Idx: i})
		sim.Step()
	}
	ok, err := sim.Drain(100)
	if err != nil || !ok {
		t.Fatalf("drain: ok=%v err=%v", ok, err)
	}
	if len(snk.arrivals) != 3 {
		t.Fatalf("sink got %d flits, want 3", len(snk.arrivals))
	}
	for i := 1; i < len(snk.arrivals); i++ {
		if snk.arrivals[i] <= snk.arrivals[i-1] {
			t.Fatalf("arrivals not strictly increasing: %v", snk.arrivals)
		}
	}
}

// stuckComponent holds work forever without moving flits.
type stuckComponent struct{}

func (stuckComponent) Name() string   { return "stuck" }
func (stuckComponent) Quiesced() bool { return false }
func (stuckComponent) Step(int64)     {}

func TestWatchdogFires(t *testing.T) {
	sim := NewSimulation(50)
	sim.AddComponent(stuckComponent{})
	err := sim.Run(200)
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Stuck) != 1 || de.Stuck[0] != "stuck" {
		t.Fatalf("wrong stuck list: %v", de.Stuck)
	}
}

func TestWatchdogSilentWhenIdle(t *testing.T) {
	sim := NewSimulation(10)
	if err := sim.Run(1000); err != nil {
		t.Fatalf("idle sim tripped watchdog: %v", err)
	}
}

// ticking holds work but declares internal progress (like a software
// overhead timer counting down).
type ticking struct{ sim *Simulation }

func (ticking) Name() string   { return "ticking" }
func (ticking) Quiesced() bool { return false }
func (c ticking) Step(int64)   { c.sim.Progress() }

func TestWatchdogResetByProgress(t *testing.T) {
	sim := NewSimulation(50)
	sim.AddComponent(ticking{sim: sim})
	if err := sim.Run(500); err != nil {
		t.Fatalf("watchdog fired despite declared progress: %v", err)
	}
}

func TestIDGen(t *testing.T) {
	var g IDGen
	if g.Next() != 1 || g.Next() != 2 || g.Next() != 3 {
		t.Fatal("IDGen not sequential from 1")
	}
}

func TestLinkAccessors(t *testing.T) {
	l := NewLink("wire", 2, 3)
	if l.Name() != "wire" || !l.Quiesced() || l.InFlight() != 0 {
		t.Fatal("fresh link accessors wrong")
	}
	w := testWorm(2)
	l.Send(0, flit.Ref{W: w, Idx: 0})
	if l.Quiesced() || l.InFlight() != 1 {
		t.Fatal("in-flight accounting wrong")
	}
	l.TakeArrived(2)
	if !l.Quiesced() {
		t.Fatal("link not quiesced after delivery")
	}
}

func TestSimulationLinksRegistered(t *testing.T) {
	sim := NewSimulation(0)
	sim.NewLink("a", 1, 1)
	sim.NewLink("b", 1, 1)
	if len(sim.Links()) != 2 {
		t.Fatalf("links = %d", len(sim.Links()))
	}
}

func TestDeadlockErrorListsLinks(t *testing.T) {
	sim := NewSimulation(10)
	l := sim.NewLink("stuck-wire", 1, 1)
	w := testWorm(2)
	l.Send(0, flit.Ref{W: w, Idx: 0}) // never consumed
	err := sim.Run(100)
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected deadlock, got %v", err)
	}
	found := false
	for _, s := range de.Stuck {
		if s == "link:stuck-wire" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stuck link not reported: %v", de.Stuck)
	}
}

func TestRunUntilBudget(t *testing.T) {
	sim := NewSimulation(0)
	calls := 0
	ok, err := sim.RunUntil(func() bool { calls++; return false }, 10)
	if ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if sim.Now != 10 {
		t.Fatalf("advanced %d cycles, want 10", sim.Now)
	}
	// The event kernel jumps over spans where every component sleeps, so
	// the predicate is no longer polled once per cycle — but it must be
	// checked before advancing and once more when the budget runs out.
	if calls < 2 {
		t.Fatalf("predicate called %d times", calls)
	}
}

func TestTracerPlumbing(t *testing.T) {
	sim := NewSimulation(0)
	if sim.Tracing() {
		t.Fatal("tracing on by default")
	}
	var ct CollectTracer
	sim.SetTracer(&ct)
	if !sim.Tracing() {
		t.Fatal("tracer not installed")
	}
	sim.Now = 5
	sim.Emit(TraceEvent{Kind: TraceInject, Actor: "x"})
	if len(ct.Events) != 1 || ct.Events[0].Cycle != 5 {
		t.Fatalf("events: %+v", ct.Events)
	}
	if ct.Count(TraceInject) != 1 || ct.Count(TraceDeliver) != 0 {
		t.Fatal("Count wrong")
	}
	sim.SetTracer(nil)
	sim.Emit(TraceEvent{Kind: TraceInject})
	if len(ct.Events) != 1 {
		t.Fatal("emit after removal")
	}
}

// TestTraceKindNames is the exhaustiveness guard: every declared kind must
// render with a unique, stable name (never the trace(N) fallback) and parse
// back to itself. TraceKinds is sized by the traceKindCount sentinel, so a
// kind added without a name table entry fails here.
func TestTraceKindNames(t *testing.T) {
	kinds := TraceKinds()
	if len(kinds) < 10 {
		t.Fatalf("TraceKinds lists %d kinds, want at least the 10 seed kinds", len(kinds))
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if name == "" || seen[name] {
			t.Fatalf("bad or duplicate kind name %q for kind %d", name, k)
		}
		if len(name) >= len("trace(") && name[:len("trace(")] == "trace(" {
			t.Fatalf("kind %d renders as fallback %q: name table out of sync", k, name)
		}
		back, ok := ParseTraceKind(name)
		if !ok || back != k {
			t.Fatalf("ParseTraceKind(%q) = %v,%v, want %v", name, back, ok, k)
		}
		seen[name] = true
	}
	if _, ok := ParseTraceKind("no-such-kind"); ok {
		t.Fatal("ParseTraceKind accepted an unknown name")
	}
}

// TestCollectTracerCap checks the optional ring cap: newest Max events are
// kept in order, overwritten ones are counted.
func TestCollectTracerCap(t *testing.T) {
	ct := CollectTracer{Max: 3}
	for i := 1; i <= 5; i++ {
		ct.Emit(TraceEvent{Cycle: int64(i), Kind: TraceInject})
	}
	if ct.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", ct.Dropped)
	}
	got := ct.All()
	if len(got) != 3 || got[0].Cycle != 3 || got[1].Cycle != 4 || got[2].Cycle != 5 {
		t.Fatalf("All() = %+v, want cycles 3,4,5", got)
	}

	// Default stays unbounded with Events in arrival order.
	var unbounded CollectTracer
	for i := 1; i <= 100; i++ {
		unbounded.Emit(TraceEvent{Cycle: int64(i)})
	}
	if unbounded.Dropped != 0 || len(unbounded.Events) != 100 || len(unbounded.All()) != 100 {
		t.Fatalf("unbounded tracer dropped events: %d kept, %d dropped",
			len(unbounded.Events), unbounded.Dropped)
	}
}

func TestMultiTracer(t *testing.T) {
	var a, b CollectTracer
	m := MultiTracer{&a, &b}
	m.Emit(TraceEvent{Kind: TraceInject})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatalf("fan-out failed: %d/%d", len(a.Events), len(b.Events))
	}
}

func TestRunBudgetValidation(t *testing.T) {
	sim := NewSimulation(0)
	for _, cycles := range []int64{0, -5} {
		if err := sim.Run(cycles); err == nil {
			t.Fatalf("Run(%d) accepted a non-positive budget", cycles)
		}
		if _, err := sim.RunUntil(func() bool { return true }, cycles); err == nil {
			t.Fatalf("RunUntil(%d) accepted a non-positive budget", cycles)
		}
		if _, err := sim.Drain(cycles); err == nil {
			t.Fatalf("Drain(%d) accepted a non-positive budget", cycles)
		}
	}
	if sim.Now != 0 {
		t.Fatalf("rejected budgets still advanced the clock to %d", sim.Now)
	}
}

// TestLinkFastPathAllocs pins the steady-state send/take/credit path at zero
// allocations: the ring buffers reuse their storage once warmed up.
func TestLinkFastPathAllocs(t *testing.T) {
	l := NewLink("alloc", 1, 4)
	w := testWorm(1 << 20)
	now := int64(0)
	// Warm the rings past their initial growth.
	for i := 0; i < 16; i++ {
		l.Send(now, flit.Ref{W: w, Idx: 0})
		now++
		l.TakeArrived(now)
		l.ReturnCredit(now, 1)
	}
	avg := testing.AllocsPerRun(1000, func() {
		l.Send(now, flit.Ref{W: w, Idx: 0})
		now++
		l.TakeArrived(now)
		l.ReturnCredit(now, 1)
	})
	if avg != 0 {
		t.Fatalf("link fast path allocates %.2f times per cycle, want 0", avg)
	}
}

// counter consumes arrivals and counts how often the scheduler steps it.
type counter struct {
	in    *Link
	steps int
}

func (c *counter) Name() string   { return "counter" }
func (c *counter) Quiesced() bool { return true }
func (c *counter) Step(now int64) {
	c.steps++
	if _, ok := c.in.Arrived(now); ok {
		c.in.TakeArrived(now)
		c.in.ReturnCredit(now, 1)
	}
}

// TestActiveSetSkipsIdle checks the scheduler contract: a component with
// declared inputs is stepped while stimulated, sleeps once idle, and is
// re-armed by a Send on a declared link or an explicit Wake.
func TestActiveSetSkipsIdle(t *testing.T) {
	sim := NewSimulation(0)
	l := sim.NewLink("in", 1, 4)
	c := &counter{in: l}
	sim.AddComponent(c)
	sim.DeclareInputs(c, l)

	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.steps != 1 {
		t.Fatalf("idle declared component stepped %d times in 10 cycles, want 1", c.steps)
	}

	w := testWorm(2)
	l.Send(sim.Now, flit.Ref{W: w, Idx: 0})
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if !l.Quiesced() {
		t.Fatal("flit not consumed: Send did not re-arm the component")
	}
	stepsAfterTraffic := c.steps
	if stepsAfterTraffic <= 1 {
		t.Fatalf("component never woke: steps=%d", stepsAfterTraffic)
	}
	if c.steps >= 11 {
		t.Fatalf("component never went back to sleep: steps=%d", c.steps)
	}

	sim.Wake(c)
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.steps != stepsAfterTraffic+1 {
		t.Fatalf("Wake should buy exactly one step: %d -> %d", stepsAfterTraffic, c.steps)
	}
}

// TestUndeclaredComponentAlwaysStepped pins backward compatibility: a
// component that never called DeclareInputs is stepped every cycle even when
// quiesced.
func TestUndeclaredComponentAlwaysStepped(t *testing.T) {
	sim := NewSimulation(0)
	l := sim.NewLink("in", 1, 4)
	c := &counter{in: l}
	sim.AddComponent(c)
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.steps != 10 {
		t.Fatalf("undeclared component stepped %d times in 10 cycles, want 10", c.steps)
	}
}

// relay forwards flits between two links out of a fixed-size buffer so its
// own Step never allocates; it backs the steady-state allocation guard.
type relay struct {
	name    string
	in, out *Link
	buf     [4]flit.Ref
	n       int
}

func (r *relay) Name() string   { return r.name }
func (r *relay) Quiesced() bool { return r.n == 0 }
func (r *relay) Step(now int64) {
	if r.n > 0 && r.out.CanSend(now) {
		r.out.Send(now, r.buf[0])
		copy(r.buf[:], r.buf[1:r.n])
		r.n--
		r.in.ReturnCredit(now, 1)
	}
	if _, ok := r.in.Arrived(now); ok && r.n < len(r.buf) {
		r.buf[r.n] = r.in.TakeArrived(now)
		r.n++
	}
}

// steadyRing builds a two-relay ring with one flit circulating forever.
func steadyRing() *Simulation {
	sim := NewSimulation(0)
	la := sim.NewLink("ring-a", 1, 4)
	lb := sim.NewLink("ring-b", 1, 4)
	r1 := &relay{name: "r1", in: la, out: lb}
	r2 := &relay{name: "r2", in: lb, out: la}
	sim.AddComponent(r1)
	sim.AddComponent(r2)
	sim.DeclareInputs(r1, la)
	sim.DeclareInputs(r2, lb)
	// A single-flit worm keeps the per-link conservation checker satisfied
	// as the same flit loops forever.
	la.Send(sim.Now, flit.Ref{W: testWorm(1), Idx: 0})
	return sim
}

// TestSimStepSteadyStateAllocs pins the engine hot path with no tracer and no
// observer at zero allocations per cycle: observability must stay strictly
// pay-for-what-you-use.
func TestSimStepSteadyStateAllocs(t *testing.T) {
	sim := steadyRing()
	for i := 0; i < 64; i++ { // warm the rings past initial growth
		sim.Step()
	}
	avg := testing.AllocsPerRun(1000, sim.Step)
	if avg != 0 {
		t.Fatalf("engine steady state allocates %.2f times per cycle with no observer, want 0", avg)
	}
}

// BenchmarkSimStepSteadyState is the benchmark form of the guard above; run
// with -benchmem to see the 0 allocs/op.
func BenchmarkSimStepSteadyState(b *testing.B) {
	sim := steadyRing()
	for i := 0; i < 64; i++ {
		sim.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

func BenchmarkLinkSendTakeCredit(b *testing.B) {
	l := NewLink("bench", 1, 4)
	w := testWorm(1 << 20)
	b.ReportAllocs()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		l.Send(now, flit.Ref{W: w, Idx: 0})
		now++
		l.TakeArrived(now)
		l.ReturnCredit(now, 1)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
