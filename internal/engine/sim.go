package engine

import (
	"fmt"
	"strings"
)

// Component is a clocked element of the simulated system (a switch or a
// NIC). Step is called exactly once per cycle in registration order; because
// link latency is at least one cycle, results are independent of that order.
type Component interface {
	// Step advances the component by one cycle.
	Step(now int64)
	// Quiesced reports whether the component holds no in-flight work.
	Quiesced() bool
	// Name identifies the component in diagnostics.
	Name() string
}

// DeadlockError reports that the watchdog observed no forward progress for
// its limit while components still held work — either a genuine protocol
// deadlock or a model bug. It lists the stuck components.
type DeadlockError struct {
	Cycle int64
	Limit int64
	Stuck []string
}

// Error formats the deadlock report.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("engine: no progress for %d cycles at cycle %d; stuck: %s",
		e.Limit, e.Cycle, strings.Join(e.Stuck, ", "))
}

// Simulation owns the clock, the components, and the links. It advances all
// components cycle by cycle and enforces a global progress watchdog.
type Simulation struct {
	// Now is the current cycle, visible to components mid-step.
	Now int64
	// WatchdogLimit is the number of consecutive cycles without any flit
	// movement or declared internal progress after which Run returns a
	// DeadlockError (if components still hold work). Zero disables it.
	WatchdogLimit int64

	comps        []Component
	links        []*Link
	activity     int64
	lastActivity int64
	tracer       Tracer
}

// NewSimulation returns an empty simulation with the watchdog set to limit.
func NewSimulation(watchdogLimit int64) *Simulation {
	return &Simulation{WatchdogLimit: watchdogLimit}
}

// AddComponent registers a component; it will be stepped each cycle.
func (s *Simulation) AddComponent(c Component) {
	s.comps = append(s.comps, c)
}

// NewLink creates a link registered with this simulation so that flit
// movement feeds the progress watchdog.
func (s *Simulation) NewLink(name string, latency, credits int) *Link {
	l := NewLink(name, latency, credits)
	l.bindActivity(&s.activity)
	s.links = append(s.links, l)
	return l
}

// Links returns all registered links.
func (s *Simulation) Links() []*Link { return s.links }

// Progress lets a component declare internal forward progress (for example,
// draining a software-overhead timer) so the watchdog does not fire while
// real work advances without flits moving.
func (s *Simulation) Progress() { s.activity++ }

// Quiesced reports whether every component and link is idle.
func (s *Simulation) Quiesced() bool {
	for _, c := range s.comps {
		if !c.Quiesced() {
			return false
		}
	}
	for _, l := range s.links {
		if !l.Quiesced() {
			return false
		}
	}
	return true
}

// Step advances the simulation one cycle.
func (s *Simulation) Step() {
	before := s.activity
	for _, c := range s.comps {
		c.Step(s.Now)
	}
	if s.activity != before {
		s.lastActivity = s.Now
	}
	s.Now++
}

// Run advances the simulation by the given number of cycles, returning a
// DeadlockError if the watchdog fires.
func (s *Simulation) Run(cycles int64) error {
	end := s.Now + cycles
	for s.Now < end {
		s.Step()
		if err := s.checkWatchdog(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil steps the simulation until pred returns true, the cycle budget is
// exhausted, or the watchdog fires. It reports whether pred was satisfied.
func (s *Simulation) RunUntil(pred func() bool, maxCycles int64) (bool, error) {
	end := s.Now + maxCycles
	for s.Now < end {
		if pred() {
			return true, nil
		}
		s.Step()
		if err := s.checkWatchdog(); err != nil {
			return false, err
		}
	}
	return pred(), nil
}

// Drain runs until every component and link is idle, up to maxCycles.
func (s *Simulation) Drain(maxCycles int64) (bool, error) {
	return s.RunUntil(s.Quiesced, maxCycles)
}

// CheckWatchdog lets external drivers that call Step directly run the same
// progress check Run performs.
func (s *Simulation) CheckWatchdog() error { return s.checkWatchdog() }

func (s *Simulation) checkWatchdog() error {
	if s.WatchdogLimit <= 0 || s.Now-s.lastActivity <= s.WatchdogLimit {
		return nil
	}
	if s.Quiesced() {
		// Nothing to do is not a deadlock; reset the clock on idleness.
		s.lastActivity = s.Now
		return nil
	}
	var stuck []string
	for _, c := range s.comps {
		if !c.Quiesced() {
			stuck = append(stuck, c.Name())
		}
	}
	for _, l := range s.links {
		if !l.Quiesced() {
			stuck = append(stuck, "link:"+l.Name())
		}
	}
	return &DeadlockError{Cycle: s.Now, Limit: s.WatchdogLimit, Stuck: stuck}
}
