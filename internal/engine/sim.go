package engine

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Kernel names the scheduling discipline compiled into this engine, for
// benchmark attribution ("event" = calendar-queue event kernel, "cycle" =
// the pre-event per-cycle sweep).
const Kernel = "event"

// Component is a clocked element of the simulated system (a switch or a
// NIC). Step is called exactly once per cycle in registration order; because
// link latency is at least one cycle, results are independent of that order.
type Component interface {
	// Step advances the component by one cycle.
	Step(now int64)
	// Quiesced reports whether the component holds no in-flight work.
	Quiesced() bool
	// Name identifies the component in diagnostics.
	Name() string
}

// NextWaker is implemented by components whose stimulus is a timetable
// rather than link traffic: fault-plan drivers, periodic probes, watchdog
// timers. NextWake returns the next cycle strictly after now at which the
// component needs to be stepped, or ok=false if it has no pending deadline
// (it then sleeps until an explicit Wake). The kernel queries it when the
// component quiesces and schedules a wake event for the returned cycle.
type NextWaker interface {
	NextWake(now int64) (at int64, ok bool)
}

// DeadlockError reports that the watchdog observed no forward progress for
// its limit while components still held work — either a genuine protocol
// deadlock or a model bug. It lists the stuck components.
type DeadlockError struct {
	Cycle int64
	Limit int64
	Stuck []string
}

// Error formats the deadlock report.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("engine: no progress for %d cycles at cycle %d; stuck: %s",
		e.Limit, e.Cycle, strings.Join(e.Stuck, ", "))
}

// noWake marks a component with no pending wake event.
const noWake = int64(math.MaxInt64)

// compEntry tracks one registered component plus its scheduling state. A
// component with declared event sources (input links via DeclareInputs, or
// a timetable via DeclareEventDriven) may be put to sleep — skipped by Step
// and excluded from clock-jump decisions — once it is quiesced and nothing
// has arrived for it; a queued wake event, a Send on an input link, or an
// explicit Wake re-arms it. Components that never declared event sources
// are stepped every cycle, exactly like the pre-event-kernel engine, so
// ad-hoc harnesses keep their semantics.
type compEntry struct {
	c         Component
	inputs    []*Link
	nw        NextWaker
	sleepable bool
	asleep    bool
	// wakeAt is the earliest queued wake event for this component (noWake
	// if none); it suppresses redundant events for later cycles.
	wakeAt int64
}

// Simulation owns the clock, the components, and the links. It is a
// discrete-event kernel: components declare their event sources, sleep when
// quiesced, and are re-armed by wake events queued in a calendar queue
// (link deliveries at now+latency, fault-plan activations, probe
// deadlines). While any component is awake the clock steps cycle by cycle;
// when every component sleeps, Run/RunUntil jump the clock straight to the
// next queued event (or the watchdog deadline, or the budget limit).
//
// Because an idle component's Step is required to be a no-op — the model
// components draw no randomness and mutate no arbitration state while idle —
// skipping and jumping preserve exact cycle semantics while removing the
// per-cycle cost of the (often dominant) idle fraction of the fabric.
type Simulation struct {
	// Now is the current cycle, visible to components mid-step.
	Now int64
	// WatchdogLimit is the number of consecutive cycles without any flit
	// movement or declared internal progress after which Run returns a
	// DeadlockError (if components still hold work). Zero disables it.
	WatchdogLimit int64

	comps      []compEntry
	compIdx    map[Component]int
	awake      []uint64 // bitmap over comps; set = stepped each cycle
	awakeCount int
	evq        eventQueue

	links []*Link
	// linkSlab backs Simulation-created links in contiguous chunks so a
	// fabric's link state is cache-adjacent instead of heap-scattered.
	linkSlab []Link
	// busyLinks counts links with at least one flit on the wire, so
	// quiescence and jump decisions are O(1) instead of a fabric scan.
	busyLinks    int
	activity     int64
	lastActivity int64
	tracer       Tracer
	inv          *Invariants
}

// NewSimulation returns an empty simulation with the watchdog set to limit.
// The invariant checker is always on; set Invariants().Strict to upgrade
// violations to hard failures.
func NewSimulation(watchdogLimit int64) *Simulation {
	return &Simulation{
		WatchdogLimit: watchdogLimit,
		compIdx:       make(map[Component]int),
		inv:           newInvariants(),
	}
}

// Invariants returns the simulation's invariant-checker sink. Components
// report violations through it; drivers read the counters after a run.
func (s *Simulation) Invariants() *Invariants { return s.inv }

// AddComponent registers a component; it will be stepped each cycle until
// it declares event sources and quiesces.
func (s *Simulation) AddComponent(c Component) {
	i := len(s.comps)
	s.compIdx[c] = i
	s.comps = append(s.comps, compEntry{c: c, wakeAt: noWake})
	if i>>6 >= len(s.awake) {
		s.awake = append(s.awake, 0)
	}
	s.awake[i>>6] |= 1 << uint(i&63)
	s.awakeCount++
}

// DeclareInputs tells the scheduler which links feed component c, making c
// eligible for sleeping: while c is quiesced and none of these links holds
// an arrived flit, Step does not call c; a Send on any declared link queues
// a wake event for the flit's arrival cycle. Callers whose components
// receive stimulus outside the link fabric (message submission, barrier
// drivers) must pair this with Wake.
func (s *Simulation) DeclareInputs(c Component, inputs ...*Link) {
	i, ok := s.compIdx[c]
	if !ok {
		panic("engine: DeclareInputs for unregistered component " + c.Name())
	}
	e := &s.comps[i]
	e.sleepable = true
	for _, l := range inputs {
		if l == nil {
			continue
		}
		e.inputs = append(e.inputs, l)
		l.sim = s
		l.recv = int32(i)
	}
}

// DeclareEventDriven registers c's timetable as an event source: when c
// quiesces, the kernel asks its NextWake for the next deadline and sleeps
// it until then. c must implement NextWaker. May be combined with
// DeclareInputs; the earlier of link arrival and deadline wins.
func (s *Simulation) DeclareEventDriven(c Component) {
	i, ok := s.compIdx[c]
	if !ok {
		panic("engine: DeclareEventDriven for unregistered component " + c.Name())
	}
	nw, ok := c.(NextWaker)
	if !ok {
		panic("engine: DeclareEventDriven component " + c.Name() + " does not implement NextWaker")
	}
	e := &s.comps[i]
	e.sleepable = true
	e.nw = nw
}

// Wake re-arms a sleeping component immediately (it steps on the current
// cycle), for out-of-band stimulation such as a message submitted to an
// idle NIC. Unregistered components are ignored.
func (s *Simulation) Wake(c Component) {
	if i, ok := s.compIdx[c]; ok {
		s.wakeIdx(int32(i))
	}
}

// ScheduleWakeAt queues a wake event for c at the given future cycle.
// Scheduling in the past (at <= Now) is an error — the kernel never
// reorders time — as is an unregistered component.
func (s *Simulation) ScheduleWakeAt(c Component, at int64) error {
	i, ok := s.compIdx[c]
	if !ok {
		return fmt.Errorf("engine: ScheduleWakeAt for unregistered component %s", c.Name())
	}
	if at <= s.Now {
		return fmt.Errorf("engine: ScheduleWakeAt for %s at cycle %d, not after now (%d)", c.Name(), at, s.Now)
	}
	s.scheduleWake(int32(i), at)
	return nil
}

// wakeIdx clears the sleep state of component i, effective this cycle.
func (s *Simulation) wakeIdx(i int32) {
	e := &s.comps[i]
	e.wakeAt = noWake
	if e.asleep {
		e.asleep = false
		s.awake[i>>6] |= 1 << uint(i&63)
		s.awakeCount++
	}
}

// scheduleWake queues a wake event for component i at cycle at, unless an
// event at the same or an earlier cycle is already queued for it.
func (s *Simulation) scheduleWake(i int32, at int64) {
	e := &s.comps[i]
	if e.wakeAt <= at {
		return
	}
	e.wakeAt = at
	s.evq.push(at, i)
}

// noteSend is the link-delivery event source: a Send toward a sleeping
// receiver queues its wake for the arrival cycle. Awake receivers need
// nothing — they will see the arrival when they step.
func (s *Simulation) noteSend(recv int32, arriveAt int64) {
	if s.comps[recv].asleep {
		s.scheduleWake(recv, arriveAt)
	}
}

// NewLink creates a link registered with this simulation so that flit
// movement feeds the progress watchdog and the busy-link census. Link
// structs are carved from contiguous slabs.
func (s *Simulation) NewLink(name string, latency, credits int) *Link {
	if len(s.linkSlab) == 0 {
		s.linkSlab = make([]Link, 64)
	}
	l := &s.linkSlab[0]
	s.linkSlab = s.linkSlab[1:]
	*l = *NewLink(name, latency, credits)
	l.bindActivity(&s.activity)
	l.sim = s
	l.inv = s.inv
	s.links = append(s.links, l)
	return l
}

// Links returns all registered links.
func (s *Simulation) Links() []*Link { return s.links }

// Progress lets a component declare internal forward progress (for example,
// draining a software-overhead timer) so the watchdog does not fire while
// real work advances without flits moving.
func (s *Simulation) Progress() { s.activity++ }

// Quiesced reports whether every component and link is idle. Sleeping
// components are quiesced by construction (sleep is only entered from a
// quiesced state and asleep components are never stepped), so the check
// scans only busy links and awake components.
func (s *Simulation) Quiesced() bool {
	if s.busyLinks > 0 {
		return false
	}
	for w, word := range s.awake {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			if !s.comps[w<<6+b].c.Quiesced() {
				return false
			}
		}
	}
	return true
}

// dispatchDue pops every queued event with at <= Now and wakes its
// component. Stale events (the component woke earlier for another reason)
// degenerate to a no-op step and are harmless.
func (s *Simulation) dispatchDue() {
	if s.evq.len() == 0 {
		return
	}
	s.evq.popDue(s.Now, s.wakeIdx)
}

// Step advances the simulation one cycle: due wake events fire, then every
// awake component steps in registration order, then components that
// quiesced with no pending arrival go to sleep (queueing a wake for their
// next known stimulus). Step never jumps the clock — drivers that need the
// jump use Run/RunUntil/Advance.
func (s *Simulation) Step() {
	s.dispatchDue()
	before := s.activity
	for w := range s.awake {
		visited := uint64(0)
		for {
			word := s.awake[w] &^ visited
			if word == 0 {
				break
			}
			b := bits.TrailingZeros64(word)
			visited |= 1 << uint(b)
			i := w<<6 + b
			e := &s.comps[i]
			e.c.Step(s.Now)
			s.maybeSleep(i, e)
		}
	}
	if s.activity != before {
		s.lastActivity = s.Now
	}
	s.Now++
}

// maybeSleep puts component i to sleep if it is quiesced and nothing has
// arrived for it, queueing a wake event for its earliest future stimulus
// (the head flit of an in-flight input, or its NextWake deadline). A
// stimulus due next cycle keeps it awake — sleeping for one cycle buys
// nothing over stepping.
func (s *Simulation) maybeSleep(i int, e *compEntry) {
	if !e.sleepable || !e.c.Quiesced() {
		return
	}
	wakeAt := noWake
	for _, l := range e.inputs {
		if l.inflight.len() == 0 {
			continue
		}
		at := l.inflight.front().at
		if at <= s.Now {
			return // arrived but unconsumed: stay awake
		}
		if at < wakeAt {
			wakeAt = at
		}
	}
	if e.nw != nil {
		if at, ok := e.nw.NextWake(s.Now); ok {
			if at <= s.Now {
				return
			}
			if at < wakeAt {
				wakeAt = at
			}
		}
	}
	if wakeAt == s.Now+1 {
		return
	}
	e.asleep = true
	s.awake[i>>6] &^= 1 << uint(i&63)
	s.awakeCount--
	if wakeAt != noWake {
		s.scheduleWake(int32(i), wakeAt)
	}
}

// Advance moves the clock toward limit (exclusive upper bound on Now after
// the call): while any component is awake it steps one cycle; once every
// component sleeps it jumps Now directly to the earliest of the next queued
// event, the watchdog deadline, and limit. With a tracer attached it never
// jumps, so per-cycle traces stay exact.
func (s *Simulation) Advance(limit int64) error {
	if s.awakeCount > 0 || s.tracer != nil {
		s.Step()
		return s.checkWatchdog()
	}
	// Everyone is asleep, hence quiesced; only wire latency and queued
	// deadlines separate us from the next state change.
	target := limit
	if at, ok := s.evq.peek(); ok && at < target {
		target = at
	}
	if s.WatchdogLimit > 0 && s.busyLinks > 0 {
		// Do not jump past the cycle where the watchdog would have fired
		// under per-cycle stepping, so deadlock reports keep their exact
		// cycle and stuck set.
		if dl := s.lastActivity + s.WatchdogLimit + 1; dl < target {
			target = dl
		}
	}
	if target <= s.Now {
		s.Step()
		return s.checkWatchdog()
	}
	s.Now = target
	s.dispatchDue()
	return s.checkWatchdog()
}

// Run advances the simulation by the given number of cycles, returning a
// DeadlockError if the watchdog fires. A non-positive cycle budget is
// rejected: silently doing nothing has hidden more than one driver bug.
func (s *Simulation) Run(cycles int64) error {
	if cycles <= 0 {
		return fmt.Errorf("engine: Run needs a positive cycle budget, got %d", cycles)
	}
	end := s.Now + cycles
	for s.Now < end {
		if err := s.Advance(end); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil advances the simulation until pred returns true, the cycle
// budget is exhausted, or the watchdog fires. It reports whether pred was
// satisfied. A non-positive budget is rejected with an error.
//
// pred must depend only on component, link, and statistics state — never on
// the raw clock — because the kernel skips it over spans where no component
// steps (no state it may legally read can change there).
func (s *Simulation) RunUntil(pred func() bool, maxCycles int64) (bool, error) {
	if maxCycles <= 0 {
		return false, fmt.Errorf("engine: RunUntil needs a positive cycle budget, got %d", maxCycles)
	}
	end := s.Now + maxCycles
	for s.Now < end {
		if pred() {
			return true, nil
		}
		if err := s.Advance(end); err != nil {
			return false, err
		}
	}
	return pred(), nil
}

// Drain runs until every component and link is idle, up to maxCycles (which
// must be positive).
func (s *Simulation) Drain(maxCycles int64) (bool, error) {
	return s.RunUntil(s.Quiesced, maxCycles)
}

// AwakeCount returns the number of components currently stepped each cycle.
func (s *Simulation) AwakeCount() int { return s.awakeCount }

// PendingEvents returns the number of queued wake events (stale duplicates
// included).
func (s *Simulation) PendingEvents() int { return s.evq.len() }

// CheckWatchdog lets external drivers that call Step directly run the same
// progress check Run performs.
func (s *Simulation) CheckWatchdog() error { return s.checkWatchdog() }

func (s *Simulation) checkWatchdog() error {
	if s.WatchdogLimit <= 0 || s.Now-s.lastActivity <= s.WatchdogLimit {
		return nil
	}
	if s.Quiesced() {
		// Nothing to do is not a deadlock; reset the clock on idleness.
		s.lastActivity = s.Now
		return nil
	}
	var stuck []string
	for i := range s.comps {
		if !s.comps[i].c.Quiesced() {
			stuck = append(stuck, s.comps[i].c.Name())
		}
	}
	for _, l := range s.links {
		if !l.Quiesced() {
			stuck = append(stuck, "link:"+l.Name())
		}
	}
	// Keep the cyclic-wait report readable on big fabrics: name the first
	// participants and summarize the rest.
	const maxStuckNames = 12
	if len(stuck) > maxStuckNames {
		extra := len(stuck) - maxStuckNames
		stuck = append(stuck[:maxStuckNames], fmt.Sprintf("(+%d more)", extra))
	}
	return &DeadlockError{Cycle: s.Now, Limit: s.WatchdogLimit, Stuck: stuck}
}
