package engine

import (
	"fmt"
	"strings"
)

// Component is a clocked element of the simulated system (a switch or a
// NIC). Step is called exactly once per cycle in registration order; because
// link latency is at least one cycle, results are independent of that order.
type Component interface {
	// Step advances the component by one cycle.
	Step(now int64)
	// Quiesced reports whether the component holds no in-flight work.
	Quiesced() bool
	// Name identifies the component in diagnostics.
	Name() string
}

// DeadlockError reports that the watchdog observed no forward progress for
// its limit while components still held work — either a genuine protocol
// deadlock or a model bug. It lists the stuck components.
type DeadlockError struct {
	Cycle int64
	Limit int64
	Stuck []string
}

// Error formats the deadlock report.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("engine: no progress for %d cycles at cycle %d; stuck: %s",
		e.Limit, e.Cycle, strings.Join(e.Stuck, ", "))
}

// compEntry tracks one registered component plus its scheduling state. A
// component with declared input links may be put to sleep (skipped by Step)
// once it is quiesced and none of its inputs carries a flit; it is re-armed
// by a Send on an input link or an explicit Wake. Components that never
// declared inputs are stepped every cycle, exactly like the pre-active-set
// engine, so ad-hoc harnesses keep their semantics.
type compEntry struct {
	c      Component
	inputs []*Link
	asleep bool
}

// unstimulated reports whether no declared input link holds a flit that
// could stimulate the component.
func (e *compEntry) unstimulated() bool {
	for _, l := range e.inputs {
		if l.inflight.len() > 0 {
			return false
		}
	}
	return true
}

// Simulation owns the clock, the components, and the links. It advances all
// components cycle by cycle and enforces a global progress watchdog.
//
// Components whose inputs are declared via DeclareInputs participate in
// active-set scheduling: once such a component reports Quiesced and no flit
// is in flight toward it, Step skips it until a link Send re-arms it (or
// Wake is called after out-of-band stimulation such as a message submit).
// Because an idle component's Step is required to be a no-op — the model
// components draw no randomness and mutate no arbitration state while idle —
// skipping preserves exact cycle semantics while removing the per-cycle cost
// of the (often large) idle fraction of the fabric.
type Simulation struct {
	// Now is the current cycle, visible to components mid-step.
	Now int64
	// WatchdogLimit is the number of consecutive cycles without any flit
	// movement or declared internal progress after which Run returns a
	// DeadlockError (if components still hold work). Zero disables it.
	WatchdogLimit int64

	comps        []compEntry
	compIdx      map[Component]int
	links        []*Link
	activity     int64
	lastActivity int64
	tracer       Tracer
	inv          *Invariants
}

// NewSimulation returns an empty simulation with the watchdog set to limit.
// The invariant checker is always on; set Invariants().Strict to upgrade
// violations to hard failures.
func NewSimulation(watchdogLimit int64) *Simulation {
	return &Simulation{
		WatchdogLimit: watchdogLimit,
		compIdx:       make(map[Component]int),
		inv:           newInvariants(),
	}
}

// Invariants returns the simulation's invariant-checker sink. Components
// report violations through it; drivers read the counters after a run.
func (s *Simulation) Invariants() *Invariants { return s.inv }

// AddComponent registers a component; it will be stepped each cycle.
func (s *Simulation) AddComponent(c Component) {
	s.compIdx[c] = len(s.comps)
	s.comps = append(s.comps, compEntry{c: c})
}

// DeclareInputs tells the scheduler which links feed component c, making c
// eligible for active-set skipping: while c is quiesced and none of these
// links carries a flit, Step does not call c. A Send on any declared link
// re-arms c. Callers whose components receive stimulus outside the link
// fabric (message submission, barrier drivers) must pair this with Wake.
func (s *Simulation) DeclareInputs(c Component, inputs ...*Link) {
	i, ok := s.compIdx[c]
	if !ok {
		panic("engine: DeclareInputs for unregistered component " + c.Name())
	}
	e := &s.comps[i]
	for _, l := range inputs {
		if l == nil {
			continue
		}
		e.inputs = append(e.inputs, l)
		l.wake = func() { s.comps[i].asleep = false }
	}
}

// Wake re-arms a sleeping component after out-of-band stimulation (for
// example, a message submitted to an idle NIC). Unregistered components are
// ignored.
func (s *Simulation) Wake(c Component) {
	if i, ok := s.compIdx[c]; ok {
		s.comps[i].asleep = false
	}
}

// NewLink creates a link registered with this simulation so that flit
// movement feeds the progress watchdog.
func (s *Simulation) NewLink(name string, latency, credits int) *Link {
	l := NewLink(name, latency, credits)
	l.bindActivity(&s.activity)
	l.inv = s.inv
	s.links = append(s.links, l)
	return l
}

// Links returns all registered links.
func (s *Simulation) Links() []*Link { return s.links }

// Progress lets a component declare internal forward progress (for example,
// draining a software-overhead timer) so the watchdog does not fire while
// real work advances without flits moving.
func (s *Simulation) Progress() { s.activity++ }

// Quiesced reports whether every component and link is idle.
func (s *Simulation) Quiesced() bool {
	for i := range s.comps {
		if !s.comps[i].c.Quiesced() {
			return false
		}
	}
	for _, l := range s.links {
		if !l.Quiesced() {
			return false
		}
	}
	return true
}

// Step advances the simulation one cycle.
func (s *Simulation) Step() {
	before := s.activity
	for i := range s.comps {
		e := &s.comps[i]
		if e.asleep {
			continue
		}
		e.c.Step(s.Now)
		if e.inputs != nil && e.c.Quiesced() && e.unstimulated() {
			e.asleep = true
		}
	}
	if s.activity != before {
		s.lastActivity = s.Now
	}
	s.Now++
}

// Run advances the simulation by the given number of cycles, returning a
// DeadlockError if the watchdog fires. A non-positive cycle budget is
// rejected: silently doing nothing has hidden more than one driver bug.
func (s *Simulation) Run(cycles int64) error {
	if cycles <= 0 {
		return fmt.Errorf("engine: Run needs a positive cycle budget, got %d", cycles)
	}
	end := s.Now + cycles
	for s.Now < end {
		s.Step()
		if err := s.checkWatchdog(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil steps the simulation until pred returns true, the cycle budget is
// exhausted, or the watchdog fires. It reports whether pred was satisfied.
// A non-positive budget is rejected with an error.
func (s *Simulation) RunUntil(pred func() bool, maxCycles int64) (bool, error) {
	if maxCycles <= 0 {
		return false, fmt.Errorf("engine: RunUntil needs a positive cycle budget, got %d", maxCycles)
	}
	end := s.Now + maxCycles
	for s.Now < end {
		if pred() {
			return true, nil
		}
		s.Step()
		if err := s.checkWatchdog(); err != nil {
			return false, err
		}
	}
	return pred(), nil
}

// Drain runs until every component and link is idle, up to maxCycles (which
// must be positive).
func (s *Simulation) Drain(maxCycles int64) (bool, error) {
	return s.RunUntil(s.Quiesced, maxCycles)
}

// CheckWatchdog lets external drivers that call Step directly run the same
// progress check Run performs.
func (s *Simulation) CheckWatchdog() error { return s.checkWatchdog() }

func (s *Simulation) checkWatchdog() error {
	if s.WatchdogLimit <= 0 || s.Now-s.lastActivity <= s.WatchdogLimit {
		return nil
	}
	if s.Quiesced() {
		// Nothing to do is not a deadlock; reset the clock on idleness.
		s.lastActivity = s.Now
		return nil
	}
	var stuck []string
	for i := range s.comps {
		if !s.comps[i].c.Quiesced() {
			stuck = append(stuck, s.comps[i].c.Name())
		}
	}
	for _, l := range s.links {
		if !l.Quiesced() {
			stuck = append(stuck, "link:"+l.Name())
		}
	}
	// Keep the cyclic-wait report readable on big fabrics: name the first
	// participants and summarize the rest.
	const maxStuckNames = 12
	if len(stuck) > maxStuckNames {
		extra := len(stuck) - maxStuckNames
		stuck = append(stuck[:maxStuckNames], fmt.Sprintf("(+%d more)", extra))
	}
	return &DeadlockError{Cycle: s.Now, Limit: s.WatchdogLimit, Stuck: stuck}
}
