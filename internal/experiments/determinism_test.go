package experiments

import (
	"encoding/json"
	"errors"
	"hash/fnv"
	"reflect"
	"testing"

	"mdworm/internal/collective"
	"mdworm/internal/core"
	"mdworm/internal/faults"
	"mdworm/internal/routing"
	"mdworm/internal/stats"
	"mdworm/internal/topology"
)

// checkpointConfig returns a small configuration exercising the machinery an
// experiment id distinguishes itself by — architecture, scheme, topology,
// traffic mix, fault plan — so the determinism property covers every state
// path the suite can reach.
func checkpointConfig(id string) core.Config {
	cfg := core.DefaultConfig()
	cfg.Arity = 4
	cfg.Stages = 2
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 700
	cfg.DrainCycles = 80_000
	cfg.Seed = 7
	cfg.Traffic.OpRate = 0.002
	cfg.Traffic.Degree = 6

	switch id {
	case "e1": // multiple multicast latency: the baseline
	case "e2": // throughput: push load up
		cfg.Traffic.OpRate = 0.004
	case "e3": // bimodal, unicast under multicast background
		cfg.Traffic.MulticastFraction = 0.3
	case "e4": // bimodal, multicast side
		cfg.Traffic.MulticastFraction = 0.7
	case "e5": // degree sweep
		cfg.Traffic.Degree = 12
	case "e6": // message length sweep
		cfg.Traffic.McastPayloadFlits = 128
	case "e7": // system size: the full 64-node baseline
		cfg.Stages = 3
		cfg.Traffic.Degree = 8
	case "e8": // single multicast: near-idle fabric
		cfg.Traffic.OpRate = 0.0005
	case "a1": // central-buffer size ablation
		cfg.CB.Chunks = 96
	case "a2": // chunk size ablation
		cfg.CB.ChunkFlits = 4
	case "a3": // replicate-on-up-path off
		cfg.ReplicateOnUpPath = false
	case "a4": // up-port policy
		cfg.UpPolicy = routing.UpRandom
	case "a5": // multiport encoding
		cfg.Scheme = collective.HardwareMultiport
	case "a6": // software multicast with host overhead
		cfg.Scheme = collective.SoftwareBinomial
	case "a7": // hot-spot traffic
		cfg.Traffic.MulticastFraction = 0.2
		cfg.Traffic.HotSpotFraction = 0.3
		cfg.Traffic.HotSpotNode = 3
	case "a8": // barrier contender mix: input-buffer arch carries it here
		cfg.Arch = core.InputBuffer
	case "a9": // irregular topology
		cfg.Topology = core.IrregularTree
		cfg.Tree = topology.TreeSpec{Switches: 6, MinHosts: 1, MaxHosts: 3, MaxChildren: 3, Seed: 11}
		cfg.Traffic.Degree = 4
	case "a10": // sync replication study: separate-addressing software scheme
		cfg.Scheme = collective.SoftwareSeparate
	case "a11": // buffer bandwidth ablation
		cfg.CB.PortBandwidth = 1
	case "c1": // barrier, hardware release worm
		cfg.Collective = collective.Spec{Kind: collective.Barrier, PayloadFlits: 1, Reps: 40, GapCycles: 15}
	case "c2": // broadcast, software tree alongside background unicasts
		cfg.Scheme = collective.SoftwareBinomial
		cfg.Collective = collective.Spec{Kind: collective.Broadcast, PayloadFlits: 32, Reps: 25, GapCycles: 20}
	case "c3": // all-reduce, combine tree with skewed arrivals
		cfg.Collective = collective.Spec{Kind: collective.AllReduce, PayloadFlits: 8, Reps: 20, SkewCycles: 30, GapCycles: 15}
	case "c4": // scatter on the input-buffer architecture
		cfg.Arch = core.InputBuffer
		cfg.Collective = collective.Spec{Kind: collective.Scatter, PayloadFlits: 6, Reps: 25, GapCycles: 15}
	case "c5": // gather to a non-zero root, software tree
		cfg.Scheme = collective.SoftwareBinomial
		cfg.Collective = collective.Spec{Kind: collective.Gather, Root: 5, PayloadFlits: 6, Reps: 25, GapCycles: 15}
	case "c6": // direct-gather all-reduce converging on the root ejection link
		cfg.Collective = collective.Spec{Kind: collective.AllReduceGather, PayloadFlits: 4, Reps: 20, SkewCycles: 10, GapCycles: 25}
	}

	// Mid-run faults stress the fault-driver cursor and link failure state
	// in the checkpoint on a couple of ids.
	if id == "e2" || id == "a7" {
		cfg.Faults = faults.Plan{Events: []faults.Event{
			{Kind: faults.NICStall, At: 350, Duration: 120, Node: 1},
			{Kind: faults.PortStuck, At: 500, Duration: 90, Switch: 0, Port: 1},
		}}
	}
	return cfg
}

// snapshotCycle derives the pseudo-random snapshot point for an id,
// deterministic across runs so failures reproduce.
func snapshotCycle(id string, cfg core.Config) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	span := cfg.WarmupCycles + cfg.MeasureCycles
	return 1 + int64(h.Sum64()%uint64(span+200)) // may land in warmup, measure, or early drain
}

var errCrash = errors.New("simulated crash after checkpoint")

// TestCheckpointDeterminism is the tentpole property: for every experiment
// id, a run snapshotted at a pseudo-random cycle, "crashed", and restored
// from the blob produces results byte-identical to the uninterrupted run.
func TestCheckpointDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint determinism sweep skipped in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			cfg := checkpointConfig(id)
			snapAt := snapshotCycle(id, cfg)

			ref, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Run()
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}

			crashed, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var blob []byte
			_, err = crashed.RunCheckpointed(snapAt, func(data []byte, cycle int64) error {
				if cycle != snapAt {
					return nil // a later multiple; the first already crashed us
				}
				blob = data
				return errCrash
			})
			switch {
			case err == nil:
				// The run quiesced before the snapshot point ever fired (the
				// checkpoint only triggers on exact multiples inside the
				// loop); nothing to restore, so the property holds vacuously.
				t.Skipf("run finished before cycle %d", snapAt)
			case !errors.Is(err, errCrash):
				t.Fatalf("crashed run: %v", err)
			}

			restored, err := core.Restore(blob)
			if err != nil {
				t.Fatalf("restore at cycle %d: %v", snapAt, err)
			}
			got, err := restored.Run()
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}

			if !reflect.DeepEqual(want, got) {
				t.Fatalf("resumed results diverge from uninterrupted run (snapshot at cycle %d):\nwant %+v\ngot  %+v",
					snapAt, want, got)
			}
			wj := mustJSON(t, want)
			gj := mustJSON(t, got)
			if string(wj) != string(gj) {
				t.Fatalf("resumed results render differently:\nwant %s\ngot  %s", wj, gj)
			}
		})
	}
}

func mustJSON(t *testing.T, r stats.Results) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
