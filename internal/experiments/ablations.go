package experiments

import (
	"errors"
	"fmt"

	"mdworm/internal/core"
	"mdworm/internal/engine"
	"mdworm/internal/routing"
	"mdworm/internal/topology"
)

// A1CentralBufferSize sweeps the central buffer capacity under multiple
// multicast pressure: the shared buffer is the CB architecture's key
// resource, and the paper's design rests on it being generously sized.
func A1CentralBufferSize(o Options) (*Table, error) {
	chunkCounts := []int{32, 64, 128, 256}
	if o.Quick {
		chunkCounts = []int{32, 128}
	}
	const load = 0.50
	s := Series{Name: CBHW.Name}
	for _, chunks := range chunkCounts {
		cfg := baseConfig(o)
		multipleMulticastShape(&cfg)
		CBHW.Apply(&cfg)
		cfg.CB.Chunks = chunks
		cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
		s.Points = append(s.Points, runPoint(cfg, float64(chunks), o, fmt.Sprintf("a1/c%d", chunks)))
	}
	return &Table{
		ID:      "A1",
		Title:   fmt.Sprintf("Central buffer size at load %.2f (multiple multicast, d=8)", load),
		XLabel:  "chunks",
		Metrics: []Metric{MetricMcastLatency, MetricMcastP95, MetricThroughput},
		Series:  []Series{s},
		Notes:   "chunk counts below 2x the packet size are raised automatically to keep the deadlock-freedom guarantee",
		strict:  true,
	}, nil
}

// A2ChunkSize sweeps the chunk granularity at a fixed total capacity in
// flits: finer chunks waste less space on partial fills but cost more
// bookkeeping; coarser chunks round every packet up.
func A2ChunkSize(o Options) (*Table, error) {
	chunkFlits := []int{4, 8, 16}
	if o.Quick {
		chunkFlits = []int{4, 16}
	}
	const load, totalFlits = 0.50, 1024
	s := Series{Name: CBHW.Name}
	for _, cf := range chunkFlits {
		cfg := baseConfig(o)
		multipleMulticastShape(&cfg)
		CBHW.Apply(&cfg)
		cfg.CB.ChunkFlits = cf
		cfg.CB.Chunks = totalFlits / cf
		cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
		s.Points = append(s.Points, runPoint(cfg, float64(cf), o, fmt.Sprintf("a2/cf%d", cf)))
	}
	return &Table{
		ID:      "A2",
		Title:   fmt.Sprintf("Chunk granularity at %d buffer flits, load %.2f", totalFlits, load),
		XLabel:  "chunk_flits",
		Metrics: []Metric{MetricMcastLatency, MetricThroughput},
		Series:  []Series{s},
		strict:  true,
	}, nil
}

// A3ReplicateOnUpPath compares branching downward on the way to the LCA
// stage against ascending undivided and replicating only on the way down.
func A3ReplicateOnUpPath(o Options) (*Table, error) {
	const load = 0.40
	var series []Series
	for _, rep := range []bool{true, false} {
		name := "replicate-up"
		if !rep {
			name = "lca-only"
		}
		s := Series{Name: name}
		for _, d := range []int{4, 16, 63} {
			cfg := baseConfig(o)
			multipleMulticastShape(&cfg)
			CBHW.Apply(&cfg)
			cfg.ReplicateOnUpPath = rep
			cfg.Traffic.Degree = d
			cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
			s.Points = append(s.Points, runPoint(cfg, float64(d), o, fmt.Sprintf("a3/%s/d%d", name, d)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "A3",
		Title:   fmt.Sprintf("Replicate on the up path vs at the LCA only, load %.2f", load),
		XLabel:  "degree",
		Metrics: []Metric{MetricMcastLatency, MetricThroughput},
		Series:  series,
	}, nil
}

// A4UpPortPolicy compares the up-port selection policies under bimodal load.
func A4UpPortPolicy(o Options) (*Table, error) {
	const load = 0.35
	var series []Series
	for _, pol := range []routing.UpPolicy{routing.UpHash, routing.UpRandom, routing.UpAdaptive} {
		s := Series{Name: pol.String()}
		for _, arch := range []Contender{CBHW, IBHW} {
			cfg := baseConfig(o)
			bimodalShape(&cfg)
			arch.Apply(&cfg)
			cfg.UpPolicy = pol
			cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
			x := float64(0)
			if arch.Arch == core.InputBuffer {
				x = 1
			}
			s.Points = append(s.Points, runPoint(cfg, x, o, fmt.Sprintf("a4/%s/%s", pol, arch.Name)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "A4",
		Title:   fmt.Sprintf("Up-port selection policy under bimodal traffic, load %.2f", load),
		XLabel:  "arch(0=cb,1=ib)",
		Metrics: []Metric{MetricUniLatency, MetricMcastLatency, MetricThroughput},
		Series:  series,
	}, nil
}

// A5Encoding compares bit-string against multiport encoding: single-phase
// arbitrary sets with wide headers versus compact headers that may need
// several worms.
func A5Encoding(o Options) (*Table, error) {
	degrees := []int{2, 4, 8, 16, 32, 63}
	if o.Quick {
		degrees = []int{4, 16, 63}
	}
	var series []Series
	for _, c := range []Contender{CBHW, CBMP} {
		s := Series{Name: c.Name}
		for _, d := range degrees {
			cfg := baseConfig(o)
			cfg.Traffic.OpRate = 0
			cfg.Traffic.Degree = d
			c.Apply(&cfg)
			s.Points = append(s.Points, singleOpPoint(cfg, d, o, fmt.Sprintf("a5/%s/d%d", c.Name, d)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "A5",
		Title:   "Header encoding: bit-string vs multiport, single multicast on idle network (N=64)",
		XLabel:  "degree",
		Metrics: []Metric{MetricMcastLatency, MetricMsgsPerOp},
		Series:  series,
		Notes:   "msgs_per_op for multiport is the number of product-set worms needed",
	}, nil
}

// A6SoftwareOverhead sweeps the software send/receive overhead, the knob
// the software scheme's competitiveness depends on.
func A6SoftwareOverhead(o Options) (*Table, error) {
	overheads := []int{16, 64, 256}
	var series []Series
	for _, c := range []Contender{CBHW, SWUMIN} {
		s := Series{Name: c.Name}
		for _, ov := range overheads {
			cfg := baseConfig(o)
			cfg.Traffic.OpRate = 0
			cfg.Traffic.Degree = 8
			cfg.NIC.SendOverhead = ov
			cfg.NIC.RecvOverhead = ov
			c.Apply(&cfg)
			s.Points = append(s.Points, singleOpPoint(cfg, 8, o, fmt.Sprintf("a6/%s/ov%d", c.Name, ov)))
			s.Points[len(s.Points)-1].X = float64(ov)
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "A6",
		Title:   "Sensitivity to software overhead (single multicast, d=8, idle network)",
		XLabel:  "overhead",
		Metrics: []Metric{MetricMcastLatency, MetricMsgsPerOp},
		Series:  series,
	}, nil
}

// A10SyncReplication compares asynchronous replication against the
// lock-step alternative, on the input-buffer switch under multiple
// multicast. The paper states that synchronous replication "is susceptible
// to deadlock" without an avoidance arbiter (its reason for adopting
// asynchronous replication); this experiment demonstrates it empirically —
// the sync rows deadlock, caught by the watchdog and reported as such.
func A10SyncReplication(o Options) (*Table, error) {
	loads := []float64{0.10, 0.30, 0.50}
	if o.Quick {
		loads = []float64{0.10, 0.40}
	}
	var series []Series
	for _, sync := range []bool{false, true} {
		name := "async"
		if sync {
			name = "sync"
		}
		s := Series{Name: name}
		for _, load := range loads {
			cfg := baseConfig(o)
			multipleMulticastShape(&cfg)
			IBHW.Apply(&cfg)
			cfg.IB.SyncReplication = sync
			if sync {
				cfg.WatchdogLimit = 20_000 // expected to wedge; fail fast
			}
			cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
			p := runPoint(cfg, load, o, fmt.Sprintf("a10/%s/l%.2f", name, load))
			// Rewrite the expected deadlock error after the point resolves.
			inner := p.deferred
			p.deferred = func() Point {
				r := inner()
				var de *engine.DeadlockError
				if r.Err != nil && errors.As(r.Err, &de) {
					r.Err = fmt.Errorf("DEADLOCK at cycle %d (the paper's predicted failure of synchronous replication)", de.Cycle)
				}
				return r
			}
			s.Points = append(s.Points, p)
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "A10",
		Title:   "Asynchronous vs synchronous replication (input-buffer switch, multiple multicast)",
		XLabel:  "load",
		Metrics: []Metric{MetricMcastLatency, MetricMcastP95, MetricThroughput},
		Series:  series,
		Notes:   "lock-step replication holds granted outputs while waiting for the rest: circular waits wedge the fabric, exactly the deadlock the paper cites as its reason for asynchronous replication",
	}, nil
}

// A11BufferBandwidth sweeps the central buffer's memory bandwidth: the
// companion work [33] shows that flit-wide RAMs or a register pipeline
// sustain one transfer per port per cycle (our default), where a naive
// shared-ported memory would bottleneck the whole switch.
func A11BufferBandwidth(o Options) (*Table, error) {
	bws := []int{1, 2, 4, 0} // 0 = one flit per port per cycle (unlimited)
	if o.Quick {
		bws = []int{1, 0}
	}
	const load = 0.50
	s := Series{Name: CBHW.Name}
	for _, bw := range bws {
		cfg := baseConfig(o)
		multipleMulticastShape(&cfg)
		CBHW.Apply(&cfg)
		cfg.CB.PortBandwidth = bw
		cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
		x := float64(bw)
		if bw == 0 {
			x = 8 // full per-port bandwidth on an 8-port switch
		}
		s.Points = append(s.Points, runPoint(cfg, x, o, fmt.Sprintf("a11/bw%d", bw)))
	}
	return &Table{
		ID:      "A11",
		Title:   fmt.Sprintf("Central buffer memory bandwidth at load %.2f (multiple multicast)", load),
		XLabel:  "flits/cycle",
		Metrics: []Metric{MetricMcastLatency, MetricMcastP95, MetricThroughput},
		Series:  []Series{s},
		Notes:   "x = concurrent buffer transfers per cycle per direction; 8 = one per port (flit-wide RAM / register pipeline of [33])",
		strict:  true,
	}, nil
}

// A7HotSpot reproduces the hot-spot study the paper lists as future work:
// bimodal traffic where a fraction of the unicast background targets one hot
// node, comparing how each multicast implementation copes.
func A7HotSpot(o Options) (*Table, error) {
	fractions := []float64{0, 0.05, 0.15}
	if o.Quick {
		fractions = []float64{0, 0.15}
	}
	const load = 0.30
	var series []Series
	for _, c := range []Contender{CBHW, IBHW, SWUMIN} {
		s := Series{Name: c.Name}
		for _, f := range fractions {
			cfg := baseConfig(o)
			bimodalShape(&cfg)
			c.Apply(&cfg)
			cfg.Traffic.HotSpotFraction = f
			cfg.Traffic.HotSpotNode = 0
			cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
			s.Points = append(s.Points, runPoint(cfg, f, o, fmt.Sprintf("a7/%s/f%.2f", c.Name, f)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "A7",
		Title:   fmt.Sprintf("Hot-spot unicast background at load %.2f (bimodal, hot node 0)", load),
		XLabel:  "hot_fraction",
		Metrics: []Metric{MetricUniLatency, MetricMcastLatency, MetricThroughput},
		Series:  series,
		Notes:   "future-work experiment of the paper: a fraction of unicasts all target node 0",
	}, nil
}

// A8Barrier reproduces the barrier-synchronization comparison of the
// authors' companion work across system sizes on an idle network: an
// all-software binomial barrier, a binomial gather with a hardware
// multidestination release, and the full in-switch combining barrier
// (tokens combined by the switches themselves).
func A8Barrier(o Options) (*Table, error) {
	stages := []int{2, 3, 4}
	if o.Quick {
		stages = []int{2, 3}
	}
	schemes := []core.BarrierScheme{core.BarrierSoftware, core.BarrierHardwareRelease, core.BarrierHardwareCombining}
	var series []Series
	for _, bs := range schemes {
		s := Series{Name: bs.String()}
		for _, st := range stages {
			cfg := baseConfig(o)
			cfg.Stages = st
			cfg.Traffic.OpRate = 0
			CBHW.Apply(&cfg)
			tag := fmt.Sprintf("a8/%s/N%d", bs, cfg.N())
			s.Points = append(s.Points, Point{X: float64(cfg.N()), Tag: tag, deferred: func() Point {
				sim, err := core.New(cfg)
				if err != nil {
					o.point(PointEvent{Tag: tag, X: float64(cfg.N()), Err: err})
					return Point{Err: err}
				}
				lat, err := sim.RunBarrier(bs, 10_000_000)
				if err != nil {
					o.point(PointEvent{Tag: tag, X: float64(cfg.N()), Cycles: sim.Now(), Err: err})
					return Point{Err: err, cycles: sim.Now()}
				}
				var col pointCollector
				col.add(float64(lat), float64(cfg.N()-1))
				res := col.results(cfg.N())
				o.progress("  %s lat=%d", tag, lat)
				o.point(PointEvent{Tag: tag, X: float64(cfg.N()),
					McastLatency: float64(lat), Cycles: sim.Now()})
				return Point{Results: res, cycles: sim.Now()}
			}})
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "A8",
		Title:   "Barrier synchronization latency on an idle network (software, gather+HW-release, in-switch combining)",
		XLabel:  "nodes",
		Metrics: []Metric{MetricMcastLatency},
		Series:  series,
		Notes:   "mcast_lat column holds the barrier completion latency in cycles",
		strict:  true,
	}, nil
}

// A9Irregular runs the contenders on a NOW-style irregular tree of switches
// (the paper's third topology class): a load sweep of mixed traffic on a
// random 16-switch fabric.
func A9Irregular(o Options) (*Table, error) {
	// Tree fabrics concentrate cross-subtree traffic at the root, so the
	// sweep sits well below BMIN loads.
	loads := []float64{0.02, 0.05, 0.08}
	if o.Quick {
		loads = []float64{0.02, 0.08}
	}
	var series []Series
	for _, c := range []Contender{CBHW, IBHW, SWUMIN} {
		s := Series{Name: c.Name}
		for _, load := range loads {
			cfg := baseConfig(o)
			cfg.Topology = core.IrregularTree
			cfg.Tree = topology.TreeSpec{
				Switches:    16,
				MinHosts:    1,
				MaxHosts:    4,
				MaxChildren: 3,
				Seed:        o.Seed,
			}
			bimodalShape(&cfg)
			cfg.Traffic.Degree = 6
			c.Apply(&cfg)
			cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
			s.Points = append(s.Points, runPoint(cfg, load, o, fmt.Sprintf("a9/%s/l%.2f", c.Name, load)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "A9",
		Title:   "Irregular NOW fabric (random 16-switch tree): bimodal traffic",
		XLabel:  "load",
		Metrics: []Metric{MetricUniLatency, MetricMcastLatency, MetricThroughput},
		Series:  series,
		Notes:   "the paper's schemes applied beyond BMINs; up*/down* tree routing (root-limited bisection)",
	}, nil
}
