package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"mdworm/internal/plot"
)

// WriteCSV renders the table as machine-readable CSV: one row per point
// with the series name, x value, every metric column, and the saturation
// flag.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"experiment", "series", t.XLabel}
	for _, m := range t.Metrics {
		header = append(header, m.Name)
	}
	header = append(header, "saturated", "ops_completed", "error")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range t.Series {
		for _, p := range s.Points {
			row := []string{t.ID, s.Name, formatFloat(p.X)}
			if p.Err != nil {
				for range t.Metrics {
					row = append(row, "")
				}
				row = append(row, "", "", p.Err.Error())
			} else {
				for _, m := range t.Metrics {
					row = append(row, formatFloat(m.Get(p.Results)))
				}
				row = append(row,
					strconv.FormatBool(p.Results.Saturated),
					strconv.FormatInt(p.Results.Multicast.OpsCompleted+p.Results.Unicast.OpsCompleted, 10),
					"")
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Plot renders the table's first metric as an ASCII chart, one curve per
// series (points with errors are dropped).
func (t *Table) Plot(w io.Writer) {
	if len(t.Metrics) == 0 {
		return
	}
	m := t.Metrics[0]
	c := plot.Chart{
		Title:  fmt.Sprintf("%s: %s", t.ID, t.Title),
		XLabel: t.XLabel,
		YLabel: m.Name,
	}
	for _, s := range t.Series {
		ps := plot.Series{Name: s.Name}
		for _, p := range s.Points {
			if p.Err != nil {
				continue
			}
			ps.X = append(ps.X, p.X)
			ps.Y = append(ps.Y, m.Get(p.Results))
		}
		if len(ps.X) > 0 {
			c.Series = append(c.Series, ps)
		}
	}
	c.Render(w)
}

// WriteAllCSV writes several tables back to back with blank separators.
func WriteAllCSV(w io.Writer, tables []*Table) error {
	for i, t := range tables {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := t.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}
