package experiments

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"mdworm/internal/obs"
)

// renderWith runs one experiment in quick mode with the given worker count
// and returns the formatted table bytes.
func renderWith(t *testing.T, id string, workers int) []byte {
	t.Helper()
	tab, err := Run(id, Options{Quick: true, Seed: 1, Workers: workers})
	if err != nil {
		t.Fatalf("%s workers=%d: %v", id, workers, err)
	}
	var buf bytes.Buffer
	tab.Format(&buf)
	return buf.Bytes()
}

// TestParallelDeterminism is the runner's core guarantee: the rendered table
// is byte-identical whether points resolve serially or across eight workers.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps skipped in -short mode")
	}
	for _, id := range []string{"e1", "a2"} {
		serial := renderWith(t, id, 1)
		parallel := renderWith(t, id, 8)
		if !bytes.Equal(serial, parallel) {
			t.Errorf("%s: workers=1 and workers=8 rendered different tables:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
				id, serial, parallel)
		}
	}
}

// TestRunIDsStats checks that the batch API resolves every point, reports
// order-independent tables, and accounts for the simulated cycles.
func TestRunIDsStats(t *testing.T) {
	tables, stats, err := RunIDs([]string{"a8", "a5"}, Options{Quick: true, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].ID != "A8" || tables[1].ID != "A5" {
		t.Fatalf("tables out of order: %v", []string{tables[0].ID, tables[1].ID})
	}
	var points int
	for _, tab := range tables {
		for _, s := range tab.Series {
			for _, p := range s.Points {
				if p.deferred != nil {
					t.Fatalf("%s/%s x=%g left unresolved", tab.ID, s.Name, p.X)
				}
				points++
			}
		}
	}
	if stats.Points != points {
		t.Fatalf("stats.Points = %d, table points = %d", stats.Points, points)
	}
	if stats.Cycles <= 0 {
		t.Fatalf("stats.Cycles = %d, want > 0", stats.Cycles)
	}
	if stats.Workers != 4 {
		t.Fatalf("stats.Workers = %d, want 4", stats.Workers)
	}
	if stats.PointsPerSec() <= 0 || stats.CyclesPerSec() <= 0 {
		t.Fatalf("rates not positive: %+v", stats)
	}
}

// TestRunIDsUnknownID checks the batch API's error path.
func TestRunIDsUnknownID(t *testing.T) {
	if _, _, err := RunIDs([]string{"a8", "zz"}, Options{Quick: true, Seed: 1}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestOnPointEvents checks that the structured per-point callback fires once
// per point with populated measurements, serialized across pool workers.
func TestOnPointEvents(t *testing.T) {
	var events []PointEvent
	tab, err := Run("a8", Options{Quick: true, Seed: 1, Workers: 4,
		OnPoint: func(ev PointEvent) { events = append(events, ev) }})
	if err != nil {
		t.Fatal(err)
	}
	var points int
	for _, s := range tab.Series {
		points += len(s.Points)
	}
	if len(events) != points {
		t.Fatalf("got %d events for %d points", len(events), points)
	}
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("point %s x=%g failed: %v", ev.Tag, ev.X, ev.Err)
		}
		if ev.Tag == "" || ev.Cycles <= 0 {
			t.Fatalf("incomplete event: %+v", ev)
		}
	}
}

// TestSweepObserver checks that attaching an occupancy observer records a
// summary per point tag, surfaces the aggregate in SweepStats, and leaves the
// rendered table byte-identical to an unobserved run.
func TestSweepObserver(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps skipped in -short mode")
	}
	ob := &obs.SweepObserver{}
	tables, stats, err := RunIDs([]string{"a2"}, Options{Quick: true, Seed: 1, Workers: 4, Observer: ob})
	if err != nil {
		t.Fatal(err)
	}
	agg := ob.Aggregate()
	if agg.Samples == 0 {
		t.Fatal("observer recorded no samples")
	}
	if agg.PeakOccupancy() == 0 {
		t.Fatalf("observer saw no buffer occupancy: %+v", agg)
	}
	if stats.Occupancy != agg {
		t.Fatalf("SweepStats.Occupancy %+v != observer aggregate %+v", stats.Occupancy, agg)
	}
	// Every resolved point recorded under its own tag.
	tagged := 0
	for _, tab := range tables {
		for _, s := range tab.Series {
			tagged += len(s.Points)
		}
	}
	if len(ob.Points()) != tagged {
		t.Fatalf("observer holds %d tags for %d points", len(ob.Points()), tagged)
	}

	// Observation must not perturb the measured tables.
	plain := renderWith(t, "a2", 4)
	var buf bytes.Buffer
	tables[0].Format(&buf)
	if !bytes.Equal(plain, buf.Bytes()) {
		t.Errorf("observed sweep rendered a different table:\n--- plain ---\n%s\n--- observed ---\n%s", plain, buf.Bytes())
	}
}

// TestCanceledSweep checks that an already-canceled context fails pending
// points with the context's error and surfaces it from Run.
func TestCanceledSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tab, err := Run("a8", Options{Quick: true, Seed: 1, Workers: 2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if tab == nil {
		t.Fatal("canceled run returned no table")
	}
	for _, s := range tab.Series {
		for _, p := range s.Points {
			if !errors.Is(p.Err, context.Canceled) {
				t.Fatalf("%s x=%g: Err = %v, want context.Canceled", s.Name, p.X, p.Err)
			}
		}
	}
}
