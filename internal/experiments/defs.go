package experiments

import (
	"fmt"

	"mdworm/internal/analytic"
	"mdworm/internal/core"
)

// Load sweeps, in delivered payload flits per node per cycle (a multicast
// delivers one copy per destination). Ejection links bound delivered demand
// near 1.0; the schemes differ in how early contention, host overheads, and
// multi-phase traffic make them fall off that ceiling — which is the
// paper's point.
var fullLoads = []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70}
var quickLoads = []float64{0.10, 0.30, 0.50}

func loads(o Options) []float64 {
	if o.Quick {
		return quickLoads
	}
	return fullLoads
}

// sweepLoads runs the three principal contenders over a load sweep with the
// given traffic shape mutator.
func sweepLoads(o Options, tag string, shape func(cfg *core.Config), contenders []Contender) []Series {
	var out []Series
	for _, c := range contenders {
		s := Series{Name: c.Name}
		for _, load := range loads(o) {
			cfg := baseConfig(o)
			shape(&cfg)
			c.Apply(&cfg)
			cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
			// The load coordinate keeps tags unique within a series — the
			// cluster stream merge keys its ordering on the tag.
			s.Points = append(s.Points, runPoint(cfg, load, o, fmt.Sprintf("%s/%s/load=%.2f", tag, c.Name, load)))
		}
		out = append(out, s)
	}
	return out
}

func multipleMulticastShape(cfg *core.Config) {
	cfg.Traffic.MulticastFraction = 1.0
	cfg.Traffic.Degree = 8
	cfg.Traffic.McastPayloadFlits = 64
}

// E1MultipleMulticastLatency reproduces the multiple-multicast latency
// figure: every node issues 8-destination multicasts; multicast last-arrival
// latency versus offered load for CB-HW, IB-HW, and SW-UMIN.
func E1MultipleMulticastLatency(o Options) (*Table, error) {
	return &Table{
		ID:      "E1",
		Title:   "Multiple multicast: latency vs offered load (N=64, d=8, L=64)",
		XLabel:  "load",
		Metrics: []Metric{MetricMcastLatency, MetricMcastP95, MetricMsgsPerOp},
		Series:  sweepLoads(o, "e1", multipleMulticastShape, []Contender{CBHW, IBHW, SWUMIN}),
		Notes:   "* marks saturated points (latency dominated by source queueing)",
	}, nil
}

// E2MultipleMulticastThroughput reproduces the delivered-throughput figure
// for the same workload.
func E2MultipleMulticastThroughput(o Options) (*Table, error) {
	return &Table{
		ID:      "E2",
		Title:   "Multiple multicast: delivered payload throughput vs offered load (N=64, d=8, L=64)",
		XLabel:  "load",
		Metrics: []Metric{MetricThroughput},
		Series:  sweepLoads(o, "e2", multipleMulticastShape, []Contender{CBHW, IBHW, SWUMIN}),
		Notes:   "delivered payload flits per node per cycle at destinations (multicast counts each copy)",
	}, nil
}

func bimodalShape(cfg *core.Config) {
	cfg.Traffic.MulticastFraction = 0.1
	cfg.Traffic.Degree = 8
	cfg.Traffic.UniPayloadFlits = 32
	cfg.Traffic.McastPayloadFlits = 64
}

// E3BimodalUnicastLatency reproduces the bimodal-traffic figure for the
// background unicast latency: how much does each multicast implementation
// perturb unrelated unicast traffic?
func E3BimodalUnicastLatency(o Options) (*Table, error) {
	return &Table{
		ID:      "E3",
		Title:   "Bimodal traffic: background unicast latency vs offered load (10% multicast d=8)",
		XLabel:  "load",
		Metrics: []Metric{MetricUniLatency, MetricThroughput},
		Series:  sweepLoads(o, "e3", bimodalShape, []Contender{CBHW, IBHW, SWUMIN}),
		Notes:   "the paper's claim: hardware multicast hurts background unicasts far less than software multicast",
	}, nil
}

// E4BimodalMulticastLatency reproduces the bimodal-traffic figure for the
// multicast component's latency.
func E4BimodalMulticastLatency(o Options) (*Table, error) {
	return &Table{
		ID:      "E4",
		Title:   "Bimodal traffic: multicast latency vs offered load (10% multicast d=8)",
		XLabel:  "load",
		Metrics: []Metric{MetricMcastLatency, MetricMcastP95},
		Series:  sweepLoads(o, "e4", bimodalShape, []Contender{CBHW, IBHW, SWUMIN}),
	}, nil
}

// E5Degree reproduces the varying-degree figure: multicast latency versus
// the number of destinations at a fixed per-node operation rate (so the
// offered *work* grows with the degree, and the schemes differ in how much
// of it they can absorb).
func E5Degree(o Options) (*Table, error) {
	degrees := []int{2, 4, 8, 16, 32, 63}
	if o.Quick {
		degrees = []int{4, 16, 63}
	}
	// Fixed op rate chosen so d=63 corresponds to ~0.6 delivered load.
	const opRate = 0.6 / (63.0 * 64.0)
	var series []Series
	for _, c := range []Contender{CBHW, IBHW, SWUMIN} {
		s := Series{Name: c.Name}
		for _, d := range degrees {
			cfg := baseConfig(o)
			multipleMulticastShape(&cfg)
			cfg.Traffic.Degree = d
			c.Apply(&cfg)
			cfg.Traffic.OpRate = opRate
			s.Points = append(s.Points, runPoint(cfg, float64(d), o, fmt.Sprintf("e5/%s/d%d", c.Name, d)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("Varying multicast degree at %.5f multicasts/node/cycle (N=64, L=64)", opRate),
		XLabel:  "degree",
		Metrics: []Metric{MetricMcastLatency, MetricMsgsPerOp},
		Series:  series,
	}, nil
}

// E6MessageLength reproduces the varying-message-length figure.
func E6MessageLength(o Options) (*Table, error) {
	lengths := []int{16, 32, 64, 128, 256}
	if o.Quick {
		lengths = []int{32, 128}
	}
	const load = 0.40
	var series []Series
	for _, c := range []Contender{CBHW, IBHW, SWUMIN} {
		s := Series{Name: c.Name}
		for _, l := range lengths {
			cfg := baseConfig(o)
			multipleMulticastShape(&cfg)
			cfg.Traffic.McastPayloadFlits = l
			c.Apply(&cfg)
			cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
			s.Points = append(s.Points, runPoint(cfg, float64(l), o, fmt.Sprintf("e6/%s/L%d", c.Name, l)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("Varying message length at load %.2f (N=64, d=8)", load),
		XLabel:  "flits",
		Metrics: []Metric{MetricMcastLatency, MetricMcastP95},
		Series:  series,
	}, nil
}

// E7SystemSize reproduces the system-size figure: 16, 64, and 256 nodes at
// the same per-node load. Header sizes grow with N for the bit-string
// encoding (1, 4, and 16 flits), which the model charges faithfully.
func E7SystemSize(o Options) (*Table, error) {
	stages := []int{2, 3, 4}
	if o.Quick {
		stages = []int{2, 3}
	}
	// Chosen below the 256-node knee: the 16-flit bit-string header alone
	// adds 25% wire overhead there.
	const load = 0.15
	var series []Series
	for _, c := range []Contender{CBHW, IBHW, SWUMIN} {
		s := Series{Name: c.Name}
		for _, st := range stages {
			cfg := baseConfig(o)
			multipleMulticastShape(&cfg)
			cfg.Stages = st
			c.Apply(&cfg)
			cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
			n := cfg.N()
			s.Points = append(s.Points, runPoint(cfg, float64(n), o, fmt.Sprintf("e7/%s/N%d", c.Name, n)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("System size scaling at load %.2f (d=8, L=64)", load),
		XLabel:  "nodes",
		Metrics: []Metric{MetricMcastLatency, MetricMcastP95},
		Series:  series,
	}, nil
}

// E8SingleMulticast reproduces the unloaded single-multicast latency table:
// one multicast on an idle network, degree swept, for all four schemes. The
// companion work [32] reports up to a 4x latency reduction of hardware over
// software multicast; the shape should match.
func E8SingleMulticast(o Options) (*Table, error) {
	degrees := []int{1, 2, 4, 8, 16, 32, 63}
	if o.Quick {
		degrees = []int{2, 8, 63}
	}
	var series []Series
	for _, c := range []Contender{CBHW, IBHW, SWUMIN, SWSEP} {
		s := Series{Name: c.Name}
		for _, d := range degrees {
			cfg := baseConfig(o)
			cfg.Traffic.OpRate = 0 // idle network
			cfg.Traffic.Degree = d
			c.Apply(&cfg)
			p := singleOpPoint(cfg, d, o, fmt.Sprintf("e8/%s/d%d", c.Name, d))
			s.Points = append(s.Points, p)
		}
		series = append(series, s)
	}
	// Closed-form reference curves from the analytic model.
	m := analytic.FromConfig(baseConfig(o))
	for _, ms := range []struct {
		name string
		f    func(payload, d int) float64
	}{
		{"model-hw", m.HardwareMulticast},
		{"model-sw-umin", m.SoftwareBinomial},
		{"model-sw-sep", m.SoftwareSeparate},
	} {
		s := Series{Name: ms.name}
		for _, d := range degrees {
			var col pointCollector
			col.add(ms.f(64, d), 0)
			s.Points = append(s.Points, Point{X: float64(d), Results: col.results(64)})
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "E8",
		Title:   "Single multicast latency on an idle network (N=64, L=64)",
		XLabel:  "degree",
		Metrics: []Metric{MetricMcastLatency, MetricMsgsPerOp},
		Series:  series,
		Notes:   "latency of one op, averaged over 16 random source/destination draws",
	}, nil
}

// singleOpPoint schedules one idle-network multicast measurement (averaged
// over a few deterministic draws) as a deferred point.
func singleOpPoint(cfg core.Config, degree int, o Options, tag string) Point {
	return Point{X: float64(degree), Tag: tag, deferred: func() Point {
		const draws = 16
		sim, err := core.New(cfg)
		if err != nil {
			o.point(PointEvent{Tag: tag, X: float64(degree), Err: err})
			return Point{X: float64(degree), Err: err}
		}
		// Reuse the simulator across draws; the network is idle between ops.
		rng := newDrawRNG(cfg.Seed)
		var col pointCollector
		for i := 0; i < draws; i++ {
			src := rng.Intn(sim.Net().N)
			dests := rng.Sample(sim.Net().N, degree, map[int]bool{src: true})
			lat, op, err := sim.RunOp(src, dests, true, cfg.Traffic.McastPayloadFlits, 2_000_000)
			if err != nil {
				o.point(PointEvent{Tag: tag, X: float64(degree), Cycles: sim.Now(), Err: err})
				return Point{X: float64(degree), Err: err, cycles: sim.Now()}
			}
			col.add(float64(lat), float64(op.MessagesSent))
		}
		res := col.results(sim.Net().N)
		o.progress("  %-28s d=%-6d lat=%.1f msgs=%.1f", tag, degree, res.Multicast.LastArrival.Mean, res.Multicast.MessagesPerOp)
		o.point(PointEvent{Tag: tag, X: float64(degree),
			McastLatency: res.Multicast.LastArrival.Mean, Cycles: sim.Now()})
		return Point{X: float64(degree), Results: res, cycles: sim.Now()}
	}}
}
