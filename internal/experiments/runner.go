package experiments

import (
	"runtime"
	"sync"
	"time"

	"mdworm/internal/obs"
)

// The parallel point runner.
//
// Every measurement of the evaluation suite is one independent simulator
// run: a point owns its own core.Sim, its own deterministically seeded RNG
// streams, and its own collectors, so the sweep is embarrassingly parallel.
// Experiment definitions therefore build their tables out of *deferred*
// points — placeholders carrying a closure over a fully prepared config —
// and the runner resolves all deferred points across a worker pool. Results
// are written in place into the already-built table structure, so the
// rendered output is byte-identical for any worker count (including 1) and
// any execution interleaving: parallelism is across sweep points, never
// within one simulated network.

// SweepStats summarizes one resolved batch of experiment points, the
// numbers cmd/mdwbench records in BENCH_sweep.json.
type SweepStats struct {
	// Workers is the pool size the batch ran with.
	Workers int
	// Points is the number of simulator runs resolved.
	Points int
	// Cycles is the total number of simulated cycles across all points.
	Cycles int64
	// DestsDropped and Violations aggregate fault losses and invariant
	// checker hits across all points (both 0 on fault-free healthy runs).
	DestsDropped int64
	Violations   int64
	// Wall is the elapsed wall-clock time of the batch.
	Wall time.Duration
	// Occupancy aggregates buffer-occupancy sampling across all points; it
	// is the zero Summary unless Options.Observer was set for the batch.
	Occupancy obs.Summary
}

// PointsPerSec returns the resolution throughput in points per second.
func (s SweepStats) PointsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Points) / s.Wall.Seconds()
}

// CyclesPerSec returns the aggregate simulation speed in cycles per second.
func (s SweepStats) CyclesPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Cycles) / s.Wall.Seconds()
}

// workers returns the effective pool size: the Workers option, or
// GOMAXPROCS when unset.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forRun prepares an Options value for a (possibly parallel) run: the
// progress writer and point callback gain a lock shared by every closure
// that captures the value.
func (o Options) forRun() Options {
	if (o.Progress != nil || o.OnPoint != nil) && o.progressMu == nil {
		o.progressMu = &sync.Mutex{}
	}
	return o
}

// canceled reports the sweep's cancellation cause, if any.
func (o Options) canceled() error {
	if o.Context == nil {
		return nil
	}
	return o.Context.Err()
}

// resolve runs every deferred point of the given tables across a worker
// pool and writes the results in place. Point identity (series, x) is fixed
// by the table structure before resolution, so execution order cannot
// change the output.
func resolve(tables []*Table, o Options) SweepStats {
	var jobs []*Point
	for _, t := range tables {
		for si := range t.Series {
			for pi := range t.Series[si].Points {
				if p := &t.Series[si].Points[pi]; p.deferred != nil {
					jobs = append(jobs, p)
				}
			}
		}
	}
	start := time.Now()
	w := o.workers()
	if w > len(jobs) {
		w = len(jobs)
	}
	// A canceled sweep stops picking up work: the point in flight on each
	// worker finishes (simulator runs are not interruptible mid-cycle),
	// every remaining point fails with the context's error, and the
	// caller sees that error from Run/RunIDs.
	run := func(p *Point) {
		if err := o.canceled(); err != nil {
			p.Err = err
			p.deferred = nil
			return
		}
		resolvePoint(p)
	}
	if w <= 1 {
		for _, p := range jobs {
			run(p)
		}
	} else {
		ch := make(chan *Point)
		var wg sync.WaitGroup
		wg.Add(w)
		for i := 0; i < w; i++ {
			go func() {
				defer wg.Done()
				for p := range ch {
					run(p)
				}
			}()
		}
		for _, p := range jobs {
			ch <- p
		}
		close(ch)
		wg.Wait()
	}
	st := SweepStats{Workers: o.workers(), Points: len(jobs), Wall: time.Since(start)}
	if o.Observer != nil {
		st.Occupancy = o.Observer.Aggregate()
	}
	for _, t := range tables {
		for si := range t.Series {
			for pi := range t.Series[si].Points {
				p := &t.Series[si].Points[pi]
				st.Cycles += p.cycles
				st.DestsDropped += p.Results.DestsDropped
				st.Violations += p.Results.InvariantViolations
			}
		}
	}
	return st
}

// resolvePoint materializes one deferred point in place. The placeholder's
// X is authoritative (experiments occasionally relabel an axis after
// scheduling the point).
func resolvePoint(p *Point) {
	r := p.deferred()
	r.X = p.X
	r.deferred = nil
	*p = r
}

// firstPointErr returns the first point error of a table in layout order.
func firstPointErr(t *Table) error {
	for _, s := range t.Series {
		for _, p := range s.Points {
			if p.Err != nil {
				return p.Err
			}
		}
	}
	return nil
}
