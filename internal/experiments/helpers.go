package experiments

import (
	"mdworm/internal/engine"
	"mdworm/internal/stats"
)

// newDrawRNG returns the deterministic stream used to draw single-op
// sources and destination sets.
func newDrawRNG(seed uint64) *engine.RNG {
	return engine.NewRNG(seed ^ 0x5eed5eed)
}

// pointCollector folds single-op measurements into a stats.Results so
// idle-network experiments print through the same table machinery as loaded
// sweeps.
type pointCollector struct {
	lats []float64
	msgs float64
	n    int
}

func (c *pointCollector) add(latency, messages float64) {
	c.lats = append(c.lats, latency)
	c.msgs += messages
	c.n++
}

func (c *pointCollector) results(nodes int) stats.Results {
	r := stats.Results{Nodes: nodes}
	r.Multicast.OpsGenerated = int64(c.n)
	r.Multicast.OpsCompleted = int64(c.n)
	r.Multicast.LastArrival = stats.Summarize(c.lats)
	if c.n > 0 {
		r.Multicast.MessagesPerOp = c.msgs / float64(c.n)
	}
	return r
}
