// Package experiments defines the paper's evaluation (experiments E1–E8 and
// the ablations A1–A6 of DESIGN.md) as runnable sweeps over the simulator,
// and renders the resulting tables in the layout the paper's figures plot.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"mdworm/internal/collective"
	"mdworm/internal/core"
	"mdworm/internal/obs"
	"mdworm/internal/stats"
)

// PointEvent is the structured per-point progress notification delivered to
// Options.OnPoint as pool workers complete measurements. Events arrive in
// completion order (which under a parallel run is not table order) but never
// concurrently: delivery is serialized.
type PointEvent struct {
	// Tag identifies the point within its experiment (series plus sweep
	// parameter, e.g. "e1/cb-hw/load=0.2").
	Tag string
	// X is the point's sweep coordinate.
	X float64
	// McastLatency and UniLatency are mean last-arrival latencies.
	McastLatency float64
	UniLatency   float64
	// Throughput is delivered payload flits per node per cycle, both
	// classes combined.
	Throughput float64
	// Saturated flags a point whose latencies reflect queue growth.
	Saturated bool
	// OpsDegraded and DestsDropped account fault losses: ops that completed
	// with at least one destination dropped, and the individual destinations
	// lost. Zero on fault-free runs.
	OpsDegraded  int64
	DestsDropped int64
	// Violations counts model-invariant checker hits (always 0 on a healthy
	// model).
	Violations int64
	// Cycles is the simulated-cycle cost of the point.
	Cycles int64
	// Err is non-nil for failed points (the other measurement fields are
	// then zero).
	Err error
}

// Options controls a run of the experiment suite.
type Options struct {
	// Quick shrinks windows and point counts for smoke runs and benches.
	Quick bool
	// Seed drives all runs (points vary it deterministically).
	Seed uint64
	// Progress, when non-nil, receives one line per completed point.
	// Under a parallel run lines may interleave across experiments; each
	// line stays whole.
	Progress io.Writer
	// OnPoint, when non-nil, receives a structured event per completed
	// point (the callback form of Progress; mdwd streams these to HTTP
	// clients). Calls are serialized across pool workers.
	OnPoint func(PointEvent)
	// Workers bounds how many sweep points run concurrently; 0 means
	// GOMAXPROCS. Each point is an independent simulator instance, so the
	// rendered tables are byte-identical for every worker count.
	Workers int
	// Context, when non-nil, cancels the sweep: pool workers stop picking
	// up points once it is done, pending points fail with the context's
	// error, and Run/RunIDs return that error. A finished sweep is never
	// affected retroactively.
	Context context.Context
	// Observer, when non-nil, attaches a samples-only occupancy capture to
	// every point's simulator and folds each point's summary into it under
	// the point's tag. The capture carries no tracer, so measured behavior
	// is unchanged; the per-sweep aggregate lands in SweepStats.Occupancy.
	Observer *obs.SweepObserver
	// Resolver, when non-nil, replaces local simulator execution for every
	// standard measurement point: it receives the point's fully prepared
	// configuration and tag and returns the measured results plus the
	// simulated-cycle cost. The cluster coordinator uses it to run points on
	// peer daemons — determinism makes a remote measurement byte-identical
	// to a local one, so rendered tables are unchanged. Points that measure
	// through a custom harness rather than a standard Run (e8's idle-network
	// single ops, a8's barriers) ignore the Resolver and execute locally;
	// Observer is likewise ignored on resolver-backed points (occupancy is
	// not carried over the wire).
	Resolver func(cfg core.Config, tag string) (stats.Results, int64, error)

	// progressMu serializes Progress writes and OnPoint calls across pool
	// workers; installed by forRun before experiment closures capture the
	// options.
	progressMu *sync.Mutex
}

// DefaultOptions returns the full-fidelity settings.
func DefaultOptions() Options { return Options{Seed: 1} }

func (o Options) progress(format string, args ...any) {
	if o.Progress == nil {
		return
	}
	if o.progressMu != nil {
		o.progressMu.Lock()
		defer o.progressMu.Unlock()
	}
	fmt.Fprintf(o.Progress, format+"\n", args...)
}

// point delivers one structured progress event, serialized across workers.
func (o Options) point(ev PointEvent) {
	if o.OnPoint == nil {
		return
	}
	if o.progressMu != nil {
		o.progressMu.Lock()
		defer o.progressMu.Unlock()
	}
	o.OnPoint(ev)
}

// Point is one measurement of one series. Until resolved by the runner, a
// point may be deferred: X, Tag, and table position are fixed, and the
// deferred closure produces the measurement when a pool worker executes it.
type Point struct {
	X float64
	// Tag identifies the point within its experiment (series plus sweep
	// parameter, e.g. "e1/cb-hw/load=0.2"); it is fixed at planning time, so
	// PlannedTags can report the deterministic point order of a sweep before
	// anything runs.
	Tag     string
	Results stats.Results
	Err     error

	deferred func() Point // pending measurement; nil once resolved
	cycles   int64        // simulated cycles this point cost (for SweepStats)
}

// Series is one curve of a figure (one contender).
type Series struct {
	Name   string
	Points []Point
}

// Table is one reproduced figure or table.
type Table struct {
	ID     string
	Title  string
	XLabel string
	// Metrics lists the column extractors to print, in order.
	Metrics []Metric
	Series  []Series
	Notes   string

	// strict promotes the first point error to an experiment error after
	// resolution (experiments whose every point must succeed). Non-strict
	// tables keep point errors in their rows — A10 prints its predicted
	// deadlocks that way.
	strict bool
}

// Metric extracts one printable value from a point's results.
type Metric struct {
	Name string
	Get  func(r stats.Results) float64
}

// Standard metrics.
var (
	MetricMcastLatency = Metric{"mcast_lat", func(r stats.Results) float64 {
		return r.Multicast.LastArrival.Mean
	}}
	MetricMcastP95 = Metric{"mcast_p95", func(r stats.Results) float64 {
		return r.Multicast.LastArrival.P95
	}}
	MetricUniLatency = Metric{"uni_lat", func(r stats.Results) float64 {
		return r.Unicast.LastArrival.Mean
	}}
	MetricThroughput = Metric{"delivered_payload", func(r stats.Results) float64 {
		return r.Multicast.DeliveredPayloadPerNodeCycle + r.Unicast.DeliveredPayloadPerNodeCycle
	}}
	MetricMsgsPerOp = Metric{"msgs_per_op", func(r stats.Results) float64 {
		return r.Multicast.MessagesPerOp
	}}
)

// Format renders the table as aligned text, one block per series. Saturated
// points are marked with '*' (their latencies reflect queue growth).
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Notes != "" {
		fmt.Fprintf(w, "   %s\n", t.Notes)
	}
	header := fmt.Sprintf("%-14s %12s", "series", t.XLabel)
	for _, m := range t.Metrics {
		header += fmt.Sprintf(" %14s", m.Name)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, s := range t.Series {
		for _, p := range s.Points {
			row := fmt.Sprintf("%-14s %12.4g", s.Name, p.X)
			if p.Err != nil {
				fmt.Fprintf(w, "%s  ERROR: %v\n", row, p.Err)
				continue
			}
			for _, m := range t.Metrics {
				row += fmt.Sprintf(" %14.5g", m.Get(p.Results))
			}
			if p.Results.Saturated {
				row += " *"
			}
			fmt.Fprintln(w, row)
		}
		fmt.Fprintln(w)
	}
}

// Contender is one scheme/architecture combination under comparison.
type Contender struct {
	Name   string
	Arch   core.SwitchArch
	Scheme collective.Scheme
}

// The three principal contenders of the paper.
var (
	CBHW   = Contender{"cb-hw", core.CentralBuffer, collective.HardwareBitString}
	IBHW   = Contender{"ib-hw", core.InputBuffer, collective.HardwareBitString}
	SWUMIN = Contender{"sw-umin", core.CentralBuffer, collective.SoftwareBinomial}
	SWSEP  = Contender{"sw-sep", core.CentralBuffer, collective.SoftwareSeparate}
	CBMP   = Contender{"cb-multiport", core.CentralBuffer, collective.HardwareMultiport}
)

// Apply stamps the contender onto a config.
func (c Contender) Apply(cfg *core.Config) {
	cfg.Arch = c.Arch
	cfg.Scheme = c.Scheme
}

// baseConfig returns the experiment baseline, shrunk in quick mode.
func baseConfig(o Options) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.WarmupCycles = 4_000
	cfg.MeasureCycles = 20_000
	cfg.DrainCycles = 1_000_000
	if o.Quick {
		cfg.WarmupCycles = 1_000
		cfg.MeasureCycles = 4_000
		cfg.DrainCycles = 400_000
	}
	return cfg
}

// runPoint schedules one configuration as a deferred point at x; the runner
// pool builds and runs the simulator when the point resolves — or, when a
// Resolver is installed, hands the configuration to it instead.
func runPoint(cfg core.Config, x float64, o Options, tag string) Point {
	return Point{X: x, Tag: tag, deferred: func() Point {
		if o.Resolver != nil {
			return resolveRemote(cfg, x, o, tag)
		}
		sim, err := core.New(cfg)
		if err != nil {
			o.point(PointEvent{Tag: tag, X: x, Err: err})
			return Point{X: x, Tag: tag, Err: err}
		}
		var occ *obs.Capture
		if o.Observer != nil {
			every := o.Observer.SampleEvery
			if every <= 0 {
				every = 64
			}
			occ = &obs.Capture{SampleEvery: every}
			sim.Observe(occ)
		}
		res, err := sim.Run()
		if err != nil {
			err = fmt.Errorf("%s: %w", tag, err)
			o.point(PointEvent{Tag: tag, X: x, Cycles: sim.Now(), Err: err})
			return Point{X: x, Tag: tag, Err: err, cycles: sim.Now()}
		}
		if occ != nil {
			o.Observer.Record(tag, occ.Summary())
		}
		finishPoint(o, tag, x, res, sim.Now())
		return Point{X: x, Tag: tag, Results: res, cycles: sim.Now()}
	}}
}

// resolveRemote materializes one standard point through Options.Resolver:
// identical event and result handling to the local path, with the
// measurement itself performed elsewhere.
func resolveRemote(cfg core.Config, x float64, o Options, tag string) Point {
	res, cycles, err := o.Resolver(cfg, tag)
	if err != nil {
		err = fmt.Errorf("%s: %w", tag, err)
		o.point(PointEvent{Tag: tag, X: x, Cycles: cycles, Err: err})
		return Point{X: x, Tag: tag, Err: err, cycles: cycles}
	}
	finishPoint(o, tag, x, res, cycles)
	return Point{X: x, Tag: tag, Results: res, cycles: cycles}
}

// finishPoint emits the progress line and structured event of a successful
// standard measurement; shared by the local and resolver-backed paths so
// their observable output is identical.
func finishPoint(o Options, tag string, x float64, res stats.Results, cycles int64) {
	thr := res.Multicast.DeliveredPayloadPerNodeCycle + res.Unicast.DeliveredPayloadPerNodeCycle
	line := fmt.Sprintf("  %-28s x=%-8.4g mcast=%.1f uni=%.1f thr=%.3f sat=%v",
		tag, x,
		res.Multicast.LastArrival.Mean, res.Unicast.LastArrival.Mean,
		thr, res.Saturated)
	// Fault-free runs keep the historical line format byte-for-byte.
	if res.DestsDropped > 0 || res.InvariantViolations > 0 {
		line += fmt.Sprintf(" dropped=%d violations=%d", res.DestsDropped, res.InvariantViolations)
	}
	o.progress("%s", line)
	o.point(PointEvent{
		Tag:          tag,
		X:            x,
		McastLatency: res.Multicast.LastArrival.Mean,
		UniLatency:   res.Unicast.LastArrival.Mean,
		Throughput:   thr,
		Saturated:    res.Saturated,
		OpsDegraded:  res.OpsDegraded,
		DestsDropped: res.DestsDropped,
		Violations:   res.InvariantViolations,
		Cycles:       cycles,
	})
}

// Registry maps experiment ids to their runners.
type Runner func(Options) (*Table, error)

var registry = map[string]Runner{}
var registryOrder []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	registryOrder = append(registryOrder, id)
}

// The registry is populated here, in one place, so that definition order is
// explicit: the paper's figures e1–e8 first, then the ablations a1–a11, then
// the collective experiments c1–c6. IDs, RunAll, and mdwbench's listing all
// follow this order.
func init() {
	register("e1", E1MultipleMulticastLatency)
	register("e2", E2MultipleMulticastThroughput)
	register("e3", E3BimodalUnicastLatency)
	register("e4", E4BimodalMulticastLatency)
	register("e5", E5Degree)
	register("e6", E6MessageLength)
	register("e7", E7SystemSize)
	register("e8", E8SingleMulticast)
	register("a1", A1CentralBufferSize)
	register("a2", A2ChunkSize)
	register("a3", A3ReplicateOnUpPath)
	register("a4", A4UpPortPolicy)
	register("a5", A5Encoding)
	register("a6", A6SoftwareOverhead)
	register("a7", A7HotSpot)
	register("a8", A8Barrier)
	register("a9", A9Irregular)
	register("a10", A10SyncReplication)
	register("a11", A11BufferBandwidth)
	register("c1", C1BarrierSize)
	register("c2", C2BroadcastLength)
	register("c3", C3AllReduce)
	register("c4", C4ScatterGather)
	register("c5", C5Skew)
	register("c6", C6Background)
}

// IDs returns all experiment ids in definition order (e1..e8, a1..a11,
// c1..c6) — the same order RunAll executes.
func IDs() []string {
	return append([]string(nil), registryOrder...)
}

// Run executes one experiment by id, resolving its points across the worker
// pool (see Options.Workers).
func Run(id string, o Options) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known, in definition order: %s)",
			id, strings.Join(IDs(), " "))
	}
	o = o.forRun()
	t, err := r(o)
	if err != nil {
		return t, err
	}
	resolve([]*Table{t}, o)
	if cerr := o.canceled(); cerr != nil {
		return t, cerr
	}
	if t.strict {
		if perr := firstPointErr(t); perr != nil {
			return t, perr
		}
	}
	return t, nil
}

// Plan builds the given experiments' tables with every point still deferred.
// Together with Finish it is the two-phase form of RunIDs, exported for the
// cluster coordinator, which needs the deterministic point order of a sweep
// (see PlannedTags) before resolution begins. Closures built here capture o,
// so OnPoint, Progress, and Resolver must be set before Plan, and the same o
// must be passed to Finish.
func Plan(ids []string, o Options) ([]*Table, error) {
	o = o.forRun()
	tables := make([]*Table, 0, len(ids))
	for _, id := range ids {
		r, ok := registry[id]
		if !ok {
			return tables, fmt.Errorf("experiments: unknown experiment %q (known, in definition order: %s)",
				id, strings.Join(IDs(), " "))
		}
		t, err := r(o)
		if err != nil {
			return tables, fmt.Errorf("experiment %s: %w", id, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// PlannedTags returns the tags of every still-deferred point of the given
// tables, in table order — the deterministic point order a sweep resolves
// in, and the order the cluster coordinator streams merged results in.
func PlannedTags(tables []*Table) []string {
	var tags []string
	for _, t := range tables {
		for si := range t.Series {
			for pi := range t.Series[si].Points {
				if p := &t.Series[si].Points[pi]; p.deferred != nil {
					tags = append(tags, p.Tag)
				}
			}
		}
	}
	return tags
}

// Finish resolves planned tables across the worker pool and applies the
// strict-table error promotion; ids must parallel tables (as returned by
// Plan) and o must be the value Plan captured.
func Finish(ids []string, tables []*Table, o Options) (SweepStats, error) {
	st := resolve(tables, o)
	if cerr := o.canceled(); cerr != nil {
		return st, cerr
	}
	for i, t := range tables {
		if t.strict {
			if perr := firstPointErr(t); perr != nil {
				return st, fmt.Errorf("experiment %s: %w", ids[i], perr)
			}
		}
	}
	return st, nil
}

// RunIDs executes the given experiments, resolving the points of all of
// them through one shared worker pool so parallelism spans experiment
// boundaries. Tables are returned in argument order regardless of how the
// pool interleaves execution.
func RunIDs(ids []string, o Options) ([]*Table, SweepStats, error) {
	o = o.forRun()
	tables, err := Plan(ids, o)
	if err != nil {
		return tables, SweepStats{}, err
	}
	st, err := Finish(ids, tables, o)
	return tables, st, err
}

// RunAll executes every registered experiment in definition order.
func RunAll(o Options) ([]*Table, error) {
	tables, _, err := RunIDs(IDs(), o)
	return tables, err
}
