// Package experiments defines the paper's evaluation (experiments E1–E8 and
// the ablations A1–A6 of DESIGN.md) as runnable sweeps over the simulator,
// and renders the resulting tables in the layout the paper's figures plot.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mdworm/internal/collective"
	"mdworm/internal/core"
	"mdworm/internal/stats"
)

// Options controls a run of the experiment suite.
type Options struct {
	// Quick shrinks windows and point counts for smoke runs and benches.
	Quick bool
	// Seed drives all runs (points vary it deterministically).
	Seed uint64
	// Progress, when non-nil, receives one line per completed point.
	Progress io.Writer
}

// DefaultOptions returns the full-fidelity settings.
func DefaultOptions() Options { return Options{Seed: 1} }

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// Point is one measurement of one series.
type Point struct {
	X       float64
	Results stats.Results
	Err     error
}

// Series is one curve of a figure (one contender).
type Series struct {
	Name   string
	Points []Point
}

// Table is one reproduced figure or table.
type Table struct {
	ID     string
	Title  string
	XLabel string
	// Metrics lists the column extractors to print, in order.
	Metrics []Metric
	Series  []Series
	Notes   string
}

// Metric extracts one printable value from a point's results.
type Metric struct {
	Name string
	Get  func(r stats.Results) float64
}

// Standard metrics.
var (
	MetricMcastLatency = Metric{"mcast_lat", func(r stats.Results) float64 {
		return r.Multicast.LastArrival.Mean
	}}
	MetricMcastP95 = Metric{"mcast_p95", func(r stats.Results) float64 {
		return r.Multicast.LastArrival.P95
	}}
	MetricUniLatency = Metric{"uni_lat", func(r stats.Results) float64 {
		return r.Unicast.LastArrival.Mean
	}}
	MetricThroughput = Metric{"delivered_payload", func(r stats.Results) float64 {
		return r.Multicast.DeliveredPayloadPerNodeCycle + r.Unicast.DeliveredPayloadPerNodeCycle
	}}
	MetricMsgsPerOp = Metric{"msgs_per_op", func(r stats.Results) float64 {
		return r.Multicast.MessagesPerOp
	}}
)

// Format renders the table as aligned text, one block per series. Saturated
// points are marked with '*' (their latencies reflect queue growth).
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Notes != "" {
		fmt.Fprintf(w, "   %s\n", t.Notes)
	}
	header := fmt.Sprintf("%-14s %12s", "series", t.XLabel)
	for _, m := range t.Metrics {
		header += fmt.Sprintf(" %14s", m.Name)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, s := range t.Series {
		for _, p := range s.Points {
			row := fmt.Sprintf("%-14s %12.4g", s.Name, p.X)
			if p.Err != nil {
				fmt.Fprintf(w, "%s  ERROR: %v\n", row, p.Err)
				continue
			}
			for _, m := range t.Metrics {
				row += fmt.Sprintf(" %14.5g", m.Get(p.Results))
			}
			if p.Results.Saturated {
				row += " *"
			}
			fmt.Fprintln(w, row)
		}
		fmt.Fprintln(w)
	}
}

// Contender is one scheme/architecture combination under comparison.
type Contender struct {
	Name   string
	Arch   core.SwitchArch
	Scheme collective.Scheme
}

// The three principal contenders of the paper.
var (
	CBHW   = Contender{"cb-hw", core.CentralBuffer, collective.HardwareBitString}
	IBHW   = Contender{"ib-hw", core.InputBuffer, collective.HardwareBitString}
	SWUMIN = Contender{"sw-umin", core.CentralBuffer, collective.SoftwareBinomial}
	SWSEP  = Contender{"sw-sep", core.CentralBuffer, collective.SoftwareSeparate}
	CBMP   = Contender{"cb-multiport", core.CentralBuffer, collective.HardwareMultiport}
)

// Apply stamps the contender onto a config.
func (c Contender) Apply(cfg *core.Config) {
	cfg.Arch = c.Arch
	cfg.Scheme = c.Scheme
}

// baseConfig returns the experiment baseline, shrunk in quick mode.
func baseConfig(o Options) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.WarmupCycles = 4_000
	cfg.MeasureCycles = 20_000
	cfg.DrainCycles = 1_000_000
	if o.Quick {
		cfg.WarmupCycles = 1_000
		cfg.MeasureCycles = 4_000
		cfg.DrainCycles = 400_000
	}
	return cfg
}

// runPoint builds and runs one configuration, returning a Point.
func runPoint(cfg core.Config, x float64, o Options, tag string) Point {
	sim, err := core.New(cfg)
	if err != nil {
		return Point{X: x, Err: err}
	}
	res, err := sim.Run()
	if err != nil {
		return Point{X: x, Err: fmt.Errorf("%s: %w", tag, err)}
	}
	o.progress("  %-28s x=%-8.4g mcast=%.1f uni=%.1f thr=%.3f sat=%v",
		tag, x,
		res.Multicast.LastArrival.Mean, res.Unicast.LastArrival.Mean,
		res.Multicast.DeliveredPayloadPerNodeCycle+res.Unicast.DeliveredPayloadPerNodeCycle,
		res.Saturated)
	return Point{X: x, Results: res}
}

// Registry maps experiment ids to their runners.
type Runner func(Options) (*Table, error)

var registry = map[string]Runner{}
var registryOrder []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	registryOrder = append(registryOrder, id)
}

// IDs returns all experiment ids in definition order.
func IDs() []string {
	out := append([]string(nil), registryOrder...)
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, o Options) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(o)
}

// RunAll executes every registered experiment in definition order.
func RunAll(o Options) ([]*Table, error) {
	var out []*Table
	for _, id := range registryOrder {
		t, err := registry[id](o)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}
