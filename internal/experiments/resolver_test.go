package experiments

import (
	"strings"
	"sync"
	"testing"

	"mdworm/internal/core"
	"mdworm/internal/stats"
)

// TestResolverByteIdentical: a sweep resolved through Options.Resolver (the
// cluster-coordinator path) renders tables byte-identical to the plain local
// sweep, the Resolver sees every planned tag exactly once, and PlannedTags
// lists the deterministic table order.
func TestResolverByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep")
	}
	const id = "e1"
	base := Options{Quick: true, Seed: 1, Workers: 4}

	local, _, err := RunIDs([]string{id}, base)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	local[0].Format(&want)

	var (
		mu    sync.Mutex
		calls = map[string]int{}
	)
	o := base
	o.Resolver = func(cfg core.Config, tag string) (stats.Results, int64, error) {
		mu.Lock()
		calls[tag]++
		mu.Unlock()
		// A "remote" measurement is just the same deterministic simulation
		// performed elsewhere.
		sim, err := core.New(cfg)
		if err != nil {
			return stats.Results{}, 0, err
		}
		res, err := sim.Run()
		if err != nil {
			return stats.Results{}, 0, err
		}
		return res, sim.Now(), nil
	}
	tables, err := Plan([]string{id}, o)
	if err != nil {
		t.Fatal(err)
	}
	tags := PlannedTags(tables)
	if len(tags) == 0 {
		t.Fatal("no planned tags")
	}
	for i := 1; i < len(tags); i++ {
		if tags[i] == tags[i-1] {
			t.Fatalf("duplicate planned tag %q", tags[i])
		}
	}
	if _, err := Finish([]string{id}, tables, o); err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	tables[0].Format(&got)
	if got.String() != want.String() {
		t.Errorf("resolver-backed table differs from local table:\n--- resolver ---\n%s\n--- local ---\n%s",
			got.String(), want.String())
	}
	if len(calls) != len(tags) {
		t.Errorf("resolver saw %d distinct tags, planned %d", len(calls), len(tags))
	}
	for _, tag := range tags {
		if calls[tag] != 1 {
			t.Errorf("tag %s resolved %d times, want 1", tag, calls[tag])
		}
	}
}

// TestResolverSkipsCustomHarness: a8's barrier points measure through a
// custom harness, not a standard Run — the Resolver must never see them and
// the sweep must still succeed locally.
func TestResolverSkipsCustomHarness(t *testing.T) {
	o := Options{Quick: true, Seed: 1, Workers: 2}
	o.Resolver = func(cfg core.Config, tag string) (stats.Results, int64, error) {
		t.Errorf("resolver called for custom-harness point %s", tag)
		return stats.Results{}, 0, nil
	}
	tables, err := Plan([]string{"a8"}, o)
	if err != nil {
		t.Fatal(err)
	}
	// Custom-harness points still appear in the planned order (the stream
	// merge needs their tags) — they just never route through the Resolver.
	if n := len(PlannedTags(tables)); n == 0 {
		t.Fatal("a8 planned no points")
	}
	if _, err := Finish([]string{"a8"}, tables, o); err != nil {
		t.Fatal(err)
	}
}
