package experiments

import (
	"fmt"

	"mdworm/internal/collective"
	"mdworm/internal/core"
	"mdworm/internal/stats"
)

// The collective experiments c1..c6 evaluate the collectives subsystem end to
// end: phase-structured barrier, broadcast, all-reduce, scatter, and gather
// schedules driven over the same three modes the paper compares for raw
// multicast — CB-HW and IB-HW multidestination worms versus the software
// unicast-tree baseline. The latency metric is the collective's own
// last-arrival time per repetition (driver-measured, tiled exactly by phase).

// Collective metrics. Points without collective results (they never arise in
// c1..c6, but Metric extractors must total) read as zero.
var (
	MetricCollLatency = Metric{"coll_lat", func(r stats.Results) float64 {
		if r.Collective == nil {
			return 0
		}
		return r.Collective.LastArrival.Mean
	}}
	MetricCollP95 = Metric{"coll_p95", func(r stats.Results) float64 {
		if r.Collective == nil {
			return 0
		}
		return r.Collective.LastArrival.P95
	}}
	MetricCollSkew = Metric{"coll_skew", func(r stats.Results) float64 {
		if r.Collective == nil {
			return 0
		}
		return r.Collective.Skew.Mean
	}}
)

// collReps returns the repetition count per point, shrunk in quick mode.
func collReps(o Options) int {
	if o.Quick {
		return 10
	}
	return 40
}

// collConfig returns the baseline for a collective point: an otherwise idle
// fabric whose only traffic source is the collective driver. The measurement
// window is irrelevant to the collective collector (it samples every rep);
// the drain budget must outlast the full schedule.
func collConfig(o Options, kind collective.Kind) core.Config {
	cfg := baseConfig(o)
	cfg.Traffic.OpRate = 0
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 1_000
	cfg.Collective = collective.Spec{
		Kind:         kind,
		PayloadFlits: 64,
		Reps:         collReps(o),
		GapCycles:    100,
	}
	return cfg
}

// C1BarrierSize sweeps barrier last-arrival latency over system size for the
// three modes. A barrier moves single-flit tokens, so the hardware release
// worm's advantage is pure phase elimination: one multidestination worm
// replaces the log-P unicast release tree.
func C1BarrierSize(o Options) (*Table, error) {
	stages := []int{2, 3, 4}
	if o.Quick {
		stages = []int{2, 3}
	}
	var series []Series
	for _, c := range []Contender{CBHW, IBHW, SWUMIN} {
		s := Series{Name: c.Name}
		for _, st := range stages {
			cfg := collConfig(o, collective.Barrier)
			cfg.Stages = st
			c.Apply(&cfg)
			n := cfg.N()
			s.Points = append(s.Points, runPoint(cfg, float64(n), o, fmt.Sprintf("c1/%s/N%d", c.Name, n)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "C1",
		Title:   "Barrier: last-arrival latency vs system size",
		XLabel:  "nodes",
		Metrics: []Metric{MetricCollLatency, MetricCollP95},
		Series:  series,
		Notes:   "combine tree up, then multidestination release worm (hw) or unicast release tree (sw)",
		strict:  true,
	}, nil
}

// C2BroadcastLength sweeps broadcast latency over payload length. The
// software tree pays log-P phases of host overhead plus transmission per
// phase; the hardware worm pays them once.
func C2BroadcastLength(o Options) (*Table, error) {
	lengths := []int{16, 64, 256}
	if o.Quick {
		lengths = []int{16, 128}
	}
	var series []Series
	for _, c := range []Contender{CBHW, IBHW, SWUMIN} {
		s := Series{Name: c.Name}
		for _, l := range lengths {
			cfg := collConfig(o, collective.Broadcast)
			cfg.Collective.PayloadFlits = l
			c.Apply(&cfg)
			s.Points = append(s.Points, runPoint(cfg, float64(l), o, fmt.Sprintf("c2/%s/L%d", c.Name, l)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "C2",
		Title:   "Broadcast: last-arrival latency vs payload length (N=64)",
		XLabel:  "flits",
		Metrics: []Metric{MetricCollLatency, MetricCollP95},
		Series:  series,
		strict:  true,
	}, nil
}

// C3AllReduce compares the two all-reduce compositions over system size:
// binomial combine tree plus broadcast, against the direct-gather variant
// whose first phase converges P-1 unicasts on the root's ejection link.
func C3AllReduce(o Options) (*Table, error) {
	stages := []int{2, 3, 4}
	if o.Quick {
		stages = []int{2, 3}
	}
	variants := []struct {
		name string
		kind collective.Kind
		con  Contender
	}{
		{"tree-hw", collective.AllReduce, CBHW},
		{"tree-sw", collective.AllReduce, SWUMIN},
		{"gather-hw", collective.AllReduceGather, CBHW},
	}
	var series []Series
	for _, v := range variants {
		s := Series{Name: v.name}
		for _, st := range stages {
			cfg := collConfig(o, v.kind)
			cfg.Stages = st
			cfg.Collective.PayloadFlits = 16
			v.con.Apply(&cfg)
			n := cfg.N()
			s.Points = append(s.Points, runPoint(cfg, float64(n), o, fmt.Sprintf("c3/%s/N%d", v.name, n)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "C3",
		Title:   "All-reduce: combine tree vs direct gather, by system size (L=16)",
		XLabel:  "nodes",
		Metrics: []Metric{MetricCollLatency, MetricCollP95},
		Series:  series,
		Notes:   "direct gather serializes P-1 arrivals on the root ejection link; the tree amortizes them over log-P phases",
		strict:  true,
	}, nil
}

// C4ScatterGather sweeps the personalized collectives over system size.
// Scatter is where the software tree can win: the root hands each child one
// combined sub-payload (log-P sends), while the hardware mode issues P-1
// separate root unicasts serialized by the send overhead.
func C4ScatterGather(o Options) (*Table, error) {
	stages := []int{2, 3, 4}
	if o.Quick {
		stages = []int{2, 3}
	}
	variants := []struct {
		name string
		kind collective.Kind
		con  Contender
	}{
		{"scatter-hw", collective.Scatter, CBHW},
		{"scatter-sw", collective.Scatter, SWUMIN},
		{"gather-hw", collective.Gather, CBHW},
		{"gather-sw", collective.Gather, SWUMIN},
	}
	var series []Series
	for _, v := range variants {
		s := Series{Name: v.name}
		for _, st := range stages {
			cfg := collConfig(o, v.kind)
			cfg.Stages = st
			cfg.Collective.PayloadFlits = 16
			v.con.Apply(&cfg)
			n := cfg.N()
			s.Points = append(s.Points, runPoint(cfg, float64(n), o, fmt.Sprintf("c4/%s/N%d", v.name, n)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "C4",
		Title:   "Scatter/gather: last-arrival latency vs system size (L=16 per node)",
		XLabel:  "nodes",
		Metrics: []Metric{MetricCollLatency, MetricCollP95},
		Series:  series,
		Notes:   "per-node payload is fixed, so total bytes grow with P; sw trees forward combined sub-payloads",
		strict:  true,
	}, nil
}

// C5Skew sweeps process arrival skew for the barrier: once skew dwarfs the
// network time, the last-arrival latency of every mode collapses onto the
// skew itself and the hardware advantage vanishes — the paper's argument for
// judging collectives by last arrival rather than network transit.
func C5Skew(o Options) (*Table, error) {
	skews := []int64{0, 64, 256, 1024}
	if o.Quick {
		skews = []int64{0, 256}
	}
	var series []Series
	for _, c := range []Contender{CBHW, SWUMIN} {
		s := Series{Name: c.Name}
		for _, sk := range skews {
			cfg := collConfig(o, collective.Barrier)
			cfg.Collective.SkewCycles = sk
			cfg.Collective.GapCycles = 100 + sk
			c.Apply(&cfg)
			s.Points = append(s.Points, runPoint(cfg, float64(sk), o, fmt.Sprintf("c5/%s/skew=%d", c.Name, sk)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "C5",
		Title:   "Barrier under process skew (N=64)",
		XLabel:  "skew_cycles",
		Metrics: []Metric{MetricCollLatency, MetricCollSkew},
		Series:  series,
		Notes:   "skew draws are deterministic per (rep, node); coll_skew is the final-phase arrival spread",
		strict:  true,
	}, nil
}

// C6Background runs broadcasts against rising background unicast load: the
// software tree both suffers more from contention and injects log-P times
// the messages into it.
func C6Background(o Options) (*Table, error) {
	bg := []float64{0, 0.10, 0.20, 0.40}
	if o.Quick {
		bg = []float64{0, 0.20}
	}
	var series []Series
	for _, c := range []Contender{CBHW, IBHW, SWUMIN} {
		s := Series{Name: c.Name}
		for _, load := range bg {
			cfg := collConfig(o, collective.Broadcast)
			cfg.Traffic.MulticastFraction = 0
			cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(load)
			cfg.Collective.GapCycles = 400
			c.Apply(&cfg)
			s.Points = append(s.Points, runPoint(cfg, load, o, fmt.Sprintf("c6/%s/load=%.2f", c.Name, load)))
		}
		series = append(series, s)
	}
	return &Table{
		ID:      "C6",
		Title:   "Broadcast against background unicast load (N=64, L=64)",
		XLabel:  "bg_load",
		Metrics: []Metric{MetricCollLatency, MetricCollP95, MetricUniLatency},
		Series:  series,
		Notes:   "uni_lat shows the reverse interference: what the collective does to the background traffic",
		strict:  true,
	}, nil
}
