package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	// Definition order: the paper's figures first, then the ablations,
	// then the collective experiments.
	want := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8",
		"a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9", "a10", "a11",
		"c1", "c2", "c3", "c4", "c5", "c6"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("registry = %v, want %v", ids, want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", DefaultOptions()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestE8QuickShape runs the cheapest real experiment end to end and checks
// the paper's qualitative shape.
func TestE8QuickShape(t *testing.T) {
	tab, err := Run("e8", Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != 7 { // 4 contenders + 3 analytic reference curves
		t.Fatalf("series = %d", len(tab.Series))
	}
	byName := map[string]Series{}
	for _, s := range tab.Series {
		byName[s.Name] = s
	}
	last := func(name string) float64 {
		s := byName[name]
		p := s.Points[len(s.Points)-1]
		if p.Err != nil {
			t.Fatal(p.Err)
		}
		return p.Results.Multicast.LastArrival.Mean
	}
	if !(last("cb-hw") < last("sw-umin") && last("sw-umin") < last("sw-sep")) {
		t.Fatalf("d=63 ordering violated: cb=%f umin=%f sep=%f",
			last("cb-hw"), last("sw-umin"), last("sw-sep"))
	}
	// The analytic reference curves ride along and must be sane.
	if last("model-hw") <= 0 || last("model-sw-umin") <= last("model-hw") {
		t.Fatalf("model curves wrong: hw=%f sw=%f", last("model-hw"), last("model-sw-umin"))
	}
	var buf bytes.Buffer
	tab.Format(&buf)
	out := buf.String()
	for _, want := range []string{"E8", "cb-hw", "sw-sep", "mcast_lat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

// TestA5QuickShape checks the encoding ablation: multiport needs more worms
// for scattered sets but has smaller headers.
func TestA5QuickShape(t *testing.T) {
	tab, err := Run("a5", Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var bs, mp Series
	for _, s := range tab.Series {
		switch s.Name {
		case "cb-hw":
			bs = s
		case "cb-multiport":
			mp = s
		}
	}
	// At the largest degree, multiport must use several worms while
	// bit-string always uses one.
	bsLast := bs.Points[len(bs.Points)-1]
	mpLast := mp.Points[len(mp.Points)-1]
	if bsLast.Results.Multicast.MessagesPerOp != 1 {
		t.Fatalf("bit-string msgs/op = %g", bsLast.Results.Multicast.MessagesPerOp)
	}
	if mpLast.Results.Multicast.MessagesPerOp <= 1 {
		t.Fatalf("multiport msgs/op = %g for d=63", mpLast.Results.Multicast.MessagesPerOp)
	}
}

func TestPointCollector(t *testing.T) {
	var c pointCollector
	c.add(100, 1)
	c.add(200, 3)
	r := c.results(64)
	if r.Multicast.OpsCompleted != 2 || r.Multicast.LastArrival.Mean != 150 || r.Multicast.MessagesPerOp != 2 {
		t.Fatalf("%+v", r.Multicast)
	}
}

func TestWriteCSV(t *testing.T) {
	tab, err := Run("a8", Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("csv too short:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "experiment,series,nodes,") {
		t.Fatalf("csv header wrong: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "A8,") {
			t.Fatalf("csv row missing experiment id: %q", l)
		}
	}
}

// TestAllExperimentsQuick runs the entire registry in quick mode: every
// experiment must produce a non-empty, error-free table.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run skipped in -short mode")
	}
	// Workers: 4 exercises the parallel point pool (the -race CI run makes
	// this the data-race canary for the whole runner).
	tables, err := RunAll(Options{Quick: true, Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(IDs()) {
		t.Fatalf("got %d tables for %d experiments", len(tables), len(IDs()))
	}
	for _, tab := range tables {
		if len(tab.Series) == 0 {
			t.Errorf("%s: no series", tab.ID)
		}
		for _, s := range tab.Series {
			if len(s.Points) == 0 {
				t.Errorf("%s/%s: no points", tab.ID, s.Name)
			}
			for _, p := range s.Points {
				if p.Err != nil {
					// The sync-replication rows of A10 deadlock by
					// design — the paper's point.
					if tab.ID == "A10" && s.Name == "sync" &&
						strings.Contains(p.Err.Error(), "DEADLOCK") {
						continue
					}
					t.Errorf("%s/%s x=%g: %v", tab.ID, s.Name, p.X, p.Err)
				}
			}
		}
	}
}
