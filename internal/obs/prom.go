package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Histogram is a fixed-bucket histogram matching the Prometheus exposition
// model: cumulative bucket counts, a sum, and a total count. It is not
// thread-safe; callers that share one (the mdwd pool) guard it with their
// own lock.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []int64   // len(bounds)+1, non-cumulative per bucket
	sum    float64
	n      int64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// ExpBuckets returns n bounds starting at start and growing by factor —
// the usual shape for latency and occupancy histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Clone returns an independent copy (for rendering outside the owner's lock).
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), h.bounds...),
		counts: append([]int64(nil), h.counts...),
		sum:    h.sum,
		n:      h.n,
	}
}

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE comment lines followed by sample lines.
type PromWriter struct {
	W io.Writer
	// Err latches the first write error so call sites can chain freely.
	Err error
}

// PromContentType is the Content-Type a server must use when serving the
// output of a PromWriter.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

func (p *PromWriter) printf(format string, args ...any) {
	if p.Err != nil {
		return
	}
	_, p.Err = fmt.Fprintf(p.W, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Gauge writes one gauge metric.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.printf("%s %s\n", name, promFloat(v))
}

// Counter writes one counter metric.
func (p *PromWriter) Counter(name, help string, v float64) {
	p.header(name, help, "counter")
	p.printf("%s %s\n", name, promFloat(v))
}

// LabeledSample is one labelled sample of a metric family written by
// LabeledGauge.
type LabeledSample struct {
	// Labels are name/value pairs, written in slice order.
	Labels [][2]string
	Value  float64
}

// promLabel escapes a label value per the exposition format (backslash,
// double quote, newline).
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// LabeledGauge writes one gauge family with one sample line per label set —
// the per-peer gauges of a cluster coordinator, for one. An empty sample
// list writes just the HELP/TYPE header, keeping the family discoverable.
func (p *PromWriter) LabeledGauge(name, help string, samples []LabeledSample) {
	p.header(name, help, "gauge")
	for _, s := range samples {
		var lb strings.Builder
		for i, kv := range s.Labels {
			if i > 0 {
				lb.WriteByte(',')
			}
			fmt.Fprintf(&lb, `%s="%s"`, kv[0], promLabel(kv[1]))
		}
		p.printf("%s{%s} %s\n", name, lb.String(), promFloat(s.Value))
	}
}

// Histogram writes one histogram metric with cumulative le-labelled buckets.
func (p *PromWriter) Histogram(name, help string, h *Histogram) {
	p.header(name, help, "histogram")
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		p.printf("%s_bucket{le=%q} %d\n", name, promFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	p.printf("%s_sum %s\n", name, promFloat(h.sum))
	p.printf("%s_count %d\n", name, h.n)
}
