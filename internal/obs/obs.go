// Package obs is the observability layer of the simulator: it turns the
// engine's message-level trace stream and a cycle-sampled occupancy probe
// into spans (worm/op lifetimes with phase attribution), time series
// (per-link utilization, input-queue depth, central-buffer occupancy, NIC
// send-queue depth), and exporters (ndjson timelines, Perfetto/Chrome
// trace-event JSON, CSV, Prometheus text format).
//
// The package deliberately imports only the engine: captures attach to a
// simulation as an ordinary engine.Tracer plus an engine.Component probe, so
// observation is pay-for-what-you-use — with no capture installed the engine
// hot path keeps its zero-allocation steady state.
package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"mdworm/internal/engine"
)

// Meta describes the run a capture observed; it becomes the first line of an
// ndjson timeline so analyzers can interpret cycles without the config.
type Meta struct {
	Version     int    `json:"version"`
	Arch        string `json:"arch,omitempty"`
	Scheme      string `json:"scheme,omitempty"`
	Nodes       int    `json:"nodes,omitempty"`
	RouteDelay  int    `json:"route_delay,omitempty"`
	LinkLatency int    `json:"link_latency,omitempty"`
	Links       int    `json:"links,omitempty"`
	SampleEvery int64  `json:"sample_every,omitempty"`
}

// Sample is one probe observation of fabric occupancy, taken between cycles.
// The short JSON keys keep ndjson timelines compact.
type Sample struct {
	// Cycle the sample was taken at.
	Cycle int64 `json:"c"`
	// LinkFlits counts flits in flight across every link.
	LinkFlits int `json:"lf,omitempty"`
	// LinkCarried is the cumulative flit count delivered by all links;
	// deltas between samples give aggregate link utilization.
	LinkCarried int64 `json:"lc,omitempty"`
	// InputFlits counts flits buffered across all switch inputs.
	InputFlits int `json:"iq,omitempty"`
	// MaxInputQ is the deepest single switch input queue.
	MaxInputQ int `json:"xiq,omitempty"`
	// OutputFlits counts flits staged in switch output FIFOs (CB arch).
	OutputFlits int `json:"oq,omitempty"`
	// CBChunks counts central-buffer chunks in use across all switches.
	CBChunks int `json:"cb,omitempty"`
	// MaxBranchRefs is the high-water mark of reader references on one
	// buffered worm (central-buffer replication fan-out).
	MaxBranchRefs int `json:"br,omitempty"`
	// NICQueue counts messages waiting in NIC send queues.
	NICQueue int `json:"nq,omitempty"`
	// MaxNICQueue is the deepest single NIC send queue.
	MaxNICQueue int `json:"xnq,omitempty"`
}

// Summary condenses a capture's samples into peak and mean occupancy
// figures, cheap enough to keep per sweep point.
type Summary struct {
	Samples        int     `json:"samples"`
	PeakLinkFlits  int     `json:"peak_link_flits,omitempty"`
	PeakInputFlits int     `json:"peak_input_flits,omitempty"`
	PeakInputQ     int     `json:"peak_input_q,omitempty"`
	PeakCBChunks   int     `json:"peak_cb_chunks,omitempty"`
	PeakBranchRefs int     `json:"peak_branch_refs,omitempty"`
	PeakNICQueue   int     `json:"peak_nic_queue,omitempty"`
	MeanInputFlits float64 `json:"mean_input_flits,omitempty"`
	MeanCBChunks   float64 `json:"mean_cb_chunks,omitempty"`
}

// PeakOccupancy is the architecture-neutral "how full did the switch get"
// figure: central-buffer chunks for CB runs, buffered input flits for IB.
func (s Summary) PeakOccupancy() int {
	if s.PeakCBChunks > s.PeakInputFlits {
		return s.PeakCBChunks
	}
	return s.PeakInputFlits
}

// Merge folds another summary into this one: peaks take the maximum, means
// are weighted by sample count.
func (s Summary) Merge(o Summary) Summary {
	total := s.Samples + o.Samples
	if total > 0 {
		s.MeanInputFlits = (s.MeanInputFlits*float64(s.Samples) + o.MeanInputFlits*float64(o.Samples)) / float64(total)
		s.MeanCBChunks = (s.MeanCBChunks*float64(s.Samples) + o.MeanCBChunks*float64(o.Samples)) / float64(total)
	}
	s.Samples = total
	s.PeakLinkFlits = maxInt(s.PeakLinkFlits, o.PeakLinkFlits)
	s.PeakInputFlits = maxInt(s.PeakInputFlits, o.PeakInputFlits)
	s.PeakInputQ = maxInt(s.PeakInputQ, o.PeakInputQ)
	s.PeakCBChunks = maxInt(s.PeakCBChunks, o.PeakCBChunks)
	s.PeakBranchRefs = maxInt(s.PeakBranchRefs, o.PeakBranchRefs)
	s.PeakNICQueue = maxInt(s.PeakNICQueue, o.PeakNICQueue)
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Capture collects what one simulation run exposes to the observability
// layer: trace events (as an engine.Tracer) and occupancy samples (fed by a
// Probe). Events are retained in memory when CaptureEvents is set and/or
// streamed as ndjson lines when Stream is set; samples are always retained
// (they are bounded by run length / SampleEvery).
type Capture struct {
	// SampleEvery is the probe period in cycles; 0 disables sampling.
	SampleEvery int64
	// CaptureEvents retains trace events in Events for in-process analysis
	// (span reconstruction, Perfetto export).
	CaptureEvents bool
	// Stream, when set, receives the meta line and every event/sample as
	// one ndjson line each, suitable for mdwtrace.
	Stream io.Writer

	Meta    Meta
	Events  []engine.TraceEvent
	Samples []Sample

	streamErr error
}

// NewCapture returns a capture that retains events and samples every 64
// cycles — the right default for in-process analysis. For streaming-only or
// samples-only captures, construct the struct directly.
func NewCapture() *Capture {
	return &Capture{SampleEvery: 64, CaptureEvents: true}
}

// WantsEvents reports whether the capture consumes trace events at all; a
// samples-only capture keeps the run's tracer off (and its hot path cheap).
func (c *Capture) WantsEvents() bool { return c.CaptureEvents || c.Stream != nil }

// SetMeta records the run description and, when streaming, writes it as the
// timeline's first line.
func (c *Capture) SetMeta(m Meta) {
	c.Meta = m
	c.writeLine(metaLine{T: "meta", Meta: m})
}

// Emit implements engine.Tracer.
func (c *Capture) Emit(e engine.TraceEvent) {
	if c.CaptureEvents {
		c.Events = append(c.Events, e)
	}
	if c.Stream != nil {
		c.writeLine(eventToLine(e))
	}
}

// AddSample records one probe observation.
func (c *Capture) AddSample(s Sample) {
	c.Samples = append(c.Samples, s)
	if c.Stream != nil {
		c.writeLine(sampleLine{T: "s", Sample: s})
	}
}

// StreamErr returns the first error hit while writing the ndjson stream
// (nil when not streaming or healthy). Emit cannot return errors — it is an
// engine.Tracer — so stream failures latch here for the driver to check.
func (c *Capture) StreamErr() error { return c.streamErr }

func (c *Capture) writeLine(v any) {
	if c.Stream == nil || c.streamErr != nil {
		return
	}
	b, err := json.Marshal(v)
	if err == nil {
		b = append(b, '\n')
		_, err = c.Stream.Write(b)
	}
	if err != nil {
		c.streamErr = fmt.Errorf("obs: timeline stream: %w", err)
	}
}

// Trace packages the capture's retained data for analysis.
func (c *Capture) Trace() *Trace {
	return &Trace{Meta: c.Meta, Events: c.Events, Samples: c.Samples}
}

// Summary condenses the capture's samples.
func (c *Capture) Summary() Summary {
	var s Summary
	var sumInput, sumCB int64
	for _, sm := range c.Samples {
		s.Samples++
		s.PeakLinkFlits = maxInt(s.PeakLinkFlits, sm.LinkFlits)
		s.PeakInputFlits = maxInt(s.PeakInputFlits, sm.InputFlits)
		s.PeakInputQ = maxInt(s.PeakInputQ, sm.MaxInputQ)
		s.PeakCBChunks = maxInt(s.PeakCBChunks, sm.CBChunks)
		s.PeakBranchRefs = maxInt(s.PeakBranchRefs, sm.MaxBranchRefs)
		s.PeakNICQueue = maxInt(s.PeakNICQueue, sm.MaxNICQueue)
		sumInput += int64(sm.InputFlits)
		sumCB += int64(sm.CBChunks)
	}
	if s.Samples > 0 {
		s.MeanInputFlits = float64(sumInput) / float64(s.Samples)
		s.MeanCBChunks = float64(sumCB) / float64(s.Samples)
	}
	return s
}
