package obs

// GaugeSource is anything that can report instantaneous fabric occupancy;
// core.Simulator implements it by summing link, switch, and NIC state.
type GaugeSource interface {
	// SampleGauges snapshots current occupancy. The probe stamps the cycle.
	SampleGauges() Sample
}

// Probe is an engine.Component that samples a GaugeSource every Every cycles
// into a Capture. It implements engine.NextWaker with its sampling
// timetable, so the event kernel sleeps it between period boundaries;
// registered after the fabric's components, it observes post-step state. It
// holds no work of its own and so never delays a drain.
type Probe struct {
	Every  int64
	Source GaugeSource
	Cap    *Capture
}

// Name identifies the probe in diagnostics.
func (p *Probe) Name() string { return "obs-probe" }

// Quiesced implements engine.Component; the probe never holds work.
func (p *Probe) Quiesced() bool { return true }

// Step samples the source on probe-period boundaries.
func (p *Probe) Step(now int64) {
	if p.Every <= 0 || now%p.Every != 0 {
		return
	}
	s := p.Source.SampleGauges()
	s.Cycle = now
	p.Cap.AddSample(s)
}

// NextWake implements engine.NextWaker: the probe's next deadline is the
// next sampling-period boundary.
func (p *Probe) NextWake(now int64) (int64, bool) {
	if p.Every <= 0 {
		return 0, false
	}
	return now - now%p.Every + p.Every, true
}
