package obs

import (
	"sort"

	"mdworm/internal/engine"
)

// CollectiveSpan reconstructs one collective rep from its coll-start,
// coll-phase, and coll-done trace events: when it ran, how long each phase
// took, and whether the per-phase attribution tiles the end-to-end latency.
type CollectiveSpan struct {
	Rep    int
	Kind   string
	Steps  int
	Phases int

	// Start and End are the rep's boundary cycles; End is zero while the
	// rep is still open at the end of the trace.
	Start int64
	End   int64
	// Latency and Skew are the driver's own measurements from the done
	// event (Latency == End-Start; Skew is the final phase's arrival
	// spread). Degraded marks reps that lost destinations to faults.
	Latency  int64
	Skew     int64
	Degraded bool
	Done     bool

	// PhaseEnd maps phase number (1-based index p+1) to its last completion
	// cycle; -1 for phases with no completion event in the trace.
	PhaseEnd []int64
}

// PhaseLatencies attributes the rep's latency to its phases cumulatively:
// T_0 is the rep start and T_p = max(T_{p-1}, last completion of phase p),
// so the returned slice sums exactly to End-Start for a complete rep.
func (c *CollectiveSpan) PhaseLatencies() []int64 {
	out := make([]int64, len(c.PhaseEnd))
	t := c.Start
	for p, end := range c.PhaseEnd {
		if end < t {
			end = t
		}
		out[p] = end - t
		t = end
	}
	return out
}

// Tiles reports whether the per-phase attribution sums exactly to the
// driver-reported end-to-end latency (it must, for every complete rep).
func (c *CollectiveSpan) Tiles() bool {
	if !c.Done {
		return false
	}
	sum := int64(0)
	for _, l := range c.PhaseLatencies() {
		sum += l
	}
	return sum == c.Latency
}

// Collectives reconstructs every collective rep recorded in the trace, in
// rep order.
func (t *Trace) Collectives() []*CollectiveSpan {
	byRep := map[int]*CollectiveSpan{}
	get := func(rep int) *CollectiveSpan {
		c := byRep[rep]
		if c == nil {
			c = &CollectiveSpan{Rep: rep}
			byRep[rep] = c
		}
		return c
	}
	for _, e := range t.Events {
		rep, ok := detailInt(e.Detail, "rep")
		if !ok {
			continue
		}
		switch e.Kind {
		case engine.TraceCollStart:
			c := get(int(rep))
			c.Start = e.Cycle
			if s, ok := detailString(e.Detail, "kind"); ok {
				c.Kind = s
			}
			if v, ok := detailInt(e.Detail, "steps"); ok {
				c.Steps = int(v)
			}
			if v, ok := detailInt(e.Detail, "phases"); ok {
				c.Phases = int(v)
				c.PhaseEnd = make([]int64, v)
				for p := range c.PhaseEnd {
					c.PhaseEnd[p] = -1
				}
			}
		case engine.TraceCollPhase:
			c := get(int(rep))
			ph, ok := detailInt(e.Detail, "phase")
			if !ok || ph < 1 {
				continue
			}
			for int64(len(c.PhaseEnd)) < ph {
				c.PhaseEnd = append(c.PhaseEnd, -1)
			}
			if end, ok := detailInt(e.Detail, "end"); ok {
				c.PhaseEnd[ph-1] = end
			} else {
				c.PhaseEnd[ph-1] = e.Cycle
			}
		case engine.TraceCollDone:
			c := get(int(rep))
			c.End = e.Cycle
			c.Done = true
			if v, ok := detailInt(e.Detail, "latency"); ok {
				c.Latency = v
			}
			if v, ok := detailInt(e.Detail, "skew"); ok {
				c.Skew = v
			}
			if s, ok := detailString(e.Detail, "degraded"); ok {
				c.Degraded = s == "true"
			}
		}
	}
	out := make([]*CollectiveSpan, 0, len(byRep))
	for _, c := range byRep {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rep < out[j].Rep })
	return out
}
