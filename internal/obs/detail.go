package obs

import (
	"strconv"
	"strings"
)

// The engine's trace events carry event-specific context as "key=value"
// pairs in a detail string (e.g. "waited=12 chunks=3", "dests=[1 5] len=68").
// These helpers pull typed values back out; they are the only place the
// analyzer depends on those formats.

// findKey returns the index just past "key=" where key starts the string or
// follows a space, or -1.
func findKey(detail, key string) int {
	needle := key + "="
	for from := 0; ; {
		i := strings.Index(detail[from:], needle)
		if i < 0 {
			return -1
		}
		i += from
		if i == 0 || detail[i-1] == ' ' {
			return i + len(needle)
		}
		from = i + 1
	}
}

// detailInt extracts the integer following "key=" in a detail string.
func detailInt(detail, key string) (int64, bool) {
	i := findKey(detail, key)
	if i < 0 {
		return 0, false
	}
	j := i
	if j < len(detail) && detail[j] == '-' {
		j++
	}
	for j < len(detail) && detail[j] >= '0' && detail[j] <= '9' {
		j++
	}
	v, err := strconv.ParseInt(detail[i:j], 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// detailString extracts the space-delimited token following "key=".
func detailString(detail, key string) (string, bool) {
	i := findKey(detail, key)
	if i < 0 {
		return "", false
	}
	j := strings.IndexByte(detail[i:], ' ')
	if j < 0 {
		return detail[i:], true
	}
	return detail[i : i+j], true
}

// detailList extracts the "[a b c]"-formatted int list following "key=".
func detailList(detail, key string) ([]int, bool) {
	i := findKey(detail, key)
	if i < 0 || i >= len(detail) || detail[i] != '[' {
		return nil, false
	}
	j := strings.IndexByte(detail[i:], ']')
	if j < 0 {
		return nil, false
	}
	body := detail[i+1 : i+j]
	if body == "" {
		return []int{}, true
	}
	fields := strings.Fields(body)
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}
