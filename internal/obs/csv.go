package obs

import (
	"fmt"
	"io"
)

// WriteCSV renders the trace's occupancy samples as a CSV time series, one
// row per probe observation, ready for plotting.
func WriteCSV(w io.Writer, t *Trace) error {
	if _, err := fmt.Fprintln(w,
		"cycle,link_flits,link_carried,input_flits,max_input_q,output_flits,cb_chunks,max_branch_refs,nic_queue,max_nic_queue"); err != nil {
		return err
	}
	for _, s := range t.Samples {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Cycle, s.LinkFlits, s.LinkCarried, s.InputFlits, s.MaxInputQ,
			s.OutputFlits, s.CBChunks, s.MaxBranchRefs, s.NICQueue, s.MaxNICQueue); err != nil {
			return err
		}
	}
	return nil
}
