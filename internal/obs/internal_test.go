package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestDetailParsers(t *testing.T) {
	d := "src=5 dests=[1 9 18] scheme=hw-bitstring len=68 waited=-3"
	if v, ok := detailInt(d, "src"); !ok || v != 5 {
		t.Fatalf("src: %d %v", v, ok)
	}
	if v, ok := detailInt(d, "len"); !ok || v != 68 {
		t.Fatalf("len: %d %v", v, ok)
	}
	if v, ok := detailInt(d, "waited"); !ok || v != -3 {
		t.Fatalf("waited: %d %v", v, ok)
	}
	if _, ok := detailInt(d, "ests"); ok {
		t.Fatal("matched key suffix 'ests' inside 'dests'")
	}
	if s, ok := detailString(d, "scheme"); !ok || s != "hw-bitstring" {
		t.Fatalf("scheme: %q %v", s, ok)
	}
	if l, ok := detailList(d, "dests"); !ok || len(l) != 3 || l[2] != 18 {
		t.Fatalf("dests: %v %v", l, ok)
	}
	if l, ok := detailList("dests=[]", "dests"); !ok || len(l) != 0 {
		t.Fatalf("empty list: %v %v", l, ok)
	}
	if _, ok := detailInt(d, "missing"); ok {
		t.Fatal("found a missing key")
	}
}

func TestIntervalArithmetic(t *testing.T) {
	merged := mergeIntervals([]Interval{{5, 10}, {1, 3}, {9, 12}, {3, 4}, {20, 20}})
	want := []Interval{{1, 4}, {5, 12}}
	if len(merged) != len(want) || merged[0] != want[0] || merged[1] != want[1] {
		t.Fatalf("merge: %v, want %v", merged, want)
	}

	var set intervalSet
	got := set.claim(Interval{0, 10})
	if len(got) != 1 || got[0] != (Interval{0, 10}) {
		t.Fatalf("first claim: %v", got)
	}
	got = set.claim(Interval{5, 15})
	if len(got) != 1 || got[0] != (Interval{10, 15}) {
		t.Fatalf("overlapping claim: %v", got)
	}
	got = set.claim(Interval{2, 8})
	if len(got) != 0 {
		t.Fatalf("fully claimed interval yielded %v", got)
	}
	rest := set.complement(Interval{0, 20})
	if len(rest) != 1 || rest[0] != (Interval{15, 20}) {
		t.Fatalf("complement: %v", rest)
	}
}

func TestSummaryMerge(t *testing.T) {
	a := Summary{Samples: 2, PeakCBChunks: 10, MeanCBChunks: 4}
	b := Summary{Samples: 2, PeakCBChunks: 6, MeanCBChunks: 8}
	m := a.Merge(b)
	if m.Samples != 4 || m.PeakCBChunks != 10 || m.MeanCBChunks != 6 {
		t.Fatalf("merge: %+v", m)
	}
	// Merging into a zero summary keeps the other side intact.
	if z := (Summary{}).Merge(a); z.Samples != 2 || z.MeanCBChunks != 4 {
		t.Fatalf("zero merge: %+v", z)
	}
}

func TestHistogramAndPromFormat(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.N() != 5 || h.Sum() != 560.5 {
		t.Fatalf("histogram: n=%d sum=%g", h.N(), h.Sum())
	}

	var buf bytes.Buffer
	p := &PromWriter{W: &buf}
	p.Gauge("g_metric", "a gauge", 3)
	p.Counter("c_metric", "a counter", 42)
	p.Histogram("h_metric", "a histogram", h)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE g_metric gauge\ng_metric 3\n",
		"# TYPE c_metric counter\nc_metric 42\n",
		"# TYPE h_metric histogram\n",
		`h_metric_bucket{le="1"} 1`,
		`h_metric_bucket{le="10"} 3`,
		`h_metric_bucket{le="100"} 4`,
		`h_metric_bucket{le="+Inf"} 5`,
		"h_metric_sum 560.5",
		"h_metric_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets: %v, want %v", b, want)
		}
	}
}

func TestCaptureSamplesOnly(t *testing.T) {
	c := &Capture{SampleEvery: 16}
	if c.WantsEvents() {
		t.Fatal("samples-only capture claims to want events")
	}
	c.AddSample(Sample{Cycle: 16, CBChunks: 3})
	c.AddSample(Sample{Cycle: 32, CBChunks: 7})
	if s := c.Summary(); s.Samples != 2 || s.PeakCBChunks != 7 {
		t.Fatalf("summary: %+v", s)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ReadTrace(strings.NewReader(`{"t":"ev","c":1,"k":"no-such-kind"}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Unknown line types are skipped for forward compatibility.
	tr, err := ReadTrace(strings.NewReader(`{"t":"future-thing","x":1}` + "\n"))
	if err != nil || len(tr.Events) != 0 {
		t.Fatalf("unknown line type not skipped: %v", err)
	}
}
