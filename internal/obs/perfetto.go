package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event format (chrome://tracing, https://ui.perfetto.dev):
// one JSON object with a traceEvents array. One simulated cycle is rendered
// as one microsecond.

type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Process ids grouping the exported rows.
const (
	perfettoPidOps      = 1 // one thread per op, X event per lifetime
	perfettoPidMsgs     = 2 // one thread per message
	perfettoPidCritPath = 3 // phase segments of the slowest op
	perfettoPidCounters = 4 // occupancy counter tracks
)

// WritePerfetto renders the trace as Chrome trace-event JSON: op and message
// lifetimes as complete ("X") events, the slowest op's critical-path phases
// as their own track, and the occupancy samples as counter ("C") tracks.
func WritePerfetto(w io.Writer, t *Trace) error {
	var evs []perfettoEvent
	meta := func(pid int, name string) {
		evs = append(evs, perfettoEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	meta(perfettoPidOps, "ops")
	meta(perfettoPidMsgs, "messages")
	meta(perfettoPidCritPath, "critical-path (slowest op)")
	meta(perfettoPidCounters, "occupancy")

	for _, op := range t.Ops() {
		if !op.Completed {
			continue
		}
		evs = append(evs, perfettoEvent{
			Name: fmt.Sprintf("op %d (%d dests)", op.ID, op.NumDests),
			Ph:   "X", Ts: op.Start, Dur: op.End - op.Start,
			Pid: perfettoPidOps, Tid: op.ID,
			Args: map[string]any{
				"src": op.Src, "dests": op.NumDests, "msgs": op.Msgs,
				"scheme": op.Scheme, "latency": op.Latency,
			},
		})
		for _, m := range t.OpMessages(op.ID) {
			lastDel := int64(-1)
			for _, d := range m.Delivers {
				if d.Cycle > lastDel {
					lastDel = d.Cycle
				}
			}
			if !m.Injected || lastDel < m.Inject {
				continue
			}
			evs = append(evs, perfettoEvent{
				Name: fmt.Sprintf("msg %d (op %d)", m.ID, op.ID),
				Ph:   "X", Ts: m.Inject, Dur: lastDel - m.Inject,
				Pid: perfettoPidMsgs, Tid: m.ID,
				Args: map[string]any{"len": m.Len, "from": m.InjectActor},
			})
		}
	}

	if slow := t.SlowestOp(); slow != nil {
		if cp, err := t.CriticalPath(slow.ID); err == nil {
			for _, seg := range cp.Segments {
				evs = append(evs, perfettoEvent{
					Name: string(seg.Phase),
					Ph:   "X", Ts: seg.From, Dur: seg.Len(),
					Pid: perfettoPidCritPath, Tid: slow.ID,
					Args: map[string]any{"msg": seg.Msg},
				})
			}
		}
	}

	counter := func(name string, ts int64, v any) {
		evs = append(evs, perfettoEvent{
			Name: name, Ph: "C", Ts: ts, Pid: perfettoPidCounters,
			Args: map[string]any{"value": v},
		})
	}
	var prevCarried int64
	for i, s := range t.Samples {
		counter("link_flits_in_flight", s.Cycle, s.LinkFlits)
		counter("input_queue_flits", s.Cycle, s.InputFlits)
		counter("cb_chunks_in_use", s.Cycle, s.CBChunks)
		counter("nic_send_queue", s.Cycle, s.NICQueue)
		if i > 0 {
			counter("link_flits_delivered_delta", s.Cycle, s.LinkCarried-prevCarried)
		}
		prevCarried = s.LinkCarried
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
	})
}
