package obs

import "sync"

// SweepObserver accumulates per-point occupancy summaries across an
// experiment sweep. Experiment runners attach a samples-only Capture to each
// point's simulator and Record its summary here; because sweep points run on
// a worker pool, the observer is safe for concurrent use.
type SweepObserver struct {
	// SampleEvery is the probe period in cycles for each point's capture;
	// runners substitute a default when it is 0.
	SampleEvery int64

	mu     sync.Mutex
	points map[string]Summary
	agg    Summary
}

// Record folds one point's summary into the observer under its sweep tag.
// Recording the same tag again merges (reruns accumulate).
func (o *SweepObserver) Record(tag string, s Summary) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.points == nil {
		o.points = make(map[string]Summary)
	}
	o.points[tag] = o.points[tag].Merge(s)
	o.agg = o.agg.Merge(s)
}

// Point returns the recorded summary for one sweep tag.
func (o *SweepObserver) Point(tag string) (Summary, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s, ok := o.points[tag]
	return s, ok
}

// Points returns a copy of every recorded per-tag summary.
func (o *SweepObserver) Points() map[string]Summary {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]Summary, len(o.points))
	for k, v := range o.points {
		out[k] = v
	}
	return out
}

// Aggregate returns the summary merged across every recorded point.
func (o *SweepObserver) Aggregate() Summary {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.agg
}
