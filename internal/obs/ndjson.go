package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"mdworm/internal/engine"
)

// Timeline line shapes. Every line is a JSON object whose "t" field selects
// the type: "meta" (run description, first line), "ev" (trace event), or
// "s" (occupancy sample). Unknown types are skipped on read so the format
// can grow without breaking old analyzers.

type metaLine struct {
	T string `json:"t"`
	Meta
}

type sampleLine struct {
	T string `json:"t"`
	Sample
}

type eventLine struct {
	T string `json:"t"`
	C int64  `json:"c"`
	K string `json:"k"`
	A string `json:"a,omitempty"`
	M uint64 `json:"m,omitempty"`
	W uint64 `json:"w,omitempty"`
	O uint64 `json:"o,omitempty"`
	D string `json:"d,omitempty"`
}

func eventToLine(e engine.TraceEvent) eventLine {
	return eventLine{
		T: "ev", C: e.Cycle, K: e.Kind.String(),
		A: e.Actor, M: e.Msg, W: e.Worm, O: e.Op, D: e.Detail,
	}
}

// Trace is a fully loaded timeline: the run description, the message-level
// trace events, and the occupancy samples.
type Trace struct {
	Meta    Meta
	Events  []engine.TraceEvent
	Samples []Sample

	idx *traceIndex // lazy span index
}

// ReadTrace parses an ndjson timeline (as written by Capture.Stream or
// WriteTrace). Lines with unknown "t" values are ignored; a malformed line
// fails the read with its line number.
func ReadTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var tag struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(raw, &tag); err != nil {
			return nil, fmt.Errorf("obs: timeline line %d: %w", lineNo, err)
		}
		switch tag.T {
		case "meta":
			var m metaLine
			if err := json.Unmarshal(raw, &m); err != nil {
				return nil, fmt.Errorf("obs: timeline line %d: %w", lineNo, err)
			}
			t.Meta = m.Meta
		case "ev":
			var l eventLine
			if err := json.Unmarshal(raw, &l); err != nil {
				return nil, fmt.Errorf("obs: timeline line %d: %w", lineNo, err)
			}
			kind, ok := engine.ParseTraceKind(l.K)
			if !ok {
				return nil, fmt.Errorf("obs: timeline line %d: unknown event kind %q", lineNo, l.K)
			}
			t.Events = append(t.Events, engine.TraceEvent{
				Cycle: l.C, Kind: kind, Actor: l.A,
				Msg: l.M, Worm: l.W, Op: l.O, Detail: l.D,
			})
		case "s":
			var l sampleLine
			if err := json.Unmarshal(raw, &l); err != nil {
				return nil, fmt.Errorf("obs: timeline line %d: %w", lineNo, err)
			}
			t.Samples = append(t.Samples, l.Sample)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: timeline read: %w", err)
	}
	return t, nil
}

// WriteTrace writes the trace back out as an ndjson timeline.
func WriteTrace(w io.Writer, t *Trace) error {
	c := &Capture{Stream: w}
	c.SetMeta(t.Meta)
	// Interleave events and samples in cycle order so the stream matches
	// what a live capture would have produced.
	ei, si := 0, 0
	for ei < len(t.Events) || si < len(t.Samples) {
		if si >= len(t.Samples) || (ei < len(t.Events) && t.Events[ei].Cycle <= t.Samples[si].Cycle) {
			c.Emit(t.Events[ei])
			ei++
		} else {
			c.AddSample(t.Samples[si])
			si++
		}
	}
	return c.StreamErr()
}

// Summary condenses the trace's samples (same figures as Capture.Summary).
func (t *Trace) Summary() Summary {
	c := &Capture{Samples: t.Samples}
	return c.Summary()
}
