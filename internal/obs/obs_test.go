package obs_test

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"mdworm/internal/collective"
	"mdworm/internal/core"
	"mdworm/internal/flit"
	"mdworm/internal/obs"
)

// spreadDests is a default-experiment-point destination set: 8 destinations
// spread across a 64-node 3-stage fabric.
var spreadDests = []int{1, 9, 18, 27, 36, 45, 54, 63}

// captureOp runs one multicast op on an observed simulator and returns the
// capture, the measured last-arrival latency, and the op.
func captureOp(t *testing.T, mutate func(*core.Config)) (*obs.Capture, int64, *flit.Op) {
	t.Helper()
	cfg := core.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	sim, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := obs.NewCapture()
	sim.Observe(c)
	lat, op, err := sim.RunOp(0, spreadDests, true, 64, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	return c, lat, op
}

// checkCriticalPath asserts the acceptance property: the critical path's
// phase totals sum exactly to the measured op latency, and its segments
// partition [op start, last arrival) without gaps or overlaps.
func checkCriticalPath(t *testing.T, tr *obs.Trace, opID uint64, wantLatency int64) *obs.CriticalPath {
	t.Helper()
	cp, err := tr.CriticalPath(opID)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Latency != wantLatency {
		t.Fatalf("critical path latency %d, measured %d", cp.Latency, wantLatency)
	}
	var sum int64
	for _, v := range cp.Totals {
		sum += v
	}
	if sum != wantLatency {
		t.Fatalf("phase totals sum to %d, measured latency %d (totals %v)", sum, wantLatency, cp.Totals)
	}
	segs := append([]obs.Segment(nil), cp.Segments...)
	sort.Slice(segs, func(i, j int) bool { return segs[i].From < segs[j].From })
	op := tr.Op(opID)
	cursor := op.Start
	for _, s := range segs {
		if s.From != cursor {
			t.Fatalf("segment gap/overlap at cycle %d (segment starts %d): %+v", cursor, s.From, segs)
		}
		if s.To <= s.From {
			t.Fatalf("empty segment retained: %+v", s)
		}
		cursor = s.To
	}
	if cursor != op.Start+wantLatency {
		t.Fatalf("segments end at %d, want %d", cursor, op.Start+wantLatency)
	}
	return cp
}

// TestCriticalPathSumsToLatency is the ISSUE acceptance criterion, across
// the hardware single-worm scheme, the software forwarding tree (whose
// chains span multiple injections), and the input-buffered architecture.
func TestCriticalPathSumsToLatency(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"cb-hw-bitstring", nil},
		{"cb-sw-binomial", func(c *core.Config) { c.Scheme = collective.SoftwareBinomial }},
		{"cb-sw-separate", func(c *core.Config) { c.Scheme = collective.SoftwareSeparate }},
		{"ib-hw-bitstring", func(c *core.Config) { c.Arch = core.InputBuffer }},
		{"ib-sw-binomial", func(c *core.Config) {
			c.Arch = core.InputBuffer
			c.Scheme = collective.SoftwareBinomial
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, lat, op := captureOp(t, tc.mutate)
			cp := checkCriticalPath(t, c.Trace(), op.ID, lat)
			if lat != op.LastLatency() {
				t.Fatalf("RunOp latency %d != op.LastLatency %d", lat, op.LastLatency())
			}
			if len(cp.Chain) == 0 {
				t.Fatal("empty critical-path chain")
			}
			// Binomial trees forward through intermediate hosts, so their
			// critical path must span more than one injection (separate
			// addressing sends every unicast straight from the source).
			if strings.HasSuffix(tc.name, "sw-binomial") && len(cp.Chain) < 2 {
				t.Fatalf("software tree critical path should span forwards, chain %v", cp.Chain)
			}
			if cp.Totals[obs.PhaseTransfer] <= 0 {
				t.Fatalf("no transfer time attributed: %v", cp.Totals)
			}
		})
	}
}

func TestProbeSamplesOccupancy(t *testing.T) {
	c, _, _ := captureOp(t, nil)
	if len(c.Samples) == 0 {
		t.Fatal("probe recorded no samples")
	}
	sum := c.Summary()
	if sum.Samples != len(c.Samples) {
		t.Fatalf("summary counted %d samples of %d", sum.Samples, len(c.Samples))
	}
	// A fully buffered multidestination worm must have touched the central
	// buffer and fanned out to several readers.
	if sum.PeakCBChunks == 0 {
		t.Fatal("central-buffer occupancy never sampled above zero")
	}
	if sum.PeakBranchRefs < 2 {
		t.Fatalf("branch refcount high-water %d, want >= 2 for an 8-dest multicast", sum.PeakBranchRefs)
	}
	if sum.PeakOccupancy() < sum.PeakCBChunks {
		t.Fatalf("peak occupancy below CB chunk peak: %+v", sum)
	}
}

func TestTimelineRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cfg := core.DefaultConfig()
	sim, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := &obs.Capture{SampleEvery: 32, CaptureEvents: true, Stream: &buf}
	sim.Observe(c)
	lat, op, err := sim.RunOp(0, spreadDests, true, 64, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StreamErr(); err != nil {
		t.Fatal(err)
	}

	tr, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Arch != "central-buffer" || tr.Meta.Scheme != "hw-bitstring" || tr.Meta.Nodes != 64 {
		t.Fatalf("meta did not round-trip: %+v", tr.Meta)
	}
	if len(tr.Events) != len(c.Events) {
		t.Fatalf("read %d events, captured %d", len(tr.Events), len(c.Events))
	}
	if len(tr.Samples) != len(c.Samples) {
		t.Fatalf("read %d samples, captured %d", len(tr.Samples), len(c.Samples))
	}
	// The analyzer must reach identical conclusions from the re-read trace.
	checkCriticalPath(t, tr, op.ID, lat)

	// WriteTrace(ReadTrace(x)) parses again to the same counts.
	var buf2 bytes.Buffer
	if err := obs.WriteTrace(&buf2, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := obs.ReadTrace(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Events) != len(tr.Events) || len(tr2.Samples) != len(tr.Samples) {
		t.Fatal("re-written timeline lost lines")
	}
}

// TestObserverDoesNotPerturb pins that attaching a capture changes nothing
// about simulated behavior: same config, same op, same latency.
func TestObserverDoesNotPerturb(t *testing.T) {
	run := func(observe bool) int64 {
		cfg := core.DefaultConfig()
		sim, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if observe {
			sim.Observe(obs.NewCapture())
		}
		lat, _, err := sim.RunOp(0, spreadDests, true, 64, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		return lat
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("observation perturbed the run: latency %d vs %d", a, b)
	}
}

func TestPhaseSummary(t *testing.T) {
	c, lat, _ := captureOp(t, nil)
	totals, attributed, skipped := c.Trace().PhaseSummary()
	if attributed != 1 || skipped != 0 {
		t.Fatalf("attributed=%d skipped=%d, want 1/0", attributed, skipped)
	}
	var sum int64
	for _, v := range totals {
		sum += v
	}
	if sum != lat {
		t.Fatalf("phase summary sums to %d, want %d", sum, lat)
	}
}

func TestPerfettoExport(t *testing.T) {
	c, _, _ := captureOp(t, nil)
	var buf bytes.Buffer
	if err := obs.WritePerfetto(&buf, c.Trace()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not JSON: %v", err)
	}
	var haveX, haveC bool
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			haveX = true
		case "C":
			haveC = true
		}
	}
	if !haveX || !haveC {
		t.Fatalf("perfetto export missing span (X=%v) or counter (C=%v) events", haveX, haveC)
	}
}

func TestCSVExport(t *testing.T) {
	c, _, _ := captureOp(t, nil)
	var buf bytes.Buffer
	if err := obs.WriteCSV(&buf, c.Trace()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(c.Samples) {
		t.Fatalf("CSV has %d lines, want header + %d samples", len(lines), len(c.Samples))
	}
	if !strings.HasPrefix(lines[0], "cycle,link_flits") {
		t.Fatalf("bad CSV header: %q", lines[0])
	}
}
