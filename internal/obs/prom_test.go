package obs

import (
	"strings"
	"testing"
)

// TestLabeledGauge: one sample line per label set, with backslash, quote and
// newline escaped per the text exposition format; an empty family still
// writes its HELP/TYPE header.
func TestLabeledGauge(t *testing.T) {
	var b strings.Builder
	p := &PromWriter{W: &b}
	p.LabeledGauge("mdwd_peer_healthy", "Peer health.", []LabeledSample{
		{Labels: [][2]string{{"peer", "http://w1:8080"}}, Value: 1},
		{Labels: [][2]string{{"peer", `a"b\c` + "\nd"}, {"zone", "z1"}}, Value: 0},
	})
	p.LabeledGauge("mdwd_empty_family", "Nothing yet.", nil)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP mdwd_peer_healthy Peer health.\n",
		"# TYPE mdwd_peer_healthy gauge\n",
		`mdwd_peer_healthy{peer="http://w1:8080"} 1` + "\n",
		`mdwd_peer_healthy{peer="a\"b\\c\nd",zone="z1"} 0` + "\n",
		"# TYPE mdwd_empty_family gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "mdwd_empty_family") {
			t.Errorf("empty family wrote a sample line %q", line)
		}
	}
}
