package obs

import (
	"fmt"
	"sort"

	"mdworm/internal/engine"
)

// OpSpan is the reconstructed lifetime of one collective operation.
type OpSpan struct {
	ID        uint64
	Src       int
	NumDests  int
	Scheme    string
	Start     int64 // op-start cycle
	End       int64 // op-done cycle (meaningful when Completed)
	Latency   int64 // last-arrival latency reported at op-done
	Msgs      int   // messages the op sent (reported at op-done)
	Dropped   int   // destinations dropped (faulted runs)
	Completed bool
}

// Delivery is one complete message arrival at a NIC.
type Delivery struct {
	Cycle int64
	Actor string // "nicN"
}

// Interval is a half-open cycle range [From, To).
type Interval struct {
	From, To int64
}

// Len returns the interval length in cycles.
func (iv Interval) Len() int64 { return iv.To - iv.From }

// Decode is one routing decision a message's worm took at a switch.
type Decode struct {
	Cycle    int64
	Branches int
}

// MsgSpan is the reconstructed lifetime of one message: injection, the
// deliveries of its (possibly replicated) worms, and the waits and routing
// decisions observed along the way.
type MsgSpan struct {
	ID          uint64
	Op          uint64
	Inject      int64
	InjectActor string // "nicN" that injected it
	Injected    bool
	Len         int // message length in flits (header + payload)
	Delivers    []Delivery
	Waits       []Interval // reservation (admit) and grant waits
	Decodes     []Decode
	Forwarded   bool // spawned software-forwarding children
}

// traceIndex is the span view of a trace, built once per Trace.
type traceIndex struct {
	ops      map[uint64]*OpSpan
	msgs     map[uint64]*MsgSpan
	opMsgs   map[uint64][]*MsgSpan // op id -> its messages, inject order
	opOrder  []uint64              // op ids in op-start order
	badSpans int                   // events referencing ids never started
}

// index builds (and caches) the span view.
func (t *Trace) index() *traceIndex {
	if t.idx != nil {
		return t.idx
	}
	ix := &traceIndex{
		ops:    make(map[uint64]*OpSpan),
		msgs:   make(map[uint64]*MsgSpan),
		opMsgs: make(map[uint64][]*MsgSpan),
	}
	msg := func(e engine.TraceEvent) *MsgSpan {
		m := ix.msgs[e.Msg]
		if m == nil {
			m = &MsgSpan{ID: e.Msg, Op: e.Op}
			ix.msgs[e.Msg] = m
		}
		if m.Op == 0 {
			m.Op = e.Op
		}
		return m
	}
	for _, e := range t.Events {
		switch e.Kind {
		case engine.TraceOpStart:
			op := &OpSpan{ID: e.Op, Start: e.Cycle, Src: -1}
			if v, ok := detailInt(e.Detail, "src"); ok {
				op.Src = int(v)
			}
			if l, ok := detailList(e.Detail, "dests"); ok {
				op.NumDests = len(l)
			}
			if s, ok := detailString(e.Detail, "scheme"); ok {
				op.Scheme = s
			}
			ix.ops[e.Op] = op
			ix.opOrder = append(ix.opOrder, e.Op)
		case engine.TraceOpDone:
			op := ix.ops[e.Op]
			if op == nil {
				ix.badSpans++
				continue
			}
			op.End = e.Cycle
			op.Completed = true
			if v, ok := detailInt(e.Detail, "latency"); ok {
				op.Latency = v
			}
			if v, ok := detailInt(e.Detail, "msgs"); ok {
				op.Msgs = int(v)
			}
			if v, ok := detailInt(e.Detail, "dropped"); ok {
				op.Dropped = int(v)
			}
		case engine.TraceInject:
			m := msg(e)
			m.Inject = e.Cycle
			m.InjectActor = e.Actor
			m.Injected = true
			if v, ok := detailInt(e.Detail, "len"); ok {
				m.Len = int(v)
			}
			ix.opMsgs[m.Op] = append(ix.opMsgs[m.Op], m)
		case engine.TraceDeliver:
			m := msg(e)
			m.Delivers = append(m.Delivers, Delivery{Cycle: e.Cycle, Actor: e.Actor})
		case engine.TraceAdmit, engine.TraceGrant:
			if w, ok := detailInt(e.Detail, "waited"); ok && w > 0 {
				m := msg(e)
				m.Waits = append(m.Waits, Interval{From: e.Cycle - w, To: e.Cycle})
			}
		case engine.TraceDecode:
			m := msg(e)
			if b, ok := detailInt(e.Detail, "branches"); ok {
				m.Decodes = append(m.Decodes, Decode{Cycle: e.Cycle, Branches: int(b)})
			}
		case engine.TraceForward:
			msg(e).Forwarded = true
		}
	}
	t.idx = ix
	return ix
}

// Ops returns every op span in start order.
func (t *Trace) Ops() []*OpSpan {
	ix := t.index()
	out := make([]*OpSpan, 0, len(ix.opOrder))
	for _, id := range ix.opOrder {
		out = append(out, ix.ops[id])
	}
	return out
}

// Op returns the span of one op (nil if the trace never saw it start).
func (t *Trace) Op(id uint64) *OpSpan { return t.index().ops[id] }

// OpMessages returns the messages of an op in injection order.
func (t *Trace) OpMessages(id uint64) []*MsgSpan {
	ms := t.index().opMsgs[id]
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].Inject < ms[j].Inject })
	return ms
}

// SlowestOp returns the completed, undegraded op with the largest
// last-arrival latency (nil when none completed).
func (t *Trace) SlowestOp() *OpSpan {
	var best *OpSpan
	for _, op := range t.Ops() {
		if !op.Completed || op.Dropped > 0 {
			continue
		}
		if best == nil || op.Latency > best.Latency {
			best = op
		}
	}
	return best
}

// String renders an op span as one table row fragment.
func (op *OpSpan) String() string {
	state := "incomplete"
	if op.Completed {
		state = fmt.Sprintf("latency=%d", op.Latency)
	}
	return fmt.Sprintf("op %d src=%d dests=%d msgs=%d start=%d %s",
		op.ID, op.Src, op.NumDests, op.Msgs, op.Start, state)
}
