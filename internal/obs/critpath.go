package obs

import (
	"fmt"
	"sort"
)

// Phase labels one kind of time on an operation's last-arrival critical
// path. Together the phases tile the op's lifetime exactly: the sum of all
// phase totals equals the measured last-arrival latency.
type Phase string

// Critical-path phases, in canonical report order.
const (
	// PhaseHostSend is op creation to first injection: send overhead and
	// NIC send-queue time at the source.
	PhaseHostSend Phase = "host-send"
	// PhaseForward is delivery at a software-forwarding node to the
	// re-injection of the forwarded message: receive+send overheads and
	// queueing at the intermediate host.
	PhaseForward Phase = "forward"
	// PhaseReserveWait is time a worm on the path spent waiting for a
	// central-buffer reservation or an input-buffer output grant.
	PhaseReserveWait Phase = "reserve-wait"
	// PhaseReplication is routing/decode time at switches where the worm
	// forked into multiple branches (the multidestination replication cost).
	PhaseReplication Phase = "replication"
	// PhaseDrain is the tail of the pipeline: the cycles after the head
	// reached the destination while the body was still arriving.
	PhaseDrain Phase = "drain"
	// PhaseTransfer is everything else: heads moving through links,
	// single-branch decodes, and cut-through switch traversal.
	PhaseTransfer Phase = "transfer"
)

// Phases lists every phase in canonical report order.
var Phases = []Phase{
	PhaseHostSend, PhaseForward, PhaseReserveWait,
	PhaseReplication, PhaseDrain, PhaseTransfer,
}

// Segment is one attributed slice of a critical path.
type Segment struct {
	Phase Phase
	Interval
	// Msg is the message whose lifetime the slice belongs to.
	Msg uint64
}

// CriticalPath is the chain of messages (source injection through software
// forwards) that produced an op's last arrival — the Nupairoj/Ni latency —
// with every cycle of it attributed to a phase.
type CriticalPath struct {
	Op uint64
	// Latency is the last-arrival latency the path explains; the phase
	// totals sum to it exactly.
	Latency int64
	// Chain lists the message ids from the source to the last-arriving
	// destination.
	Chain []uint64
	// Segments tile [op start, last arrival) in cycle order.
	Segments []Segment
	// Totals is the per-phase cycle count.
	Totals map[Phase]int64
}

// CriticalPath reconstructs the last-arrival critical path of an op: it
// finds the op's final delivery, walks the forwarding chain back to the
// source injection, and attributes every cycle in between. Attribution
// within a message's network transfer is by priority — reservation/grant
// waits first, then replication (multi-branch decode) time, then pipeline
// drain — with the remainder counted as transfer.
func (t *Trace) CriticalPath(opID uint64) (*CriticalPath, error) {
	ix := t.index()
	op := ix.ops[opID]
	if op == nil {
		return nil, fmt.Errorf("obs: op %d not in trace", opID)
	}
	if !op.Completed {
		return nil, fmt.Errorf("obs: op %d incomplete; no critical path", opID)
	}
	msgs := ix.opMsgs[opID]
	if len(msgs) == 0 {
		return nil, fmt.Errorf("obs: op %d has no injected messages", opID)
	}

	type hop struct {
		m *MsgSpan
		d Delivery
	}
	// The op's last arrival is its latest delivery event.
	var last hop
	for _, m := range msgs {
		for _, d := range m.Delivers {
			if last.m == nil || d.Cycle > last.d.Cycle {
				last = hop{m, d}
			}
		}
	}
	if last.m == nil {
		return nil, fmt.Errorf("obs: op %d has no deliveries", opID)
	}

	// Walk the chain back: a message injected at a non-source NIC was
	// forwarded there, so its cause is the op's latest delivery at that NIC
	// no later than the injection.
	srcActor := fmt.Sprintf("nic%d", op.Src)
	var rev []hop
	for cur := last; ; {
		rev = append(rev, cur)
		if cur.m.InjectActor == srcActor {
			break
		}
		if len(rev) > len(msgs) {
			return nil, fmt.Errorf("obs: op %d: forwarding chain does not terminate at src %s", opID, srcActor)
		}
		var prev hop
		for _, m := range msgs {
			for _, d := range m.Delivers {
				if d.Actor != cur.m.InjectActor || d.Cycle > cur.m.Inject {
					continue
				}
				if prev.m == nil || d.Cycle > prev.d.Cycle {
					prev = hop{m, d}
				}
			}
		}
		if prev.m == nil {
			return nil, fmt.Errorf("obs: op %d: no delivery at %s before cycle %d; chain broken",
				opID, cur.m.InjectActor, cur.m.Inject)
		}
		cur = prev
	}
	chain := make([]hop, len(rev))
	for i, h := range rev {
		chain[len(rev)-1-i] = h
	}

	end := last.d.Cycle
	cp := &CriticalPath{Op: opID, Latency: end - op.Start, Totals: map[Phase]int64{}}
	add := func(ph Phase, iv Interval, msg uint64) {
		if iv.To > iv.From {
			cp.Segments = append(cp.Segments, Segment{Phase: ph, Interval: iv, Msg: msg})
			cp.Totals[ph] += iv.Len()
		}
	}

	add(PhaseHostSend, Interval{From: op.Start, To: chain[0].m.Inject}, chain[0].m.ID)
	for i, h := range chain {
		if i > 0 {
			add(PhaseForward, Interval{From: chain[i-1].d.Cycle, To: h.m.Inject}, h.m.ID)
		}
		attributeTransfer(t.Meta, h.m, h.d, add)
		cp.Chain = append(cp.Chain, h.m.ID)
	}
	sort.SliceStable(cp.Segments, func(i, j int) bool { return cp.Segments[i].From < cp.Segments[j].From })
	return cp, nil
}

// attributeTransfer splits a message's network transfer [inject, deliver)
// into phases by priority: waits, then replication decodes, then drain, then
// the transfer remainder. The pieces partition the window exactly.
func attributeTransfer(meta Meta, m *MsgSpan, d Delivery, add func(Phase, Interval, uint64)) {
	seg := Interval{From: m.Inject, To: d.Cycle}
	if seg.To <= seg.From {
		return
	}
	var claimed intervalSet
	claim := func(ph Phase, ivs []Interval) {
		for _, iv := range mergeIntervals(ivs) {
			iv = clip(iv, seg)
			for _, got := range claimed.claim(iv) {
				add(ph, got, m.ID)
			}
		}
	}

	claim(PhaseReserveWait, m.Waits)

	if rd := int64(meta.RouteDelay); rd > 0 {
		var reps []Interval
		for _, dc := range m.Decodes {
			if dc.Branches > 1 {
				reps = append(reps, Interval{From: dc.Cycle - rd, To: dc.Cycle})
			}
		}
		claim(PhaseReplication, reps)
	}

	if m.Len > 1 {
		claim(PhaseDrain, []Interval{{From: d.Cycle - int64(m.Len-1), To: d.Cycle}})
	}

	for _, iv := range claimed.complement(seg) {
		add(PhaseTransfer, iv, m.ID)
	}
}

// PhaseSummary aggregates critical-path phase totals across every completed,
// undegraded op. It returns the totals, the number of ops attributed, and
// the number skipped (incomplete, degraded, or with a broken chain).
func (t *Trace) PhaseSummary() (totals map[Phase]int64, attributed, skipped int) {
	totals = map[Phase]int64{}
	for _, op := range t.Ops() {
		if !op.Completed || op.Dropped > 0 {
			skipped++
			continue
		}
		cp, err := t.CriticalPath(op.ID)
		if err != nil {
			skipped++
			continue
		}
		for ph, v := range cp.Totals {
			totals[ph] += v
		}
		attributed++
	}
	return totals, attributed, skipped
}

// clip intersects iv with bounds.
func clip(iv, bounds Interval) Interval {
	if iv.From < bounds.From {
		iv.From = bounds.From
	}
	if iv.To > bounds.To {
		iv.To = bounds.To
	}
	return iv
}

// mergeIntervals sorts and coalesces overlapping or touching intervals,
// dropping empty ones.
func mergeIntervals(ivs []Interval) []Interval {
	var out []Interval
	for _, iv := range ivs {
		if iv.To > iv.From {
			out = append(out, iv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	merged := out[:0]
	for _, iv := range out {
		if n := len(merged); n > 0 && iv.From <= merged[n-1].To {
			if iv.To > merged[n-1].To {
				merged[n-1].To = iv.To
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

// intervalSet is a sorted, disjoint set of claimed intervals.
type intervalSet struct {
	ivs []Interval // sorted by From, disjoint
}

// claim marks iv as claimed and returns the parts that were not already.
func (s *intervalSet) claim(iv Interval) []Interval {
	fresh := subtract(iv, s.ivs)
	if len(fresh) > 0 {
		s.ivs = mergeIntervals(append(s.ivs, fresh...))
	}
	return fresh
}

// complement returns seg minus the claimed set.
func (s *intervalSet) complement(seg Interval) []Interval {
	return subtract(seg, s.ivs)
}

// subtract returns iv minus the sorted disjoint set.
func subtract(iv Interval, set []Interval) []Interval {
	var out []Interval
	cur := iv
	for _, sv := range set {
		if cur.From >= cur.To {
			return out
		}
		if sv.To <= cur.From {
			continue
		}
		if sv.From >= cur.To {
			break
		}
		if sv.From > cur.From {
			out = append(out, Interval{From: cur.From, To: sv.From})
		}
		if sv.To >= cur.To {
			return out
		}
		cur.From = sv.To
	}
	if cur.To > cur.From {
		out = append(out, cur)
	}
	return out
}
