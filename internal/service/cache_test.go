package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func key(i int) string { return fmt.Sprintf("%064x", i) }

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key(1), []byte("one"))
	c.Put(key(2), []byte("two"))
	if _, ok := c.Get(key(1)); !ok { // 1 becomes most recent
		t.Fatal("lost entry 1")
	}
	c.Put(key(3), []byte("three")) // evicts 2, the least recently used
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("entry 2 survived eviction")
	}
	for _, i := range []int{1, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Fatalf("entry %d evicted wrongly", i)
		}
	}
	hits, misses, entries := c.Stats()
	if hits != 3 || misses != 1 || entries != 2 {
		t.Fatalf("stats = %d/%d/%d, want 3/1/2", hits, misses, entries)
	}
}

func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key(7), []byte("persisted"))

	// A fresh cache over the same directory serves the entry from disk.
	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key(7))
	if !ok || !bytes.Equal(got, []byte("persisted")) {
		t.Fatalf("disk read = %q, %v", got, ok)
	}
	hits, misses, _ := c2.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("disk hit not counted: %d/%d", hits, misses)
	}

	// Evicted entries stay readable from disk.
	small, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	small.Put(key(8), []byte("a"))
	small.Put(key(9), []byte("b")) // evicts 8 from memory
	if got, ok := small.Get(key(8)); !ok || !bytes.Equal(got, []byte("a")) {
		t.Fatalf("evicted entry not recovered from disk: %q, %v", got, ok)
	}

	// No stray temp files left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, "put-*"))
	if len(matches) != 0 {
		t.Fatalf("temp files left: %v", matches)
	}
}

// Keys that are not hex content addresses must never touch the filesystem.
func TestCacheRejectsNonHexDiskKeys(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("../escape", []byte("x"))
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.json")); err == nil {
		t.Fatal("key escaped the cache directory")
	}
	if got, ok := c.Get("../escape"); !ok || !bytes.Equal(got, []byte("x")) {
		t.Fatal("non-hex key unusable in memory")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c, err := NewCache(16, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(i % 8)
				want := []byte(fmt.Sprintf("value-%d", i%8))
				if got, ok := c.Get(k); ok && !bytes.Equal(got, want) {
					t.Errorf("%s: got %q", k, got)
					return
				}
				c.Put(k, want)
			}
		}(g)
	}
	wg.Wait()
}
