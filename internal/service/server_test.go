package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mdworm/internal/obs"
)

// tinyRun is a request body that simulates in a few milliseconds: a 16-node
// fabric with short windows.
func tinyRun(seed uint64) string {
	return fmt.Sprintf(`{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.001,"seed":%d}}`, seed)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Drain(10 * time.Second) })
	return s, ts
}

func postRun(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func metric(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var n int64
		if _, err := fmt.Sscanf(sc.Text(), name+" %d", &n); err == nil {
			return n
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestRunCacheHitByteIdentical is the tentpole guarantee: repeating an
// identical POST /v1/run is a cache hit (counter increments) whose body is
// byte-identical to the original miss — even when the repeat spells the
// config differently.
func TestRunCacheHitByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp1, body1 := postRun(t, ts.URL, tinyRun(3))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("miss: %d %s", resp1.StatusCode, body1)
	}
	if h := resp1.Header.Get("X-Mdwd-Cache"); h != "miss" {
		t.Fatalf("first request: X-Mdwd-Cache = %q", h)
	}
	hitsBefore := metric(t, ts.URL, "mdwd_cache_hits")

	// Same config, different JSON spelling: extra whitespace, reordered
	// fields, and a spelled-out default.
	respelled := `{"config":{"seed":3,  "op_rate":0.001,"drain_cycles":50000,"measure_cycles":800,"warmup_cycles":200,"degree":4,"stages":2,"arch":"cb"}}`
	resp2, body2 := postRun(t, ts.URL, respelled)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("hit: %d %s", resp2.StatusCode, body2)
	}
	if h := resp2.Header.Get("X-Mdwd-Cache"); h != "hit" {
		t.Fatalf("second request: X-Mdwd-Cache = %q", h)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit not byte-identical:\n%s\n%s", body1, body2)
	}
	if got := metric(t, ts.URL, "mdwd_cache_hits"); got != hitsBefore+1 {
		t.Fatalf("cache hits = %d, want %d", got, hitsBefore+1)
	}

	var rr RunResponse
	if err := json.Unmarshal(body1, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Hash == "" || rr.Results.Nodes != 16 {
		t.Fatalf("response incomplete: %+v", rr)
	}
	if rr.Hash != resp1.Header.Get("X-Mdwd-Hash") || rr.Hash != resp2.Header.Get("X-Mdwd-Hash") {
		t.Fatal("hash header mismatch")
	}
}

// TestConcurrentMixedClients hammers the daemon with interleaved hits and
// misses across several distinct configs; every response for a given config
// must be byte-identical regardless of which client populated the cache.
// (go test -race is the interesting mode, and CI runs it.)
func TestConcurrentMixedClients(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	const configs = 4
	const clients = 8
	const perClient = 6

	var mu sync.Mutex
	bodies := make(map[int][][]byte)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				cfg := (c + i) % configs
				resp, err := http.Post(ts.URL+"/v1/run", "application/json",
					strings.NewReader(tinyRun(uint64(100+cfg))))
				if err != nil {
					t.Error(err)
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("config %d: %d %v %s", cfg, resp.StatusCode, err, b)
					return
				}
				mu.Lock()
				bodies[cfg] = append(bodies[cfg], b)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	total := int64(0)
	for cfg, bs := range bodies {
		total += int64(len(bs))
		for _, b := range bs[1:] {
			if !bytes.Equal(bs[0], b) {
				t.Fatalf("config %d: divergent responses", cfg)
			}
		}
	}
	if total != clients*perClient {
		t.Fatalf("lost responses: %d/%d", total, clients*perClient)
	}
	hits := metric(t, ts.URL, "mdwd_cache_hits")
	misses := metric(t, ts.URL, "mdwd_cache_misses")
	if hits+misses != total {
		t.Fatalf("hits %d + misses %d != requests %d", hits, misses, total)
	}
	if hits < total-2*configs { // concurrent first misses per config are legal
		t.Fatalf("suspiciously few hits: %d of %d", hits, total)
	}
}

// TestCycleBudget: a config whose cycle ceiling exceeds the budget fails
// with a structured error — and leaves the daemon fully usable.
func TestCycleBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxCycles: 100_000})

	// Per-request budget tighter than the config's ceiling.
	resp, body := postRun(t, ts.URL, `{"config":{"stages":2},"cycle_budget":1000}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var e struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != "cycle_budget_exceeded" {
		t.Fatalf("error body: %s (%v)", body, err)
	}

	// Server-wide cap: the default windows (225k cycles) exceed 100k.
	resp, body = postRun(t, ts.URL, `{"config":{}}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("server cap not enforced: %d %s", resp.StatusCode, body)
	}

	// Other jobs are unaffected: a request inside the budget succeeds.
	resp, body = postRun(t, ts.URL, tinyRun(1)+"")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-budget run failed: %d %s", resp.StatusCode, body)
	}
}

// TestInvalidConfig: resolution and validation failures are structured
// errors, not 500s.
func TestInvalidConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		body   string
		status int
	}{
		{`{"config":{"arch":"quantum"}}`, http.StatusBadRequest},
		{`{"config":{"degree":100,"stages":2}}`, http.StatusUnprocessableEntity},
		{`{"config":{"load":0.1,"op_rate":0.1}}`, http.StatusBadRequest},
		{`{"config":{"bogus_field":1}}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, body := postRun(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d want %d (%s)", tc.body, resp.StatusCode, tc.status, body)
			continue
		}
		var e struct {
			Error apiError `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code == "" {
			t.Errorf("%s: unstructured error %s", tc.body, body)
		}
	}
}

// TestExperimentStream drives POST /v1/experiment and checks the chunked
// JSON-line protocol: start, per-point progress, the rendered table, done.
func TestExperimentStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, err := http.Post(ts.URL+"/v1/experiment", "application/json",
		strings.NewReader(`{"id":"a8","quick":true,"workers":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	jobID := resp.Header.Get("X-Mdwd-Job")

	var kinds []string
	var points, tables int
	var final StreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Type)
		switch ev.Type {
		case "point":
			points++
			if ev.Tag == "" || ev.Err != "" {
				t.Fatalf("bad point event: %+v", ev)
			}
		case "table":
			tables++
			if !strings.Contains(ev.Text, "A8") {
				t.Fatalf("table text: %q", ev.Text)
			}
		case "done":
			final = ev
		case "error":
			t.Fatalf("stream error: %+v", ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(kinds) == 0 || kinds[0] != "start" || kinds[len(kinds)-1] != "done" {
		t.Fatalf("stream shape: %v", kinds)
	}
	if points != 6 || tables != 1 { // quick a8: 3 schemes x 2 sizes
		t.Fatalf("points=%d tables=%d", points, tables)
	}
	if final.Points != points || final.Cycles <= 0 {
		t.Fatalf("done event: %+v", final)
	}

	// The sweep ran as a tracked job and its work reached the counters.
	jresp, err := http.Get(ts.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	if err := json.NewDecoder(jresp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if jv.State != JobDone || jv.Kind != "experiment" || jv.Detail != "a8" || jv.Points != points {
		t.Fatalf("job view: %+v", jv)
	}
	if got := metric(t, ts.URL, "mdwd_points_total"); got < int64(points) {
		t.Fatalf("points_total = %d < %d", got, points)
	}
}

// TestExperimentUnknownID rejects unregistered ids with 404.
func TestExperimentUnknownID(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/experiment", "application/json",
		strings.NewReader(`{"id":"zz"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestExperimentsList returns the registry in definition order.
func TestExperimentsList(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	ids := out["experiments"]
	if len(ids) < 19 || ids[0] != "e1" {
		t.Fatalf("experiments: %v", ids)
	}
}

// TestJobsEndpoint covers the job listing and the 404 path.
func TestJobsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	postRun(t, ts.URL, tinyRun(9))

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string][]JobView
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out["jobs"]) != 1 || out["jobs"][0].State != JobDone || out["jobs"][0].Kind != "run" {
		t.Fatalf("jobs: %+v", out["jobs"])
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
}

// TestDrainRejectsNewWork: after BeginDrain the daemon refuses new jobs and
// reports draining on /healthz, while completed state stays readable.
func TestDrainRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	postRun(t, ts.URL, tinyRun(11))
	s.BeginDrain()

	resp, body := postRun(t, ts.URL, tinyRun(12))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining run: %d %s", resp.StatusCode, body)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", hresp.StatusCode)
	}
	// Read-only endpoints still serve.
	if got := metric(t, ts.URL, "mdwd_jobs_done"); got != 1 {
		t.Fatalf("jobs_done = %d", got)
	}
	if !s.Drain(10 * time.Second) {
		t.Fatal("drain did not complete")
	}
}

// TestRunTimeoutBackground: a handler that outwaits its deadline returns a
// structured 504 naming the job; the job finishes in the background and the
// repeated request is then served from the cache.
func TestRunTimeoutBackground(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RunTimeout: time.Nanosecond})

	body := tinyRun(21)
	resp, b := postRun(t, ts.URL, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var e struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(b, &e); err != nil || e.Error.Code != "timeout" || e.Error.Job == "" {
		t.Fatalf("timeout body: %s", b)
	}

	// The job keeps running and caches its result; the retry hits.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, b = postRun(t, ts.URL, body)
		if resp.StatusCode == http.StatusOK {
			if h := resp.Header.Get("X-Mdwd-Cache"); h != "hit" {
				t.Fatalf("retry not a cache hit: %q", h)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background job never cached: %d %s", resp.StatusCode, b)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunFaultPlanCached: a fault-injected run round-trips through the
// cache, and the structured and spec spellings of the same plan resolve to
// the same key — the plan is part of the canonical config.
func TestRunFaultPlanCached(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	spec := `{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.001,"seed":3,"faults_spec":"nic-stall@300+200:n3;link-down@400:sw0.p0"}}`
	resp1, body1 := postRun(t, ts.URL, spec)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("miss: %d %s", resp1.StatusCode, body1)
	}
	if h := resp1.Header.Get("X-Mdwd-Cache"); h != "miss" {
		t.Fatalf("first faulted request: X-Mdwd-Cache = %q", h)
	}
	var rr RunResponse
	if err := json.Unmarshal(body1, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Results.DestsDropped == 0 {
		t.Fatalf("severed attachment dropped nothing: %s", body1)
	}
	if rr.Results.InvariantViolations != 0 {
		t.Fatalf("faulted run violated invariants: %s", body1)
	}

	// The same plan, structured and in a different event order.
	structured := `{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.001,"seed":3,"faults":{"events":[{"kind":"link-down","at":400,"switch":0},{"kind":"nic-stall","at":300,"duration":200,"node":3}]}}}`
	resp2, body2 := postRun(t, ts.URL, structured)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("hit: %d %s", resp2.StatusCode, body2)
	}
	if h := resp2.Header.Get("X-Mdwd-Cache"); h != "hit" {
		t.Fatalf("structured spelling missed the cache: X-Mdwd-Cache = %q", h)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("faulted cache hit not byte-identical:\n%s\n%s", body1, body2)
	}

	// The fault-free config is a different key entirely.
	resp3, _ := postRun(t, ts.URL, tinyRun(3))
	if h := resp3.Header.Get("X-Mdwd-Cache"); h != "miss" {
		t.Fatalf("fault-free config shared the faulted key: X-Mdwd-Cache = %q", h)
	}
}

// TestRunDeadlockStructuredError: a config whose fault plan wedges the
// fabric returns a structured 422 deadlock error, surfaces in the deadlock
// counter, and leaves the pool fully usable.
func TestRunDeadlockStructuredError(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Permanently freeze every up port of stage-0 switch sw0: ascending
	// worms wedge and the watchdog converts the stall into a DeadlockError.
	wedge := `{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.01,"seed":3,"watchdog_limit":10000,"faults_spec":"port-stuck@300:sw0.p4;port-stuck@300:sw0.p5;port-stuck@300:sw0.p6;port-stuck@300:sw0.p7"}}`
	resp, body := postRun(t, ts.URL, wedge)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var e struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != "deadlock" || e.Error.Job == "" {
		t.Fatalf("error body: %s (%v)", body, err)
	}
	if !strings.Contains(e.Error.Message, "no progress") {
		t.Fatalf("deadlock message: %q", e.Error.Message)
	}
	if got := metric(t, ts.URL, "mdwd_deadlocks_total"); got != 1 {
		t.Fatalf("mdwd_deadlocks_total = %d", got)
	}
	// Failures are not cached: the retry runs again and fails the same way.
	resp, body = postRun(t, ts.URL, wedge)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("retry status %d: %s", resp.StatusCode, body)
	}
	// The job slot is free again: a healthy run still succeeds.
	resp, body = postRun(t, ts.URL, tinyRun(77))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pool poisoned by deadlock: %d %s", resp.StatusCode, body)
	}
	if got := metric(t, ts.URL, "mdwd_invariant_violations_total"); got != 0 {
		t.Fatalf("mdwd_invariant_violations_total = %d", got)
	}
}

// TestRunFaultErrors: malformed fault requests are structured client errors.
func TestRunFaultErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		body   string
		status int
		code   string
	}{
		// Both spellings at once.
		{`{"config":{"stages":2,"faults_spec":"link-down@1:sw0.p0","faults":{"events":[{"kind":"link-down","at":1}]}}}`,
			http.StatusBadRequest, "bad_config"},
		// Unparseable spec.
		{`{"config":{"stages":2,"faults_spec":"flood@10:sw0.p0"}}`,
			http.StatusBadRequest, "bad_config"},
		// Parseable but inapplicable: switch out of range for the fabric.
		{`{"config":{"stages":2,"faults_spec":"link-down@1:sw999.p0"}}`,
			http.StatusUnprocessableEntity, "invalid_config"},
		// cb-shrink beyond the floor of the default central buffer.
		{`{"config":{"stages":2,"faults_spec":"cb-shrink@1:sw0*8"}}`,
			http.StatusUnprocessableEntity, "invalid_config"},
	} {
		resp, body := postRun(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d want %d (%s)", tc.body, resp.StatusCode, tc.status, body)
			continue
		}
		var e struct {
			Error apiError `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != tc.code {
			t.Errorf("%s: error %s, want code %q", tc.body, body, tc.code)
		}
	}
}

// TestMetricsPrometheusFormat: /metrics serves the Prometheus text exposition
// format — versioned content type, HELP/TYPE headers for every family, valid
// sample lines, and well-formed (cumulative) histograms — while keeping the
// historical metric names.
func TestMetricsPrometheusFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if resp, body := postRun(t, ts.URL, tinyRun(5)); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type %q, want %q", ct, obs.PromContentType)
	}

	types := map[string]string{}          // family -> TYPE
	samples := map[string]float64{}       // sample name (no labels) -> last value
	buckets := map[string][]float64{}     // histogram family -> cumulative bucket counts
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	helpRe := regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := typeRe.FindStringSubmatch(line); m != nil {
				types[m[1]] = m[2]
			} else if helpRe.MatchString(line) {
				// fine
			} else {
				t.Fatalf("malformed comment line: %q", line)
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[m[1]] = v
		// Every sample must belong to a declared family (histograms declare
		// the base name; samples append _bucket/_sum/_count).
		base := m[1]
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(m[1], suf) && types[strings.TrimSuffix(m[1], suf)] == "histogram" {
				base = strings.TrimSuffix(m[1], suf)
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no # TYPE declaration", m[1])
		}
		if strings.HasSuffix(m[1], "_bucket") {
			buckets[strings.TrimSuffix(m[1], "_bucket")] = append(buckets[strings.TrimSuffix(m[1], "_bucket")], v)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Historical names survive the format change.
	for name, typ := range map[string]string{
		"mdwd_up_seconds":             "gauge",
		"mdwd_workers":                "gauge",
		"mdwd_jobs_done":              "gauge",
		"mdwd_cache_hits":             "counter",
		"mdwd_points_total":           "counter",
		"mdwd_simulated_cycles_total": "counter",
		"mdwd_busy_seconds":           "counter",
		"mdwd_job_seconds":            "histogram",
		"mdwd_run_occupancy":          "histogram",
	} {
		if types[name] != typ {
			t.Errorf("%s: TYPE %q, want %q", name, types[name], typ)
		}
	}
	if samples["mdwd_points_total"] != 1 || samples["mdwd_jobs_done"] != 1 {
		t.Fatalf("counters after one run: points=%v done=%v",
			samples["mdwd_points_total"], samples["mdwd_jobs_done"])
	}

	// Histogram invariants: one observation, cumulative non-decreasing
	// buckets ending at _count, +Inf bucket == _count.
	for _, h := range []string{"mdwd_job_seconds", "mdwd_run_occupancy"} {
		count := samples[h+"_count"]
		bs := buckets[h]
		if len(bs) == 0 {
			t.Fatalf("%s: no buckets", h)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i] < bs[i-1] {
				t.Fatalf("%s: buckets not cumulative: %v", h, bs)
			}
		}
		if bs[len(bs)-1] != count {
			t.Fatalf("%s: +Inf bucket %v != count %v", h, bs[len(bs)-1], count)
		}
	}
	if samples["mdwd_job_seconds_count"] != 1 {
		t.Fatalf("mdwd_job_seconds_count = %v after one job", samples["mdwd_job_seconds_count"])
	}
}

// TestRunRecordsOccupancy: a completed run feeds the occupancy histogram —
// the per-job peak lands in /metrics without any observability request.
func TestRunRecordsOccupancy(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	// A higher-rate run so the coarse 256-cycle probe catches non-empty
	// buffers deterministically.
	body := `{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.01,"seed":3}}`
	if resp, b := postRun(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, b)
	}
	_, occ := s.pool.Histograms()
	if occ.N() != 1 || occ.Sum() <= 0 {
		t.Fatalf("occupancy histogram after one busy run: n=%d sum=%g", occ.N(), occ.Sum())
	}
}

// TestCacheDirSharedAcrossServers: with -cache-dir, a second daemon serves
// the first daemon's results byte-identically.
func TestCacheDirSharedAcrossServers(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	resp, body1 := postRun(t, ts1.URL, tinyRun(31))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("miss: %d %s", resp.StatusCode, body1)
	}

	_, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	resp, body2 := postRun(t, ts2.URL, tinyRun(31))
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Mdwd-Cache") != "hit" {
		t.Fatalf("restart hit: %d %q", resp.StatusCode, resp.Header.Get("X-Mdwd-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("persisted result not byte-identical")
	}
}
