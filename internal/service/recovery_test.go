package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mdworm/internal/core"
)

// tinyCanon resolves tinyRun's configuration to its canonical form and hash,
// the same pair the server would journal for that request.
func tinyCanon(t *testing.T, seed uint64) (string, core.Config, []byte) {
	t.Helper()
	var req RunRequest
	if err := json.Unmarshal([]byte(tinyRun(seed)), &req); err != nil {
		t.Fatal(err)
	}
	cfg, err := req.Config.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	hash, canon, err := Hash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(canon)
	if err != nil {
		t.Fatal(err)
	}
	return hash, canon, raw
}

func writeJournalLines(t *testing.T, dir string, lines ...string) {
	t.Helper()
	// No trailing newline: the final line models the truncated tail a crash
	// can leave behind, which the replay must tolerate.
	data := strings.Join(lines, "\n")
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReplayJournalTolerance covers the crash-shaped journals: a truncated
// last record, garbled bytes, unknown kinds from a future daemon, and
// terminal records for hashes never accepted — none may be fatal, and only
// genuinely unfinished jobs may come back.
func TestReplayJournalTolerance(t *testing.T) {
	dir := t.TempDir()
	writeJournalLines(t, dir,
		`{"kind":"accepted","hash":"aaa","job_kind":"run","config":{"seed":1}}`,
		`{"kind":"running","hash":"aaa","job_kind":"run"}`,
		`{"kind":"checkpoint","hash":"aaa","job_kind":"run","file":"/x/aaa.ckpt","cycle":500}`,
		`{"kind":"accepted","hash":"bbb","job_kind":"run","config":{"seed":2}}`,
		`{"kind":"done","hash":"bbb","job_kind":"run"}`,
		`{"kind":"accepted","hash":"ccc","job_kind":"experiment"}`,
		`{"kind":"archived","hash":"ddd","job_kind":"run"}`, // unknown kind: skipped
		`{"kind":"done","hash":"never-accepted"}`,           // terminal for a stranger: ignored
		`this line is not json at all`,
		`{"kind":"accepted","hash":"eee","job_kind":"run","config":{"se`, // TRUNCated by the crash
	)

	pending, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 {
		t.Fatalf("pending = %+v, want exactly aaa and ccc", pending)
	}
	if pending[0].Hash != "aaa" || pending[0].Checkpoint != "/x/aaa.ckpt" || pending[0].Cycle != 500 {
		t.Errorf("aaa replayed as %+v", pending[0])
	}
	if pending[1].Hash != "ccc" || pending[1].JobKind != "experiment" {
		t.Errorf("ccc replayed as %+v", pending[1])
	}
}

func TestReplayJournalMissingFile(t *testing.T) {
	pending, err := ReplayJournal(t.TempDir())
	if err != nil || len(pending) != 0 {
		t.Fatalf("missing journal replayed as (%v, %v)", pending, err)
	}
}

// waitForCache polls until hash appears in the server's cache.
func waitForCache(t *testing.T, s *Server, hash string) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if body, ok := s.cache.Get(hash); ok {
			return body
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("result %s never reached the cache", hash)
	return nil
}

// readJournal returns the parsed records currently in a directory's journal.
func readJournal(t *testing.T, dir string) []JournalRec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	var recs []JournalRec
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec JournalRec
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestRecoveryCompletesInterruptedRun is the crash-safety property end to
// end: a journal showing an accepted-but-unfinished run (with a checkpoint
// reference that no longer resolves — the worst case) makes a restarted
// daemon re-run the job to completion, and the recovered result is
// byte-identical to an uninterrupted daemon's.
func TestRecoveryCompletesInterruptedRun(t *testing.T) {
	hash, _, raw := tinyCanon(t, 42)

	// Reference: the same request served by an undisturbed daemon.
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, want := postRun(t, ts.URL, tinyRun(42))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: %d %s", resp.StatusCode, want)
	}

	dir := t.TempDir()
	writeJournalLines(t, dir,
		`{"kind":"accepted","hash":"`+hash+`","job_kind":"run","config":`+string(raw)+`}`,
		`{"kind":"running","hash":"`+hash+`","job_kind":"run"}`,
		`{"kind":"checkpoint","hash":"`+hash+`","job_kind":"run","file":"`+
			filepath.Join(dir, "vanished.ckpt")+`","cycle":400}`,
	)

	s, err := New(Config{Workers: 1, CacheDir: dir, CheckpointEvery: 250})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(10 * time.Second)
	got := waitForCache(t, s, hash)
	if !bytes.Equal(want, got) {
		t.Fatalf("recovered result differs from uninterrupted run:\nwant %s\ngot  %s", want, got)
	}

	// The compacted journal must show the job re-accepted and finished once —
	// recovery neither loses nor double-reports it. The done record lands
	// after the result is cached (durability before completion), so give the
	// worker a moment to journal it.
	var done int
	deadline := time.Now().Add(10 * time.Second)
	for {
		done = 0
		for _, rec := range readJournal(t, dir) {
			if rec.Hash == hash && rec.Kind == recDone {
				done++
			}
		}
		if done == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if done != 1 {
		t.Fatalf("journal reports %d done records for the recovered job, want 1", done)
	}
}

// TestRecoveryResumesFromCheckpoint plants a real checkpoint blob and checks
// the restarted daemon resumes from it (fewer simulated cycles than scratch)
// while producing the byte-identical result.
func TestRecoveryResumesFromCheckpoint(t *testing.T) {
	hash, canon, raw := tinyCanon(t, 43)

	// Reference result and a mid-run checkpoint from a scratch simulator.
	ref, err := core.New(canon)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantBody, err := json.Marshal(RunResponse{Hash: hash, Config: canon, Results: refRes, SimulatedCycles: ref.Now()})
	if err != nil {
		t.Fatal(err)
	}

	crashed, err := core.New(canon)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	var snapCycle int64
	_, err = crashed.RunCheckpointed(500, func(data []byte, cycle int64) error {
		blob, snapCycle = data, cycle
		return fmt.Errorf("crash")
	})
	if blob == nil {
		t.Fatalf("run finished before any checkpoint (err=%v)", err)
	}

	dir := t.TempDir()
	ckptFile := filepath.Join(dir, hash+".ckpt")
	if err := os.WriteFile(ckptFile, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	writeJournalLines(t, dir,
		`{"kind":"accepted","hash":"`+hash+`","job_kind":"run","config":`+string(raw)+`}`,
		fmt.Sprintf(`{"kind":"checkpoint","hash":"%s","job_kind":"run","file":"%s","cycle":%d}`,
			hash, ckptFile, snapCycle),
	)

	s, err := New(Config{Workers: 1, CacheDir: dir, CheckpointEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(10 * time.Second)
	got := waitForCache(t, s, hash)
	if !bytes.Equal(wantBody, got) {
		t.Fatalf("resumed result differs from scratch run:\nwant %s\ngot  %s", wantBody, got)
	}
	if _, err := os.Stat(ckptFile); !os.IsNotExist(err) {
		t.Errorf("checkpoint blob survived the published result (stat err: %v)", err)
	}
}

// TestRecoveryFailsInterruptedExperiment: an experiment cut down by a crash
// has no client left to stream to; the restarted daemon must close it out as
// failed rather than silently forget it or re-run it for nobody.
func TestRecoveryFailsInterruptedExperiment(t *testing.T) {
	dir := t.TempDir()
	writeJournalLines(t, dir,
		`{"kind":"accepted","hash":"e1","job_kind":"experiment"}`,
		`{"kind":"running","hash":"e1","job_kind":"experiment"}`,
	)
	s, err := New(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(10 * time.Second)

	recs := readJournal(t, dir)
	if len(recs) != 1 || recs[0].Kind != recFailed || recs[0].Hash != "e1" ||
		!strings.Contains(recs[0].Error, "restart") {
		t.Fatalf("compacted journal = %+v, want one failed record for e1", recs)
	}
}

// TestRecoveryServesFinishedRunFromCache: when the result reached the cache
// but the crash beat the journal's done record, recovery must mark the job
// done from the cache instead of re-running it.
func TestRecoveryServesFinishedRunFromCache(t *testing.T) {
	hash, _, raw := tinyCanon(t, 44)
	dir := t.TempDir()
	cached := []byte(`{"hash":"` + hash + `","results":{}}`)
	if err := os.WriteFile(filepath.Join(dir, hash+".json"), cached, 0o644); err != nil {
		t.Fatal(err)
	}
	writeJournalLines(t, dir,
		`{"kind":"accepted","hash":"`+hash+`","job_kind":"run","config":`+string(raw)+`}`,
	)
	s, err := New(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(10 * time.Second)

	recs := readJournal(t, dir)
	if len(recs) != 1 || recs[0].Kind != recDone || recs[0].Hash != hash {
		t.Fatalf("compacted journal = %+v, want one done record", recs)
	}
	if views := s.pool.List(); len(views) != 0 {
		t.Fatalf("cache-satisfied job was scheduled anyway: %+v", views)
	}
}

// TestRejectionResponses drives the pool into its two rejection states and
// checks both the status mapping and the Retry-After plumbing (header and
// structured body agreeing).
func TestRejectionResponses(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Backlog: 1})

	// Fill the worker and the one backlog slot with jobs that block until
	// released, so the next submission sees a full pool.
	release := make(chan struct{})
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(release) }) })
	started := make(chan struct{})
	running, err := s.pool.Submit("run", "blocker-running", func() (JobStats, error) {
		close(started)
		<-release
		return JobStats{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds this job; the backlog slot is free again
	queued, err := s.pool.Submit("run", "blocker-queued", func() (JobStats, error) {
		<-release
		return JobStats{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	checkRejection := func(wantStatus int, wantCode string) {
		t.Helper()
		resp, body := postRun(t, ts.URL, tinyRun(77))
		if resp.StatusCode != wantStatus {
			t.Fatalf("status = %d (%s), want %d", resp.StatusCode, body, wantStatus)
		}
		ra := resp.Header.Get("Retry-After")
		secs, err := time.ParseDuration(ra + "s")
		if err != nil || secs < time.Second {
			t.Fatalf("Retry-After = %q, want >= 1 second", ra)
		}
		var e struct {
			Error apiError `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("body %s: %v", body, err)
		}
		if e.Error.Code != wantCode {
			t.Fatalf("code = %q (%s), want %q", e.Error.Code, body, wantCode)
		}
		if fmt.Sprint(e.Error.RetryAfterSeconds) != ra {
			t.Fatalf("body retry_after_seconds %d disagrees with header %q", e.Error.RetryAfterSeconds, ra)
		}
	}

	checkRejection(http.StatusTooManyRequests, "busy")

	s.BeginDrain()
	checkRejection(http.StatusServiceUnavailable, "draining")

	// The health probe carries the same hint while draining.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining healthz: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	once.Do(func() { close(release) })
	<-running.Done()
	<-queued.Done()
}

// TestSubmitDrainRace hammers Submit from many goroutines while Drain closes
// the task channel: under -race (and plain) no send may hit the closed
// channel, and every accepted job must still reach a terminal state.
func TestSubmitDrainRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := NewPool(2, 4)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var accepted []*Job
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					j, err := p.Submit("run", "r", func() (JobStats, error) { return JobStats{}, nil })
					if err != nil {
						continue
					}
					mu.Lock()
					accepted = append(accepted, j)
					mu.Unlock()
				}
			}()
		}
		go p.Drain(10 * time.Second)
		wg.Wait()
		if !p.Drain(10 * time.Second) {
			t.Fatal("pool failed to drain")
		}
		for _, j := range accepted {
			select {
			case <-j.Done():
			default:
				t.Fatal("accepted job never reached a terminal state")
			}
		}
	}
}

// TestJobDeadline checks a job that out-waited the pool's queue deadline is
// failed with ErrJobDeadline instead of run.
func TestJobDeadline(t *testing.T) {
	p := NewPool(1, 4)
	p.SetDeadline(20 * time.Millisecond)
	defer p.Drain(10 * time.Second)

	gate := make(chan struct{})
	blocker, err := p.Submit("run", "blocker", func() (JobStats, error) {
		<-gate
		return JobStats{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	stale, err := p.Submit("run", "stale", func() (JobStats, error) {
		ran = true
		return JobStats{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the queued job out-age its deadline
	close(gate)
	<-blocker.Done()
	<-stale.Done()
	if ran {
		t.Fatal("stale job ran despite its deadline")
	}
	if err := p.Err(stale.ID); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("stale job error = %v, want a deadline failure", err)
	}
}

// TestRecoveryPreservesTenantQueues: jobs journaled across three tenants
// before a crash are each re-enqueued into their original tenant's queue
// exactly once on restart — including a "ghost" tenant that was since
// removed from the tenants file, which gets a synthesized weight-1 queue
// rather than being silently folded into someone else's share.
func TestRecoveryPreservesTenantQueues(t *testing.T) {
	dir := t.TempDir()
	hashA, _, rawA := tinyCanon(t, 71)
	hashB, _, rawB := tinyCanon(t, 72)
	hashC, _, rawC := tinyCanon(t, 73)
	writeJournalLines(t, dir,
		`{"kind":"accepted","hash":"`+hashA+`","job_kind":"run","tenant":"alpha","config":`+string(rawA)+`}`,
		`{"kind":"running","hash":"`+hashA+`","job_kind":"run","tenant":"alpha"}`,
		`{"kind":"accepted","hash":"`+hashB+`","job_kind":"run","tenant":"beta","config":`+string(rawB)+`}`,
		`{"kind":"accepted","hash":"`+hashC+`","job_kind":"run","tenant":"ghost","config":`+string(rawC)+`}`,
	)

	tenants, err := ParseTenants([]byte("ka alpha 1\nkb beta 2\n")) // ghost deliberately absent
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 1, CacheDir: dir, Tenants: tenants})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(10 * time.Second)

	hashes := map[string]string{"alpha": hashA, "beta": hashB, "ghost": hashC}
	for _, hash := range hashes {
		waitForCache(t, s, hash)
	}

	// Each recovered job landed in (and only in) its original tenant's queue.
	for tenant, hash := range hashes {
		views := s.pool.ListTenant(tenant)
		if len(views) != 1 {
			t.Fatalf("tenant %s has %d recovered jobs, want exactly 1: %+v", tenant, len(views), views)
		}
		if v := views[0]; v.Detail != hash || v.Tenant != tenant || v.State != JobDone {
			t.Fatalf("tenant %s recovered job = %+v, want done run of %s", tenant, v, hash)
		}
	}

	// Exactly once: one accepted and one done record per hash, each carrying
	// the tenant it was journaled under.
	accepted, done := map[string]int{}, map[string]int{}
	tenantOf := map[string]string{}
	for _, rec := range readJournal(t, dir) {
		switch rec.Kind {
		case RecAccepted:
			accepted[rec.Hash]++
			tenantOf[rec.Hash] = rec.Tenant
		case RecDone:
			done[rec.Hash]++
		}
	}
	for tenant, hash := range hashes {
		if accepted[hash] != 1 || done[hash] != 1 {
			t.Errorf("hash %s: %d accepted / %d done records, want 1/1", hash, accepted[hash], done[hash])
		}
		if tenantOf[hash] != tenant {
			t.Errorf("hash %s re-journaled under tenant %q, want %q", hash, tenantOf[hash], tenant)
		}
	}

	// The per-tenant accounting survived the restart too.
	for _, st := range s.pool.TenantStats() {
		if _, ours := hashes[st.Name]; ours && st.Completed != 1 {
			t.Errorf("tenant %s completed=%d after recovery, want 1", st.Name, st.Completed)
		}
	}
}
