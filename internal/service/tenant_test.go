package service

import (
	"strings"
	"testing"
)

func TestParseTenantsValid(t *testing.T) {
	ts, err := ParseTenants([]byte(`
# production tenants
key-alpha alpha 1
key-beta  beta  2 priority=3
key-gamma gamma 4 max-queued=16 max-running=2 priority=1
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ts.Tenants()); got != 3 {
		t.Fatalf("parsed %d tenants, want 3", got)
	}
	if tn := ts.LookupKey("key-beta"); tn == nil || tn.Name != "beta" || tn.Weight != 2 || tn.Priority != 3 {
		t.Fatalf("key-beta resolved to %+v", tn)
	}
	if tn := ts.ByName("gamma"); tn == nil || tn.MaxQueued != 16 || tn.MaxRunning != 2 || tn.Priority != 1 {
		t.Fatalf("gamma resolved to %+v", tn)
	}
	if tn := ts.LookupKey("nope"); tn != nil {
		t.Fatalf("unknown key resolved to %+v", tn)
	}
	if got := strings.Join(ts.Names(), ","); got != "alpha,beta,gamma" {
		t.Fatalf("Names() = %q", got)
	}
	// File order is the scheduling/display order.
	if ts.Tenants()[0].Name != "alpha" || ts.Tenants()[2].Name != "gamma" {
		t.Fatalf("file order not preserved: %v", ts.Names())
	}
}

func TestParseTenantsErrors(t *testing.T) {
	cases := []struct {
		name, file string
	}{
		{"empty", ""},
		{"comments-only", "# nothing here\n\n"},
		{"too-few-fields", "key name\n"},
		{"zero-weight", "key name 0\n"},
		{"negative-weight", "key name -3\n"},
		{"non-integer-weight", "key name heavy\n"},
		{"duplicate-key", "k1 a 1\nk1 b 1\n"},
		{"duplicate-name", "k1 a 1\nk2 a 1\n"},
		{"unsafe-name", "k1 a/b 1\n"},
		{"control-char-key", "k\x01 a 1\n"},
		{"bad-option", "k1 a 1 fast\n"},
		{"unknown-option", "k1 a 1 burst=4\n"},
		{"non-integer-option", "k1 a 1 priority=high\n"},
		{"priority-out-of-range", "k1 a 1 priority=10\n"},
		{"negative-max-queued", "k1 a 1 max-queued=-1\n"},
		{"negative-max-running", "k1 a 1 max-running=-1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if ts, err := ParseTenants([]byte(c.file)); err == nil {
				t.Fatalf("ParseTenants(%q) = %+v, want error", c.file, ts)
			}
		})
	}
}

func TestNilTenantSetIsSafe(t *testing.T) {
	var ts *TenantSet
	if ts.LookupKey("k") != nil || ts.ByName("n") != nil || ts.Tenants() != nil || ts.Names() != nil {
		t.Fatal("nil TenantSet lookups must all return nil")
	}
}

// FuzzTenantConfig holds the parser to its contract on arbitrary input: never
// panic, and never return a set with duplicate keys/names, zero weights, or
// unsafe names.
func FuzzTenantConfig(f *testing.F) {
	f.Add([]byte("key-a alpha 1\nkey-b beta 2 priority=3\n"))
	f.Add([]byte("k n 4 max-queued=8 max-running=1\n# comment\n"))
	f.Add([]byte("k n 0\n"))
	f.Add([]byte("k1 a 1\nk1 b 1\n"))
	f.Add([]byte("k\x00 a 1\n"))
	f.Add([]byte(strings.Repeat("x", 5000) + " big 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := ParseTenants(data)
		if err != nil {
			return
		}
		keys := map[string]bool{}
		names := map[string]bool{}
		for _, tn := range ts.Tenants() {
			if keys[tn.Key] {
				t.Fatalf("duplicate key %q survived parsing", tn.Key)
			}
			if names[tn.Name] {
				t.Fatalf("duplicate name %q survived parsing", tn.Name)
			}
			keys[tn.Key], names[tn.Name] = true, true
			if !keySafe(tn.Key) {
				t.Fatalf("unsafe key %q survived parsing", tn.Key)
			}
			if !labelSafe(tn.Name) {
				t.Fatalf("unsafe name %q survived parsing", tn.Name)
			}
			if tn.Weight < 1 {
				t.Fatalf("weight %d < 1 survived parsing", tn.Weight)
			}
			if tn.Priority < 0 || tn.Priority > 9 {
				t.Fatalf("priority %d out of range survived parsing", tn.Priority)
			}
			if tn.MaxQueued < 0 || tn.MaxRunning < 0 {
				t.Fatalf("negative quota survived parsing: %+v", tn)
			}
			if ts.LookupKey(tn.Key) != tn || ts.ByName(tn.Name) != tn {
				t.Fatalf("lookup round-trip broken for %+v", tn)
			}
		}
	})
}
