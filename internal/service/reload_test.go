package service

import (
	"net/http"
	"testing"
	"time"
)

// TestPoolUpdateTenantsKeepsQueuedJobs: a tenant-table reload updates
// scheduling parameters in place and never drops a queued job — including
// jobs of a tenant the new table removed.
func TestPoolUpdateTenantsKeepsQueuedJobs(t *testing.T) {
	p := NewPool(1, 16)
	defer p.Drain(10 * time.Second)
	alpha := &Tenant{Key: "ka", Name: "alpha", Weight: 1, MaxQueued: 4}
	beta := &Tenant{Key: "kb", Name: "beta", Weight: 1}

	gate := make(chan struct{})
	noop := func() (JobStats, error) { return JobStats{}, nil }
	var jobs []*Job
	blocker, err := p.SubmitTenant("run", "blocker", alpha, func() (JobStats, error) {
		<-gate
		return JobStats{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, blocker)
	// With the lone worker pinned, everything below stays queued.
	for i := 0; i < 3; i++ {
		j, err := p.SubmitTenant("run", "queued-alpha", alpha, noop)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	bj, err := p.SubmitTenant("run", "queued-beta", beta, noop)
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, bj)

	// Reload: alpha's weight and quota change, beta disappears, gamma is new.
	ts, err := ParseTenants([]byte("ka alpha 5 max-queued=8 priority=2\nkc gamma 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	p.UpdateTenants(ts)

	if got := len(p.List()); got != len(jobs) {
		t.Fatalf("reload dropped jobs: %d listed, want %d", got, len(jobs))
	}
	var alphaStat *TenantStat
	for _, st := range p.TenantStats() {
		st := st
		if st.Name == "alpha" {
			alphaStat = &st
		}
	}
	if alphaStat == nil || alphaStat.Weight != 5 || alphaStat.Priority != 2 {
		t.Fatalf("alpha queue did not take new parameters: %+v", alphaStat)
	}

	close(gate)
	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("job %s (%s) never finished after reload", j.ID, j.Detail)
		}
	}
	for _, j := range jobs {
		if v, ok := p.Get(j.ID); !ok || v.State != JobDone {
			t.Fatalf("job %s ended %v, want done", j.ID, v.State)
		}
	}

	// Beta's queue outlived the reload to drain its backlog; the next reload
	// finds it idle and unconfigured and garbage-collects it.
	p.UpdateTenants(ts)
	for _, st := range p.TenantStats() {
		if st.Name == "beta" {
			t.Fatalf("removed tenant's idle queue survived reload: %+v", st)
		}
	}
}

// TestServerReloadTenants: after ReloadTenants, new keys authenticate, a
// removed key is rejected, and degenerate reloads (empty table, enabling
// tenants on a single-tenant daemon) are refused.
func TestServerReloadTenants(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Tenants: testTenants(t)})

	// Old table: key-a in, key-z out.
	if resp, _ := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs", "key-a", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("key-a before reload: %d", resp.StatusCode)
	}
	if resp, _ := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs", "key-z", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("key-z before reload: %d", resp.StatusCode)
	}

	next, err := ParseTenants([]byte("key-z zeta 3\nkey-a alpha 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadTenants(next); err != nil {
		t.Fatal(err)
	}

	// New table: key-z now works, removed key-b does not, key-a survives.
	if resp, _ := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs", "key-z", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("key-z after reload: %d", resp.StatusCode)
	}
	if resp, body := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs", "key-b", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("removed key-b after reload: %d (%s)", resp.StatusCode, body)
	}
	if resp, _ := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs", "key-a", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("key-a after reload: %d", resp.StatusCode)
	}

	if err := s.ReloadTenants(nil); err == nil {
		t.Fatal("reload accepted a nil table")
	}

	single, sts := newTestServer(t, Config{Workers: 1})
	defer sts.Close()
	if err := single.ReloadTenants(next); err == nil {
		t.Fatal("single-tenant daemon accepted a tenant reload")
	}
}
