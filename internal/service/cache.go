package service

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Cache is the content-addressed result store: an in-memory LRU over exact
// response bodies, keyed by the canonical config hash, with optional
// write-through persistence to a directory (one file per key, so a restarted
// daemon — or a second one sharing the directory — reuses earlier results).
// Values are the exact bytes served, so a hit is byte-identical to the miss
// that populated it.
type Cache struct {
	mu      sync.Mutex
	max     int
	dir     string
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses int64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache bounded to max in-memory entries (min 1). When
// dir is non-empty it is created and used for write-through persistence;
// entries evicted from memory remain readable from disk.
func NewCache(max int, dir string) (*Cache, error) {
	if max < 1 {
		max = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	return &Cache{
		max:     max,
		dir:     dir,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}, nil
}

// Get returns the cached bytes for key. Memory is consulted first, then the
// persistence directory; a disk hit is promoted back into memory. Both count
// as hits.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	if c.dir != "" && validKey(key) {
		if b, err := os.ReadFile(c.path(key)); err == nil {
			c.insert(key, b)
			c.hits++
			return b, true
		}
	}
	c.misses++
	return nil, false
}

// Put stores the bytes for key, evicting the least recently used in-memory
// entry beyond the bound and writing through to disk when persistence is on.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Determinism makes re-puts byte-identical; keep the first.
		c.order.MoveToFront(el)
		return
	}
	c.insert(key, val)
	if c.dir != "" && validKey(key) {
		// Atomic publish so concurrent readers never see a torn file;
		// persistence is best-effort and never fails a request.
		tmp, err := os.CreateTemp(c.dir, "put-*")
		if err != nil {
			return
		}
		name := tmp.Name()
		if _, err := tmp.Write(val); err == nil && tmp.Close() == nil {
			os.Rename(name, c.path(key))
		} else {
			tmp.Close()
			os.Remove(name)
		}
	}
}

// insert adds to the in-memory LRU, evicting beyond the bound. Caller locks.
func (c *Cache) insert(key string, val []byte) {
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Stats returns cumulative hit/miss counters and the current entry count.
func (c *Cache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// validKey restricts disk lookups to hex content addresses so a key can
// never escape the cache directory.
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	return strings.IndexFunc(key, func(r rune) bool {
		return !('0' <= r && r <= '9' || 'a' <= r && r <= 'f')
	}) < 0
}
