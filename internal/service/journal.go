package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The job journal is mdwd's write-ahead log: one append-only ndjson file
// under the cache directory recording every job's lifecycle
// (accepted → running → checkpoint… → done|failed), fsync'd at each
// transition. A daemon restarted over the same directory replays the
// journal, re-enqueues unfinished run jobs from their last checkpoint (or
// from scratch), and reports interrupted experiment streams as failed — an
// accepted job is never silently lost, and a finished one never re-runs.
//
// The same file and record grammar carry the cluster coordinator's journal
// (internal/cluster): shard-scoped kinds are simply additional record types
// this replayer skips, so the fleet-wide "never lost, never double-run"
// guarantee rides on the identical durability machinery.

// journalName is the journal file within the cache directory.
const journalName = "journal.ndjson"

// Journal record kinds. Unknown kinds are skipped on replay, so future
// daemons can add kinds without breaking older ones reading the same
// directory.
const (
	recAccepted   = "accepted"
	recRunning    = "running"
	recCheckpoint = "checkpoint"
	recDone       = "done"
	recFailed     = "failed"
)

// Exported record kinds, for the cluster coordinator (internal/cluster),
// which journals through the same machinery: the standard lifecycle kinds
// plus RecShard, a dispatch-audit record ReplayJournal deliberately skips
// (shard dispatches are not pending jobs — the job-level accepted record
// already carries recoverability).
const (
	RecAccepted = recAccepted
	RecRunning  = recRunning
	RecDone     = recDone
	RecFailed   = recFailed
	RecShard    = "shard"
)

// JournalRec is one journal line. Hash keys the job (the canonical config
// hash for runs, the experiment id for experiments); Config carries the
// canonical configuration of accepted run jobs so a restarted daemon can
// rebuild the work without the original request.
type JournalRec struct {
	Kind    string          `json:"kind"`
	Hash    string          `json:"hash"`
	JobKind string          `json:"job_kind,omitempty"` // "run", "experiment", or "shard"
	Tenant  string          `json:"tenant,omitempty"`   // owning tenant's name ("" = anonymous)
	Config  json.RawMessage `json:"config,omitempty"`
	// File and Cycle reference the latest checkpoint blob of a running job.
	File  string `json:"file,omitempty"`
	Cycle int64  `json:"cycle,omitempty"`
	// Peer names the worker daemon a cluster shard was dispatched to.
	Peer  string `json:"peer,omitempty"`
	Error string `json:"error,omitempty"`
	At    string `json:"at,omitempty"` // RFC3339Nano, informational only
}

// Journal appends records durably. Safe for concurrent use.
//
// It also tracks the records still needed to rebuild pending jobs (accepted
// without a matching done/failed, plus their latest checkpoint reference):
// when SetMaxBytes installs a size threshold, a journal grown past it is
// compacted in place down to exactly those records, so long-running daemons
// — a cluster coordinator journaling thousands of shard records per sweep —
// never grow the file without bound. Compaction preserves replay semantics
// exactly: ReplayJournal over a compacted file returns the same pending set.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64

	// maxBytes, when > 0, triggers compaction once the file exceeds it.
	maxBytes int64

	// pending mirrors the replay state machine for compaction: the records
	// that must survive a rewrite, keyed by job hash in first-accepted order.
	pending map[string]*pendingRecs
	order   []string
}

// pendingRecs is the minimal record set that reconstructs one pending job.
type pendingRecs struct {
	accepted   JournalRec
	checkpoint *JournalRec
}

// OpenJournal opens (creating if needed) the journal of a cache directory
// for appending.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	return &Journal{f: f, path: path, size: size, pending: make(map[string]*pendingRecs)}, nil
}

// SetMaxBytes installs the size threshold beyond which Append compacts the
// journal down to its pending-job records (0 disables size-triggered
// compaction). Call it right after OpenJournal/ResetJournal, before records
// accumulate.
func (j *Journal) SetMaxBytes(n int64) {
	j.mu.Lock()
	j.maxBytes = n
	j.mu.Unlock()
}

// Append writes one record and fsyncs: when Append returns, the transition
// survives a crash.
func (j *Journal) Append(rec JournalRec) error {
	if rec.At == "" {
		rec.At = time.Now().UTC().Format(time.RFC3339Nano)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: journal encode: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	j.track(rec)
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("service: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: journal sync: %w", err)
	}
	j.size += int64(len(line))
	if j.maxBytes > 0 && j.size > j.maxBytes {
		// Compaction failures leave the oversized-but-valid journal in
		// place; durability of appended records is never at risk.
		j.compactLocked()
	}
	return nil
}

// track advances the pending-state mirror for one appended record. Caller
// holds the lock.
func (j *Journal) track(rec JournalRec) {
	if rec.Hash == "" {
		return
	}
	switch rec.Kind {
	case recAccepted:
		if _, dup := j.pending[rec.Hash]; !dup {
			j.pending[rec.Hash] = &pendingRecs{accepted: rec}
			j.order = append(j.order, rec.Hash)
		}
	case recCheckpoint:
		if p, ok := j.pending[rec.Hash]; ok {
			cp := rec
			p.checkpoint = &cp
		}
	case recDone, recFailed:
		delete(j.pending, rec.Hash)
		// Keep the first-accepted order list from growing without bound on
		// long-lived daemons: prune finished hashes once they dominate it.
		if len(j.order) > 2*len(j.pending)+64 {
			live := j.order[:0]
			for _, h := range j.order {
				if _, ok := j.pending[h]; ok {
					live = append(live, h)
				}
			}
			j.order = live
		}
	}
}

// compactLocked rewrites the journal to exactly the records reconstructing
// the pending jobs, atomically (write temp, fsync, rename, reopen). Caller
// holds the lock. Best-effort: any failure keeps the current file.
func (j *Journal) compactLocked() {
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, "journal-compact-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	fail := func() { tmp.Close(); os.Remove(name) }
	var written int64
	live := make([]string, 0, len(j.pending))
	for _, h := range j.order {
		if _, ok := j.pending[h]; ok {
			live = append(live, h)
		}
	}
	for _, h := range live {
		p := j.pending[h]
		recs := []JournalRec{p.accepted}
		if p.checkpoint != nil {
			recs = append(recs, *p.checkpoint)
		}
		for _, rec := range recs {
			line, err := json.Marshal(rec)
			if err != nil {
				fail()
				return
			}
			line = append(line, '\n')
			n, err := tmp.Write(line)
			if err != nil {
				fail()
				return
			}
			written += int64(n)
		}
	}
	if err := tmp.Sync(); err != nil {
		fail()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, j.path); err != nil {
		os.Remove(name)
		return
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted file is valid; appends resume on next open. Keep the
		// old handle so in-flight appends at least hit a file descriptor.
		return
	}
	j.f.Close()
	j.f = f
	j.size = written
	j.order = live
}

// Size returns the journal file's current size in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// PendingJob is a job the journal shows as accepted but not finished.
type PendingJob struct {
	Hash    string
	JobKind string
	Tenant  string // owning tenant's name; replay re-enqueues into this queue
	Config  json.RawMessage
	// Checkpoint and Cycle reference the job's last journaled checkpoint
	// ("" when it never checkpointed — rerun from scratch).
	Checkpoint string
	Cycle      int64
}

// ReplayJournal reads a cache directory's journal and returns the jobs
// still pending, in first-accepted order. A missing journal is an empty
// replay. The reader is deliberately tolerant: a truncated or garbled line
// (the partial write of a crash) and records of unknown kind are skipped,
// never fatal.
func ReplayJournal(dir string) ([]PendingJob, error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	defer f.Close()

	pending := make(map[string]*PendingJob)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec JournalRec
		if json.Unmarshal(line, &rec) != nil || rec.Hash == "" {
			continue // partial write at a crash, or foreign junk
		}
		switch rec.Kind {
		case recAccepted:
			if _, dup := pending[rec.Hash]; !dup {
				pending[rec.Hash] = &PendingJob{Hash: rec.Hash, JobKind: rec.JobKind, Tenant: rec.Tenant, Config: rec.Config}
				order = append(order, rec.Hash)
			}
		case recRunning:
			// State transition only; nothing to record.
		case recCheckpoint:
			if p, ok := pending[rec.Hash]; ok {
				p.Checkpoint = rec.File
				p.Cycle = rec.Cycle
			}
		case recDone, recFailed:
			delete(pending, rec.Hash)
		default:
			// Unknown kind: written by a newer daemon (cluster shard
			// dispatch records, for one); skip.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: journal read: %w", err)
	}

	out := make([]PendingJob, 0, len(pending))
	for _, h := range order {
		if p, ok := pending[h]; ok {
			out = append(out, *p)
		}
	}
	return out, nil
}

// ResetJournal atomically replaces the journal with an empty file and
// returns it open for appending — the compaction step of recovery, run
// after ReplayJournal so the new journal restarts from only the re-accepted
// jobs.
func ResetJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: journal dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "journal-*")
	if err != nil {
		return nil, fmt.Errorf("service: journal reset: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return nil, fmt.Errorf("service: journal reset: %w", err)
	}
	if err := os.Rename(name, filepath.Join(dir, journalName)); err != nil {
		os.Remove(name)
		return nil, fmt.Errorf("service: journal reset: %w", err)
	}
	return OpenJournal(dir)
}
