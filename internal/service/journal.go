package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The job journal is mdwd's write-ahead log: one append-only ndjson file
// under the cache directory recording every job's lifecycle
// (accepted → running → checkpoint… → done|failed), fsync'd at each
// transition. A daemon restarted over the same directory replays the
// journal, re-enqueues unfinished run jobs from their last checkpoint (or
// from scratch), and reports interrupted experiment streams as failed — an
// accepted job is never silently lost, and a finished one never re-runs.

// journalName is the journal file within the cache directory.
const journalName = "journal.ndjson"

// Journal record kinds. Unknown kinds are skipped on replay, so future
// daemons can add kinds without breaking older ones reading the same
// directory.
const (
	recAccepted   = "accepted"
	recRunning    = "running"
	recCheckpoint = "checkpoint"
	recDone       = "done"
	recFailed     = "failed"
)

// JournalRec is one journal line. Hash keys the job (the canonical config
// hash for runs, the experiment id for experiments); Config carries the
// canonical configuration of accepted run jobs so a restarted daemon can
// rebuild the work without the original request.
type JournalRec struct {
	Kind    string          `json:"kind"`
	Hash    string          `json:"hash"`
	JobKind string          `json:"job_kind,omitempty"` // "run" or "experiment"
	Config  json.RawMessage `json:"config,omitempty"`
	// File and Cycle reference the latest checkpoint blob of a running job.
	File  string `json:"file,omitempty"`
	Cycle int64  `json:"cycle,omitempty"`
	Error string `json:"error,omitempty"`
	At    string `json:"at,omitempty"` // RFC3339Nano, informational only
}

// Journal appends records durably. Safe for concurrent use.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) the journal of a cache directory
// for appending.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: journal dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append writes one record and fsyncs: when Append returns, the transition
// survives a crash.
func (j *Journal) Append(rec JournalRec) error {
	if rec.At == "" {
		rec.At = time.Now().UTC().Format(time.RFC3339Nano)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: journal encode: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("service: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: journal sync: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// PendingJob is a job the journal shows as accepted but not finished.
type PendingJob struct {
	Hash    string
	JobKind string
	Config  json.RawMessage
	// Checkpoint and Cycle reference the job's last journaled checkpoint
	// ("" when it never checkpointed — rerun from scratch).
	Checkpoint string
	Cycle      int64
}

// ReplayJournal reads a cache directory's journal and returns the jobs
// still pending, in first-accepted order. A missing journal is an empty
// replay. The reader is deliberately tolerant: a truncated or garbled line
// (the partial write of a crash) and records of unknown kind are skipped,
// never fatal.
func ReplayJournal(dir string) ([]PendingJob, error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	defer f.Close()

	pending := make(map[string]*PendingJob)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec JournalRec
		if json.Unmarshal(line, &rec) != nil || rec.Hash == "" {
			continue // partial write at a crash, or foreign junk
		}
		switch rec.Kind {
		case recAccepted:
			if _, dup := pending[rec.Hash]; !dup {
				pending[rec.Hash] = &PendingJob{Hash: rec.Hash, JobKind: rec.JobKind, Config: rec.Config}
				order = append(order, rec.Hash)
			}
		case recRunning:
			// State transition only; nothing to record.
		case recCheckpoint:
			if p, ok := pending[rec.Hash]; ok {
				p.Checkpoint = rec.File
				p.Cycle = rec.Cycle
			}
		case recDone, recFailed:
			delete(pending, rec.Hash)
		default:
			// Unknown kind: written by a newer daemon; skip.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: journal read: %w", err)
	}

	out := make([]PendingJob, 0, len(pending))
	for _, h := range order {
		if p, ok := pending[h]; ok {
			out = append(out, *p)
		}
	}
	return out, nil
}

// ResetJournal atomically replaces the journal with an empty file and
// returns it open for appending — the compaction step of recovery, run
// after ReplayJournal so the new journal restarts from only the re-accepted
// jobs.
func ResetJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: journal dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "journal-*")
	if err != nil {
		return nil, fmt.Errorf("service: journal reset: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return nil, fmt.Errorf("service: journal reset: %w", err)
	}
	if err := os.Rename(name, filepath.Join(dir, journalName)); err != nil {
		os.Remove(name)
		return nil, fmt.Errorf("service: journal reset: %w", err)
	}
	return OpenJournal(dir)
}
