package service

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The tenant layer turns mdwd from a demo daemon into a multi-tenant
// service: every request is attributed to a tenant (by API key, or the
// anonymous tenant when no tenants file is configured), and the job pool
// schedules tenants against each other by weight and priority class instead
// of one global FIFO. With no tenants configured the daemon behaves exactly
// as before: one anonymous tenant, weight 1, no quotas, no auth.

// Tenant is one configured API client class: its key, scheduling parameters,
// and admission quotas. The zero quota values mean "unlimited".
type Tenant struct {
	// Key is the API key presented as "Authorization: Bearer <key>". Empty
	// only for the anonymous tenant.
	Key string
	// Name identifies the tenant in job views, metrics labels, and the
	// journal. Label-safe ([A-Za-z0-9._-]) and unique within a TenantSet.
	Name string
	// Weight is the tenant's fair-share weight (>= 1): under saturation a
	// tenant's completed-job share converges to Weight over the sum of the
	// active tenants' weights within its priority class.
	Weight int
	// Priority is the tenant's priority class (0-9, default 0). A queued job
	// of a higher class is always dispatched before any lower-class job, but
	// classes never preempt jobs already running.
	Priority int
	// MaxQueued caps this tenant's queued-but-unstarted jobs; a submission
	// beyond it is rejected with 429 and a Retry-After computed from this
	// tenant's own queue. 0 = no per-tenant cap (the global backlog still
	// applies).
	MaxQueued int
	// MaxRunning caps this tenant's concurrently running jobs: queued jobs
	// beyond it wait, leaving workers to other tenants. 0 = no cap.
	MaxRunning int
}

// anonymous is the implicit tenant of every request when no tenants file is
// configured (and of direct pool submissions in tests). Its empty name keeps
// JobView and journal records byte-identical to the pre-tenant daemon.
var anonymous = &Tenant{Name: "", Weight: 1}

// AnonymousTenant returns the implicit no-auth tenant.
func AnonymousTenant() *Tenant { return anonymous }

// TenantSet is a parsed tenants file: the key table the server authenticates
// against.
type TenantSet struct {
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	list   []*Tenant // file order
}

// LookupKey resolves an API key to its tenant (nil when unknown).
func (ts *TenantSet) LookupKey(key string) *Tenant {
	if ts == nil {
		return nil
	}
	return ts.byKey[key]
}

// ByName resolves a tenant name (nil when unknown) — the journal-replay path,
// which records names, never keys.
func (ts *TenantSet) ByName(name string) *Tenant {
	if ts == nil {
		return nil
	}
	return ts.byName[name]
}

// Tenants returns the set in file order.
func (ts *TenantSet) Tenants() []*Tenant {
	if ts == nil {
		return nil
	}
	return ts.list
}

// Names returns the tenant names in sorted order.
func (ts *TenantSet) Names() []string {
	if ts == nil {
		return nil
	}
	out := make([]string, 0, len(ts.list))
	for _, t := range ts.list {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// labelSafe reports whether a tenant name can travel as a Prometheus label
// value and a journal field without escaping surprises.
func labelSafe(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return true
}

// keySafe rejects keys that cannot survive an Authorization header: empty,
// whitespace, or control characters.
func keySafe(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r <= ' ' || r == 0x7f {
			return false
		}
	}
	return true
}

// ParseTenants parses a tenants file. The grammar is line-based:
//
//	# comment
//	<key> <name> <weight> [priority=N] [max-queued=N] [max-running=N]
//
// Keys and names must be unique, weights >= 1, priorities 0..9, quotas >= 0.
// The parser never panics on any input (FuzzTenantConfig holds it to that).
func ParseTenants(data []byte) (*TenantSet, error) {
	ts := &TenantSet{byKey: make(map[string]*Tenant), byName: make(map[string]*Tenant)}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("tenants:%d: want \"<key> <name> <weight> [k=v ...]\", got %q", lineNo, line)
		}
		t := &Tenant{Key: fields[0], Name: fields[1]}
		if !keySafe(t.Key) {
			return nil, fmt.Errorf("tenants:%d: key %q has whitespace or control characters", lineNo, t.Key)
		}
		if !labelSafe(t.Name) {
			return nil, fmt.Errorf("tenants:%d: name %q is not label-safe ([A-Za-z0-9._-]+)", lineNo, t.Name)
		}
		w, err := strconv.Atoi(fields[2])
		if err != nil || w < 1 {
			return nil, fmt.Errorf("tenants:%d: weight %q must be an integer >= 1", lineNo, fields[2])
		}
		t.Weight = w
		for _, opt := range fields[3:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("tenants:%d: option %q is not k=v", lineNo, opt)
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("tenants:%d: option %s=%q is not an integer", lineNo, k, v)
			}
			switch k {
			case "priority":
				if n < 0 || n > 9 {
					return nil, fmt.Errorf("tenants:%d: priority %d out of range 0..9", lineNo, n)
				}
				t.Priority = n
			case "max-queued":
				if n < 0 {
					return nil, fmt.Errorf("tenants:%d: max-queued %d is negative", lineNo, n)
				}
				t.MaxQueued = n
			case "max-running":
				if n < 0 {
					return nil, fmt.Errorf("tenants:%d: max-running %d is negative", lineNo, n)
				}
				t.MaxRunning = n
			default:
				return nil, fmt.Errorf("tenants:%d: unknown option %q (have priority, max-queued, max-running)", lineNo, k)
			}
		}
		if _, dup := ts.byKey[t.Key]; dup {
			return nil, fmt.Errorf("tenants:%d: duplicate key %q", lineNo, t.Key)
		}
		if _, dup := ts.byName[t.Name]; dup {
			return nil, fmt.Errorf("tenants:%d: duplicate tenant name %q", lineNo, t.Name)
		}
		ts.byKey[t.Key] = t
		ts.byName[t.Name] = t
		ts.list = append(ts.list, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	if len(ts.list) == 0 {
		return nil, fmt.Errorf("tenants: no tenants defined")
	}
	return ts, nil
}

// LoadTenants reads and parses a tenants file from disk.
func LoadTenants(path string) (*TenantSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	ts, err := ParseTenants(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ts, nil
}
