package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// The fairness property tests drive the pool's scheduler directly: one
// worker, a gate job pinning it, tenant queues filled while the gate holds,
// then the gate released — with a single worker the completion order IS the
// dispatch order, so weighted-share and priority properties are assertable
// exactly instead of statistically.

// gatedPool builds a pool whose single worker is pinned by an anonymous gate
// job; the returned release function frees it. Jobs submitted while the gate
// holds stay queued, so tests control the exact backlog the scheduler sees.
func gatedPool(t *testing.T, backlog int) (*Pool, func()) {
	t.Helper()
	p := NewPool(1, backlog)
	gate := make(chan struct{})
	if _, err := p.Submit("run", "gate", func() (JobStats, error) {
		<-gate
		return JobStats{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, p, JobRunning, 1)
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(func() {
		release()
		p.Drain(30 * time.Second)
	})
	return p, release
}

// waitCount polls until n jobs are in the given state.
func waitCount(t *testing.T, p *Pool, state JobState, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if p.Counts()[state] == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("never saw %d jobs %s (have %v)", n, state, p.Counts())
}

// recorder returns a job fn that appends name to a shared completion log.
func recorder(mu *sync.Mutex, order *[]string, name string) func() (JobStats, error) {
	return func() (JobStats, error) {
		mu.Lock()
		*order = append(*order, name)
		mu.Unlock()
		return JobStats{}, nil
	}
}

// TestFairShareConvergesToWeights: tenants at weights 1/2/4 saturating one
// worker receive dispatch shares equal to their weights. Smooth weighted
// round-robin makes the share exact over every full round (7 dispatches),
// not just in the limit; the tolerance only absorbs the round boundary.
func TestFairShareConvergesToWeights(t *testing.T) {
	p, release := gatedPool(t, 10000)
	a := &Tenant{Name: "a", Weight: 1}
	b := &Tenant{Name: "b", Weight: 2}
	c := &Tenant{Name: "c", Weight: 4}

	var mu sync.Mutex
	var order []string
	const per = 40
	for i := 0; i < per; i++ {
		for _, tn := range []*Tenant{a, b, c} {
			if _, err := p.SubmitTenant("run", fmt.Sprintf("%s%d", tn.Name, i), tn,
				recorder(&mu, &order, tn.Name)); err != nil {
				t.Fatal(err)
			}
		}
	}
	release()
	if !p.Drain(60 * time.Second) {
		t.Fatal("pool did not drain")
	}

	// Every queue stays nonempty through at least the first 70 dispatches
	// (c, the heaviest, drains its 40 jobs in 70); judge the first 9 full
	// rounds = 63 dispatches, where shares must be 9/18/36.
	counts := map[string]int{}
	for _, name := range order[:63] {
		counts[name]++
	}
	want := map[string]int{"a": 9, "b": 18, "c": 36}
	for name, w := range want {
		if d := counts[name] - w; d < -2 || d > 2 {
			t.Errorf("tenant %s got %d of the first 63 dispatches, want %d±2 (counts %v)",
				name, counts[name], w, counts)
		}
	}

	// The cumulative accounting agrees with the log.
	for _, st := range p.TenantStats() {
		if st.Name == "" {
			continue // the gate's anonymous queue
		}
		if st.Completed != per || st.Failed != 0 {
			t.Errorf("tenant %s stats: completed=%d failed=%d, want %d/0", st.Name, st.Completed, st.Failed, per)
		}
	}
}

// TestFloodingTenantCannotStarve: a tenant flooding the queue at 8x the
// victim's weight still cannot push the victim's single job past one
// scheduler round — bounded wait, never starvation.
func TestFloodingTenantCannotStarve(t *testing.T) {
	p, release := gatedPool(t, 10000)
	flood := &Tenant{Name: "flood", Weight: 8}
	victim := &Tenant{Name: "victim", Weight: 1}

	var mu sync.Mutex
	var order []string
	for i := 0; i < 200; i++ {
		if _, err := p.SubmitTenant("run", fmt.Sprintf("f%d", i), flood,
			recorder(&mu, &order, "flood")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.SubmitTenant("run", "v0", victim, recorder(&mu, &order, "victim")); err != nil {
		t.Fatal(err)
	}
	release()
	if !p.Drain(60 * time.Second) {
		t.Fatal("pool did not drain")
	}

	pos := -1
	for i, name := range order {
		if name == "victim" {
			pos = i
			break
		}
	}
	// One full round is weight 8 + 1 = 9 dispatches; the victim must land
	// inside it regardless of the flood's 200-deep backlog.
	if pos < 0 || pos >= 9 {
		t.Fatalf("victim dispatched at position %d, want within the first 9", pos)
	}
}

// TestPriorityClassOrdering: a higher priority class is always dispatched
// before lower-class queued work (but never preempts the running job — the
// gate, class 0, finishes first by construction).
func TestPriorityClassOrdering(t *testing.T) {
	p, release := gatedPool(t, 10000)
	low := &Tenant{Name: "low", Weight: 4}
	high := &Tenant{Name: "high", Weight: 1, Priority: 5}

	var mu sync.Mutex
	var order []string
	for i := 0; i < 10; i++ {
		if _, err := p.SubmitTenant("run", fmt.Sprintf("l%d", i), low,
			recorder(&mu, &order, "low")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := p.SubmitTenant("run", fmt.Sprintf("h%d", i), high,
			recorder(&mu, &order, "high")); err != nil {
			t.Fatal(err)
		}
	}
	release()
	if !p.Drain(60 * time.Second) {
		t.Fatal("pool did not drain")
	}
	for i, name := range order {
		want := "high"
		if i >= 5 {
			want = "low"
		}
		if name != want {
			t.Fatalf("dispatch %d = %s, want %s (order %v)", i, name, want, order)
		}
	}
}

// TestInFlightCapLeavesWorkersToOthers: a tenant at its max-running cap
// holds its queued jobs back, and the freed worker serves other tenants
// instead of idling.
func TestInFlightCapLeavesWorkersToOthers(t *testing.T) {
	p := NewPool(2, 100)
	t.Cleanup(func() { p.Drain(30 * time.Second) })
	capped := &Tenant{Name: "capped", Weight: 8, MaxRunning: 1}
	other := &Tenant{Name: "other", Weight: 1}

	releaseCapped := make(chan struct{})
	for i := 0; i < 2; i++ {
		if _, err := p.SubmitTenant("run", fmt.Sprintf("c%d", i), capped, func() (JobStats, error) {
			<-releaseCapped
			return JobStats{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The cap must pin exactly one capped job running, one queued.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st TenantStat
		for _, s := range p.TenantStats() {
			if s.Name == "capped" {
				st = s
			}
		}
		if st.Running == 1 && st.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capped tenant never settled at running=1 queued=1 (have %+v)", st)
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	if _, err := p.SubmitTenant("run", "o0", other, func() (JobStats, error) {
		close(done)
		return JobStats{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("second worker never served the other tenant past the capped queue")
	}
	close(releaseCapped)
}

// TestTenantQueueQuota: the per-tenant queue cap rejects with
// ErrTenantQueueFull while other tenants keep submitting.
func TestTenantQueueQuota(t *testing.T) {
	p, _ := gatedPool(t, 100)
	q := &Tenant{Name: "quota", Weight: 1, MaxQueued: 2}
	free := &Tenant{Name: "free", Weight: 1}

	noop := func() (JobStats, error) { return JobStats{}, nil }
	for i := 0; i < 2; i++ {
		if _, err := p.SubmitTenant("run", fmt.Sprintf("q%d", i), q, noop); err != nil {
			t.Fatalf("submit %d under quota: %v", i, err)
		}
	}
	if _, err := p.SubmitTenant("run", "q2", q, noop); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("over-quota submit = %v, want ErrTenantQueueFull", err)
	}
	if _, err := p.SubmitTenant("run", "f0", free, noop); err != nil {
		t.Fatalf("other tenant rejected by someone else's quota: %v", err)
	}
}

// TestRetryAfterPerTenantAsymmetric is the bugfix regression at the pool
// level: Retry-After derives from the asking tenant's own backlog, so a
// deep-queued tenant and a shallow one get different estimates.
func TestRetryAfterPerTenantAsymmetric(t *testing.T) {
	p, _ := gatedPool(t, 1000)
	deep := &Tenant{Name: "deep", Weight: 1}
	shallow := &Tenant{Name: "shallow", Weight: 1}

	noop := func() (JobStats, error) { return JobStats{}, nil }
	for i := 0; i < 10; i++ {
		if _, err := p.SubmitTenant("run", fmt.Sprintf("d%d", i), deep, noop); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.SubmitTenant("run", "s0", shallow, noop); err != nil {
		t.Fatal(err)
	}
	rd, rs := p.RetryAfterTenant(deep), p.RetryAfterTenant(shallow)
	if rd <= rs {
		t.Fatalf("Retry-After deep=%s shallow=%s: the 10-deep tenant must wait longer than the 1-deep one", rd, rs)
	}
}
