package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// testTenants is the three-tenant table the auth tests share: alpha has a
// deep queue cap, beta a shallow one (the Retry-After regression needs the
// asymmetry), gamma a higher weight and priority.
func testTenants(t *testing.T) *TenantSet {
	t.Helper()
	ts, err := ParseTenants([]byte(
		"key-a alpha 1 max-queued=4\n" +
			"key-b beta 1 max-queued=1\n" +
			"key-c gamma 2 priority=3\n"))
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// authedDo sends a request with an optional Bearer key and returns the
// response plus its body.
func authedDo(t *testing.T, method, url, key, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// errCode digs the structured code out of an apiError body.
func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var e struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("not an apiError body: %v (%s)", err, body)
	}
	return e.Error.Code
}

// TestAuthRejectsBadCredentials: with tenants configured, every missing,
// malformed, or unknown credential is a structured 401 with a
// WWW-Authenticate challenge — on job submission and listing alike.
func TestAuthRejectsBadCredentials(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Tenants: testTenants(t)})

	cases := []struct {
		name   string
		header string
	}{
		{"missing", ""},
		{"wrong-scheme", "Basic a2V5LWE="},
		{"empty-key", "Bearer "},
		{"no-space", "Bearerkey-a"},
		{"unknown-key", "Bearer key-z"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", strings.NewReader(tinyRun(400)))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			if c.header != "" {
				req.Header.Set("Authorization", c.header)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnauthorized {
				t.Fatalf("status %d, want 401 (body %s)", resp.StatusCode, body)
			}
			if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
				t.Fatalf("WWW-Authenticate = %q, want a Bearer challenge", got)
			}
			if code := errCode(t, body); code != "unauthorized" {
				t.Fatalf("error code %q, want %q", code, "unauthorized")
			}
		})
	}

	// Listings are gated the same way.
	resp, _ := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs", "", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v1/jobs: status %d, want 401", resp.StatusCode)
	}

	// And a valid key clears the gate.
	resp, body := authedDo(t, http.MethodPost, ts.URL+"/v1/run", "key-a", tinyRun(401))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authed run: status %d (body %s)", resp.StatusCode, body)
	}
}

// TestTenantScopedJobs: each tenant lists and fetches only its own jobs;
// another tenant's job id answers 404, not 403 (existence would leak
// traffic shape through the sequential ids).
func TestTenantScopedJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Tenants: testTenants(t)})

	resp, body := authedDo(t, http.MethodPost, ts.URL+"/v1/run", "key-a", tinyRun(411))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha run: status %d (body %s)", resp.StatusCode, body)
	}
	alphaJob := resp.Header.Get("X-Mdwd-Job")
	resp, body = authedDo(t, http.MethodPost, ts.URL+"/v1/run", "key-b", tinyRun(412))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta run: status %d (body %s)", resp.StatusCode, body)
	}
	betaJob := resp.Header.Get("X-Mdwd-Job")
	if alphaJob == "" || betaJob == "" {
		t.Fatalf("missing X-Mdwd-Job headers (alpha %q, beta %q)", alphaJob, betaJob)
	}

	resp, body = authedDo(t, http.MethodGet, ts.URL+"/v1/jobs", "key-a", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha jobs: status %d", resp.StatusCode)
	}
	var listing struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 {
		t.Fatalf("alpha sees %d jobs, want only its own 1: %s", len(listing.Jobs), body)
	}
	if v := listing.Jobs[0]; v.ID != alphaJob || v.Tenant != "alpha" {
		t.Fatalf("alpha's listing = %+v, want job %s tenant alpha", v, alphaJob)
	}

	// Cross-tenant fetch reads as nonexistent.
	resp, body = authedDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+betaJob, "key-a", "")
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != "unknown_job" {
		t.Fatalf("cross-tenant job fetch: status %d code %s, want 404 unknown_job", resp.StatusCode, body)
	}
	// The owner still sees it.
	resp, body = authedDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+betaJob, "key-b", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner job fetch: status %d (body %s)", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Tenant != "beta" {
		t.Fatalf("beta's job view tenant = %q", v.Tenant)
	}
}

// TestAnonymousModeOmitsTenantSurface: without a tenants file the API is
// byte-compatible with the pre-tenant daemon — no auth demanded, no "tenant"
// key in job views, no mdwd_tenant_* metric families.
func TestAnonymousModeOmitsTenantSurface(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, body := postRun(t, ts.URL, tinyRun(421))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d (body %s)", resp.StatusCode, body)
	}
	resp, body = authedDo(t, http.MethodGet, ts.URL+"/v1/jobs", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/jobs: status %d", resp.StatusCode)
	}
	if strings.Contains(string(body), `"tenant"`) {
		t.Fatalf("anonymous job listing leaks a tenant field: %s", body)
	}
	resp, body = authedDo(t, http.MethodGet, ts.URL+"/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if strings.Contains(string(body), "mdwd_tenant_") {
		t.Fatal("anonymous /metrics exposes mdwd_tenant_* families")
	}
}

// TestTenantMetricsFamilies: multi-tenant mode labels per-tenant gauges for
// every configured tenant (zeros included) and accounts cache hits/misses to
// the requesting tenant.
func TestTenantMetricsFamilies(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Tenants: testTenants(t)})

	// Same config twice: one miss (simulated), one hit (served from cache).
	for i := 0; i < 2; i++ {
		resp, body := authedDo(t, http.MethodPost, ts.URL+"/v1/run", "key-a", tinyRun(431))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d (body %s)", i, resp.StatusCode, body)
		}
	}

	_, body := authedDo(t, http.MethodGet, ts.URL+"/metrics", "", "")
	text := string(body)
	for _, want := range []string{
		`mdwd_tenant_weight{tenant="alpha"} 1`,
		`mdwd_tenant_weight{tenant="gamma"} 2`,
		`mdwd_tenant_priority{tenant="gamma"} 3`,
		`mdwd_tenant_jobs_completed{tenant="alpha"} 1`,
		`mdwd_tenant_jobs_completed{tenant="beta"} 0`,
		`mdwd_tenant_cache_hits{tenant="alpha"} 1`,
		`mdwd_tenant_cache_misses{tenant="alpha"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRetryAfterAsymmetricRegression pins the bugfix end to end: two tenants
// rejected over quota at the same instant get Retry-After values computed
// from their own queues — 4-deep alpha must be told to wait longer than
// 1-deep beta, where the old global estimate answered both identically.
func TestRetryAfterAsymmetricRegression(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Backlog: 100, Tenants: testTenants(t)})

	gate := make(chan struct{})
	if _, err := s.pool.Submit("run", "gate", func() (JobStats, error) {
		<-gate
		return JobStats{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { close(gate) }) // runs before newTestServer's drain
	waitCount(t, s.pool, JobRunning, 1)

	// Fill each tenant to its queue cap behind the gate: alpha 4 deep,
	// beta 1 deep.
	noop := func() (JobStats, error) { return JobStats{}, nil }
	alpha, beta := s.cfg.Tenants.ByName("alpha"), s.cfg.Tenants.ByName("beta")
	for i := 0; i < alpha.MaxQueued; i++ {
		if _, err := s.pool.SubmitTenant("run", "a"+strconv.Itoa(i), alpha, noop); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.pool.SubmitTenant("run", "b0", beta, noop); err != nil {
		t.Fatal(err)
	}

	retryAfter := func(key string, seed uint64) int {
		resp, body := authedDo(t, http.MethodPost, ts.URL+"/v1/run", key, tinyRun(seed))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s over quota: status %d, want 429 (body %s)", key, resp.StatusCode, body)
		}
		if code := errCode(t, body); code != "quota" {
			t.Fatalf("%s over quota: code %q, want %q", key, code, "quota")
		}
		secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("%s Retry-After header %q: %v", key, resp.Header.Get("Retry-After"), err)
		}
		return secs
	}
	ra, rb := retryAfter("key-a", 441), retryAfter("key-b", 442)
	if ra <= rb {
		t.Fatalf("Retry-After alpha=%ds beta=%ds: the 4-deep tenant must be told to wait longer than the 1-deep one", ra, rb)
	}
}
