package service

import (
	"fmt"
	"testing"
)

// TestJournalSizeCompaction: a journal with a size threshold compacts itself
// mid-flight once finished-job records push it past the limit, while the
// records that reconstruct still-pending jobs survive verbatim.
func TestJournalSizeCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	const maxBytes = 4096
	j.SetMaxBytes(maxBytes)

	// One job stays pending for the whole test, with a checkpoint.
	pendingHash := "deadbeef"
	mustAppend := func(rec JournalRec) {
		t.Helper()
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(JournalRec{Kind: recAccepted, Hash: pendingHash, JobKind: "run",
		Config: []byte(`{"stages":2}`)})
	mustAppend(JournalRec{Kind: recCheckpoint, Hash: pendingHash, File: "ckpt-deadbeef", Cycle: 1200})

	// Churn: hundreds of short-lived jobs, far more bytes than maxBytes.
	for i := 0; i < 400; i++ {
		h := fmt.Sprintf("%08x", i)
		mustAppend(JournalRec{Kind: recAccepted, Hash: h, JobKind: "run",
			Config: []byte(`{"stages":3,"degree":4,"op_rate":0.25}`)})
		mustAppend(JournalRec{Kind: recRunning, Hash: h})
		mustAppend(JournalRec{Kind: recDone, Hash: h})
	}

	// Compaction must have kept the file near the pending set's size, far
	// below both the churn volume and the threshold.
	if sz := j.Size(); sz > maxBytes {
		t.Errorf("journal size %d exceeds threshold %d after churn", sz, maxBytes)
	}

	// Replay sees exactly the pending job, checkpoint intact.
	pend, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 1 {
		t.Fatalf("pending jobs after compaction: %d, want 1 (%+v)", len(pend), pend)
	}
	p := pend[0]
	if p.Hash != pendingHash || p.Checkpoint != "ckpt-deadbeef" || p.Cycle != 1200 {
		t.Errorf("pending job corrupted by compaction: %+v", p)
	}
	if string(p.Config) != `{"stages":2}` {
		t.Errorf("pending config corrupted: %s", p.Config)
	}

	// Finishing the pending job and appending one more record compacts down
	// to (near) empty.
	mustAppend(JournalRec{Kind: recDone, Hash: pendingHash})
	for i := 0; i < 64; i++ {
		h := fmt.Sprintf("tail%04x", i)
		mustAppend(JournalRec{Kind: recAccepted, Hash: h, Config: []byte(`{"stages":4}`)})
		mustAppend(JournalRec{Kind: recDone, Hash: h})
	}
	pend, err = ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 0 {
		t.Errorf("pending jobs after finishing everything: %+v", pend)
	}
}

// TestJournalNoCompactionWithoutThreshold: with no SetMaxBytes the journal
// is append-only, exactly the pre-cluster behavior.
func TestJournalNoCompactionWithoutThreshold(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var want int64
	for i := 0; i < 100; i++ {
		h := fmt.Sprintf("%08x", i)
		for _, k := range []string{recAccepted, recDone} {
			if err := j.Append(JournalRec{Kind: k, Hash: h}); err != nil {
				t.Fatal(err)
			}
		}
	}
	want = j.Size()
	if want == 0 {
		t.Fatal("journal empty after 200 appends")
	}
	// Growth is monotone: one more append only adds bytes.
	if err := j.Append(JournalRec{Kind: recAccepted, Hash: "zz"}); err != nil {
		t.Fatal(err)
	}
	if j.Size() <= want {
		t.Errorf("size %d did not grow past %d", j.Size(), want)
	}
}
