package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mdworm/internal/core"
)

// Hash returns the content address of a configuration: the hex SHA-256 of
// the canonical encoding of its fully-resolved form (core.Config.Canonicalize
// applies every default and buffer-size normalization New would apply, and
// validates the result). Two configs that differ only in defaulted fields
// hash identically; any semantic difference changes the hash. The canonical
// form is returned alongside so callers build the simulator from exactly
// the hashed config.
//
// The encoding is json.Marshal of the canonical core.Config: struct fields
// marshal in declaration order, so the byte stream — and the hash — is
// deterministic for a given binary, and the Seed is part of the Config, so
// it is part of the address.
func Hash(cfg core.Config) (string, core.Config, error) {
	canon, err := cfg.Canonicalize()
	if err != nil {
		return "", core.Config{}, err
	}
	b, err := json.Marshal(canon)
	if err != nil {
		return "", core.Config{}, fmt.Errorf("service: encoding config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), canon, nil
}
