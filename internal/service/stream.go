package service

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"

	"mdworm/internal/experiments"
)

// Reorder is the planned-order point-event merge buffer shared by the
// single-node experiment handler and the cluster coordinator. Points
// complete in whatever order the pool (or the fleet) resolves them, but
// the ndjson stream must be deterministic — identical for any worker
// count, any peer count, and any failure schedule — so events are buffered
// by their planned sequence number (table order, from
// experiments.PlannedTags) and released as the contiguous prefix grows.
//
// The emitted sequence numbers are 1-based positions in the planned order;
// they are the resume cursor of the stream protocol: a client that saw
// seq N reconnects with after_seq=N and is re-sent only seq > N.
type Reorder struct {
	mu   sync.Mutex
	seq  map[string]int
	buf  map[int]experiments.PointEvent
	next int
	emit func(seq int64, ev experiments.PointEvent)
}

// NewReorder builds a buffer over the planned tag order. Duplicate tags
// cannot occur: tags embed experiment id, series, and sweep coordinate.
func NewReorder(tags []string, emit func(seq int64, ev experiments.PointEvent)) *Reorder {
	seq := make(map[string]int, len(tags))
	for i, t := range tags {
		seq[t] = i
	}
	return &Reorder{seq: seq, buf: make(map[int]experiments.PointEvent), emit: emit}
}

// Reindex installs the planned tag order after the fact, for callers that
// must wire their OnPoint callback before experiments.Plan produces the
// tags (Plan captures its Options). It must run before any point resolves
// — i.e. between Plan and Finish.
func (r *Reorder) Reindex(tags []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, t := range tags {
		r.seq[t] = i
	}
}

// Add accepts one completed point event and emits every event of the now
// contiguous prefix, in order.
func (r *Reorder) Add(ev experiments.PointEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.seq[ev.Tag]
	if !ok {
		// Not a planned point (cannot happen today); pass it through with
		// seq 0 rather than stall the stream.
		r.emit(0, ev)
		return
	}
	r.buf[i] = ev
	r.drainLocked()
}

func (r *Reorder) drainLocked() {
	for {
		ev, ok := r.buf[r.next]
		if !ok {
			return
		}
		delete(r.buf, r.next)
		r.next++
		r.emit(int64(r.next), ev) // next is already the 1-based seq
	}
}

// Flush emits whatever is still buffered, in sequence order — called after
// the sweep finishes, when gaps can exist (a canceled sweep fails points
// without emitting events).
func (r *Reorder) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := make([]int, 0, len(r.buf))
	for i := range r.buf {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		r.emit(int64(i+1), r.buf[i])
		delete(r.buf, i)
	}
}

// NewStreamToken mints a stream identifier for a resumable experiment
// stream: 16 random bytes, hex-encoded. The token names the logical stream
// across reconnects; the per-point cursor is the seq field.
func NewStreamToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The token is an identifier, not a secret; a degraded source
		// only risks collision, and the zero token is still valid.
		return "0123456789abcdef0123456789abcdef"
	}
	return hex.EncodeToString(b[:])
}

// ValidStreamToken reports whether s looks like a NewStreamToken output —
// lowercase hex, 32 chars — so handlers can reject garbage cursors early
// and journal keys stay path-safe.
func ValidStreamToken(s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
