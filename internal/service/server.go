package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mdworm/internal/core"
	"mdworm/internal/engine"
	"mdworm/internal/experiments"
	"mdworm/internal/obs"
	"mdworm/internal/stats"
)

// Config parameterizes the daemon.
type Config struct {
	// Workers bounds concurrent simulation jobs (0 = 1 per default; cmd/mdwd
	// defaults it to GOMAXPROCS).
	Workers int
	// Backlog bounds queued-but-unstarted jobs (0 = 4*Workers).
	Backlog int
	// CacheEntries bounds the in-memory result cache (0 = 1024).
	CacheEntries int
	// CacheDir, when non-empty, persists results on disk (write-through;
	// survives restarts).
	CacheDir string
	// MaxCycles caps the simulated cycles (warmup+measure+drain ceiling) a
	// single run request may ask for; 0 means no server-wide cap. Requests
	// may lower it per call with cycle_budget, never raise it.
	MaxCycles int64
	// RunTimeout bounds how long a /v1/run handler waits for its job; the
	// job keeps running (and populates the cache) after the handler gives
	// up with 504. 0 = 2 minutes.
	RunTimeout time.Duration
	// CheckpointEvery, when > 0 and CacheDir is set, checkpoints every run
	// job's simulator state every that many simulated cycles and journals
	// the blob reference, so a killed daemon resumes interrupted runs from
	// the last checkpoint on restart instead of starting over. 0 disables
	// mid-run checkpointing (interrupted runs then re-run from scratch).
	CheckpointEvery int64
	// JobDeadline, when > 0, fails a job that waited in the queue longer
	// than this instead of running it (its client has long given up; the
	// cache would still have been populated had it run, but the queue slot
	// is better spent on live requests). 0 = no deadline.
	JobDeadline time.Duration
	// JournalMaxBytes bounds the job journal's file size: past it, the
	// journal is compacted in place down to its pending-job records, so
	// long runs (a cluster coordinator's shard records especially) cannot
	// grow it unboundedly. 0 = 8 MiB; negative disables size-triggered
	// compaction (restart compaction still applies).
	JournalMaxBytes int64
	// Tenants, when non-nil, turns on multi-tenant mode: every /v1 request
	// must authenticate with "Authorization: Bearer <key>" against this set,
	// jobs are scheduled on per-tenant weighted queues, and /metrics gains
	// mdwd_tenant_* families. Nil preserves the single-tenant daemon exactly:
	// no auth, one anonymous queue, unchanged responses.
	Tenants *TenantSet
	// DeadlineCyclesPerSec, when > 0, converts a request's deadline_ms
	// into a deterministic cycle budget (deadline seconds × this rate,
	// the daemon's calibrated simulation speed): a run that cannot fit
	// its client's deadline is rejected up front with the structured
	// cycle_budget_exceeded error instead of burning workers on a result
	// nobody will wait for. 0 leaves deadlines as wall-clock wait bounds
	// only.
	DeadlineCyclesPerSec float64
}

// DefaultJournalMaxBytes is the journal size threshold when
// Config.JournalMaxBytes is 0.
const DefaultJournalMaxBytes = 8 << 20

// Server is the mdwd HTTP daemon: request resolution, the content-addressed
// cache, the job pool, and the metrics counters behind one http.Handler.
type Server struct {
	cfg     Config
	pool    *Pool
	cache   *Cache
	journal *Journal // nil without a cache directory
	mux     *http.ServeMux
	start   time.Time

	// tcMu guards tcache, the per-tenant result-cache accounting (only
	// populated in multi-tenant mode; the Cache itself stays tenant-blind —
	// results are content-addressed and shared).
	tcMu   sync.Mutex
	tcache map[string]*tenantCacheStats

	// tenMu guards ten, the live tenant table. It starts as cfg.Tenants and
	// is swapped whole by ReloadTenants (SIGHUP); requests resolve keys
	// against whichever table was live when they arrived.
	tenMu sync.RWMutex
	ten   *TenantSet
}

// tenants returns the live tenant table (nil in single-tenant mode).
func (s *Server) tenants() *TenantSet {
	s.tenMu.RLock()
	defer s.tenMu.RUnlock()
	return s.ten
}

// ReloadTenants atomically replaces the tenant table with a reloaded one:
// new keys authenticate immediately, removed keys stop authenticating,
// and existing queues take their new weights, priorities, and quotas in
// place without dropping a single queued job. Multi-tenant mode itself is
// fixed at startup — a daemon started without tenants cannot gain them (nor
// vice versa), because flipping auth on or off under live clients is never
// what a reload means.
func (s *Server) ReloadTenants(ts *TenantSet) error {
	if ts == nil || len(ts.Tenants()) == 0 {
		return fmt.Errorf("service: refusing to reload an empty tenant table")
	}
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	if s.ten == nil {
		return fmt.Errorf("service: daemon started single-tenant; cannot enable tenants at runtime")
	}
	s.ten = ts
	s.pool.UpdateTenants(ts)
	return nil
}

// tenantCacheStats counts one tenant's result-cache outcomes.
type tenantCacheStats struct{ hits, misses int64 }

// New builds a server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 1024
	}
	if cfg.RunTimeout <= 0 {
		cfg.RunTimeout = 2 * time.Minute
	}
	cache, err := NewCache(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		pool:   NewPool(cfg.Workers, cfg.Backlog),
		cache:  cache,
		mux:    http.NewServeMux(),
		start:  time.Now(),
		tcache: make(map[string]*tenantCacheStats),
		ten:    cfg.Tenants,
	}
	s.pool.SetDeadline(cfg.JobDeadline)
	s.pool.SetTenants(cfg.Tenants)
	if cfg.CacheDir != "" {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/cluster/checkpoint/{hash}", s.handleCheckpoint)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips the server into shutdown mode: new job-creating requests
// are rejected with 503 while queued and running jobs continue.
func (s *Server) BeginDrain() { s.pool.BeginDrain() }

// Drain stops intake and waits up to timeout for in-flight jobs to finish.
func (s *Server) Drain(timeout time.Duration) bool { return s.pool.Drain(timeout) }

// apiError is the structured error body of every non-2xx JSON response.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Job     string `json:"job,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503 rejections
	// so structured clients need not parse headers.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// Retryable tells clients whether repeating the identical request can
	// succeed: true for transient conditions (busy, quota, draining,
	// timeout), false for properties of the request itself (bad config,
	// deadlock, exceeded cycle budget).
	Retryable bool `json:"retryable,omitempty"`
}

func writeErr(w http.ResponseWriter, status int, e apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]apiError{"error": e})
}

// writeRejected maps a Submit failure to its backpressure response: 429
// "quota" past the tenant's own queue cap, 429 "busy" for a full global
// backlog, 503 "draining" during shutdown (distinct codes, so clients know
// whether to retry soon or find another daemon), all with a Retry-After
// estimate in header and body. The estimate is computed from the rejected
// tenant's queue, not the global one: a quota-limited tenant is never told
// to wait out other tenants' backlogs (with no tenants configured, the one
// anonymous queue makes this the historical global estimate).
func (s *Server) writeRejected(w http.ResponseWriter, err error, t *Tenant) {
	secs := int(s.pool.RetryAfterTenant(t).Round(time.Second).Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	switch {
	case errors.Is(err, ErrTenantQueueFull):
		writeErr(w, http.StatusTooManyRequests, apiError{
			Code: "quota", Message: err.Error(), RetryAfterSeconds: secs, Retryable: true})
	case errors.Is(err, ErrPoolFull):
		writeErr(w, http.StatusTooManyRequests, apiError{
			Code: "busy", Message: err.Error(), RetryAfterSeconds: secs, Retryable: true})
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, apiError{
			Code: "draining", Message: err.Error(), RetryAfterSeconds: secs, Retryable: true})
	default:
		writeErr(w, http.StatusServiceUnavailable, apiError{
			Code: "unavailable", Message: err.Error(), RetryAfterSeconds: secs, Retryable: true})
	}
}

// tenantFor authenticates a request. With no tenants configured every
// request belongs to the anonymous tenant; in multi-tenant mode the request
// must present "Authorization: Bearer <key>" for a configured key, or it is
// rejected with a structured 401 (the response is already written when ok is
// false).
func (s *Server) tenantFor(w http.ResponseWriter, r *http.Request) (t *Tenant, ok bool) {
	ts := s.tenants()
	if ts == nil {
		return anonymous, true
	}
	h := r.Header.Get("Authorization")
	if h == "" {
		s.writeUnauthorized(w, `missing Authorization header (want "Bearer <key>")`)
		return nil, false
	}
	scheme, key, found := strings.Cut(h, " ")
	key = strings.TrimSpace(key)
	if !found || !strings.EqualFold(scheme, "Bearer") || key == "" {
		s.writeUnauthorized(w, `malformed Authorization header (want "Bearer <key>")`)
		return nil, false
	}
	t = ts.LookupKey(key)
	if t == nil {
		s.writeUnauthorized(w, "unknown API key")
		return nil, false
	}
	return t, true
}

func (s *Server) writeUnauthorized(w http.ResponseWriter, msg string) {
	w.Header().Set("WWW-Authenticate", `Bearer realm="mdwd"`)
	writeErr(w, http.StatusUnauthorized, apiError{Code: "unauthorized", Message: msg})
}

// tenantCacheHit records one tenant's result-cache outcome (multi-tenant
// mode only; the cache itself is shared and content-addressed).
func (s *Server) tenantCacheHit(t *Tenant, hit bool) {
	if s.tenants() == nil {
		return
	}
	s.tcMu.Lock()
	defer s.tcMu.Unlock()
	st := s.tcache[t.Name]
	if st == nil {
		st = &tenantCacheStats{}
		s.tcache[t.Name] = st
	}
	if hit {
		st.hits++
	} else {
		st.misses++
	}
}

// journalAppend records a job transition when journaling is on. Journal
// failures must not fail requests: the journal is durability for restarts,
// not a correctness dependency of the running daemon.
func (s *Server) journalAppend(rec JournalRec) {
	if s.journal == nil {
		return
	}
	_ = s.journal.Append(rec)
}

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	Config ConfigRequest `json:"config"`
	// RawConfig, when present, is a fully resolved core.Config and takes
	// precedence over Config. It is the daemon-to-daemon dispatch form: a
	// cluster coordinator forwards the exact canonical config it hashed, so
	// worker-side resolution cannot drift from the coordinator's shard key.
	RawConfig *core.Config `json:"raw_config,omitempty"`
	// CycleBudget caps this run's simulated cycles
	// (warmup+measure+drain); it may tighten the server's MaxCycles,
	// never exceed it.
	CycleBudget int64 `json:"cycle_budget,omitempty"`
	// Resume, when non-empty, is a checkpoint blob (core.Snapshot bytes) to
	// resume the run from instead of starting at cycle zero — the shard
	// migration path: a coordinator re-dispatching a dead worker's shard
	// attaches the last mirrored checkpoint. The blob's embedded config must
	// hash to this request's config hash, or it is ignored and the run
	// starts from scratch (determinism makes the result identical).
	Resume []byte `json:"resume,omitempty"`
	// DeadlineMillis, when > 0, is how long the client is willing to wait
	// for this response, propagated from the front door (a coordinator
	// forwards its client's remaining budget on every dispatch). It
	// tightens the handler's wait below RunTimeout, and — when the server
	// configures DeadlineCyclesPerSec — converts into a deterministic
	// cycle-budget cap checked up front.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// RunResponse is the body of a successful POST /v1/run. Cache hits return
// the original miss's bytes verbatim, so the body never encodes hit/miss
// state — that travels in the X-Mdwd-Cache header.
type RunResponse struct {
	Hash    string        `json:"hash"`
	Config  core.Config   `json:"config"`
	Results stats.Results `json:"results"`
	// SimulatedCycles is sim.Now() at the end of the run, so remote
	// resolvers can report the same per-point cycle counts local runs do.
	SimulatedCycles int64 `json:"simulated_cycles"`
}

// totalCycles is the simulated-cycle ceiling of a resolved config: warmup
// and measurement run exactly, the drain at most DrainCycles.
func totalCycles(cfg core.Config) int64 {
	return cfg.WarmupCycles + cfg.MeasureCycles + cfg.DrainCycles
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_request", Message: err.Error()})
		return
	}
	var cfg core.Config
	if req.RawConfig != nil {
		cfg = *req.RawConfig
	} else {
		resolved, err := req.Config.Resolve()
		if err != nil {
			writeErr(w, http.StatusBadRequest, apiError{Code: "bad_config", Message: err.Error()})
			return
		}
		cfg = resolved
	}
	hash, canon, err := Hash(cfg)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, apiError{Code: "invalid_config", Message: err.Error()})
		return
	}
	budget := s.cfg.MaxCycles
	if req.CycleBudget > 0 && (budget == 0 || req.CycleBudget < budget) {
		budget = req.CycleBudget
	}
	if req.DeadlineMillis > 0 && s.cfg.DeadlineCyclesPerSec > 0 {
		// The client's wall-clock deadline becomes a deterministic cycle
		// cap: same config, same deadline, same verdict, on any replica.
		derived := int64(s.cfg.DeadlineCyclesPerSec * float64(req.DeadlineMillis) / 1000)
		if derived < 1 {
			derived = 1
		}
		if budget == 0 || derived < budget {
			budget = derived
		}
	}
	if budget > 0 && totalCycles(canon) > budget {
		writeErr(w, http.StatusUnprocessableEntity, apiError{
			Code: "cycle_budget_exceeded",
			Message: fmt.Sprintf("config needs up to %d simulated cycles, budget is %d",
				totalCycles(canon), budget),
		})
		return
	}

	if body, ok := s.cache.Get(hash); ok {
		s.tenantCacheHit(tn, true)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Mdwd-Cache", "hit")
		w.Header().Set("X-Mdwd-Hash", hash)
		w.Header().Set("X-Mdwd-Body-SHA256", BodySHA(body))
		w.Write(body)
		return
	}
	s.tenantCacheHit(tn, false)

	// Write-ahead: the job is journaled accepted (with its canonical config)
	// before it is queued, so a crash at any later point can rebuild it.
	canonJSON, err := json.Marshal(canon)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, apiError{Code: "internal", Message: err.Error()})
		return
	}
	s.journalAppend(JournalRec{Kind: recAccepted, Hash: hash, JobKind: "run", Tenant: tn.Name, Config: canonJSON})

	var body []byte
	resume := req.Resume
	job, err := s.pool.SubmitTenant("run", hash, tn, func() (JobStats, error) {
		b, st, err := s.executeRun(hash, canon, resume)
		body = b
		return st, err
	})
	if err != nil {
		// The WAL entry must not outlive the rejection, or a restart would
		// resurrect a job whose client was told to retry.
		s.journalAppend(JournalRec{Kind: recFailed, Hash: hash, JobKind: "run", Tenant: tn.Name, Error: err.Error()})
		s.writeRejected(w, err, tn)
		return
	}

	wait := s.cfg.RunTimeout
	if d := time.Duration(req.DeadlineMillis) * time.Millisecond; req.DeadlineMillis > 0 && d < wait {
		wait = d
	}
	timeout := time.NewTimer(wait)
	defer timeout.Stop()
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// Client gone; the job still finishes and populates the cache.
		return
	case <-timeout.C:
		writeErr(w, http.StatusGatewayTimeout, apiError{
			Code: "timeout", Job: job.ID, Retryable: true,
			Message: fmt.Sprintf("run exceeded the %s wait deadline; it continues in the background (poll /v1/jobs/%s, then repeat the request for a cache hit)",
				wait, job.ID),
		})
		return
	}
	if v, _ := s.pool.Get(job.ID); v.State == JobFailed {
		writeRunErr(w, job.ID, s.pool.Err(job.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Mdwd-Cache", "miss")
	w.Header().Set("X-Mdwd-Hash", hash)
	w.Header().Set("X-Mdwd-Job", job.ID)
	w.Header().Set("X-Mdwd-Body-SHA256", BodySHA(body))
	w.Write(body)
}

// BodySHA is the end-to-end integrity digest travelling in the
// X-Mdwd-Body-SHA256 header of /v1/run responses. The coordinator verifies
// the bytes it read against it, so response corruption anywhere on the
// path (proxies, chaos injection, flaky NICs) is detected and retried
// instead of silently merged into a sweep.
func BodySHA(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// checkpointPath returns where a run job's checkpoint blob lives; the hash
// key is already restricted to hex (validKey), so it cannot escape the
// cache directory.
func (s *Server) checkpointPath(hash string) string {
	return filepath.Join(s.cfg.CacheDir, hash+".ckpt")
}

// checkpointing reports whether run jobs snapshot their simulator mid-run.
func (s *Server) checkpointing() bool {
	return s.cfg.CheckpointEvery > 0 && s.journal != nil
}

// executeRun performs one run job: build a simulator (restoring from a
// checkpoint blob when resume is non-empty), run it — checkpointed when
// configured — and publish the response bytes to the cache. A corrupt,
// missing, or mismatched checkpoint degrades to a scratch re-run: recovery
// is never worse than not having checkpointed, and determinism makes the
// result identical either way. The blob's embedded config must hash back to
// this job's hash — a cluster coordinator attaches blobs across the network,
// and a stale or misrouted blob must not silently compute a different
// config's result under this hash.
func (s *Server) executeRun(hash string, canon core.Config, resume []byte) ([]byte, JobStats, error) {
	var sim *core.Simulator
	if len(resume) > 0 {
		if restored, err := core.Restore(resume); err == nil {
			if h, _, err := Hash(restored.Config()); err == nil && h == hash {
				sim = restored
			}
		}
	}
	if sim == nil {
		fresh, err := core.New(canon)
		if err != nil {
			return nil, JobStats{}, err
		}
		sim = fresh
	}

	var res stats.Results
	var err error
	occupancy := 0
	if s.checkpointing() {
		// A snapshotting run carries no occupancy capture (Snapshot refuses
		// attachments that live outside the checkpoint); durability wins
		// over one /metrics histogram.
		ckptFile := s.checkpointPath(hash)
		res, err = sim.RunCheckpointed(s.cfg.CheckpointEvery, func(data []byte, cycle int64) error {
			if werr := atomicWriteFile(ckptFile, data); werr != nil {
				return nil // best-effort durability; the run itself continues
			}
			s.journalAppend(JournalRec{Kind: recCheckpoint, Hash: hash, JobKind: "run", File: ckptFile, Cycle: cycle})
			return nil
		})
	} else {
		// A coarse samples-only capture (no tracer) feeds the occupancy
		// histogram of /metrics without perturbing the run.
		occ := &obs.Capture{SampleEvery: 256}
		sim.Observe(occ)
		res, err = sim.Run()
		occupancy = occ.Summary().PeakOccupancy()
	}
	st := JobStats{Points: 1, Cycles: sim.Now(), Violations: sim.Invariants().Total(), Occupancy: occupancy}
	if err != nil {
		return nil, st, err
	}
	b, err := json.Marshal(RunResponse{Hash: hash, Config: canon, Results: res, SimulatedCycles: sim.Now()})
	if err != nil {
		return nil, st, err
	}
	s.cache.Put(hash, b)
	os.Remove(s.checkpointPath(hash)) // the published result supersedes any checkpoint
	return b, st, nil
}

// atomicWriteFile publishes data at path via temp file, fsync, and rename,
// so a crash mid-write never leaves a torn blob where a reader (or a
// restarted daemon) expects a checkpoint.
func atomicWriteFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// recover replays the cache directory's journal, compacts it, and closes
// out every job the previous process left behind: finished-but-unjournaled
// runs are marked done (their result is in the cache), unfinished runs are
// re-enqueued — from their last checkpoint when one survives, from scratch
// otherwise — and unfinished experiments are failed, since their streaming
// clients are gone and their points land in no cache. An accepted job is
// therefore never silently lost, and a finished one never re-runs.
func (s *Server) recover() error {
	pending, err := ReplayJournal(s.cfg.CacheDir)
	if err != nil {
		return err
	}
	j, err := ResetJournal(s.cfg.CacheDir)
	if err != nil {
		return err
	}
	s.journal = j
	switch {
	case s.cfg.JournalMaxBytes > 0:
		j.SetMaxBytes(s.cfg.JournalMaxBytes)
	case s.cfg.JournalMaxBytes == 0:
		j.SetMaxBytes(DefaultJournalMaxBytes)
	}
	s.pool.onStart = func(job *Job) {
		s.journalAppend(JournalRec{Kind: recRunning, Hash: job.Detail, JobKind: job.Kind, Tenant: job.Tenant})
	}
	s.pool.onFinish = func(job *Job, jerr error) {
		rec := JournalRec{Kind: recDone, Hash: job.Detail, JobKind: job.Kind, Tenant: job.Tenant}
		if jerr != nil {
			rec.Kind = recFailed
			rec.Error = jerr.Error()
		}
		s.journalAppend(rec)
	}

	for _, p := range pending {
		switch {
		case p.JobKind == "experiment":
			s.journalAppend(JournalRec{Kind: recFailed, Hash: p.Hash, JobKind: p.JobKind,
				Error: "interrupted by daemon restart"})
		case len(p.Config) == 0:
			s.journalAppend(JournalRec{Kind: recFailed, Hash: p.Hash, JobKind: p.JobKind,
				Error: "journal carries no configuration for this job"})
		default:
			if _, ok := s.cache.Get(p.Hash); ok {
				// The run finished and published its result, but the crash
				// beat the journal's done record; close it out.
				s.journalAppend(JournalRec{Kind: recDone, Hash: p.Hash, JobKind: "run"})
				continue
			}
			var canon core.Config
			if err := json.Unmarshal(p.Config, &canon); err != nil {
				s.journalAppend(JournalRec{Kind: recFailed, Hash: p.Hash, JobKind: "run",
					Error: fmt.Sprintf("journaled config does not parse: %v", err)})
				continue
			}
			s.journalAppend(JournalRec{Kind: recAccepted, Hash: p.Hash, JobKind: "run", Tenant: p.Tenant, Config: p.Config})
			hash, ckptFile := p.Hash, p.Checkpoint
			s.pool.enqueueRecovered("run", hash, p.Tenant, func() (JobStats, error) {
				var resume []byte
				if ckptFile != "" {
					resume, _ = os.ReadFile(ckptFile) // absent blob → scratch re-run
				}
				_, st, err := s.executeRun(hash, canon, resume)
				return st, err
			})
		}
	}
	return nil
}

// writeRunErr maps a failed run job to a structured error: deadlocks and
// invariant violations are properties of the requested configuration (422,
// with their own codes, so fault studies can script against them); a
// recovered panic is a server fault (500). Either way the job slot is free
// again — failures never hang or poison the pool.
func writeRunErr(w http.ResponseWriter, jobID string, err error) {
	var de *engine.DeadlockError
	var ie *engine.InvariantError
	switch {
	case errors.As(err, &de):
		writeErr(w, http.StatusUnprocessableEntity, apiError{Code: "deadlock", Message: err.Error(), Job: jobID})
	case errors.As(err, &ie):
		writeErr(w, http.StatusUnprocessableEntity, apiError{Code: "invariant_violation", Message: err.Error(), Job: jobID})
	case errors.Is(err, ErrJobPanic):
		writeErr(w, http.StatusInternalServerError, apiError{Code: "internal", Message: err.Error(), Job: jobID})
	default:
		writeErr(w, http.StatusUnprocessableEntity, apiError{Code: "run_failed", Message: fmt.Sprint(err), Job: jobID})
	}
}

// ExperimentRequest is the body of POST /v1/experiment.
type ExperimentRequest struct {
	// ID is a registered experiment id (see GET /v1/experiments).
	ID string `json:"id"`
	// Quick shrinks windows and point counts.
	Quick bool `json:"quick,omitempty"`
	// Seed drives all runs (0 = 1).
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the sweep's internal parallelism; it is capped at
	// the server's worker budget. 0 = that budget.
	Workers int `json:"workers,omitempty"`
	// Stream resumes an interrupted stream: the token the start event of
	// the earlier attempt carried. The rest of the request must repeat
	// the original parameters (the sweep is deterministic, so the server
	// re-resolves and re-streams the identical event sequence).
	Stream string `json:"stream,omitempty"`
	// AfterSeq is the resume cursor: the highest seq the client has
	// already durably consumed. Points with seq <= AfterSeq are not
	// re-delivered. Only meaningful with Stream.
	AfterSeq int64 `json:"after_seq,omitempty"`
	// DeadlineMillis, when > 0, bounds the whole sweep: past it the
	// stream ends with a structured, retryable error event instead of
	// hanging.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// StreamEvent is one chunked JSON line of a POST /v1/experiment response:
// "start", then one "point" per planned measurement (in planned table
// order, each carrying its seq cursor), one "table" per rendered table,
// and finally "done" — or "error".
type StreamEvent struct {
	Type string `json:"type"`

	// start / error
	ID  string `json:"id,omitempty"`
	Job string `json:"job,omitempty"`
	Err string `json:"error,omitempty"`
	// Stream (start only) is the resume token for this logical stream.
	Stream string `json:"stream,omitempty"`
	// Retryable (error only) tells the client whether reconnecting with
	// the same request (plus the stream cursor) can succeed.
	Retryable bool `json:"retryable,omitempty"`

	// Seq (point only) is the 1-based planned-order position — the resume
	// cursor a reconnecting client passes back as after_seq.
	Seq int64 `json:"seq,omitempty"`

	// point
	Tag        string  `json:"tag,omitempty"`
	X          float64 `json:"x,omitempty"`
	McastLat   float64 `json:"mcast_lat,omitempty"`
	UniLat     float64 `json:"uni_lat,omitempty"`
	Throughput float64 `json:"throughput,omitempty"`
	Saturated  bool    `json:"saturated,omitempty"`
	Dropped    int64   `json:"dropped,omitempty"`
	Violations int64   `json:"violations,omitempty"`

	// table
	Text string `json:"text,omitempty"`

	// done (and point: Cycles)
	Points      int     `json:"points,omitempty"`
	Cycles      int64   `json:"simulated_cycles,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	var req ExperimentRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_request", Message: err.Error()})
		return
	}
	known := false
	for _, id := range experiments.IDs() {
		if id == req.ID {
			known = true
			break
		}
	}
	if !known {
		writeErr(w, http.StatusNotFound, apiError{Code: "unknown_experiment",
			Message: fmt.Sprintf("unknown experiment %q (GET /v1/experiments lists ids)", req.ID)})
		return
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Workers <= 0 || req.Workers > s.cfg.Workers {
		req.Workers = s.cfg.Workers
	}
	if req.Stream != "" && !ValidStreamToken(req.Stream) {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_stream",
			Message: fmt.Sprintf("%q is not a stream token", req.Stream)})
		return
	}
	if req.AfterSeq < 0 {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_cursor",
			Message: "after_seq must be >= 0"})
		return
	}
	stream := req.Stream
	if stream == "" {
		stream = NewStreamToken()
		req.AfterSeq = 0
	}

	// The worker goroutine runs the sweep and feeds events through a
	// channel; this handler goroutine alone touches the ResponseWriter.
	// The request context doubles as the sweep's context, so a client
	// disconnect cancels pending points instead of simulating for nobody;
	// a client deadline additionally bounds the sweep, and its expiry must
	// still reach a connected client as an error event — hence the two
	// contexts (emit escapes on client death only, never on deadline).
	clientCtx := r.Context()
	sweepCtx := clientCtx
	if req.DeadlineMillis > 0 {
		var cancel context.CancelFunc
		sweepCtx, cancel = context.WithTimeout(clientCtx, time.Duration(req.DeadlineMillis)*time.Millisecond)
		defer cancel()
	}
	events := make(chan StreamEvent, 64)
	emit := func(ev StreamEvent) {
		select {
		case events <- ev:
		case <-clientCtx.Done():
		}
	}
	// Experiments are journaled too — not to re-run them (their stream dies
	// with the client), but so a restart can report them failed instead of
	// losing an accepted job without a trace.
	s.journalAppend(JournalRec{Kind: recAccepted, Hash: req.ID, JobKind: "experiment", Tenant: tn.Name})
	job, err := s.pool.SubmitTenant("experiment", req.ID, tn, func() (JobStats, error) {
		defer close(events)
		observer := &obs.SweepObserver{SampleEvery: 256}
		// Points stream in planned table order (not completion order), so
		// the event sequence is deterministic for any worker count — the
		// property that makes both the seq resume cursor and cluster/
		// single-node byte-identity work.
		ro := NewReorder(nil, func(seq int64, ev experiments.PointEvent) {
			if seq > 0 && seq <= req.AfterSeq {
				return // the resuming client already consumed this point
			}
			out := StreamEvent{
				Type: "point", Seq: seq, Tag: ev.Tag, X: ev.X,
				McastLat: ev.McastLatency, UniLat: ev.UniLatency,
				Throughput: ev.Throughput, Saturated: ev.Saturated,
				Dropped: ev.DestsDropped, Violations: ev.Violations,
				Cycles: ev.Cycles,
			}
			if ev.Err != nil {
				out.Err = ev.Err.Error()
			}
			emit(out)
		})
		opts := experiments.Options{
			Quick:    req.Quick,
			Seed:     req.Seed,
			Workers:  req.Workers,
			Context:  sweepCtx,
			Observer: observer,
			OnPoint:  ro.Add,
		}
		ids := []string{req.ID}
		emitErr := func(err error) {
			retryable := errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
			emit(StreamEvent{Type: "error", ID: req.ID, Err: err.Error(), Retryable: retryable})
		}
		tables, err := experiments.Plan(ids, opts)
		if err != nil {
			emitErr(err)
			return JobStats{}, err
		}
		ro.Reindex(experiments.PlannedTags(tables))
		st, err := experiments.Finish(ids, tables, opts)
		ro.Flush()
		jst := JobStats{Points: st.Points, Cycles: st.Cycles, Violations: st.Violations,
			Occupancy: st.Occupancy.PeakOccupancy()}
		if err != nil {
			emitErr(err)
			return jst, err
		}
		for _, t := range tables {
			var buf strings.Builder
			t.Format(&buf)
			emit(StreamEvent{Type: "table", ID: t.ID, Text: buf.String()})
		}
		emit(StreamEvent{Type: "done", ID: req.ID, Points: st.Points,
			Cycles: st.Cycles, WallSeconds: st.Wall.Seconds()})
		return jst, nil
	})
	if err != nil {
		s.journalAppend(JournalRec{Kind: recFailed, Hash: req.ID, JobKind: "experiment", Tenant: tn.Name, Error: err.Error()})
		s.writeRejected(w, err, tn)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Mdwd-Job", job.ID)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.Encode(StreamEvent{Type: "start", ID: req.ID, Job: job.ID, Stream: stream})
	if flusher != nil {
		flusher.Flush()
	}
	for ev := range events {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	<-job.Done()
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string][]string{"experiments": experiments.IDs()})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	views := s.pool.List()
	if s.tenants() != nil {
		// Multi-tenant mode scopes the listing: a tenant sees its own jobs
		// only.
		views = s.pool.ListTenant(tn.Name)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string][]JobView{"jobs": views})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	v, found := s.pool.Get(r.PathValue("id"))
	if !found || (s.tenants() != nil && v.Tenant != tn.Name) {
		// Another tenant's job is indistinguishable from a nonexistent one:
		// job ids are sequential, and existence alone leaks traffic shape.
		writeErr(w, http.StatusNotFound, apiError{Code: "unknown_job",
			Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// handleCheckpoint serves the current checkpoint blob of a run job, keyed by
// config hash. A cluster coordinator mirrors these while a shard is in
// flight, so that when the worker later dies without warning (kill -9) the
// coordinator still holds a blob to migrate the shard with. 404 simply means
// "no checkpoint right now" — not yet written, already superseded by a
// published result, or checkpointing disabled — and the mirroring client
// treats it as a no-op.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	// In multi-tenant mode the mirror endpoint requires a valid key like the
	// rest of /v1 (a cluster coordinator authenticates with its worker key);
	// blobs are not tenant-scoped — they are keyed by content hash.
	if _, ok := s.tenantFor(w, r); !ok {
		return
	}
	hash := r.PathValue("hash")
	if !validKey(hash) {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_hash",
			Message: fmt.Sprintf("%q is not a config hash", hash)})
		return
	}
	if s.cfg.CacheDir == "" {
		writeErr(w, http.StatusNotFound, apiError{Code: "no_checkpoint",
			Message: "daemon runs without a cache directory"})
		return
	}
	blob, err := os.ReadFile(s.checkpointPath(hash))
	if err != nil {
		writeErr(w, http.StatusNotFound, apiError{Code: "no_checkpoint",
			Message: fmt.Sprintf("no checkpoint for %s", hash)})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.pool.Draining() {
		// Load balancers and retrying clients read the hint even off the
		// plain-text health probe.
		secs := int(s.pool.RetryAfter().Round(time.Second).Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics reports the daemon's counters in the Prometheus text
// exposition format (version 0.0.4): the historical metric names (same
// currency as BENCH_sweep.json — points and simulated cycles, with rates
// over in-job busy time) plus job-latency and run-occupancy histograms. See
// README.md for the field reference.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	counts := s.pool.Counts()
	points, cycles, busy := s.pool.Totals()
	violations, deadlocks := s.pool.FaultTotals()
	jobSeconds, runOccupancy := s.pool.Histograms()
	hits, misses, entries := s.cache.Stats()

	var pps, cps float64
	if sec := busy.Seconds(); sec > 0 {
		pps = float64(points) / sec
		cps = float64(cycles) / sec
	}

	w.Header().Set("Content-Type", obs.PromContentType)
	p := &obs.PromWriter{W: w}
	p.Gauge("mdwd_up_seconds", "Seconds since the daemon started.", time.Since(s.start).Seconds())
	p.Gauge("mdwd_workers", "Size of the simulation worker pool.", float64(s.cfg.Workers))
	states := make([]string, 0, len(counts))
	for st := range counts {
		states = append(states, string(st))
	}
	sort.Strings(states)
	for _, st := range states {
		p.Gauge("mdwd_jobs_"+st, "Jobs currently in the "+st+" state.", float64(counts[JobState(st)]))
	}
	p.Counter("mdwd_cache_hits", "Result-cache hits.", float64(hits))
	p.Counter("mdwd_cache_misses", "Result-cache misses.", float64(misses))
	p.Gauge("mdwd_cache_entries", "Result-cache entries resident in memory.", float64(entries))
	p.Counter("mdwd_points_total", "Independent simulator runs resolved.", float64(points))
	p.Counter("mdwd_simulated_cycles_total", "Simulated cycles across all runs.", float64(cycles))
	p.Counter("mdwd_invariant_violations_total", "Model-invariant checker hits across all runs.", float64(violations))
	p.Counter("mdwd_deadlocks_total", "Watchdog-reported deadlocks across all jobs.", float64(deadlocks))
	p.Counter("mdwd_busy_seconds", "In-job wall time across all workers.", busy.Seconds())
	p.Gauge("mdwd_points_per_sec", "Points resolved per busy second.", pps)
	p.Gauge("mdwd_cycles_per_sec", "Simulated cycles per busy second.", cps)
	p.Histogram("mdwd_job_seconds", "Job wall time in seconds.", jobSeconds)
	p.Histogram("mdwd_run_occupancy", "Peak sampled buffer occupancy per job (CB chunks or IB flits).", runOccupancy)

	// The mdwd_tenant_* families exist only in multi-tenant mode, keeping
	// the single-tenant exposition byte-compatible with older daemons.
	if s.tenants() != nil {
		s.writeTenantMetrics(p)
	}
}

// writeTenantMetrics renders the per-tenant families: one sample per
// configured tenant (zeros before its first request), labelled by tenant
// name.
func (s *Server) writeTenantMetrics(p *obs.PromWriter) {
	byName := make(map[string]TenantStat)
	for _, st := range s.pool.TenantStats() {
		byName[st.Name] = st
	}
	tenants := s.tenants().Tenants()
	sample := func(get func(t *Tenant, st TenantStat) float64) []obs.LabeledSample {
		out := make([]obs.LabeledSample, 0, len(tenants))
		for _, t := range tenants {
			out = append(out, obs.LabeledSample{
				Labels: [][2]string{{"tenant", t.Name}},
				Value:  get(t, byName[t.Name]),
			})
		}
		return out
	}
	s.tcMu.Lock()
	cache := make(map[string]tenantCacheStats, len(s.tcache))
	for name, st := range s.tcache {
		cache[name] = *st
	}
	s.tcMu.Unlock()

	p.LabeledGauge("mdwd_tenant_weight", "Configured fair-share weight per tenant.",
		sample(func(t *Tenant, _ TenantStat) float64 { return float64(t.Weight) }))
	p.LabeledGauge("mdwd_tenant_priority", "Configured priority class per tenant.",
		sample(func(t *Tenant, _ TenantStat) float64 { return float64(t.Priority) }))
	p.LabeledGauge("mdwd_tenant_jobs_queued", "Jobs waiting in each tenant's queue.",
		sample(func(_ *Tenant, st TenantStat) float64 { return float64(st.Queued) }))
	p.LabeledGauge("mdwd_tenant_jobs_running", "Jobs of each tenant running now.",
		sample(func(_ *Tenant, st TenantStat) float64 { return float64(st.Running) }))
	p.LabeledGauge("mdwd_tenant_jobs_completed", "Terminal jobs (done + failed) per tenant.",
		sample(func(_ *Tenant, st TenantStat) float64 { return float64(st.Completed) }))
	p.LabeledGauge("mdwd_tenant_jobs_failed", "Failed jobs per tenant.",
		sample(func(_ *Tenant, st TenantStat) float64 { return float64(st.Failed) }))
	p.LabeledGauge("mdwd_tenant_points_total", "Simulator runs resolved per tenant.",
		sample(func(_ *Tenant, st TenantStat) float64 { return float64(st.Points) }))
	p.LabeledGauge("mdwd_tenant_simulated_cycles_total", "Simulated cycles per tenant.",
		sample(func(_ *Tenant, st TenantStat) float64 { return float64(st.Cycles) }))
	p.LabeledGauge("mdwd_tenant_busy_seconds", "In-job wall time per tenant.",
		sample(func(_ *Tenant, st TenantStat) float64 { return st.Busy.Seconds() }))
	p.LabeledGauge("mdwd_tenant_cache_hits", "Result-cache hits per tenant.",
		sample(func(t *Tenant, _ TenantStat) float64 { return float64(cache[t.Name].hits) }))
	p.LabeledGauge("mdwd_tenant_cache_misses", "Result-cache misses per tenant.",
		sample(func(t *Tenant, _ TenantStat) float64 { return float64(cache[t.Name].misses) }))
}
