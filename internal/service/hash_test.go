package service

import (
	"encoding/json"
	"testing"
)

// hashOf decodes a ConfigRequest JSON body, resolves it, and hashes it.
func hashOf(t *testing.T, body string) string {
	t.Helper()
	var req ConfigRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	cfg, err := req.Resolve()
	if err != nil {
		t.Fatalf("resolve %s: %v", body, err)
	}
	h, _, err := Hash(cfg)
	if err != nil {
		t.Fatalf("hash %s: %v", body, err)
	}
	return h
}

// JSON field order is presentation, not semantics: it must not reach the
// content address.
func TestHashIgnoresFieldOrder(t *testing.T) {
	a := hashOf(t, `{"arch":"cb","degree":4,"seed":7}`)
	b := hashOf(t, `{"seed":7,"degree":4,"arch":"cb"}`)
	if a != b {
		t.Fatalf("field order changed the hash: %s vs %s", a, b)
	}
}

// Spelling out a default must hash like omitting it.
func TestHashIgnoresSpelledOutDefaults(t *testing.T) {
	base := hashOf(t, `{}`)
	for _, body := range []string{
		`{"arch":"cb"}`,                       // default architecture
		`{"scheme":"hw-bitstring"}`,           // default scheme
		`{"degree":8,"seed":1}`,               // default workload fields
		`{"stages":3,"arity":4}`,              // default fabric
		`{"up_policy":"hash"}`,                // default routing
		`{"warmup_cycles":5000,"mcast_len":64}`, // default windows/lengths
	} {
		if h := hashOf(t, body); h != base {
			t.Errorf("%s: spelled-out default changed the hash", body)
		}
	}
}

// Every semantic change must change the hash.
func TestHashTracksSemanticChanges(t *testing.T) {
	base := hashOf(t, `{}`)
	seen := map[string]string{"{}": base}
	for _, body := range []string{
		`{"arch":"ib"}`,
		`{"scheme":"sw-binomial"}`,
		`{"degree":4}`,
		`{"seed":2}`,
		`{"stages":2}`,
		`{"up_policy":"adaptive"}`,
		`{"mcast_len":32}`,
		`{"measure_cycles":10000}`,
		`{"op_rate":0.002}`,
		`{"send_overhead":32}`,
		`{"replicate_on_up_path":false}`,
	} {
		h := hashOf(t, body)
		if prev, dup := seen[body]; dup {
			t.Fatalf("duplicate body %s (%s)", body, prev)
		}
		for other, oh := range seen {
			if h == oh {
				t.Errorf("%s and %s collide on %s", body, other, h)
			}
		}
		seen[body] = h
	}
}

// The normalization inside canonicalization must also unify configs that
// differ only in buffer parameters below the normalized floor.
func TestHashIgnoresSubNormalBufferParams(t *testing.T) {
	var a, b ConfigRequest
	cfgA, err := a.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := b.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// Values below the header floor are both raised to it by
	// normalization, so they describe the same simulated system.
	cfgA.CB.InFIFOFlits = 1
	cfgB.CB.InFIFOFlits = 2
	ha, _, err := Hash(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	hb, _, err := Hash(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("sub-normal buffer parameter changed the hash")
	}
}

// Invalid configs must be rejected by Hash, not silently addressed.
func TestHashRejectsInvalid(t *testing.T) {
	var req ConfigRequest
	bad := 100
	req.Degree = &bad // 64-node default fabric allows at most 63
	cfg, err := req.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Hash(cfg); err == nil {
		t.Fatal("invalid config hashed")
	}
}

// Load/op_rate are mutually exclusive, and resolution applies load after
// payload lengths so the derived rate is stable.
func TestResolveLoadOpRate(t *testing.T) {
	var req ConfigRequest
	l, r := 0.1, 0.001
	req.Load, req.OpRate = &l, &r
	if _, err := req.Resolve(); err == nil {
		t.Fatal("load+op_rate accepted")
	}
	if hashOf(t, `{"load":0.1,"mcast_len":32}`) == hashOf(t, `{"load":0.1}`) {
		t.Fatal("payload length ignored by load conversion")
	}
}
