// Package service implements the mdwd simulation-as-a-service daemon: an
// HTTP front end over the simulator and the experiment suite, backed by a
// bounded worker pool and a content-addressed result cache.
//
// PR 1 made every run deterministic — the same fully-resolved config and
// seed produce byte-identical results at any worker count — which makes
// results perfectly cacheable: the cache key is a canonical hash of the
// resolved configuration (see Hash), and a cache hit returns the exact
// bytes the original miss produced.
package service

import (
	"fmt"
	"strings"

	"mdworm/internal/collective"
	"mdworm/internal/core"
	"mdworm/internal/faults"
	"mdworm/internal/routing"
	"mdworm/internal/topology"
)

// ParseArch maps an architecture name to its SwitchArch.
func ParseArch(s string) (core.SwitchArch, error) {
	switch strings.ToLower(s) {
	case "cb", "central-buffer":
		return core.CentralBuffer, nil
	case "ib", "input-buffer":
		return core.InputBuffer, nil
	}
	return 0, fmt.Errorf("unknown arch %q (want cb or ib)", s)
}

// ParseScheme maps a multicast-scheme name to its Scheme.
func ParseScheme(s string) (collective.Scheme, error) {
	switch strings.ToLower(s) {
	case "hw-bitstring":
		return collective.HardwareBitString, nil
	case "hw-multiport":
		return collective.HardwareMultiport, nil
	case "sw-binomial":
		return collective.SoftwareBinomial, nil
	case "sw-separate":
		return collective.SoftwareSeparate, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want hw-bitstring, hw-multiport, sw-binomial, or sw-separate)", s)
}

// ParseUpPolicy maps an up-port-policy name to its UpPolicy.
func ParseUpPolicy(s string) (routing.UpPolicy, error) {
	switch strings.ToLower(s) {
	case "hash":
		return routing.UpHash, nil
	case "random":
		return routing.UpRandom, nil
	case "adaptive":
		return routing.UpAdaptive, nil
	}
	return 0, fmt.Errorf("unknown up policy %q (want hash, random, or adaptive)", s)
}

// ParseTopology maps a topology name to its TopologyKind.
func ParseTopology(s string) (core.TopologyKind, error) {
	switch strings.ToLower(s) {
	case "kary-tree", "kary", "bmin":
		return core.KaryTree, nil
	case "irregular-tree", "irregular":
		return core.IrregularTree, nil
	}
	return 0, fmt.Errorf("unknown topology %q (want kary-tree or irregular-tree)", s)
}

// TreeRequest describes an irregular fabric in a run request.
type TreeRequest struct {
	Switches    int    `json:"switches"`
	MinHosts    int    `json:"min_hosts"`
	MaxHosts    int    `json:"max_hosts"`
	MaxChildren int    `json:"max_children"`
	Seed        uint64 `json:"seed"`
}

// ConfigRequest is the wire form of a simulation configuration: every field
// is optional and overrides the corresponding DefaultConfig value, so two
// requests that differ only in unspecified-versus-spelled-out defaults (or
// in JSON field order) resolve to the same core.Config — and therefore the
// same cache key.
type ConfigRequest struct {
	Topology *string      `json:"topology,omitempty"`
	Arity    *int         `json:"arity,omitempty"`
	Stages   *int         `json:"stages,omitempty"`
	Tree     *TreeRequest `json:"tree,omitempty"`

	Arch   *string `json:"arch,omitempty"`
	Scheme *string `json:"scheme,omitempty"`

	UpPolicy          *string `json:"up_policy,omitempty"`
	ReplicateOnUpPath *bool   `json:"replicate_on_up_path,omitempty"`
	LinkLatency       *int    `json:"link_latency,omitempty"`
	FlitBits          *int    `json:"flit_bits,omitempty"`

	SendOverhead *int `json:"send_overhead,omitempty"`
	RecvOverhead *int `json:"recv_overhead,omitempty"`

	// Load is offered load in delivered payload flits per node per cycle,
	// converted to an op rate once payload lengths are resolved; OpRate
	// sets the per-node Bernoulli rate directly. At most one may be set.
	Load              *float64 `json:"load,omitempty"`
	OpRate            *float64 `json:"op_rate,omitempty"`
	MulticastFraction *float64 `json:"mcast_fraction,omitempty"`
	Degree            *int     `json:"degree,omitempty"`
	UniPayloadFlits   *int     `json:"uni_len,omitempty"`
	McastPayloadFlits *int     `json:"mcast_len,omitempty"`
	HotSpotFraction   *float64 `json:"hot_spot_fraction,omitempty"`
	HotSpotNode       *int     `json:"hot_spot_node,omitempty"`

	WarmupCycles  *int64 `json:"warmup_cycles,omitempty"`
	MeasureCycles *int64 `json:"measure_cycles,omitempty"`
	DrainCycles   *int64 `json:"drain_cycles,omitempty"`

	Seed          *uint64 `json:"seed,omitempty"`
	WatchdogLimit *int64  `json:"watchdog_limit,omitempty"`

	// Faults injects a deterministic fault plan, either structured or as
	// the compact spec string faults.ParseSpec accepts (e.g.
	// "link-down@1000:sw3.p2;nic-stall@500+200:n5"). At most one may be
	// set. The plan is part of the canonical config, so it keys the cache.
	Faults     *faults.Plan `json:"faults,omitempty"`
	FaultsSpec *string      `json:"faults_spec,omitempty"`
	// StrictInvariants upgrades model-invariant violations to run failures.
	StrictInvariants *bool `json:"strict_invariants,omitempty"`
}

// Resolve overlays the request onto DefaultConfig and returns the resulting
// configuration (not yet canonicalized; Hash does that).
func (r ConfigRequest) Resolve() (core.Config, error) {
	cfg := core.DefaultConfig()

	if r.Topology != nil {
		k, err := ParseTopology(*r.Topology)
		if err != nil {
			return cfg, err
		}
		cfg.Topology = k
	}
	if r.Tree != nil {
		cfg.Topology = core.IrregularTree
		cfg.Tree = topology.TreeSpec{
			Switches:    r.Tree.Switches,
			MinHosts:    r.Tree.MinHosts,
			MaxHosts:    r.Tree.MaxHosts,
			MaxChildren: r.Tree.MaxChildren,
			Seed:        r.Tree.Seed,
		}
	}
	if cfg.Topology == core.IrregularTree && r.Tree == nil {
		return cfg, fmt.Errorf("irregular-tree topology needs a tree spec")
	}
	if r.Arity != nil {
		cfg.Arity = *r.Arity
	}
	if r.Stages != nil {
		cfg.Stages = *r.Stages
	}
	if r.Arch != nil {
		a, err := ParseArch(*r.Arch)
		if err != nil {
			return cfg, err
		}
		cfg.Arch = a
	}
	if r.Scheme != nil {
		s, err := ParseScheme(*r.Scheme)
		if err != nil {
			return cfg, err
		}
		cfg.Scheme = s
	}
	if r.UpPolicy != nil {
		p, err := ParseUpPolicy(*r.UpPolicy)
		if err != nil {
			return cfg, err
		}
		cfg.UpPolicy = p
	}
	if r.ReplicateOnUpPath != nil {
		cfg.ReplicateOnUpPath = *r.ReplicateOnUpPath
	}
	if r.LinkLatency != nil {
		cfg.LinkLatency = *r.LinkLatency
	}
	if r.FlitBits != nil {
		cfg.FlitBits = *r.FlitBits
	}
	if r.SendOverhead != nil {
		cfg.NIC.SendOverhead = *r.SendOverhead
	}
	if r.RecvOverhead != nil {
		cfg.NIC.RecvOverhead = *r.RecvOverhead
	}
	if r.MulticastFraction != nil {
		cfg.Traffic.MulticastFraction = *r.MulticastFraction
	}
	if r.Degree != nil {
		cfg.Traffic.Degree = *r.Degree
	}
	if r.UniPayloadFlits != nil {
		cfg.Traffic.UniPayloadFlits = *r.UniPayloadFlits
	}
	if r.McastPayloadFlits != nil {
		cfg.Traffic.McastPayloadFlits = *r.McastPayloadFlits
	}
	if r.HotSpotFraction != nil {
		cfg.Traffic.HotSpotFraction = *r.HotSpotFraction
	}
	if r.HotSpotNode != nil {
		cfg.Traffic.HotSpotNode = *r.HotSpotNode
	}
	switch {
	case r.Load != nil && r.OpRate != nil:
		return cfg, fmt.Errorf("load and op_rate are mutually exclusive")
	case r.OpRate != nil:
		cfg.Traffic.OpRate = *r.OpRate
	case r.Load != nil:
		// Converted after payload lengths and fractions are final.
		cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(*r.Load)
	}
	if r.WarmupCycles != nil {
		cfg.WarmupCycles = *r.WarmupCycles
	}
	if r.MeasureCycles != nil {
		cfg.MeasureCycles = *r.MeasureCycles
	}
	if r.DrainCycles != nil {
		cfg.DrainCycles = *r.DrainCycles
	}
	if r.Seed != nil {
		cfg.Seed = *r.Seed
	}
	if r.WatchdogLimit != nil {
		cfg.WatchdogLimit = *r.WatchdogLimit
	}
	switch {
	case r.Faults != nil && r.FaultsSpec != nil:
		return cfg, fmt.Errorf("faults and faults_spec are mutually exclusive")
	case r.Faults != nil:
		cfg.Faults = *r.Faults
	case r.FaultsSpec != nil:
		plan, err := faults.ParseSpec(*r.FaultsSpec)
		if err != nil {
			return cfg, err
		}
		cfg.Faults = plan
	}
	if r.StrictInvariants != nil {
		cfg.StrictInvariants = *r.StrictInvariants
	}
	if cfg.WarmupCycles < 0 || cfg.MeasureCycles <= 0 || cfg.DrainCycles <= 0 {
		return cfg, fmt.Errorf("cycle windows must be positive (warmup may be 0)")
	}
	if cfg.WatchdogLimit <= 0 {
		// The watchdog is the service's deadlock backstop; never run
		// a daemon job without one.
		cfg.WatchdogLimit = core.DefaultConfig().WatchdogLimit
	}
	return cfg, nil
}
