package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mdworm/internal/engine"
	"mdworm/internal/obs"
)

// ErrJobPanic wraps a panic escaping a job function. The worker recovers it,
// so one crashing simulation cannot poison its pool slot; the caller maps it
// to a 500.
var ErrJobPanic = errors.New("service: job panicked")

// ErrDraining rejects submissions to a pool that has begun shutdown; the
// handler maps it to 503 with a Retry-After hint.
var ErrDraining = errors.New("service: draining, not accepting new jobs")

// ErrPoolFull rejects submissions beyond the backlog bound; the handler maps
// it to 429 with a Retry-After hint.
var ErrPoolFull = errors.New("service: job backlog full")

// ErrJobDeadline fails a job that waited in the queue past the pool's
// per-job deadline instead of running it against a client that gave up long
// ago.
var ErrJobDeadline = errors.New("service: job exceeded its deadline while queued")

// JobState is the lifecycle of a scheduled request.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobStats is what a job reports about the simulation work it performed,
// aggregated into the daemon's /metrics counters.
type JobStats struct {
	// Points is the number of independent simulator runs.
	Points int
	// Cycles is the total simulated cycles across those runs.
	Cycles int64
	// Violations counts model-invariant checker hits across those runs.
	Violations int64
	// Occupancy is the peak sampled buffer occupancy across the job's runs
	// (central-buffer chunks or input-buffer flits; 0 when not sampled).
	Occupancy int
}

// Job is one scheduled unit of work: a single run or an experiment sweep.
// The zero of every field is meaningful to JobView; mutations go through the
// pool's lock.
type Job struct {
	ID     string
	Kind   string // "run" or "experiment"
	Detail string // content hash or experiment id

	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	err      error
	stats    JobStats

	fn   func() (JobStats, error)
	done chan struct{}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is the JSON projection of a job for /v1/jobs.
type JobView struct {
	ID       string  `json:"id"`
	Kind     string  `json:"kind"`
	Detail   string  `json:"detail"`
	State    JobState `json:"state"`
	Created  string  `json:"created"`
	Started  string  `json:"started,omitempty"`
	Finished string  `json:"finished,omitempty"`
	Error    string  `json:"error,omitempty"`
	Points   int     `json:"points,omitempty"`
	Cycles   int64   `json:"simulated_cycles,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"`
}

// Pool schedules jobs on a bounded set of workers and keeps their records
// for /v1/jobs. Submission is rejected once draining begins.
type Pool struct {
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	seq      int
	draining bool
	workers  int

	// deadline, when > 0, bounds how long a job may sit queued: a worker
	// dequeuing a job older than this fails it with ErrJobDeadline instead
	// of running it.
	deadline time.Duration

	// onStart and onFinish observe job state transitions (the journal hooks
	// into them). Set them before the first Submit; they are called outside
	// the pool lock, on the worker goroutine, reading only a job's immutable
	// identity fields.
	onStart  func(j *Job)
	onFinish func(j *Job, err error)

	tasks     chan *Job
	closeOnce sync.Once
	wg        sync.WaitGroup

	// Cumulative accounting for /metrics.
	points     int64
	cycles     int64
	violations int64
	deadlocks  int64
	completed  int64
	busy       time.Duration

	// Distributions for /metrics; guarded by mu, cloned for rendering.
	jobSeconds   *obs.Histogram
	runOccupancy *obs.Histogram
}

// NewPool starts workers goroutines servicing a backlog of pending jobs
// (backlog < 1 gets a small default).
func NewPool(workers, backlog int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if backlog < 1 {
		backlog = 4 * workers
	}
	p := &Pool{
		jobs:    make(map[string]*Job),
		workers: workers,
		tasks:   make(chan *Job, backlog),
		// Job latency from 1ms to ~17min; occupancy from one chunk/flit to
		// well past any configured buffer size.
		jobSeconds:   obs.NewHistogram(obs.ExpBuckets(0.001, 4, 10)...),
		runOccupancy: obs.NewHistogram(obs.ExpBuckets(1, 4, 8)...),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.tasks {
		p.mu.Lock()
		deadline := p.deadline
		waited := time.Since(j.created)
		if deadline > 0 && waited > deadline {
			// The client that queued this gave up long ago; fail it
			// without burning a worker on the simulation.
			j.state = JobFailed
			j.err = fmt.Errorf("%w: waited %s, deadline %s", ErrJobDeadline, waited.Round(time.Millisecond), deadline)
			j.finished = time.Now()
			p.completed++
			err := j.err
			p.mu.Unlock()
			if p.onFinish != nil {
				p.onFinish(j, err)
			}
			close(j.done)
			continue
		}
		j.state = JobRunning
		j.started = time.Now()
		p.mu.Unlock()
		if p.onStart != nil {
			p.onStart(j)
		}

		stats, err := runJob(j.fn)

		p.mu.Lock()
		j.finished = time.Now()
		j.stats = stats
		if err != nil {
			j.state = JobFailed
			j.err = err
		} else {
			j.state = JobDone
		}
		p.points += int64(stats.Points)
		p.cycles += stats.Cycles
		p.violations += stats.Violations
		var de *engine.DeadlockError
		if errors.As(err, &de) {
			p.deadlocks++
		}
		p.completed++
		p.busy += j.finished.Sub(j.started)
		p.jobSeconds.Observe(j.finished.Sub(j.started).Seconds())
		if stats.Occupancy > 0 {
			p.runOccupancy.Observe(float64(stats.Occupancy))
		}
		p.mu.Unlock()
		if p.onFinish != nil {
			p.onFinish(j, err)
		}
		close(j.done)
	}
}

// runJob invokes a job function with panic containment: a panic becomes an
// ErrJobPanic-wrapped failure of this job alone.
func runJob(fn func() (JobStats, error)) (st JobStats, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v", ErrJobPanic, p)
		}
	}()
	return fn()
}

// Submit schedules fn as a new job and returns its record immediately. It
// fails with ErrDraining once shutdown began and ErrPoolFull past the
// backlog bound (the caller maps those to 503 and 429 with Retry-After).
func (p *Pool) Submit(kind, detail string, fn func() (JobStats, error)) (*Job, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return nil, ErrDraining
	}
	// The whole admission — drain check, channel send, record — happens in
	// one critical section, the same one Drain closes the channel under, so
	// a send can never race the close (a send on a closed channel panics).
	p.seq++
	j := &Job{
		ID:      fmt.Sprintf("j%d", p.seq),
		Kind:    kind,
		Detail:  detail,
		state:   JobQueued,
		created: time.Now(),
		fn:      fn,
		done:    make(chan struct{}),
	}
	select {
	case p.tasks <- j:
	default:
		return nil, ErrPoolFull
	}
	p.jobs[j.ID] = j
	p.order = append(p.order, j.ID)
	return j, nil
}

// enqueueRecovered schedules a journal-replayed job with a blocking send
// instead of Submit's bounded one. Recovery runs during New, before the HTTP
// listener exists and before Drain can close the channel, so waiting for a
// pool slot is safe and guarantees no replayed job is dropped for backlog.
func (p *Pool) enqueueRecovered(kind, detail string, fn func() (JobStats, error)) *Job {
	p.mu.Lock()
	p.seq++
	j := &Job{
		ID:      fmt.Sprintf("j%d", p.seq),
		Kind:    kind,
		Detail:  detail,
		state:   JobQueued,
		created: time.Now(),
		fn:      fn,
		done:    make(chan struct{}),
	}
	p.jobs[j.ID] = j
	p.order = append(p.order, j.ID)
	p.mu.Unlock()
	p.tasks <- j
	return j
}

// Get returns the job record for id.
func (p *Pool) Get(id string) (JobView, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return p.view(j), true
}

// List returns every job record in submission order.
func (p *Pool) List() []JobView {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]JobView, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.view(p.jobs[id]))
	}
	return out
}

// view projects a job; caller holds the lock.
func (p *Pool) view(j *Job) JobView {
	v := JobView{
		ID:      j.ID,
		Kind:    j.Kind,
		Detail:  j.Detail,
		State:   j.state,
		Created: j.created.UTC().Format(time.RFC3339Nano),
		Points:  j.stats.Points,
		Cycles:  j.stats.Cycles,
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
		if !j.started.IsZero() {
			v.Seconds = j.finished.Sub(j.started).Seconds()
		}
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// Counts returns the number of jobs per state.
func (p *Pool) Counts() map[JobState]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := map[JobState]int{JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0}
	for _, j := range p.jobs {
		out[j.state]++
	}
	return out
}

// Totals returns the cumulative work accounting: points resolved, simulated
// cycles, and busy (in-job) wall time.
func (p *Pool) Totals() (points, cycles int64, busy time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.points, p.cycles, p.busy
}

// FaultTotals returns the cumulative verification counters: invariant
// checker hits and watchdog-reported deadlocks across all jobs.
func (p *Pool) FaultTotals() (violations, deadlocks int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.violations, p.deadlocks
}

// Histograms returns independent copies of the pool's latency and occupancy
// distributions for rendering.
func (p *Pool) Histograms() (jobSeconds, runOccupancy *obs.Histogram) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.jobSeconds.Clone(), p.runOccupancy.Clone()
}

// Err returns the failure error of a terminal job (nil otherwise); the
// handler inspects it with errors.As to map structured failure codes.
func (p *Pool) Err(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if j, ok := p.jobs[id]; ok {
		return j.err
	}
	return nil
}

// BeginDrain stops accepting new jobs; queued and running jobs continue.
func (p *Pool) BeginDrain() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
}

// Draining reports whether BeginDrain was called.
func (p *Pool) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// SetDeadline installs the queued-job deadline (0 disables). Call before
// the first Submit.
func (p *Pool) SetDeadline(d time.Duration) {
	p.mu.Lock()
	p.deadline = d
	p.mu.Unlock()
}

// QueueDepth returns the number of jobs admitted but not yet finished
// (queued plus running).
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, j := range p.jobs {
		if j.state == JobQueued || j.state == JobRunning {
			n++
		}
	}
	return n
}

// RetryAfter estimates when a rejected client should try again: the current
// queue depth times the observed mean job cost, divided across the workers,
// clamped to [1s, 5min]. Before any job has finished a conservative default
// cost stands in.
func (p *Pool) RetryAfter() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	depth := 0
	for _, j := range p.jobs {
		if j.state == JobQueued || j.state == JobRunning {
			depth++
		}
	}
	avg := 2 * time.Second
	if p.completed > 0 {
		avg = p.busy / time.Duration(p.completed)
	}
	est := time.Duration(depth+1) * avg / time.Duration(p.workers)
	if est < time.Second {
		est = time.Second
	}
	if est > 5*time.Minute {
		est = 5 * time.Minute
	}
	return est
}

// Drain stops intake, lets queued and running jobs finish, and waits up to
// timeout for the workers to exit. It reports whether the pool drained fully
// within the deadline (workers still running a job keep running either way;
// the process exiting is the final backstop). Safe to call repeatedly.
func (p *Pool) Drain(timeout time.Duration) bool {
	p.BeginDrain()
	// Close under the pool lock: Submit's send happens in the same critical
	// section after re-checking draining, so no send can hit a closed
	// channel.
	p.mu.Lock()
	p.closeOnce.Do(func() { close(p.tasks) })
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}
