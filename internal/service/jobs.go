package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mdworm/internal/engine"
	"mdworm/internal/obs"
)

// ErrJobPanic wraps a panic escaping a job function. The worker recovers it,
// so one crashing simulation cannot poison its pool slot; the caller maps it
// to a 500.
var ErrJobPanic = errors.New("service: job panicked")

// ErrDraining rejects submissions to a pool that has begun shutdown; the
// handler maps it to 503 with a Retry-After hint.
var ErrDraining = errors.New("service: draining, not accepting new jobs")

// ErrPoolFull rejects submissions beyond the backlog bound; the handler maps
// it to 429 with a Retry-After hint.
var ErrPoolFull = errors.New("service: job backlog full")

// ErrTenantQueueFull rejects a submission beyond the tenant's own queue
// quota; the handler maps it to 429 with a Retry-After computed from that
// tenant's queue alone — a quota-limited tenant is never told to wait for
// other tenants' backlogs.
var ErrTenantQueueFull = errors.New("service: tenant queue quota exceeded")

// ErrJobDeadline fails a job that waited in the queue past the pool's
// per-job deadline instead of running it against a client that gave up long
// ago.
var ErrJobDeadline = errors.New("service: job exceeded its deadline while queued")

// JobState is the lifecycle of a scheduled request.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobStats is what a job reports about the simulation work it performed,
// aggregated into the daemon's /metrics counters.
type JobStats struct {
	// Points is the number of independent simulator runs.
	Points int
	// Cycles is the total simulated cycles across those runs.
	Cycles int64
	// Violations counts model-invariant checker hits across those runs.
	Violations int64
	// Occupancy is the peak sampled buffer occupancy across the job's runs
	// (central-buffer chunks or input-buffer flits; 0 when not sampled).
	Occupancy int
}

// Job is one scheduled unit of work: a single run or an experiment sweep.
// The zero of every field is meaningful to JobView; mutations go through the
// pool's lock.
type Job struct {
	ID     string
	Kind   string // "run" or "experiment"
	Detail string // content hash or experiment id
	Tenant string // owning tenant's name ("" = anonymous)

	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	err      error
	stats    JobStats

	fn   func() (JobStats, error)
	done chan struct{}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is the JSON projection of a job for /v1/jobs.
type JobView struct {
	ID       string   `json:"id"`
	Kind     string   `json:"kind"`
	Detail   string   `json:"detail"`
	Tenant   string   `json:"tenant,omitempty"`
	State    JobState `json:"state"`
	Created  string   `json:"created"`
	Started  string   `json:"started,omitempty"`
	Finished string   `json:"finished,omitempty"`
	Error    string   `json:"error,omitempty"`
	Points   int      `json:"points,omitempty"`
	Cycles   int64    `json:"simulated_cycles,omitempty"`
	Seconds  float64  `json:"seconds,omitempty"`
}

// tenantQueue is one tenant's slice of the pool: its FIFO backlog, live
// occupancy, scheduling state, and cumulative accounting. Guarded by the
// pool's lock.
type tenantQueue struct {
	name       string
	weight     int
	priority   int
	maxQueued  int
	maxRunning int

	jobs    []*Job
	running int

	// credit is the smooth-weighted-round-robin state: every dispatch round
	// each eligible queue gains its weight, the richest queue wins, and the
	// winner pays the round's total weight — dispatch shares converge to
	// weights with bounded (one-round) unfairness and no starvation.
	credit float64

	// Cumulative accounting for /metrics and per-tenant Retry-After.
	completed int64 // terminal jobs (done + failed)
	failed    int64
	points    int64
	cycles    int64
	busy      time.Duration
}

// eligibleLocked reports whether this queue can supply the next dispatch:
// work queued and in-flight cap not yet reached. Caller holds the pool lock.
func (q *tenantQueue) eligibleLocked() bool {
	return len(q.jobs) > 0 && (q.maxRunning <= 0 || q.running < q.maxRunning)
}

// Pool schedules jobs on a bounded set of workers and keeps their records
// for /v1/jobs. Each tenant owns a FIFO queue; workers dispatch across
// queues by priority class first (strict, but running jobs are never
// preempted) and smooth weighted round-robin within the winning class.
// Submission is rejected once draining begins.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond // job dispatchable, job finished, or drain began
	jobs     map[string]*Job
	order    []string
	seq      int
	draining bool
	workers  int
	backlog  int

	tenants *TenantSet // resolves journal-replayed tenant names; may be nil

	queues      map[string]*tenantQueue
	queueList   []*tenantQueue // creation order: deterministic scheduling
	queuedTotal int

	// deadline, when > 0, bounds how long a job may sit queued: a worker
	// dequeuing a job older than this fails it with ErrJobDeadline instead
	// of running it.
	deadline time.Duration

	// onStart and onFinish observe job state transitions (the journal hooks
	// into them). Set them before the first Submit; they are called outside
	// the pool lock, on the worker goroutine, reading only a job's immutable
	// identity fields.
	onStart  func(j *Job)
	onFinish func(j *Job, err error)

	wg sync.WaitGroup

	// Cumulative accounting for /metrics.
	points     int64
	cycles     int64
	violations int64
	deadlocks  int64
	completed  int64
	busy       time.Duration

	// Distributions for /metrics; guarded by mu, cloned for rendering.
	jobSeconds   *obs.Histogram
	runOccupancy *obs.Histogram
}

// NewPool starts workers goroutines servicing a backlog of pending jobs
// (backlog < 1 gets a small default).
func NewPool(workers, backlog int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if backlog < 1 {
		backlog = 4 * workers
	}
	p := &Pool{
		jobs:    make(map[string]*Job),
		workers: workers,
		backlog: backlog,
		queues:  make(map[string]*tenantQueue),
		// Job latency from 1ms to ~17min; occupancy from one chunk/flit to
		// well past any configured buffer size.
		jobSeconds:   obs.NewHistogram(obs.ExpBuckets(0.001, 4, 10)...),
		runOccupancy: obs.NewHistogram(obs.ExpBuckets(1, 4, 8)...),
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// SetTenants installs the tenant table journal replay resolves names
// against. Call before the first Submit.
func (p *Pool) SetTenants(ts *TenantSet) {
	p.mu.Lock()
	p.tenants = ts
	p.mu.Unlock()
}

// UpdateTenants re-points the pool at a reloaded tenant table. Existing
// queues take their tenant's new scheduling parameters in place — queued jobs
// are never dropped or reordered. Queues of removed tenants keep draining
// under their old parameters until idle, at which point they are deleted
// (along with their cumulative accounting); queues of added tenants appear
// lazily on their first submission, as always.
func (p *Pool) UpdateTenants(ts *TenantSet) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tenants = ts
	for _, t := range ts.Tenants() {
		if q, ok := p.queues[t.Name]; ok {
			q.weight = max(t.Weight, 1)
			q.priority = t.Priority
			q.maxQueued = t.MaxQueued
			q.maxRunning = t.MaxRunning
		}
	}
	keep := p.queueList[:0]
	for _, q := range p.queueList {
		// The anonymous queue is structural, not configured; it stays.
		if q.name != "" && ts.ByName(q.name) == nil && len(q.jobs) == 0 && q.running == 0 {
			delete(p.queues, q.name)
			continue
		}
		keep = append(keep, q)
	}
	p.queueList = keep
	// A raised max-running cap or priority change can make a queue
	// dispatchable right now.
	p.cond.Broadcast()
}

// queueFor returns (creating if needed) the tenant's queue. Caller holds the
// lock.
func (p *Pool) queueFor(t *Tenant) *tenantQueue {
	if t == nil {
		t = anonymous
	}
	q, ok := p.queues[t.Name]
	if !ok {
		q = &tenantQueue{
			name:       t.Name,
			weight:     max(t.Weight, 1),
			priority:   t.Priority,
			maxQueued:  t.MaxQueued,
			maxRunning: t.MaxRunning,
		}
		p.queues[t.Name] = q
		p.queueList = append(p.queueList, q)
	}
	return q
}

// nextLocked picks and dequeues the next job to dispatch, or nil when no
// queue is eligible. The highest priority class with an eligible queue wins
// outright; within the class, smooth weighted round-robin. Caller holds the
// lock.
func (p *Pool) nextLocked() (*Job, *tenantQueue) {
	top := -1
	for _, q := range p.queueList {
		if q.eligibleLocked() && q.priority > top {
			top = q.priority
		}
	}
	if top < 0 {
		return nil, nil
	}
	total := 0
	var pick *tenantQueue
	for _, q := range p.queueList {
		if !q.eligibleLocked() || q.priority != top {
			continue
		}
		total += q.weight
		q.credit += float64(q.weight)
		if pick == nil || q.credit > pick.credit {
			pick = q
		}
	}
	pick.credit -= float64(total)
	j := pick.jobs[0]
	pick.jobs[0] = nil // release the reference for the collector
	pick.jobs = pick.jobs[1:]
	if len(pick.jobs) == 0 {
		pick.jobs = nil // reset the backing array so an idle queue holds nothing
	}
	p.queuedTotal--
	return j, pick
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		var j *Job
		var q *tenantQueue
		for {
			j, q = p.nextLocked()
			if j != nil {
				break
			}
			if p.draining && p.queuedTotal == 0 {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
		}
		deadline := p.deadline
		waited := time.Since(j.created)
		if deadline > 0 && waited > deadline {
			// The client that queued this gave up long ago; fail it
			// without burning a worker on the simulation.
			j.state = JobFailed
			j.err = fmt.Errorf("%w: waited %s, deadline %s", ErrJobDeadline, waited.Round(time.Millisecond), deadline)
			j.finished = time.Now()
			p.completed++
			q.completed++
			q.failed++
			err := j.err
			p.cond.Broadcast() // queue shrank: drain-waiters must re-check
			p.mu.Unlock()
			if p.onFinish != nil {
				p.onFinish(j, err)
			}
			close(j.done)
			continue
		}
		j.state = JobRunning
		j.started = time.Now()
		q.running++
		p.mu.Unlock()
		if p.onStart != nil {
			p.onStart(j)
		}

		stats, err := runJob(j.fn)

		p.mu.Lock()
		q.running--
		j.finished = time.Now()
		j.stats = stats
		if err != nil {
			j.state = JobFailed
			j.err = err
			q.failed++
		} else {
			j.state = JobDone
		}
		p.points += int64(stats.Points)
		p.cycles += stats.Cycles
		p.violations += stats.Violations
		var de *engine.DeadlockError
		if errors.As(err, &de) {
			p.deadlocks++
		}
		p.completed++
		p.busy += j.finished.Sub(j.started)
		q.completed++
		q.points += int64(stats.Points)
		q.cycles += stats.Cycles
		q.busy += j.finished.Sub(j.started)
		p.jobSeconds.Observe(j.finished.Sub(j.started).Seconds())
		if stats.Occupancy > 0 {
			p.runOccupancy.Observe(float64(stats.Occupancy))
		}
		// A finished job may free an in-flight cap slot or complete a drain.
		p.cond.Broadcast()
		p.mu.Unlock()
		if p.onFinish != nil {
			p.onFinish(j, err)
		}
		close(j.done)
	}
}

// runJob invokes a job function with panic containment: a panic becomes an
// ErrJobPanic-wrapped failure of this job alone.
func runJob(fn func() (JobStats, error)) (st JobStats, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v", ErrJobPanic, p)
		}
	}()
	return fn()
}

// Submit schedules fn as an anonymous-tenant job — the whole API when no
// tenants are configured, and byte-identical to the pre-tenant pool.
func (p *Pool) Submit(kind, detail string, fn func() (JobStats, error)) (*Job, error) {
	return p.SubmitTenant(kind, detail, nil, fn)
}

// SubmitTenant schedules fn as a new job on t's queue (nil = anonymous) and
// returns its record immediately. It fails with ErrDraining once shutdown
// began, ErrTenantQueueFull past the tenant's queue quota, and ErrPoolFull
// past the global backlog bound (the caller maps those to 503 and 429 with
// Retry-After).
func (p *Pool) SubmitTenant(kind, detail string, t *Tenant, fn func() (JobStats, error)) (*Job, error) {
	if t == nil {
		t = anonymous
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return nil, ErrDraining
	}
	q := p.queueFor(t)
	if q.maxQueued > 0 && len(q.jobs) >= q.maxQueued {
		return nil, fmt.Errorf("%w: tenant %q has %d jobs queued (cap %d)",
			ErrTenantQueueFull, q.name, len(q.jobs), q.maxQueued)
	}
	if p.queuedTotal >= p.backlog {
		return nil, ErrPoolFull
	}
	j := p.enqueueLocked(kind, detail, q, fn)
	p.cond.Signal()
	return j, nil
}

// enqueueLocked creates a job record on q's backlog. Caller holds the lock.
func (p *Pool) enqueueLocked(kind, detail string, q *tenantQueue, fn func() (JobStats, error)) *Job {
	p.seq++
	j := &Job{
		ID:      fmt.Sprintf("j%d", p.seq),
		Kind:    kind,
		Detail:  detail,
		Tenant:  q.name,
		state:   JobQueued,
		created: time.Now(),
		fn:      fn,
		done:    make(chan struct{}),
	}
	q.jobs = append(q.jobs, j)
	p.queuedTotal++
	p.jobs[j.ID] = j
	p.order = append(p.order, j.ID)
	return j
}

// enqueueRecovered schedules a journal-replayed job onto its original
// tenant's queue, bypassing the backlog and quota bounds: recovery runs
// during New, before the HTTP listener exists, and an already-accepted job
// must never be dropped for capacity. A tenant since removed from the
// configuration still gets its own weight-1 queue under the journaled name,
// preserving isolation.
func (p *Pool) enqueueRecovered(kind, detail, tenant string, fn func() (JobStats, error)) *Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.tenants.ByName(tenant)
	if t == nil {
		t = &Tenant{Name: tenant, Weight: 1}
	}
	j := p.enqueueLocked(kind, detail, p.queueFor(t), fn)
	p.cond.Signal()
	return j
}

// Get returns the job record for id.
func (p *Pool) Get(id string) (JobView, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return p.view(j), true
}

// List returns every job record in submission order.
func (p *Pool) List() []JobView {
	return p.ListTenant("*")
}

// ListTenant returns the job records of one tenant in submission order
// ("*" = every tenant).
func (p *Pool) ListTenant(tenant string) []JobView {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]JobView, 0, len(p.order))
	for _, id := range p.order {
		j := p.jobs[id]
		if tenant != "*" && j.Tenant != tenant {
			continue
		}
		out = append(out, p.view(j))
	}
	return out
}

// view projects a job; caller holds the lock.
func (p *Pool) view(j *Job) JobView {
	v := JobView{
		ID:      j.ID,
		Kind:    j.Kind,
		Detail:  j.Detail,
		Tenant:  j.Tenant,
		State:   j.state,
		Created: j.created.UTC().Format(time.RFC3339Nano),
		Points:  j.stats.Points,
		Cycles:  j.stats.Cycles,
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
		if !j.started.IsZero() {
			v.Seconds = j.finished.Sub(j.started).Seconds()
		}
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// Counts returns the number of jobs per state.
func (p *Pool) Counts() map[JobState]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := map[JobState]int{JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0}
	for _, j := range p.jobs {
		out[j.state]++
	}
	return out
}

// Totals returns the cumulative work accounting: points resolved, simulated
// cycles, and busy (in-job) wall time.
func (p *Pool) Totals() (points, cycles int64, busy time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.points, p.cycles, p.busy
}

// FaultTotals returns the cumulative verification counters: invariant
// checker hits and watchdog-reported deadlocks across all jobs.
func (p *Pool) FaultTotals() (violations, deadlocks int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.violations, p.deadlocks
}

// Histograms returns independent copies of the pool's latency and occupancy
// distributions for rendering.
func (p *Pool) Histograms() (jobSeconds, runOccupancy *obs.Histogram) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.jobSeconds.Clone(), p.runOccupancy.Clone()
}

// TenantStat is one tenant's live and cumulative pool accounting, for the
// mdwd_tenant_* metric families.
type TenantStat struct {
	Name      string
	Weight    int
	Priority  int
	Queued    int
	Running   int
	Completed int64
	Failed    int64
	Points    int64
	Cycles    int64
	Busy      time.Duration
}

// TenantStats returns per-tenant accounting in queue-creation order.
func (p *Pool) TenantStats() []TenantStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TenantStat, 0, len(p.queueList))
	for _, q := range p.queueList {
		out = append(out, TenantStat{
			Name:      q.name,
			Weight:    q.weight,
			Priority:  q.priority,
			Queued:    len(q.jobs),
			Running:   q.running,
			Completed: q.completed,
			Failed:    q.failed,
			Points:    q.points,
			Cycles:    q.cycles,
			Busy:      q.busy,
		})
	}
	return out
}

// Err returns the failure error of a terminal job (nil otherwise); the
// handler inspects it with errors.As to map structured failure codes.
func (p *Pool) Err(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if j, ok := p.jobs[id]; ok {
		return j.err
	}
	return nil
}

// BeginDrain stops accepting new jobs; queued and running jobs continue.
func (p *Pool) BeginDrain() {
	p.mu.Lock()
	p.draining = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Draining reports whether BeginDrain was called.
func (p *Pool) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// SetDeadline installs the queued-job deadline (0 disables). Call before
// the first Submit.
func (p *Pool) SetDeadline(d time.Duration) {
	p.mu.Lock()
	p.deadline = d
	p.mu.Unlock()
}

// QueueDepth returns the number of jobs admitted but not yet finished
// (queued plus running).
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, j := range p.jobs {
		if j.state == JobQueued || j.state == JobRunning {
			n++
		}
	}
	return n
}

// RetryAfter estimates when a rejected client should try again: the current
// queue depth times the observed mean job cost, divided across the workers,
// clamped to [1s, 5min]. Before any job has finished a conservative default
// cost stands in.
func (p *Pool) RetryAfter() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	depth := 0
	for _, j := range p.jobs {
		if j.state == JobQueued || j.state == JobRunning {
			depth++
		}
	}
	avg := 2 * time.Second
	if p.completed > 0 {
		avg = p.busy / time.Duration(p.completed)
	}
	return clampRetry(time.Duration(float64(depth+1) * float64(avg) / float64(p.workers)))
}

// RetryAfterTenant estimates when a rejected tenant should try again, from
// that tenant's own backlog: its queued+running depth, its own observed mean
// job cost (the pool-wide mean before it has completions), and its
// weight-proportional share of the workers among the currently active
// tenants. Two tenants under asymmetric load therefore receive different
// hints — a quota-limited tenant is never told to wait out other tenants'
// backlogs.
func (p *Pool) RetryAfterTenant(t *Tenant) time.Duration {
	if t == nil {
		t = anonymous
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	depth := 0
	weight := max(t.Weight, 1)
	avg := 2 * time.Second
	if p.completed > 0 {
		avg = p.busy / time.Duration(p.completed)
	}
	q := p.queues[t.Name]
	if q != nil {
		depth = len(q.jobs) + q.running
		weight = q.weight
		if q.completed > 0 {
			avg = q.busy / time.Duration(q.completed)
		}
	}
	// The total weight competing for workers: every active tenant, plus this
	// one whether or not it is active yet (its next request activates it).
	totalW := weight
	for _, other := range p.queueList {
		if other != q && len(other.jobs)+other.running > 0 {
			totalW += other.weight
		}
	}
	effWorkers := float64(p.workers) * float64(weight) / float64(totalW)
	return clampRetry(time.Duration(float64(depth+1) * float64(avg) / effWorkers))
}

// clampRetry bounds a Retry-After estimate to [1s, 5min].
func clampRetry(est time.Duration) time.Duration {
	if est < time.Second {
		return time.Second
	}
	if est > 5*time.Minute {
		return 5 * time.Minute
	}
	return est
}

// Drain stops intake, lets queued and running jobs finish, and waits up to
// timeout for the workers to exit. It reports whether the pool drained fully
// within the deadline (workers still running a job keep running either way;
// the process exiting is the final backstop). Safe to call repeatedly.
func (p *Pool) Drain(timeout time.Duration) bool {
	p.BeginDrain()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}
