// Package prof backs the -cpuprofile/-memprofile flags of the commands.
// Both mdwbench and mdwsim translate SIGINT/SIGTERM into context
// cancellation and return from run normally, so a deferred Stop runs on
// interrupted runs too and the profile files are always flushed and closed.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuFile (when non-empty) and arranges for
// a heap profile to be written to memFile (when non-empty) by the returned
// stop function. Defer the stop function in run; it is idempotent.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, err
		}
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return err
			}
			runtime.GC() // settle the live heap so the profile reflects steady state
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
