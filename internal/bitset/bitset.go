// Package bitset provides a fixed-capacity bit set used for destination
// sets and per-port reachability masks. Sets are value types backed by a
// small slice of words; all operations treat out-of-range bits as absent.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bit set over the integers [0, Cap()). The zero value is an empty
// set of capacity 0; use New to obtain a set able to hold n bits.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for bits [0, n).
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromSlice returns a set of capacity n containing exactly the given members.
func FromSlice(n int, members []int) Set {
	s := New(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// Cap returns the capacity of the set (the exclusive upper bound on members).
func (s Set) Cap() int { return s.n }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w, n: s.n}
}

// Add inserts i into the set. It panics if i is out of range.
func (s Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set. It panics if i is out of range.
func (s Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether i is a member. Out-of-range values are never members.
func (s Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of members.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t have identical members.
// Sets of different capacity are equal if their members coincide.
func (s Set) Equal(t Set) bool {
	longer, shorter := s.words, t.words
	if len(shorter) > len(longer) {
		longer, shorter = shorter, longer
	}
	for i, w := range shorter {
		if w != longer[i] {
			return false
		}
	}
	for _, w := range longer[len(shorter):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// And returns the intersection of s and t as a new set with s's capacity.
func (s Set) And(t Set) Set {
	r := New(s.n)
	for i := range r.words {
		if i < len(t.words) {
			r.words[i] = s.words[i] & t.words[i]
		}
	}
	return r
}

// AndNot returns s minus the members of t as a new set with s's capacity.
func (s Set) AndNot(t Set) Set {
	r := New(s.n)
	for i := range r.words {
		r.words[i] = s.words[i]
		if i < len(t.words) {
			r.words[i] &^= t.words[i]
		}
	}
	return r
}

// Or returns the union of s and t as a new set with s's capacity.
// Members of t beyond s's capacity are dropped.
func (s Set) Or(t Set) Set {
	r := New(s.n)
	for i := range r.words {
		r.words[i] = s.words[i]
		if i < len(t.words) {
			r.words[i] |= t.words[i]
		}
	}
	r.trim()
	return r
}

// OrIn adds all members of t to s in place, dropping members beyond s's
// capacity.
func (s Set) OrIn(t Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] |= t.words[i]
		}
	}
	s.trim()
}

// Intersects reports whether s and t share at least one member.
func (s Set) Intersects(t Set) bool {
	n := min(len(s.words), len(t.words))
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every member of s is also a member of t. It is
// a word-wise test (no per-member iteration, no allocation), used on hot
// paths in place of materializing s.AndNot(t) just to check emptiness.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		if i < len(t.words) {
			w &^= t.words[i]
		}
		if w != 0 {
			return false
		}
	}
	return true
}

// trim clears any bits at or beyond capacity that crept in via word ops.
func (s Set) trim() {
	if len(s.words) == 0 {
		return
	}
	rem := s.n % wordBits
	if rem != 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Members returns the members in increasing order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ForEach calls fn for each member in increasing order.
func (s Set) ForEach(fn func(int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &^= 1 << uint(b)
		}
	}
}

// First returns the smallest member, or -1 if the set is empty.
func (s Set) First() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Words returns the backing words (little-endian bit order). The returned
// slice aliases the set and must not be modified by callers that want the
// set unchanged.
func (s Set) Words() []uint64 { return s.words }

// SetWords overwrites the set contents from the given words, dropping any
// bits beyond capacity.
func (s Set) SetWords(w []uint64) {
	for i := range s.words {
		if i < len(w) {
			s.words[i] = w[i]
		} else {
			s.words[i] = 0
		}
	}
	s.trim()
}

// String renders the set as {a, b, c}.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
