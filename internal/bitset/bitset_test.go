package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() || s.Count() != 0 || s.Cap() != 130 {
		t.Fatalf("fresh set not empty: %v", s)
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		s.Add(i)
	}
	if s.Count() != 7 {
		t.Fatalf("count = %d, want 7", s.Count())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		if !s.Has(i) {
			t.Errorf("missing member %d", i)
		}
	}
	for _, i := range []int{2, 62, 66, 128, -1, 130, 1000} {
		if s.Has(i) {
			t.Errorf("unexpected member %d", i)
		}
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 6 {
		t.Fatalf("remove failed: %v", s)
	}
	if s.First() != 0 {
		t.Fatalf("First = %d, want 0", s.First())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	New(10).Add(10)
}

func TestMembersRoundTrip(t *testing.T) {
	members := []int{3, 17, 64, 100}
	s := FromSlice(128, members)
	if got := s.Members(); !reflect.DeepEqual(got, members) {
		t.Fatalf("Members = %v, want %v", got, members)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3, 50, 99})
	b := FromSlice(100, []int{2, 3, 4, 98})

	if got := a.And(b).Members(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("And = %v", got)
	}
	if got := a.AndNot(b).Members(); !reflect.DeepEqual(got, []int{1, 50, 99}) {
		t.Errorf("AndNot = %v", got)
	}
	if got := a.Or(b).Members(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 50, 98, 99}) {
		t.Errorf("Or = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false")
	}
	if a.Intersects(FromSlice(100, []int{5, 6})) {
		t.Error("disjoint Intersects = true")
	}
}

func TestOrInAndClone(t *testing.T) {
	a := FromSlice(64, []int{1})
	c := a.Clone()
	a.OrIn(FromSlice(64, []int{2}))
	if !a.Has(2) {
		t.Fatal("OrIn did not add")
	}
	if c.Has(2) {
		t.Fatal("Clone aliases original")
	}
}

func TestEqualDifferentCaps(t *testing.T) {
	a := FromSlice(10, []int{1, 5})
	b := FromSlice(1000, []int{1, 5})
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("same members, different caps, not Equal")
	}
	b.Add(900)
	if a.Equal(b) {
		t.Fatal("differing members Equal")
	}
}

func TestForEachOrder(t *testing.T) {
	s := FromSlice(256, []int{255, 0, 128, 64})
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, []int{0, 64, 128, 255}) {
		t.Fatalf("ForEach order = %v", got)
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{1, 3}).String(); got != "{1, 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	s := FromSlice(70, []int{0, 65, 69})
	s2 := New(70)
	s2.SetWords(s.Words())
	if !s.Equal(s2) {
		t.Fatal("SetWords(Words()) not identity")
	}
	// Out-of-capacity bits must be dropped.
	s3 := New(3)
	s3.SetWords([]uint64{0xFF})
	if got := s3.Members(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("SetWords kept out-of-range bits: %v", got)
	}
}

// Property: for random member slices, the set behaves like a map[int]bool.
func TestQuickAgainstMap(t *testing.T) {
	f := func(raw []uint16, capSeed uint8) bool {
		n := int(capSeed)%500 + 1
		ref := map[int]bool{}
		s := New(n)
		for _, r := range raw {
			i := int(r) % n
			if ref[i] {
				s.Remove(i)
				delete(ref, i)
			} else {
				s.Add(i)
				ref[i] = true
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Has(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: And/Or/AndNot match element-wise set logic.
func TestQuickAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randSet := func(n int) Set {
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Add(i)
			}
		}
		return s
	}
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(300) + 1
		a, b := randSet(n), randSet(n)
		and, or, andnot := a.And(b), a.Or(b), a.AndNot(b)
		for i := 0; i < n; i++ {
			if and.Has(i) != (a.Has(i) && b.Has(i)) {
				t.Fatalf("And mismatch at %d", i)
			}
			if or.Has(i) != (a.Has(i) || b.Has(i)) {
				t.Fatalf("Or mismatch at %d", i)
			}
			if andnot.Has(i) != (a.Has(i) && !b.Has(i)) {
				t.Fatalf("AndNot mismatch at %d", i)
			}
		}
	}
}

func BenchmarkAddHasRemove(b *testing.B) {
	s := New(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := i & 255
		s.Add(v)
		if !s.Has(v) {
			b.Fatal("missing")
		}
		s.Remove(v)
	}
}

func BenchmarkAndMembers(b *testing.B) {
	x := FromSlice(256, []int{1, 50, 100, 200, 255})
	y := New(256)
	for i := 0; i < 256; i += 2 {
		y.Add(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.And(y).Members()
	}
}
