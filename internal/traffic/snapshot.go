package traffic

import "fmt"

// States returns the position of every per-node random stream, in node
// order, for checkpointing.
func (g *Generator) States() []uint64 {
	out := make([]uint64, len(g.rngs))
	for i, r := range g.rngs {
		out[i] = r.State()
	}
	return out
}

// SetStates repositions every per-node stream. The slice must cover exactly
// the generator's nodes.
func (g *Generator) SetStates(states []uint64) error {
	if len(states) != len(g.rngs) {
		return fmt.Errorf("traffic: %d stream states for %d nodes", len(states), len(g.rngs))
	}
	for i, s := range states {
		g.rngs[i].SetState(s)
	}
	return nil
}
