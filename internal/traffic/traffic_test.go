package traffic

import (
	"math"
	"testing"
)

func spec() Spec {
	return Spec{
		OpRate:            0.01,
		MulticastFraction: 0.5,
		Degree:            8,
		UniPayloadFlits:   32,
		McastPayloadFlits: 64,
	}
}

func TestValidate(t *testing.T) {
	if err := spec().Validate(64); err != nil {
		t.Fatal(err)
	}
	bad := spec()
	bad.OpRate = 1.5
	if err := bad.Validate(64); err == nil {
		t.Error("rate > 1 accepted")
	}
	bad = spec()
	bad.Degree = 64
	if err := bad.Validate(64); err == nil {
		t.Error("degree = n accepted")
	}
	bad = spec()
	bad.MulticastFraction = -0.1
	if err := bad.Validate(64); err == nil {
		t.Error("negative fraction accepted")
	}
	bad = spec()
	bad.UniPayloadFlits = 0
	if err := bad.Validate(64); err == nil {
		t.Error("zero unicast payload accepted")
	}
	// Pure multicast does not need a unicast payload.
	pure := spec()
	pure.MulticastFraction = 1
	pure.UniPayloadFlits = 0
	if err := pure.Validate(64); err != nil {
		t.Errorf("pure multicast rejected: %v", err)
	}
}

func TestRateForLoad(t *testing.T) {
	s := spec()
	// Delivered payload per op: 0.5*8*64 + 0.5*32 = 272.
	if got := s.MeanDeliveredPayloadFlits(); got != 272 {
		t.Fatalf("mean delivered = %g", got)
	}
	rate := s.RateForLoad(0.272)
	if math.Abs(rate-0.001) > 1e-12 {
		t.Fatalf("rate = %g, want 0.001", rate)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, err := NewGenerator(spec(), 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(spec(), 64, 7)
	for cycle := 0; cycle < 200; cycle++ {
		for node := 0; node < 64; node++ {
			r1, ok1 := g1.Draw(node)
			r2, ok2 := g2.Draw(node)
			if ok1 != ok2 {
				t.Fatal("same seed diverged in arrivals")
			}
			if !ok1 {
				continue
			}
			if r1.Src != r2.Src || r1.Multicast != r2.Multicast || len(r1.Dests) != len(r2.Dests) {
				t.Fatal("same seed diverged in requests")
			}
			for i := range r1.Dests {
				if r1.Dests[i] != r2.Dests[i] {
					t.Fatal("same seed diverged in destinations")
				}
			}
		}
	}
}

func TestGeneratorRequestValidity(t *testing.T) {
	g, err := NewGenerator(spec(), 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	nMcast, nUni, total := 0, 0, 0
	for cycle := 0; cycle < 5000; cycle++ {
		for node := 0; node < 64; node++ {
			req, ok := g.Draw(node)
			if !ok {
				continue
			}
			total++
			if req.Src != node {
				t.Fatal("wrong source")
			}
			seen := map[int]bool{}
			for _, d := range req.Dests {
				if d < 0 || d >= 64 || d == node || seen[d] {
					t.Fatalf("bad destination set %v for node %d", req.Dests, node)
				}
				seen[d] = true
			}
			if req.Multicast {
				nMcast++
				if len(req.Dests) != 8 || req.Payload != 64 {
					t.Fatalf("bad multicast request %+v", req)
				}
			} else {
				nUni++
				if len(req.Dests) != 1 || req.Payload != 32 {
					t.Fatalf("bad unicast request %+v", req)
				}
			}
		}
	}
	// Rate: expect 64 * 5000 * 0.01 = 3200 ops, within 10%.
	if total < 2900 || total > 3500 {
		t.Fatalf("generated %d ops, expected about 3200", total)
	}
	// Mix: about half multicast.
	frac := float64(nMcast) / float64(total)
	if frac < 0.42 || frac > 0.58 {
		t.Fatalf("multicast fraction %.2f, expected about 0.5", frac)
	}
}

func TestGeneratorNodeIndependence(t *testing.T) {
	// Drawing nodes in a different order must not change a node's stream.
	g1, err := NewGenerator(spec(), 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(spec(), 16, 11)
	var a, b []Request
	for cycle := 0; cycle < 500; cycle++ {
		for node := 0; node < 16; node++ {
			if r, ok := g1.Draw(node); ok && node == 3 {
				a = append(a, r)
			}
		}
		for node := 15; node >= 0; node-- {
			if r, ok := g2.Draw(node); ok && node == 3 {
				b = append(b, r)
			}
		}
	}
	if len(a) != len(b) {
		t.Fatalf("node 3 stream length differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Multicast != b[i].Multicast || a[i].Dests[0] != b[i].Dests[0] {
			t.Fatal("node 3 stream content differs under reordering")
		}
	}
}

func TestPickOtherNeverSelf(t *testing.T) {
	g, _ := NewGenerator(Spec{OpRate: 1, MulticastFraction: 0, UniPayloadFlits: 1}, 4, 5)
	for cycle := 0; cycle < 1000; cycle++ {
		for node := 0; node < 4; node++ {
			req, ok := g.Draw(node)
			if !ok {
				continue
			}
			if req.Dests[0] == node {
				t.Fatal("unicast to self")
			}
		}
	}
}

func TestHotSpotTraffic(t *testing.T) {
	s := Spec{
		OpRate:          0.05,
		UniPayloadFlits: 16,
		HotSpotFraction: 0.5,
		HotSpotNode:     7,
	}
	g, err := NewGenerator(s, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	hot, total := 0, 0
	for cycle := 0; cycle < 2000; cycle++ {
		for node := 0; node < 64; node++ {
			req, ok := g.Draw(node)
			if !ok {
				continue
			}
			total++
			if req.Dests[0] == 7 {
				hot++
			}
		}
	}
	frac := float64(hot) / float64(total)
	// Half the traffic targets the hot node plus the uniform share.
	if frac < 0.40 || frac > 0.62 {
		t.Fatalf("hot-spot fraction %.2f, expected about 0.5", frac)
	}
}

func TestHotSpotValidation(t *testing.T) {
	bad := Spec{OpRate: 0.1, UniPayloadFlits: 8, HotSpotFraction: 1.5}
	if err := bad.Validate(16); err == nil {
		t.Error("fraction > 1 accepted")
	}
	bad = Spec{OpRate: 0.1, UniPayloadFlits: 8, HotSpotFraction: 0.5, HotSpotNode: 99}
	if err := bad.Validate(16); err == nil {
		t.Error("out-of-range hot node accepted")
	}
}
