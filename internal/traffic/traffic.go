// Package traffic generates the workloads of the paper's evaluation:
// multiple multicast (every node issues multicasts), bimodal traffic
// (unicast background plus a multicast component), and pure unicast, with
// Bernoulli arrivals per node and uniformly random destination selection.
package traffic

import (
	"fmt"

	"mdworm/internal/engine"
)

// Spec describes a stochastic workload.
type Spec struct {
	// OpRate is the probability, per node per cycle, of generating a new
	// operation (Bernoulli arrivals).
	OpRate float64
	// MulticastFraction is the probability that a generated operation is
	// a multicast; the rest are unicasts. 1.0 gives the multiple-multicast
	// workload, 0.0 pure unicast.
	MulticastFraction float64
	// Degree is the number of destinations of each multicast.
	Degree int
	// UniPayloadFlits and McastPayloadFlits are the payload lengths.
	UniPayloadFlits   int
	McastPayloadFlits int

	// HotSpotFraction sends that fraction of unicast messages to HotSpotNode
	// instead of a uniform destination, modeling the hot-spot traffic the
	// paper lists as future work. Zero disables it.
	HotSpotFraction float64
	// HotSpotNode is the hot destination (ignored when HotSpotFraction is 0).
	HotSpotNode int
}

// Validate checks the spec against the system size.
func (s Spec) Validate(n int) error {
	switch {
	case s.OpRate < 0 || s.OpRate > 1:
		return fmt.Errorf("traffic: OpRate %g outside [0,1]", s.OpRate)
	case s.MulticastFraction < 0 || s.MulticastFraction > 1:
		return fmt.Errorf("traffic: MulticastFraction %g outside [0,1]", s.MulticastFraction)
	case s.MulticastFraction > 0 && (s.Degree < 1 || s.Degree > n-1):
		return fmt.Errorf("traffic: Degree %d outside [1,%d]", s.Degree, n-1)
	case s.HotSpotFraction < 0 || s.HotSpotFraction > 1:
		return fmt.Errorf("traffic: HotSpotFraction %g outside [0,1]", s.HotSpotFraction)
	case s.HotSpotFraction > 0 && (s.HotSpotNode < 0 || s.HotSpotNode >= n):
		return fmt.Errorf("traffic: HotSpotNode %d outside [0,%d)", s.HotSpotNode, n)
	case s.MulticastFraction > 0 && s.McastPayloadFlits < 1,
		s.MulticastFraction < 1 && s.UniPayloadFlits < 1:
		return fmt.Errorf("traffic: payload must be >= 1 flit")
	}
	return nil
}

// MeanDeliveredPayloadFlits returns the expected payload flits *delivered*
// per operation: a multicast to d destinations delivers d copies. This is
// the natural capacity axis for multicast workloads — each node can eject at
// most one flit per cycle, so delivered demand saturates near 1.0 regardless
// of scheme, and schemes differ in how much injected traffic, host overhead,
// and network contention they need to meet the same delivered demand.
func (s Spec) MeanDeliveredPayloadFlits() float64 {
	return s.MulticastFraction*float64(s.Degree*s.McastPayloadFlits) +
		(1-s.MulticastFraction)*float64(s.UniPayloadFlits)
}

// RateForLoad converts an offered load, expressed in delivered payload flits
// per node per cycle, into the per-node operation rate.
func (s Spec) RateForLoad(load float64) float64 {
	return load / s.MeanDeliveredPayloadFlits()
}

// Request is one generated operation before planning.
type Request struct {
	Src       int
	Dests     []int
	Multicast bool
	Payload   int
}

// Generator draws requests deterministically from per-node random streams.
type Generator struct {
	spec Spec
	n    int
	rngs []*engine.RNG
}

// NewGenerator creates a generator for n nodes seeded from seed. Each node
// has an independent stream, so results are insensitive to evaluation order.
func NewGenerator(spec Spec, n int, seed uint64) (*Generator, error) {
	if err := spec.Validate(n); err != nil {
		return nil, err
	}
	root := engine.NewRNG(seed)
	g := &Generator{spec: spec, n: n, rngs: make([]*engine.RNG, n)}
	for i := range g.rngs {
		g.rngs[i] = root.Fork(uint64(i))
	}
	return g, nil
}

// Spec returns the generator's workload spec.
func (g *Generator) Spec() Spec { return g.spec }

// Draw returns the operation node generates this cycle, if any.
func (g *Generator) Draw(node int) (Request, bool) {
	rng := g.rngs[node]
	if !rng.Bernoulli(g.spec.OpRate) {
		return Request{}, false
	}
	req := Request{Src: node}
	if rng.Bernoulli(g.spec.MulticastFraction) {
		req.Multicast = true
		req.Payload = g.spec.McastPayloadFlits
		req.Dests = rng.Sample(g.n, g.spec.Degree, map[int]bool{node: true})
	} else {
		req.Payload = g.spec.UniPayloadFlits
		if g.spec.HotSpotFraction > 0 && node != g.spec.HotSpotNode &&
			rng.Bernoulli(g.spec.HotSpotFraction) {
			req.Dests = []int{g.spec.HotSpotNode}
		} else {
			req.Dests = []int{pickOther(rng, g.n, node)}
		}
	}
	return req, true
}

func pickOther(rng *engine.RNG, n, self int) int {
	d := rng.Intn(n - 1)
	if d >= self {
		d++
	}
	return d
}

// Skew deterministically staggers the entry of collective participants: a
// stateless function of (seed, rep, node), so checkpoints need not carry it
// and any replica computes the identical stagger. At returns a delay in
// [0, Max] cycles; a zero or negative Max disables skew entirely.
type Skew struct {
	Seed uint64
	Max  int64
}

// At returns the entry delay of the node in the given rep.
func (k Skew) At(rep, node int) int64 {
	if k.Max <= 0 {
		return 0
	}
	rng := engine.NewRNG(k.Seed).Fork(uint64(rep)).Fork(uint64(node))
	return int64(rng.Uint64() % uint64(k.Max+1))
}
