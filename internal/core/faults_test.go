package core

import (
	"fmt"
	"reflect"
	"testing"

	"mdworm/internal/collective"
	"mdworm/internal/engine"
	"mdworm/internal/faults"
	"mdworm/internal/stats"
	"mdworm/internal/topology"
)

// faultTestBase is a short loaded run that finishes quickly but generates
// enough traffic to exercise every drop path.
func faultTestBase() Config {
	cfg := DefaultConfig()
	cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.2)
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 3_000
	cfg.DrainCycles = 2_000_000
	cfg.WatchdogLimit = 100_000
	return cfg
}

// checkAccounted asserts the fundamental fault property: every generated op
// completed — each destination delivered or accounted dropped — the fabric
// drained, and the invariant checker stayed silent.
func checkAccounted(t *testing.T, name string, sim *Simulator, res stats.Results) {
	t.Helper()
	if !sim.Quiesced() {
		t.Fatalf("%s: network not drained (outstanding=%d)", name, sim.outstanding)
	}
	done := res.Multicast.OpsCompleted + res.Unicast.OpsCompleted
	gen := res.Multicast.OpsGenerated + res.Unicast.OpsGenerated
	if done != gen {
		t.Fatalf("%s: %d of %d ops completed", name, done, gen)
	}
	if res.InvariantViolations != 0 {
		t.Fatalf("%s: %d invariant violations: %s", name, res.InvariantViolations, sim.Invariants().Summary())
	}
}

// TestFaultLinkDownDropsAndDrains severs a NIC attachment mid-run on both
// architectures: the run must complete with the lost destinations accounted
// instead of hanging the drain.
func TestFaultLinkDownDropsAndDrains(t *testing.T) {
	for _, arch := range []SwitchArch{CentralBuffer, InputBuffer} {
		cfg := faultTestBase()
		cfg.Arch = arch
		cfg.Faults = faults.Plan{Events: []faults.Event{
			{Kind: faults.LinkDown, At: 1500, Switch: 0, Port: 0},
		}}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		name := arch.String()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkAccounted(t, name, sim, res)
		if res.DestsDropped == 0 || res.OpsDegraded == 0 {
			t.Fatalf("%s: severed NIC attachment dropped nothing (dests=%d ops=%d)",
				name, res.DestsDropped, res.OpsDegraded)
		}
	}
}

// TestFaultPlanDeterministic runs the same faulted configuration twice and
// requires bit-identical results: fault plans are part of the deterministic
// replay contract (and therefore cacheable).
func TestFaultPlanDeterministic(t *testing.T) {
	run := func() stats.Results {
		cfg := faultTestBase()
		cfg.Faults = faults.Plan{Events: []faults.Event{
			{Kind: faults.LinkDown, At: 1200, Switch: 16, Port: 2},
			{Kind: faults.PortStuck, At: 800, Duration: 400, Switch: 4, Port: 5},
			{Kind: faults.NICStall, At: 600, Duration: 300, Node: 9},
		}}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulted run not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestFaultTransientWindowsComplete checks that bounded stuck/stall windows
// merely delay traffic: nothing is dropped, nothing deadlocks — the fault
// driver reports scheduled progress to the watchdog while a window is open.
func TestFaultTransientWindowsComplete(t *testing.T) {
	for _, arch := range []SwitchArch{CentralBuffer, InputBuffer} {
		cfg := faultTestBase()
		cfg.Arch = arch
		cfg.WatchdogLimit = 5_000
		cfg.Faults = faults.Plan{Events: []faults.Event{
			{Kind: faults.PortStuck, At: 1_000, Duration: 8_000, Switch: 4, Port: 1},
			{Kind: faults.NICStall, At: 2_000, Duration: 6_000, Node: 3},
		}}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		name := arch.String()
		if err != nil {
			t.Fatalf("%s: windows longer than the watchdog limit must not trip it: %v", name, err)
		}
		checkAccounted(t, name, sim, res)
		if res.DestsDropped != 0 {
			t.Fatalf("%s: transient faults dropped %d destinations", name, res.DestsDropped)
		}
	}
}

// TestFaultPermanentPortStuckDeadlocks wedges a stage-0 up port forever: the
// watchdog must convert the silent stall into a structured DeadlockError
// naming stuck components, within its cycle budget.
func TestFaultPermanentPortStuckDeadlocks(t *testing.T) {
	cfg := faultTestBase()
	cfg.WatchdogLimit = 20_000
	cfg.Faults = faults.Plan{Events: []faults.Event{
		{Kind: faults.PortStuck, At: 1_000, Switch: 4, Port: 4},
		{Kind: faults.PortStuck, At: 1_000, Switch: 4, Port: 5},
		{Kind: faults.PortStuck, At: 1_000, Switch: 4, Port: 6},
		{Kind: faults.PortStuck, At: 1_000, Switch: 4, Port: 7},
	}}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run()
	de, ok := err.(*engine.DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Stuck) == 0 {
		t.Fatal("deadlock report names no stuck components")
	}
	if de.Cycle > 1_000+int64(cfg.WarmupCycles+cfg.MeasureCycles)+cfg.DrainCycles {
		t.Fatalf("watchdog fired outside the run budget at cycle %d", de.Cycle)
	}
}

// TestFaultCBShrinkCompletes withdraws central-buffer capacity mid-run (the
// plan is valid only after raising Chunks above the two-packet floor) and
// requires a clean, violation-free completion.
func TestFaultCBShrinkCompletes(t *testing.T) {
	cfg := faultTestBase()
	cfg.CB.Chunks = 256 // default normalization floor is 128 for this workload
	cfg.Faults = faults.Plan{Events: []faults.Event{
		{Kind: faults.CBShrink, At: 1_000, Switch: 4, Chunks: 64},
		{Kind: faults.CBShrink, At: 2_000, Switch: 20, Chunks: 32},
	}}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkAccounted(t, "cb-shrink", sim, res)
}

// TestFaultPlanValidation rejects plans that cannot be applied to the built
// fabric.
func TestFaultPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(cfg *Config)
	}{
		{"switch out of range", func(cfg *Config) {
			cfg.Faults.Events = []faults.Event{{Kind: faults.LinkDown, At: 1, Switch: 999, Port: 0}}
		}},
		{"port out of range", func(cfg *Config) {
			cfg.Faults.Events = []faults.Event{{Kind: faults.PortStuck, At: 1, Switch: 0, Port: 99}}
		}},
		{"node out of range", func(cfg *Config) {
			cfg.Faults.Events = []faults.Event{{Kind: faults.NICStall, At: 1, Node: 64}}
		}},
		{"cb-shrink on input-buffer arch", func(cfg *Config) {
			cfg.Arch = InputBuffer
			cfg.Faults.Events = []faults.Event{{Kind: faults.CBShrink, At: 1, Switch: 0, Chunks: 1}}
		}},
		{"cb-shrink below the packet floor", func(cfg *Config) {
			cfg.Faults.Events = []faults.Event{{Kind: faults.CBShrink, At: 1, Switch: 0, Chunks: 1}}
		}},
	}
	for _, tc := range cases {
		cfg := faultTestBase()
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("%s: config accepted", tc.name)
		}
	}
}

// TestFaultIrregularTopology injects a seeded fault plan on a random NOW
// fabric: routing must steer around what it can and account the rest, never
// hang (the PR's acceptance scenario).
func TestFaultIrregularTopology(t *testing.T) {
	cfg := faultTestBase()
	cfg.Topology = IrregularTree
	cfg.Tree = topology.TreeSpec{Switches: 16, MinHosts: 1, MaxHosts: 4, MaxChildren: 3, Seed: 7}
	cfg.Traffic.Degree = 6
	// Locate a mid-tree attachment so the failure severs real traffic.
	probe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	swID, port := probe.Net().ProcAttach(probe.Net().N / 2)
	cfg.Faults = faults.Plan{Events: []faults.Event{
		{Kind: faults.LinkDown, At: 1_000, Switch: swID, Port: port},
	}}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("irregular faulted run failed: %v", err)
	}
	checkAccounted(t, "irregular", sim, res)
	if res.DestsDropped == 0 {
		t.Fatal("severed attachment dropped nothing")
	}
}

// TestFaultDeadlockRegressionSyncReplication replays the A10 ablation as a
// regression pair: lock-step replication on the input-buffer switch must
// wedge into a structured DeadlockError within the watchdog budget, while
// the central-buffer hardware multicast under the identical workload must
// not.
func TestFaultDeadlockRegressionSyncReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("deadlock regression skipped in -short mode")
	}
	shape := func(cfg *Config) {
		cfg.Traffic.MulticastFraction = 1.0
		cfg.Traffic.Degree = 8
		cfg.Traffic.McastPayloadFlits = 64
		cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.3)
		cfg.WarmupCycles = 500
		cfg.MeasureCycles = 4_000
		cfg.DrainCycles = 2_000_000
		cfg.WatchdogLimit = 20_000
	}

	sync := DefaultConfig()
	shape(&sync)
	sync.Arch = InputBuffer
	sync.IB.SyncReplication = true
	sim, err := New(sync)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = sim.Run(); err == nil {
		t.Fatal("synchronous replication did not deadlock")
	} else if _, ok := err.(*engine.DeadlockError); !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}

	cb := DefaultConfig()
	shape(&cb)
	cb.Arch = CentralBuffer
	cb.Scheme = collective.HardwareBitString
	sim, err = New(cb)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("CB-HW tripped the watchdog on the same workload: %v", err)
	}
	checkAccounted(t, "cb-hw", sim, res)
}

// TestFaultPropertyRandomPlans is the property-based net: random small
// configurations crossed with random recoverable fault plans. Every worm
// must end fully delivered or fully accounted dropped — the drain reaches
// zero outstanding work and the invariant checker stays silent.
func TestFaultPropertyRandomPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	rng := engine.NewRNG(0xFA07)
	archs := []SwitchArch{CentralBuffer, InputBuffer}
	schemes := []collective.Scheme{
		collective.HardwareBitString, collective.SoftwareBinomial, collective.SoftwareSeparate,
	}
	for trial := 0; trial < 25; trial++ {
		cfg := DefaultConfig()
		cfg.Seed = rng.Uint64()
		cfg.Arch = archs[rng.Intn(len(archs))]
		cfg.Scheme = schemes[rng.Intn(len(schemes))]
		cfg.Arity = 2 + rng.Intn(3)
		cfg.Stages = 1 + rng.Intn(3)
		n := cfg.N()
		if n > 2 {
			cfg.Traffic.Degree = 1 + rng.Intn(min(n-2, 12))
		} else {
			cfg.Traffic.Degree = 1
			cfg.Traffic.MulticastFraction = 0
		}
		cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.05 + 0.3*rng.Float64())
		cfg.WarmupCycles = 200
		cfg.MeasureCycles = 1_500
		cfg.DrainCycles = 3_000_000
		cfg.WatchdogLimit = 100_000

		// Build once faultless to learn the fabric shape, then draw a
		// recoverable plan against it: permanent link-down anywhere, plus
		// bounded stuck/stall windows (always shorter-lived than permanent
		// wedges, so completion is guaranteed).
		probe, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		net := probe.Net()
		span := cfg.WarmupCycles + cfg.MeasureCycles
		var plan faults.Plan
		for i, k := 0, 1+rng.Intn(4); i < k; i++ {
			at := int64(1 + rng.Intn(int(span)))
			sw := rng.Intn(len(net.Switches))
			switch rng.Intn(3) {
			case 0:
				plan.Events = append(plan.Events, faults.Event{Kind: faults.LinkDown,
					At: at, Switch: sw, Port: rng.Intn(net.Switches[sw].NumPorts())})
			case 1:
				plan.Events = append(plan.Events, faults.Event{Kind: faults.PortStuck,
					At: at, Duration: int64(1 + rng.Intn(2_000)),
					Switch: sw, Port: rng.Intn(net.Switches[sw].NumPorts())})
			case 2:
				plan.Events = append(plan.Events, faults.Event{Kind: faults.NICStall,
					At: at, Duration: int64(1 + rng.Intn(2_000)), Node: rng.Intn(net.N)})
			}
		}
		cfg.Faults = plan

		name := fmt.Sprintf("trial%d/%v/%v/arity%d/stages%d/%s",
			trial, cfg.Arch, cfg.Scheme, cfg.Arity, cfg.Stages, plan.Spec())
		sim, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: config rejected: %v", name, err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkAccounted(t, name, sim, res)
	}
}

// TestFaultStrictModeRuns exercises the strict path on a healthy faulted
// run: with no violations to upgrade, strict mode must change nothing.
func TestFaultStrictModeRuns(t *testing.T) {
	cfg := faultTestBase()
	cfg.StrictInvariants = true
	cfg.Faults = faults.Plan{Events: []faults.Event{
		{Kind: faults.LinkDown, At: 1_500, Switch: 0, Port: 0},
	}}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkAccounted(t, "strict", sim, res)
	if !sim.Invariants().Strict {
		t.Fatal("strict flag not wired through")
	}
}
