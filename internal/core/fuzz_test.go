package core

import (
	"fmt"
	"testing"

	"mdworm/internal/collective"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/routing"
)

// TestFuzzConfigurations sweeps randomized small configurations — topology
// shape, architecture, scheme, replication placement, up policy, traffic mix
// — and requires every run to drain completely with all operations
// delivered. This is the broad invariant net under the targeted tests.
func TestFuzzConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep skipped in -short mode")
	}
	rng := engine.NewRNG(0xF022)
	archs := []SwitchArch{CentralBuffer, InputBuffer}
	schemes := []collective.Scheme{
		collective.HardwareBitString, collective.HardwareMultiport,
		collective.SoftwareBinomial, collective.SoftwareSeparate,
	}
	policies := []routing.UpPolicy{routing.UpHash, routing.UpRandom, routing.UpAdaptive}

	for trial := 0; trial < 40; trial++ {
		cfg := DefaultConfig()
		cfg.Seed = rng.Uint64()
		cfg.Arch = archs[rng.Intn(len(archs))]
		cfg.Scheme = schemes[rng.Intn(len(schemes))]
		cfg.UpPolicy = policies[rng.Intn(len(policies))]
		cfg.ReplicateOnUpPath = rng.Intn(2) == 0
		cfg.CB.MulticastBypassSingle = rng.Intn(2) == 0
		// SyncReplication stays off: lock-step replication deadlocks by
		// design (experiment A10 demonstrates it on purpose).
		cfg.Arity = 2 + rng.Intn(3)  // 2..4
		cfg.Stages = 1 + rng.Intn(3) // 1..3
		cfg.LinkLatency = 1 + rng.Intn(2)
		cfg.NIC.SendOverhead = rng.Intn(100)
		cfg.NIC.RecvOverhead = rng.Intn(100)
		n := cfg.N()
		cfg.Traffic.MulticastFraction = float64(rng.Intn(11)) / 10
		if n > 2 {
			cfg.Traffic.Degree = 1 + rng.Intn(n-2)
		} else {
			cfg.Traffic.Degree = 1
			cfg.Traffic.MulticastFraction = 0
		}
		cfg.Traffic.UniPayloadFlits = 1 + rng.Intn(64)
		cfg.Traffic.McastPayloadFlits = 1 + rng.Intn(128)
		cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.05 + 0.5*rng.Float64())
		cfg.WarmupCycles = 200
		cfg.MeasureCycles = 1500
		cfg.DrainCycles = 3_000_000
		cfg.WatchdogLimit = 100_000

		name := fmt.Sprintf("trial%d/%v/%v/arity%d/stages%d", trial, cfg.Arch, cfg.Scheme, cfg.Arity, cfg.Stages)
		sim, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: config rejected: %v", name, err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sim.Quiesced() {
			t.Fatalf("%s: network not drained", name)
		}
		done := res.Multicast.OpsCompleted + res.Unicast.OpsCompleted
		gen := res.Multicast.OpsGenerated + res.Unicast.OpsGenerated
		if done != gen {
			t.Fatalf("%s: %d of %d ops completed", name, done, gen)
		}
	}
}

// TestDeliveryExactness records every delivery and asserts each message
// reaches exactly its destination set, once.
func TestDeliveryExactness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Traffic.MulticastFraction = 0.5
	cfg.Traffic.Degree = 8
	cfg.Traffic.OpRate = 0.001
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 3000
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := map[*flit.Message][]int{}
	sim.deliverHook = func(m *flit.Message, proc int, now int64) {
		got[m] = append(got[m], proc)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	gen := res.Multicast.OpsGenerated + res.Unicast.OpsGenerated
	if gen == 0 {
		t.Fatal("no traffic generated")
	}
	for m, nodes := range got {
		want := map[int]bool{}
		for _, d := range m.Dests {
			want[d] = true
		}
		if len(nodes) != len(m.Dests) {
			t.Fatalf("message %d delivered %d times for %d destinations",
				m.ID, len(nodes), len(m.Dests))
		}
		seen := map[int]bool{}
		for _, p := range nodes {
			if !want[p] {
				t.Fatalf("message %d delivered to non-destination %d (dests %v)", m.ID, p, m.Dests)
			}
			if seen[p] {
				t.Fatalf("message %d delivered twice to %d", m.ID, p)
			}
			seen[p] = true
		}
	}
}
