package core

import (
	"fmt"
	"testing"

	"mdworm/internal/collective"
	"mdworm/internal/engine"
	"mdworm/internal/faults"
	"mdworm/internal/flit"
	"mdworm/internal/routing"
)

// TestFuzzConfigurations sweeps randomized small configurations — topology
// shape, architecture, scheme, replication placement, up policy, traffic mix
// — and requires every run to drain completely with all operations
// delivered. This is the broad invariant net under the targeted tests.
func TestFuzzConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep skipped in -short mode")
	}
	rng := engine.NewRNG(0xF022)
	archs := []SwitchArch{CentralBuffer, InputBuffer}
	schemes := []collective.Scheme{
		collective.HardwareBitString, collective.HardwareMultiport,
		collective.SoftwareBinomial, collective.SoftwareSeparate,
	}
	policies := []routing.UpPolicy{routing.UpHash, routing.UpRandom, routing.UpAdaptive}

	for trial := 0; trial < 40; trial++ {
		cfg := DefaultConfig()
		cfg.Seed = rng.Uint64()
		cfg.Arch = archs[rng.Intn(len(archs))]
		cfg.Scheme = schemes[rng.Intn(len(schemes))]
		cfg.UpPolicy = policies[rng.Intn(len(policies))]
		cfg.ReplicateOnUpPath = rng.Intn(2) == 0
		cfg.CB.MulticastBypassSingle = rng.Intn(2) == 0
		// SyncReplication stays off: lock-step replication deadlocks by
		// design (experiment A10 demonstrates it on purpose).
		cfg.Arity = 2 + rng.Intn(3)  // 2..4
		cfg.Stages = 1 + rng.Intn(3) // 1..3
		cfg.LinkLatency = 1 + rng.Intn(2)
		cfg.NIC.SendOverhead = rng.Intn(100)
		cfg.NIC.RecvOverhead = rng.Intn(100)
		n := cfg.N()
		cfg.Traffic.MulticastFraction = float64(rng.Intn(11)) / 10
		if n > 2 {
			cfg.Traffic.Degree = 1 + rng.Intn(n-2)
		} else {
			cfg.Traffic.Degree = 1
			cfg.Traffic.MulticastFraction = 0
		}
		cfg.Traffic.UniPayloadFlits = 1 + rng.Intn(64)
		cfg.Traffic.McastPayloadFlits = 1 + rng.Intn(128)
		cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.05 + 0.5*rng.Float64())
		cfg.WarmupCycles = 200
		cfg.MeasureCycles = 1500
		cfg.DrainCycles = 3_000_000
		cfg.WatchdogLimit = 100_000

		// Half the trials also carry a random recoverable fault plan:
		// permanent link-downs (drops are accounted, so done==gen still
		// holds) and bounded stuck/stall windows (traffic merely waits).
		if rng.Intn(2) == 0 {
			probe, err := New(cfg)
			if err != nil {
				t.Fatalf("trial %d: config rejected: %v", trial, err)
			}
			net := probe.Net()
			var plan faults.Plan
			for i, k := 0, 1+rng.Intn(3); i < k; i++ {
				at := int64(1 + rng.Intn(int(cfg.WarmupCycles+cfg.MeasureCycles)))
				sw := rng.Intn(len(net.Switches))
				switch rng.Intn(3) {
				case 0:
					plan.Events = append(plan.Events, faults.Event{Kind: faults.LinkDown,
						At: at, Switch: sw, Port: rng.Intn(net.Switches[sw].NumPorts())})
				case 1:
					plan.Events = append(plan.Events, faults.Event{Kind: faults.PortStuck,
						At: at, Duration: int64(1 + rng.Intn(2_000)),
						Switch: sw, Port: rng.Intn(net.Switches[sw].NumPorts())})
				case 2:
					plan.Events = append(plan.Events, faults.Event{Kind: faults.NICStall,
						At: at, Duration: int64(1 + rng.Intn(2_000)), Node: rng.Intn(net.N)})
				}
			}
			cfg.Faults = plan
		}

		name := fmt.Sprintf("trial%d/%v/%v/arity%d/stages%d/faults=%q",
			trial, cfg.Arch, cfg.Scheme, cfg.Arity, cfg.Stages, cfg.Faults.Spec())
		sim, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: config rejected: %v", name, err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sim.Quiesced() {
			t.Fatalf("%s: network not drained", name)
		}
		done := res.Multicast.OpsCompleted + res.Unicast.OpsCompleted
		gen := res.Multicast.OpsGenerated + res.Unicast.OpsGenerated
		if done != gen {
			t.Fatalf("%s: %d of %d ops completed", name, done, gen)
		}
		if res.InvariantViolations != 0 {
			t.Fatalf("%s: %d invariant violations: %s",
				name, res.InvariantViolations, sim.Invariants().Summary())
		}
	}
}

// TestDeliveryExactness records every delivery and asserts each message
// reaches exactly its destination set, once.
func TestDeliveryExactness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Traffic.MulticastFraction = 0.5
	cfg.Traffic.Degree = 8
	cfg.Traffic.OpRate = 0.001
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 3000
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := map[*flit.Message][]int{}
	sim.deliverHook = func(m *flit.Message, proc int, now int64) {
		got[m] = append(got[m], proc)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	gen := res.Multicast.OpsGenerated + res.Unicast.OpsGenerated
	if gen == 0 {
		t.Fatal("no traffic generated")
	}
	for m, nodes := range got {
		want := map[int]bool{}
		for _, d := range m.Dests {
			want[d] = true
		}
		if len(nodes) != len(m.Dests) {
			t.Fatalf("message %d delivered %d times for %d destinations",
				m.ID, len(nodes), len(m.Dests))
		}
		seen := map[int]bool{}
		for _, p := range nodes {
			if !want[p] {
				t.Fatalf("message %d delivered to non-destination %d (dests %v)", m.ID, p, m.Dests)
			}
			if seen[p] {
				t.Fatalf("message %d delivered twice to %d", m.ID, p)
			}
			seen[p] = true
		}
	}
}
