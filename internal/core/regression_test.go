package core

import (
	"testing"

	"mdworm/internal/collective"
	"mdworm/internal/engine"
)

// TestRegressionMixedTrafficWedge replays the exact configuration that once
// wedged the central-buffer switch (partial unicast buffering starving an
// output-queue head — see the package comment of internal/switches/centralbuf);
// it must now drain cleanly. On failure it dumps the stuck switch state.
func TestRegressionMixedTrafficWedge(t *testing.T) {
	if testing.Short() {
		t.Skip("regression stress skipped in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Arch = CentralBuffer
	cfg.Scheme = collective.SoftwareBinomial
	cfg.Traffic.MulticastFraction = 0.5
	cfg.Traffic.Degree = 8
	cfg.Traffic.OpRate = 0.02
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 3000
	cfg.DrainCycles = 2_000_000
	cfg.WatchdogLimit = 30_000
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run()
	if err == nil {
		return
	}
	if _, ok := err.(*engine.DeadlockError); !ok {
		t.Fatalf("unexpected error: %v", err)
	}
	for _, sw := range sim.cbs[32:] { // stages 2 (top)
		if !sw.Quiesced() {
			t.Log("\n" + sw.Dump())
		}
	}
	for _, sw := range sim.cbs[16:20] { // a few stage-1 switches
		if !sw.Quiesced() {
			t.Log("\n" + sw.Dump())
		}
	}
	t.Fatalf("deadlock: %v", err)
}
