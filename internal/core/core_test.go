package core

import (
	"math"
	"testing"

	"mdworm/internal/collective"
	"mdworm/internal/routing"
)

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.WarmupCycles = 1000
	cfg.MeasureCycles = 6000
	cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.3)
	return cfg
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		sim, err := New(quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Multicast.OpsCompleted, res.Multicast.LastArrival.Mean
	}
	n1, m1 := run()
	n2, m2 := run()
	if n1 != n2 || m1 != m2 {
		t.Fatalf("same config diverged: (%d, %g) vs (%d, %g)", n1, m1, n2, m2)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := quickCfg()
	sim1, _ := New(cfg)
	r1, err := sim1.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	sim2, _ := New(cfg)
	r2, err := sim2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Multicast.LastArrival.Mean == r2.Multicast.LastArrival.Mean &&
		r1.Multicast.OpsCompleted == r2.Multicast.OpsCompleted {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

// TestConservation: after a full run with drain, every generated op
// completed, every NIC-counted message was delivered exactly to its
// destinations, and the network holds nothing.
func TestConservation(t *testing.T) {
	for _, arch := range []SwitchArch{CentralBuffer, InputBuffer} {
		for _, scheme := range []collective.Scheme{collective.HardwareBitString, collective.SoftwareBinomial} {
			cfg := quickCfg()
			cfg.Arch = arch
			cfg.Scheme = scheme
			cfg.Traffic.MulticastFraction = 0.5
			sim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.Run(); err != nil {
				t.Fatalf("%v/%v: %v", arch, scheme, err)
			}
			if !sim.Quiesced() {
				t.Fatalf("%v/%v: network not empty after drain", arch, scheme)
			}
			var sent, delivered, injectedFlits, ejectedFlits int64
			for _, st := range sim.NICStats() {
				sent += st.MessagesSent
				delivered += st.MessagesDelivered
				injectedFlits += st.FlitsInjected
				ejectedFlits += st.FlitsEjected
			}
			if scheme == collective.HardwareBitString {
				// Multicast messages deliver one copy per destination.
				if delivered < sent {
					t.Fatalf("%v/%v: delivered %d < sent %d", arch, scheme, delivered, sent)
				}
				if ejectedFlits < injectedFlits {
					t.Fatalf("%v/%v: ejected %d < injected %d flits (copies lost)",
						arch, scheme, ejectedFlits, injectedFlits)
				}
			} else {
				// Software multicast: every message is unicast.
				if delivered != sent {
					t.Fatalf("%v/%v: delivered %d != sent %d", arch, scheme, delivered, sent)
				}
				if ejectedFlits != injectedFlits {
					t.Fatalf("%v/%v: flits not conserved: %d in, %d out",
						arch, scheme, injectedFlits, ejectedFlits)
				}
			}
		}
	}
}

// TestPaperOrderingUnloaded: the central result on an idle network — the
// hardware schemes beat software multicast, and the gap grows with degree.
func TestPaperOrderingUnloaded(t *testing.T) {
	lat := func(scheme collective.Scheme, d int) int64 {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.Traffic.OpRate = 0
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dests := make([]int, 0, d)
		for i := 1; i <= d; i++ {
			dests = append(dests, i)
		}
		l, _, err := sim.RunOp(0, dests, true, 64, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	hw8 := lat(collective.HardwareBitString, 8)
	sw8 := lat(collective.SoftwareBinomial, 8)
	sep8 := lat(collective.SoftwareSeparate, 8)
	if !(hw8 < sw8 && sw8 < sep8) {
		t.Fatalf("unloaded d=8 ordering violated: hw=%d sw=%d sep=%d", hw8, sw8, sep8)
	}
	// The paper's companion work reports up to ~4x improvement; allow a
	// generous band but insist on a clear multiple.
	if ratio := float64(sw8) / float64(hw8); ratio < 2 || ratio > 8 {
		t.Fatalf("hw/sw gap at d=8 is %.2fx, expected a clear multiple", ratio)
	}
	// Hardware latency grows slowly with degree; software roughly with log d.
	hw32 := lat(collective.HardwareBitString, 32)
	sw32 := lat(collective.SoftwareBinomial, 32)
	if float64(hw32) > 1.6*float64(hw8) {
		t.Fatalf("hardware latency grew too fast with degree: %d -> %d", hw8, hw32)
	}
	if sw32 <= sw8 {
		t.Fatalf("software latency did not grow with degree: %d -> %d", sw8, sw32)
	}
}

// TestPaperOrderingLoaded: under multiple-multicast load, CB-HW completes
// with lower latency than SW-UMIN, and the software scheme saturates first.
func TestPaperOrderingLoaded(t *testing.T) {
	run := func(scheme collective.Scheme) (float64, bool) {
		cfg := quickCfg()
		cfg.Scheme = scheme
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Multicast.LastArrival.Mean, res.Saturated
	}
	hw, hwSat := run(collective.HardwareBitString)
	sw, swSat := run(collective.SoftwareBinomial)
	if hwSat {
		t.Fatalf("CB-HW saturated at load 0.3 (latency %.0f)", hw)
	}
	if !swSat && sw < hw {
		t.Fatalf("software beat hardware under load: sw=%.0f hw=%.0f", sw, hw)
	}
}

// TestHeaderSizeCharged: at N=256 the bit-string header is 16 flits; an
// unloaded multicast must cost visibly more than a unicast of equal payload,
// by roughly the extra header serialization.
func TestHeaderSizeCharged(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stages = 4
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Config().CB.InFIFOFlits; got < 16 {
		t.Fatalf("input FIFO not raised for 16-flit headers: %d", got)
	}
	uni, _, err := sim.RunOp(0, []int{255}, false, 64, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	mc, _, err := sim.RunOp(0, []int{255}, true, 64, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	extra := mc - uni
	if extra < 10 || extra > 200 {
		t.Fatalf("header cost anomaly: unicast=%d multicast=%d (extra %d)", uni, mc, extra)
	}
}

func TestSaturationFlag(t *testing.T) {
	cfg := quickCfg()
	cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(3.0) // impossible demand
	cfg.MeasureCycles = 3000
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("3x-capacity load not flagged saturated")
	}
}

func TestRunOpValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.StartOp(0, []int{1, 2}, false, 8); err == nil {
		t.Error("multi-destination unicast accepted")
	}
	if _, err := sim.StartOp(0, []int{0}, true, 8); err == nil {
		t.Error("self-destination multicast accepted")
	}
	if _, _, err := sim.RunOp(0, []int{1}, false, 8, 3); err == nil {
		t.Error("impossible budget met")
	}
	// The timed-out op must still complete given more time.
	if ok, err := sim.Drain(100_000); !ok || err != nil {
		t.Fatalf("drain after budget error: %v %v", ok, err)
	}
}

func TestConfigNormalization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CB.Chunks = 1 // absurdly small; must be raised
	cfg.Traffic.McastPayloadFlits = 200
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	norm := sim.Config()
	need := (norm.CB.MaxPacketFlits + norm.CB.ChunkFlits - 1) / norm.CB.ChunkFlits
	if norm.CB.Chunks < 2*need {
		t.Fatalf("chunks %d below 2x packet need %d", norm.CB.Chunks, need)
	}
	if norm.IB.BufFlits < norm.IB.MaxPacketFlits {
		t.Fatal("input buffer below max packet")
	}
}

func TestConfigRejectsBadValues(t *testing.T) {
	bad := DefaultConfig()
	bad.LinkLatency = 0
	if _, err := New(bad); err == nil {
		t.Error("zero link latency accepted")
	}
	bad = DefaultConfig()
	bad.FlitBits = 0
	if _, err := New(bad); err == nil {
		t.Error("zero flit bits accepted")
	}
	bad = DefaultConfig()
	bad.Arity = 1
	if _, err := New(bad); err == nil {
		t.Error("arity 1 accepted")
	}
	bad = DefaultConfig()
	bad.Traffic.Degree = 1000
	if _, err := New(bad); err == nil {
		t.Error("impossible degree accepted")
	}
}

// TestMeanVsLastArrival: the mean-arrival latency metric is never above the
// last-arrival latency for multicasts.
func TestMeanVsLastArrival(t *testing.T) {
	cfg := quickCfg()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Multicast.OpsCompleted == 0 {
		t.Fatal("no samples")
	}
	if res.Multicast.MeanArrival.Mean > res.Multicast.LastArrival.Mean+1e-9 {
		t.Fatalf("mean-arrival %.1f above last-arrival %.1f",
			res.Multicast.MeanArrival.Mean, res.Multicast.LastArrival.Mean)
	}
}

// TestUpPolicies: every up-port policy must deliver everything correctly.
func TestUpPolicies(t *testing.T) {
	for _, pol := range []routing.UpPolicy{routing.UpHash, routing.UpRandom, routing.UpAdaptive} {
		cfg := quickCfg()
		cfg.UpPolicy = pol
		cfg.MeasureCycles = 3000
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		if res.Multicast.OpsCompleted != res.Multicast.OpsGenerated {
			t.Fatalf("policy %v lost ops", pol)
		}
	}
}

// TestReplicateOnUpPathEquivalence: both replication placements deliver the
// same op correctly; replicating early should not be slower on an idle net.
func TestReplicateOnUpPathEquivalence(t *testing.T) {
	lat := func(rep bool) int64 {
		cfg := DefaultConfig()
		cfg.ReplicateOnUpPath = rep
		cfg.Traffic.OpRate = 0
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l, op, err := sim.RunOp(3, []int{0, 1, 2, 17, 35, 60}, true, 64, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !op.Done() {
			t.Fatal("op incomplete")
		}
		return l
	}
	early := lat(true)
	lca := lat(false)
	if math.Abs(float64(early-lca)) > float64(early) {
		t.Fatalf("replication placements wildly divergent: early=%d lca=%d", early, lca)
	}
}

// TestMultiportScheme: end-to-end multiport multicast delivers everything.
func TestMultiportScheme(t *testing.T) {
	cfg := quickCfg()
	cfg.Scheme = collective.HardwareMultiport
	cfg.MeasureCycles = 3000
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Multicast.OpsCompleted != res.Multicast.OpsGenerated {
		t.Fatal("multiport lost ops")
	}
	if res.Multicast.MessagesPerOp <= 1.0 {
		t.Fatalf("multiport messages per op = %.2f; random sets should need several worms",
			res.Multicast.MessagesPerOp)
	}
}

// TestCrossArchWorkloadConsistency: traffic generation is independent of the
// switch architecture, so both architectures must see the identical op
// stream and complete all of it.
func TestCrossArchWorkloadConsistency(t *testing.T) {
	results := map[SwitchArch]struct{ gen, done int64 }{}
	for _, arch := range []SwitchArch{CentralBuffer, InputBuffer} {
		cfg := quickCfg()
		cfg.Arch = arch
		cfg.Traffic.MulticastFraction = 0.5
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		results[arch] = struct{ gen, done int64 }{
			res.Multicast.OpsGenerated + res.Unicast.OpsGenerated,
			res.Multicast.OpsCompleted + res.Unicast.OpsCompleted,
		}
	}
	cb, ib := results[CentralBuffer], results[InputBuffer]
	if cb.gen != ib.gen {
		t.Fatalf("architectures saw different op streams: cb=%d ib=%d", cb.gen, ib.gen)
	}
	if cb.done != cb.gen || ib.done != ib.gen {
		t.Fatalf("ops lost: cb %d/%d, ib %d/%d", cb.done, cb.gen, ib.done, ib.gen)
	}
}

// TestLinkLatencyScaling: doubling wire latency must raise unloaded latency
// by roughly the extra hops' worth of cycles, and everything still works.
func TestLinkLatencyScaling(t *testing.T) {
	lat := func(linkLat int) int64 {
		cfg := DefaultConfig()
		cfg.LinkLatency = linkLat
		cfg.Traffic.OpRate = 0
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l, _, err := sim.RunOp(0, []int{63}, false, 32, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	l1, l4 := lat(1), lat(4)
	if l4 <= l1 {
		t.Fatalf("longer wires not slower: lat(1)=%d lat(4)=%d", l1, l4)
	}
	// 6 links on the path (nic->s0->s1->s2->s1->s0->nic is 6 hops), so +3
	// cycles each; allow slack for credit-return effects.
	extra := l4 - l1
	if extra < 15 || extra > 120 {
		t.Fatalf("latency delta %d implausible for +3 cycles x ~6 links", extra)
	}
}

// TestHotSpotEndToEnd: hot-spot traffic must complete and show elevated
// latency toward the hot node.
func TestHotSpotEndToEnd(t *testing.T) {
	cfg := quickCfg()
	cfg.Traffic.MulticastFraction = 0
	cfg.Traffic.UniPayloadFlits = 32
	cfg.Traffic.HotSpotFraction = 0.3
	cfg.Traffic.HotSpotNode = 5
	cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.3)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unicast.OpsCompleted != res.Unicast.OpsGenerated {
		t.Fatal("hot-spot run lost ops")
	}
	// The hot node's ejection link is the bottleneck: 0.3 load with 30%
	// aimed at one node far exceeds its 1 flit/cycle; expect saturation.
	if !res.Saturated {
		t.Log("note: hot-spot run unexpectedly unsaturated (heuristic miss)")
	}
}
