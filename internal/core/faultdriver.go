package core

import (
	"math"

	"mdworm/internal/faults"
)

// faultDriver applies the configured fault plan through the engine's event
// loop. It declares no input links, so the active-set scheduler steps it
// every cycle; it always reports quiesced because pending faults are not
// work that should hold the drain open (a plan scheduled after the last
// delivery simply never fires).
type faultDriver struct {
	s      *Simulator
	events []faults.Event // normalized: sorted by At
	next   int

	// activeUntil is the latest end cycle of any *finite* stuck/stall
	// window applied so far. While such a window is open the driver feeds
	// the watchdog: a bounded stall is scheduled progress, not a deadlock.
	// Permanent faults never extend it, so a system they wedge still trips
	// the watchdog and reports a structured DeadlockError.
	activeUntil int64
}

func newFaultDriver(s *Simulator, plan faults.Plan) *faultDriver {
	return &faultDriver{s: s, events: plan.Events}
}

// Name identifies the driver in diagnostics.
func (d *faultDriver) Name() string { return "fault-driver" }

// Quiesced always holds: un-fired faults must not keep the drain alive.
func (d *faultDriver) Quiesced() bool { return true }

// Step fires every event scheduled at or before the current cycle.
func (d *faultDriver) Step(now int64) {
	for d.next < len(d.events) && d.events[d.next].At <= now {
		d.apply(d.events[d.next], now)
		d.next++
	}
	if now < d.activeUntil {
		d.s.sim.Progress()
	}
}

// NextWake implements engine.NextWaker: the driver needs stepping every
// cycle while a finite stall window feeds the watchdog, at the next
// scheduled fault otherwise. With the plan exhausted it sleeps for good.
func (d *faultDriver) NextWake(now int64) (int64, bool) {
	if now < d.activeUntil {
		return now + 1, true
	}
	if d.next < len(d.events) {
		return d.events[d.next].At, true
	}
	return 0, false
}

func (d *faultDriver) apply(e faults.Event, now int64) {
	// until covers the stuck/stall kinds: a zero Duration means permanent.
	until := int64(math.MaxInt64)
	if e.Duration > 0 {
		until = e.At + e.Duration
		if until > d.activeUntil {
			d.activeUntil = until
		}
	}
	switch e.Kind {
	case faults.LinkDown:
		// A wire failure severs both directions of the connection, at worm
		// boundaries (in-flight worms finish; new worms are refused).
		pio := d.s.ports[e.Switch][e.Port]
		if pio.Out != nil {
			pio.Out.Fail()
		}
		if pio.In != nil {
			pio.In.Fail()
		}
	case faults.PortStuck:
		if pio := d.s.ports[e.Switch][e.Port]; pio.Out != nil {
			pio.Out.StickUntil(until)
		}
	case faults.CBShrink:
		d.s.cbs[e.Switch].Shrink(e.Chunks)
	case faults.NICStall:
		d.s.nics[e.Node].StallUntil(until)
	}
}
