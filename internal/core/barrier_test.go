package core

import (
	"testing"
)

func TestBarrierTreeStructure(t *testing.T) {
	// Rank 0 is the root; parent clears the lowest set bit.
	if barrierParent(1) != 0 || barrierParent(6) != 4 || barrierParent(12) != 8 {
		t.Fatal("parents wrong")
	}
	// Every rank appears exactly once as someone's child.
	for _, n := range []int{2, 7, 16, 64} {
		seen := map[int]bool{}
		for r := 0; r < n; r++ {
			for _, c := range barrierChildren(r, n) {
				if seen[c] {
					t.Fatalf("n=%d: child %d duplicated", n, c)
				}
				if barrierParent(c) != r {
					t.Fatalf("n=%d: child %d of %d has parent %d", n, c, r, barrierParent(c))
				}
				seen[c] = true
			}
		}
		if len(seen) != n-1 {
			t.Fatalf("n=%d: tree covers %d of %d non-roots", n, len(seen), n-1)
		}
	}
}

func TestBarrierSchemes(t *testing.T) {
	run := func(scheme BarrierScheme) int64 {
		cfg := DefaultConfig()
		cfg.Traffic.OpRate = 0
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lat, err := sim.RunBarrier(scheme, 2_000_000)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !sim.Quiesced() {
			t.Fatalf("%v: network not drained after barrier", scheme)
		}
		return lat
	}
	sw := run(BarrierSoftware)
	hw := run(BarrierHardwareRelease)
	t.Logf("barrier latency: software=%d hw-release=%d", sw, hw)
	if hw >= sw {
		t.Fatalf("hardware release (%d) not faster than software broadcast (%d)", hw, sw)
	}
	// Both include a full gather; the release difference is bounded by the
	// software broadcast cost.
	if hw <= 0 || sw <= 0 {
		t.Fatal("non-positive barrier latency")
	}
}

func TestBarrierRequiresIdle(t *testing.T) {
	cfg := DefaultConfig()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.genOn = true
	if _, err := sim.RunBarrier(BarrierSoftware, 1000); err == nil {
		t.Fatal("barrier allowed with generation on")
	}
}

func TestBarrierRepeatable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := sim.RunBarrier(BarrierHardwareRelease, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := sim.RunBarrier(BarrierHardwareRelease, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatalf("back-to-back barriers differ on an idle network: %d vs %d", l1, l2)
	}
}

// TestBarrierOnIrregularFabric: the barrier driver is topology-agnostic.
func TestBarrierOnIrregularFabric(t *testing.T) {
	cfg := irregularCfg(21)
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := sim.RunBarrier(BarrierHardwareRelease, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sim2, _ := New(cfg)
	sw, err := sim2.RunBarrier(BarrierSoftware, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if hw <= 0 || sw <= 0 || hw >= sw {
		t.Fatalf("irregular barrier: hw=%d sw=%d", hw, sw)
	}
}

// TestCombiningBarrier: the in-switch combining barrier must beat both
// NIC-level schemes (no binomial gather, no per-hop software overheads) and
// scale with tree depth only.
func TestCombiningBarrier(t *testing.T) {
	lat := map[int]int64{}
	for _, stages := range []int{2, 3, 4} {
		cfg := DefaultConfig()
		cfg.Stages = stages
		cfg.Traffic.OpRate = 0
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l, err := sim.RunBarrier(BarrierHardwareCombining, 5_000_000)
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		if !sim.Quiesced() {
			t.Fatalf("stages=%d: not drained", stages)
		}
		lat[stages] = l
		// Repeatable back-to-back (counters reset properly).
		l2, err := sim.RunBarrier(BarrierHardwareCombining, 5_000_000)
		if err != nil || l2 != l {
			t.Fatalf("stages=%d: second barrier %d (err %v), first %d", stages, l2, err, l)
		}
	}
	if !(lat[2] < lat[3] && lat[3] < lat[4]) {
		t.Fatalf("combining latency not increasing with depth: %v", lat)
	}

	// Compare all three schemes at N=64.
	cfg := DefaultConfig()
	cfg.Traffic.OpRate = 0
	run := func(bs BarrierScheme) int64 {
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l, err := sim.RunBarrier(bs, 5_000_000)
		if err != nil {
			t.Fatalf("%v: %v", bs, err)
		}
		return l
	}
	comb := run(BarrierHardwareCombining)
	rel := run(BarrierHardwareRelease)
	sw := run(BarrierSoftware)
	t.Logf("barrier N=64: combining=%d release=%d software=%d", comb, rel, sw)
	if !(comb < rel && rel < sw) {
		t.Fatalf("ordering violated: combining=%d release=%d software=%d", comb, rel, sw)
	}
}

// TestCombiningBarrierOnInputBuffer: the input-buffered switch implements
// the same combining protocol.
func TestCombiningBarrierOnInputBuffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arch = InputBuffer
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := sim.RunBarrier(BarrierHardwareCombining, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if l <= 0 || !sim.Quiesced() {
		t.Fatalf("ib combining barrier: lat=%d quiesced=%v", l, sim.Quiesced())
	}
	// Tree-depth-dominated: far below the NIC-level schemes.
	if l > 300 {
		t.Fatalf("ib combining barrier too slow: %d", l)
	}
}

// TestCombiningBarrierIrregular: the combining tree generalizes to
// irregular fabrics (every switch has at most one parent).
func TestCombiningBarrierIrregular(t *testing.T) {
	cfg := irregularCfg(33)
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := sim.RunBarrier(BarrierHardwareCombining, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if l <= 0 || !sim.Quiesced() {
		t.Fatalf("irregular combining barrier: lat=%d quiesced=%v", l, sim.Quiesced())
	}
}

// TestCombiningBarrierUnderTrafficAftermath: a barrier right after a drained
// data burst works (combining state is independent of data paths).
func TestCombiningBarrierAfterTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.RunOp(0, []int{1, 9, 33}, true, 64, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunBarrier(BarrierHardwareCombining, 5_000_000); err != nil {
		t.Fatal(err)
	}
}
