package core

import (
	"encoding/json"
	"fmt"

	"mdworm/internal/ckpt"
)

// Checkpoint assembly: Snapshot serializes the complete cycle-exact state of
// a simulator into one self-describing ckpt blob; Restore rebuilds a twin
// from the embedded configuration and overlays that state. The hard
// guarantee, property-tested across every experiment, is that a run restored
// at any cycle produces byte-identical output to the uninterrupted run.

// Section names of the checkpoint container. The config section carries the
// normalized run configuration as JSON, so a checkpoint is fully
// self-describing: Restore needs nothing but the blob.
const (
	secConfig     = "config"
	secRun        = "run"
	secIDs        = "ids"
	secObjects    = "objects"
	secEngine     = "engine"
	secInvariants = "invariants"
	secStats      = "stats"
	secTraffic    = "traffic"
	secSwitches   = "switches"
	secNICs       = "nics"
	secFaults     = "faults"
	// secEvents holds the event kernel's queued wake events (versioned
	// inside the section); blobs that predate it restore with every
	// component woken, which re-derives the queue from link and timer state.
	secEvents = "events"
	// secCollective holds the collective driver's per-rep progress.
	secCollective = "collective"
)

// Snapshot serializes the simulator's complete mutable state. It must be
// taken between cycles (never from inside a component's Step). Simulators
// with an attached observability capture, tracer, or delivery hook refuse to
// snapshot: those attachments live outside the checkpoint and a restored run
// could not honor them.
func (s *Simulator) Snapshot() ([]byte, error) {
	if s.capture != nil {
		return nil, fmt.Errorf("core: cannot snapshot a simulator with an observability capture attached")
	}
	if s.userTracer != nil {
		return nil, fmt.Errorf("core: cannot snapshot a simulator with a tracer installed")
	}
	if s.deliverHook != nil {
		return nil, fmt.Errorf("core: cannot snapshot a simulator with a delivery hook installed")
	}

	js, err := json.Marshal(s.cfg)
	if err != nil {
		return nil, fmt.Errorf("core: marshal config: %w", err)
	}

	// Collect the shared object graph before encoding any component: every
	// op, message, and worm is written once and referenced by ID.
	g := ckpt.NewGraph()
	s.sim.CollectState(g)
	for _, sw := range s.cbs {
		sw.CollectState(g)
	}
	for _, sw := range s.ibs {
		sw.CollectState(g)
	}
	for _, n := range s.nics {
		n.CollectState(g)
	}
	if s.cdrv != nil {
		s.cdrv.CollectState(g)
	}

	w := ckpt.NewWriter()
	w.Section(secConfig).Bytes64(js)

	run := w.Section(secRun)
	run.U8(uint8(s.phase))
	run.Bool(s.genOn)
	run.Int(s.outstanding)
	run.Int(s.backlog)
	run.I64(s.drainEnd)

	w.Section(secIDs).U64(s.ids.State())
	g.Encode(w.Section(secObjects))
	s.sim.EncodeState(w.Section(secEngine), g)
	s.sim.EncodeEvents(w.Section(secEvents))
	s.sim.Invariants().EncodeState(w.Section(secInvariants))
	s.col.EncodeState(w.Section(secStats))

	if s.gen != nil {
		tr := w.Section(secTraffic)
		states := s.gen.States()
		tr.Int(len(states))
		for _, st := range states {
			tr.U64(st)
		}
	}

	sws := w.Section(secSwitches)
	for _, sw := range s.cbs {
		sw.EncodeState(sws, g)
	}
	for _, sw := range s.ibs {
		sw.EncodeState(sws, g)
	}

	nics := w.Section(secNICs)
	for _, n := range s.nics {
		n.EncodeState(nics, g)
	}

	if s.fdrv != nil {
		fd := w.Section(secFaults)
		fd.Int(s.fdrv.next)
		fd.I64(s.fdrv.activeUntil)
	}

	if s.cdrv != nil {
		s.cdrv.EncodeState(w.Section(secCollective), g)
	}

	return w.Finish(), nil
}

// Restore rebuilds a simulator from a Snapshot blob: it constructs a fresh
// system from the embedded configuration, then overlays the serialized
// state. Corrupted or truncated input yields a structured error wrapping
// ckpt.ErrCorrupt — never a panic.
func (s *Simulator) restoreInto(r *ckpt.Reader) error {
	g, err := decodeSection(r, secObjects, func(d *ckpt.Dec) *ckpt.Graph {
		return ckpt.DecodeGraph(d)
	})
	if err != nil {
		return err
	}

	if err := withSection(r, secRun, func(d *ckpt.Dec) {
		s.phase = runPhase(d.U8())
		s.genOn = d.Bool()
		s.outstanding = d.Int()
		s.backlog = d.Int()
		s.drainEnd = d.I64()
		if d.Err() == nil {
			if s.phase > phaseDone {
				d.Fail("run phase %d out of range", s.phase)
			} else if s.outstanding < 0 || s.backlog < 0 {
				d.Fail("negative outstanding (%d) or backlog (%d)", s.outstanding, s.backlog)
			}
		}
	}); err != nil {
		return err
	}

	if err := withSection(r, secIDs, func(d *ckpt.Dec) {
		s.ids.SetState(d.U64())
	}); err != nil {
		return err
	}

	if err := withSection(r, secEngine, func(d *ckpt.Dec) {
		s.sim.DecodeState(d, g)
	}); err != nil {
		return err
	}
	if r.Has(secEvents) {
		if err := withSection(r, secEvents, func(d *ckpt.Dec) {
			s.sim.DecodeEvents(d)
		}); err != nil {
			return err
		}
	} else {
		// Pre-event-kernel blob: wake everything; spuriously awake
		// components step as no-ops and re-derive their wake events.
		s.sim.WakeAll()
	}
	if err := withSection(r, secInvariants, func(d *ckpt.Dec) {
		s.sim.Invariants().DecodeState(d)
	}); err != nil {
		return err
	}
	if err := withSection(r, secStats, func(d *ckpt.Dec) {
		s.col.DecodeState(d)
	}); err != nil {
		return err
	}

	if s.gen != nil {
		if err := withSection(r, secTraffic, func(d *ckpt.Dec) {
			n := d.Count(8)
			states := make([]uint64, n)
			for i := range states {
				states[i] = d.U64()
			}
			if d.Err() == nil {
				if err := s.gen.SetStates(states); err != nil {
					d.Fail("%v", err)
				}
			}
		}); err != nil {
			return err
		}
	} else if r.Has(secTraffic) {
		return fmt.Errorf("%w: checkpoint has a traffic section but the configuration generates no load", ckpt.ErrCorrupt)
	}

	if err := withSection(r, secSwitches, func(d *ckpt.Dec) {
		for _, sw := range s.cbs {
			sw.DecodeState(d, g)
			if d.Err() != nil {
				return
			}
		}
		for _, sw := range s.ibs {
			sw.DecodeState(d, g)
			if d.Err() != nil {
				return
			}
		}
		if d.Err() == nil && d.Remaining() != 0 {
			d.Fail("%d trailing bytes after %d switches", d.Remaining(), len(s.cbs)+len(s.ibs))
		}
	}); err != nil {
		return err
	}

	if err := withSection(r, secNICs, func(d *ckpt.Dec) {
		for _, n := range s.nics {
			n.DecodeState(d, g)
			if d.Err() != nil {
				return
			}
		}
		if d.Err() == nil && d.Remaining() != 0 {
			d.Fail("%d trailing bytes after %d NICs", d.Remaining(), len(s.nics))
		}
	}); err != nil {
		return err
	}

	if s.fdrv != nil {
		if err := withSection(r, secFaults, func(d *ckpt.Dec) {
			next := d.Int()
			until := d.I64()
			if d.Err() != nil {
				return
			}
			if next < 0 || next > len(s.fdrv.events) {
				d.Fail("fault cursor %d outside [0,%d]", next, len(s.fdrv.events))
				return
			}
			s.fdrv.next = next
			s.fdrv.activeUntil = until
		}); err != nil {
			return err
		}
	} else if r.Has(secFaults) {
		return fmt.Errorf("%w: checkpoint has a faults section but the configuration has no fault plan", ckpt.ErrCorrupt)
	}

	if s.cdrv != nil {
		if err := withSection(r, secCollective, func(d *ckpt.Dec) {
			s.cdrv.DecodeState(d, g)
		}); err != nil {
			return err
		}
	} else if r.Has(secCollective) {
		return fmt.Errorf("%w: checkpoint has a collective section but the configuration drives no collective", ckpt.ErrCorrupt)
	}

	return nil
}

// Restore rebuilds a simulator from a Snapshot blob. The returned simulator
// continues exactly where the snapshot was taken: resuming Run (or
// RunCheckpointed) produces output byte-identical to the uninterrupted run.
func Restore(data []byte) (sim *Simulator, err error) {
	// The per-package decoders validate exhaustively, but a residual panic
	// from hostile input must still surface as a structured error: restoring
	// never takes the process down.
	defer func() {
		if p := recover(); p != nil {
			sim, err = nil, fmt.Errorf("%w: panic during restore: %v", ckpt.ErrCorrupt, p)
		}
	}()

	r, err := ckpt.NewReader(data)
	if err != nil {
		return nil, err
	}
	cd, err := r.Section(secConfig)
	if err != nil {
		return nil, err
	}
	js := cd.Bytes64()
	if cd.Err() != nil {
		return nil, cd.Err()
	}
	var cfg Config
	if err := json.Unmarshal(js, &cfg); err != nil {
		return nil, fmt.Errorf("%w: embedded config: %v", ckpt.ErrCorrupt, err)
	}
	s, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: rebuild from embedded config: %v", ckpt.ErrCorrupt, err)
	}
	if err := s.restoreInto(r); err != nil {
		return nil, err
	}
	return s, nil
}

// withSection runs fn over a named section's decoder and reports the first
// error (missing section, or the decoder's sticky failure).
func withSection(r *ckpt.Reader, name string, fn func(d *ckpt.Dec)) error {
	d, err := r.Section(name)
	if err != nil {
		return err
	}
	fn(d)
	if err := d.Err(); err != nil {
		return fmt.Errorf("section %q: %w", name, err)
	}
	return nil
}

// decodeSection is withSection for decoders that produce a value.
func decodeSection[T any](r *ckpt.Reader, name string, fn func(d *ckpt.Dec) T) (T, error) {
	var zero T
	d, err := r.Section(name)
	if err != nil {
		return zero, err
	}
	v := fn(d)
	if err := d.Err(); err != nil {
		return zero, fmt.Errorf("section %q: %w", name, err)
	}
	return v, nil
}
