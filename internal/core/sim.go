package core

import (
	"fmt"

	"mdworm/internal/collective"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/nic"
	"mdworm/internal/obs"
	"mdworm/internal/routing"
	"mdworm/internal/stats"
	"mdworm/internal/switches"
	"mdworm/internal/switches/centralbuf"
	"mdworm/internal/switches/inputbuf"
	"mdworm/internal/topology"
	"mdworm/internal/traffic"
)

// Simulator owns one fully wired system instance.
type Simulator struct {
	cfg    Config
	net    *topology.Network
	sim    *engine.Simulation
	router *routing.Router
	nics   []*nic.NIC
	cbs    []*centralbuf.Switch
	ibs    []*inputbuf.Switch
	gen    *traffic.Generator
	col    stats.Collector
	ids    engine.IDGen
	ops    flit.OpArena

	// ports holds each switch's per-port link pair; the fault driver uses
	// it to fail or stall specific links at their scheduled cycles.
	ports [][]switches.PortIO

	outstanding int // ops not yet fully delivered
	genOn       bool

	// Run's phase machine, checkpointable mid-run: phase tracks how far the
	// methodology has advanced, backlog is the NIC queue depth measured at
	// the end of the load phase (a saturation input), and drainEnd is the
	// drain budget's absolute deadline. fdrv is the registered fault driver,
	// if any (its event cursor is part of a checkpoint).
	phase    runPhase
	backlog  int
	drainEnd int64
	fdrv     *faultDriver
	// cdrv drives the configured collective workload, if any (its per-rep
	// progress is part of a checkpoint).
	cdrv *collectiveDriver

	// userTracer and capture are composed into the engine's single tracer
	// slot: SetTracer and Observe may both be in effect on one run.
	userTracer engine.Tracer
	capture    *obs.Capture

	// deliverHook, when non-nil, observes every message delivery (after
	// op accounting); barriers and tests use it to sequence phases.
	deliverHook func(m *flit.Message, proc int, now int64)
}

// factory builds messages with configuration-derived header sizes.
type factory struct {
	cfg *Config
	net *topology.Network
	ids *engine.IDGen
}

// NewMessage implements collective.MessageFactory.
func (f *factory) NewMessage(src int, dests []int, class flit.Class, payload int,
	op *flit.Op, fwd *flit.ForwardStep, now int64) *flit.Message {

	return &flit.Message{
		ID:           f.ids.Next(),
		Src:          src,
		Dests:        dests,
		Class:        class,
		PayloadFlits: payload,
		HeaderFlits:  f.cfg.headerFlitsFor(class, f.net),
		Created:      now,
		Op:           op,
		Forward:      fwd,
	}
}

// New builds a simulator from the configuration (normalizing buffer sizes to
// fit the workload on the built fabric).
func New(cfg Config) (*Simulator, error) {
	net, err := cfg.buildTopology()
	if err != nil {
		return nil, err
	}
	if err := cfg.normalize(net); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg: cfg,
		net: net,
		sim: engine.NewSimulation(cfg.WatchdogLimit),
		router: &routing.Router{
			Net:               net,
			ReplicateOnUpPath: cfg.ReplicateOnUpPath,
			Policy:            cfg.UpPolicy,
		},
	}
	s.sim.Invariants().Strict = cfg.StrictInvariants
	s.router.OnDrop = s.onWormDrop
	if cfg.Traffic.OpRate > 0 {
		g, err := traffic.NewGenerator(cfg.Traffic, net.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		s.gen = g
	}
	s.build()
	return s, nil
}

// switchCredits returns the credit count links into switches grant.
func (s *Simulator) switchCredits() int {
	if s.cfg.Arch == CentralBuffer {
		return s.cfg.CB.InFIFOFlits
	}
	return s.cfg.IB.BufFlits
}

// build instantiates links, switches, and NICs.
func (s *Simulator) build() {
	cfg := &s.cfg
	rootRNG := engine.NewRNG(cfg.Seed ^ 0xabcdef)
	fac := &factory{cfg: cfg, net: s.net, ids: &s.ids}

	// Per-switch port IO, filled as links are created.
	ports := make([][]switches.PortIO, len(s.net.Switches))
	for i, sw := range s.net.Switches {
		ports[i] = make([]switches.PortIO, sw.NumPorts())
	}
	s.ports = ports

	// Inter-switch links: one pair per wired connection; create when
	// scanning the down-port side so each connection is built once.
	for _, sw := range s.net.Switches {
		for pn := range sw.Ports {
			pt := &sw.Ports[pn]
			if pt.PeerSwitch < 0 || pt.Kind != topology.Down {
				continue
			}
			peer := s.net.Switches[pt.PeerSwitch]
			down := s.sim.NewLink(
				fmt.Sprintf("sw%d.p%d->sw%d.p%d", sw.ID, pn, peer.ID, pt.PeerPort),
				cfg.LinkLatency, s.switchCredits())
			up := s.sim.NewLink(
				fmt.Sprintf("sw%d.p%d->sw%d.p%d", peer.ID, pt.PeerPort, sw.ID, pn),
				cfg.LinkLatency, s.switchCredits())
			ports[sw.ID][pn].Out = down
			ports[peer.ID][pt.PeerPort].In = down
			ports[peer.ID][pt.PeerPort].Out = up
			ports[sw.ID][pn].In = up
		}
	}

	// NIC attachment links.
	injects := make([]*engine.Link, s.net.N)
	ejects := make([]*engine.Link, s.net.N)
	for p := 0; p < s.net.N; p++ {
		swID, pn := s.net.ProcAttach(p)
		inj := s.sim.NewLink(fmt.Sprintf("nic%d->sw%d.p%d", p, swID, pn),
			cfg.LinkLatency, s.switchCredits())
		ej := s.sim.NewLink(fmt.Sprintf("sw%d.p%d->nic%d", swID, pn, p),
			cfg.LinkLatency, cfg.NIC.RecvFIFOFlits)
		ports[swID][pn].In = inj
		ports[swID][pn].Out = ej
		injects[p] = inj
		ejects[p] = ej
	}

	// Fault driver, registered before the switches so every injected fault
	// takes effect at the start of its scheduled cycle. Its event source is
	// the fault timetable: the kernel sleeps it until the next scheduled
	// event (or steps it every cycle while a stall window feeds the
	// watchdog).
	if !cfg.Faults.Empty() {
		s.fdrv = newFaultDriver(s, cfg.Faults)
		s.sim.AddComponent(s.fdrv)
		s.sim.DeclareEventDriven(s.fdrv)
	}

	// Collective driver, event-driven like the fault driver: it sleeps on
	// its own timetable (rep starts, post-dependency launch times) and is
	// re-armed by op completions. The schedule is a pure function of the
	// (normalized) configuration, so it is rebuilt — never serialized — on
	// restore. normalize validated the build already.
	if cfg.Collective.Enabled() {
		sched, err := collective.BuildSchedule(cfg.Collective, s.net.N, cfg.Scheme.Hardware())
		if err != nil {
			panic(fmt.Sprintf("core: collective schedule invalid after normalize: %v", err))
		}
		s.cdrv = newCollectiveDriver(s, cfg.Collective, sched)
		s.sim.AddComponent(s.cdrv)
		s.sim.DeclareEventDriven(s.cdrv)
	}

	// Switches. Declaring the input links makes a switch eligible for
	// active-set skipping: fully idle switches cost nothing per cycle and
	// are re-armed by the first flit sent toward them.
	for _, node := range s.net.Switches {
		rng := rootRNG.Fork(uint64(node.ID))
		var comp engine.Component
		switch cfg.Arch {
		case CentralBuffer:
			sw := centralbuf.New(cfg.CB, node, s.router, ports[node.ID], rng, &s.ids, s.sim)
			s.cbs = append(s.cbs, sw)
			comp = sw
		case InputBuffer:
			sw := inputbuf.New(cfg.IB, node, s.router, ports[node.ID], rng, &s.ids, s.sim)
			s.ibs = append(s.ibs, sw)
			comp = sw
		}
		s.sim.AddComponent(comp)
		ins := make([]*engine.Link, 0, len(ports[node.ID]))
		for _, pio := range ports[node.ID] {
			if pio.In != nil {
				ins = append(ins, pio.In)
			}
		}
		s.sim.DeclareInputs(comp, ins...)
	}

	// NICs. The eject link is a NIC's only fabric input; Submit wakes it for
	// out-of-band message injection.
	s.nics = make([]*nic.NIC, s.net.N)
	for p := 0; p < s.net.N; p++ {
		n := nic.New(cfg.NIC, p, s.net.N, injects[p], ejects[p], &s.ids, s.sim, fac, s.onDelivered)
		n.SetOnDrop(s.onWormDrop)
		s.nics[p] = n
		s.sim.AddComponent(n)
		s.sim.DeclareInputs(n, ejects[p])
	}
}

// Net returns the underlying topology.
func (s *Simulator) Net() *topology.Network { return s.net }

// SetTracer installs an event tracer (nil removes it). Events cover
// message-level milestones: op start/completion, injection, delivery,
// routing decisions, reservations, and grants — never individual flits.
// A tracer composes with an attached observability capture (Observe).
func (s *Simulator) SetTracer(t engine.Tracer) {
	s.userTracer = t
	s.installTracer()
}

// installTracer wires the engine's single tracer slot from the user tracer
// and the event-consuming capture, whichever are present.
func (s *Simulator) installTracer() {
	var cap engine.Tracer
	if s.capture != nil && s.capture.WantsEvents() {
		cap = s.capture
	}
	switch {
	case s.userTracer != nil && cap != nil:
		s.sim.SetTracer(engine.MultiTracer{s.userTracer, cap})
	case s.userTracer != nil:
		s.sim.SetTracer(s.userTracer)
	default:
		s.sim.SetTracer(cap)
	}
}

// Observe attaches an observability capture to the run: trace events are
// mirrored into c (alongside any tracer installed with SetTracer), and when
// c.SampleEvery > 0 a probe component samples fabric occupancy on that
// period. Call once, before running; the capture's meta is stamped from the
// configuration. A samples-only capture (WantsEvents false) leaves the
// engine's tracer path untouched.
func (s *Simulator) Observe(c *obs.Capture) {
	routeDelay := s.cfg.CB.RouteDelay
	if s.cfg.Arch == InputBuffer {
		routeDelay = s.cfg.IB.RouteDelay
	}
	c.SetMeta(obs.Meta{
		Version:     1,
		Arch:        s.cfg.Arch.String(),
		Scheme:      s.cfg.Scheme.String(),
		Nodes:       s.net.N,
		RouteDelay:  routeDelay,
		LinkLatency: s.cfg.LinkLatency,
		Links:       len(s.sim.Links()),
		SampleEvery: c.SampleEvery,
	})
	s.capture = c
	s.installTracer()
	if c.SampleEvery > 0 {
		// Registered after the fabric's components, the probe samples
		// post-step state; its event source is the sampling period, so the
		// kernel sleeps it between boundaries.
		probe := &obs.Probe{Every: c.SampleEvery, Source: s, Cap: c}
		s.sim.AddComponent(probe)
		s.sim.DeclareEventDriven(probe)
	}
}

// SampleGauges implements obs.GaugeSource: an instantaneous snapshot of
// link, switch, and NIC occupancy across the fabric.
func (s *Simulator) SampleGauges() obs.Sample {
	var sm obs.Sample
	for _, l := range s.sim.Links() {
		sm.LinkFlits += l.InFlight()
		sm.LinkCarried += l.Carried()
	}
	for _, sw := range s.cbs {
		o := sw.Occupancy()
		sm.InputFlits += o.InputFlits
		if o.MaxInputQ > sm.MaxInputQ {
			sm.MaxInputQ = o.MaxInputQ
		}
		sm.OutputFlits += o.OutputFlits
		sm.CBChunks += o.CBChunks
		if st := sw.Stats(); st.MaxBranchRefs > sm.MaxBranchRefs {
			sm.MaxBranchRefs = st.MaxBranchRefs
		}
	}
	for _, sw := range s.ibs {
		o := sw.Occupancy()
		sm.InputFlits += o.InputFlits
		if o.MaxInputQ > sm.MaxInputQ {
			sm.MaxInputQ = o.MaxInputQ
		}
	}
	for _, n := range s.nics {
		q := n.QueueLen()
		sm.NICQueue += q
		if q > sm.MaxNICQueue {
			sm.MaxNICQueue = q
		}
	}
	return sm
}

// Now returns the current simulation cycle.
func (s *Simulator) Now() int64 { return s.sim.Now }

// Config returns the normalized configuration in effect.
func (s *Simulator) Config() Config { return s.cfg }

// NICStats returns per-NIC counters.
func (s *Simulator) NICStats() []nic.Stats {
	out := make([]nic.Stats, len(s.nics))
	for i, n := range s.nics {
		out[i] = n.Stats()
	}
	return out
}

// CBStats returns per-switch counters for central-buffer runs (nil
// otherwise).
func (s *Simulator) CBStats() []centralbuf.Stats {
	if s.cbs == nil {
		return nil
	}
	out := make([]centralbuf.Stats, len(s.cbs))
	for i, sw := range s.cbs {
		out[i] = sw.Stats()
	}
	return out
}

// IBStats returns per-switch counters for input-buffer runs (nil otherwise).
func (s *Simulator) IBStats() []inputbuf.Stats {
	if s.ibs == nil {
		return nil
	}
	out := make([]inputbuf.Stats, len(s.ibs))
	for i, sw := range s.ibs {
		out[i] = sw.Stats()
	}
	return out
}

// onDelivered records deliveries and op completions.
func (s *Simulator) onDelivered(m *flit.Message, at *nic.NIC, now int64) {
	if now >= s.col.WarmupEnd && now < s.col.MeasureEnd {
		s.col.DeliveredFlits += int64(m.Len())
		s.col.Class(m.Class == flit.ClassMulticast).DeliveredPayloadFlits += int64(m.PayloadFlits)
	}
	op := m.Op
	if op != nil && op.Deliver(now) {
		s.opCompleted(op)
	}
	if s.deliverHook != nil {
		s.deliverHook(m, at.Proc(), now)
	}
}

// opCompleted retires an operation whose every destination is delivered or
// accounted dropped. Degraded ops (any drops) yield no latency samples: a
// partial last-arrival time is not comparable to a healthy one.
func (s *Simulator) opCompleted(op *flit.Op) {
	s.outstanding--
	if op.Dropped > 0 {
		s.col.OpsDegraded++
		if op.Dropped == op.NumDests {
			s.col.OpsDropped++
		}
	}
	if s.sim.Tracing() {
		s.sim.Emit(engine.TraceEvent{Kind: engine.TraceOpDone, Actor: "core", Op: op.ID,
			Detail: fmt.Sprintf("latency=%d msgs=%d dropped=%d", op.LastLatency(), op.MessagesSent, op.Dropped)})
	}
	// Collective steps are measured by the collective driver (per-rep
	// last-arrival and phase tiling), not as windowed class samples.
	if s.cdrv != nil {
		if idx, ok := s.cdrv.opStep[op.ID]; ok {
			s.cdrv.onOpDone(idx, op, s.sim.Now)
			return
		}
	}
	if s.col.InWindow(op.Created) {
		cc := s.col.Class(op.Class == flit.ClassMulticast)
		cc.OpsCompleted++
		cc.MessagesSent += int64(op.MessagesSent)
		if op.Dropped == 0 {
			cc.LastArrival = append(cc.LastArrival, float64(op.LastLatency()))
			cc.MeanArrival = append(cc.MeanArrival, op.MeanLatency())
		}
	}
}

// onWormDrop accounts destinations abandoned because of an injected fault.
// Routing its losses through Op.DropN keeps the drain predicate reachable:
// the op completes when its last destination is delivered or dropped.
func (s *Simulator) onWormDrop(m *flit.Message, ndests int, now int64) {
	s.col.DestsDropped += int64(ndests)
	if op := m.Op; op != nil && op.DropN(ndests) {
		s.opCompleted(op)
	}
}

// StartOp creates and injects one operation from src to dests at the
// current cycle, using the configured scheme for multicasts. It returns the
// op for completion tracking.
func (s *Simulator) StartOp(src int, dests []int, multicast bool, payload int) (*flit.Op, error) {
	return s.startOpScheme(s.cfg.Scheme, src, dests, multicast, payload)
}

// startOpScheme is StartOp with an explicit multicast scheme (barriers mix
// schemes within one run).
func (s *Simulator) startOpScheme(scheme collective.Scheme, src int, dests []int, multicast bool, payload int) (*flit.Op, error) {
	now := s.sim.Now
	class := flit.ClassUnicast
	if multicast {
		class = flit.ClassMulticast
	}
	op := s.ops.New(s.ids.Next(), class, src, len(dests), now)
	fac := &factory{cfg: &s.cfg, net: s.net, ids: &s.ids}
	var msgs []*flit.Message
	var err error
	if multicast {
		msgs, err = collective.Plan(scheme, s.net, fac, src, dests, payload, op, now)
		if err != nil {
			return nil, err
		}
	} else {
		if len(dests) != 1 {
			return nil, fmt.Errorf("core: unicast op needs exactly one destination")
		}
		op.Phases = 1
		msgs = []*flit.Message{fac.NewMessage(src, dests, class, payload, op, nil, now)}
	}
	s.nics[src].Submit(msgs...)
	s.outstanding++
	if s.col.InWindow(now) {
		s.col.Class(multicast).OpsGenerated++
	}
	if s.sim.Tracing() {
		s.sim.Emit(engine.TraceEvent{Kind: engine.TraceOpStart, Actor: "core", Op: op.ID,
			Detail: fmt.Sprintf("src=%d dests=%v scheme=%v", src, dests, scheme)})
	}
	return op, nil
}

// startCollectiveStep injects one collective schedule step as an op at the
// current cycle. Unlike startOpScheme it attributes nothing to the windowed
// class collectors: collective steps are measured per rep by the driver.
func (s *Simulator) startCollectiveStep(st collective.Step) (*flit.Op, error) {
	now := s.sim.Now
	class := flit.ClassUnicast
	if st.Multicast {
		class = flit.ClassMulticast
	}
	op := s.ops.New(s.ids.Next(), class, st.Src, len(st.Dests), now)
	fac := &factory{cfg: &s.cfg, net: s.net, ids: &s.ids}
	var msgs []*flit.Message
	if st.Multicast {
		var err error
		msgs, err = collective.Plan(s.cfg.Scheme, s.net, fac, st.Src, st.Dests, st.Payload, op, now)
		if err != nil {
			return nil, err
		}
	} else {
		op.Phases = 1
		msgs = []*flit.Message{fac.NewMessage(st.Src, append([]int(nil), st.Dests...), class, st.Payload, op, nil, now)}
	}
	s.nics[st.Src].Submit(msgs...)
	s.outstanding++
	if s.sim.Tracing() {
		s.sim.Emit(engine.TraceEvent{Kind: engine.TraceOpStart, Actor: "core", Op: op.ID,
			Detail: fmt.Sprintf("src=%d dests=%v scheme=%v", st.Src, st.Dests, s.cfg.Scheme)})
	}
	return op, nil
}

// generate draws this cycle's new operations from the traffic generator.
func (s *Simulator) generate() error {
	if !s.genOn || s.gen == nil {
		return nil
	}
	for node := 0; node < s.net.N; node++ {
		req, ok := s.gen.Draw(node)
		if !ok {
			continue
		}
		if _, err := s.StartOp(req.Src, req.Dests, req.Multicast, req.Payload); err != nil {
			return err
		}
	}
	return nil
}

// runPhase tracks how far Run's methodology has advanced, so a simulator
// restored from a mid-run checkpoint resumes exactly where it stopped.
type runPhase uint8

const (
	phaseNew   runPhase = iota // Run not yet started
	phaseLoad                  // warmup + measurement, generation on
	phaseDrain                 // generation off, draining outstanding ops
	phaseDone                  // methodology complete
)

// Run executes the full methodology: warmup and measurement with load on,
// then a drain with load off until every operation completes. It returns
// the measured results; the error is non-nil only for protocol failures
// (deadlock watchdog, invalid configuration interactions).
func (s *Simulator) Run() (stats.Results, error) {
	return s.RunCheckpointed(0, nil)
}

// RunCheckpointed is Run with periodic checkpointing: when every > 0, sink
// receives a serialized Snapshot at each cycle divisible by every (taken
// between cycles, after the step completes). A sink error aborts the run.
// With every <= 0 or a nil sink the hot loop is exactly Run's — no snapshot
// machinery is touched. A simulator restored from a checkpoint continues
// from its saved phase, producing output byte-identical to the
// uninterrupted run.
func (s *Simulator) RunCheckpointed(every int64, sink func(data []byte, cycle int64) error) (r stats.Results, err error) {
	// In strict mode invariant violations surface as panics from deep in
	// the model; convert them into ordinary run errors.
	defer func() {
		if p := recover(); p != nil {
			ie, ok := p.(*engine.InvariantError)
			if !ok {
				panic(p)
			}
			r, err = stats.Results{}, ie
		}
	}()
	checkpointing := every > 0 && sink != nil
	checkpoint := func() error {
		if !checkpointing || s.sim.Now%every != 0 {
			return nil
		}
		data, err := s.Snapshot()
		if err != nil {
			return err
		}
		return sink(data, s.sim.Now)
	}

	if s.phase == phaseNew {
		s.col.WarmupEnd = s.sim.Now + s.cfg.WarmupCycles
		s.col.MeasureEnd = s.col.WarmupEnd + s.cfg.MeasureCycles
		s.genOn = true
		s.phase = phaseLoad
	}

	if s.phase == phaseLoad {
		for s.sim.Now < s.col.MeasureEnd {
			if err := s.generate(); err != nil {
				return stats.Results{}, err
			}
			s.sim.Step()
			if err := s.watchdog(); err != nil {
				return stats.Results{}, err
			}
			if err := checkpoint(); err != nil {
				return stats.Results{}, err
			}
		}
		s.backlog = 0
		for _, n := range s.nics {
			s.backlog += n.QueueLen()
		}
		s.genOn = false
		s.drainEnd = s.sim.Now + s.cfg.DrainCycles
		s.phase = phaseDrain
	}

	// The drain replicates RunUntil's semantics (predicate checked before
	// each advance, and again at budget exhaustion) so results are identical
	// to the pre-checkpoint engine-driven loop. Advance steps cycle by cycle
	// while any component is awake and jumps the clock across fully idle
	// spans (wire latency, fault timetables); with checkpointing on, each
	// jump is capped at the next checkpoint cycle so the sink observes the
	// exact same snapshot cadence as per-cycle stepping.
	drained := false
	if s.phase == phaseDrain {
		pred := func() bool {
			return s.outstanding == 0 && s.sim.Quiesced() &&
				(s.cdrv == nil || s.cdrv.finished())
		}
		if s.cfg.DrainCycles <= 0 {
			// Delegate to RunUntil for the identical budget-rejection error.
			_, rerr := s.sim.RunUntil(pred, s.cfg.DrainCycles)
			return stats.Results{}, rerr
		}
		for s.sim.Now < s.drainEnd {
			if pred() {
				drained = true
				break
			}
			limit := s.drainEnd
			if checkpointing {
				if next := s.sim.Now - s.sim.Now%every + every; next < limit {
					limit = next
				}
			}
			if err := s.sim.Advance(limit); err != nil {
				return stats.Results{}, err
			}
			if err := checkpoint(); err != nil {
				return stats.Results{}, err
			}
		}
		if !drained {
			drained = pred()
		}
		s.phase = phaseDone
	} else {
		// Finalizing from a checkpoint taken at phaseDone (possible only
		// through direct API use) re-evaluates the predicate.
		drained = s.outstanding == 0 && s.sim.Quiesced() &&
			(s.cdrv == nil || s.cdrv.finished())
	}

	maxQ := 0
	for _, n := range s.nics {
		if st := n.Stats(); st.SendQueueMax > maxQ {
			maxQ = st.SendQueueMax
		}
	}
	r = s.col.Finalize(s.net.N, maxQ)
	r.DrainCycles = s.sim.Now - s.col.MeasureEnd
	r.InvariantViolations = s.sim.Invariants().Total()
	// Saturation: the drain never finishing, or a backlog at measure end
	// exceeding a couple of ops per node, means generation outran the
	// network and latencies reflect queue growth.
	r.Saturated = r.Saturated || !drained || s.backlog > 2*s.net.N
	return r, nil
}

// Invariants exposes the run's invariant checker for inspection.
func (s *Simulator) Invariants() *engine.Invariants { return s.sim.Invariants() }

// RunOp injects a single operation on an otherwise idle network and runs
// until it completes, returning its last-arrival latency. It is the
// primitive behind the unloaded-latency experiments.
func (s *Simulator) RunOp(src int, dests []int, multicast bool, payload int, budget int64) (int64, *flit.Op, error) {
	op, err := s.StartOp(src, dests, multicast, payload)
	if err != nil {
		return 0, nil, err
	}
	done, err := s.sim.RunUntil(op.Done, budget)
	if err != nil {
		return 0, op, err
	}
	if !done {
		return 0, op, fmt.Errorf("core: op from %d to %d destinations incomplete after %d cycles",
			src, len(dests), budget)
	}
	return op.LastLatency(), op, nil
}

// Step advances the simulation one cycle (generating traffic if a Run is in
// progress); exposed for fine-grained tests.
func (s *Simulator) Step() { s.sim.Step() }

// Quiesced reports whether the whole system is idle (including a configured
// collective workload having run to completion).
func (s *Simulator) Quiesced() bool {
	return s.outstanding == 0 && s.sim.Quiesced() && (s.cdrv == nil || s.cdrv.finished())
}

// Drain runs with generation off until the system is idle.
func (s *Simulator) Drain(budget int64) (bool, error) {
	s.genOn = false
	return s.sim.RunUntil(s.Quiesced, budget)
}

func (s *Simulator) watchdog() error {
	return s.sim.CheckWatchdog()
}
