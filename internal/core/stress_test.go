package core

import (
	"fmt"
	"testing"

	"mdworm/internal/collective"
)

// TestStressNoDeadlock drives each architecture and scheme combination at
// loads past saturation: the watchdog must stay silent (every op eventually
// completes once generation stops), which is the paper's deadlock-freedom
// property under adversarial pressure.
func TestStressNoDeadlock(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	type cas struct {
		arch   SwitchArch
		scheme collective.Scheme
		frac   float64
		degree int
	}
	cases := []cas{
		{CentralBuffer, collective.HardwareBitString, 1.0, 8},
		{CentralBuffer, collective.HardwareBitString, 0.2, 16},
		{CentralBuffer, collective.HardwareMultiport, 1.0, 8},
		{CentralBuffer, collective.SoftwareBinomial, 0.5, 8},
		{InputBuffer, collective.HardwareBitString, 1.0, 8},
		{InputBuffer, collective.HardwareBitString, 0.3, 32},
		{InputBuffer, collective.SoftwareBinomial, 0.5, 8},
	}
	for _, c := range cases {
		c := c
		name := fmt.Sprintf("%v-%v-f%.1f-d%d", c.arch, c.scheme, c.frac, c.degree)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			cfg.Arch = c.arch
			cfg.Scheme = c.scheme
			cfg.Traffic.MulticastFraction = c.frac
			cfg.Traffic.Degree = c.degree
			cfg.Traffic.OpRate = 0.02 // far past saturation
			cfg.WarmupCycles = 500
			cfg.MeasureCycles = 3000
			cfg.DrainCycles = 2_000_000
			cfg.WatchdogLimit = 30_000
			sim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatalf("deadlock or protocol failure: %v", err)
			}
			if !sim.Quiesced() {
				t.Fatalf("system did not drain; %d ops outstanding", sim.outstanding)
			}
			t.Logf("saturated=%v mcastDone=%d uniDone=%d drain=%d cycles",
				res.Saturated, res.Multicast.OpsCompleted, res.Unicast.OpsCompleted, res.DrainCycles)
		})
	}
}

// TestStressLargeSystem runs the 256-node system (16-flit bit-string
// headers) under multicast pressure on both architectures.
func TestStressLargeSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	for _, arch := range []SwitchArch{CentralBuffer, InputBuffer} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			cfg.Stages = 4 // 256 nodes
			cfg.Arch = arch
			cfg.Traffic.OpRate = 0.004
			cfg.Traffic.Degree = 16
			cfg.WarmupCycles = 500
			cfg.MeasureCycles = 2000
			cfg.DrainCycles = 2_000_000
			sim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.Run(); err != nil {
				t.Fatalf("deadlock or protocol failure: %v", err)
			}
			if !sim.Quiesced() {
				t.Fatal("system did not drain")
			}
		})
	}
}
