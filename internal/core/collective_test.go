package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"mdworm/internal/collective"
	"mdworm/internal/faults"
)

// collectiveConfig is a small pure-collective system: no stochastic load,
// the driver is the only traffic source.
func collectiveConfig(kind collective.Kind, scheme collective.Scheme) Config {
	cfg := DefaultConfig()
	cfg.Arity = 4
	cfg.Stages = 2 // 16 nodes
	cfg.Scheme = scheme
	cfg.Traffic.OpRate = 0
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 500
	cfg.DrainCycles = 400_000
	cfg.Collective = collective.Spec{
		Kind:         kind,
		PayloadFlits: 4,
		Reps:         5,
		SkewCycles:   12,
		GapCycles:    20,
	}
	return cfg
}

func allKinds() []collective.Kind {
	return []collective.Kind{
		collective.Barrier, collective.Broadcast, collective.AllReduce,
		collective.AllReduceGather, collective.Scatter, collective.Gather,
	}
}

// TestCollectiveAllKindsAllModes runs every collective in the three modes of
// the paper's comparison and checks completion accounting.
func TestCollectiveAllKindsAllModes(t *testing.T) {
	schemes := []collective.Scheme{
		collective.HardwareBitString, // CB-HW / IB-HW multidestination
		collective.HardwareMultiport,
		collective.SoftwareBinomial, // SW unicast-tree baseline
	}
	for _, kind := range allKinds() {
		for _, scheme := range schemes {
			for _, arch := range []SwitchArch{CentralBuffer, InputBuffer} {
				cfg := collectiveConfig(kind, scheme)
				cfg.Arch = arch
				s, err := New(cfg)
				if err != nil {
					t.Fatalf("%v/%v/%v: %v", kind, scheme, arch, err)
				}
				r, err := s.Run()
				if err != nil {
					t.Fatalf("%v/%v/%v: run: %v", kind, scheme, arch, err)
				}
				c := r.Collective
				if c == nil {
					t.Fatalf("%v/%v/%v: no collective results", kind, scheme, arch)
				}
				if c.Kind != kind.String() || c.Started != 5 || c.Completed != 5 || c.Degraded != 0 {
					t.Fatalf("%v/%v/%v: bad accounting %+v", kind, scheme, arch, c)
				}
				if c.LastArrival.Count != 5 || c.LastArrival.Min <= 0 {
					t.Fatalf("%v/%v/%v: bad latency summary %+v", kind, scheme, arch, c.LastArrival)
				}
				if len(c.Phases) == 0 {
					t.Fatalf("%v/%v/%v: no phase summaries", kind, scheme, arch)
				}
			}
		}
	}
}

// TestCollectivePhaseTiling is the property test of the subsystem: for every
// kind, mode, and skew, each rep's per-phase latencies must sum exactly to
// its end-to-end last-arrival latency (mirroring the critical-path tiling
// guarantee of the span analyzer).
func TestCollectivePhaseTiling(t *testing.T) {
	for _, kind := range allKinds() {
		for _, scheme := range []collective.Scheme{collective.HardwareBitString, collective.SoftwareBinomial} {
			for _, skew := range []int64{0, 37} {
				cfg := collectiveConfig(kind, scheme)
				cfg.Collective.SkewCycles = skew
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					t.Fatalf("%v/%v skew=%d: %v", kind, scheme, skew, err)
				}
				coll := &s.col.Coll
				if len(coll.LastArrival) != 5 {
					t.Fatalf("%v/%v skew=%d: %d healthy reps", kind, scheme, skew, len(coll.LastArrival))
				}
				for rep, last := range coll.LastArrival {
					sum := 0.0
					for p, samples := range coll.Phases {
						if len(samples) != len(coll.LastArrival) {
							t.Fatalf("%v/%v: phase %d has %d samples, want %d",
								kind, scheme, p+1, len(samples), len(coll.LastArrival))
						}
						sum += samples[rep]
					}
					if sum != last {
						t.Fatalf("%v/%v skew=%d rep %d: phase sum %v != last-arrival %v",
							kind, scheme, skew, rep, sum, last)
					}
				}
			}
		}
	}
}

// TestCollectiveDeterministic: identical configs yield byte-identical
// results, including with background traffic running alongside.
func TestCollectiveDeterministic(t *testing.T) {
	cfg := collectiveConfig(collective.AllReduce, collective.HardwareBitString)
	cfg.Traffic.OpRate = 0.002 // background unicast load
	cfg.Traffic.MulticastFraction = 0
	run := func() []byte {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("results differ:\n%s\n%s", a, b)
	}
}

// TestCollectiveCheckpointResume snapshots mid-collective and verifies the
// restored run finishes byte-identical to the uninterrupted one.
func TestCollectiveCheckpointResume(t *testing.T) {
	for _, kind := range []collective.Kind{collective.Barrier, collective.Scatter} {
		cfg := collectiveConfig(kind, collective.SoftwareBinomial)
		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Run()
		if err != nil {
			t.Fatal(err)
		}

		// Snapshot in the middle of the measurement window, mid-rep.
		var blob []byte
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stop := cfg.WarmupCycles + 150
		_, err = s.RunCheckpointed(stop, func(data []byte, cycle int64) error {
			if blob == nil && cycle == stop {
				blob = data
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if blob == nil {
			t.Fatalf("%v: no snapshot taken at cycle %d", kind, stop)
		}
		restored, err := Restore(blob)
		if err != nil {
			t.Fatalf("%v: restore: %v", kind, err)
		}
		if restored.cdrv == nil {
			t.Fatalf("%v: restored simulator has no collective driver", kind)
		}
		got, err := restored.Run()
		if err != nil {
			t.Fatalf("%v: resumed run: %v", kind, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%v: resumed results differ\nwant %+v\ngot  %+v", kind, want, got)
		}
	}
}

// TestCollectiveUnderFaults: a link failure mid-run degrades reps (steps
// complete via drop accounting) without wedging the schedule.
func TestCollectiveUnderFaults(t *testing.T) {
	cfg := collectiveConfig(collective.Broadcast, collective.HardwareBitString)
	cfg.Collective.Reps = 8
	cfg.Collective.GapCycles = 50
	cfg.Faults = faults.Plan{Events: []faults.Event{
		// Sever node 1's NIC attachment: the root's broadcasts can no
		// longer reach it, so later reps complete degraded.
		{Kind: faults.LinkDown, At: cfg.WarmupCycles + 120, Switch: 0, Port: 1},
	}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	c := r.Collective
	if c == nil || c.Completed != 8 {
		t.Fatalf("collective did not finish under faults: %+v", c)
	}
	if c.Degraded == 0 && r.DestsDropped == 0 {
		t.Fatalf("link-down left no trace in collective results: %+v (dropped %d)", c, r.DestsDropped)
	}
	if int64(c.LastArrival.Count) != c.Completed-c.Degraded {
		t.Fatalf("degraded reps leaked latency samples: %+v", c)
	}
}
