package core

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mdworm/internal/ckpt"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/obs"
)

// snapTestConfig is a small, fast workload exercising both traffic classes.
func snapTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Arity = 4
	cfg.Stages = 2
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 600
	cfg.DrainCycles = 60_000
	cfg.Traffic.OpRate = 0.002
	cfg.Traffic.MulticastFraction = 0.5
	cfg.Traffic.Degree = 6
	return cfg
}

// errSnapAbort is the sentinel a test sink returns to simulate a crash at a
// checkpoint boundary.
var errSnapAbort = errors.New("snapshot taken, aborting run")

// snapshotAt runs cfg until the first checkpoint at a cycle divisible by
// every and returns the blob (simulating a crash right after the write).
func snapshotAt(t *testing.T, cfg Config, every int64) []byte {
	t.Helper()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var blob []byte
	_, err = sim.RunCheckpointed(every, func(data []byte, cycle int64) error {
		blob = data
		return errSnapAbort
	})
	if !errors.Is(err, errSnapAbort) {
		t.Fatalf("run ended with %v before the first checkpoint", err)
	}
	return blob
}

// TestSnapshotRestoreByteStable checks that restoring a snapshot and
// immediately snapshotting again reproduces the exact bytes: the state
// overlay is lossless and the encoding deterministic.
func TestSnapshotRestoreByteStable(t *testing.T) {
	blob := snapshotAt(t, snapTestConfig(), 500)
	sim, err := Restore(blob)
	if err != nil {
		t.Fatal(err)
	}
	again, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatalf("restore→snapshot changed the blob: %d bytes vs %d", len(blob), len(again))
	}
}

// TestSnapshotRefusals checks that attachments living outside the
// checkpoint — captures, tracers, delivery hooks — make Snapshot refuse
// rather than silently drop them.
func TestSnapshotRefusals(t *testing.T) {
	mk := func() *Simulator {
		sim, err := New(snapTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}

	sim := mk()
	sim.Observe(&obs.Capture{SampleEvery: 64})
	if _, err := sim.Snapshot(); err == nil {
		t.Error("snapshot with capture attached succeeded")
	}

	sim = mk()
	sim.SetTracer(&engine.WriterTracer{W: io.Discard})
	if _, err := sim.Snapshot(); err == nil {
		t.Error("snapshot with tracer installed succeeded")
	}

	sim = mk()
	sim.deliverHook = func(m *flit.Message, proc int, now int64) {}
	if _, err := sim.Snapshot(); err == nil {
		t.Error("snapshot with delivery hook succeeded")
	}

	sim = mk()
	if _, err := sim.Snapshot(); err != nil {
		t.Errorf("bare simulator refused to snapshot: %v", err)
	}
}

// TestRestoreRejectsCorruption flips one byte at a sample of positions and
// checks Restore reports a structured error (or, where the flip lands in
// unvalidated numeric slack, restores something) — and never panics.
func TestRestoreRejectsCorruption(t *testing.T) {
	blob := snapshotAt(t, snapTestConfig(), 500)

	if _, err := Restore(nil); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("nil blob gave %v", err)
	}
	if _, err := Restore(blob[:len(blob)/2]); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("truncated blob gave %v", err)
	}

	// The container CRC catches every single-byte flip in the body.
	for _, pos := range []int{0, 5, len(blob) / 2, len(blob) - 1} {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0x40
		if _, err := Restore(mut); err == nil {
			t.Errorf("flip at %d restored successfully", pos)
		}
	}
}

// FuzzSnapshotRoundTrip feeds corrupted and truncated snapshot bytes to
// Restore: any outcome but a clean error or a consistent simulator is a
// bug, and panics are failures by construction.
func FuzzSnapshotRoundTrip(f *testing.F) {
	cfg := snapTestConfig()
	cfg.Traffic.OpRate = 0.004
	sim, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var seed []byte
	_, err = sim.RunCheckpointed(300, func(data []byte, cycle int64) error {
		seed = data
		return errSnapAbort
	})
	if !errors.Is(err, errSnapAbort) {
		f.Fatalf("seed run ended with %v", err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/3])
	f.Add([]byte(ckpt.Magic))
	f.Add([]byte{})

	// A seed whose event-queue section is non-empty: checkpoint every cycle
	// until a snapshot catches sleeping components with queued wake events,
	// so the fuzzer mutates the events section too, not just engine state.
	simEv, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var seedEvents []byte
	_, err = simEv.RunCheckpointed(1, func(data []byte, cycle int64) error {
		if simEv.sim.PendingEvents() == 0 {
			return nil
		}
		seedEvents = data
		return errSnapAbort
	})
	if !errors.Is(err, errSnapAbort) {
		f.Fatalf("no checkpoint caught a non-empty event queue (run ended with %v)", err)
	}
	f.Add(seedEvents)

	f.Fuzz(func(t *testing.T, data []byte) {
		sim, err := Restore(data)
		if err != nil {
			if sim != nil {
				t.Fatal("Restore returned both a simulator and an error")
			}
			return
		}
		// A blob that passes every validation must yield a simulator whose
		// state is internally consistent enough to re-snapshot.
		if _, err := sim.Snapshot(); err != nil {
			t.Fatalf("restored simulator cannot snapshot: %v", err)
		}
	})
}
