package core

import (
	"reflect"
	"testing"
)

// Canonicalization must be idempotent: normalizing an already-normalized
// config is a no-op, so canonical forms can be compared (or hashed) safely.
func TestCanonicalizeIdempotent(t *testing.T) {
	once, err := DefaultConfig().Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	twice, err := once.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("canonicalize not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
	}
}

// A config that leaves buffer sizes at their (too-small) defaults and one
// that spells out the normalized values must canonicalize identically.
func TestCanonicalizeResolvesDefaults(t *testing.T) {
	base := DefaultConfig()
	canon, err := base.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}

	spelled := base
	spelled.CB = canon.CB // pre-resolved buffer parameters
	spelled.IB = canon.IB
	canon2, err := spelled.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canon, canon2) {
		t.Fatalf("defaulted and spelled-out configs diverge:\n%+v\n%+v", canon, canon2)
	}
}

// Semantic changes must survive canonicalization (they may not be
// normalized away).
func TestCanonicalizeKeepsSemanticChanges(t *testing.T) {
	canon, err := DefaultConfig().Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Config){
		"arch":   func(c *Config) { c.Arch = InputBuffer },
		"seed":   func(c *Config) { c.Seed++ },
		"degree": func(c *Config) { c.Traffic.Degree = 4 },
		"policy": func(c *Config) { c.UpPolicy = 2 },
		"warmup": func(c *Config) { c.WarmupCycles += 1000 },
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		got, err := cfg.Canonicalize()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if reflect.DeepEqual(canon, got) {
			t.Errorf("%s: semantic change lost by canonicalization", name)
		}
	}
}

// Invalid configs are rejected rather than canonicalized.
func TestCanonicalizeRejectsInvalid(t *testing.T) {
	bad := DefaultConfig()
	bad.Arity = 1
	if _, err := bad.Canonicalize(); err == nil {
		t.Error("Arity=1 accepted")
	}
	bad = DefaultConfig()
	bad.LinkLatency = 0
	if _, err := bad.Canonicalize(); err == nil {
		t.Error("LinkLatency=0 accepted")
	}
	bad = DefaultConfig()
	bad.Traffic.OpRate = 2
	if _, err := bad.Canonicalize(); err == nil {
		t.Error("OpRate=2 accepted")
	}
}
