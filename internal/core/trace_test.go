package core

import (
	"strings"
	"testing"

	"mdworm/internal/collective"
	"mdworm/internal/engine"
)

// TestTraceLifecycle checks the event stream of a software multicast: ops
// start before they complete, every injection precedes its delivery, and
// forwarding events appear for the binomial tree.
func TestTraceLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = collective.SoftwareBinomial
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr engine.CollectTracer
	sim.SetTracer(&tr)
	if _, _, err := sim.RunOp(0, []int{1, 9, 17, 33}, true, 32, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if tr.Count(engine.TraceOpStart) != 1 || tr.Count(engine.TraceOpDone) != 1 {
		t.Fatalf("op events: start=%d done=%d", tr.Count(engine.TraceOpStart), tr.Count(engine.TraceOpDone))
	}
	// Binomial to 4 destinations: 4 messages total, each injected and delivered.
	if got := tr.Count(engine.TraceInject); got != 4 {
		t.Fatalf("inject events = %d, want 4", got)
	}
	if got := tr.Count(engine.TraceDeliver); got != 4 {
		t.Fatalf("deliver events = %d, want 4", got)
	}
	if tr.Count(engine.TraceForward) == 0 {
		t.Fatal("no forwarding events for a binomial tree")
	}
	// Ordering: op-start first, op-done last.
	if tr.Events[0].Kind != engine.TraceOpStart {
		t.Fatalf("first event %v", tr.Events[0])
	}
	last := tr.Events[len(tr.Events)-1]
	if last.Kind != engine.TraceOpDone {
		t.Fatalf("last event %v", last)
	}
	// Cycles never decrease.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Cycle < tr.Events[i-1].Cycle {
			t.Fatal("trace not in cycle order")
		}
	}
}

// TestTraceReservation checks central-buffer admit events appear for
// hardware multicast.
func TestTraceReservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr engine.CollectTracer
	sim.SetTracer(&tr)
	if _, _, err := sim.RunOp(0, []int{1, 2, 3}, true, 32, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if tr.Count(engine.TraceAdmit) == 0 {
		t.Fatal("no central-buffer admissions traced for a multicast")
	}
	if tr.Count(engine.TraceDecode) == 0 {
		t.Fatal("no decodes traced")
	}
}

// TestTraceGrantIB checks the input-buffer grant events.
func TestTraceGrantIB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arch = InputBuffer
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr engine.CollectTracer
	sim.SetTracer(&tr)
	if _, _, err := sim.RunOp(0, []int{1, 2, 3}, true, 32, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if tr.Count(engine.TraceGrant) == 0 {
		t.Fatal("no grants traced")
	}
}

func TestTraceEventString(t *testing.T) {
	e := engine.TraceEvent{Cycle: 7, Kind: engine.TraceInject, Actor: "nic3", Msg: 9, Op: 4, Detail: "x"}
	s := e.String()
	for _, want := range []string{"inject", "nic3", "msg=9", "op=4", "x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}

// TestTraceRouteLength: a cross-network unicast decodes at exactly
// 2*stages-1 switches (up to the top stage and back down).
func TestTraceRouteLength(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr engine.CollectTracer
	sim.SetTracer(&tr)
	if _, _, err := sim.RunOp(0, []int{63}, false, 16, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Count(engine.TraceDecode), 2*cfg.Stages-1; got != want {
		t.Fatalf("decodes = %d, want %d", got, want)
	}
}

// TestTraceNearestNeighbor: a unicast within one stage-0 switch decodes once.
func TestTraceNearestNeighbor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr engine.CollectTracer
	sim.SetTracer(&tr)
	if _, _, err := sim.RunOp(0, []int{1}, false, 16, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := tr.Count(engine.TraceDecode); got != 1 {
		t.Fatalf("decodes = %d, want 1", got)
	}
}

// TestTraceMulticastDecodeCount: a hardware broadcast decodes at every
// switch of its replication tree exactly once per branch worm.
func TestTraceMulticastDecodeCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stages = 2 // 16 nodes: tree is 1 up + 4 stage-1-down... countable
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr engine.CollectTracer
	sim.SetTracer(&tr)
	dests := make([]int, 0, 15)
	for d := 1; d < 16; d++ {
		dests = append(dests, d)
	}
	if _, _, err := sim.RunOp(0, dests, true, 32, 1_000_000); err != nil {
		t.Fatal(err)
	}
	// Broadcast from node 0 on a 2-stage tree: decode at the source's
	// stage-0 switch (1), one stage-1 switch (1), and the four stage-0
	// switches on the way down (4, including the source switch again for
	// its local destinations under ReplicateOnUpPath the local dests were
	// already covered — so 3 others). Total = 1 + 1 + 3 = 5.
	if got := tr.Count(engine.TraceDecode); got != 5 {
		t.Fatalf("broadcast decodes = %d, want 5", got)
	}
}
