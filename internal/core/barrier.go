package core

import (
	"fmt"
	"math/bits"

	"mdworm/internal/collective"
	"mdworm/internal/flit"
)

// BarrierScheme selects how a barrier synchronization is realized. The
// paper's follow-up work (Sivaram/Stunkel/Panda, IPPS '97) studies hardware
// barrier support; here the gather phase is a binomial combining tree of
// short unicasts in both variants, and the schemes differ in the release:
// one hardware multidestination worm versus a binomial software broadcast.
type BarrierScheme uint8

const (
	// BarrierSoftware uses a binomial gather followed by a binomial
	// software broadcast, all unicasts.
	BarrierSoftware BarrierScheme = iota
	// BarrierHardwareRelease uses the binomial gather followed by a single
	// hardware multidestination release worm from the root.
	BarrierHardwareRelease
	// BarrierHardwareCombining performs the whole barrier in the switches:
	// every host injects one single-flit token; switches on the designated
	// spanning tree combine tokens and the root broadcasts release tokens
	// back down — no NIC gather tree at all. Both switch architectures
	// implement the combining logic.
	BarrierHardwareCombining
)

// String names the scheme.
func (b BarrierScheme) String() string {
	switch b {
	case BarrierSoftware:
		return "sw-barrier"
	case BarrierHardwareRelease:
		return "hw-release-barrier"
	case BarrierHardwareCombining:
		return "hw-combining-barrier"
	default:
		return fmt.Sprintf("barrier(%d)", uint8(b))
	}
}

// barrierParent returns the binomial combining-tree parent of rank r
// (root rank 0): clear the lowest set bit.
func barrierParent(r int) int { return r &^ (r & -r) }

// barrierChildren returns the children of rank r in a tree over n ranks:
// r | 2^k for every k below r's lowest set bit (every k for the root), the
// standard binomial combining tree.
func barrierChildren(r, n int) []int {
	upper := bits.Len(uint(n - 1))
	if r != 0 {
		upper = bits.TrailingZeros(uint(r))
	}
	var out []int
	for k := 0; k < upper; k++ {
		c := r | 1<<uint(k)
		if c < n {
			out = append(out, c)
		}
	}
	return out
}

// RunBarrier executes one full-system barrier entered by every node at the
// current cycle and returns the cycle count until the last node receives the
// release. The network must be otherwise idle (traffic generation off);
// budget bounds the simulation.
func (s *Simulator) RunBarrier(scheme BarrierScheme, budget int64) (int64, error) {
	if s.genOn {
		return 0, fmt.Errorf("core: RunBarrier requires an idle network")
	}
	if scheme == BarrierHardwareCombining {
		return s.runCombiningBarrier(budget)
	}
	n := s.net.N
	start := s.sim.Now
	fac := &factory{cfg: &s.cfg, net: s.net, ids: &s.ids}
	const arrivalPayload = 1 // a minimal "I arrived" token
	const releasePayload = 1

	// Gather bookkeeping: how many child arrivals each rank still awaits,
	// and when a rank becomes ready to notify its parent.
	waiting := make([]int, n)
	for r := 0; r < n; r++ {
		waiting[r] = len(barrierChildren(r, n))
	}
	readyAt := make([]int64, n)
	sent := make([]bool, n)
	for r := 0; r < n; r++ {
		readyAt[r] = start // leaves are ready immediately
	}

	// Each arrival is its own single-destination op; route deliveries to
	// the gather bookkeeping through the delivery hook.
	arrivalFor := make(map[*flit.Op]int) // op -> receiving rank
	var releaseOp *flit.Op
	prevHook := s.deliverHook
	defer func() { s.deliverHook = prevHook }()
	s.deliverHook = func(m *flit.Message, proc int, now int64) {
		op := m.Op
		if op == nil || !op.Done() {
			return
		}
		if rank, ok := arrivalFor[op]; ok {
			waiting[rank]--
			if waiting[rank] == 0 {
				readyAt[rank] = now + int64(s.cfg.NIC.RecvOverhead)
			}
		}
	}

	sendArrival := func(rank int, now int64) error {
		parent := barrierParent(rank)
		op := flit.NewOp(s.ids.Next(), flit.ClassUnicast, rank, 1, now)
		op.Phases = 1
		m := fac.NewMessage(rank, []int{parent}, flit.ClassUnicast, arrivalPayload, op, nil, now)
		s.nics[rank].Submit(m)
		s.outstanding++
		arrivalFor[op] = parent
		return nil
	}

	released := func() bool { return releaseOp != nil && releaseOp.Done() }
	for !released() {
		if s.sim.Now-start > budget {
			return 0, fmt.Errorf("core: barrier incomplete after %d cycles", budget)
		}
		now := s.sim.Now
		// Ranks whose subtree has arrived notify their parent.
		for r := 1; r < n; r++ {
			if !sent[r] && waiting[r] == 0 && now >= readyAt[r] {
				sent[r] = true
				if err := sendArrival(r, now); err != nil {
					return 0, err
				}
			}
		}
		// The root releases everyone once its subtree has arrived.
		if releaseOp == nil && waiting[0] == 0 && now >= readyAt[0] {
			dests := make([]int, 0, n-1)
			for d := 1; d < n; d++ {
				dests = append(dests, d)
			}
			var err error
			switch scheme {
			case BarrierHardwareRelease:
				releaseOp, err = s.startOpScheme(s.cfg.Scheme, 0, dests, true, releasePayload)
			case BarrierSoftware:
				releaseOp, err = s.startOpScheme(collective.SoftwareBinomial, 0, dests, true, releasePayload)
			default:
				err = fmt.Errorf("core: unknown barrier scheme %d", scheme)
			}
			if err != nil {
				return 0, err
			}
		}
		s.sim.Step()
		if err := s.sim.CheckWatchdog(); err != nil {
			return 0, err
		}
	}
	return releaseOp.LastArrival - start, nil
}

// runCombiningBarrier drives the in-switch combining barrier: one token per
// host, combined by the switches, released by the spanning-tree root.
func (s *Simulator) runCombiningBarrier(budget int64) (int64, error) {
	n := s.net.N
	start := s.sim.Now
	// One op delivered at every host by the release broadcast.
	op := flit.NewOp(s.ids.Next(), flit.ClassBarrier, 0, n, start)
	op.Phases = 1
	s.outstanding++
	for proc := 0; proc < n; proc++ {
		m := &flit.Message{
			ID:          s.ids.Next(),
			Src:         proc,
			Dests:       []int{proc}, // tokens are consumed by switches, never routed
			Class:       flit.ClassBarrier,
			HeaderFlits: 1,
			Created:     start,
			Op:          op,
		}
		s.nics[proc].Submit(m)
	}
	done, err := s.sim.RunUntil(op.Done, budget)
	if err != nil {
		return 0, err
	}
	if !done {
		return 0, fmt.Errorf("core: combining barrier incomplete after %d cycles", budget)
	}
	return op.LastArrival - start, nil
}
