package core

import (
	"testing"

	"mdworm/internal/collective"
	"mdworm/internal/topology"
)

func irregularCfg(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Topology = IrregularTree
	cfg.Tree = topology.TreeSpec{
		Switches:    16,
		MinHosts:    1,
		MaxHosts:    4,
		MaxChildren: 3,
		Seed:        seed,
	}
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 4000
	return cfg
}

func TestIrregularUnicastAllPairs(t *testing.T) {
	cfg := irregularCfg(3)
	cfg.Traffic.OpRate = 0
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := sim.Net().N
	// One unicast between a spread of pairs on the live simulator.
	for src := 0; src < n; src += 3 {
		dst := (src + n/2 + 1) % n
		if dst == src {
			continue
		}
		if _, _, err := sim.RunOp(src, []int{dst}, false, 16, 200_000); err != nil {
			t.Fatalf("unicast %d->%d: %v", src, dst, err)
		}
	}
}

func TestIrregularMulticastAndBroadcast(t *testing.T) {
	for _, arch := range []SwitchArch{CentralBuffer, InputBuffer} {
		cfg := irregularCfg(7)
		cfg.Arch = arch
		cfg.Traffic.OpRate = 0
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := sim.Net().N
		dests := make([]int, 0, n-1)
		for d := 1; d < n; d++ {
			dests = append(dests, d)
		}
		lat, op, err := sim.RunOp(0, dests, true, 64, 1_000_000)
		if err != nil {
			t.Fatalf("%v broadcast: %v", arch, err)
		}
		if !op.Done() || op.MessagesSent != 1 {
			t.Fatalf("%v broadcast: done=%v msgs=%d", arch, op.Done(), op.MessagesSent)
		}
		t.Logf("%v irregular broadcast to %d hosts: %d cycles", arch, n-1, lat)
	}
}

func TestIrregularLoadedRunBothArchs(t *testing.T) {
	for _, arch := range []SwitchArch{CentralBuffer, InputBuffer} {
		for _, scheme := range []collective.Scheme{collective.HardwareBitString, collective.SoftwareBinomial} {
			cfg := irregularCfg(11)
			cfg.Arch = arch
			cfg.Scheme = scheme
			cfg.Traffic.MulticastFraction = 0.3
			cfg.Traffic.Degree = 6
			cfg.Traffic.OpRate = 0.002
			sim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatalf("%v/%v: %v", arch, scheme, err)
			}
			if !sim.Quiesced() {
				t.Fatalf("%v/%v: did not drain", arch, scheme)
			}
			if res.Multicast.OpsCompleted != res.Multicast.OpsGenerated ||
				res.Unicast.OpsCompleted != res.Unicast.OpsGenerated {
				t.Fatalf("%v/%v: lost ops", arch, scheme)
			}
		}
	}
}

// TestIrregularStress drives an irregular fabric past saturation; the
// deadlock-freedom argument (per-channel buffers for IB, direction pools for
// CB) must hold on trees exactly as on BMINs.
func TestIrregularStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	for _, arch := range []SwitchArch{CentralBuffer, InputBuffer} {
		cfg := irregularCfg(13)
		cfg.Arch = arch
		cfg.Traffic.MulticastFraction = 0.4
		cfg.Traffic.Degree = 8
		cfg.Traffic.OpRate = 0.02 // far past saturation
		cfg.MeasureCycles = 3000
		cfg.DrainCycles = 2_000_000
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatalf("%v: deadlock or protocol failure: %v", arch, err)
		}
		if !sim.Quiesced() {
			t.Fatalf("%v: did not drain", arch)
		}
	}
}

func TestIrregularRejectsMultiport(t *testing.T) {
	cfg := irregularCfg(1)
	cfg.Scheme = collective.HardwareMultiport
	if _, err := New(cfg); err == nil {
		t.Fatal("multiport encoding accepted on an irregular fabric")
	}
}
