package core

// Canonicalize returns the fully-resolved form of the configuration: the
// topology is built, buffer parameters are raised to fit the workload
// exactly as New would raise them, and the result is validated. Two
// configurations that describe the same simulated system — for example one
// that spells out a default buffer size and one that leaves it to be raised
// by normalization — canonicalize to identical values, which makes the
// canonical form a sound cache key: New(c) and New(canonical(c)) build the
// same system, and any semantic difference between two configs survives
// into their canonical forms.
func (c Config) Canonicalize() (Config, error) {
	net, err := c.buildTopology()
	if err != nil {
		return Config{}, err
	}
	if err := c.normalize(net); err != nil {
		return Config{}, err
	}
	return c, nil
}
