package core

import (
	"fmt"

	"mdworm/internal/ckpt"
	"mdworm/internal/collective"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/traffic"
)

// Step execution states of the collective driver.
const (
	stepPending uint8 = iota
	stepInFlight
	stepDone
)

// collectiveDriver executes the configured collective workload through the
// engine's event loop: it launches each schedule step as an ordinary op when
// the step's dependencies have delivered (plus a software-handling delay),
// repeats the schedule Reps times, and feeds per-rep last-arrival, skew, and
// per-phase tiling samples into the stats collector. Like the fault driver it
// always reports quiesced — the drain's completion condition is the driver's
// finished() — and sleeps on its own timetable: the next entry time while
// steps are ready, nothing while it only waits on deliveries (op completion
// re-arms it via ScheduleWakeAt).
type collectiveDriver struct {
	s     *Simulator
	spec  collective.Spec
	sched collective.Schedule
	skew  traffic.Skew

	// dependents inverts the schedule's Deps edges; handoff is the software
	// delay between a dependency's last delivery and the dependent launch.
	dependents [][]int
	handoff    int64

	// Mutable, checkpointed state. When inRep is false, repStart is the
	// cycle the *next* rep (index rep) begins; rep == spec.Reps means the
	// workload is finished.
	inRep      bool
	rep        int
	repStart   int64
	degraded   bool  // current rep lost destinations to a fault
	finalFirst int64 // earliest final-phase arrival this rep (-1 none)
	finalLast  int64 // latest final-phase arrival this rep
	status     []uint8
	readyAt    []int64    // launch cycle once deps are met (-1 until then)
	phaseEnd   []int64    // last completion cycle per phase (-1 none)
	ops        []*flit.Op // in-flight op per step

	// Derived from the above (rebuilt on restore, never encoded).
	waiting   []int // unmet dependency count per step
	phaseLeft []int // steps not yet completed per phase
	doneSteps int
	opStep    map[uint64]int
}

func newCollectiveDriver(s *Simulator, spec collective.Spec, sched collective.Schedule) *collectiveDriver {
	n := len(sched.Steps)
	d := &collectiveDriver{
		s:          s,
		spec:       spec,
		sched:      sched,
		skew:       traffic.Skew{Seed: s.cfg.Seed ^ 0x5eed_c011, Max: spec.SkewCycles},
		dependents: make([][]int, n),
		handoff:    max(1, int64(s.cfg.NIC.RecvOverhead)),
		repStart:   s.cfg.WarmupCycles,
		status:     make([]uint8, n),
		readyAt:    make([]int64, n),
		phaseEnd:   make([]int64, sched.Phases),
		ops:        make([]*flit.Op, n),
		waiting:    make([]int, n),
		phaseLeft:  make([]int, sched.Phases),
		opStep:     make(map[uint64]int, n),
	}
	for _, st := range sched.Steps {
		for _, dep := range st.Deps {
			d.dependents[dep] = append(d.dependents[dep], st.ID)
		}
	}
	col := &s.col.Coll
	col.Active = true
	col.Kind = spec.Kind.String()
	col.NumPhases = sched.Phases
	col.Phases = make([][]float64, sched.Phases)
	return d
}

// Name identifies the driver in diagnostics.
func (d *collectiveDriver) Name() string { return "collective-driver" }

// Quiesced always holds: un-launched reps must not keep Advance stepping;
// the drain predicate consults finished() instead.
func (d *collectiveDriver) Quiesced() bool { return true }

// finished reports whether every rep has completed.
func (d *collectiveDriver) finished() bool { return !d.inRep && d.rep >= d.spec.Reps }

// Step begins reps whose start time has arrived and launches every step
// whose dependencies (and entry delay) are satisfied.
func (d *collectiveDriver) Step(now int64) {
	if d.finished() {
		return
	}
	if !d.inRep {
		if now < d.repStart {
			return
		}
		d.beginRep(now)
	}
	d.launchReady(now)
}

// NextWake implements engine.NextWaker: the next rep start while idle, the
// earliest ready step launch while in a rep, nothing while only waiting on
// deliveries (onOpDone schedules the re-arm).
func (d *collectiveDriver) NextWake(now int64) (int64, bool) {
	if d.finished() {
		return 0, false
	}
	if !d.inRep {
		return max(d.repStart, now+1), true
	}
	wake := int64(-1)
	for i := range d.status {
		if d.status[i] != stepPending || d.waiting[i] != 0 {
			continue
		}
		at := max(d.readyAt[i], now+1)
		if wake < 0 || at < wake {
			wake = at
		}
	}
	if wake < 0 {
		return 0, false
	}
	return wake, true
}

// beginRep resets per-rep state; entry steps (no dependencies) become ready
// at the rep start plus their source's deterministic entry skew.
func (d *collectiveDriver) beginRep(now int64) {
	d.inRep = true
	d.repStart = now
	d.degraded = false
	d.finalFirst = -1
	d.finalLast = -1
	d.doneSteps = 0
	for p := range d.phaseEnd {
		d.phaseEnd[p] = -1
		d.phaseLeft[p] = 0
	}
	for i, st := range d.sched.Steps {
		d.status[i] = stepPending
		d.ops[i] = nil
		d.waiting[i] = len(st.Deps)
		if len(st.Deps) == 0 {
			d.readyAt[i] = now + d.skew.At(d.rep, st.Src)
		} else {
			d.readyAt[i] = -1
		}
		d.phaseLeft[st.Phase-1]++
	}
	d.s.col.Coll.Started++
	if d.s.sim.Tracing() {
		d.s.sim.Emit(engine.TraceEvent{Kind: engine.TraceCollStart, Actor: "collective",
			Detail: fmt.Sprintf("rep=%d kind=%s steps=%d phases=%d",
				d.rep, d.spec.Kind, len(d.sched.Steps), d.sched.Phases)})
	}
}

func (d *collectiveDriver) launchReady(now int64) {
	launched := false
	for i := range d.sched.Steps {
		if d.status[i] == stepPending && d.waiting[i] == 0 && d.readyAt[i] <= now {
			d.launch(i)
			launched = true
		}
	}
	if launched {
		d.s.sim.Progress()
	}
}

// launch injects one schedule step as an op. The schedule is validated
// against the topology at build time, so planning cannot fail on a healthy
// model; a failure here is a model invariant violation.
func (d *collectiveDriver) launch(i int) {
	op, err := d.s.startCollectiveStep(d.sched.Steps[i])
	if err != nil {
		panic(fmt.Sprintf("core: collective step %d unlaunchable: %v", i, err))
	}
	d.status[i] = stepInFlight
	d.ops[i] = op
	d.opStep[op.ID] = i
}

// onOpDone retires a completed step: it records phase completion, satisfies
// dependents (scheduling the driver's wake for their launch cycle), and
// finalizes the rep when its last step completes. Dropped destinations
// degrade the rep but never wedge it — a step completes when every
// destination is delivered or accounted dropped, so the schedule always
// makes progress on a faulty fabric.
func (d *collectiveDriver) onOpDone(idx int, op *flit.Op, now int64) {
	st := &d.sched.Steps[idx]
	d.status[idx] = stepDone
	d.ops[idx] = nil
	delete(d.opStep, op.ID)
	d.doneSteps++
	if op.Dropped > 0 {
		d.degraded = true
	}
	ph := st.Phase - 1
	if now > d.phaseEnd[ph] {
		d.phaseEnd[ph] = now
	}
	d.phaseLeft[ph]--
	if d.phaseLeft[ph] == 0 && d.s.sim.Tracing() {
		d.s.sim.Emit(engine.TraceEvent{Kind: engine.TraceCollPhase, Actor: "collective",
			Detail: fmt.Sprintf("rep=%d phase=%d end=%d", d.rep, st.Phase, d.phaseEnd[ph])})
	}
	if st.Phase == d.sched.Phases && op.Dropped == 0 {
		if d.finalFirst < 0 || op.FirstArrival < d.finalFirst {
			d.finalFirst = op.FirstArrival
		}
		if op.LastArrival > d.finalLast {
			d.finalLast = op.LastArrival
		}
	}
	if d.doneSteps == len(d.sched.Steps) {
		d.finishRep(now)
		return
	}
	wake := int64(-1)
	for _, j := range d.dependents[idx] {
		d.waiting[j]--
		if d.waiting[j] == 0 {
			d.readyAt[j] = now + d.handoff
			if wake < 0 || d.readyAt[j] < wake {
				wake = d.readyAt[j]
			}
		}
	}
	if wake > now {
		if err := d.s.sim.ScheduleWakeAt(d, wake); err != nil {
			panic(err)
		}
	}
}

// finishRep samples the completed rep and arms the next one. Per-phase
// latencies are defined cumulatively — T_0 is the rep start and T_p =
// max(T_{p-1}, last completion of phase p) — so they telescope to the
// end-to-end last-arrival latency exactly, whatever order steps completed in.
func (d *collectiveDriver) finishRep(now int64) {
	col := &d.s.col.Coll
	col.Completed++
	latency := now - d.repStart
	if d.degraded {
		col.Degraded++
	} else {
		col.LastArrival = append(col.LastArrival, float64(latency))
		if d.finalFirst >= 0 {
			col.Skew = append(col.Skew, float64(d.finalLast-d.finalFirst))
		}
		t := d.repStart
		for p := 0; p < d.sched.Phases; p++ {
			end := d.phaseEnd[p]
			if end < t {
				end = t
			}
			col.Phases[p] = append(col.Phases[p], float64(end-t))
			t = end
		}
	}
	if d.s.sim.Tracing() {
		d.s.sim.Emit(engine.TraceEvent{Kind: engine.TraceCollDone, Actor: "collective",
			Detail: fmt.Sprintf("rep=%d latency=%d skew=%d degraded=%v",
				d.rep, latency, d.finalLast-max(d.finalFirst, 0), d.degraded)})
	}
	d.inRep = false
	d.rep++
	if d.rep < d.spec.Reps {
		d.repStart = now + max(1, d.spec.GapCycles)
		if err := d.s.sim.ScheduleWakeAt(d, d.repStart); err != nil {
			panic(err)
		}
	}
}

// CollectState adds the driver's in-flight ops to the checkpoint object
// graph (their messages and worms are owned — and collected — by the NICs
// and switches holding them).
func (d *collectiveDriver) CollectState(g *ckpt.Graph) {
	for _, op := range d.ops {
		g.AddOp(op)
	}
}

// EncodeState writes the driver's mutable state. The schedule itself is not
// serialized: it is a pure function of the configuration, rebuilt on restore.
func (d *collectiveDriver) EncodeState(e *ckpt.Enc, g *ckpt.Graph) {
	e.Bool(d.inRep)
	e.Int(d.rep)
	e.I64(d.repStart)
	e.Bool(d.degraded)
	e.I64(d.finalFirst)
	e.I64(d.finalLast)
	for i := range d.sched.Steps {
		e.U8(d.status[i])
		e.I64(d.readyAt[i])
		e.U64(g.OpID(d.ops[i]))
	}
	for p := range d.phaseEnd {
		e.I64(d.phaseEnd[p])
	}
}

// DecodeState restores the driver's mutable state and rebuilds the derived
// dependency and phase accounting from it.
func (d *collectiveDriver) DecodeState(dec *ckpt.Dec, g *ckpt.Graph) {
	d.inRep = dec.Bool()
	d.rep = dec.Int()
	d.repStart = dec.I64()
	d.degraded = dec.Bool()
	d.finalFirst = dec.I64()
	d.finalLast = dec.I64()
	for i := range d.sched.Steps {
		d.status[i] = dec.U8()
		d.readyAt[i] = dec.I64()
		ref := dec.U64()
		if dec.Err() != nil {
			return
		}
		if d.status[i] > stepDone {
			dec.Fail("collective step %d status %d out of range", i, d.status[i])
			return
		}
		op := g.OpAt(dec, ref)
		if dec.Err() != nil {
			return
		}
		if (op != nil) != (d.status[i] == stepInFlight) {
			dec.Fail("collective step %d: op ref inconsistent with status %d", i, d.status[i])
			return
		}
		d.ops[i] = op
	}
	for p := range d.phaseEnd {
		d.phaseEnd[p] = dec.I64()
	}
	if dec.Err() != nil {
		return
	}
	if d.rep < 0 || d.rep > d.spec.Reps {
		dec.Fail("collective rep %d outside [0,%d]", d.rep, d.spec.Reps)
		return
	}
	if d.inRep && d.rep >= d.spec.Reps {
		dec.Fail("collective in rep %d but only %d reps configured", d.rep, d.spec.Reps)
		return
	}
	d.doneSteps = 0
	for p := range d.phaseLeft {
		d.phaseLeft[p] = 0
	}
	d.opStep = make(map[uint64]int, len(d.sched.Steps))
	for i, st := range d.sched.Steps {
		if d.status[i] == stepDone {
			d.doneSteps++
		} else {
			d.phaseLeft[st.Phase-1]++
		}
		if op := d.ops[i]; op != nil {
			d.opStep[op.ID] = i
		}
		unmet := 0
		for _, dep := range st.Deps {
			if d.status[dep] != stepDone {
				unmet++
			}
		}
		d.waiting[i] = unmet
		if d.status[i] != stepPending && unmet != 0 {
			dec.Fail("collective step %d launched with %d unmet deps", i, unmet)
			return
		}
	}
	if d.inRep && d.doneSteps == len(d.sched.Steps) {
		dec.Fail("collective rep %d complete but still marked in-rep", d.rep)
	}
}
