package core

import (
	"testing"

	"mdworm/internal/collective"
)

func idleConfig() Config {
	cfg := DefaultConfig()
	cfg.Traffic.OpRate = 0
	return cfg
}

func TestSmokeSingleUnicast(t *testing.T) {
	sim, err := New(idleConfig())
	if err != nil {
		t.Fatal(err)
	}
	lat, op, err := sim.RunOp(0, []int{63}, false, 32, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !op.Done() {
		t.Fatal("op not done")
	}
	t.Logf("unicast 0->63 latency=%d cycles", lat)
	if lat < 32 || lat > 2000 {
		t.Fatalf("implausible unicast latency %d", lat)
	}
}

func TestSmokeSingleMulticastHW(t *testing.T) {
	sim, err := New(idleConfig())
	if err != nil {
		t.Fatal(err)
	}
	dests := []int{1, 2, 3, 9, 17, 33, 45, 63}
	lat, op, err := sim.RunOp(0, dests, true, 64, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if op.Phases != 1 {
		t.Fatalf("hw bitstring phases = %d, want 1", op.Phases)
	}
	t.Logf("hw multicast d=8 latency=%d cycles", lat)
}

func TestSmokeSingleMulticastSW(t *testing.T) {
	cfg := idleConfig()
	cfg.Scheme = collective.SoftwareBinomial
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dests := []int{1, 2, 3, 9, 17, 33, 45, 63}
	lat, op, err := sim.RunOp(0, dests, true, 64, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if op.Phases != 4 {
		t.Fatalf("binomial phases = %d, want 4", op.Phases)
	}
	t.Logf("sw multicast d=8 latency=%d cycles, messages=%d", lat, op.MessagesSent)
}

func TestSmokeLoadedRunCB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupCycles = 1000
	cfg.MeasureCycles = 5000
	cfg.Traffic.OpRate = 0.0005
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mcast ops=%d/%d lat=%v sat=%v", res.Multicast.OpsCompleted,
		res.Multicast.OpsGenerated, res.Multicast.LastArrival, res.Saturated)
	if res.Multicast.OpsCompleted == 0 {
		t.Fatal("no multicasts completed")
	}
}

func TestSmokeLoadedRunIB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arch = InputBuffer
	cfg.WarmupCycles = 1000
	cfg.MeasureCycles = 5000
	cfg.Traffic.OpRate = 0.0005
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mcast ops=%d/%d lat=%v sat=%v", res.Multicast.OpsCompleted,
		res.Multicast.OpsGenerated, res.Multicast.LastArrival, res.Saturated)
	if res.Multicast.OpsCompleted == 0 {
		t.Fatal("no multicasts completed")
	}
}
