// Package core assembles the full simulated system — topology, links,
// switch models, NICs, traffic generation, and measurement — and runs the
// warmup / measure / drain methodology used by every experiment.
package core

import (
	"fmt"

	"mdworm/internal/collective"
	"mdworm/internal/faults"
	"mdworm/internal/flit"
	"mdworm/internal/nic"
	"mdworm/internal/routing"
	"mdworm/internal/switches/centralbuf"
	"mdworm/internal/switches/inputbuf"
	"mdworm/internal/topology"
	"mdworm/internal/traffic"
)

// TopologyKind selects the fabric shape.
type TopologyKind uint8

const (
	// KaryTree is the regular BMIN of the paper's evaluation, built from
	// Arity and Stages.
	KaryTree TopologyKind = iota
	// IrregularTree is a NOW-style random tree of varying-radix switches,
	// built from the Tree spec.
	IrregularTree
)

// String names the topology kind.
func (k TopologyKind) String() string {
	if k == KaryTree {
		return "kary-tree"
	}
	return "irregular-tree"
}

// SwitchArch selects the switch microarchitecture.
type SwitchArch uint8

const (
	// CentralBuffer is the SP-Switch-like shared-central-buffer switch.
	CentralBuffer SwitchArch = iota
	// InputBuffer is the per-input full-packet-buffer switch.
	InputBuffer
)

// String names the architecture.
func (a SwitchArch) String() string {
	if a == CentralBuffer {
		return "central-buffer"
	}
	return "input-buffer"
}

// Config describes one simulated system and workload. DefaultConfig returns
// a complete baseline; New only raises buffer parameters when the workload
// needs it (larger headers or packets), never lowers them.
type Config struct {
	// Topology selects the fabric shape (default KaryTree).
	Topology TopologyKind
	// Arity is the number of down (and up) ports per switch; an 8-port
	// SP-class switch has arity 4. (KaryTree only.)
	Arity int
	// Stages is the number of switch stages; the system has Arity^Stages
	// processors. (KaryTree only.)
	Stages int
	// Tree describes the irregular network (IrregularTree only).
	Tree topology.TreeSpec

	// Arch selects the switch microarchitecture.
	Arch SwitchArch
	// CB configures central-buffer switches (used when Arch == CentralBuffer).
	CB centralbuf.Config
	// IB configures input-buffer switches (used when Arch == InputBuffer).
	IB inputbuf.Config
	// NIC configures the host interfaces.
	NIC nic.Config

	// Scheme selects how multicasts are realized.
	Scheme collective.Scheme
	// ReplicateOnUpPath lets ascending worms branch downward before the
	// LCA stage.
	ReplicateOnUpPath bool
	// UpPolicy selects the up-port choice.
	UpPolicy routing.UpPolicy

	// LinkLatency is the wire latency in cycles (>= 1).
	LinkLatency int
	// FlitBits is the flit payload width used to size headers.
	FlitBits int

	// Traffic describes the stochastic workload (ignored by single-shot
	// experiments that call InjectOp directly).
	Traffic traffic.Spec

	// Collective describes a phase-structured collective workload (barrier,
	// broadcast, all-reduce, scatter/gather) driven alongside — or, with
	// Traffic.OpRate zero, instead of — the stochastic load. The zero value
	// disables it. Multicast steps are realized through Scheme, so the same
	// spec runs in hardware-multidestination or software-tree mode.
	Collective collective.Spec

	// WarmupCycles, MeasureCycles, and DrainCycles delimit the run.
	WarmupCycles  int64
	MeasureCycles int64
	DrainCycles   int64

	// Seed drives every random decision of the run.
	Seed uint64
	// WatchdogLimit is the deadlock watchdog threshold in cycles.
	WatchdogLimit int64

	// Faults is the deterministic fault plan injected during the run
	// (empty by default). The plan is part of the canonical configuration,
	// so cached results key on it.
	Faults faults.Plan
	// StrictInvariants upgrades model-invariant violations from counters
	// to hard run failures.
	StrictInvariants bool
}

// DefaultConfig returns the baseline system of the experiments: a 64-node
// 3-stage BMIN of 8-port central-buffer switches with hardware bit-string
// multicast.
func DefaultConfig() Config {
	return Config{
		Arity:             4,
		Stages:            3,
		Arch:              CentralBuffer,
		CB:                centralbuf.DefaultConfig(),
		IB:                inputbuf.DefaultConfig(),
		NIC:               nic.DefaultConfig(),
		Scheme:            collective.HardwareBitString,
		ReplicateOnUpPath: true,
		UpPolicy:          routing.UpHash,
		LinkLatency:       1,
		FlitBits:          16,
		Traffic: traffic.Spec{
			OpRate:            0.001,
			MulticastFraction: 1.0,
			Degree:            8,
			UniPayloadFlits:   32,
			McastPayloadFlits: 64,
		},
		WarmupCycles:  5_000,
		MeasureCycles: 20_000,
		DrainCycles:   200_000,
		Seed:          1,
		WatchdogLimit: 50_000,
	}
}

// N returns the number of processors of a KaryTree configuration (for
// irregular trees the count depends on the random draw; use Simulator.Net).
func (c *Config) N() int {
	n := 1
	for i := 0; i < c.Stages; i++ {
		n *= c.Arity
	}
	return n
}

// buildTopology constructs the fabric described by the configuration.
func (c *Config) buildTopology() (*topology.Network, error) {
	switch c.Topology {
	case KaryTree:
		if c.Arity < 2 || c.Stages < 1 {
			return nil, fmt.Errorf("core: Arity must be >= 2 and Stages >= 1")
		}
		return topology.NewKaryTree(c.Arity, c.Stages)
	case IrregularTree:
		return topology.NewRandomTree(c.Tree)
	default:
		return nil, fmt.Errorf("core: unknown topology kind %d", c.Topology)
	}
}

// headerFlitsFor returns the header size of a message class on the given
// fabric.
func (c *Config) headerFlitsFor(class flit.Class, net *topology.Network) int {
	enc := flit.EncUnicast
	if class == flit.ClassMulticast {
		enc = c.Scheme.Encoding()
	}
	stages, arity := net.Stages, net.Arity
	if !net.Kary {
		arity = 1 // multiport is rejected on irregular fabrics anyway
	}
	return flit.HeaderFlits(enc, net.N, stages, arity, c.FlitBits)
}

// maxHeaderFlits returns the largest header any message of the run carries.
func (c *Config) maxHeaderFlits(net *topology.Network) int {
	h := c.headerFlitsFor(flit.ClassUnicast, net)
	if m := c.headerFlitsFor(flit.ClassMulticast, net); m > h {
		h = m
	}
	return h
}

// maxPacketFlits returns the largest packet of the run, headers included.
func (c *Config) maxPacketFlits(net *topology.Network) int {
	u := c.headerFlitsFor(flit.ClassUnicast, net) + c.Traffic.UniPayloadFlits
	m := c.headerFlitsFor(flit.ClassMulticast, net) + c.Traffic.McastPayloadFlits
	return max(u, m)
}

// normalize raises buffer parameters to fit the workload on the built
// fabric and validates the result.
func (c *Config) normalize(net *topology.Network) error {
	if c.LinkLatency < 1 {
		return fmt.Errorf("core: LinkLatency must be >= 1")
	}
	if c.FlitBits < 1 || c.FlitBits > 64 {
		return fmt.Errorf("core: FlitBits must be in [1,64]")
	}
	if c.Scheme == collective.HardwareMultiport && !net.Kary {
		return fmt.Errorf("core: the multiport encoding requires a regular k-ary tree")
	}
	maxHeader := c.maxHeaderFlits(net)
	maxPacket := c.maxPacketFlits(net)

	if c.Collective.Enabled() {
		if err := c.Collective.Normalize(net.N); err != nil {
			return err
		}
		sched, err := collective.BuildSchedule(c.Collective, net.N, c.Scheme.Hardware())
		if err != nil {
			return err
		}
		// Software scatter/gather steps carry whole subtrees of payload;
		// the packet bound must cover the largest of them.
		if p := sched.MaxPayload() + maxHeader; p > maxPacket {
			maxPacket = p
		}
	} else {
		// Canonicalize every disabled spec to the zero value so stray
		// fields cannot split the result cache.
		c.Collective = collective.Spec{}
	}

	c.CB.InFIFOFlits = max(c.CB.InFIFOFlits, maxHeader)
	c.CB.MaxPacketFlits = max(c.CB.MaxPacketFlits, maxPacket)
	if c.CB.ChunkFlits < 1 {
		c.CB.ChunkFlits = 1
	}
	// Each direction pool of the central buffer must hold a full packet.
	needChunks := (c.CB.MaxPacketFlits + c.CB.ChunkFlits - 1) / c.CB.ChunkFlits
	c.CB.Chunks = max(c.CB.Chunks, 2*needChunks)

	c.IB.MaxPacketFlits = max(c.IB.MaxPacketFlits, maxPacket)
	c.IB.BufFlits = max(c.IB.BufFlits, c.IB.MaxPacketFlits+16)

	switch c.Arch {
	case CentralBuffer:
		if err := c.CB.Validate(maxHeader); err != nil {
			return err
		}
	case InputBuffer:
		if err := c.IB.Validate(maxHeader); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown switch architecture %d", c.Arch)
	}
	if err := c.NIC.Validate(); err != nil {
		return err
	}
	if err := c.Traffic.Validate(net.N); err != nil {
		return err
	}
	return c.normalizeFaults(net, needChunks)
}

// normalizeFaults validates the fault plan against the built fabric and
// stores it in canonical (sorted) form.
func (c *Config) normalizeFaults(net *topology.Network, needChunks int) error {
	if c.Faults.Empty() {
		c.Faults = faults.Plan{}
		return nil
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	shrunk := map[int]int{}
	for i, e := range c.Faults.Events {
		switch e.Kind {
		case faults.LinkDown, faults.PortStuck:
			if e.Switch < 0 || e.Switch >= len(net.Switches) {
				return fmt.Errorf("core: fault event %d: switch %d out of range (fabric has %d switches)",
					i, e.Switch, len(net.Switches))
			}
			if e.Port < 0 || e.Port >= net.Switches[e.Switch].NumPorts() {
				return fmt.Errorf("core: fault event %d: port %d out of range (sw%d has %d ports)",
					i, e.Port, e.Switch, net.Switches[e.Switch].NumPorts())
			}
		case faults.CBShrink:
			if c.Arch != CentralBuffer {
				return fmt.Errorf("core: fault event %d: cb-shrink requires the central-buffer architecture", i)
			}
			if e.Switch < 0 || e.Switch >= len(net.Switches) {
				return fmt.Errorf("core: fault event %d: switch %d out of range (fabric has %d switches)",
					i, e.Switch, len(net.Switches))
			}
			shrunk[e.Switch] += e.Chunks
			// Each direction pool must keep room for one full packet, or a
			// legitimately reserved packet could wedge forever.
			if limit := c.CB.Chunks - 2*needChunks; shrunk[e.Switch] > limit {
				return fmt.Errorf("core: fault events shrink sw%d by %d chunks; at most %d can go (%d chunks minus one max packet per pool)",
					e.Switch, shrunk[e.Switch], limit, c.CB.Chunks)
			}
		case faults.NICStall:
			if e.Node < 0 || e.Node >= net.N {
				return fmt.Errorf("core: fault event %d: node %d out of range (%d nodes)", i, e.Node, net.N)
			}
		}
	}
	c.Faults = c.Faults.Normalized()
	return nil
}
