package analytic

import (
	"fmt"
	"math"
	"testing"

	"mdworm/internal/collective"
	"mdworm/internal/core"
	"mdworm/internal/engine"
)

// within asserts simulation tracks the model within the given relative band.
func within(t *testing.T, name string, model, sim float64, band float64) {
	t.Helper()
	if model <= 0 || sim <= 0 {
		t.Fatalf("%s: non-positive latency (model %.1f, sim %.1f)", name, model, sim)
	}
	rel := math.Abs(model-sim) / sim
	if rel > band {
		t.Errorf("%s: model %.1f vs simulation %.1f (%.0f%% off, band %.0f%%)",
			name, model, sim, rel*100, band*100)
	} else {
		t.Logf("%s: model %.1f vs simulation %.1f (%.1f%% off)", name, model, sim, rel*100)
	}
}

// farDests returns d destinations in the subtree farthest from node 0, so
// routes cross the full network (matching the worst-case path model).
func farDests(n, d int) []int {
	out := make([]int, 0, d)
	for i := 0; i < d; i++ {
		out = append(out, n-1-i)
	}
	return out
}

func simOnce(t *testing.T, cfg core.Config, src int, dests []int, mcast bool, payload int) float64 {
	t.Helper()
	sim, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lat, _, err := sim.RunOp(src, dests, mcast, payload, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return float64(lat)
}

func TestModelTracksUnicast(t *testing.T) {
	for _, stages := range []int{2, 3, 4} {
		cfg := core.DefaultConfig()
		cfg.Stages = stages
		cfg.Traffic.OpRate = 0
		m := FromConfig(cfg)
		for _, payload := range []int{16, 64, 256} {
			name := fmt.Sprintf("unicast/N%d/L%d", cfg.N(), payload)
			sim := simOnce(t, cfg, 0, []int{cfg.N() - 1}, false, payload)
			within(t, name, m.Unicast(payload), sim, 0.15)
		}
	}
}

func TestModelTracksHardwareMulticast(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Traffic.OpRate = 0
	m := FromConfig(cfg)
	for _, d := range []int{2, 8, 32} {
		name := fmt.Sprintf("hw-mcast/d%d", d)
		sim := simOnce(t, cfg, 0, farDests(cfg.N(), d), true, 64)
		within(t, name, m.HardwareMulticast(64, d), sim, 0.15)
	}
}

func TestModelTracksSoftwareBinomial(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Scheme = collective.SoftwareBinomial
	cfg.Traffic.OpRate = 0
	m := FromConfig(cfg)
	// The relay-chain bound is tight for d >= 8; at d=2 it is a loose
	// upper bound (no relays on the critical path), so the band widens.
	bands := map[int]float64{2: 0.45, 8: 0.25, 32: 0.25}
	for _, d := range []int{2, 8, 32} {
		name := fmt.Sprintf("sw-binomial/d%d", d)
		// Average over draws: the binomial critical path depends on the
		// destination layout.
		rng := engine.NewRNG(7)
		sum := 0.0
		const draws = 8
		simr, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < draws; i++ {
			dests := rng.Sample(cfg.N(), d, map[int]bool{0: true})
			lat, _, err := simr.RunOp(0, dests, true, 64, 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(lat)
		}
		measured := sum / draws
		if model := m.SoftwareBinomial(64, d); model < measured {
			t.Errorf("%s: bound %.1f below simulation %.1f", name, model, measured)
		} else {
			within(t, name, model, measured, bands[d])
		}
	}
}

func TestModelTracksSoftwareSeparate(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Scheme = collective.SoftwareSeparate
	cfg.Traffic.OpRate = 0
	m := FromConfig(cfg)
	for _, d := range []int{2, 8, 32} {
		name := fmt.Sprintf("sw-separate/d%d", d)
		sim := simOnce(t, cfg, 0, farDests(cfg.N(), d), true, 64)
		within(t, name, m.SoftwareSeparate(64, d), sim, 0.15)
	}
}

// TestModelOrdering: the model must predict the paper's qualitative
// ordering everywhere the simulator shows it: hardware always wins, and the
// binomial tree beats separate addressing once relaying pays off (the
// conservative relay-chain bound crosses over at d >= 8).
func TestModelOrdering(t *testing.T) {
	m := FromConfig(core.DefaultConfig())
	for _, d := range []int{2, 4, 8, 16, 32, 63} {
		hw := m.HardwareMulticast(64, d)
		sw := m.SoftwareBinomial(64, d)
		sep := m.SoftwareSeparate(64, d)
		if hw >= sw || hw >= sep {
			t.Fatalf("d=%d: hardware not fastest: hw=%.0f sw=%.0f sep=%.0f", d, hw, sw, sep)
		}
		if d >= 8 && sw > sep {
			t.Fatalf("d=%d: binomial above separate addressing: sw=%.0f sep=%.0f", d, sw, sep)
		}
	}
}

// TestSaturationBounds: the measured saturation knees of E1/E2 must lie
// below the analytic ceilings, but within a factor of ~3 (internal
// contention accounts for the gap).
func TestSaturationBounds(t *testing.T) {
	m := FromConfig(core.DefaultConfig())
	hw := m.SaturationLoadBound(collective.HardwareBitString, 64, 8)
	sw := m.SaturationLoadBound(collective.SoftwareBinomial, 64, 8)
	// Measured knees (EXPERIMENTS.md): hardware ~0.63 delivered, software ~0.30.
	const hwKnee, swKnee = 0.63, 0.30
	if hw < hwKnee {
		t.Fatalf("hardware bound %.3f below the measured knee %.2f", hw, hwKnee)
	}
	if hw > 3*hwKnee {
		t.Fatalf("hardware bound %.3f implausibly above the knee %.2f", hw, hwKnee)
	}
	if sw < swKnee {
		t.Fatalf("software bound %.3f below the measured knee %.2f", sw, swKnee)
	}
	if sw > 3*swKnee {
		t.Fatalf("software bound %.3f implausibly above the knee %.2f", sw, swKnee)
	}
	if sw >= hw {
		t.Fatalf("software bound %.3f not below hardware bound %.3f", sw, hw)
	}
}
