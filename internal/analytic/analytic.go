// Package analytic provides closed-form unloaded-latency models for the
// simulated schemes. The models mirror the standard wormhole latency
// decomposition (startup + per-hop routing + serialization) and serve two
// purposes: validating the simulator on idle networks (tests assert the
// simulation tracks the model within a small band) and providing the
// "ideal" reference curves for the experiment tables.
package analytic

import (
	"math"

	"mdworm/internal/collective"
	"mdworm/internal/core"
	"mdworm/internal/flit"
)

// Model captures the timing parameters that determine unloaded latency.
type Model struct {
	// SendOverhead and RecvOverhead are the host software costs in cycles.
	SendOverhead, RecvOverhead int
	// RouteDelay is the per-switch decode latency.
	RouteDelay int
	// LinkLatency is the wire latency per link.
	LinkLatency int
	// Stages is the BMIN stage count; a worst-case route crosses
	// 2*Stages-1 switches and 2*Stages links.
	Stages int
	// FlitBits sizes headers.
	FlitBits int
	// N is the system size.
	N int
	// Arity is the switch arity.
	Arity int
}

// FromConfig extracts the model from a simulator configuration.
func FromConfig(cfg core.Config) Model {
	routeDelay := cfg.CB.RouteDelay
	if cfg.Arch == core.InputBuffer {
		routeDelay = cfg.IB.RouteDelay
	}
	return Model{
		SendOverhead: cfg.NIC.SendOverhead,
		RecvOverhead: cfg.NIC.RecvOverhead,
		RouteDelay:   routeDelay,
		LinkLatency:  cfg.LinkLatency,
		Stages:       cfg.Stages,
		FlitBits:     cfg.FlitBits,
		N:            cfg.N(),
		Arity:        cfg.Arity,
	}
}

// headerFlits returns the header size for the encoding.
func (m Model) headerFlits(enc flit.Encoding) int {
	return flit.HeaderFlits(enc, m.N, m.Stages, m.Arity, m.FlitBits)
}

// worstHops returns the switch count of a maximal route (up to the top
// stage and back down).
func (m Model) worstHops() int { return 2*m.Stages - 1 }

// pathCycles returns the pipeline fill time of a worst-case path: links plus
// per-switch routing, plus roughly one cycle per switch for the internal
// buffer moves the microarchitectures perform.
func (m Model) pathCycles() int {
	switches := m.worstHops()
	links := switches + 1
	return links*m.LinkLatency + switches*(m.RouteDelay+2)
}

// Unicast predicts the unloaded latency of a payload worm crossing the full
// network: send overhead, path fill, then serialization of the remaining
// flits.
func (m Model) Unicast(payload int) float64 {
	lenFlits := payload + m.headerFlits(flit.EncUnicast)
	return float64(m.SendOverhead + m.pathCycles() + lenFlits)
}

// HardwareMulticast predicts the unloaded last-arrival latency of a
// bit-string multidestination worm. The tree pipeline hides replication
// almost entirely: relative to unicast only the wider header adds
// serialization, plus one extra buffer pass at the branching switches (the
// conservative full-buffering design adds a store bounded by the packet
// length at the final branch switch).
func (m Model) HardwareMulticast(payload, degree int) float64 {
	lenFlits := payload + m.headerFlits(flit.EncBitString)
	base := float64(m.SendOverhead + m.pathCycles() + lenFlits)
	// Branch divergence cost grows very slowly with degree; a small
	// logarithmic correction matches the replication pipeline.
	extra := 0.0
	for d := degree; d > 1; d /= 2 {
		extra += float64(m.RouteDelay) / 2
	}
	return base + extra
}

// SoftwareBinomial predicts the unloaded last-arrival latency of the U-MIN
// binomial multicast as the relay-chain bound: ceil(log2(d+1)) phases, each
// costing a full unicast, plus the receiver's forwarding overhead at
// interior nodes. This is an upper bound — tight (within ~15%) for d >= 8,
// where the critical path really is a chain of relays; at very small
// degrees the root sends every copy itself and no relay path is paid, so
// the bound is loose (and separate addressing can genuinely win, which the
// simulator reproduces).
func (m Model) SoftwareBinomial(payload, degree int) float64 {
	phases := collective.BinomialPhases(degree)
	if phases == 0 {
		return 0
	}
	per := m.Unicast(payload)
	// Each phase after the first also pays the receive overhead before
	// forwarding.
	return float64(phases)*per + float64(phases-1)*float64(m.RecvOverhead)
}

// SoftwareSeparate predicts the unloaded last-arrival latency of separate
// addressing: the source serializes d sends, each paying the startup cost,
// and the last message then crosses the network.
func (m Model) SoftwareSeparate(payload, degree int) float64 {
	lenFlits := payload + m.headerFlits(flit.EncUnicast)
	perSend := m.SendOverhead + lenFlits // channel occupancy per message
	return float64((degree-1)*perSend) + m.Unicast(payload)
}

// SaturationLoadBound returns an upper bound on the sustainable delivered
// payload load (flits per node per cycle) for the given scheme under the
// multiple-multicast workload (every node multicasting to degree
// destinations with the given payload). Two channel bottlenecks are
// considered: the destination ejection channel, which every delivered copy
// (payload plus header) must cross, and the source/relay injection channel,
// which each injected message occupies for its startup overhead plus its
// flits. Network-internal contention pushes the real knee below these
// bounds (by roughly 1.5-2x in the simulator), so treat them as ceilings.
func (m Model) SaturationLoadBound(scheme collective.Scheme, payload, degree int) float64 {
	switch scheme {
	case collective.HardwareBitString, collective.HardwareMultiport:
		h := m.headerFlits(flit.EncBitString)
		if scheme == collective.HardwareMultiport {
			h = m.headerFlits(flit.EncMultiport)
		}
		// Ejection: each copy carries payload+h flits per `payload` useful.
		eject := float64(payload) / float64(payload+h)
		// Injection: one worm of payload+h flits plus overhead delivers
		// degree copies.
		inject := float64(degree*payload) / float64(m.SendOverhead+payload+h)
		return math.Min(eject, inject)
	case collective.SoftwareBinomial, collective.SoftwareSeparate:
		h := m.headerFlits(flit.EncUnicast)
		// Every op causes degree unicast sends; at per-node op rate
		// lambda, per-node send rate is lambda*degree (for separate
		// addressing all at the source; for the binomial tree spread over
		// the participants — the channel-occupancy total is the same).
		// Each send occupies a channel for overhead+payload+h cycles.
		sendBound := float64(payload) / float64(m.SendOverhead+payload+h)
		eject := float64(payload) / float64(payload+h)
		return math.Min(eject, sendBound)
	default:
		return 0
	}
}
