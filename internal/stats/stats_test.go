package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	if s.String() != "n=0" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Count != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 || s.P50 != 42 || s.P95 != 42 {
		t.Fatalf("%+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(samples)
	if s.Count != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("%+v", s)
	}
	if math.Abs(s.P50-5.5) > 1e-9 {
		t.Fatalf("P50 = %g", s.P50)
	}
	if math.Abs(s.P95-9.55) > 1e-9 {
		t.Fatalf("P95 = %g", s.P95)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	samples := []float64{3, 1, 2}
	Summarize(samples)
	if samples[0] != 3 || samples[1] != 1 || samples[2] != 2 {
		t.Fatal("Summarize sorted the caller's slice")
	}
}

// Property: min <= p50 <= p95 <= p99 <= max and mean within [min, max].
func TestSummarizeQuick(t *testing.T) {
	f := func(raw []float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Keep values where sums cannot overflow.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e300/float64(len(raw)+1) {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			return true
		}
		s := Summarize(samples)
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchMeansCI(t *testing.T) {
	// Constant samples: zero-width interval.
	constant := make([]float64, 100)
	for i := range constant {
		constant[i] = 42
	}
	if ci := Summarize(constant).CI95; ci != 0 {
		t.Fatalf("constant samples CI = %g", ci)
	}
	// Alternating samples around a mean: CI should be small relative to the
	// spread but non-zero for noisy data.
	noisy := make([]float64, 200)
	for i := range noisy {
		noisy[i] = 100 + float64(i%7) - 3
	}
	s := Summarize(noisy)
	if s.CI95 <= 0 || s.CI95 > 5 {
		t.Fatalf("noisy CI = %g, expected small positive", s.CI95)
	}
	// Too few samples: no CI.
	if ci := Summarize([]float64{1, 2, 3}).CI95; ci != 0 {
		t.Fatalf("tiny sample CI = %g", ci)
	}
}

func TestCollectorWindow(t *testing.T) {
	c := Collector{WarmupEnd: 100, MeasureEnd: 200}
	if c.InWindow(99) || c.InWindow(200) {
		t.Fatal("window boundaries wrong")
	}
	if !c.InWindow(100) || !c.InWindow(199) {
		t.Fatal("window interior wrong")
	}
	if c.WindowCycles() != 100 {
		t.Fatalf("window = %d", c.WindowCycles())
	}
}

func TestCollectorClassSelection(t *testing.T) {
	c := Collector{}
	c.Class(true).OpsGenerated = 5
	c.Class(false).OpsGenerated = 7
	if c.Multicast.OpsGenerated != 5 || c.Unicast.OpsGenerated != 7 {
		t.Fatal("class routing wrong")
	}
}

func TestFinalize(t *testing.T) {
	c := Collector{WarmupEnd: 0, MeasureEnd: 1000}
	c.Multicast.OpsGenerated = 100
	c.Multicast.OpsCompleted = 100
	c.Multicast.LastArrival = []float64{100, 200, 300}
	c.Multicast.MessagesSent = 800
	c.Multicast.DeliveredPayloadFlits = 64000
	c.DeliveredFlits = 70000
	r := c.Finalize(64, 3)
	if r.Cycles != 1000 || r.Nodes != 64 || r.MaxSendQueue != 3 {
		t.Fatalf("%+v", r)
	}
	if r.Multicast.MessagesPerOp != 8 {
		t.Fatalf("messages per op = %g", r.Multicast.MessagesPerOp)
	}
	if got := r.Multicast.DeliveredPayloadPerNodeCycle; math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("delivered payload = %g", got)
	}
	if got := r.DeliveredFlitsPerNodeCycle; math.Abs(got-70000.0/1000/64) > 1e-9 {
		t.Fatalf("raw throughput = %g", got)
	}
	if r.Saturated {
		t.Fatal("fully completed run flagged saturated")
	}
}

func TestFinalizeSaturationHeuristic(t *testing.T) {
	c := Collector{WarmupEnd: 0, MeasureEnd: 1000}
	c.Unicast.OpsGenerated = 1000
	c.Unicast.OpsCompleted = 500
	r := c.Finalize(64, 100)
	if !r.Saturated {
		t.Fatal("half-completed run not flagged saturated")
	}
}
