package stats

import "mdworm/internal/ckpt"

// Checkpoint support. The collector is pure accumulated measurement; float
// samples are serialized by their IEEE-754 bits so Finalize over a restored
// collector is byte-identical to the uninterrupted run.

// EncodeState writes the collector.
func (c *Collector) EncodeState(e *ckpt.Enc) {
	e.I64(c.WarmupEnd)
	e.I64(c.MeasureEnd)
	encodeClass(e, &c.Unicast)
	encodeClass(e, &c.Multicast)
	e.I64(c.DeliveredFlits)
	e.I64(c.OpsDegraded)
	e.I64(c.DestsDropped)
	e.I64(c.OpsDropped)
	encodeCollective(e, &c.Coll)
}

// DecodeState restores the collector.
func (c *Collector) DecodeState(d *ckpt.Dec) {
	c.WarmupEnd = d.I64()
	c.MeasureEnd = d.I64()
	decodeClass(d, &c.Unicast)
	decodeClass(d, &c.Multicast)
	c.DeliveredFlits = d.I64()
	c.OpsDegraded = d.I64()
	c.DestsDropped = d.I64()
	c.OpsDropped = d.I64()
	// Blobs that predate the collective collector end here; they restore
	// with an inactive collector, matching their configurations (which
	// cannot describe a collective workload).
	if d.Err() == nil && d.Remaining() > 0 {
		decodeCollective(d, &c.Coll)
	}
}

func encodeCollective(e *ckpt.Enc, cc *CollectiveCollector) {
	e.Bool(cc.Active)
	e.String(cc.Kind)
	e.Int(cc.NumPhases)
	e.I64(cc.Started)
	e.I64(cc.Completed)
	e.I64(cc.Degraded)
	encodeFloats(e, cc.LastArrival)
	encodeFloats(e, cc.Skew)
	e.Int(len(cc.Phases))
	for _, ph := range cc.Phases {
		encodeFloats(e, ph)
	}
}

func decodeCollective(d *ckpt.Dec, cc *CollectiveCollector) {
	cc.Active = d.Bool()
	cc.Kind = d.String()
	cc.NumPhases = d.Int()
	cc.Started = d.I64()
	cc.Completed = d.I64()
	cc.Degraded = d.I64()
	cc.LastArrival = decodeFloats(d)
	cc.Skew = decodeFloats(d)
	n := d.Count(1)
	if d.Err() != nil {
		return
	}
	if n != cc.NumPhases {
		d.Fail("collective phase sample count %d != %d phases", n, cc.NumPhases)
		return
	}
	if n > 0 {
		cc.Phases = make([][]float64, n)
		for i := range cc.Phases {
			cc.Phases[i] = decodeFloats(d)
		}
	}
}

func encodeClass(e *ckpt.Enc, cc *ClassCollector) {
	e.I64(cc.OpsGenerated)
	e.I64(cc.OpsCompleted)
	encodeFloats(e, cc.LastArrival)
	encodeFloats(e, cc.MeanArrival)
	e.I64(cc.MessagesSent)
	e.I64(cc.DeliveredPayloadFlits)
}

func decodeClass(d *ckpt.Dec, cc *ClassCollector) {
	cc.OpsGenerated = d.I64()
	cc.OpsCompleted = d.I64()
	cc.LastArrival = decodeFloats(d)
	cc.MeanArrival = decodeFloats(d)
	cc.MessagesSent = d.I64()
	cc.DeliveredPayloadFlits = d.I64()
}

func encodeFloats(e *ckpt.Enc, vs []float64) {
	e.Int(len(vs))
	for _, v := range vs {
		e.F64(v)
	}
}

func decodeFloats(d *ckpt.Dec) []float64 {
	n := d.Count(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}
